// Package videoapp is the public API of the VideoApp reproduction: a
// framework for approximate storage of compressed (and optionally encrypted)
// videos, after "Approximate Storage of Compressed and Encrypted Videos"
// (ASPLOS 2017).
//
// The pipeline mirrors the paper:
//
//	seq, err := videoapp.GenerateTestVideo("crew_like", 320, 176, 60)
//	p := videoapp.NewPipeline(videoapp.WithWorkers(0))  // 0 = GOMAXPROCS
//	res, err := p.Process(seq)                          // encode + analyze + partition
//	decoded, flips, err := res.StoreRoundTrip(42)       // approximate MLC round trip
//
// Process encodes the raw sequence with an H.264-class codec, runs the
// VideoApp dependency analysis to compute per-macroblock importance, derives
// the per-frame pivot layout, and reports the physical storage footprint on
// the MLC PCM substrate. StoreRoundTrip simulates a write-scrub-read cycle
// with variable error correction and decodes the (possibly damaged) result.
//
// # Concurrency
//
// Every stage of the pipeline is frame- or GOP-parallel: encoding and
// decoding fan out over independent closed-GOP spans, error injection,
// footprint accounting and quality metrics fan out per frame, and the
// dependency analysis fans out over independent spans of its DAG. The
// worker count is configured once with WithWorkers and results are
// guaranteed identical at every worker count: parallel decode/analyze/
// footprint/measure are bit-identical to their serial counterparts, and the
// seeded storage round trip is a pure function of (video, partitions,
// seed). The canonical subsystem entry points are context-first
// (EncodeContext, DecodeContext, AnalyzeContext, MeasureContext) with
// cooperative cancellation checked at frame boundaries; pass a background
// context and workers of 1 for the serial forms.
//
// # Serving
//
// The read path of an archived video is OpenArchive (lock-free concurrent
// ReadChunk over an io.ReaderAt) fronted by NewChunkServer, an HTTP server
// with a sized LRU decoded-chunk cache and request coalescing; see
// stream.go and the internal/serve package documentation.
//
// The underlying subsystems are exposed as type aliases so that advanced
// users can drive them directly: the codec (EncodeContext/DecodeContext),
// the analysis (AnalyzeContext), stream splitting for per-reliability
// encryption (SplitStreams/EncryptStreams), quality metrics, and the
// error-correction and substrate models.
package videoapp

import (
	"context"
	"errors"
	"fmt"
	"io"

	"videoapp/internal/bch"
	"videoapp/internal/codec"
	"videoapp/internal/core"
	"videoapp/internal/cryptomode"
	"videoapp/internal/frame"
	"videoapp/internal/mlc"
	"videoapp/internal/obs"
	"videoapp/internal/quality"
	"videoapp/internal/store"
	"videoapp/internal/synth"
)

// Sentinel errors of the public API. Returned errors wrap these with
// context (preset names, counts, frame numbers); match with errors.Is.
var (
	// ErrUnknownPreset reports a synthetic preset name that does not exist.
	ErrUnknownPreset = errors.New("unknown preset")
	// ErrPartitionMismatch reports a partition list whose length does not
	// match the video's frame count.
	ErrPartitionMismatch = store.ErrPartitionMismatch
	// ErrNonMonotone reports a violation of the §4.4 invariant that
	// importance never increases in scan order within a slice.
	ErrNonMonotone = core.ErrNonMonotone
)

// Re-exported core types. The aliases form the public surface; the internal
// packages carry the implementations.
type (
	// Video is an encoded video with per-macroblock records.
	Video = codec.Video
	// Params configures the encoder.
	Params = codec.Params
	// Sequence is a raw YUV 4:2:0 video.
	Sequence = frame.Sequence
	// Frame is a raw YUV 4:2:0 picture.
	Frame = frame.Frame
	// Analysis is the per-macroblock importance map.
	Analysis = core.Analysis
	// ClassAssignment maps importance classes to ECC schemes.
	ClassAssignment = core.ClassAssignment
	// FramePartition is the per-frame pivot layout.
	FramePartition = core.FramePartition
	// StreamSet is the per-reliability multi-stream form of a video.
	StreamSet = core.StreamSet
	// Scheme is one error-correction configuration.
	Scheme = bch.Scheme
	// Substrate is the MLC storage cell model.
	Substrate = mlc.Substrate
	// StorageStats is the physical footprint of a stored video.
	StorageStats = store.Stats
	// QualityReport bundles PSNR/SSIM/MS-SSIM/VIF.
	QualityReport = quality.Report
	// CipherMode is an AES mode of operation.
	CipherMode = cryptomode.Mode
	// Archive is the at-rest form of an approximately stored video: a
	// precise region (headers + pivot tables) and per-scheme approximate
	// streams.
	Archive = store.Archive
	// EntropyCoder selects the entropy coder (CABAC or CAVLC).
	EntropyCoder = codec.EntropyKind
	// Observer receives pipeline instrumentation events (stage spans,
	// per-frame progress, counters and gauges); see the internal/obs
	// package documentation for the event vocabulary.
	Observer = obs.Observer
	// Metrics is the thread-safe aggregating Observer; attach one with
	// WithMetrics and read it with Result.Metrics or Metrics.Snapshot.
	Metrics = obs.Metrics
	// MetricsSnapshot is a consistent point-in-time copy of a Metrics.
	MetricsSnapshot = obs.Snapshot
	// Trace is the streaming JSON-lines trace Observer.
	Trace = obs.Trace
	// StoreOpts configures one store.System.StoreContext round trip.
	StoreOpts = store.StoreOpts
)

// NewMetrics returns an empty metrics aggregator.
func NewMetrics() *Metrics { return obs.NewMetrics() }

// NewTrace returns a trace sink streaming one JSON event per line to w.
func NewTrace(w io.Writer) *Trace { return obs.NewTrace(w) }

// MultiObserver combines observers into one that fans every event out in
// argument order; nil entries are dropped.
func MultiObserver(observers ...Observer) Observer { return obs.Multi(observers...) }

// ContextWithObserver returns a context carrying o. Every *Context API in
// this package (EncodeContext, DecodeContext, AnalyzeContext,
// MeasureContext, and the pipeline stages they back) reports its stage
// span, per-frame progress and counters to the observer attached to the
// context it runs under. Pipelines attach their own configured observer
// (WithObserver/WithMetrics), which takes precedence for pipeline calls.
func ContextWithObserver(ctx context.Context, o Observer) context.Context {
	return obs.With(ctx, o)
}

// BuildArchive splits an analyzed video into its at-rest archive form.
func BuildArchive(v *Video, parts []FramePartition) (*Archive, error) {
	return store.BuildArchive(v, parts)
}

// Entropy coder selections.
const (
	CABAC = codec.CABAC
	CAVLC = codec.CAVLC
)

// AES modes of operation (§5).
const (
	ModeECB = cryptomode.ECB
	ModeCBC = cryptomode.CBC
	ModeOFB = cryptomode.OFB
	ModeCTR = cryptomode.CTR
)

// DefaultParams returns the paper's standard-quality encoder configuration
// (CRF 24, CABAC, no B frames).
func DefaultParams() Params { return codec.DefaultParams() }

// EncodeContext is the canonical encode entry point: it compresses a raw
// sequence with GOP-level parallelism (workers <= 0 selects GOMAXPROCS) and
// cooperative cancellation checked at GOP boundaries. Output is
// bit-identical at every worker count. Open-GOP configurations
// (BFrames > 0) fall back to the serial encoder, which is not cancellable
// mid-video.
func EncodeContext(ctx context.Context, seq *Sequence, p Params, workers int) (*Video, error) {
	if p.BFrames != 0 {
		return codec.Encode(seq, p)
	}
	return codec.EncodeParallelContext(ctx, seq, p, workers)
}

// DecodeContext is the canonical decode entry point: it reconstructs the
// display-order sequence over independent closed-GOP spans concurrently
// (workers <= 0 selects GOMAXPROCS) with cooperative cancellation checked
// at frame boundaries. It is error-resilient — corrupted payloads never
// fail, they decode to damaged pictures — and its output is bit- and
// pixel-identical at every worker count.
func DecodeContext(ctx context.Context, v *Video, workers int) (*Sequence, error) {
	return codec.DecodeContext(ctx, v, codec.DecodeOptions{}, workers)
}

// AnalyzeContext is the canonical analysis entry point: it computes the
// per-macroblock importance map (§4.3) with fan-out over independent spans
// of the dependency DAG (workers <= 0 selects GOMAXPROCS) and cooperative
// cancellation; the result is bit-identical at every worker count.
func AnalyzeContext(ctx context.Context, v *Video, workers int) (*Analysis, error) {
	return core.AnalyzeContext(ctx, v, core.DefaultOptions(), workers)
}

// PaperAssignment returns Table 1's importance-class → scheme mapping.
func PaperAssignment() ClassAssignment { return core.PaperAssignment() }

// UniformAssignment protects every bit precisely (the baseline design).
func UniformAssignment() ClassAssignment { return core.UniformAssignment() }

// SplitStreams separates a partitioned video into per-reliability streams
// (§5.3), e.g. for independent encryption.
func SplitStreams(v *Video, parts []FramePartition) (*StreamSet, error) {
	return core.SplitStreams(v, parts)
}

// EncryptStreams encrypts each substream with an approximation-compatible
// AES mode (OFB or CTR) under per-stream derived IVs.
func EncryptStreams(ss *StreamSet, mode CipherMode, key, master []byte) (*cryptomode.EncryptedStreams, error) {
	return cryptomode.EncryptStreams(ss, mode, key, master)
}

// Marshal serializes an encoded video into the self-contained container
// format (precise headers followed by approximable payloads).
func Marshal(v *Video) []byte { return codec.Marshal(v) }

// Unmarshal parses a container produced by Marshal.
func Unmarshal(data []byte) (*Video, error) { return codec.Unmarshal(data) }

// Reanalyze rebuilds the per-macroblock analysis records of a video by
// decoding it — the path for analyzing videos loaded with Unmarshal (the
// paper's VideoApp accepts any encoded video as input, not only ones it
// encoded itself).
func Reanalyze(v *Video) error { return codec.Reanalyze(v) }

// MeasureContext is the canonical quality-measurement entry point: it
// computes all quality metrics (PSNR, SSIM, MS-SSIM, VIF) between two
// sequences with per-frame metric workers (workers <= 0 selects GOMAXPROCS)
// and cooperative cancellation; the result is identical at every worker
// count.
func MeasureContext(ctx context.Context, ref, dist *Sequence, workers int) (QualityReport, error) {
	return quality.MeasureContext(ctx, ref, dist, workers)
}

// PSNR computes the average luma PSNR between two sequences.
func PSNR(ref, dist *Sequence) (float64, error) { return quality.PSNR(ref, dist) }

// GenerateTestVideo renders one of the 14 synthetic suite sequences at the
// given geometry. Unknown presets return an error wrapping ErrUnknownPreset;
// see PresetNames.
func GenerateTestVideo(preset string, w, h, frames int) (*Sequence, error) {
	cfg, ok := synth.PresetByName(preset)
	if !ok {
		return nil, fmt.Errorf("%w %q", ErrUnknownPreset, preset)
	}
	return synth.Generate(cfg.ScaleTo(w, h, frames)), nil
}

// PresetNames lists the available synthetic test sequences.
func PresetNames() []string {
	names := make([]string, len(synth.Presets))
	for i, p := range synth.Presets {
		names[i] = p.Name
	}
	return names
}

// Pipeline bundles the full paper workflow with overridable components.
//
// The preferred way to configure a pipeline is the functional options of
// NewPipeline (WithParams, WithAssignment, WithSubstrate, WithWorkers,
// WithBlockAccurate, WithSeed, WithEntropyCoder, WithObserver,
// WithMetrics). The struct fields remain exported and writable for
// compatibility; mutate them only before the first Process call.
type Pipeline struct {
	// Params configures the encoder (default: DefaultParams).
	Params Params
	// Assignment maps importance to ECC (default: PaperAssignment).
	Assignment ClassAssignment
	// Substrate is the storage cell model (default: 8-level MLC PCM).
	Substrate Substrate
	// Workers bounds the concurrency of every pipeline stage; <= 0 (the
	// default) selects GOMAXPROCS. Results are identical at every worker
	// count.
	Workers int
	// BlockAccurate switches storage round trips from the nominal
	// per-scheme residual rates (Table 1) to explicit per-512-bit-block
	// binomial error simulation with BCH correction accounting.
	BlockAccurate bool
	// Seed is the default storage round-trip seed used by Result.RoundTrip
	// (Result.StoreRoundTrip takes an explicit seed and ignores it).
	Seed int64
	// Observer receives instrumentation from every pipeline stage. nil
	// (the default) publishes nothing; observers never perturb results.
	Observer Observer
	// ChunkGOPs is the streaming chunk granularity in closed GOPs used by
	// ProcessStream and StreamToArchive; <= 0 (the default) selects 1.
	// Results are bit-identical at every granularity.
	ChunkGOPs int

	// metrics is the aggregator installed by WithMetrics, kept separate
	// from Observer so Result.Metrics can snapshot it.
	metrics *obs.Metrics
}

// Option configures a Pipeline at construction time.
type Option func(*Pipeline)

// WithParams sets the encoder configuration.
func WithParams(p Params) Option { return func(pl *Pipeline) { pl.Params = p } }

// WithAssignment sets the importance-class → ECC-scheme mapping.
func WithAssignment(a ClassAssignment) Option { return func(pl *Pipeline) { pl.Assignment = a } }

// WithSubstrate sets the storage cell model.
func WithSubstrate(s Substrate) Option { return func(pl *Pipeline) { pl.Substrate = s } }

// WithWorkers bounds the concurrency of every pipeline stage; n <= 0
// selects GOMAXPROCS.
func WithWorkers(n int) Option { return func(pl *Pipeline) { pl.Workers = n } }

// WithBlockAccurate selects explicit per-block error simulation for storage
// round trips.
func WithBlockAccurate(on bool) Option { return func(pl *Pipeline) { pl.BlockAccurate = on } }

// WithSeed sets the default storage round-trip seed used by
// Result.RoundTrip.
func WithSeed(seed int64) Option { return func(pl *Pipeline) { pl.Seed = seed } }

// WithEntropyCoder selects the entropy coder (CABAC or CAVLC), overriding
// Params.Entropy of the configuration in effect when the option is applied;
// order it after WithParams.
func WithEntropyCoder(k EntropyCoder) Option { return func(pl *Pipeline) { pl.Params.Entropy = k } }

// WithChunkGOPs sets the streaming chunk granularity in closed GOPs
// (ProcessStream, StreamToArchive); n <= 0 selects 1. Larger chunks
// amortize stage hand-off at the cost of higher peak memory and coarser
// archive random-access units; results are identical at every granularity.
func WithChunkGOPs(n int) Option { return func(pl *Pipeline) { pl.ChunkGOPs = n } }

// WithObserver attaches an observer to every pipeline stage. Combine
// several with MultiObserver; a Metrics attached via WithMetrics is fanned
// in automatically.
func WithObserver(o Observer) Option { return func(pl *Pipeline) { pl.Observer = o } }

// WithMetrics installs m as the pipeline's metrics aggregator: every stage
// reports to it (alongside any WithObserver observer) and Result.Metrics
// snapshots it.
func WithMetrics(m *Metrics) Option { return func(pl *Pipeline) { pl.metrics = m } }

// NewPipeline returns a pipeline with the paper's defaults, then applies
// the options in order.
//
// Every videoapp CLI flag maps 1:1 onto the options surface:
//
//	-crf -gop -bframes -slices -halfpel -deblock   WithParams
//	-cavlc                                         WithEntropyCoder(CAVLC)
//	-seed                                          WithSeed
//	-workers                                       WithWorkers
//	-metrics                                       WithMetrics
//	-trace-out                                     WithObserver(NewTrace(w))
func NewPipeline(opts ...Option) *Pipeline {
	p := &Pipeline{
		Params:     codec.DefaultParams(),
		Assignment: core.PaperAssignment(),
		Substrate:  mlc.Default(),
	}
	for _, o := range opts {
		o(p)
	}
	return p
}

// observer returns the pipeline's effective observer: the configured
// Observer fanned out with the WithMetrics aggregator, or the no-op default
// when neither is set.
func (p *Pipeline) observer() Observer {
	if p.metrics != nil {
		return obs.Multi(p.Observer, p.metrics)
	}
	return obs.Multi(p.Observer)
}

// system builds the configured approximate storage system.
func (p *Pipeline) system() (*store.System, error) {
	return store.New(store.Config{
		Substrate:     p.Substrate,
		Assignment:    p.Assignment,
		BlockAccurate: p.BlockAccurate,
	})
}

// Result is a processed video ready for approximate storage.
type Result struct {
	Video      *Video
	Analysis   *Analysis
	Partitions []FramePartition
	Stats      StorageStats
	pipeline   *Pipeline
	system     *store.System
	pixels     int64
}

// Process encodes, analyzes and partitions a raw sequence, and computes its
// storage footprint under the pipeline's assignment.
func (p *Pipeline) Process(seq *Sequence) (*Result, error) {
	//vetvideoapp:allow ctxfirst — Process is the documented context-less convenience form of ProcessContext
	return p.ProcessContext(context.Background(), seq)
}

// ProcessContext is Process with cooperative cancellation: every stage
// (GOP-parallel encode, span-parallel analysis, per-frame footprint) checks
// ctx at frame boundaries and returns ctx.Err() promptly once it is
// cancelled. The result is identical to Process at every worker count, with
// or without an observer attached.
func (p *Pipeline) ProcessContext(ctx context.Context, seq *Sequence) (*Result, error) {
	o := p.observer()
	ctx = obs.With(ctx, o)
	v, err := EncodeContext(ctx, seq, p.Params, p.Workers)
	if err != nil {
		return nil, err
	}
	an, err := core.AnalyzeContext(ctx, v, core.DefaultOptions(), p.Workers)
	if err != nil {
		return nil, err
	}
	if err := an.CheckMonotone(); err != nil {
		return nil, err
	}
	sp := obs.StartSpan(o, obs.StagePartition)
	parts := an.Partition(p.Assignment)
	sp.End()
	// The storage system is validated and built once here; Result reuses it
	// for every round trip.
	sys, err := p.system()
	if err != nil {
		return nil, err
	}
	stats, err := sys.FootprintContext(ctx, v, parts, seq.PixelCount(), p.Workers)
	if err != nil {
		return nil, err
	}
	return &Result{
		Video: v, Analysis: an, Partitions: parts, Stats: stats,
		pipeline: p, system: sys, pixels: seq.PixelCount(),
	}, nil
}

// StoreRoundTrip simulates one approximate storage round trip (write, scrub
// for the substrate's reference interval, read with residual errors) and
// decodes the result. Error injection and decoding run frame-parallel under
// the pipeline's worker budget; for a fixed seed the outcome is a pure
// function of the processed video — independent of the worker count.
func (r *Result) StoreRoundTrip(seed int64) (*Sequence, int, error) {
	//vetvideoapp:allow ctxfirst — StoreRoundTrip is the documented context-less convenience form of StoreRoundTripContext
	return r.StoreRoundTripContext(context.Background(), seed)
}

// StoreRoundTripContext is StoreRoundTrip with cooperative cancellation
// checked at frame boundaries.
func (r *Result) StoreRoundTripContext(ctx context.Context, seed int64) (*Sequence, int, error) {
	sys := r.system
	if sys == nil {
		// Results built by hand (not via Process) still work.
		var err error
		if sys, err = r.pipeline.system(); err != nil {
			return nil, 0, err
		}
		r.system = sys
	}
	// The observer rides the context: StoreContext and DecodeContext pick
	// it up from there, so events publish exactly once.
	ctx = obs.With(ctx, r.pipeline.observer())
	stored, flips, err := sys.StoreContext(ctx, r.Video, r.Partitions, store.StoreOpts{
		Seed: seed, Workers: r.pipeline.Workers,
	})
	if err != nil {
		return nil, 0, err
	}
	seq, err := codec.DecodeContext(ctx, stored, codec.DecodeOptions{}, r.pipeline.Workers)
	return seq, flips, err
}

// RoundTrip is StoreRoundTripContext with the pipeline's configured default
// seed (WithSeed).
func (r *Result) RoundTrip(ctx context.Context) (*Sequence, int, error) {
	return r.StoreRoundTripContext(ctx, r.pipeline.Seed)
}

// Metrics returns a snapshot of the aggregator installed with WithMetrics,
// or a zero snapshot when none is. The counters reconcile with the Result:
// footprint_payload_bits per scheme equals Stats.PerScheme,
// footprint_header_bits equals Stats.HeaderBits, and the
// store_residual_flips total since the last Metrics.Reset equals the sum of
// the flip counts returned by the round trips run in that window.
func (r *Result) Metrics() MetricsSnapshot {
	if r.pipeline == nil || r.pipeline.metrics == nil {
		return MetricsSnapshot{}
	}
	return r.pipeline.metrics.Snapshot()
}
