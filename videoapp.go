// Package videoapp is the public API of the VideoApp reproduction: a
// framework for approximate storage of compressed (and optionally encrypted)
// videos, after "Approximate Storage of Compressed and Encrypted Videos"
// (ASPLOS 2017).
//
// The pipeline mirrors the paper:
//
//	seq, err := videoapp.GenerateTestVideo("crew_like", 320, 176, 60)
//	res, err := videoapp.NewPipeline().Process(seq)   // encode + analyze + partition
//	decoded, flips, err := res.StoreRoundTrip(42)     // approximate MLC round trip
//
// Process encodes the raw sequence with an H.264-class codec, runs the
// VideoApp dependency analysis to compute per-macroblock importance, derives
// the per-frame pivot layout, and reports the physical storage footprint on
// the MLC PCM substrate. StoreRoundTrip simulates a write-scrub-read cycle
// with variable error correction and decodes the (possibly damaged) result.
//
// The underlying subsystems are exposed as type aliases so that advanced
// users can drive them directly: the codec (Encode/Decode), the analysis
// (Analyze), stream splitting for per-reliability encryption
// (SplitStreams/EncryptStreams), quality metrics, and the error-correction
// and substrate models.
package videoapp

import (
	"fmt"
	"math/rand"

	"videoapp/internal/bch"
	"videoapp/internal/codec"
	"videoapp/internal/core"
	"videoapp/internal/cryptomode"
	"videoapp/internal/frame"
	"videoapp/internal/mlc"
	"videoapp/internal/quality"
	"videoapp/internal/store"
	"videoapp/internal/synth"
)

// Re-exported core types. The aliases form the public surface; the internal
// packages carry the implementations.
type (
	// Video is an encoded video with per-macroblock records.
	Video = codec.Video
	// Params configures the encoder.
	Params = codec.Params
	// Sequence is a raw YUV 4:2:0 video.
	Sequence = frame.Sequence
	// Frame is a raw YUV 4:2:0 picture.
	Frame = frame.Frame
	// Analysis is the per-macroblock importance map.
	Analysis = core.Analysis
	// ClassAssignment maps importance classes to ECC schemes.
	ClassAssignment = core.ClassAssignment
	// FramePartition is the per-frame pivot layout.
	FramePartition = core.FramePartition
	// StreamSet is the per-reliability multi-stream form of a video.
	StreamSet = core.StreamSet
	// Scheme is one error-correction configuration.
	Scheme = bch.Scheme
	// Substrate is the MLC storage cell model.
	Substrate = mlc.Substrate
	// StorageStats is the physical footprint of a stored video.
	StorageStats = store.Stats
	// QualityReport bundles PSNR/SSIM/MS-SSIM/VIF.
	QualityReport = quality.Report
	// CipherMode is an AES mode of operation.
	CipherMode = cryptomode.Mode
	// Archive is the at-rest form of an approximately stored video: a
	// precise region (headers + pivot tables) and per-scheme approximate
	// streams.
	Archive = store.Archive
)

// BuildArchive splits an analyzed video into its at-rest archive form.
func BuildArchive(v *Video, parts []FramePartition) (*Archive, error) {
	return store.BuildArchive(v, parts)
}

// Entropy coder selections.
const (
	CABAC = codec.CABAC
	CAVLC = codec.CAVLC
)

// AES modes of operation (§5).
const (
	ModeECB = cryptomode.ECB
	ModeCBC = cryptomode.CBC
	ModeOFB = cryptomode.OFB
	ModeCTR = cryptomode.CTR
)

// DefaultParams returns the paper's standard-quality encoder configuration
// (CRF 24, CABAC, no B frames).
func DefaultParams() Params { return codec.DefaultParams() }

// Encode compresses a raw sequence.
func Encode(seq *Sequence, p Params) (*Video, error) { return codec.Encode(seq, p) }

// EncodeParallel encodes GOPs concurrently (closed GOPs only, BFrames == 0)
// and produces output bit-identical to Encode. workers <= 0 uses GOMAXPROCS.
func EncodeParallel(seq *Sequence, p Params, workers int) (*Video, error) {
	return codec.EncodeParallel(seq, p, workers)
}

// Decode reconstructs the display-order sequence; it is error-resilient and
// never fails on corrupted payloads.
func Decode(v *Video) (*Sequence, error) { return codec.Decode(v) }

// Analyze computes per-macroblock importance (§4.3).
func Analyze(v *Video) *Analysis { return core.Analyze(v, core.DefaultOptions()) }

// PaperAssignment returns Table 1's importance-class → scheme mapping.
func PaperAssignment() ClassAssignment { return core.PaperAssignment() }

// UniformAssignment protects every bit precisely (the baseline design).
func UniformAssignment() ClassAssignment { return core.UniformAssignment() }

// SplitStreams separates a partitioned video into per-reliability streams
// (§5.3), e.g. for independent encryption.
func SplitStreams(v *Video, parts []FramePartition) (*StreamSet, error) {
	return core.SplitStreams(v, parts)
}

// EncryptStreams encrypts each substream with an approximation-compatible
// AES mode (OFB or CTR) under per-stream derived IVs.
func EncryptStreams(ss *StreamSet, mode CipherMode, key, master []byte) (*cryptomode.EncryptedStreams, error) {
	return cryptomode.EncryptStreams(ss, mode, key, master)
}

// Marshal serializes an encoded video into the self-contained container
// format (precise headers followed by approximable payloads).
func Marshal(v *Video) []byte { return codec.Marshal(v) }

// Unmarshal parses a container produced by Marshal.
func Unmarshal(data []byte) (*Video, error) { return codec.Unmarshal(data) }

// Reanalyze rebuilds the per-macroblock analysis records of a video by
// decoding it — the path for analyzing videos loaded with Unmarshal (the
// paper's VideoApp accepts any encoded video as input, not only ones it
// encoded itself).
func Reanalyze(v *Video) error { return codec.Reanalyze(v) }

// Measure computes all quality metrics between two sequences.
func Measure(ref, dist *Sequence) (QualityReport, error) { return quality.Measure(ref, dist) }

// PSNR computes the average luma PSNR between two sequences.
func PSNR(ref, dist *Sequence) (float64, error) { return quality.PSNR(ref, dist) }

// GenerateTestVideo renders one of the 14 synthetic suite sequences at the
// given geometry. Unknown presets return an error; see PresetNames.
func GenerateTestVideo(preset string, w, h, frames int) (*Sequence, error) {
	cfg, ok := synth.PresetByName(preset)
	if !ok {
		return nil, fmt.Errorf("videoapp: unknown preset %q", preset)
	}
	return synth.Generate(cfg.ScaleTo(w, h, frames)), nil
}

// PresetNames lists the available synthetic test sequences.
func PresetNames() []string {
	names := make([]string, len(synth.Presets))
	for i, p := range synth.Presets {
		names[i] = p.Name
	}
	return names
}

// Pipeline bundles the full paper workflow with overridable components.
type Pipeline struct {
	// Params configures the encoder (default: DefaultParams).
	Params Params
	// Assignment maps importance to ECC (default: PaperAssignment).
	Assignment ClassAssignment
	// Substrate is the storage cell model (default: 8-level MLC PCM).
	Substrate Substrate
}

// NewPipeline returns a pipeline with the paper's defaults.
func NewPipeline() *Pipeline {
	return &Pipeline{
		Params:     codec.DefaultParams(),
		Assignment: core.PaperAssignment(),
		Substrate:  mlc.Default(),
	}
}

// Result is a processed video ready for approximate storage.
type Result struct {
	Video      *Video
	Analysis   *Analysis
	Partitions []FramePartition
	Stats      StorageStats
	pipeline   *Pipeline
	pixels     int64
}

// Process encodes, analyzes and partitions a raw sequence, and computes its
// storage footprint under the pipeline's assignment.
func (p *Pipeline) Process(seq *Sequence) (*Result, error) {
	v, err := codec.Encode(seq, p.Params)
	if err != nil {
		return nil, err
	}
	an := core.Analyze(v, core.DefaultOptions())
	if err := an.CheckMonotone(); err != nil {
		return nil, err
	}
	parts := an.Partition(p.Assignment)
	sys, err := store.New(store.Config{Substrate: p.Substrate, Assignment: p.Assignment})
	if err != nil {
		return nil, err
	}
	stats, err := sys.Footprint(v, parts, seq.PixelCount())
	if err != nil {
		return nil, err
	}
	return &Result{
		Video: v, Analysis: an, Partitions: parts, Stats: stats,
		pipeline: p, pixels: seq.PixelCount(),
	}, nil
}

// StoreRoundTrip simulates one approximate storage round trip (write, scrub
// for the substrate's reference interval, read with residual errors) and
// decodes the result.
func (r *Result) StoreRoundTrip(seed int64) (*Sequence, int, error) {
	sys, err := store.New(store.Config{Substrate: r.pipeline.Substrate, Assignment: r.pipeline.Assignment})
	if err != nil {
		return nil, 0, err
	}
	stored, flips, err := sys.Store(r.Video, r.Partitions, rand.New(rand.NewSource(seed)))
	if err != nil {
		return nil, 0, err
	}
	seq, err := codec.Decode(stored)
	return seq, flips, err
}
