module videoapp

go 1.24
