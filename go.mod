module videoapp

go 1.22
