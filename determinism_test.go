package videoapp

// Reproducibility is load-bearing for the experiments: identical inputs and
// seeds must give bit-identical artifacts at every stage.

import (
	"bytes"
	"testing"
)

func TestPipelineFullyDeterministic(t *testing.T) {
	build := func() ([]byte, []byte, int) {
		seq, err := GenerateTestVideo("sports_like", 96, 64, 10)
		if err != nil {
			t.Fatal(err)
		}
		p := NewPipeline()
		p.Params.GOPSize = 10
		p.Params.SearchRange = 8
		res, err := p.Process(seq)
		if err != nil {
			t.Fatal(err)
		}
		container := Marshal(res.Video)
		ar, err := BuildArchive(res.Video, res.Partitions)
		if err != nil {
			t.Fatal(err)
		}
		_, flips, err := res.StoreRoundTrip(12345)
		if err != nil {
			t.Fatal(err)
		}
		return container, ar.PivotTables, flips
	}
	c1, p1, f1 := build()
	c2, p2, f2 := build()
	if !bytes.Equal(c1, c2) {
		t.Fatal("containers differ across identical builds")
	}
	if !bytes.Equal(p1, p2) {
		t.Fatal("pivot tables differ across identical builds")
	}
	if f1 != f2 {
		t.Fatalf("seeded store round trips differ: %d vs %d flips", f1, f2)
	}
}

func TestEncodeDeterministicAcrossOptions(t *testing.T) {
	seq, _ := GenerateTestVideo("crew_like", 64, 48, 6)
	for _, mut := range []func(*Params){
		func(p *Params) {},
		func(p *Params) { p.HalfPel = true },
		func(p *Params) { p.Deblock = true },
		func(p *Params) { p.SlicesPerFrame = 2 },
		func(p *Params) { p.Entropy = CAVLC },
	} {
		p := DefaultParams()
		p.GOPSize = 6
		p.SearchRange = 8
		mut(&p)
		a, err := encodeSerial(seq, p)
		if err != nil {
			t.Fatal(err)
		}
		b, err := encodeSerial(seq, p)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(Marshal(a), Marshal(b)) {
			t.Fatalf("encode nondeterministic with params %+v", p)
		}
	}
}
