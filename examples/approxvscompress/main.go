// Approxvscompress answers the paper's central question head-on: "Can
// approximation bring higher objectively measured benefits compared to
// deterministic video compression?" (§8). It compares two ways of saving
// the same ~12% of storage: encoding more aggressively (higher CRF) versus
// keeping the quality target and approximating storage with VideoApp's
// variable error correction.
package main

import (
	"fmt"
	"log"

	"videoapp"
)

func main() {
	seq, err := videoapp.GenerateTestVideo("mobcal_like", 320, 176, 48)
	if err != nil {
		log.Fatal(err)
	}

	// Option A: deterministic compression only — crank CRF until the
	// storage (with uniform precise-grade correction) drops ~12%.
	// Option B: keep CRF 24 and approximate with Table 1's assignment.
	type outcome struct {
		name          string
		cellsPerPixel float64
		psnr          float64
	}
	var results []outcome

	measure := func(name string, crf int, assignment videoapp.ClassAssignment) outcome {
		p := videoapp.NewPipeline()
		p.Params.CRF = crf
		p.Assignment = assignment
		res, err := p.Process(seq)
		if err != nil {
			log.Fatal(err)
		}
		// Worst of a few storage round trips, the paper's conservative
		// convention.
		worst := 200.0
		for run := int64(0); run < 5; run++ {
			dec, _, err := res.StoreRoundTrip(run)
			if err != nil {
				log.Fatal(err)
			}
			p, err := videoapp.PSNR(seq, dec)
			if err != nil {
				log.Fatal(err)
			}
			if p < worst {
				worst = p
			}
		}
		return outcome{name: name, cellsPerPixel: res.Stats.CellsPerPixel, psnr: worst}
	}

	results = append(results,
		measure("baseline: CRF 24 + uniform ECC", 24, videoapp.UniformAssignment()),
		measure("compress: CRF 26 + uniform ECC", 26, videoapp.UniformAssignment()),
		measure("approximate: CRF 24 + VideoApp ECC", 24, videoapp.PaperAssignment()),
	)

	fmt.Println("strategy                              cells/px   PSNR(dB)")
	base := results[0]
	for _, r := range results {
		saving := (1 - r.cellsPerPixel/base.cellsPerPixel) * 100
		fmt.Printf("%-37s %8.4f  %8.2f   (storage %+.1f%%, quality %+.2f dB)\n",
			r.name, r.cellsPerPixel, r.psnr, -saving, r.psnr-base.psnr)
	}
	fmt.Println("\nthe paper's claim: for equal storage savings, approximation loses less")
	fmt.Println("quality than further compression — compare the last two rows")
}
