// Densitysweep compares the three storage designs of the paper's Figure 11
// — uniform correction, VideoApp's variable correction, and ideal
// correction — across quality targets, reproducing the headline result that
// variable correction reaches density/quality points neither compression nor
// approximation achieves alone.
package main

import (
	"fmt"
	"log"

	"videoapp"
)

func main() {
	fmt.Println("design    CRF  cells/px   PSNR(dB)  ECC-overhead")
	for _, crf := range []int{16, 20, 24} {
		seq, err := videoapp.GenerateTestVideo("parkrun_like", 320, 176, 48)
		if err != nil {
			log.Fatal(err)
		}
		for _, design := range []struct {
			name       string
			assignment videoapp.ClassAssignment
		}{
			{"uniform", videoapp.UniformAssignment()},
			{"variable", videoapp.PaperAssignment()},
		} {
			p := videoapp.NewPipeline()
			p.Params.CRF = crf
			p.Assignment = design.assignment
			res, err := p.Process(seq)
			if err != nil {
				log.Fatal(err)
			}
			dec, _, err := res.StoreRoundTrip(7)
			if err != nil {
				log.Fatal(err)
			}
			psnr, err := videoapp.PSNR(seq, dec)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%-9s %3d  %8.4f  %8.2f  %10.1f%%\n",
				design.name, crf, res.Stats.CellsPerPixel, psnr, res.Stats.ECCOverhead*100)
		}
	}
	fmt.Println("\nvariable correction stores the same video in fewer cells at (nearly) the same PSNR")
}
