// Encrypted demonstrates §5 of the paper: approximate storage of encrypted
// videos. The partitioned video is split into per-reliability streams, each
// encrypted with AES-CTR under an IV derived from one master value and the
// stream identifier. Bit errors injected into the ciphertext (as approximate
// storage would) stay local — decrypting and merging yields exactly the
// damage the unencrypted approximate store would have produced.
package main

import (
	"bytes"
	"context"
	"crypto/rand"
	"fmt"
	"log"
	mrand "math/rand"

	"videoapp"
	"videoapp/internal/bitio"
)

func main() {
	seq, err := videoapp.GenerateTestVideo("surveillance_like", 320, 176, 48)
	if err != nil {
		log.Fatal(err)
	}
	p := videoapp.DefaultParams()
	video, err := videoapp.EncodeContext(context.Background(), seq, p, 0)
	if err != nil {
		log.Fatal(err)
	}
	analysis, err := videoapp.AnalyzeContext(context.Background(), video, 0)
	if err != nil {
		log.Fatal(err)
	}
	parts := analysis.Partition(videoapp.PaperAssignment())

	// Split into per-reliability streams and encrypt each one (§5.3).
	streams, err := videoapp.SplitStreams(video, parts)
	if err != nil {
		log.Fatal(err)
	}
	key := make([]byte, 16)
	master := make([]byte, 16)
	rand.Read(key)
	rand.Read(master)
	encrypted, err := videoapp.EncryptStreams(streams, videoapp.ModeCTR, key, master)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("encrypted streams:")
	for name, ct := range encrypted.Streams {
		fmt.Printf("  %-7s %8d bytes\n", name, len(ct))
	}

	// Simulate approximate storage ON THE CIPHERTEXT: flip bits in the two
	// weakest streams, as the unprotected/lightly-protected MLC cells would.
	rng := mrand.New(mrand.NewSource(42))
	flips := 0
	for _, name := range []string{"None", "BCH-6"} {
		ct, ok := encrypted.Streams[name]
		if !ok {
			continue
		}
		for k := 0; k < 8; k++ {
			bitio.FlipBit(ct, rng.Int63n(int64(len(ct))*8))
			flips++
		}
	}
	fmt.Printf("injected %d bit errors into the encrypted low-importance streams\n", flips)

	// Decrypt, merge, decode: privacy preserved AND approximation preserved.
	decrypted, err := encrypted.Decrypt(key, master, parts)
	if err != nil {
		log.Fatal(err)
	}
	merged, err := decrypted.Merge(video)
	if err != nil {
		log.Fatal(err)
	}
	decoded, err := videoapp.DecodeContext(context.Background(), merged, 0)
	if err != nil {
		log.Fatal(err)
	}
	psnr, err := videoapp.PSNR(seq, decoded)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("decoded after encrypted approximate storage: PSNR %.2f dB\n", psnr)

	// Sanity: an eavesdropper sees only noise — the ciphertext shares no
	// long runs with the plaintext stream.
	for name := range streams.Streams {
		if bytes.Equal(streams.Streams[name], encrypted.Streams[name]) {
			log.Fatalf("stream %s leaked as plaintext", name)
		}
	}
	fmt.Println("ciphertext differs from plaintext in every stream: privacy preserved")
}
