// Importancemap visualizes the VideoApp dependency analysis: it prints an
// ASCII heat map of per-macroblock importance for selected frames, showing
// the two structural effects the paper describes — importance decreasing in
// scan order within every frame (coding dependencies, Figure 2c) and early
// GOP frames dominating later ones (compensation dependencies).
package main

import (
	"context"
	"fmt"
	"log"
	"math"

	"videoapp"
)

const ramp = " .:-=+*#%@"

func main() {
	seq, err := videoapp.GenerateTestVideo("sports_like", 320, 176, 30)
	if err != nil {
		log.Fatal(err)
	}
	p := videoapp.DefaultParams()
	p.GOPSize = 30
	video, err := videoapp.EncodeContext(context.Background(), seq, p, 0)
	if err != nil {
		log.Fatal(err)
	}
	analysis, err := videoapp.AnalyzeContext(context.Background(), video, 0)
	if err != nil {
		log.Fatal(err)
	}
	maxLog := math.Log2(analysis.MaxImportance() + 1)

	mbCols := video.MBCols()
	for _, f := range []int{0, 1, 10, 29} {
		ef := video.Frames[f]
		fmt.Printf("frame %d (%s, display %d) — importance heat map (log scale):\n",
			f, ef.Type, ef.DisplayIdx)
		row := analysis.Importance[f]
		for m, imp := range row {
			level := math.Log2(imp+1) / maxLog
			idx := int(level * float64(len(ramp)-1))
			if idx < 0 {
				idx = 0
			}
			if idx >= len(ramp) {
				idx = len(ramp) - 1
			}
			fmt.Printf("%c", ramp[idx])
			if (m+1)%mbCols == 0 {
				fmt.Println()
			}
		}
		fmt.Printf("  head=%.0f tail=%.0f MBs damaged by one flip\n\n", row[0], row[len(row)-1])
	}

	fmt.Println("legend: darker = a bit flip there damages more macroblocks")
	fmt.Println("note the top-left to bottom-right gradient within each frame, and")
	fmt.Println("the fading importance of frames later in the GOP")
}
