// Streaming demonstrates the paper's related-work observation that the
// VideoApp methodology "could be applied to video streaming as well, where
// different bits can be transferred through network channels of different
// reliability": the per-reliability streams double as a delivery priority
// order. Receiving streams most-important-first gives a usable picture
// early; the reverse order wastes the bandwidth on invisible refinements.
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"

	"videoapp"
	"videoapp/internal/core"
)

func main() {
	seq, err := videoapp.GenerateTestVideo("cityride_like", 320, 176, 48)
	if err != nil {
		log.Fatal(err)
	}
	video, err := videoapp.EncodeContext(context.Background(), seq, videoapp.DefaultParams(), 0)
	if err != nil {
		log.Fatal(err)
	}
	analysis, err := videoapp.AnalyzeContext(context.Background(), video, 0)
	if err != nil {
		log.Fatal(err)
	}
	parts := analysis.Partition(videoapp.PaperAssignment())
	streams, err := videoapp.SplitStreams(video, parts)
	if err != nil {
		log.Fatal(err)
	}

	// Strongest protection = most important bits. Deliver in that order.
	names := streams.SchemeNames()
	order := orderByStrength(names)
	fmt.Println("delivery order (most important first):", order)

	fmt.Println("\nreceived            kbits   PSNR(dB)")
	evaluate(seq, video, streams, parts, order)

	fmt.Println("\nreverse order (least important first):")
	rev := make([]string, len(order))
	for i, n := range order {
		rev[len(order)-1-i] = n
	}
	evaluate(seq, video, streams, parts, rev)
}

// evaluate decodes with progressively more streams delivered; missing
// streams are replaced by channel noise (undelivered bits are unknown).
func evaluate(seq *videoapp.Sequence, video *videoapp.Video, streams *videoapp.StreamSet, parts []videoapp.FramePartition, order []string) {
	rng := rand.New(rand.NewSource(9))
	var receivedBits int64
	for k := 1; k <= len(order); k++ {
		partial := &core.StreamSet{Parts: parts, Streams: map[string][]byte{}, Bits: streams.Bits}
		for i, name := range order {
			if i < k {
				partial.Streams[name] = streams.Streams[name]
				continue
			}
			noise := make([]byte, len(streams.Streams[name]))
			rng.Read(noise)
			partial.Streams[name] = noise
		}
		merged, err := partial.Merge(video)
		if err != nil {
			log.Fatal(err)
		}
		dec, err := videoapp.DecodeContext(context.Background(), merged, 0)
		if err != nil {
			log.Fatal(err)
		}
		psnr, err := videoapp.PSNR(seq, dec)
		if err != nil {
			log.Fatal(err)
		}
		receivedBits += streams.Bits[order[k-1]]
		fmt.Printf("%-18s %7.0f  %8.2f\n", order[k-1], float64(receivedBits)/1000, psnr)
	}
}

// orderByStrength sorts stream names strongest-scheme-first.
func orderByStrength(names []string) []string {
	rank := map[string]int{"BCH-16": 0, "BCH-11": 1, "BCH-10": 2, "BCH-9": 3,
		"BCH-8": 4, "BCH-7": 5, "BCH-6": 6, "None": 7}
	out := append([]string(nil), names...)
	for i := range out {
		for j := i + 1; j < len(out); j++ {
			if rank[out[j]] < rank[out[i]] {
				out[i], out[j] = out[j], out[i]
			}
		}
	}
	return out
}
