// Serving demonstrates the concurrent archive read path: a synthetic video
// is streamed into a chunked VACS archive, a chunk server is started over
// it, and a fleet of concurrent HTTP clients reads every chunk — hammering
// one hot chunk on purpose. The run prints the server's own observability:
// requests served, cache hit rate, and the number of actual decodes, which
// stays at one per chunk however many clients stampede it (singleflight).
package main

import (
	"context"
	"fmt"
	"io"
	"log"
	"math/rand"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"sync"
	"time"

	"videoapp"
)

func main() {
	// 1. Build a chunked archive on disk, one closed GOP per chunk.
	dir, err := os.MkdirTemp("", "videoapp-serving")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "demo.vacs")

	seq, err := videoapp.GenerateTestVideo("crew_like", 160, 96, 32)
	if err != nil {
		log.Fatal(err)
	}
	params := videoapp.DefaultParams()
	params.GOPSize = 8
	p := videoapp.NewPipeline(videoapp.WithParams(params))
	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	meta, stats, err := p.StreamToArchive(context.Background(), videoapp.SequenceSource(seq), f)
	if err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("archived %dx%d, %.4f cells/pixel\n", meta.W, meta.H, stats.CellsPerPixel)

	// 2. Open the archive for lock-free concurrent reads and serve it.
	rf, err := os.Open(path)
	if err != nil {
		log.Fatal(err)
	}
	defer rf.Close()
	archive, err := videoapp.OpenArchive(rf)
	if err != nil {
		log.Fatal(err)
	}
	defer archive.Close()

	srv := videoapp.NewChunkServer(archive,
		videoapp.WithCacheBytes(32<<20),
		videoapp.WithRequestTimeout(10*time.Second),
	)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ctx, l) }()
	base := "http://" + l.Addr().String()
	fmt.Printf("serving %d chunks (%d frames) on %s\n",
		archive.NumChunks(), archive.TotalFrames(), base)

	// 3. Concurrent clients: half read random chunks, half stampede chunk 0.
	const clients = 24
	var wg sync.WaitGroup
	var served, bytesOut int64
	var mu sync.Mutex
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(c)))
			for j := 0; j < 8; j++ {
				i := 0 // the hot chunk
				if c%2 == 0 {
					i = rng.Intn(archive.NumChunks())
				}
				resp, err := http.Get(fmt.Sprintf("%s/v1/chunks/%d", base, i))
				if err != nil {
					log.Fatal(err)
				}
				n, _ := io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					log.Fatalf("chunk %d: status %d", i, resp.StatusCode)
				}
				mu.Lock()
				served++
				bytesOut += n
				mu.Unlock()
			}
		}(c)
	}
	wg.Wait()

	// 4. Report what the read path did: with the whole archive cache-
	// resident, every chunk was decoded exactly once no matter how many
	// clients pulled it.
	cs := srv.CacheStats()
	fmt.Printf("served %d responses, %.1f MiB\n", served, float64(bytesOut)/(1<<20))
	fmt.Printf("cache: %.0f%% hit rate, %d decodes for %d chunks, %d bytes resident\n",
		100*cs.HitRate(), cs.Loads, archive.NumChunks(), cs.Cost)
	if int(cs.Loads) != archive.NumChunks() {
		log.Fatalf("expected %d decodes, got %d", archive.NumChunks(), cs.Loads)
	}

	// 5. Graceful shutdown: cancel drains in-flight connections.
	cancel()
	if err := <-done; err != nil {
		log.Fatal(err)
	}
	fmt.Println("server drained cleanly")
}
