// Layered demonstrates the cross-layer approximation dimension from the
// paper's related work: an SNR-scalable encoding whose enhancement layer is
// never referenced by any prediction, so its errors damage at most the one
// frame that carries them — unlike base-layer errors, which propagate
// through the whole group of pictures. Equal corruption therefore costs far
// less quality in the enhancement layer, making it the natural bottom class
// of the approximate store.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"videoapp"
	"videoapp/internal/bitio"
	"videoapp/internal/codec"
	"videoapp/internal/quality"
)

const flipsPerLayer = 24

func main() {
	seq, err := videoapp.GenerateTestVideo("stockholm_like", 320, 176, 48)
	if err != nil {
		log.Fatal(err)
	}
	// Coarse base + refinement layer.
	p := videoapp.DefaultParams()
	p.CRF = 32
	lv, err := codec.EncodeLayered(seq, p, 8)
	if err != nil {
		log.Fatal(err)
	}
	base, err := codec.Decode(lv.Base)
	if err != nil {
		log.Fatal(err)
	}
	clean, err := codec.DecodeLayered(lv)
	if err != nil {
		log.Fatal(err)
	}
	pBase, _ := quality.PSNR(seq, base)
	pClean, _ := quality.PSNR(seq, clean)
	fmt.Printf("base layer:       %7d bits, PSNR %.2f dB\n", lv.Base.TotalPayloadBits(), pBase)
	fmt.Printf("with enhancement: %7d bits, PSNR %.2f dB\n",
		lv.Base.TotalPayloadBits()+lv.EnhBits(), pClean)

	// Same number of bit flips into each layer; measure who suffers more.
	rng := rand.New(rand.NewSource(7))

	// (a) corrupt the enhancement only.
	enhOrig := lv.Enh
	lv.Enh = corruptStreams(rng, lv.Enh, flipsPerLayer)
	enhDamaged, err := codec.DecodeLayered(lv)
	if err != nil {
		log.Fatal(err)
	}
	lv.Enh = enhOrig
	pEnhDmg, _ := quality.PSNR(clean, enhDamaged)

	// (b) corrupt the base only (same flip count).
	baseClone := lv.Base.Clone()
	var payloads [][]byte
	for _, f := range baseClone.Frames {
		payloads = append(payloads, f.Payload)
	}
	payloads = corruptStreams(rng, payloads, flipsPerLayer)
	for i, f := range baseClone.Frames {
		f.Payload = payloads[i]
	}
	lvDamagedBase := &codec.LayeredVideo{Base: baseClone, EnhQPDelta: lv.EnhQPDelta, Enh: lv.Enh, EnhMBs: lv.EnhMBs}
	baseDamaged, err := codec.DecodeLayered(lvDamagedBase)
	if err != nil {
		log.Fatal(err)
	}
	pBaseDmg, _ := quality.PSNR(clean, baseDamaged)

	fmt.Printf("\n%d bit flips in the enhancement layer: PSNR %.2f dB vs clean\n", flipsPerLayer, pEnhDmg)
	fmt.Printf("%d bit flips in the base layer:        PSNR %.2f dB vs clean\n", flipsPerLayer, pBaseDmg)
	fmt.Printf("\nenhancement damage stays in single frames (no prediction references it);\n")
	fmt.Printf("base damage propagates through the GOP — %.1f dB worse for the same flips.\n", pEnhDmg-pBaseDmg)
	fmt.Println("the enhancement layer is therefore the approximate store's cheapest class.")
}

// corruptStreams flips n random bits spread across the byte slices.
func corruptStreams(rng *rand.Rand, streams [][]byte, n int) [][]byte {
	out := make([][]byte, len(streams))
	var total int64
	for i, s := range streams {
		out[i] = append([]byte(nil), s...)
		total += int64(len(s)) * 8
	}
	for k := 0; k < n; k++ {
		pos := rng.Int63n(total)
		for i := range out {
			bits := int64(len(out[i])) * 8
			if pos < bits {
				bitio.FlipBit(out[i], pos)
				break
			}
			pos -= bits
		}
	}
	return out
}
