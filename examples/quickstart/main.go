// Quickstart: the complete VideoApp workflow in thirty lines — encode a
// video, compute bit-level importance, store it approximately on dense MLC
// PCM with variable error correction, and verify the quality is preserved.
package main

import (
	"fmt"
	"log"

	"videoapp"
)

func main() {
	// 1. A raw test video (stand-in for a camera capture).
	seq, err := videoapp.GenerateTestVideo("crew_like", 320, 176, 48)
	if err != nil {
		log.Fatal(err)
	}

	// 2. Encode + analyze + partition with the paper's defaults:
	//    CRF 24, CABAC entropy coding, Table 1 error correction,
	//    8-level MLC PCM at raw bit error rate 1e-3.
	pipeline := videoapp.NewPipeline()
	res, err := pipeline.Process(seq)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("encoded %d frames into %d bits\n",
		len(res.Video.Frames), res.Video.TotalPayloadBits())
	fmt.Printf("storage: %.4f cells/pixel at %.1f%% ECC overhead\n",
		res.Stats.CellsPerPixel, res.Stats.ECCOverhead*100)

	// 3. Simulate an approximate storage round trip and measure quality.
	decoded, flips, err := res.StoreRoundTrip(1)
	if err != nil {
		log.Fatal(err)
	}
	psnr, err := videoapp.PSNR(seq, decoded)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after storage: %d residual bit errors, PSNR %.2f dB\n", flips, psnr)
}
