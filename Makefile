GO ?= go

.PHONY: check build test race bench bench-smoke bench-serve-smoke bench-json bench-parallel bench-stream serve-smoke chaos-smoke fmt fmt-check vet lint

# check is the full verification gate: formatting, vet, lint (staticcheck +
# the vetvideoapp invariant suite), build, race-enabled tests, a
# one-iteration compile-and-run pass over every benchmark so the perf
# harness cannot rot, and end-to-end smokes of the chunk server (clean and
# under injected faults). Tests run shuffled so inter-test ordering
# dependencies cannot hide.
check: fmt-check vet lint build race bench-smoke bench-serve-smoke serve-smoke chaos-smoke

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# lint runs both gates via scripts/lint.sh: staticcheck at the pinned
# version (a binary on PATH wins, otherwise the pinned module version via
# the module proxy; offline machines warn and skip — CI has network and
# enforces) and vetvideoapp, the project-specific invariant suite in
# internal/analysis, which needs nothing beyond the go tool and always
# runs. Run one gate alone with `./scripts/lint.sh staticcheck` or
# `./scripts/lint.sh vetvideoapp`.
lint:
	./scripts/lint.sh

test:
	$(GO) test -shuffle=on ./...

race:
	$(GO) test -race -shuffle=on ./...

fmt:
	gofmt -l -w .

# fmt-check fails (listing the offenders) when any file is not
# gofmt-formatted; `make fmt` rewrites them in place.
fmt-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then echo "files need gofmt:"; echo "$$out"; exit 1; fi

# bench-parallel emits benchstat-friendly serial-vs-parallel numbers for
# every concurrent pipeline stage:
#
#	make bench-parallel > par.txt
#	benchstat -col /workers par.txt
bench-parallel:
	$(GO) test -run='^$$' -bench=BenchmarkParallel -count=10 -benchmem .

# bench-stream compares peak heap of batch Process vs streaming
# ProcessStream/StreamToArchive at 1x and 4x sequence lengths; streaming
# peak memory must stay flat as the input grows (results/stream_bench.md).
bench-stream:
	$(GO) test -run='^$$' -bench=BenchmarkStreamMemory -benchtime=1x .

# bench runs the measured hot-kernel benchmarks (SAD/motion search, error
# injection, clone/pooling, arithmetic coder) plus the pipeline-level
# parallel benches, with allocation reporting. Compare two runs with
# scripts/benchcmp.sh old.txt new.txt (results/kernel_bench.md holds the
# committed before/after of the optimization pass).
bench:
	$(GO) test -run='^$$' -bench='BenchmarkSAD|BenchmarkSADEdge|BenchmarkMotionSearch' -benchmem ./internal/predict
	$(GO) test -run='^$$' -bench='BenchmarkInject' -benchmem ./internal/store
	$(GO) test -run='^$$' -bench='BenchmarkClone' -benchmem ./internal/codec
	$(GO) test -run='^$$' -bench='BenchmarkArith' -benchmem ./internal/entropy
	$(GO) test -run='^$$' -bench='BenchmarkFlipIID' -benchmem ./internal/sim
	$(GO) test -run='^$$' -bench='BenchmarkServeChunk' -benchmem ./internal/serve
	$(GO) test -run='^$$' -bench='BenchmarkParallelStore|BenchmarkParallelPipeline' -benchmem .

# serve-smoke is the end-to-end gate of the serving path: build the CLI,
# archive a synthetic video, start `videoapp serve`, fetch the index, one
# decoded chunk and /metrics over HTTP, then SIGINT and require a clean
# drained exit (results/serve_bench.md holds the chunk-path benchmarks).
serve-smoke:
	./scripts/serve_smoke.sh

# chaos-smoke is the end-to-end gate of the fault-tolerant read path: serve
# a deliberately corrupted archive under a seeded deterministic fault
# profile and require zero 5xx responses, with the damage surfaced as
# degraded (X-Videoapp-Degraded + serve_chunk_degraded) instead of errors.
chaos-smoke:
	./scripts/chaos_smoke.sh

# bench-serve-smoke runs the serve-path benchmarks — hot/cold chunk, the
# contended parallel path, and the prefetch-on/off sequential cold scan —
# at 100 iterations each, so the serving benches (and the readahead path
# they exercise) cannot silently rot. results/serve_bench.md and
# BENCH_serve.json (scripts/bench_json.sh) hold the committed numbers.
bench-serve-smoke:
	$(GO) test -run='^$$' -bench='BenchmarkServe|BenchmarkArchiveReadChunk' -benchtime=100x -benchmem ./internal/serve

# bench-json runs the serve benchmarks at full budget and snapshots the
# machine-readable results into BENCH_serve.json.
bench-json:
	./scripts/bench_json.sh

# bench-smoke compiles and runs every benchmark in the repo exactly once —
# a regression gate for the perf harness itself, cheap enough for check/CI.
bench-smoke:
	$(GO) test -run='^$$' -bench=. -benchtime=1x ./internal/predict ./internal/store ./internal/codec ./internal/entropy ./internal/sim ./internal/serve
	$(GO) test -run='^$$' -bench='BenchmarkParallel|BenchmarkPipeline' -benchtime=1x .
