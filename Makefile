GO ?= go

.PHONY: check build test race bench-parallel bench-stream fmt vet

# check is the full verification gate: vet, build, race-enabled tests.
# Tests run shuffled so inter-test ordering dependencies cannot hide.
check: vet build race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test -shuffle=on ./...

race:
	$(GO) test -race -shuffle=on ./...

fmt:
	gofmt -l -w .

# bench-parallel emits benchstat-friendly serial-vs-parallel numbers for
# every concurrent pipeline stage:
#
#	make bench-parallel > par.txt
#	benchstat -col /workers par.txt
bench-parallel:
	$(GO) test -run='^$$' -bench=BenchmarkParallel -count=10 -benchmem .

# bench-stream compares peak heap of batch Process vs streaming
# ProcessStream/StreamToArchive at 1x and 4x sequence lengths; streaming
# peak memory must stay flat as the input grows (results/stream_bench.md).
bench-stream:
	$(GO) test -run='^$$' -bench=BenchmarkStreamMemory -benchtime=1x .
