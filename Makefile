GO ?= go

.PHONY: check build test race bench-parallel fmt vet

# check is the full verification gate: vet, build, race-enabled tests.
check: vet build race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

fmt:
	gofmt -l -w .

# bench-parallel emits benchstat-friendly serial-vs-parallel numbers for
# every concurrent pipeline stage:
#
#	make bench-parallel > par.txt
#	benchstat -col /workers par.txt
bench-parallel:
	$(GO) test -run='^$$' -bench=BenchmarkParallel -count=10 -benchmem .
