package videoapp_test

// Runnable documentation for the public API (go test runs these and checks
// the output).

import (
	"fmt"

	"videoapp"
)

// The shortest useful workflow: encode, analyze, partition, report density.
func ExamplePipeline() {
	seq, _ := videoapp.GenerateTestVideo("news_like", 64, 48, 6)
	p := videoapp.NewPipeline()
	p.Params.GOPSize = 6
	p.Params.SearchRange = 8
	res, _ := p.Process(seq)
	fmt.Println("frames:", len(res.Video.Frames))
	fmt.Println("partitions:", len(res.Partitions))
	fmt.Println("density positive:", res.Stats.CellsPerPixel > 0)
	// Output:
	// frames: 6
	// partitions: 6
	// density positive: true
}

// Importance is monotone within each frame — the §4.4 pivot property.
func ExampleAnalyze() {
	seq, _ := videoapp.GenerateTestVideo("crew_like", 64, 48, 4)
	p := videoapp.DefaultParams()
	p.GOPSize = 4
	p.SearchRange = 8
	v, _ := videoapp.Encode(seq, p)
	an := videoapp.Analyze(v)
	fmt.Println("monotone:", an.CheckMonotone() == nil)
	fmt.Println("first frame head >= tail:",
		an.Importance[0][0] >= an.Importance[0][len(an.Importance[0])-1])
	// Output:
	// monotone: true
	// first frame head >= tail: true
}

// Containers survive a marshal/unmarshal round trip bit-exactly.
func ExampleMarshal() {
	seq, _ := videoapp.GenerateTestVideo("news_like", 64, 48, 3)
	p := videoapp.DefaultParams()
	p.GOPSize = 3
	p.SearchRange = 8
	v, _ := videoapp.Encode(seq, p)
	data := videoapp.Marshal(v)
	v2, err := videoapp.Unmarshal(data)
	fmt.Println("err:", err)
	fmt.Println("same payload bits:", v2.TotalPayloadBits() == v.TotalPayloadBits())
	// Output:
	// err: <nil>
	// same payload bits: true
}
