package videoapp_test

// Runnable documentation for the public API (go test runs these and checks
// the output).

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"

	"videoapp"
)

// The shortest useful workflow: encode, analyze, partition, report density.
func ExamplePipeline() {
	seq, _ := videoapp.GenerateTestVideo("news_like", 64, 48, 6)
	p := videoapp.NewPipeline()
	p.Params.GOPSize = 6
	p.Params.SearchRange = 8
	res, _ := p.Process(seq)
	fmt.Println("frames:", len(res.Video.Frames))
	fmt.Println("partitions:", len(res.Partitions))
	fmt.Println("density positive:", res.Stats.CellsPerPixel > 0)
	// Output:
	// frames: 6
	// partitions: 6
	// density positive: true
}

// Importance is monotone within each frame — the §4.4 pivot property.
func ExampleAnalyzeContext() {
	seq, _ := videoapp.GenerateTestVideo("crew_like", 64, 48, 4)
	p := videoapp.DefaultParams()
	p.GOPSize = 4
	p.SearchRange = 8
	v, _ := videoapp.EncodeContext(context.Background(), seq, p, 1)
	an, _ := videoapp.AnalyzeContext(context.Background(), v, 1)
	fmt.Println("monotone:", an.CheckMonotone() == nil)
	fmt.Println("first frame head >= tail:",
		an.Importance[0][0] >= an.Importance[0][len(an.Importance[0])-1])
	// Output:
	// monotone: true
	// first frame head >= tail: true
}

// The concurrent read path: stream a video into a chunked archive, open it
// for lock-free random access, and serve decoded chunks over HTTP to many
// clients at once. The decoded-chunk cache coalesces the stampede, so the
// hot chunk is decoded exactly once.
func Example_serve() {
	seq, _ := videoapp.GenerateTestVideo("news_like", 64, 48, 8)
	p := videoapp.NewPipeline(videoapp.WithParams(func() videoapp.Params {
		pp := videoapp.DefaultParams()
		pp.GOPSize = 4
		pp.SearchRange = 8
		return pp
	}()))
	var archive bytes.Buffer
	_, _, err := p.StreamToArchive(context.Background(), videoapp.SequenceSource(seq), &archive)
	if err != nil {
		fmt.Println("archive:", err)
		return
	}

	a, _ := videoapp.OpenArchive(bytes.NewReader(archive.Bytes()))
	// Readahead off so the only decode on the books is the stampede's own.
	srv := videoapp.NewChunkServer(a, videoapp.WithPrefetch(0))
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Sixteen clients stampede the same chunk concurrently.
	var wg sync.WaitGroup
	for c := 0; c < 16; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Get(ts.URL + "/v1/chunks/0")
			if err != nil {
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}()
	}
	wg.Wait()

	stats := srv.CacheStats()
	fmt.Println("chunks served:", a.NumChunks() > 0)
	fmt.Println("decodes under stampede:", stats.Loads)
	// Output:
	// chunks served: true
	// decodes under stampede: 1
}

// Containers survive a marshal/unmarshal round trip bit-exactly.
func ExampleMarshal() {
	seq, _ := videoapp.GenerateTestVideo("news_like", 64, 48, 3)
	p := videoapp.DefaultParams()
	p.GOPSize = 3
	p.SearchRange = 8
	v, _ := videoapp.EncodeContext(context.Background(), seq, p, 1)
	data := videoapp.Marshal(v)
	v2, err := videoapp.Unmarshal(data)
	fmt.Println("err:", err)
	fmt.Println("same payload bits:", v2.TotalPayloadBits() == v.TotalPayloadBits())
	// Output:
	// err: <nil>
	// same payload bits: true
}
