package videoapp

import "testing"

func TestGenerateTestVideo(t *testing.T) {
	seq, err := GenerateTestVideo("crew_like", 64, 48, 6)
	if err != nil {
		t.Fatal(err)
	}
	if len(seq.Frames) != 6 || seq.W() != 64 {
		t.Fatal("geometry")
	}
	if _, err := GenerateTestVideo("nope", 64, 48, 6); err == nil {
		t.Fatal("unknown preset must error")
	}
}

func TestPresetNames(t *testing.T) {
	names := PresetNames()
	if len(names) != 14 {
		t.Fatalf("%d presets", len(names))
	}
}

func TestPipelineEndToEnd(t *testing.T) {
	seq, err := GenerateTestVideo("news_like", 96, 64, 10)
	if err != nil {
		t.Fatal(err)
	}
	p := NewPipeline()
	p.Params.GOPSize = 10
	p.Params.SearchRange = 8
	res, err := p.Process(seq)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.CellsPerPixel <= 0 {
		t.Fatal("no footprint")
	}
	if len(res.Partitions) != len(res.Video.Frames) {
		t.Fatal("partitions")
	}
	dec, flips, err := res.StoreRoundTrip(7)
	if err != nil {
		t.Fatal(err)
	}
	_ = flips
	psnr, err := PSNR(seq, dec)
	if err != nil {
		t.Fatal(err)
	}
	if psnr < 20 {
		t.Fatalf("round-trip PSNR %.1f dB", psnr)
	}
}

func TestFacadeEncodeDecode(t *testing.T) {
	seq, _ := GenerateTestVideo("crew_like", 64, 48, 6)
	p := DefaultParams()
	p.GOPSize = 6
	p.SearchRange = 8
	v, err := encodeSerial(seq, p)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := decodeSerial(v)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := measureSerial(seq, dec)
	if err != nil {
		t.Fatal(err)
	}
	if rep.PSNR < 25 || rep.SSIM < 0.7 {
		t.Fatalf("quality %+v", rep)
	}
}

func TestFacadeStreamsAndEncryption(t *testing.T) {
	seq, _ := GenerateTestVideo("crew_like", 64, 48, 6)
	p := DefaultParams()
	p.GOPSize = 6
	p.SearchRange = 8
	v, err := encodeSerial(seq, p)
	if err != nil {
		t.Fatal(err)
	}
	an := analyzeSerial(t, v)
	parts := an.Partition(PaperAssignment())
	ss, err := SplitStreams(v, parts)
	if err != nil {
		t.Fatal(err)
	}
	key := make([]byte, 16)
	es, err := EncryptStreams(ss, ModeCTR, key, []byte("master"))
	if err != nil {
		t.Fatal(err)
	}
	back, err := es.Decrypt(key, []byte("master"), parts)
	if err != nil {
		t.Fatal(err)
	}
	merged, err := back.Merge(v)
	if err != nil {
		t.Fatal(err)
	}
	if merged.TotalPayloadBits() != v.TotalPayloadBits() {
		t.Fatal("payload size changed through encryption round trip")
	}
}

func TestFacadeParallelEncode(t *testing.T) {
	seq, _ := GenerateTestVideo("crew_like", 64, 48, 16)
	p := DefaultParams()
	p.GOPSize = 8
	p.SearchRange = 8
	serial, err := encodeSerial(seq, p)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := encodeWorkers(seq, p, 3)
	if err != nil {
		t.Fatal(err)
	}
	a, b := Marshal(serial), Marshal(parallel)
	if len(a) != len(b) {
		t.Fatal("parallel encode differs from serial")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("parallel encode differs from serial")
		}
	}
}

func TestFacadeArchive(t *testing.T) {
	seq, _ := GenerateTestVideo("news_like", 64, 48, 6)
	p := NewPipeline()
	p.Params.GOPSize = 6
	p.Params.SearchRange = 8
	res, err := p.Process(seq)
	if err != nil {
		t.Fatal(err)
	}
	ar, err := BuildArchive(res.Video, res.Partitions)
	if err != nil {
		t.Fatal(err)
	}
	restored, parts, err := ar.Restore()
	if err != nil {
		t.Fatal(err)
	}
	if len(parts) != len(res.Partitions) {
		t.Fatal("partitions lost")
	}
	if restored.TotalPayloadBits() != res.Video.TotalPayloadBits() {
		t.Fatal("payload size changed")
	}
}
