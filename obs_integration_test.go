package videoapp

import (
	"bytes"
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

// obsTestVideo is a small two-GOP sequence: long enough that the parallel
// encode path actually fans out, short enough to keep the suite fast.
func obsTestVideo(t testing.TB) (*Sequence, Params) {
	t.Helper()
	seq, err := GenerateTestVideo("news_like", 96, 64, 10)
	if err != nil {
		t.Fatal(err)
	}
	p := DefaultParams()
	p.GOPSize = 5
	p.SearchRange = 8
	return seq, p
}

// runInstrumented processes seq and performs one round trip with a fresh
// Metrics aggregator, returning the snapshot and the residual flip count.
func runInstrumented(t testing.TB, seq *Sequence, p Params, workers int) (MetricsSnapshot, int) {
	t.Helper()
	m := NewMetrics()
	pl := NewPipeline(WithParams(p), WithWorkers(workers), WithSeed(11), WithMetrics(m))
	res, err := pl.ProcessContext(context.Background(), seq)
	if err != nil {
		t.Fatal(err)
	}
	_, flips, err := res.RoundTrip(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	return m.Snapshot(), flips
}

// TestMetricsIdenticalAcrossWorkers pins the determinism contract for the
// aggregator: counters, gauges and per-stage frame totals are pure functions
// of the input and seed, independent of the worker count. Only wall-clock
// figures may differ between the serial and parallel runs.
func TestMetricsIdenticalAcrossWorkers(t *testing.T) {
	seq, p := obsTestVideo(t)
	s1, f1 := runInstrumented(t, seq, p, 1)
	s8, f8 := runInstrumented(t, seq, p, 8)

	if f1 != f8 {
		t.Fatalf("flips differ across worker counts: %d vs %d", f1, f8)
	}
	if len(s1.Counters) != len(s8.Counters) {
		t.Fatalf("counter sets differ: %d vs %d", len(s1.Counters), len(s8.Counters))
	}
	for i, c := range s1.Counters {
		if s8.Counters[i] != c {
			t.Fatalf("counter %s[%s]: workers=1 %d, workers=8 %d",
				c.Name, c.Label, c.Value, s8.Counters[i].Value)
		}
	}
	if len(s1.Gauges) != len(s8.Gauges) {
		t.Fatalf("gauge sets differ: %d vs %d", len(s1.Gauges), len(s8.Gauges))
	}
	for i, g := range s1.Gauges {
		if s8.Gauges[i] != g {
			t.Fatalf("gauge %s[%s]: workers=1 %v, workers=8 %v",
				g.Name, g.Label, g.Value, s8.Gauges[i].Value)
		}
	}
	if len(s1.Stages) != len(s8.Stages) {
		t.Fatalf("stage sets differ: %d vs %d", len(s1.Stages), len(s8.Stages))
	}
	for i, st := range s1.Stages {
		other := s8.Stages[i]
		if st.Stage != other.Stage || st.Calls != other.Calls || st.Frames != other.Frames {
			t.Fatalf("stage %s: workers=1 {calls %d frames %d}, workers=8 {calls %d frames %d}",
				st.Stage, st.Calls, st.Frames, other.Calls, other.Frames)
		}
	}
}

// TestMetricsReconcileWithResult checks the reconciliation contract
// documented on Result.Metrics: the footprint counters equal the Stats
// breakdown and the residual-flip total equals the sum of the flip counts
// returned by the round trips.
func TestMetricsReconcileWithResult(t *testing.T) {
	seq, p := obsTestVideo(t)
	m := NewMetrics()
	pl := NewPipeline(WithParams(p), WithWorkers(4), WithSeed(3), WithMetrics(m))
	res, err := pl.ProcessContext(context.Background(), seq)
	if err != nil {
		t.Fatal(err)
	}
	_, flipsA, err := res.RoundTrip(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	_, flipsB, err := res.StoreRoundTripContext(context.Background(), 99)
	if err != nil {
		t.Fatal(err)
	}

	snap := res.Metrics()
	for name, bits := range res.Stats.PerScheme {
		if got := snap.Counter("footprint_payload_bits", name); got != bits {
			t.Fatalf("payload bits %s: counter %d, Stats %d", name, got, bits)
		}
	}
	if got := snap.CounterTotal("footprint_payload_bits"); got != res.Stats.PayloadBits {
		t.Fatalf("payload total: counter %d, Stats %d", got, res.Stats.PayloadBits)
	}
	if got := snap.Counter("footprint_header_bits", ""); got != res.Stats.HeaderBits {
		t.Fatalf("header bits: counter %d, Stats %d", got, res.Stats.HeaderBits)
	}
	if got := snap.Gauge("footprint_cells_per_pixel", ""); got != res.Stats.CellsPerPixel {
		t.Fatalf("cells/pixel: gauge %v, Stats %v", got, res.Stats.CellsPerPixel)
	}
	if got := snap.CounterTotal("store_residual_flips"); got != int64(flipsA+flipsB) {
		t.Fatalf("residual flips: counter %d, round trips returned %d", got, flipsA+flipsB)
	}
	if raw := snap.CounterTotal("store_raw_flips"); raw < snap.CounterTotal("store_residual_flips") {
		t.Fatalf("raw flips %d below residual flips", raw)
	}
	// Encoded and decoded frame counts cover the whole sequence: one encode
	// pass and two round-trip decodes.
	n := int64(len(seq.Frames))
	if got := snap.CounterTotal("encode_frames"); got != n {
		t.Fatalf("encode_frames %d, want %d", got, n)
	}
	if got := snap.CounterTotal("decode_frames"); got != 2*n {
		t.Fatalf("decode_frames %d, want %d", got, 2*n)
	}
}

// cancelOnFrame cancels a context after the Nth FrameDone event in the
// given stage, forcing a mid-stage abort while other workers are in flight.
type cancelOnFrame struct {
	Observer
	stage  string
	after  int
	cancel context.CancelFunc

	mu   sync.Mutex
	seen int
}

func (c *cancelOnFrame) FrameDone(stage string, frames int) {
	c.Observer.FrameDone(stage, frames)
	if stage != c.stage {
		return
	}
	c.mu.Lock()
	c.seen += frames
	hit := c.seen >= c.after
	c.mu.Unlock()
	if hit {
		c.cancel()
	}
}

// TestMetricsConsistentUnderCancellation aborts a run mid-encode and checks
// that the aggregator stays internally consistent: no counter exceeds the
// full-run totals, a snapshot is immediately readable, and the same Metrics
// can be reset and reused for a clean run.
func TestMetricsConsistentUnderCancellation(t *testing.T) {
	seq, p := obsTestVideo(t)
	full, _ := runInstrumented(t, seq, p, 4)

	m := NewMetrics()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	tripwire := &cancelOnFrame{Observer: m, stage: "encode", after: 3, cancel: cancel}
	pl := NewPipeline(WithParams(p), WithWorkers(4), WithSeed(11), WithObserver(tripwire))

	_, err := pl.ProcessContext(ctx, seq)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled run returned %v, want context.Canceled", err)
	}
	snap := m.Snapshot()
	for _, c := range snap.Counters {
		if c.Value > full.Counter(c.Name, c.Label) {
			t.Fatalf("counter %s[%s]=%d exceeds full-run value %d",
				c.Name, c.Label, c.Value, full.Counter(c.Name, c.Label))
		}
	}
	for _, st := range snap.Stages {
		if st.Frames > int64(len(seq.Frames)) {
			t.Fatalf("stage %s reported %d frames for a %d-frame input",
				st.Stage, st.Frames, len(seq.Frames))
		}
	}

	// The aggregator is reusable after Reset: a clean run on the same
	// Metrics reproduces the full-run counters exactly.
	m.Reset()
	pl2 := NewPipeline(WithParams(p), WithWorkers(4), WithSeed(11), WithMetrics(m))
	res, err := pl2.ProcessContext(context.Background(), seq)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := res.RoundTrip(context.Background()); err != nil {
		t.Fatal(err)
	}
	redo := m.Snapshot()
	if len(redo.Counters) != len(full.Counters) {
		t.Fatalf("post-reset counter set differs: %d vs %d", len(redo.Counters), len(full.Counters))
	}
	for i, c := range full.Counters {
		if redo.Counters[i] != c {
			t.Fatalf("post-reset counter %s[%s]: %d, want %d",
				c.Name, c.Label, redo.Counters[i].Value, c.Value)
		}
	}
}

// TestMetricsConcurrentReadDuringRun snapshots the aggregator from another
// goroutine while the pipeline is writing to it. Run under -race this pins
// the thread-safety of Metrics against live pipeline traffic.
func TestMetricsConcurrentReadDuringRun(t *testing.T) {
	seq, p := obsTestVideo(t)
	m := NewMetrics()
	pl := NewPipeline(WithParams(p), WithWorkers(4), WithSeed(7), WithMetrics(m))

	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-done:
				return
			default:
				snap := m.Snapshot()
				if snap.CounterTotal("encode_frames") > int64(len(seq.Frames)) {
					panic("encode_frames overshoot")
				}
				time.Sleep(50 * time.Microsecond)
			}
		}
	}()

	res, err := pl.ProcessContext(context.Background(), seq)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := res.RoundTrip(context.Background()); err != nil {
		t.Fatal(err)
	}
	close(done)
	wg.Wait()

	if got := m.Snapshot().CounterTotal("encode_frames"); got != int64(len(seq.Frames)) {
		t.Fatalf("encode_frames %d, want %d", got, len(seq.Frames))
	}
}

// TestObserverDoesNotPerturbOutput pins the passivity contract: attaching
// any observer leaves the pipeline output bit-identical to an unobserved
// run at the same seed.
func TestObserverDoesNotPerturbOutput(t *testing.T) {
	seq, p := obsTestVideo(t)

	plain := NewPipeline(WithParams(p), WithWorkers(4), WithSeed(21))
	resPlain, err := plain.ProcessContext(context.Background(), seq)
	if err != nil {
		t.Fatal(err)
	}
	decPlain, flipsPlain, err := resPlain.RoundTrip(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	m := NewMetrics()
	observed := NewPipeline(WithParams(p), WithWorkers(4), WithSeed(21), WithMetrics(m))
	resObs, err := observed.ProcessContext(context.Background(), seq)
	if err != nil {
		t.Fatal(err)
	}
	decObs, flipsObs, err := resObs.RoundTrip(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	if flipsPlain != flipsObs {
		t.Fatalf("flips: plain %d, observed %d", flipsPlain, flipsObs)
	}
	for i := range decPlain.Frames {
		a, b := decPlain.Frames[i], decObs.Frames[i]
		if !bytes.Equal(a.Y, b.Y) || !bytes.Equal(a.Cb, b.Cb) || !bytes.Equal(a.Cr, b.Cr) {
			t.Fatalf("frame %d differs with observer attached", i)
		}
	}
}
