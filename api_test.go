package videoapp

import (
	"context"
	"errors"
	"testing"
)

func apiTestSequence(t *testing.T) *Sequence {
	t.Helper()
	seq, err := GenerateTestVideo("crew_like", 96, 64, 12)
	if err != nil {
		t.Fatal(err)
	}
	return seq
}

func apiTestParams() Params {
	p := DefaultParams()
	p.GOPSize = 4
	p.SearchRange = 8
	return p
}

// TestOptionsConfigurePipeline checks that every functional option lands on
// the corresponding field and that NewPipeline() without options keeps the
// paper defaults.
func TestOptionsConfigurePipeline(t *testing.T) {
	def := NewPipeline()
	if def.Workers != 0 || def.BlockAccurate {
		t.Fatalf("defaults changed: %+v", def)
	}
	p := apiTestParams()
	cfg := NewPipeline(
		WithParams(p),
		WithAssignment(UniformAssignment()),
		WithWorkers(3),
		WithBlockAccurate(true),
	)
	if cfg.Params.GOPSize != 4 || cfg.Workers != 3 || !cfg.BlockAccurate {
		t.Fatalf("options not applied: %+v", cfg)
	}
	if len(cfg.Assignment.Bounds) != len(UniformAssignment().Bounds) {
		t.Fatal("WithAssignment not applied")
	}
	// Field mutation (the compatibility path) must still work.
	legacy := NewPipeline()
	legacy.Params = p
	legacy.Workers = 2
	if _, err := legacy.Process(apiTestSequence(t)); err != nil {
		t.Fatal(err)
	}
}

// TestRoundTripWorkerInvariance is the headline determinism guarantee: the
// full pipeline plus a seeded storage round trip produces bit-identical
// results at every worker count.
func TestRoundTripWorkerInvariance(t *testing.T) {
	seq := apiTestSequence(t)
	var refStored *Sequence
	var refFlips int
	var refStats StorageStats
	for _, workers := range []int{1, 2, 8} {
		p := NewPipeline(WithParams(apiTestParams()), WithWorkers(workers))
		res, err := p.Process(seq)
		if err != nil {
			t.Fatal(err)
		}
		dec, flips, err := res.StoreRoundTrip(7)
		if err != nil {
			t.Fatal(err)
		}
		if workers == 1 {
			refStored, refFlips, refStats = dec, flips, res.Stats
			continue
		}
		if flips != refFlips {
			t.Fatalf("workers=%d: %d flips, serial %d", workers, flips, refFlips)
		}
		if res.Stats.Cells != refStats.Cells || res.Stats.PayloadBits != refStats.PayloadBits {
			t.Fatalf("workers=%d: stats diverge: %+v vs %+v", workers, res.Stats, refStats)
		}
		if len(dec.Frames) != len(refStored.Frames) {
			t.Fatalf("workers=%d: frame count differs", workers)
		}
		for f := range dec.Frames {
			a, b := dec.Frames[f], refStored.Frames[f]
			for i := range a.Y {
				if a.Y[i] != b.Y[i] {
					t.Fatalf("workers=%d: frame %d luma differs at %d", workers, f, i)
				}
			}
		}
	}
}

// TestStoreRoundTripReusesSystem checks the Process-time system is reused:
// two round trips on one Result must not rebuild state, and the same seed
// must reproduce the same flip count.
func TestStoreRoundTripReusesSystem(t *testing.T) {
	p := NewPipeline(WithParams(apiTestParams()))
	res, err := p.Process(apiTestSequence(t))
	if err != nil {
		t.Fatal(err)
	}
	_, flips1, err := res.StoreRoundTrip(42)
	if err != nil {
		t.Fatal(err)
	}
	_, flips2, err := res.StoreRoundTrip(42)
	if err != nil {
		t.Fatal(err)
	}
	if flips1 != flips2 {
		t.Fatalf("same seed, different flips: %d vs %d", flips1, flips2)
	}
}

func TestProcessContextCancelled(t *testing.T) {
	seq := apiTestSequence(t)
	p := NewPipeline(WithParams(apiTestParams()), WithWorkers(2))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := p.ProcessContext(ctx, seq); !errors.Is(err, context.Canceled) {
		t.Fatalf("ProcessContext: got %v", err)
	}
	res, err := p.Process(seq)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := res.StoreRoundTripContext(ctx, 1); !errors.Is(err, context.Canceled) {
		t.Fatalf("StoreRoundTripContext: got %v", err)
	}
}

// TestSentinelErrors checks the public sentinels surface through errors.Is
// from every layer that raises them.
func TestSentinelErrors(t *testing.T) {
	if _, err := GenerateTestVideo("no_such_preset", 32, 32, 2); !errors.Is(err, ErrUnknownPreset) {
		t.Fatalf("preset: got %v", err)
	}
	seq := apiTestSequence(t)
	v, err := encodeSerial(seq, apiTestParams())
	if err != nil {
		t.Fatal(err)
	}
	an := analyzeSerial(t, v)
	parts := an.Partition(PaperAssignment())
	if _, err := SplitStreams(v, parts[:1]); !errors.Is(err, ErrPartitionMismatch) {
		t.Fatalf("split: got %v", err)
	}
	p := NewPipeline(WithParams(apiTestParams()))
	res, err := p.Process(seq)
	if err != nil {
		t.Fatal(err)
	}
	res.Partitions = res.Partitions[:1]
	if _, _, err := res.StoreRoundTrip(1); !errors.Is(err, ErrPartitionMismatch) {
		t.Fatalf("round trip: got %v", err)
	}
	an.Importance[0][1] = an.Importance[0][0] + 10
	if err := an.CheckMonotone(); !errors.Is(err, ErrNonMonotone) {
		t.Fatalf("monotone: got %v", err)
	}
}

// TestBlockAccurateOption checks the option reaches the storage layer: the
// block-accurate simulator is deterministic per seed and still decodes.
func TestBlockAccurateOption(t *testing.T) {
	seq := apiTestSequence(t)
	p := NewPipeline(WithParams(apiTestParams()), WithBlockAccurate(true), WithWorkers(4))
	res, err := p.Process(seq)
	if err != nil {
		t.Fatal(err)
	}
	_, flips1, err := res.StoreRoundTrip(9)
	if err != nil {
		t.Fatal(err)
	}
	_, flips2, err := res.StoreRoundTrip(9)
	if err != nil {
		t.Fatal(err)
	}
	if flips1 != flips2 {
		t.Fatalf("block-accurate not deterministic: %d vs %d", flips1, flips2)
	}
}
