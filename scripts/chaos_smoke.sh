#!/usr/bin/env bash
# chaos_smoke.sh — end-to-end smoke test of the fault-tolerant read path:
# build the CLI, archive a synthetic video, corrupt one stream payload byte,
# then serve the damaged archive under a seeded deterministic fault profile
# (transient read errors on top of the corruption). Every chunk must still
# serve with HTTP 200 — zero 5xx responses — with the damaged chunk flagged
# via the X-Videoapp-Degraded header and the serve_chunk_degraded counter.
set -euo pipefail
cd "$(dirname "$0")/.."
GO=${GO:-go}

tmp=$(mktemp -d)
pid=""
cleanup() {
    [ -n "$pid" ] && kill "$pid" 2>/dev/null || true
    rm -rf "$tmp"
}
trap cleanup EXIT

fetch_code() { # fetch_code URL HEADERS BODY — prints the HTTP status code
    if command -v curl >/dev/null 2>&1; then
        curl -sS -D "$2" -o "$3" -w '%{http_code}' "$1"
    else
        wget -q -S -O "$3" "$1" 2>"$2" || true
        sed -n 's/^ *HTTP\/[0-9.]* \([0-9][0-9][0-9]\).*/\1/p' "$2" | tail -n 1
    fi
}

echo "== build"
$GO build -o "$tmp/videoapp" ./cmd/videoapp

echo "== archive"
"$tmp/videoapp" -frames 16 -gop 4 -w 96 -h 64 -chunk-gops 1 -o "$tmp/t.vacs" archive

echo "== corrupt one stream payload byte"
size=$(wc -c <"$tmp/t.vacs")
off=$((size - 1)) # last byte = tail of the last chunk's final approximate stream
b=$(od -An -tu1 -j "$off" -N 1 "$tmp/t.vacs" | tr -d ' ')
printf "$(printf '\\%03o' $((b ^ 255)))" \
    | dd of="$tmp/t.vacs" bs=1 seek="$off" conv=notrunc 2>/dev/null

echo "== serve under seeded faults"
"$tmp/videoapp" -archive "$tmp/t.vacs" -addr 127.0.0.1:0 \
    -fault-profile "seed=7,transient=0.01" -read-retries 6 \
    serve >"$tmp/serve.log" 2>&1 &
pid=$!

url=""
for _ in $(seq 1 100); do
    url=$(sed -n 's#^serving .* on \(http://[^ ]*\)$#\1#p' "$tmp/serve.log" | head -n 1)
    [ -n "$url" ] && break
    kill -0 "$pid" 2>/dev/null || { echo "server died:"; cat "$tmp/serve.log"; exit 1; }
    sleep 0.1
done
[ -n "$url" ] || { echo "server never reported its address:"; cat "$tmp/serve.log"; exit 1; }
echo "   up at $url"

echo "== fetch every chunk twice (cold + cached)"
errors=0
degraded=0
for pass in 1 2; do
    for i in 0 1 2 3; do
        code=$(fetch_code "$url/v1/chunks/$i" "$tmp/h.txt" "$tmp/b.y4m")
        case "$code" in
        2??) ;;
        5??)
            echo "chunk $i pass $pass: HTTP $code"
            errors=$((errors + 1))
            ;;
        *)
            echo "chunk $i pass $pass: unexpected HTTP $code"
            errors=$((errors + 1))
            ;;
        esac
        if grep -qi '^x-videoapp-degraded:' "$tmp/h.txt"; then
            degraded=$((degraded + 1))
        fi
    done
done
[ "$errors" -eq 0 ] || { echo "$errors non-2xx chunk responses"; cat "$tmp/serve.log"; exit 1; }
[ "$degraded" -ge 1 ] || { echo "no degraded responses despite corruption"; exit 1; }
echo "   0 errors, $degraded degraded responses"

echo "== metrics"
code=$(fetch_code "$url/metrics" "$tmp/h.txt" "$tmp/metrics.txt")
[ "$code" = 200 ] || { echo "/metrics HTTP $code"; exit 1; }
grep -q 'serve_chunk_degraded' "$tmp/metrics.txt" \
    || { echo "metrics missing serve_chunk_degraded:"; cat "$tmp/metrics.txt"; exit 1; }

echo "== shutdown"
kill -INT "$pid"
if ! wait "$pid"; then
    echo "server exited non-zero:"; cat "$tmp/serve.log"; exit 1
fi
pid=""

echo "== catalog under the same faults"
mkdir "$tmp/archives"
cp "$tmp/t.vacs" "$tmp/archives/a.vacs"
cp "$tmp/t.vacs" "$tmp/archives/b.vacs"
"$tmp/videoapp" -archive-dir "$tmp/archives" -addr 127.0.0.1:0 \
    -fault-profile "seed=7,transient=0.01" -read-retries 6 \
    serve >"$tmp/catalog.log" 2>&1 &
pid=$!

url=""
for _ in $(seq 1 100); do
    url=$(sed -n 's#^serving .* on \(http://[^ ]*\).*$#\1#p' "$tmp/catalog.log" | head -n 1)
    [ -n "$url" ] && break
    kill -0 "$pid" 2>/dev/null || { echo "catalog server died:"; cat "$tmp/catalog.log"; exit 1; }
    sleep 0.1
done
[ -n "$url" ] || { echo "catalog server never reported its address:"; cat "$tmp/catalog.log"; exit 1; }
echo "   up at $url"

errors=0
degraded=0
for name in a b; do
    for i in 0 1 2 3; do
        code=$(fetch_code "$url/v1/archives/$name/chunks/$i" "$tmp/h.txt" "$tmp/b.y4m")
        case "$code" in
        2??) ;;
        *)
            echo "archive $name chunk $i: HTTP $code"
            errors=$((errors + 1))
            ;;
        esac
        if grep -qi '^x-videoapp-degraded:' "$tmp/h.txt"; then
            degraded=$((degraded + 1))
        fi
    done
done
[ "$errors" -eq 0 ] || { echo "$errors non-2xx catalog responses"; cat "$tmp/catalog.log"; exit 1; }
[ "$degraded" -ge 1 ] || { echo "no degraded catalog responses despite corruption"; exit 1; }
echo "   0 errors, $degraded degraded responses across 2 archives"

code=$(fetch_code "$url/metrics" "$tmp/h.txt" "$tmp/metrics.txt")
[ "$code" = 200 ] || { echo "/metrics HTTP $code"; exit 1; }
grep -q 'serve_catalog_open_archives' "$tmp/metrics.txt" \
    || { echo "metrics missing open-archives gauge:"; cat "$tmp/metrics.txt"; exit 1; }

echo "== catalog shutdown"
kill -INT "$pid"
if ! wait "$pid"; then
    echo "catalog server exited non-zero:"; cat "$tmp/catalog.log"; exit 1
fi
pid=""
echo "chaos smoke OK"
