#!/bin/sh
# benchcmp.sh OLD.txt NEW.txt — compare two `go test -bench` outputs.
#
# Produce the inputs with repeated runs so the deltas are statistically
# meaningful, e.g.:
#
#	make bench > old.txt        # on the baseline commit
#	make bench > new.txt        # on the optimized commit
#	scripts/benchcmp.sh old.txt new.txt
#
# Uses benchstat when it is on PATH (preferred: proper significance tests
# across -count runs). Falls back to a plain awk old-vs-new table of ns/op,
# B/op and allocs/op with speedup ratios, so the comparison works on machines
# where benchstat is not installed — nothing is downloaded.
set -eu

if [ $# -ne 2 ]; then
	echo "usage: $0 old.txt new.txt" >&2
	exit 2
fi
old=$1
new=$2

if command -v benchstat >/dev/null 2>&1; then
	exec benchstat "$old" "$new"
fi

echo "benchstat not found; falling back to awk comparison" >&2
awk '
# Collect "BenchmarkName  N  123 ns/op [... 456 B/op  7 allocs/op]" lines.
# With -count > 1 the same benchmark repeats; keep the minimum ns/op sample
# (least noise-contaminated) rather than whichever happened to come last.
/^Benchmark/ {
	name = $1
	for (i = 2; i < NF; i++) {
		if ($(i + 1) == "ns/op" && (!((FILENAME, name) in ns) || $i + 0 < ns[FILENAME, name] + 0))
			ns[FILENAME, name] = $i
		if ($(i + 1) == "B/op")      bytes[FILENAME, name] = $i
		if ($(i + 1) == "allocs/op") allocs[FILENAME, name] = $i
	}
	if (FILENAME == ARGV[1] && !(name in seen)) { seen[name] = 1; order[n++] = name }
}
END {
	oldf = ARGV[1]; newf = ARGV[2]
	printf "%-52s %14s %14s %9s %9s\n", "benchmark", "old ns/op", "new ns/op", "speedup", "allocs"
	for (i = 0; i < n; i++) {
		name = order[i]
		if (!((newf, name) in ns)) continue
		o = ns[oldf, name]; w = ns[newf, name]
		ratio = (w > 0) ? o / w : 0
		amsg = "-"
		if ((oldf, name) in allocs && (newf, name) in allocs)
			amsg = allocs[oldf, name] "->" allocs[newf, name]
		printf "%-52s %14.1f %14.1f %8.2fx %9s\n", name, o, w, ratio, amsg
	}
}' "$old" "$new"
