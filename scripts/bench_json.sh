#!/usr/bin/env bash
# bench_json.sh — run the serve-path benchmarks and emit machine-readable
# results, so the serving layer's perf trajectory is tracked across PRs.
#
# The human-readable `go test -bench` output is echoed as it arrives; the
# parsed results land in BENCH_serve.json (override with OUT=) as an array
# of {name, ns_per_op, bytes_per_op, allocs_per_op}. BENCHTIME= overrides
# the per-benchmark budget (default 1s; use e.g. 100x for a smoke run).
set -euo pipefail
cd "$(dirname "$0")/.."
GO=${GO:-go}
OUT=${OUT:-BENCH_serve.json}
BENCHTIME=${BENCHTIME:-1s}

raw=$($GO test -run='^$' -bench='BenchmarkServe|BenchmarkArchiveReadChunk' \
    -benchtime="$BENCHTIME" -benchmem ./internal/serve)
printf '%s\n' "$raw"

printf '%s\n' "$raw" | awk '
BEGIN { print "["; n = 0 }
/^Benchmark/ {
    name = $1; ns = ""; bop = "null"; aop = "null"
    for (i = 2; i <= NF; i++) {
        if ($i == "ns/op")     ns  = $(i-1)
        if ($i == "B/op")      bop = $(i-1)
        if ($i == "allocs/op") aop = $(i-1)
    }
    if (ns == "") next
    if (n++) printf ",\n"
    printf "  {\"name\": \"%s\", \"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s}", \
        name, ns, bop, aop
}
END { print "\n]" }
' > "$OUT"
echo "wrote $OUT"
