#!/usr/bin/env bash
# serve_smoke.sh — end-to-end smoke test of the chunk server: build the CLI,
# archive a synthetic video, start `videoapp serve` on an ephemeral port,
# fetch the index and one decoded chunk (asserting HTTP 200 and sane
# bodies), then SIGINT the server and require a clean drained exit.
# A second pass exercises the multi-archive catalog: `serve -archive-dir`
# over a directory of archives, the /v1/archives routes, the legacy-alias
# equivalence, and a SIGHUP rescan picking up a new archive live.
set -euo pipefail
cd "$(dirname "$0")/.."
GO=${GO:-go}

tmp=$(mktemp -d)
pid=""
cleanup() {
    [ -n "$pid" ] && kill "$pid" 2>/dev/null || true
    rm -rf "$tmp"
}
trap cleanup EXIT

fetch() { # fetch URL OUT — fails on non-2xx
    if command -v curl >/dev/null 2>&1; then
        curl -fsS -o "$2" "$1"
    else
        wget -q -O "$2" "$1"
    fi
}

echo "== build"
$GO build -o "$tmp/videoapp" ./cmd/videoapp

echo "== archive"
"$tmp/videoapp" -frames 16 -gop 4 -w 96 -h 64 -chunk-gops 1 -o "$tmp/t.vacs" archive

echo "== serve"
"$tmp/videoapp" -archive "$tmp/t.vacs" -addr 127.0.0.1:0 serve >"$tmp/serve.log" 2>&1 &
pid=$!

url=""
for _ in $(seq 1 100); do
    url=$(sed -n 's#^serving .* on \(http://[^ ]*\)$#\1#p' "$tmp/serve.log" | head -n 1)
    [ -n "$url" ] && break
    kill -0 "$pid" 2>/dev/null || { echo "server died:"; cat "$tmp/serve.log"; exit 1; }
    sleep 0.1
done
[ -n "$url" ] || { echo "server never reported its address:"; cat "$tmp/serve.log"; exit 1; }
echo "   up at $url"

echo "== index"
fetch "$url/v1/archive" "$tmp/index.json"
grep -q '"chunks":4' "$tmp/index.json" || { echo "unexpected index:"; cat "$tmp/index.json"; exit 1; }

echo "== chunk 0"
fetch "$url/v1/chunks/0" "$tmp/chunk0.y4m"
head -c 9 "$tmp/chunk0.y4m" | grep -q 'YUV4MPEG' || { echo "chunk 0 is not y4m"; exit 1; }
[ "$(wc -c <"$tmp/chunk0.y4m")" -gt 1000 ] || { echo "chunk 0 implausibly small"; exit 1; }

echo "== metrics"
fetch "$url/metrics" "$tmp/metrics.txt"
grep -q 'serve_chunk_decodes' "$tmp/metrics.txt" || { echo "metrics missing decode counter"; exit 1; }

echo "== shutdown"
kill -INT "$pid"
if ! wait "$pid"; then
    echo "server exited non-zero:"; cat "$tmp/serve.log"; exit 1
fi
grep -q 'server drained' "$tmp/serve.log" || { echo "no drained message:"; cat "$tmp/serve.log"; exit 1; }
pid=""

echo "== catalog: serve -archive-dir"
mkdir "$tmp/archives"
cp "$tmp/t.vacs" "$tmp/archives/alpha.vacs"
cp "$tmp/t.vacs" "$tmp/archives/beta.vacs"
"$tmp/videoapp" -archive-dir "$tmp/archives" -addr 127.0.0.1:0 serve >"$tmp/catalog.log" 2>&1 &
pid=$!

url=""
for _ in $(seq 1 100); do
    url=$(sed -n 's#^serving .* on \(http://[^ ]*\).*$#\1#p' "$tmp/catalog.log" | head -n 1)
    [ -n "$url" ] && break
    kill -0 "$pid" 2>/dev/null || { echo "catalog server died:"; cat "$tmp/catalog.log"; exit 1; }
    sleep 0.1
done
[ -n "$url" ] || { echo "catalog server never reported its address:"; cat "$tmp/catalog.log"; exit 1; }
echo "   up at $url"

echo "== catalog listing"
fetch "$url/v1/archives" "$tmp/archives.json"
grep -q '"name":"alpha"' "$tmp/archives.json" || { echo "listing missing alpha:"; cat "$tmp/archives.json"; exit 1; }
grep -q '"name":"beta"' "$tmp/archives.json" || { echo "listing missing beta:"; cat "$tmp/archives.json"; exit 1; }

echo "== named chunk route"
fetch "$url/v1/archives/beta/chunks/0" "$tmp/beta0.y4m"
head -c 9 "$tmp/beta0.y4m" | grep -q 'YUV4MPEG' || { echo "beta chunk 0 is not y4m"; exit 1; }

echo "== legacy alias = default archive"
fetch "$url/v1/chunks/0" "$tmp/legacy0.y4m"
fetch "$url/v1/archives/alpha/chunks/0" "$tmp/alpha0.y4m"
cmp -s "$tmp/legacy0.y4m" "$tmp/alpha0.y4m" \
    || { echo "legacy /v1/chunks/0 differs from default archive alpha"; exit 1; }

echo "== SIGHUP rescan picks up a new archive"
cp "$tmp/t.vacs" "$tmp/archives/gamma.vacs"
kill -HUP "$pid"
found=""
for _ in $(seq 1 100); do
    fetch "$url/v1/archives" "$tmp/archives.json" || true
    if grep -q '"name":"gamma"' "$tmp/archives.json"; then found=1; break; fi
    sleep 0.1
done
[ -n "$found" ] || { echo "rescan never picked up gamma:"; cat "$tmp/archives.json"; exit 1; }
fetch "$url/v1/archives/gamma/chunks/0" "$tmp/gamma0.y4m"
head -c 9 "$tmp/gamma0.y4m" | grep -q 'YUV4MPEG' || { echo "gamma chunk 0 is not y4m"; exit 1; }

echo "== catalog metrics"
fetch "$url/metrics" "$tmp/metrics.txt"
grep -q 'serve_catalog_open_archives' "$tmp/metrics.txt" \
    || { echo "metrics missing open-archives gauge:"; cat "$tmp/metrics.txt"; exit 1; }

echo "== catalog shutdown"
kill -INT "$pid"
if ! wait "$pid"; then
    echo "catalog server exited non-zero:"; cat "$tmp/catalog.log"; exit 1
fi
grep -q 'server drained' "$tmp/catalog.log" || { echo "no drained message:"; cat "$tmp/catalog.log"; exit 1; }
pid=""
echo "serve smoke OK"
