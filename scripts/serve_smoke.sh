#!/usr/bin/env bash
# serve_smoke.sh — end-to-end smoke test of the chunk server: build the CLI,
# archive a synthetic video, start `videoapp serve` on an ephemeral port,
# fetch the index and one decoded chunk (asserting HTTP 200 and sane
# bodies), then SIGINT the server and require a clean drained exit.
set -euo pipefail
cd "$(dirname "$0")/.."
GO=${GO:-go}

tmp=$(mktemp -d)
pid=""
cleanup() {
    [ -n "$pid" ] && kill "$pid" 2>/dev/null || true
    rm -rf "$tmp"
}
trap cleanup EXIT

fetch() { # fetch URL OUT — fails on non-2xx
    if command -v curl >/dev/null 2>&1; then
        curl -fsS -o "$2" "$1"
    else
        wget -q -O "$2" "$1"
    fi
}

echo "== build"
$GO build -o "$tmp/videoapp" ./cmd/videoapp

echo "== archive"
"$tmp/videoapp" -frames 16 -gop 4 -w 96 -h 64 -chunk-gops 1 -o "$tmp/t.vacs" archive

echo "== serve"
"$tmp/videoapp" -archive "$tmp/t.vacs" -addr 127.0.0.1:0 serve >"$tmp/serve.log" 2>&1 &
pid=$!

url=""
for _ in $(seq 1 100); do
    url=$(sed -n 's#^serving .* on \(http://[^ ]*\)$#\1#p' "$tmp/serve.log" | head -n 1)
    [ -n "$url" ] && break
    kill -0 "$pid" 2>/dev/null || { echo "server died:"; cat "$tmp/serve.log"; exit 1; }
    sleep 0.1
done
[ -n "$url" ] || { echo "server never reported its address:"; cat "$tmp/serve.log"; exit 1; }
echo "   up at $url"

echo "== index"
fetch "$url/v1/archive" "$tmp/index.json"
grep -q '"chunks":4' "$tmp/index.json" || { echo "unexpected index:"; cat "$tmp/index.json"; exit 1; }

echo "== chunk 0"
fetch "$url/v1/chunks/0" "$tmp/chunk0.y4m"
head -c 9 "$tmp/chunk0.y4m" | grep -q 'YUV4MPEG' || { echo "chunk 0 is not y4m"; exit 1; }
[ "$(wc -c <"$tmp/chunk0.y4m")" -gt 1000 ] || { echo "chunk 0 implausibly small"; exit 1; }

echo "== metrics"
fetch "$url/metrics" "$tmp/metrics.txt"
grep -q 'serve_chunk_decodes' "$tmp/metrics.txt" || { echo "metrics missing decode counter"; exit 1; }

echo "== shutdown"
kill -INT "$pid"
if ! wait "$pid"; then
    echo "server exited non-zero:"; cat "$tmp/serve.log"; exit 1
fi
grep -q 'server drained' "$tmp/serve.log" || { echo "no drained message:"; cat "$tmp/serve.log"; exit 1; }
pid=""
echo "serve smoke OK"
