#!/usr/bin/env bash
# lint.sh — the repo's lint gate: staticcheck (pinned) plus vetvideoapp, the
# project-specific invariant suite in internal/analysis.
#
# Usage: lint.sh [staticcheck|vetvideoapp|all]   (default: all)
#
# staticcheck resolution order:
#   1. a staticcheck binary on PATH (any provenance — used as-is),
#   2. the pinned module version via `go run` (needs the module proxy),
#   3. offline (no binary, no proxy): warn and skip, so air-gapped dev
#      machines still pass `make check`; CI has network and enforces.
#
# vetvideoapp has no such ladder: it is part of this module, needs nothing
# beyond the go tool, and always runs — offline machines get the full
# invariant gate even when staticcheck is skipped.
set -uo pipefail
cd "$(dirname "$0")/.."
GO=${GO:-go}
MODE=${1:-all}

# The one place the staticcheck version is pinned.
STATICCHECK_VERSION=2025.1

run_staticcheck() {
    if command -v staticcheck >/dev/null 2>&1; then
        echo "== staticcheck ($(command -v staticcheck))"
        staticcheck ./...
        return $?
    fi
    echo "== staticcheck (go run honnef.co/go/tools/cmd/staticcheck@$STATICCHECK_VERSION)"
    local out status
    out=$($GO run "honnef.co/go/tools/cmd/staticcheck@$STATICCHECK_VERSION" ./... 2>&1)
    status=$?
    if [ $status -eq 0 ]; then
        [ -n "$out" ] && echo "$out"
        return 0
    fi
    # Distinguish analyzer findings from an unreachable module proxy:
    # findings must fail the build, a missing network must not.
    if echo "$out" | grep -qiE 'dial tcp|no such host|connection refused|i/o timeout|proxy.*(unreachable|refused|timeout)|cannot query module|missing go.sum entry|GOPROXY=off'; then
        echo "warning: staticcheck not installed and module proxy unreachable; skipping staticcheck" >&2
        return 0
    fi
    echo "$out"
    return $status
}

run_vetvideoapp() {
    # Reuse a prebuilt driver when present (CI builds it once into bin/ and
    # shares it between steps); otherwise `go run` builds it from the module.
    if [ -x bin/vetvideoapp ]; then
        echo "== vetvideoapp (bin/vetvideoapp)"
        ./bin/vetvideoapp ./...
    else
        echo "== vetvideoapp (go run ./cmd/vetvideoapp)"
        $GO run ./cmd/vetvideoapp ./...
    fi
}

fail=0
case "$MODE" in
staticcheck)
    run_staticcheck || fail=1
    ;;
vetvideoapp)
    run_vetvideoapp || fail=1
    ;;
all)
    run_staticcheck || fail=1
    run_vetvideoapp || fail=1
    ;;
*)
    echo "usage: lint.sh [staticcheck|vetvideoapp|all]" >&2
    exit 2
    ;;
esac
exit $fail
