#!/usr/bin/env bash
# lint.sh — staticcheck gate, pinned so every machine and CI run the same
# analyzer. Resolution order:
#   1. a staticcheck binary on PATH (any provenance — used as-is),
#   2. the pinned module version via `go run` (needs the module proxy),
#   3. offline (no binary, no proxy): warn and skip, so air-gapped dev
#      machines still pass `make check`; CI has network and enforces.
set -uo pipefail
cd "$(dirname "$0")/.."
GO=${GO:-go}

# The one place the staticcheck version is pinned.
STATICCHECK_VERSION=2025.1

if command -v staticcheck >/dev/null 2>&1; then
    echo "== staticcheck ($(command -v staticcheck))"
    exec staticcheck ./...
fi

echo "== staticcheck (go run honnef.co/go/tools/cmd/staticcheck@$STATICCHECK_VERSION)"
out=$($GO run "honnef.co/go/tools/cmd/staticcheck@$STATICCHECK_VERSION" ./... 2>&1)
status=$?
if [ $status -eq 0 ]; then
    [ -n "$out" ] && echo "$out"
    exit 0
fi
# Distinguish analyzer findings from an unreachable module proxy: findings
# must fail the build, a missing network must not.
if echo "$out" | grep -qiE 'dial tcp|no such host|connection refused|i/o timeout|proxy.*(unreachable|refused|timeout)|cannot query module|missing go.sum entry|GOPROXY=off'; then
    echo "warning: staticcheck not installed and module proxy unreachable; skipping lint" >&2
    exit 0
fi
echo "$out"
exit $status
