package videoapp

// Streaming API: the chunked, bounded-memory form of the pipeline and its
// random-access archive. See the internal/chunk package documentation for
// the dataflow and the bit-identity argument; the entry points here are
// Pipeline.ProcessStream (batch-identical Result from a stream),
// Pipeline.StreamToArchive (bounded-memory write of a chunked archive) and
// OpenArchive/ReadChunk (random access to a single stored chunk).

import (
	"context"
	"fmt"
	"io"
	"time"

	"videoapp/internal/chunk"
	"videoapp/internal/codec"
	"videoapp/internal/core"
	"videoapp/internal/obs"
	"videoapp/internal/serve"
	"videoapp/internal/store"
)

type (
	// ChunkSource yields raw frames incrementally to the streaming
	// pipeline; see SequenceSource and Y4MSource.
	ChunkSource = chunk.Source
	// ProcessedChunk is one fully processed closed-GOP chunk.
	ProcessedChunk = chunk.Processed
	// ArchiveMeta is the stream-wide header of a chunked archive.
	ArchiveMeta = store.ArchiveMeta
	// ChunkInfo locates one chunk inside a chunked archive.
	ChunkInfo = store.ChunkInfo
	// ChunkWriter appends processed chunks to a chunked archive.
	ChunkWriter = store.ChunkWriter
	// ChunkArchive is a lock-free random-access reader over a chunked
	// archive; ReadChunk is safe for any number of concurrent readers.
	ChunkArchive = store.ChunkArchive
	// ChunkServer is the HTTP read path over one archive: decoded chunk
	// frames, per-chunk metadata, the archive index and a metrics snapshot,
	// fronted by a sized LRU decoded-chunk cache with request coalescing.
	// It is the single-archive special case of a Catalog. See the
	// internal/serve package documentation for the endpoints.
	ChunkServer = serve.Server
	// Catalog is the HTTP read path over N named archives — the
	// multi-tenant storage node. Archives are declared as ArchiveSpecs,
	// opened lazily, idle-closed (WithIdleTimeout), and share one
	// decoded-chunk cache; each has its own fault policy, circuit breaker
	// and labeled metrics. Routes live under /v1/archives/{name}/..., with
	// the legacy /v1/chunks/... routes aliasing the default archive.
	Catalog = serve.Catalog
	// ArchiveSpec declares one Catalog tenant: a routable name and a
	// function producing its storage Backend, plus optional per-archive
	// ArchiveOptions and FaultPolicy.
	ArchiveSpec = serve.ArchiveSpec
	// Backend is the pluggable storage seam archives live on: positionless
	// reads and writes plus size and lifecycle. See OpenFileBackend,
	// NewMemBackend, NewSnapshotBackend; internal/faultio decorates any
	// Backend with deterministic fault injection.
	Backend = store.Backend
	// ServeOption configures a ChunkServer or Catalog at construction; see
	// WithCacheBytes, WithCacheShards, WithPrefetch, WithRequestTimeout,
	// WithServeWorkers, WithDrainTimeout, WithIdleTimeout,
	// WithServeObserver and WithFaultPolicy.
	ServeOption = serve.Option
	// ArchiveOption configures a ChunkArchive at open time; see
	// WithArchivePolicy and WithMirror.
	ArchiveOption = store.ArchiveOption
	// FaultPolicy is the knob set of the fault-tolerant read path: retry
	// count, backoff, checksum verification and the serving layer's
	// circuit breaker. The zero value selects every documented default.
	FaultPolicy = store.FaultPolicy
	// ChunkRead is the degradation-aware result of reading one chunk:
	// the reconstructed video, its partitions, and the names of any
	// approximate streams that could not be recovered and were served
	// zero-filled.
	ChunkRead = store.ChunkRead
	// ScrubReport is the outcome of one Archive scrub pass over every
	// record of the archive.
	ScrubReport = store.ScrubReport
	// ChunkHealth is one chunk's scrub outcome within a ScrubReport.
	ChunkHealth = store.ChunkHealth
)

// Typed sentinel errors of the archive read path; match with errors.Is.
var (
	// ErrChunkNotFound reports a chunk index outside the archive.
	ErrChunkNotFound = store.ErrChunkNotFound
	// ErrCorruptRecord reports a structurally damaged archive: bad magic,
	// a zero-length or truncated file, or a corrupt chunk record.
	ErrCorruptRecord = store.ErrCorruptRecord
	// ErrArchiveClosed reports a read attempted after ChunkArchive.Close.
	ErrArchiveClosed = store.ErrArchiveClosed
	// ErrReadFailed reports a device-level read failure that persisted
	// after the fault policy's retries (and the mirror, if one is
	// attached) — the failure class that trips the serving layer's
	// circuit breaker, as opposed to ErrCorruptRecord's data damage.
	ErrReadFailed = store.ErrReadFailed
	// ErrArchiveNotFound reports a Catalog request for an archive name not
	// in the catalog; over HTTP it is a 404 with code "archive_not_found".
	ErrArchiveNotFound = serve.ErrArchiveNotFound
	// ErrReadOnly reports a write to a read-only storage backend
	// (NewSnapshotBackend, OpenFileBackend with writable=false).
	ErrReadOnly = store.ErrReadOnly
)

// SequenceSource adapts an in-memory sequence to a ChunkSource. It does not
// reduce memory by itself but runs the same chunked dataflow as a streamed
// input, which is what the bit-identity tests exercise.
func SequenceSource(seq *Sequence) ChunkSource { return chunk.FromSequence(seq) }

// Y4MSource wraps a YUV4MPEG2 stream as a ChunkSource. Frames are decoded
// on demand, so processing an arbitrarily long file holds only the chunks
// currently in flight.
func Y4MSource(r io.Reader, name string) (ChunkSource, error) { return chunk.FromY4M(r, name) }

// OpenArchive indexes a chunked archive for random access. Only the
// stream header and the fixed-size per-chunk records are read — every
// chunk's payload is hopped over, so opening a large archive is O(chunks),
// not O(bytes). The archive reads exclusively through r's positionless
// ReadAt, which makes ReadChunk lock-free and safe for any number of
// concurrent readers (os.File and bytes.Reader both qualify). Zero-length
// or truncated inputs return an error wrapping ErrCorruptRecord.
//
// Options attach a FaultPolicy (WithArchivePolicy) for retrying transient
// read errors and a mirror reader (WithMirror) for recovering regions the
// primary cannot serve; both also govern ChunkArchive.Scrub.
func OpenArchive(r io.ReaderAt, opts ...ArchiveOption) (*ChunkArchive, error) {
	return store.OpenChunkArchiveAt(r, opts...)
}

// OpenArchiveBackend indexes a chunked archive stored on any Backend — the
// full storage seam: reads go through the backend's ReadAt, Scrub repairs
// go through its WriteAt (read-only backends report damage unrepaired),
// and the caller closes the backend after the archive. Backends compose:
// a faultio decorator over a memory region serves exactly like a file.
func OpenArchiveBackend(b Backend, opts ...ArchiveOption) (*ChunkArchive, error) {
	return store.OpenArchiveBackend(b, opts...)
}

// OpenFileBackend opens a file as an archive Backend; writable selects the
// read-write form Scrub repairs need, otherwise writes report ErrReadOnly.
func OpenFileBackend(path string, writable bool) (Backend, error) {
	return store.OpenFileBackend(path, writable)
}

// NewMemBackend returns an in-memory Backend holding a copy of data — the
// RAM-resident archive form.
func NewMemBackend(data []byte) Backend { return store.NewMemBackend(data) }

// NewSnapshotBackend wraps data as a sealed read-only Backend; the caller
// must not mutate data afterwards.
func NewSnapshotBackend(data []byte) Backend { return store.NewSnapshotBackend(data) }

// WithArchivePolicy attaches a FaultPolicy to the archive: every read that
// does not carry a per-call policy on its context retries and backs off as
// the policy dictates.
func WithArchivePolicy(p FaultPolicy) ArchiveOption { return store.WithFaultPolicy(p) }

// WithMirror attaches a second reader holding an identical copy of the
// archive. Regions the primary cannot serve — persistent read errors or
// checksum mismatches after retries — are transparently re-read from the
// mirror, and ChunkArchive.Scrub repairs the primary from it in place.
func WithMirror(r io.ReaderAt) ArchiveOption { return store.WithMirror(r) }

// NewChunkServer returns the HTTP serving layer over an opened archive:
// GET /v1/archive (index), /v1/chunks/{i} (decoded frames as YUV4MPEG2),
// /v1/chunks/{i}/meta, /metrics and /healthz. Decoded chunks are cached in
// a sized LRU and cold-chunk decodes are coalesced, so a hot chunk is
// decoded exactly once however many clients stampede it. Run it with
// ChunkServer.Serve (graceful drain on context cancellation) or mount
// ChunkServer.Handler under your own http.Server. The archive must outlive
// the server.
//
// The read path degrades gracefully: a chunk whose approximate streams
// fail verification is still served, zero-filled where damaged, with the
// X-Videoapp-Degraded header naming the lost streams; persistent device
// failures trip a circuit breaker that sheds requests with
// 503 + Retry-After instead of queueing more work on a failing device.
// Configure both through WithFaultPolicy.
func NewChunkServer(a *ChunkArchive, opts ...ServeOption) *ChunkServer {
	return serve.New(a, opts...)
}

// NewCatalog returns the HTTP serving layer over N named archives: every
// route of NewChunkServer, per archive, under /v1/archives/{name}/...,
// with /v1/archives listing the catalog and the legacy /v1 routes aliasing
// the default (first) archive. Archives open lazily on first request and
// close again after WithIdleTimeout of disuse; all archives share one
// decoded-chunk cache bounded by WithCacheBytes, while fault policies,
// circuit breakers and chunk counters are per archive. Archives can be
// added and removed at runtime (Catalog.Add, Catalog.Remove) — the CLI's
// serve -archive-dir SIGHUP rescan is built on exactly that.
func NewCatalog(specs []ArchiveSpec, opts ...ServeOption) (*Catalog, error) {
	return serve.NewCatalog(specs, opts...)
}

// WithIdleTimeout closes lazily-opened catalog archives unused for d;
// d <= 0 (the default) keeps them open forever.
func WithIdleTimeout(d time.Duration) ServeOption { return serve.WithIdleTimeout(d) }

// WithCacheBytes bounds the server's decoded-chunk cache by rendered
// output size; n <= 0 selects the 64 MiB default.
func WithCacheBytes(n int64) ServeOption { return serve.WithCacheBytes(n) }

// WithCacheShards sets the decoded-chunk cache's lock-shard count,
// rounded up to a power of two; 0 (the default) picks max(8, GOMAXPROCS)
// rounded up, and 1 (or a negative value) restores a single global LRU.
func WithCacheShards(n int) ServeOption { return serve.WithCacheShards(n) }

// WithPrefetch sets the server's sequential readahead depth: a request
// for chunk i warms chunks i+1..i+depth in the background through the
// decoded-chunk cache. <= 0 disables readahead; the default depth is 2.
func WithPrefetch(depth int) ServeOption { return serve.WithPrefetch(depth) }

// WithRequestTimeout bounds one server request end to end, decode
// included; d <= 0 selects the 30s default.
func WithRequestTimeout(d time.Duration) ServeOption { return serve.WithRequestTimeout(d) }

// WithDrainTimeout bounds connection draining during server shutdown;
// d <= 0 selects the 10s default.
func WithDrainTimeout(d time.Duration) ServeOption { return serve.WithDrainTimeout(d) }

// WithServeWorkers bounds the server's frame-decode parallelism per cold
// chunk; n <= 0 selects GOMAXPROCS.
func WithServeWorkers(n int) ServeOption { return serve.WithWorkers(n) }

// WithServeObserver attaches an observer to the server's own metrics sink;
// it receives the serve-layer events alongside the built-in /metrics
// aggregator.
func WithServeObserver(o Observer) ServeOption { return serve.WithObserver(o) }

// WithFaultPolicy sets the fault policy the server reads chunks under:
// retry count and backoff, checksum verification, and the circuit
// breaker's threshold and cooldown.
func WithFaultPolicy(p FaultPolicy) ServeOption { return serve.WithFaultPolicy(p) }

// AppendArchive reopens an existing chunked archive for appending more
// chunks (append-on-write: earlier bytes are never rewritten). rw must
// also implement io.ReaderAt (os.File does) for the lock-free index scan.
func AppendArchive(rw io.ReadWriteSeeker) (*ChunkWriter, error) { return store.AppendChunkWriter(rw) }

// chunkConfig assembles the streaming engine configuration from the
// pipeline, attaching sys for per-chunk footprint costs.
func (p *Pipeline) chunkConfig(sys *store.System) chunk.Config {
	return chunk.Config{
		Params:       p.Params,
		Assignment:   p.Assignment,
		System:       sys,
		GOPsPerChunk: p.ChunkGOPs,
		Workers:      p.Workers,
	}
}

// ProcessStream is Process over an incrementally fed source: the stream is
// segmented into closed-GOP chunks (WithChunkGOPs) and encode → analyze →
// partition → footprint run per chunk as a staged dataflow with
// backpressure, so raw frames never accumulate beyond a few chunks. The
// accumulated Result — encoded bits, analysis, partitions, footprint stats
// — is bit-identical to ProcessContext on the same frames at every chunk
// size and worker count, and supports the same round trips.
//
// Note that the Result itself holds the whole encoded video (that is what
// a Result is); for end-to-end bounded memory use StreamToArchive, which
// writes chunks out as they complete.
func (p *Pipeline) ProcessStream(ctx context.Context, src ChunkSource) (*Result, error) {
	o := p.observer()
	ctx = obs.With(ctx, o)
	sys, err := p.system()
	if err != nil {
		return nil, err
	}
	var (
		v         *Video
		parts     []FramePartition
		imp, comp [][]float64
		costs     []store.FrameCost
		pixels    int64
	)
	err = chunk.Run(ctx, p.chunkConfig(sys), src, func(c *ProcessedChunk) error {
		if v == nil {
			v = &codec.Video{Params: c.Video.Params, W: c.Video.W, H: c.Video.H, FPS: c.Video.FPS}
		}
		// Rebase the chunk-local frame indices and partition rows into the
		// whole-video index space, then append in stream order.
		c.Video.ShiftIndices(c.FirstFrame)
		v.Frames = append(v.Frames, c.Video.Frames...)
		for i := range c.Parts {
			c.Parts[i].Frame += c.FirstFrame
		}
		parts = append(parts, c.Parts...)
		imp = append(imp, c.Importance...)
		comp = append(comp, c.CompImportance...)
		costs = append(costs, c.Costs...)
		pixels += c.Pixels
		return nil
	})
	if err != nil {
		return nil, err
	}
	// Header bits are recomputed on the stitched video: frame indices are
	// exp-Golomb coded, so global-index headers can be larger than the sum
	// of chunk-local ones, and batch identity requires the global form.
	stats := sys.StatsFromCosts(costs, v.HeaderBits()+core.PivotOverheadBits(parts), pixels)
	store.PublishFootprint(o, stats)
	an := &core.Analysis{Video: v, Importance: imp, CompImportance: comp}
	return &Result{
		Video: v, Analysis: an, Partitions: parts, Stats: stats,
		pipeline: p, system: sys, pixels: pixels,
	}, nil
}

// StreamToArchive processes src chunk by chunk and appends each chunk to w
// as a chunked archive, keeping memory bounded by the chunk size for
// arbitrarily long streams: no stage retains a chunk after handing it
// downstream, and the archive accumulates on w, not in memory. It returns
// the archive layout and the aggregate storage footprint (header bits
// accounted in the archive's chunk-local form).
func (p *Pipeline) StreamToArchive(ctx context.Context, src ChunkSource, w io.Writer) (ArchiveMeta, StorageStats, error) {
	o := p.observer()
	ctx = obs.With(ctx, o)
	sys, err := p.system()
	if err != nil {
		return ArchiveMeta{}, StorageStats{}, err
	}
	var (
		cw         *ChunkWriter
		meta       ArchiveMeta
		costs      []store.FrameCost
		headerBits int64
		pixels     int64
	)
	gops := p.ChunkGOPs
	if gops < 1 {
		gops = 1
	}
	err = chunk.Run(ctx, p.chunkConfig(sys), src, func(c *ProcessedChunk) error {
		if cw == nil {
			meta = ArchiveMeta{W: c.Video.W, H: c.Video.H, FPS: c.Video.FPS, GOPSize: p.Params.GOPSize, GOPsPerChunk: gops}
			var err error
			if cw, err = store.NewChunkWriter(w, meta); err != nil {
				return err
			}
		}
		if err := cw.Append(c.Video, c.Parts, c.FirstFrame); err != nil {
			return err
		}
		costs = append(costs, c.Costs...)
		headerBits += c.HeaderBits
		pixels += c.Pixels
		return nil
	})
	if err != nil {
		return ArchiveMeta{}, StorageStats{}, err
	}
	stats := sys.StatsFromCosts(costs, headerBits, pixels)
	store.PublishFootprint(o, stats)
	return meta, stats, nil
}

// RoundTripChunk simulates the approximate storage round trip of a single
// archived chunk — typically one ReadChunk result — and decodes it without
// touching the rest of the archive. firstFrame is the chunk's position in
// the whole video (ChunkInfo.FirstFrame): the injected error streams are
// drawn per global frame, so the decoded frames are bit-identical to the
// same frames of a whole-video StoreRoundTrip with the same seed.
func (p *Pipeline) RoundTripChunk(ctx context.Context, v *Video, parts []FramePartition, firstFrame int, seed int64) (*Sequence, int, error) {
	if firstFrame < 0 {
		return nil, 0, fmt.Errorf("videoapp: negative first frame %d", firstFrame)
	}
	sys, err := p.system()
	if err != nil {
		return nil, 0, err
	}
	ctx = obs.With(ctx, p.observer())
	stored, flips, err := sys.StoreContext(ctx, v, parts, store.StoreOpts{
		Seed: seed, FrameOffset: firstFrame, Workers: p.Workers,
	})
	if err != nil {
		return nil, 0, err
	}
	seq, err := codec.DecodeContext(ctx, stored, codec.DecodeOptions{}, p.Workers)
	return seq, flips, err
}
