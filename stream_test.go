package videoapp

import (
	"bytes"
	"context"
	"fmt"
	"reflect"
	"testing"

	"videoapp/internal/y4m"
)

// streamTestSeq builds a multi-GOP sequence with a ragged final GOP, the
// shape that exercises both chunk grouping and tail handling.
func streamTestSeq(t *testing.T) (*Sequence, Params) {
	t.Helper()
	seq, err := GenerateTestVideo("crew_like", 96, 64, 4*4+2)
	if err != nil {
		t.Fatal(err)
	}
	p := DefaultParams()
	p.GOPSize = 4
	p.SearchRange = 8
	return seq, p
}

func sequencesEqual(t *testing.T, a, b *Sequence) {
	t.Helper()
	if len(a.Frames) != len(b.Frames) {
		t.Fatalf("%d frames vs %d", len(a.Frames), len(b.Frames))
	}
	for i := range a.Frames {
		if !bytes.Equal(a.Frames[i].Y, b.Frames[i].Y) ||
			!bytes.Equal(a.Frames[i].Cb, b.Frames[i].Cb) ||
			!bytes.Equal(a.Frames[i].Cr, b.Frames[i].Cr) {
			t.Fatalf("frame %d pixels differ", i)
		}
	}
}

// TestProcessStreamBitIdenticalToBatch pins the tentpole acceptance
// criterion: the streamed Result — encoded bits, partitions, analysis,
// footprint stats, and the seeded round trip — equals the batch Result
// bit for bit at chunk sizes {1,2,4} GOPs × workers {1,8}.
func TestProcessStreamBitIdenticalToBatch(t *testing.T) {
	seq, params := streamTestSeq(t)
	const seed = 7

	batch, err := NewPipeline(WithParams(params), WithWorkers(1)).Process(seq)
	if err != nil {
		t.Fatal(err)
	}
	batchBytes := Marshal(batch.Video)
	batchDec, batchFlips, err := batch.StoreRoundTrip(seed)
	if err != nil {
		t.Fatal(err)
	}

	for _, gops := range []int{1, 2, 4} {
		for _, workers := range []int{1, 8} {
			t.Run(fmt.Sprintf("gops=%d/workers=%d", gops, workers), func(t *testing.T) {
				p := NewPipeline(WithParams(params), WithWorkers(workers), WithChunkGOPs(gops))
				res, err := p.ProcessStream(context.Background(), SequenceSource(seq))
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(Marshal(res.Video), batchBytes) {
					t.Fatal("streamed container bytes differ from batch")
				}
				if !reflect.DeepEqual(res.Partitions, batch.Partitions) {
					t.Fatal("streamed partitions differ from batch")
				}
				if !reflect.DeepEqual(res.Stats, batch.Stats) {
					t.Fatalf("streamed stats differ from batch:\n%+v\n%+v", res.Stats, batch.Stats)
				}
				if !reflect.DeepEqual(res.Analysis.Importance, batch.Analysis.Importance) {
					t.Fatal("streamed importance differs from batch")
				}
				dec, flips, err := res.StoreRoundTrip(seed)
				if err != nil {
					t.Fatal(err)
				}
				if flips != batchFlips {
					t.Fatalf("streamed round trip injected %d flips, batch %d", flips, batchFlips)
				}
				sequencesEqual(t, dec, batchDec)
			})
		}
	}
}

// TestStreamToArchiveRandomAccess pins the archive acceptance criterion
// end to end: a streamed archive supports reading and round-tripping one
// chunk at a time, and thanks to per-frame error streams (FrameOffset) the
// per-chunk round trips concatenate to exactly the whole-video round trip.
func TestStreamToArchiveRandomAccess(t *testing.T) {
	seq, params := streamTestSeq(t)
	const seed = 11

	batch, err := NewPipeline(WithParams(params), WithWorkers(4)).Process(seq)
	if err != nil {
		t.Fatal(err)
	}
	batchDec, batchFlips, err := batch.StoreRoundTrip(seed)
	if err != nil {
		t.Fatal(err)
	}

	p := NewPipeline(WithParams(params), WithWorkers(4), WithChunkGOPs(1))
	var buf bytes.Buffer
	meta, stats, err := p.StreamToArchive(context.Background(), SequenceSource(seq), &buf)
	if err != nil {
		t.Fatal(err)
	}
	if meta.W != seq.W() || meta.H != seq.H() || meta.GOPSize != params.GOPSize {
		t.Fatalf("archive meta %+v does not match input", meta)
	}
	if stats.PayloadBits != batch.Stats.PayloadBits {
		t.Fatalf("archive payload bits %d, batch %d", stats.PayloadBits, batch.Stats.PayloadBits)
	}

	a, err := OpenArchive(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if a.TotalFrames() != len(seq.Frames) {
		t.Fatalf("archive holds %d frames, want %d", a.TotalFrames(), len(seq.Frames))
	}
	var flipsSum int
	for i := 0; i < a.NumChunks(); i++ {
		info, err := a.Info(i)
		if err != nil {
			t.Fatal(err)
		}
		v, parts, err := a.ReadChunk(i)
		if err != nil {
			t.Fatal(err)
		}
		dec, flips, err := p.RoundTripChunk(context.Background(), v, parts, info.FirstFrame, seed)
		if err != nil {
			t.Fatal(err)
		}
		flipsSum += flips
		for f := range dec.Frames {
			g := info.FirstFrame + f
			if !bytes.Equal(dec.Frames[f].Y, batchDec.Frames[g].Y) {
				t.Fatalf("chunk %d frame %d: single-chunk round trip differs from whole-video frame %d", i, f, g)
			}
		}
	}
	if flipsSum != batchFlips {
		t.Fatalf("per-chunk flips sum to %d, whole-video round trip injected %d", flipsSum, batchFlips)
	}
}

// TestProcessStreamY4M runs the streaming pipeline from an actual y4m byte
// stream and checks it matches the in-memory source path.
func TestProcessStreamY4M(t *testing.T) {
	seq, params := streamTestSeq(t)
	var y4mBuf bytes.Buffer
	if err := y4m.Write(&y4mBuf, seq); err != nil {
		t.Fatal(err)
	}
	src, err := Y4MSource(&y4mBuf, "stream")
	if err != nil {
		t.Fatal(err)
	}
	p := NewPipeline(WithParams(params), WithChunkGOPs(2))
	fromY4M, err := p.ProcessStream(context.Background(), src)
	if err != nil {
		t.Fatal(err)
	}
	fromSeq, err := p.ProcessStream(context.Background(), SequenceSource(seq))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(Marshal(fromY4M.Video), Marshal(fromSeq.Video)) {
		t.Fatal("y4m-sourced stream differs from sequence-sourced stream")
	}
}

func TestProcessStreamRejectsOpenGOPs(t *testing.T) {
	seq, params := streamTestSeq(t)
	params.BFrames = 2
	params.GOPSize = 6
	p := NewPipeline(WithParams(params))
	if _, err := p.ProcessStream(context.Background(), SequenceSource(seq)); err == nil {
		t.Fatal("open-GOP streaming must be rejected")
	}
}

func TestRoundTripChunkRejectsNegativeOffset(t *testing.T) {
	seq, params := streamTestSeq(t)
	res, err := NewPipeline(WithParams(params)).Process(seq)
	if err != nil {
		t.Fatal(err)
	}
	p := NewPipeline(WithParams(params))
	if _, _, err := p.RoundTripChunk(context.Background(), res.Video, res.Partitions, -1, 1); err == nil {
		t.Fatal("negative first frame must be rejected")
	}
}
