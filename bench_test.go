package videoapp

// One benchmark per table/figure of the paper's evaluation. Each bench
// regenerates the corresponding result at a reduced scale (so `go test
// -bench=.` completes in minutes) and reports the headline metric the paper
// quotes. The cmd/experiments binary runs the same code at full scale and
// prints the complete tables.

import (
	"testing"
	"time"

	"videoapp/internal/codec"
	"videoapp/internal/core"
	"videoapp/internal/experiments"
	"videoapp/internal/synth"
)

func benchConfig() experiments.Config {
	cfg := experiments.FastConfig()
	cfg.W, cfg.H, cfg.Frames = 96, 64, 12
	cfg.Runs = 2
	return cfg
}

// BenchmarkFigure3 regenerates the single-bit-flip MB-position PSNR surface.
func BenchmarkFigure3(b *testing.B) {
	b.ReportAllocs()
	cfg := benchConfig()
	cfg.Presets = []string{"crew_like"}
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure3(cfg)
		if err != nil {
			b.Fatal(err)
		}
		tl, br := res.Corners()
		b.ReportMetric(br-tl, "dB-corner-gap")
	}
}

// BenchmarkFigure8 regenerates the BCH overhead/capability table.
func BenchmarkFigure8(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res := experiments.Figure8()
		b.ReportMetric(res.Rows[0].OverheadPct, "pct-bch6-overhead")
	}
}

// BenchmarkFigure9 regenerates the 16-bin importance validation curves.
func BenchmarkFigure9(b *testing.B) {
	b.ReportAllocs()
	cfg := benchConfig()
	cfg.Presets = []string{"crew_like"}
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure9(cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.OrderViolations(0.5)), "order-violations")
	}
}

// BenchmarkFigure10 regenerates the cumulative importance-class curves.
func BenchmarkFigure10(b *testing.B) {
	b.ReportAllocs()
	cfg := benchConfig()
	cfg.Presets = []string{"crew_like"}
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure10(cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.StorageFrac[0]*100, "pct-first-class-storage")
	}
}

// BenchmarkTable1 regenerates the error-correction assignment from measured
// Figure 10 data.
func BenchmarkTable1(b *testing.B) {
	b.ReportAllocs()
	cfg := benchConfig()
	cfg.Presets = []string{"crew_like"}
	for i := 0; i < b.N; i++ {
		f10, err := experiments.Figure10(cfg)
		if err != nil {
			b.Fatal(err)
		}
		tab := experiments.DeriveTable1(f10)
		b.ReportMetric(tab.TotalLossDB, "dB-estimated-loss")
	}
}

// BenchmarkFigure11 regenerates the density/quality sweep for the three
// storage designs.
func BenchmarkFigure11(b *testing.B) {
	b.ReportAllocs()
	cfg := benchConfig()
	cfg.Presets = []string{"crew_like"}
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure11(cfg, []int{24}, core.PaperAssignment())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.OverheadReductionPct, "pct-ecc-overhead-cut")
		b.ReportMetric(res.StorageSavingPct, "pct-storage-saved")
	}
}

// BenchmarkEncryptionModes regenerates the §5 mode compatibility table.
func BenchmarkEncryptionModes(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := experiments.EncryptionModes(int64(i))
		if err != nil {
			b.Fatal(err)
		}
		usable := 0
		for _, a := range res.Assessments {
			if a.MeetsAll() {
				usable++
			}
		}
		b.ReportMetric(float64(usable), "usable-modes")
	}
}

// BenchmarkAblation regenerates the §8 encoder-option sweep.
func BenchmarkAblation(b *testing.B) {
	b.ReportAllocs()
	cfg := benchConfig()
	cfg.Presets = []string{"crew_like"}
	for i := 0; i < b.N; i++ {
		res, err := experiments.AblateEncoderOptions(cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Rows[0].LowImportanceFrac*100, "pct-approximable")
	}
}

// BenchmarkScrubSweep regenerates the scrubbing-interval extension sweep.
func BenchmarkScrubSweep(b *testing.B) {
	b.ReportAllocs()
	cfg := benchConfig()
	cfg.Presets = []string{"crew_like"}
	for i := 0; i < b.N; i++ {
		res, err := experiments.ScrubSweep(cfg, []float64{3, 12})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Rows[1].RBER/res.Rows[0].RBER, "rber-growth-3to12mo")
	}
}

// BenchmarkAnalysisOverhead measures §4.3.1: the VideoApp analysis cost
// relative to encoding.
func BenchmarkAnalysisOverhead(b *testing.B) {
	b.ReportAllocs()
	cfg, _ := synth.PresetByName("crew_like")
	seq := synth.Generate(cfg.ScaleTo(176, 144, 20))
	params := codec.DefaultParams()
	params.GOPSize = 20
	params.SearchRange = 8
	var encodeNs, analyzeNs int64
	for i := 0; i < b.N; i++ {
		t0 := time.Now()
		v, err := codec.Encode(seq, params)
		if err != nil {
			b.Fatal(err)
		}
		encodeNs += time.Since(t0).Nanoseconds()
		t1 := time.Now()
		core.Analyze(v, core.DefaultOptions())
		analyzeNs += time.Since(t1).Nanoseconds()
	}
	if encodeNs > 0 {
		b.ReportMetric(float64(analyzeNs)/float64(encodeNs)*100, "pct-of-encode-time")
	}
}

// BenchmarkPipeline measures the end-to-end public API workflow.
func BenchmarkPipeline(b *testing.B) {
	b.ReportAllocs()
	seq, err := GenerateTestVideo("crew_like", 96, 64, 10)
	if err != nil {
		b.Fatal(err)
	}
	p := NewPipeline()
	p.Params.GOPSize = 10
	p.Params.SearchRange = 8
	for i := 0; i < b.N; i++ {
		res, err := p.Process(seq)
		if err != nil {
			b.Fatal(err)
		}
		if _, _, err := res.StoreRoundTrip(int64(i)); err != nil {
			b.Fatal(err)
		}
	}
}
