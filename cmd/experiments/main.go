// Command experiments regenerates the tables and figures of the paper's
// evaluation. Each subcommand prints one artifact; `all` runs everything.
//
// Usage:
//
//	experiments [flags] {fig3|fig8|fig9|fig10|table1|fig11|modes|ablate|all}
//
// The -scale flag selects fast (seconds), default (minutes) or paper
// (hours, 720p/500 frames) configurations; individual dimensions can be
// overridden with -w/-h/-frames/-runs/-crf/-presets.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"videoapp/internal/core"
	"videoapp/internal/experiments"
)

// csvDir, when set, receives one CSV file per experiment with the raw series
// behind the figure.
var csvDir string

func saveCSV(name string, r interface{ WriteCSV(w io.Writer) error }) error {
	if csvDir == "" {
		return nil
	}
	if err := os.MkdirAll(csvDir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(csvDir, name+".csv"))
	if err != nil {
		return err
	}
	defer f.Close()
	return r.WriteCSV(f)
}

func main() {
	scale := flag.String("scale", "default", "experiment scale: fast, default, paper")
	w := flag.Int("w", 0, "override frame width")
	h := flag.Int("h", 0, "override frame height")
	frames := flag.Int("frames", 0, "override frame count")
	runs := flag.Int("runs", 0, "override Monte-Carlo runs")
	crf := flag.Int("crf", 0, "override CRF quality target")
	presets := flag.String("presets", "", "comma-separated preset subset")
	csv := flag.String("csv", "", "directory to write per-experiment CSV files")
	flag.Parse()
	csvDir = *csv

	cfg := configFor(*scale)
	if *w > 0 {
		cfg.W = *w
	}
	if *h > 0 {
		cfg.H = *h
	}
	if *frames > 0 {
		cfg.Frames = *frames
	}
	if *runs > 0 {
		cfg.Runs = *runs
	}
	if *crf > 0 {
		cfg.CRF = *crf
	}
	if *presets != "" {
		cfg.Presets = strings.Split(*presets, ",")
	}

	cmd := flag.Arg(0)
	if cmd == "" {
		cmd = "all"
	}
	if err := run(cmd, cfg); err != nil {
		fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
		os.Exit(1)
	}
}

func configFor(scale string) experiments.Config {
	switch scale {
	case "fast":
		return experiments.FastConfig()
	case "paper":
		return experiments.PaperConfig()
	default:
		return experiments.DefaultConfig()
	}
}

func run(cmd string, cfg experiments.Config) error {
	switch cmd {
	case "fig3":
		res, err := experiments.Figure3(cfg)
		if err != nil {
			return err
		}
		fmt.Println(res)
		return saveCSV("fig3", res)
	case "fig8":
		res := experiments.Figure8()
		fmt.Println(res)
		return saveCSV("fig8", res)
	case "fig9":
		res, err := experiments.Figure9(cfg)
		if err != nil {
			return err
		}
		fmt.Println(res)
		return saveCSV("fig9", res)
	case "fig10":
		res, err := experiments.Figure10(cfg)
		if err != nil {
			return err
		}
		fmt.Println(res)
		return saveCSV("fig10", res)
	case "table1":
		f10, err := experiments.Figure10(cfg)
		if err != nil {
			return err
		}
		tab := experiments.DeriveTable1(f10)
		fmt.Println(tab)
		fmt.Println(experiments.CompareStrategies(f10))
		return saveCSV("table1", tab)
	case "fig11":
		res, err := experiments.Figure11(cfg, []int{16, 20, 24}, core.PaperAssignment())
		if err != nil {
			return err
		}
		fmt.Println(res)
		return saveCSV("fig11", res)
	case "modes":
		res, err := experiments.EncryptionModes(cfg.Seed)
		if err != nil {
			return err
		}
		fmt.Println(res)
	case "ablate":
		res, err := experiments.AblateEncoderOptions(cfg)
		if err != nil {
			return err
		}
		fmt.Println(res)
	case "scrub":
		res, err := experiments.ScrubSweep(cfg, nil)
		if err != nil {
			return err
		}
		fmt.Println(res)
	case "all":
		for _, c := range []string{"fig8", "modes", "fig3", "fig9"} {
			fmt.Printf("==== %s ====\n", c)
			if err := run(c, cfg); err != nil {
				return fmt.Errorf("%s: %w", c, err)
			}
		}
		// Figure 10 feeds Table 1; measure it once and share.
		fmt.Println("==== fig10 ====")
		f10, err := experiments.Figure10(cfg)
		if err != nil {
			return fmt.Errorf("fig10: %w", err)
		}
		fmt.Println(f10)
		if err := saveCSV("fig10", f10); err != nil {
			return err
		}
		fmt.Println("==== table1 ====")
		tab := experiments.DeriveTable1(f10)
		fmt.Println(tab)
		fmt.Println(experiments.CompareStrategies(f10))
		if err := saveCSV("table1", tab); err != nil {
			return err
		}
		for _, c := range []string{"fig11", "ablate", "scrub"} {
			fmt.Printf("==== %s ====\n", c)
			if err := run(c, cfg); err != nil {
				return fmt.Errorf("%s: %w", c, err)
			}
		}
	default:
		return fmt.Errorf("unknown command %q (want fig3|fig8|fig9|fig10|table1|fig11|modes|ablate|scrub|all)", cmd)
	}
	return nil
}
