// Command videoapp is the approximate-video-storage pipeline tool: it
// encodes raw (.y4m or synthetic) video into the container format, analyzes
// bit-level importance, partitions frames into reliability classes, computes
// the MLC storage footprint, and simulates storage round trips.
//
// Usage:
//
//	videoapp [flags] gen                 write a synthetic sequence as .y4m
//	videoapp [flags] encode              raw video -> .vapp container
//	videoapp [flags] info                summarize a .vapp container
//	videoapp [flags] analyze             importance pivots per frame
//	videoapp [flags] store               storage footprint + round trip
//	videoapp [flags] decode              .vapp -> .y4m
//	videoapp [flags] heatmap             per-MB importance map -> .pgm image
//	videoapp [flags] archive             stream raw video -> chunked .vacs archive
//	videoapp [flags] chunk               random-access round trip of one archived chunk
//	videoapp [flags] serve               HTTP chunk server over a .vacs archive
//	videoapp [flags] scrub               verify (and repair from -mirror) a .vacs archive
//	videoapp presets                     list synthetic presets
//
// Input is -in FILE (.y4m or .vapp as appropriate) or, when -in is omitted,
// the synthetic -preset at -w/-h/-frames.
//
// The archive command always streams: frames are pulled from the input one
// closed-GOP chunk (-chunk-gops) at a time and appended to the archive as
// they finish, so peak memory is bounded by the chunk size, not the video
// length. The store command accepts -stream to run the same chunked
// dataflow (the result is bit-identical to the batch path).
//
// The serve command exposes an archive to concurrent clients:
//
//	videoapp serve -archive x.vacs -addr :8080
//
// serves the archive index on /v1/archive, decoded chunk frames (y4m) on
// /v1/chunks/{i}, chunk metadata on /v1/chunks/{i}/meta and an
// observability snapshot on /metrics, with a sharded decoded-chunk LRU
// cache (-cache-mb, -cache-shards), sequential readahead (-prefetch) and
// per-request timeouts (-req-timeout). Ctrl-C drains in-flight
// connections before exiting.
//
// With -archive-dir the serve command becomes a multi-archive catalog:
//
//	videoapp serve -archive-dir /data/archives -addr :8080
//
// Every *.vacs file in the directory is served as an archive named by its
// basename under /v1/archives/{name}/..., with /v1/archives listing the
// catalog and the single-archive /v1 routes aliasing the first archive
// (sorted order). Archives open lazily on first request, close again after
// -idle-timeout of disuse, and share one decoded-chunk cache. SIGHUP
// rescans the directory without a restart: new files are added to the
// catalog and vanished ones removed, while untouched archives keep
// serving.
//
// The archive read path (serve, chunk, scrub) is fault-tolerant:
// -read-retries and -breaker-threshold tune the retry/shed policy,
// -mirror FILE attaches a second copy for transparent recovery and scrub
// repair, and -fault-profile "seed=N,transient=P,corrupt=P,short=P"
// injects deterministic faults into the primary for testing (see the
// internal/faultio package documentation for the spec grammar).
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"math"
	"net"
	"os"
	"os/signal"
	"path/filepath"
	"runtime/pprof"
	"strings"
	"syscall"
	"time"

	"videoapp"
	"videoapp/internal/faultio"
	"videoapp/internal/quality"
	"videoapp/internal/y4m"
)

type options struct {
	in, out    string
	preset     string
	w, h       int
	frames     int
	crf        int
	gop        int
	bframes    int
	slices     int
	cavlc      bool
	entropy    string
	halfpel    bool
	deblock    bool
	seed       int64
	workers    int
	stream     bool
	chunkGops  int
	chunkIdx   int
	metrics    bool
	cpuprofile string
	traceOut   string
	archive    string
	archiveDir string
	addr       string
	cacheMB    int
	cacheShard int
	prefetch   int
	reqTimeout time.Duration
	idleTime   time.Duration

	// Fault-tolerance knobs of the archive read path (serve/chunk/scrub).
	faultProfile     string
	mirror           string
	readRetries      int
	breakerThreshold int

	// mtr aggregates stage metrics when -metrics is set and trace streams
	// JSON events when -trace-out is; both also ride the run's context so
	// direct (non-pipeline) stage calls report too.
	mtr   *videoapp.Metrics
	trace *videoapp.Trace
}

func main() { os.Exit(cliMain(os.Args[1:], os.Stderr)) }

// cliMain is the testable body of main: it parses args, validates the
// flag set against the selected command, and runs it. Exit status 2 means
// the command line itself was rejected (flag parse or validation); 1 means
// the command ran and failed.
func cliMain(args []string, stderr io.Writer) int {
	var o options
	fs := flag.NewFlagSet("videoapp", flag.ContinueOnError)
	fs.SetOutput(stderr)
	fs.StringVar(&o.in, "in", "", "input file (.y4m for encode/gen reference, .vapp for info/analyze/store/decode)")
	fs.StringVar(&o.out, "o", "", "output file")
	fs.StringVar(&o.preset, "preset", "crew_like", "synthetic preset when -in is omitted")
	fs.IntVar(&o.w, "w", 320, "synthetic frame width")
	fs.IntVar(&o.h, "h", 176, "synthetic frame height")
	fs.IntVar(&o.frames, "frames", 60, "synthetic frame count")
	fs.IntVar(&o.crf, "crf", 24, "quality target (16=very high, 20=high, 24=standard)")
	fs.IntVar(&o.gop, "gop", 30, "I-frame interval")
	fs.IntVar(&o.bframes, "bframes", 0, "B frames between anchors")
	fs.IntVar(&o.slices, "slices", 1, "slices per frame")
	fs.BoolVar(&o.cavlc, "cavlc", false, "use CAVLC instead of CABAC (shorthand for -entropy cavlc)")
	fs.StringVar(&o.entropy, "entropy", "", "entropy coder: cabac or cavlc (default: cabac, or -cavlc)")
	fs.BoolVar(&o.halfpel, "halfpel", false, "half-pel motion compensation")
	fs.BoolVar(&o.deblock, "deblock", false, "in-loop deblocking filter")
	fs.Int64Var(&o.seed, "seed", 1, "storage round-trip seed")
	fs.IntVar(&o.workers, "workers", 0, "worker goroutines per pipeline stage (0 = GOMAXPROCS)")
	fs.BoolVar(&o.stream, "stream", false, "store: process as a stream of closed-GOP chunks (bit-identical to batch)")
	fs.IntVar(&o.chunkGops, "chunk-gops", 1, "closed GOPs per streaming chunk (archive granularity)")
	fs.IntVar(&o.chunkIdx, "chunk", 0, "chunk index for the chunk command")
	fs.BoolVar(&o.metrics, "metrics", false, "print per-stage wall time and pipeline counters (human + JSON)")
	fs.StringVar(&o.cpuprofile, "cpuprofile", "", "write a CPU profile to FILE; samples carry stage= pprof labels")
	fs.StringVar(&o.traceOut, "trace-out", "", "stream pipeline events to FILE as JSON lines")
	fs.StringVar(&o.archive, "archive", "", "serve: .vacs archive to serve (falls back to -in)")
	fs.StringVar(&o.archiveDir, "archive-dir", "", "serve: directory of *.vacs archives to serve as a catalog (SIGHUP rescans)")
	fs.StringVar(&o.addr, "addr", ":8080", "serve: listen address")
	fs.IntVar(&o.cacheMB, "cache-mb", 64, "serve: decoded-chunk cache budget in MiB")
	fs.IntVar(&o.cacheShard, "cache-shards", 0, "serve: cache lock shards, rounded up to a power of two (0 = auto: max(8, GOMAXPROCS))")
	fs.IntVar(&o.prefetch, "prefetch", 2, "serve: sequential readahead depth in chunks (0 disables)")
	fs.DurationVar(&o.reqTimeout, "req-timeout", 30*time.Second, "serve: per-request timeout, decode included")
	fs.DurationVar(&o.idleTime, "idle-timeout", 0, "serve -archive-dir: close archives unused this long (0 = never)")
	fs.StringVar(&o.faultProfile, "fault-profile", "", "inject deterministic faults into archive reads: \"seed=N,transient=P,corrupt=P,short=P,latency=D\"")
	fs.StringVar(&o.mirror, "mirror", "", "second copy of the archive for read recovery and scrub repair")
	fs.IntVar(&o.readRetries, "read-retries", 0, "archive read retries after the first failure (0 = default of 2, negative disables)")
	fs.IntVar(&o.breakerThreshold, "breaker-threshold", 0, "consecutive hard read failures that open the serve circuit breaker (0 = default of 8, negative disables)")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	cmd := fs.Arg(0)
	if cmd == "" {
		cmd = "store"
	}
	if err := o.validate(cmd); err != nil {
		fmt.Fprintf(stderr, "videoapp: %v\n", err)
		return 2
	}
	// Ctrl-C cancels the pipeline cooperatively at the next frame boundary.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if err := instrumentedRun(ctx, cmd, o); err != nil {
		fmt.Fprintf(stderr, "videoapp: %v\n", err)
		return 1
	}
	return 0
}

// instrumentedRun wires the observability flags around run: the CPU profile
// brackets the whole command, the observer (metrics aggregator and/or JSON
// trace) rides the context into every pipeline stage, and the -metrics
// report prints once the command finishes.
func instrumentedRun(ctx context.Context, cmd string, o options) error {
	if o.cpuprofile != "" {
		f, err := os.Create(o.cpuprofile)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}
	var observers []videoapp.Observer
	if o.metrics {
		o.mtr = videoapp.NewMetrics()
		observers = append(observers, o.mtr)
	}
	if o.traceOut != "" {
		f, err := os.Create(o.traceOut)
		if err != nil {
			return err
		}
		defer f.Close()
		o.trace = videoapp.NewTrace(f)
		observers = append(observers, o.trace)
	}
	ctx = videoapp.ContextWithObserver(ctx, videoapp.MultiObserver(observers...))

	err := run(ctx, cmd, o)

	if o.trace != nil && err == nil {
		err = o.trace.Err()
	}
	if o.mtr != nil {
		snap := o.mtr.Snapshot()
		fmt.Println("-- metrics --")
		if werr := snap.WriteText(os.Stdout); werr != nil && err == nil {
			err = werr
		}
		if js, jerr := snap.JSON(); jerr == nil {
			fmt.Printf("%s\n", js)
		} else if err == nil {
			err = jerr
		}
	}
	return err
}

// validate rejects flag values that would otherwise surface as a confusing
// failure (or a silent fallback) deep inside the pipeline, plus flag/command
// combinations that contradict each other.
func (o options) validate(cmd string) error {
	switch cmd {
	case "serve":
		if o.archiveDir == "" && o.archive == "" && o.in == "" {
			return fmt.Errorf("the serve command requires -archive FILE (or -in FILE, or -archive-dir DIR)")
		}
		if o.archiveDir != "" && (o.archive != "" || o.in != "") {
			return fmt.Errorf("-archive-dir conflicts with -archive/-in (serve one archive or a directory, not both)")
		}
		if o.archiveDir != "" && o.mirror != "" {
			return fmt.Errorf("-mirror attaches to a single archive and conflicts with -archive-dir")
		}
	case "scrub":
		if o.archive == "" && o.in == "" {
			return fmt.Errorf("the scrub command requires -archive FILE (or -in FILE)")
		}
	case "chunk":
		if o.in == "" {
			return fmt.Errorf("the chunk command requires -in ARCHIVE")
		}
	}
	if o.archiveDir != "" && cmd != "serve" {
		return fmt.Errorf("-archive-dir only applies to the serve command")
	}
	if o.idleTime < 0 {
		return fmt.Errorf("-idle-timeout %v must be >= 0", o.idleTime)
	}
	if o.idleTime > 0 && o.archiveDir == "" {
		return fmt.Errorf("-idle-timeout only applies to serve -archive-dir (a single -archive is never idle-closed)")
	}
	if o.stream && cmd != "store" {
		return fmt.Errorf("-stream only applies to the store command (the %s command is always chunked)", cmd)
	}
	if o.faultProfile != "" {
		if _, err := faultio.ParseProfile(o.faultProfile); err != nil {
			return fmt.Errorf("-fault-profile: %w", err)
		}
	}
	if o.workers < 0 {
		return fmt.Errorf("-workers %d is negative (0 selects GOMAXPROCS)", o.workers)
	}
	if o.in == "" && o.frames <= 0 {
		return fmt.Errorf("-frames %d must be positive for synthetic input", o.frames)
	}
	if o.in == "" && (o.w <= 0 || o.h <= 0) {
		return fmt.Errorf("-w %d -h %d must be positive for synthetic input", o.w, o.h)
	}
	switch o.entropy {
	case "", "cabac", "cavlc":
	default:
		return fmt.Errorf("-entropy %q is not a known coder (want cabac or cavlc)", o.entropy)
	}
	if o.entropy == "cabac" && o.cavlc {
		return fmt.Errorf("-entropy cabac contradicts -cavlc")
	}
	if o.chunkGops < 1 {
		return fmt.Errorf("-chunk-gops %d must be >= 1", o.chunkGops)
	}
	if o.chunkIdx < 0 {
		return fmt.Errorf("-chunk %d must be >= 0", o.chunkIdx)
	}
	if o.cacheMB < 1 {
		return fmt.Errorf("-cache-mb %d must be >= 1", o.cacheMB)
	}
	if o.cacheShard < 0 {
		return fmt.Errorf("-cache-shards %d must be >= 0", o.cacheShard)
	}
	if o.prefetch < 0 {
		return fmt.Errorf("-prefetch %d must be >= 0", o.prefetch)
	}
	if o.reqTimeout <= 0 {
		return fmt.Errorf("-req-timeout %v must be positive", o.reqTimeout)
	}
	return nil
}

// useCAVLC resolves the entropy coder selection from -entropy and the
// -cavlc shorthand (validated to agree).
func (o options) useCAVLC() bool { return o.cavlc || o.entropy == "cavlc" }

// faultPolicy maps the read-path flags onto a FaultPolicy; zero fields
// resolve to the library defaults.
func (o options) faultPolicy() videoapp.FaultPolicy {
	return videoapp.FaultPolicy{
		MaxRetries:       o.readRetries,
		BreakerThreshold: o.breakerThreshold,
	}
}

// openArchive opens path for the fault-tolerant read path: the primary
// reader wrapped in the -fault-profile injector when one is configured,
// the -mirror copy attached for recovery, and the flag policy attached for
// retries. writable opens the primary read-write so scrub can repair it in
// place. The returned closer releases every opened file.
func (o options) openArchive(path string, writable bool) (*videoapp.ChunkArchive, func() error, error) {
	mode := os.O_RDONLY
	if writable {
		mode = os.O_RDWR
	}
	f, err := os.OpenFile(path, mode, 0)
	if err != nil {
		return nil, nil, err
	}
	closers := []io.Closer{f}
	closeAll := func() error {
		var first error
		for _, c := range closers {
			if err := c.Close(); err != nil && first == nil {
				first = err
			}
		}
		return first
	}
	// *os.File is an io.ReaderAt, so concurrent chunk reads share no
	// cursor and take no lock; the faultio wrapper preserves both that and
	// the io.WriterAt scrub repairs need.
	var r io.ReaderAt = f
	if o.faultProfile != "" {
		prof, err := faultio.ParseProfile(o.faultProfile)
		if err != nil {
			closeAll()
			return nil, nil, err
		}
		r = faultio.New(f, prof)
	}
	opts := []videoapp.ArchiveOption{videoapp.WithArchivePolicy(o.faultPolicy())}
	if o.mirror != "" {
		m, err := os.Open(o.mirror)
		if err != nil {
			closeAll()
			return nil, nil, err
		}
		closers = append(closers, m)
		opts = append(opts, videoapp.WithMirror(m))
	}
	a, err := videoapp.OpenArchive(r, opts...)
	if err != nil {
		closeAll()
		return nil, nil, err
	}
	closers = append(closers, a)
	return a, closeAll, nil
}

// pipelineOptions maps the CLI flags 1:1 onto the NewPipeline functional
// options (see the NewPipeline godoc for the table): the encoder flags via
// WithParams, -cavlc via WithEntropyCoder, -seed via WithSeed, -workers via
// WithWorkers, and the observability flags via WithMetrics/WithObserver.
func (o options) pipelineOptions() []videoapp.Option {
	opts := []videoapp.Option{
		videoapp.WithParams(o.params()),
		videoapp.WithWorkers(o.workers),
		videoapp.WithSeed(o.seed),
		videoapp.WithChunkGOPs(o.chunkGops),
	}
	if o.useCAVLC() {
		opts = append(opts, videoapp.WithEntropyCoder(videoapp.CAVLC))
	}
	if o.mtr != nil {
		opts = append(opts, videoapp.WithMetrics(o.mtr))
	}
	if o.trace != nil {
		opts = append(opts, videoapp.WithObserver(o.trace))
	}
	return opts
}

func (o options) params() videoapp.Params {
	p := videoapp.DefaultParams()
	p.CRF = o.crf
	p.GOPSize = o.gop
	p.BFrames = o.bframes
	p.SlicesPerFrame = o.slices
	p.HalfPel = o.halfpel
	p.Deblock = o.deblock
	if o.useCAVLC() {
		p.Entropy = videoapp.CAVLC
	}
	return p
}

// streamSource opens the raw input as an incrementally read ChunkSource:
// .y4m files are decoded frame by frame (bounded memory); synthetic input
// is generated up front and replayed. The caller must invoke the returned
// closer once streaming finishes.
func (o options) streamSource() (videoapp.ChunkSource, func() error, error) {
	if o.in == "" {
		seq, err := videoapp.GenerateTestVideo(o.preset, o.w, o.h, o.frames)
		if err != nil {
			return nil, nil, err
		}
		return videoapp.SequenceSource(seq), func() error { return nil }, nil
	}
	if looksLikeContainer(o.in) {
		return nil, nil, fmt.Errorf("streaming needs raw .y4m input, not a .vapp container (%s)", o.in)
	}
	f, err := os.Open(o.in)
	if err != nil {
		return nil, nil, err
	}
	src, err := videoapp.Y4MSource(f, o.in)
	if err != nil {
		f.Close()
		return nil, nil, err
	}
	return src, f.Close, nil
}

// loadRaw returns the raw input sequence: a .y4m file or a synthetic preset.
func (o options) loadRaw() (*videoapp.Sequence, error) {
	if o.in == "" {
		return videoapp.GenerateTestVideo(o.preset, o.w, o.h, o.frames)
	}
	f, err := os.Open(o.in)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return y4m.ReadAll(f, o.in)
}

// loadVideo returns an encoded video: a .vapp container (reanalyzed) or a
// fresh encode of the raw input.
func (o options) loadVideo(ctx context.Context) (*videoapp.Video, *videoapp.Sequence, error) {
	if o.in != "" && looksLikeContainer(o.in) {
		data, err := os.ReadFile(o.in)
		if err != nil {
			return nil, nil, err
		}
		v, err := videoapp.Unmarshal(data)
		if err != nil {
			return nil, nil, err
		}
		if err := videoapp.Reanalyze(v); err != nil {
			return nil, nil, err
		}
		return v, nil, nil
	}
	seq, err := o.loadRaw()
	if err != nil {
		return nil, nil, err
	}
	v, err := videoapp.EncodeContext(ctx, seq, o.params(), o.workers)
	return v, seq, err
}

func looksLikeContainer(path string) bool {
	f, err := os.Open(path)
	if err != nil {
		return false
	}
	defer f.Close()
	var magic [4]byte
	if _, err := f.Read(magic[:]); err != nil {
		return false
	}
	return string(magic[:]) == "VAPP"
}

func run(ctx context.Context, cmd string, o options) error {
	switch cmd {
	case "presets":
		for _, n := range videoapp.PresetNames() {
			fmt.Println(n)
		}
		return nil
	case "gen":
		seq, err := videoapp.GenerateTestVideo(o.preset, o.w, o.h, o.frames)
		if err != nil {
			return err
		}
		return writeOut(o.out, func(f *os.File) error { return y4m.Write(f, seq) })
	case "encode":
		seq, err := o.loadRaw()
		if err != nil {
			return err
		}
		v, err := videoapp.EncodeContext(ctx, seq, o.params(), o.workers)
		if err != nil {
			return err
		}
		data := videoapp.Marshal(v)
		fmt.Printf("encoded %d frames: %d payload bits (%.3f bits/pixel), container %d bytes\n",
			len(v.Frames), v.TotalPayloadBits(),
			float64(v.TotalPayloadBits())/float64(seq.PixelCount()), len(data))
		clean, err := videoapp.DecodeContext(ctx, v, o.workers)
		if err != nil {
			return err
		}
		rep, err := videoapp.MeasureContext(ctx, seq, clean, o.workers)
		if err != nil {
			return err
		}
		fmt.Printf("quality: PSNR %.2f dB, SSIM %.4f, MS-SSIM %.4f, VIF %.4f\n",
			rep.PSNR, rep.SSIM, rep.MSSSIM, rep.VIF)
		if o.out != "" {
			return os.WriteFile(o.out, data, 0o644)
		}
		return nil
	case "decode":
		v, _, err := o.loadVideo(ctx)
		if err != nil {
			return err
		}
		seq, err := videoapp.DecodeContext(ctx, v, o.workers)
		if err != nil {
			return err
		}
		return writeOut(o.out, func(f *os.File) error { return y4m.Write(f, seq) })
	case "info":
		v, _, err := o.loadVideo(ctx)
		if err != nil {
			return err
		}
		types := map[string]int{}
		for _, f := range v.Frames {
			types[f.Type.String()]++
		}
		fmt.Printf("%dx%d @ %d fps, %d frames (I:%d P:%d B:%d), %s, CRF %d, GOP %d, %d slice(s)\n",
			v.W, v.H, v.FPS, len(v.Frames), types["I"], types["P"], types["B"],
			v.Params.Entropy, v.Params.CRF, v.Params.GOPSize, max1(v.Params.SlicesPerFrame))
		fmt.Printf("payload: %d bits, headers: %d bits\n", v.TotalPayloadBits(), v.HeaderBits())
		return nil
	case "heatmap":
		v, _, err := o.loadVideo(ctx)
		if err != nil {
			return err
		}
		an, err := videoapp.AnalyzeContext(ctx, v, o.workers)
		if err != nil {
			return err
		}
		return writeOut(o.out, func(f *os.File) error { return writeHeatmapPGM(f, v, an) })
	case "analyze":
		v, _, err := o.loadVideo(ctx)
		if err != nil {
			return err
		}
		an, err := videoapp.AnalyzeContext(ctx, v, o.workers)
		if err != nil {
			return err
		}
		parts := an.Partition(videoapp.PaperAssignment())
		fmt.Printf("max importance: %.0f MBs\n", an.MaxImportance())
		for f, fp := range parts {
			if f > 4 && f < len(parts)-1 {
				if f == 5 {
					fmt.Println("  ...")
				}
				continue
			}
			fmt.Printf("  frame %3d (%s): %d pivots:", f, v.Frames[f].Type, len(fp.Pivots))
			for _, pv := range fp.Pivots {
				fmt.Printf(" [bit %d -> %s]", pv.Bit, pv.Scheme.Name)
			}
			fmt.Println()
		}
		return nil
	case "store":
		v, seq, err := o.loadVideo(ctx)
		if err != nil {
			return err
		}
		// Container inputs carry their own encoder parameters, which must
		// win over the flag defaults; append so they override in order.
		p := videoapp.NewPipeline(append(o.pipelineOptions(), videoapp.WithParams(v.Params))...)
		if seq == nil {
			// Container input: measure against the clean decode.
			clean, err := videoapp.DecodeContext(ctx, v, o.workers)
			if err != nil {
				return err
			}
			seq = clean
		}
		var res *videoapp.Result
		if o.stream {
			// The chunked dataflow; the result is bit-identical to batch.
			res, err = p.ProcessStream(ctx, videoapp.SequenceSource(seq))
		} else {
			res, err = p.ProcessContext(ctx, seq)
		}
		if err != nil {
			return err
		}
		fmt.Printf("storage footprint: %.0f cells, %.4f cells/pixel, ECC overhead %.1f%%\n",
			res.Stats.Cells, res.Stats.CellsPerPixel, res.Stats.ECCOverhead*100)
		for name, bits := range res.Stats.PerScheme {
			fmt.Printf("  %-7s %12d bits\n", name, bits)
		}
		clean, err := videoapp.DecodeContext(ctx, res.Video, o.workers)
		if err != nil {
			return err
		}
		dec, flips, err := res.RoundTrip(ctx)
		if err != nil {
			return err
		}
		p0, _ := quality.PSNR(seq, clean)
		p1, _ := quality.PSNR(seq, dec)
		fmt.Printf("round trip: %d residual bit errors, PSNR %.2f dB (clean %.2f, loss %.3f dB)\n",
			flips, p1, p0, p0-p1)
		return nil
	case "archive":
		src, closeSrc, err := o.streamSource()
		if err != nil {
			return err
		}
		defer closeSrc()
		p := videoapp.NewPipeline(o.pipelineOptions()...)
		err = writeOut(o.out, func(f *os.File) error {
			meta, stats, err := p.StreamToArchive(ctx, src, f)
			if err != nil {
				return err
			}
			fmt.Printf("archived %dx%d @ %d fps in %d-GOP chunks (GOP %d)\n",
				meta.W, meta.H, meta.FPS, meta.GOPsPerChunk, meta.GOPSize)
			fmt.Printf("storage footprint: %.0f cells, %.4f cells/pixel, ECC overhead %.1f%%\n",
				stats.Cells, stats.CellsPerPixel, stats.ECCOverhead*100)
			return nil
		})
		if err != nil {
			return err
		}
		return closeSrc()
	case "chunk":
		a, closeArchive, err := o.openArchive(o.in, false)
		if err != nil {
			return err
		}
		defer closeArchive()
		info, err := a.Info(o.chunkIdx)
		if err != nil {
			return err
		}
		v, parts, err := a.ReadChunk(o.chunkIdx)
		if err != nil {
			return err
		}
		fmt.Printf("chunk %d/%d: frames %d..%d, %d payload bytes\n",
			o.chunkIdx, a.NumChunks(), info.FirstFrame, info.FirstFrame+info.Frames-1, info.Length)
		p := videoapp.NewPipeline(append(o.pipelineOptions(), videoapp.WithParams(v.Params))...)
		dec, flips, err := p.RoundTripChunk(ctx, v, parts, info.FirstFrame, o.seed)
		if err != nil {
			return err
		}
		fmt.Printf("round trip: %d residual bit errors in this chunk\n", flips)
		if o.out != "" {
			return writeOut(o.out, func(f *os.File) error { return y4m.Write(f, dec) })
		}
		return nil
	case "serve":
		if o.archiveDir != "" {
			return o.serveCatalog(ctx)
		}
		path := o.archive
		if path == "" {
			path = o.in
		}
		a, closeArchive, err := o.openArchive(path, false)
		if err != nil {
			return err
		}
		defer closeArchive()
		srv := videoapp.NewChunkServer(a, o.serveOptions()...)
		l, err := net.Listen("tcp", o.addr)
		if err != nil {
			return err
		}
		fmt.Printf("serving %s (%d chunks, %d frames) on http://%s\n",
			path, a.NumChunks(), a.TotalFrames(), l.Addr())
		err = srv.Serve(ctx, l)
		if o.mtr != nil {
			// Fold the server's aggregates into the -metrics report.
			snap := srv.Metrics().Snapshot()
			fmt.Println("-- serve metrics --")
			snap.WriteText(os.Stdout)
		}
		fmt.Println("server drained, exiting")
		return err
	case "scrub":
		path := o.archive
		if path == "" {
			path = o.in
		}
		// Open read-write so damaged regions can be repaired in place when
		// a -mirror is attached.
		a, closeArchive, err := o.openArchive(path, o.mirror != "")
		if err != nil {
			return err
		}
		defer closeArchive()
		rep, err := a.Scrub(ctx)
		if err != nil {
			return err
		}
		for _, h := range rep.Chunks {
			if len(h.Damaged) == 0 {
				continue
			}
			fmt.Printf("chunk %d: %d/%d regions damaged %v, repaired %v\n",
				h.Index, len(h.Damaged), h.Regions, h.Damaged, h.Repaired)
		}
		fmt.Printf("scrubbed %d chunks: %d damaged regions, %d repaired\n",
			len(rep.Chunks), rep.Damaged, rep.Repaired)
		if !rep.Healthy() {
			return fmt.Errorf("archive has %d unrepaired damaged regions", rep.Damaged-rep.Repaired)
		}
		return nil
	default:
		return fmt.Errorf("unknown command %q (want gen|encode|decode|info|analyze|store|archive|chunk|serve|scrub|presets)", cmd)
	}
}

// serveOptions maps the serve flags onto the server/catalog options shared
// by both serve modes.
func (o options) serveOptions() []videoapp.ServeOption {
	opts := []videoapp.ServeOption{
		videoapp.WithCacheBytes(int64(o.cacheMB) << 20),
		videoapp.WithServeWorkers(o.workers),
		videoapp.WithRequestTimeout(o.reqTimeout),
		videoapp.WithFaultPolicy(o.faultPolicy()),
		videoapp.WithPrefetch(o.prefetch),
	}
	if o.cacheShard != 0 {
		opts = append(opts, videoapp.WithCacheShards(o.cacheShard))
	}
	if o.trace != nil {
		opts = append(opts, videoapp.WithServeObserver(o.trace))
	}
	return opts
}

// openBackend returns an ArchiveSpec.Open for path: a read-only file
// backend, wrapped in the -fault-profile injector when one is configured.
// The catalog calls it anew on every lazy (re)open, so the injector's fault
// sequence restarts from its seed each time.
func (o options) openBackend(path string) func() (videoapp.Backend, error) {
	return func() (videoapp.Backend, error) {
		b, err := videoapp.OpenFileBackend(path, false)
		if err != nil {
			return nil, err
		}
		if o.faultProfile != "" {
			prof, err := faultio.ParseProfile(o.faultProfile)
			if err != nil {
				b.Close()
				return nil, err
			}
			return faultio.Wrap(b, prof), nil
		}
		return b, nil
	}
}

// archiveSpecs scans -archive-dir for *.vacs files and returns one spec per
// file, named by basename, in sorted order (the first becomes the catalog's
// default archive).
func (o options) archiveSpecs() ([]videoapp.ArchiveSpec, error) {
	entries, err := os.ReadDir(o.archiveDir)
	if err != nil {
		return nil, err
	}
	var specs []videoapp.ArchiveSpec
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".vacs") {
			continue
		}
		specs = append(specs, videoapp.ArchiveSpec{
			Name:    strings.TrimSuffix(e.Name(), ".vacs"),
			Open:    o.openBackend(filepath.Join(o.archiveDir, e.Name())),
			Options: []videoapp.ArchiveOption{videoapp.WithArchivePolicy(o.faultPolicy())},
		})
	}
	return specs, nil
}

// rescanCatalog diffs -archive-dir against the catalog's current members:
// vanished archives are removed (their cached chunks purged), new files
// added. Archives present on both sides are left untouched — they keep
// serving and keep their cache entries.
func (o options) rescanCatalog(cat *videoapp.Catalog) error {
	specs, err := o.archiveSpecs()
	if err != nil {
		return err
	}
	want := map[string]bool{}
	for _, s := range specs {
		want[s.Name] = true
	}
	for _, name := range cat.Names() {
		if !want[name] {
			if err := cat.Remove(name); err == nil {
				fmt.Printf("rescan: removed archive %q\n", name)
			}
		}
	}
	have := map[string]bool{}
	for _, name := range cat.Names() {
		have[name] = true
	}
	for _, s := range specs {
		if have[s.Name] {
			continue
		}
		if err := cat.Add(s); err != nil {
			fmt.Printf("rescan: skipping %q: %v\n", s.Name, err)
			continue
		}
		fmt.Printf("rescan: added archive %q\n", s.Name)
	}
	return nil
}

// serveCatalog is serve -archive-dir: a lazily-opened catalog over every
// .vacs file in the directory, rescanned on SIGHUP.
func (o options) serveCatalog(ctx context.Context) error {
	specs, err := o.archiveSpecs()
	if err != nil {
		return err
	}
	if len(specs) == 0 {
		return fmt.Errorf("no *.vacs archives in %s", o.archiveDir)
	}
	srvOpts := o.serveOptions()
	if o.idleTime > 0 {
		srvOpts = append(srvOpts, videoapp.WithIdleTimeout(o.idleTime))
	}
	cat, err := videoapp.NewCatalog(specs, srvOpts...)
	if err != nil {
		return err
	}
	defer cat.Close()

	hup := make(chan os.Signal, 1)
	signal.Notify(hup, syscall.SIGHUP)
	defer signal.Stop(hup)
	go func() {
		for {
			select {
			case <-hup:
				if err := o.rescanCatalog(cat); err != nil {
					fmt.Printf("rescan: %v\n", err)
				}
			case <-ctx.Done():
				return
			}
		}
	}()

	l, err := net.Listen("tcp", o.addr)
	if err != nil {
		return err
	}
	fmt.Printf("serving %d archives from %s on http://%s (default %q; SIGHUP rescans)\n",
		len(specs), o.archiveDir, l.Addr(), cat.DefaultName())
	err = cat.Serve(ctx, l)
	if o.mtr != nil {
		snap := cat.Metrics().Snapshot()
		fmt.Println("-- serve metrics --")
		snap.WriteText(os.Stdout)
	}
	fmt.Println("server drained, exiting")
	return err
}

func writeOut(path string, write func(*os.File) error) error {
	if path == "" {
		return fmt.Errorf("this command requires -o FILE")
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return write(f)
}

// writeHeatmapPGM renders the per-macroblock importance of every frame as a
// tiled grayscale image (one tile per frame, log-scaled), a quick visual
// check of the Figure 2(c)/Figure 4 dependency structure.
func writeHeatmapPGM(f *os.File, v *videoapp.Video, an *videoapp.Analysis) error {
	mbCols, mbRows := v.MBCols(), v.MBRows()
	tiles := len(v.Frames)
	cols := 1
	for cols*cols < tiles {
		cols++
	}
	rows := (tiles + cols - 1) / cols
	imgW, imgH := cols*(mbCols+1), rows*(mbRows+1)
	pix := make([]uint8, imgW*imgH)
	maxLog := math.Log2(an.MaxImportance() + 1)
	if maxLog <= 0 {
		maxLog = 1
	}
	for fi := range v.Frames {
		ox, oy := (fi%cols)*(mbCols+1), (fi/cols)*(mbRows+1)
		for m, imp := range an.Importance[fi] {
			level := math.Log2(imp+1) / maxLog
			x, y := ox+m%mbCols, oy+m/mbCols
			pix[y*imgW+x] = uint8(255 * level)
		}
	}
	if _, err := fmt.Fprintf(f, "P5\n%d %d\n255\n", imgW, imgH); err != nil {
		return err
	}
	_, err := f.Write(pix)
	return err
}

func max1(v int) int {
	if v < 1 {
		return 1
	}
	return v
}
