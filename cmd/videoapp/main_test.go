package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"videoapp"
)

// TestCLIValidation drives cliMain the way main does and checks the exit
// status contract: 2 for a rejected command line (flag parse or
// validation), 1 for a command that runs and fails, 0 for success. Flags
// precede the command word, as in a real invocation (the flag package
// stops parsing at the first positional argument).
func TestCLIValidation(t *testing.T) {
	cases := []struct {
		name   string
		args   []string
		exit   int
		stderr string // substring the diagnostic must contain; "" = any
	}{
		{
			name: "presets succeeds",
			args: []string{"presets"},
			exit: 0,
		},
		{
			name:   "serve without archive",
			args:   []string{"serve"},
			exit:   2,
			stderr: "requires -archive",
		},
		{
			name:   "scrub without archive",
			args:   []string{"scrub"},
			exit:   2,
			stderr: "requires -archive",
		},
		{
			name:   "chunk without input",
			args:   []string{"chunk"},
			exit:   2,
			stderr: "requires -in",
		},
		{
			name:   "bad cache-mb",
			args:   []string{"-cache-mb", "0", "-archive", "x.vacs", "serve"},
			exit:   2,
			stderr: "-cache-mb",
		},
		{
			name:   "negative cache-shards",
			args:   []string{"-cache-shards", "-1", "-archive", "x.vacs", "serve"},
			exit:   2,
			stderr: "-cache-shards",
		},
		{
			name:   "negative prefetch",
			args:   []string{"-prefetch", "-2", "-archive", "x.vacs", "serve"},
			exit:   2,
			stderr: "-prefetch",
		},
		{
			name:   "stream conflicts with archive command",
			args:   []string{"-stream", "archive"},
			exit:   2,
			stderr: "-stream only applies to the store command",
		},
		{
			name:   "stream conflicts with serve command",
			args:   []string{"-stream", "-archive", "x.vacs", "serve"},
			exit:   2,
			stderr: "-stream only applies to the store command",
		},
		{
			name:   "unparseable fault profile",
			args:   []string{"-fault-profile", "transient=lots", "-archive", "x.vacs", "serve"},
			exit:   2,
			stderr: "-fault-profile",
		},
		{
			name:   "unknown flag",
			args:   []string{"-no-such-flag"},
			exit:   2,
			stderr: "flag provided but not defined",
		},
		{
			name:   "negative workers",
			args:   []string{"-workers", "-1", "presets"},
			exit:   2,
			stderr: "-workers",
		},
		{
			name:   "bad entropy coder",
			args:   []string{"-entropy", "huffman", "presets"},
			exit:   2,
			stderr: "-entropy",
		},
		{
			name:   "entropy contradicts cavlc shorthand",
			args:   []string{"-entropy", "cabac", "-cavlc", "presets"},
			exit:   2,
			stderr: "contradicts",
		},
		{
			name:   "unknown command",
			args:   []string{"frobnicate"},
			exit:   1,
			stderr: "unknown command",
		},
		{
			name:   "serve with missing archive file",
			args:   []string{"-archive", filepath.Join(t.TempDir(), "absent.vacs"), "serve"},
			exit:   1,
			stderr: "no such file",
		},
		{
			name:   "archive-dir conflicts with archive",
			args:   []string{"-archive", "x.vacs", "-archive-dir", t.TempDir(), "serve"},
			exit:   2,
			stderr: "-archive-dir conflicts",
		},
		{
			name:   "archive-dir conflicts with mirror",
			args:   []string{"-archive-dir", t.TempDir(), "-mirror", "m.vacs", "serve"},
			exit:   2,
			stderr: "-mirror",
		},
		{
			name:   "archive-dir outside serve",
			args:   []string{"-archive-dir", t.TempDir(), "presets"},
			exit:   2,
			stderr: "only applies to the serve command",
		},
		{
			name:   "idle-timeout without archive-dir",
			args:   []string{"-idle-timeout", "1m", "-archive", "x.vacs", "serve"},
			exit:   2,
			stderr: "-idle-timeout",
		},
		{
			name:   "serve over an empty archive dir",
			args:   []string{"-archive-dir", t.TempDir(), "serve"},
			exit:   1,
			stderr: "no *.vacs archives",
		},
		{
			name:   "negative idle-timeout",
			args:   []string{"-idle-timeout", "-1s", "-archive-dir", t.TempDir(), "serve"},
			exit:   2,
			stderr: "-idle-timeout",
		},
		{
			name:   "nonpositive frames",
			args:   []string{"-frames", "0", "presets"},
			exit:   2,
			stderr: "-frames",
		},
		{
			name:   "nonpositive dimensions",
			args:   []string{"-w", "0", "-h", "48", "presets"},
			exit:   2,
			stderr: "must be positive",
		},
		{
			name:   "chunk-gops below one",
			args:   []string{"-chunk-gops", "0", "presets"},
			exit:   2,
			stderr: "-chunk-gops",
		},
		{
			name:   "negative chunk index",
			args:   []string{"-chunk", "-1", "-in", "x.vapp", "chunk"},
			exit:   2,
			stderr: "-chunk",
		},
		{
			name:   "nonpositive req-timeout",
			args:   []string{"-req-timeout", "0s", "-archive", "x.vacs", "serve"},
			exit:   2,
			stderr: "-req-timeout",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var stderr bytes.Buffer
			got := cliMain(tc.args, &stderr)
			if got != tc.exit {
				t.Fatalf("cliMain(%q) = %d, want %d (stderr: %s)", tc.args, got, tc.exit, stderr.String())
			}
			if tc.stderr != "" && !strings.Contains(stderr.String(), tc.stderr) {
				t.Fatalf("stderr %q does not contain %q", stderr.String(), tc.stderr)
			}
		})
	}
}

// TestCLICatalogRescan exercises the -archive-dir machinery beneath the
// serve command without binding a socket: the directory scan names archives
// by basename in sorted order (first = default), and a rescan — the SIGHUP
// handler's body — adds new files and removes vanished ones while the
// survivors keep serving.
func TestCLICatalogRescan(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a real archive")
	}
	dir := t.TempDir()
	seedPath := filepath.Join(dir, "alpha.vacs")

	var stderr bytes.Buffer
	args := []string{"-preset", "news_like", "-w", "64", "-h", "48", "-frames", "8", "-gop", "4", "-o", seedPath, "archive"}
	if got := cliMain(args, &stderr); got != 0 {
		t.Fatalf("archive: exit %d (stderr: %s)", got, stderr.String())
	}
	data, err := os.ReadFile(seedPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "beta.vacs"), data, 0o644); err != nil {
		t.Fatal(err)
	}
	// Non-archive files are ignored by the scan.
	if err := os.WriteFile(filepath.Join(dir, "notes.txt"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}

	o := options{archiveDir: dir}
	specs, err := o.archiveSpecs()
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 2 || specs[0].Name != "alpha" || specs[1].Name != "beta" {
		t.Fatalf("archiveSpecs = %+v, want alpha, beta", specs)
	}
	cat, err := videoapp.NewCatalog(specs)
	if err != nil {
		t.Fatal(err)
	}
	defer cat.Close()
	if def := cat.DefaultName(); def != "alpha" {
		t.Fatalf("default archive %q, want first sorted %q", def, "alpha")
	}
	// The specs open real archives lazily.
	a, err := videoapp.OpenArchiveBackend(mustOpenBackend(t, specs[0]))
	if err != nil {
		t.Fatal(err)
	}
	if a.NumChunks() == 0 {
		t.Fatal("scanned archive has no chunks")
	}
	a.Close()

	// The SIGHUP body: beta vanishes, gamma appears.
	if err := os.Remove(filepath.Join(dir, "beta.vacs")); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "gamma.vacs"), data, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := o.rescanCatalog(cat); err != nil {
		t.Fatal(err)
	}
	if names := cat.Names(); len(names) != 2 || names[0] != "alpha" || names[1] != "gamma" {
		t.Fatalf("post-rescan catalog = %v, want [alpha gamma]", names)
	}
	if def := cat.DefaultName(); def != "alpha" {
		t.Fatalf("rescan moved the default to %q", def)
	}
}

func mustOpenBackend(t *testing.T, spec videoapp.ArchiveSpec) videoapp.Backend {
	t.Helper()
	b, err := spec.Open()
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { b.Close() })
	return b
}

// TestCLIScrubRoundTrip exercises the scrub command end to end: a clean
// archive scrubs healthy (exit 0), a corrupted copy without a mirror exits
// 1, and with a mirror the archive is repaired in place byte-for-byte.
func TestCLIScrubRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a real archive")
	}
	dir := t.TempDir()
	clean := filepath.Join(dir, "clean.vacs")

	var stderr bytes.Buffer
	args := []string{"-preset", "news_like", "-w", "64", "-h", "48", "-frames", "8", "-gop", "4", "-o", clean, "archive"}
	if got := cliMain(args, &stderr); got != 0 {
		t.Fatalf("archive: exit %d (stderr: %s)", got, stderr.String())
	}

	if got := cliMain([]string{"-in", clean, "scrub"}, &stderr); got != 0 {
		t.Fatalf("clean scrub: exit %d (stderr: %s)", got, stderr.String())
	}

	// Corrupt the tail of a copy; the last bytes are stream payload.
	data, err := os.ReadFile(clean)
	if err != nil {
		t.Fatal(err)
	}
	corrupted := append([]byte(nil), data...)
	corrupted[len(corrupted)-1] ^= 0xFF
	damaged := filepath.Join(dir, "damaged.vacs")
	if err := os.WriteFile(damaged, corrupted, 0o644); err != nil {
		t.Fatal(err)
	}

	stderr.Reset()
	if got := cliMain([]string{"-in", damaged, "scrub"}, &stderr); got != 1 {
		t.Fatalf("damaged scrub without mirror: exit %d, want 1 (stderr: %s)", got, stderr.String())
	}
	if !strings.Contains(stderr.String(), "unrepaired") {
		t.Fatalf("stderr %q does not report unrepaired damage", stderr.String())
	}

	stderr.Reset()
	if got := cliMain([]string{"-in", damaged, "-mirror", clean, "scrub"}, &stderr); got != 0 {
		t.Fatalf("scrub with mirror: exit %d (stderr: %s)", got, stderr.String())
	}
	repaired, err := os.ReadFile(damaged)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(repaired, data) {
		t.Fatal("scrub with mirror did not restore the damaged archive byte-for-byte")
	}
}
