package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestCLIValidation drives cliMain the way main does and checks the exit
// status contract: 2 for a rejected command line (flag parse or
// validation), 1 for a command that runs and fails, 0 for success. Flags
// precede the command word, as in a real invocation (the flag package
// stops parsing at the first positional argument).
func TestCLIValidation(t *testing.T) {
	cases := []struct {
		name   string
		args   []string
		exit   int
		stderr string // substring the diagnostic must contain; "" = any
	}{
		{
			name: "presets succeeds",
			args: []string{"presets"},
			exit: 0,
		},
		{
			name:   "serve without archive",
			args:   []string{"serve"},
			exit:   2,
			stderr: "requires -archive",
		},
		{
			name:   "scrub without archive",
			args:   []string{"scrub"},
			exit:   2,
			stderr: "requires -archive",
		},
		{
			name:   "chunk without input",
			args:   []string{"chunk"},
			exit:   2,
			stderr: "requires -in",
		},
		{
			name:   "bad cache-mb",
			args:   []string{"-cache-mb", "0", "-archive", "x.vacs", "serve"},
			exit:   2,
			stderr: "-cache-mb",
		},
		{
			name:   "stream conflicts with archive command",
			args:   []string{"-stream", "archive"},
			exit:   2,
			stderr: "-stream only applies to the store command",
		},
		{
			name:   "stream conflicts with serve command",
			args:   []string{"-stream", "-archive", "x.vacs", "serve"},
			exit:   2,
			stderr: "-stream only applies to the store command",
		},
		{
			name:   "unparseable fault profile",
			args:   []string{"-fault-profile", "transient=lots", "-archive", "x.vacs", "serve"},
			exit:   2,
			stderr: "-fault-profile",
		},
		{
			name:   "unknown flag",
			args:   []string{"-no-such-flag"},
			exit:   2,
			stderr: "flag provided but not defined",
		},
		{
			name:   "negative workers",
			args:   []string{"-workers", "-1", "presets"},
			exit:   2,
			stderr: "-workers",
		},
		{
			name:   "bad entropy coder",
			args:   []string{"-entropy", "huffman", "presets"},
			exit:   2,
			stderr: "-entropy",
		},
		{
			name:   "entropy contradicts cavlc shorthand",
			args:   []string{"-entropy", "cabac", "-cavlc", "presets"},
			exit:   2,
			stderr: "contradicts",
		},
		{
			name:   "unknown command",
			args:   []string{"frobnicate"},
			exit:   1,
			stderr: "unknown command",
		},
		{
			name:   "serve with missing archive file",
			args:   []string{"-archive", filepath.Join(t.TempDir(), "absent.vacs"), "serve"},
			exit:   1,
			stderr: "no such file",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var stderr bytes.Buffer
			got := cliMain(tc.args, &stderr)
			if got != tc.exit {
				t.Fatalf("cliMain(%q) = %d, want %d (stderr: %s)", tc.args, got, tc.exit, stderr.String())
			}
			if tc.stderr != "" && !strings.Contains(stderr.String(), tc.stderr) {
				t.Fatalf("stderr %q does not contain %q", stderr.String(), tc.stderr)
			}
		})
	}
}

// TestCLIScrubRoundTrip exercises the scrub command end to end: a clean
// archive scrubs healthy (exit 0), a corrupted copy without a mirror exits
// 1, and with a mirror the archive is repaired in place byte-for-byte.
func TestCLIScrubRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a real archive")
	}
	dir := t.TempDir()
	clean := filepath.Join(dir, "clean.vacs")

	var stderr bytes.Buffer
	args := []string{"-preset", "news_like", "-w", "64", "-h", "48", "-frames", "8", "-gop", "4", "-o", clean, "archive"}
	if got := cliMain(args, &stderr); got != 0 {
		t.Fatalf("archive: exit %d (stderr: %s)", got, stderr.String())
	}

	if got := cliMain([]string{"-in", clean, "scrub"}, &stderr); got != 0 {
		t.Fatalf("clean scrub: exit %d (stderr: %s)", got, stderr.String())
	}

	// Corrupt the tail of a copy; the last bytes are stream payload.
	data, err := os.ReadFile(clean)
	if err != nil {
		t.Fatal(err)
	}
	corrupted := append([]byte(nil), data...)
	corrupted[len(corrupted)-1] ^= 0xFF
	damaged := filepath.Join(dir, "damaged.vacs")
	if err := os.WriteFile(damaged, corrupted, 0o644); err != nil {
		t.Fatal(err)
	}

	stderr.Reset()
	if got := cliMain([]string{"-in", damaged, "scrub"}, &stderr); got != 1 {
		t.Fatalf("damaged scrub without mirror: exit %d, want 1 (stderr: %s)", got, stderr.String())
	}
	if !strings.Contains(stderr.String(), "unrepaired") {
		t.Fatalf("stderr %q does not report unrepaired damage", stderr.String())
	}

	stderr.Reset()
	if got := cliMain([]string{"-in", damaged, "-mirror", clean, "scrub"}, &stderr); got != 0 {
		t.Fatalf("scrub with mirror: exit %d (stderr: %s)", got, stderr.String())
	}
	repaired, err := os.ReadFile(damaged)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(repaired, data) {
		t.Fatal("scrub with mirror did not restore the damaged archive byte-for-byte")
	}
}
