// Command vetvideoapp runs the project-specific static-analysis suite
// (internal/analysis) over the module: invariant checkers mined from real
// past incidents — lock-ordering inversions, bare EOF escapes, context
// conventions, observability-name drift, deprecated-name reintroduction.
// `make lint` and CI run it next to staticcheck; it needs nothing beyond
// the go tool and works fully offline.
//
// Usage:
//
//	vetvideoapp [flags] [packages]
//
// Packages default to ./... . Exit status: 0 when clean, 1 when findings
// (or the analysis itself failed), 2 on usage errors.
//
//	-list             print the analyzers and their docs, then exit
//	-enable  a,b      run only the named analyzers
//	-disable a,b      skip the named analyzers
//	-baseline FILE    baseline of grandfathered findings (default lint.baseline)
//	-write-baseline   rewrite the baseline from the current findings
//	-gen-obsnames     regenerate internal/obs/names.go from the obs constants
//	-v                also print per-package progress to stderr
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"videoapp/internal/analysis"
)

func main() {
	os.Exit(cliMain(os.Args[1:], os.Stdout, os.Stderr))
}

func cliMain(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("vetvideoapp", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		list          = fs.Bool("list", false, "print the analyzers and their docs, then exit")
		enable        = fs.String("enable", "", "comma-separated analyzers to run (default: all)")
		disable       = fs.String("disable", "", "comma-separated analyzers to skip")
		baselinePath  = fs.String("baseline", "lint.baseline", "baseline file of grandfathered findings")
		writeBaseline = fs.Bool("write-baseline", false, "rewrite the baseline from the current findings and exit")
		genObsnames   = fs.Bool("gen-obsnames", false, "regenerate internal/obs/names.go from the obs constants and exit")
		verbose       = fs.Bool("v", false, "print per-package progress to stderr")
	)
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: vetvideoapp [flags] [packages]\n\nFlags:\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}

	analyzers, err := analysis.Select(*enable, *disable)
	if err != nil {
		fmt.Fprintf(stderr, "vetvideoapp: %v\n", err)
		return 2
	}
	if *list {
		for _, a := range analyzers {
			doc := a.Doc
			if nl := strings.IndexByte(doc, '\n'); nl >= 0 {
				doc = doc[:nl]
			}
			fmt.Fprintf(stdout, "%-14s %s\n", a.Name, doc)
		}
		return 0
	}

	if *genObsnames {
		return genObsnamesMain(stdout, stderr)
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := analysis.Load(analysis.LoadConfig{}, patterns...)
	if err != nil {
		fmt.Fprintf(stderr, "vetvideoapp: %v\n", err)
		return 1
	}
	if *verbose {
		for _, p := range pkgs {
			fmt.Fprintf(stderr, "vetvideoapp: analyzing %s\n", p.ImportPath)
		}
	}
	diags, err := analysis.Run(pkgs, analyzers)
	if err != nil {
		fmt.Fprintf(stderr, "vetvideoapp: %v\n", err)
		return 1
	}

	cwd, _ := os.Getwd()
	if *writeBaseline {
		body := analysis.WriteBaseline(diags, cwd)
		if err := os.WriteFile(*baselinePath, body, 0o644); err != nil {
			fmt.Fprintf(stderr, "vetvideoapp: writing baseline: %v\n", err)
			return 1
		}
		fmt.Fprintf(stdout, "vetvideoapp: wrote %d grandfathered finding(s) to %s\n", len(diags), *baselinePath)
		return 0
	}

	baseline, err := analysis.ReadBaseline(*baselinePath)
	if err != nil {
		fmt.Fprintf(stderr, "vetvideoapp: %v\n", err)
		return 1
	}
	fresh := 0
	for _, d := range diags {
		if baseline.Match(d, cwd) {
			continue
		}
		fresh++
		pos := d.Pos
		file := pos.Filename
		if cwd != "" {
			if r, err := filepath.Rel(cwd, file); err == nil && !strings.HasPrefix(r, "..") {
				file = r
			}
		}
		fmt.Fprintf(stdout, "%s:%d:%d: %s: %s\n", filepath.ToSlash(file), pos.Line, pos.Column, d.Analyzer, d.Message)
	}
	for _, stale := range baseline.Stale() {
		fmt.Fprintf(stderr, "vetvideoapp: stale baseline entry (finding fixed? delete it): %s\n", stale)
	}
	if fresh > 0 {
		fmt.Fprintf(stderr, "vetvideoapp: %d finding(s)\n", fresh)
		return 1
	}
	return 0
}

// genObsnamesMain regenerates internal/obs/names.go from the obs package's
// Stage*/Ctr*/Gauge* constants.
func genObsnamesMain(stdout, stderr io.Writer) int {
	pkgs, err := analysis.Load(analysis.LoadConfig{}, "./internal/obs")
	if err != nil {
		fmt.Fprintf(stderr, "vetvideoapp: %v\n", err)
		return 1
	}
	if len(pkgs) != 1 {
		fmt.Fprintf(stderr, "vetvideoapp: expected exactly one package for ./internal/obs, got %d\n", len(pkgs))
		return 1
	}
	out := filepath.Join(pkgs[0].Dir, "names.go")
	if err := os.WriteFile(out, analysis.ObsNamesSource(pkgs[0].Types), 0o644); err != nil {
		fmt.Fprintf(stderr, "vetvideoapp: writing %s: %v\n", out, err)
		return 1
	}
	fmt.Fprintf(stdout, "vetvideoapp: wrote %s\n", out)
	return 0
}
