package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// fixture returns the absolute path of an internal/analysis testdata module.
func fixture(t *testing.T, name string) string {
	t.Helper()
	abs, err := filepath.Abs(filepath.Join("..", "..", "internal", "analysis", "testdata", "src", name))
	if err != nil {
		t.Fatal(err)
	}
	return abs
}

// run invokes the CLI in dir and returns (exit code, stdout, stderr).
func run(t *testing.T, dir string, args ...string) (int, string, string) {
	t.Helper()
	t.Chdir(dir)
	var stdout, stderr bytes.Buffer
	code := cliMain(args, &stdout, &stderr)
	return code, stdout.String(), stderr.String()
}

// TestExitCodes pins the documented contract: 0 clean, 1 findings or
// analysis failure, 2 usage errors.
func TestExitCodes(t *testing.T) {
	cases := []struct {
		name     string
		dir      string
		args     []string
		wantCode int
	}{
		{name: "clean fixture", dir: fixture(t, "ctxfirst_ok"), args: []string{"./..."}, wantCode: 0},
		{name: "findings", dir: fixture(t, "ctxfirst_bad"), args: []string{"./..."}, wantCode: 1},
		{name: "lockorder findings", dir: fixture(t, "lockorder_bad"), args: []string{"./..."}, wantCode: 1},
		{name: "unknown flag", dir: fixture(t, "ctxfirst_ok"), args: []string{"-no-such-flag"}, wantCode: 2},
		{name: "unknown analyzer", dir: fixture(t, "ctxfirst_ok"), args: []string{"-enable", "nope", "./..."}, wantCode: 2},
		{name: "unknown analyzer in disable", dir: fixture(t, "ctxfirst_ok"), args: []string{"-disable", "nope", "./..."}, wantCode: 2},
		{name: "disabled analyzer silences findings", dir: fixture(t, "ctxfirst_bad"), args: []string{"-disable", "ctxfirst", "./..."}, wantCode: 0},
		{name: "enable scopes to one analyzer", dir: fixture(t, "ctxfirst_bad"), args: []string{"-enable", "lockorder", "./..."}, wantCode: 0},
		{name: "nonexistent pattern", dir: fixture(t, "ctxfirst_ok"), args: []string{"./no/such/pkg"}, wantCode: 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			code, stdout, stderr := run(t, tc.dir, tc.args...)
			if code != tc.wantCode {
				t.Errorf("exit = %d, want %d\nstdout:\n%s\nstderr:\n%s", code, tc.wantCode, stdout, stderr)
			}
		})
	}
}

func TestListPrintsEveryAnalyzer(t *testing.T) {
	code, stdout, _ := run(t, fixture(t, "ctxfirst_ok"), "-list")
	if code != 0 {
		t.Fatalf("exit = %d, want 0", code)
	}
	for _, name := range []string{"ctxfirst", "lockorder", "nodeprecated", "obsnames", "wrapeof"} {
		if !strings.Contains(stdout, name) {
			t.Errorf("-list output missing analyzer %s:\n%s", name, stdout)
		}
	}
}

func TestListHonorsEnable(t *testing.T) {
	code, stdout, _ := run(t, fixture(t, "ctxfirst_ok"), "-list", "-enable", "wrapeof")
	if code != 0 {
		t.Fatalf("exit = %d, want 0", code)
	}
	if !strings.Contains(stdout, "wrapeof") || strings.Contains(stdout, "lockorder") {
		t.Errorf("-list -enable wrapeof should print only wrapeof:\n%s", stdout)
	}
}

func TestFindingsFormat(t *testing.T) {
	code, stdout, stderr := run(t, fixture(t, "ctxfirst_bad"), "./...")
	if code != 1 {
		t.Fatalf("exit = %d, want 1\nstderr:\n%s", code, stderr)
	}
	if !strings.Contains(stdout, "pipeline.go:9:27: ctxfirst: context.Context is parameter 1") {
		t.Errorf("findings not in file:line:col: analyzer: message form:\n%s", stdout)
	}
	if !strings.Contains(stderr, "finding(s)") {
		t.Errorf("stderr missing findings summary:\n%s", stderr)
	}
}

// TestBaselineWorkflow exercises the adoption path: write a baseline over a
// dirty tree, rerun clean against it, then watch a stale entry get reported
// once the finding disappears.
func TestBaselineWorkflow(t *testing.T) {
	dir := fixture(t, "ctxfirst_bad")
	base := filepath.Join(t.TempDir(), "lint.baseline")

	code, stdout, stderr := run(t, dir, "-baseline", base, "-write-baseline", "./...")
	if code != 0 {
		t.Fatalf("write-baseline exit = %d\nstderr:\n%s", code, stderr)
	}
	if !strings.Contains(stdout, "grandfathered finding(s)") {
		t.Errorf("write-baseline output unexpected:\n%s", stdout)
	}

	code, stdout, stderr = run(t, dir, "-baseline", base, "./...")
	if code != 0 {
		t.Errorf("baselined run exit = %d, want 0\nstdout:\n%s\nstderr:\n%s", code, stdout, stderr)
	}

	// Scope down to an analyzer with no findings in this fixture: every
	// baselined ctxfirst entry is now stale and must be reported on stderr.
	code, _, stderr = run(t, dir, "-baseline", base, "-enable", "lockorder", "./...")
	if code != 0 {
		t.Errorf("scoped run exit = %d, want 0", code)
	}
	if !strings.Contains(stderr, "stale baseline entry") {
		t.Errorf("stale entries not reported:\n%s", stderr)
	}
}

func TestMalformedBaselineFails(t *testing.T) {
	dir := fixture(t, "ctxfirst_ok")
	base := filepath.Join(t.TempDir(), "lint.baseline")
	if err := os.WriteFile(base, []byte("not a valid entry\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	code, _, stderr := run(t, dir, "-baseline", base, "./...")
	if code != 1 {
		t.Errorf("exit = %d, want 1", code)
	}
	if !strings.Contains(stderr, "malformed") {
		t.Errorf("stderr missing malformed-baseline error:\n%s", stderr)
	}
}

// TestGenObsnames regenerates the registry for the obsnames_ok fixture into
// a scratch copy and checks the generated file round-trips.
func TestGenObsnames(t *testing.T) {
	// Copy the fixture so -gen-obsnames never rewrites checked-in testdata.
	src := fixture(t, "obsnames_ok")
	dir := t.TempDir()
	for _, rel := range []string{"go.mod", "obs/obs.go", "app/app.go"} {
		data, err := os.ReadFile(filepath.Join(src, rel))
		if err != nil {
			t.Fatal(err)
		}
		dst := filepath.Join(dir, rel)
		if err := os.MkdirAll(filepath.Dir(dst), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(dst, data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	// The generator targets ./internal/obs; the fixture keeps obs at ./obs,
	// so move it where the generator looks.
	if err := os.MkdirAll(filepath.Join(dir, "internal"), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.Rename(filepath.Join(dir, "obs"), filepath.Join(dir, "internal", "obs")); err != nil {
		t.Fatal(err)
	}
	if err := os.RemoveAll(filepath.Join(dir, "app")); err != nil {
		t.Fatal(err)
	}

	code, stdout, stderr := run(t, dir, "-gen-obsnames")
	if code != 0 {
		t.Fatalf("gen-obsnames exit = %d\nstderr:\n%s", code, stderr)
	}
	if !strings.Contains(stdout, "names.go") {
		t.Errorf("gen-obsnames output unexpected:\n%s", stdout)
	}
	data, err := os.ReadFile(filepath.Join(dir, "internal", "obs", "names.go"))
	if err != nil {
		t.Fatal(err)
	}
	gen := string(data)
	if !strings.HasPrefix(gen, "// Code generated by vetvideoapp -gen-obsnames; DO NOT EDIT.") {
		t.Errorf("generated file missing header:\n%s", gen)
	}
	for _, ident := range []string{"CtrFrames", "GaugeOpen", "StageDecode"} {
		if !strings.Contains(gen, ident) {
			t.Errorf("generated registry missing %s:\n%s", ident, gen)
		}
	}
}
