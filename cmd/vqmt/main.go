// Command vqmt measures objective video quality between a reference and a
// distorted .y4m file — a stand-in for the VQMT tool the paper uses (§6.1).
// It reports PSNR, SSIM, MS-SSIM and VIF, averaged across frames per the
// established practice, with optional per-frame series.
//
// Usage:
//
//	vqmt [-frames] reference.y4m distorted.y4m
package main

import (
	"flag"
	"fmt"
	"os"

	"videoapp/internal/frame"
	"videoapp/internal/quality"
	"videoapp/internal/y4m"
)

func main() {
	perFrame := flag.Bool("frames", false, "print per-frame PSNR/SSIM series")
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: vqmt [-frames] reference.y4m distorted.y4m")
		os.Exit(2)
	}
	if err := run(flag.Arg(0), flag.Arg(1), *perFrame); err != nil {
		fmt.Fprintf(os.Stderr, "vqmt: %v\n", err)
		os.Exit(1)
	}
}

func run(refPath, distPath string, perFrame bool) error {
	ref, err := load(refPath)
	if err != nil {
		return err
	}
	dist, err := load(distPath)
	if err != nil {
		return err
	}
	if perFrame {
		fmt.Println("frame  PSNR(dB)  SSIM")
		for i := range ref.Frames {
			if i >= len(dist.Frames) {
				break
			}
			p, err := quality.PSNRFrame(ref.Frames[i], dist.Frames[i])
			if err != nil {
				return err
			}
			s, err := quality.SSIMFrame(ref.Frames[i], dist.Frames[i])
			if err != nil {
				return err
			}
			fmt.Printf("%5d  %8.3f  %.5f\n", i, p, s)
		}
	}
	rep, err := quality.Measure(ref, dist)
	if err != nil {
		return err
	}
	fmt.Printf("PSNR:    %8.3f dB\n", rep.PSNR)
	fmt.Printf("SSIM:    %8.5f\n", rep.SSIM)
	fmt.Printf("MS-SSIM: %8.5f\n", rep.MSSSIM)
	fmt.Printf("VIF:     %8.5f\n", rep.VIF)
	return nil
}

func load(path string) (*frame.Sequence, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return y4m.ReadAll(f, path)
}
