package videoapp

// Serial-vs-parallel benchmarks for every concurrent pipeline stage. Each
// stage is a pair of sub-benchmarks named workers=1 and workers=N (N =
// GOMAXPROCS), so benchstat can diff the two directly:
//
//	go test -run=^$ -bench=BenchmarkParallel -count=10 . > par.txt
//	benchstat -col "/workers" par.txt
//
// The inputs use short GOPs (many independent spans) so the fan-out has
// work to distribute; speedups scale with core count and saturate near the
// span count. On a single-core runner the two columns are expected to tie.

import (
	"context"
	"fmt"
	"runtime"
	"testing"

	"videoapp/internal/core"
	"videoapp/internal/mlc"
	"videoapp/internal/quality"
	"videoapp/internal/store"
)

// benchWorkerCounts returns the benchstat comparison axis: serial and fully
// parallel.
func benchWorkerCounts() []int {
	n := runtime.GOMAXPROCS(0)
	if n <= 1 {
		return []int{1}
	}
	return []int{1, n}
}

func benchSequence(b *testing.B, frames int) *Sequence {
	b.Helper()
	seq, err := GenerateTestVideo("crew_like", 176, 144, frames)
	if err != nil {
		b.Fatal(err)
	}
	return seq
}

func benchParams() Params {
	p := DefaultParams()
	p.GOPSize = 6 // short closed GOPs -> many independent spans
	p.SearchRange = 8
	return p
}

func BenchmarkParallelEncode(b *testing.B) {
	seq := benchSequence(b, 24)
	p := benchParams()
	for _, w := range benchWorkerCounts() {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := EncodeContext(context.Background(), seq, p, w); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkParallelDecode(b *testing.B) {
	seq := benchSequence(b, 24)
	v, err := encodeSerial(seq, benchParams())
	if err != nil {
		b.Fatal(err)
	}
	for _, w := range benchWorkerCounts() {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := DecodeContext(context.Background(), v, w); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkParallelAnalyze(b *testing.B) {
	seq := benchSequence(b, 24)
	v, err := encodeSerial(seq, benchParams())
	if err != nil {
		b.Fatal(err)
	}
	for _, w := range benchWorkerCounts() {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := core.AnalyzeContext(context.Background(), v, core.DefaultOptions(), w); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkParallelStore(b *testing.B) {
	seq := benchSequence(b, 24)
	v, err := encodeSerial(seq, benchParams())
	if err != nil {
		b.Fatal(err)
	}
	an := analyzeSerial(b, v)
	parts := an.Partition(PaperAssignment())
	sys, err := store.New(store.Config{Substrate: mlc.Default(), Assignment: PaperAssignment()})
	if err != nil {
		b.Fatal(err)
	}
	for _, w := range benchWorkerCounts() {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				out, _, err := sys.StoreContext(context.Background(), v, parts, store.StoreOpts{Seed: int64(i), Workers: w})
				if err != nil {
					b.Fatal(err)
				}
				out.Release()
			}
		})
	}
}

func BenchmarkParallelMeasure(b *testing.B) {
	seq := benchSequence(b, 24)
	v, err := encodeSerial(seq, benchParams())
	if err != nil {
		b.Fatal(err)
	}
	dec, err := decodeSerial(v)
	if err != nil {
		b.Fatal(err)
	}
	for _, w := range benchWorkerCounts() {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := quality.MeasureContext(context.Background(), seq, dec, w); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkParallelPipeline is the end-to-end options-API path: process plus
// one seeded storage round trip, the workload the tentpole targets.
func BenchmarkParallelPipeline(b *testing.B) {
	seq := benchSequence(b, 24)
	for _, w := range benchWorkerCounts() {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			b.ReportAllocs()
			p := NewPipeline(WithParams(benchParams()), WithWorkers(w))
			for i := 0; i < b.N; i++ {
				res, err := p.Process(seq)
				if err != nil {
					b.Fatal(err)
				}
				if _, _, err := res.StoreRoundTrip(int64(i)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
