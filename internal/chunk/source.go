package chunk

import (
	"io"

	"videoapp/internal/frame"
	"videoapp/internal/y4m"
)

// Source yields raw frames incrementally. The streaming pipeline pulls one
// chunk's worth of frames at a time, so a Source backed by a file or a
// network stream keeps peak memory bounded by the chunk size rather than
// the video length.
type Source interface {
	// Next returns the next frame, or io.EOF at the end of the stream.
	Next() (*frame.Frame, error)
	// FPS returns the stream's frame rate (0 when unknown).
	FPS() int
	// Name identifies the stream for diagnostics ("" when unknown).
	Name() string
}

// seqSource replays an in-memory sequence.
type seqSource struct {
	seq *frame.Sequence
	pos int
}

// FromSequence adapts an in-memory sequence to a Source. It does not reduce
// memory (the sequence is already materialized) but lets the same chunked
// pipeline run over both in-memory and streamed inputs.
func FromSequence(seq *frame.Sequence) Source { return &seqSource{seq: seq} }

func (s *seqSource) Next() (*frame.Frame, error) {
	if s.pos >= len(s.seq.Frames) {
		return nil, io.EOF
	}
	f := s.seq.Frames[s.pos]
	s.pos++
	return f, nil
}

func (s *seqSource) FPS() int     { return s.seq.FPS }
func (s *seqSource) Name() string { return s.seq.Name }

// y4mSource decodes frames from a YUV4MPEG2 stream one at a time.
type y4mSource struct {
	r    *y4m.Reader
	name string
}

// FromY4M wraps a Y4M stream as a Source: frames are decoded on demand, so
// only the chunks currently in flight are resident.
func FromY4M(r io.Reader, name string) (Source, error) {
	yr, err := y4m.NewReader(r)
	if err != nil {
		return nil, err
	}
	return &y4mSource{r: yr, name: name}, nil
}

func (s *y4mSource) Next() (*frame.Frame, error) { return s.r.Next() }
func (s *y4mSource) FPS() int                    { return s.r.FPS() }
func (s *y4mSource) Name() string                { return s.name }
