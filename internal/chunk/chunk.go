// Package chunk is the streaming, bounded-memory form of the pipeline: it
// segments an incrementally fed frame source into closed-GOP chunks and
// runs encode → analyze → partition → store per chunk as a staged,
// channel-connected dataflow with backpressure.
//
// Because every chunk boundary is a closed-GOP boundary (a multiple of the
// encoder's I-frame interval), chunks are fully independent coding units:
// no prediction, dependency edge or entropy context crosses a boundary.
// Encoding a chunk on its own therefore produces exactly the bits the batch
// encoder produces for those frames, the per-chunk dependency analysis
// equals the batch analysis restricted to the chunk (the analysis DAG
// factors at the same boundaries, see core's depSpans), and per-frame
// footprint costs accumulate across chunks to the batch totals. That is the
// invariant the public ProcessStream API pins with bit-identity tests.
//
// Memory stays bounded by the chunk size, not the video length: each stage
// holds at most one chunk, the connecting channels hold one more each, and
// raw frames are dropped as soon as the encode stage has consumed them. A
// server ingesting an hour of video peaks at a few chunks of frames plus
// the (much smaller) encoded outputs.
package chunk

import (
	"context"
	"fmt"
	"io"
	"sync"

	"videoapp/internal/codec"
	"videoapp/internal/core"
	"videoapp/internal/frame"
	"videoapp/internal/obs"
	"videoapp/internal/store"
)

// Config parameterizes one streaming run.
type Config struct {
	// Params configures the encoder. BFrames must be 0: streaming requires
	// closed GOPs, which is also what makes chunked output bit-identical
	// to batch output.
	Params codec.Params
	// Assignment maps importance classes to ECC schemes for partitioning.
	Assignment core.ClassAssignment
	// System, when non-nil, computes per-frame footprint costs for every
	// chunk (Processed.Costs).
	System *store.System
	// GOPsPerChunk sets the chunk granularity in GOPs; <= 0 selects 1.
	// Larger chunks amortize stage hand-off at the cost of higher peak
	// memory and coarser random-access units.
	GOPsPerChunk int
	// Workers bounds the fan-out inside each stage (GOP-parallel encode,
	// span-parallel analysis, frame-parallel costs); <= 0 selects
	// GOMAXPROCS. Results are identical at every worker count.
	Workers int
}

// gopsPerChunk normalizes the chunk granularity.
func (c Config) gopsPerChunk() int {
	if c.GOPsPerChunk <= 0 {
		return 1
	}
	return c.GOPsPerChunk
}

// Processed is one fully processed chunk, handed to the sink in chunk
// order. The video and partitions are chunk-local (frame indices start at
// 0), making each chunk a self-contained unit: it decodes on its own and
// appends directly to a chunked archive. FirstFrame positions it in the
// whole video for callers that stitch a batch-equivalent Result.
type Processed struct {
	// Index is the chunk's position in stream order.
	Index int
	// FirstFrame is the display/coded index of the chunk's first frame in
	// the whole video.
	FirstFrame int
	// Pixels is the chunk's raw luma pixel count.
	Pixels int64
	// Video is the chunk's encoded form with chunk-local frame indices.
	Video *codec.Video
	// Importance and CompImportance are the per-MB analysis rows
	// (chunk-local frame indexing), equal to the batch analysis restricted
	// to the chunk.
	Importance, CompImportance [][]float64
	// Parts is the chunk-local §4.4 partition layout.
	Parts []core.FramePartition
	// Costs holds per-frame footprint costs when Config.System is set.
	Costs []store.FrameCost
	// HeaderBits is the chunk's precise region size as a standalone unit:
	// chunk-local frame headers plus pivot tables. Frame indices are
	// exp-Golomb coded, so stitched (globally indexed) headers can be a
	// few bits larger; callers reconstructing batch-identical totals must
	// recompute header bits on the stitched video.
	HeaderBits int64
}

// rawChunk is a chunk of raw frames between the reader and encode stages.
type rawChunk struct {
	index      int
	firstFrame int
	frames     []*frame.Frame
}

// encChunk carries the encoded chunk between encode and analyze; the raw
// frames are gone by this point.
type encChunk struct {
	index      int
	firstFrame int
	pixels     int64
	video      *codec.Video
}

// Run drives the staged dataflow: frames are pulled from src, grouped into
// closed-GOP chunks, and flow encoder → analyzer → storer over channels of
// capacity one, so a slow downstream stage exerts backpressure all the way
// back to the source. sink receives every Processed chunk in order on the
// final stage's goroutine; a sink error cancels the run.
//
// Cancellation is cooperative at frame boundaries within stages and at
// chunk boundaries between them. An observer attached to ctx (obs.With)
// receives each stage's spans and per-frame progress exactly as in the
// batch path, plus one stream_chunks count per completed chunk.
func Run(ctx context.Context, cfg Config, src Source, sink func(*Processed) error) error {
	if err := cfg.Params.Validate(); err != nil {
		return err
	}
	if cfg.Params.BFrames != 0 {
		return fmt.Errorf("chunk: streaming requires closed GOPs (BFrames == 0)")
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	o := obs.From(ctx)

	var (
		once     sync.Once
		firstErr error
	)
	fail := func(err error) {
		once.Do(func() {
			firstErr = err
			cancel()
		})
	}

	rawc := make(chan rawChunk, 1)
	encc := make(chan encChunk, 1)
	anc := make(chan *Processed, 1)

	var wg sync.WaitGroup
	stage := func(fn func() error) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := fn(); err != nil {
				fail(err)
			}
		}()
	}

	// Stage 1: chunker. Pull frames until EOF, emit GOP-aligned chunks.
	stage(func() error {
		defer close(rawc)
		chunkFrames := cfg.gopsPerChunk() * cfg.Params.GOPSize
		var cur []*frame.Frame
		var w, h int
		index, first := 0, 0
		emit := func() error {
			rc := rawChunk{index: index, firstFrame: first, frames: cur}
			select {
			case rawc <- rc:
			case <-ctx.Done():
				return ctx.Err()
			}
			index++
			first += len(cur)
			cur = nil
			return nil
		}
		for {
			if err := ctx.Err(); err != nil {
				return err
			}
			f, err := src.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				return fmt.Errorf("chunk: source: %w", err)
			}
			if len(cur) == 0 && index == 0 && w == 0 {
				w, h = f.W, f.H
			}
			if f.W != w || f.H != h {
				return fmt.Errorf("chunk: frame %d geometry %dx%d differs from stream %dx%d", first+len(cur), f.W, f.H, w, h)
			}
			cur = append(cur, f)
			if len(cur) == chunkFrames {
				if err := emit(); err != nil {
					return err
				}
			}
		}
		if len(cur) > 0 {
			if err := emit(); err != nil {
				return err
			}
		}
		if index == 0 && len(cur) == 0 {
			return fmt.Errorf("chunk: source has no frames")
		}
		return nil
	})

	// Stage 2: encoder. Closed-GOP chunks encode independently; the raw
	// frames are released as soon as the encode returns.
	stage(func() error {
		defer close(encc)
		for rc := range rawc {
			sub := &frame.Sequence{Name: src.Name(), FPS: src.FPS(), Frames: rc.frames}
			v, err := codec.EncodeParallelContext(ctx, sub, cfg.Params, cfg.Workers)
			if err != nil {
				return err
			}
			ec := encChunk{index: rc.index, firstFrame: rc.firstFrame, pixels: sub.PixelCount(), video: v}
			select {
			case encc <- ec:
			case <-ctx.Done():
				return ctx.Err()
			}
		}
		return nil
	})

	// Stage 3: analyzer + partitioner. The chunk is a closed dependency
	// span, so the chunk-local analysis equals the batch analysis rows.
	stage(func() error {
		defer close(anc)
		for ec := range encc {
			an, err := core.AnalyzeContext(ctx, ec.video, core.DefaultOptions(), cfg.Workers)
			if err != nil {
				return err
			}
			if err := an.CheckMonotone(); err != nil {
				return err
			}
			sp := obs.StartSpan(o, obs.StagePartition)
			parts := an.Partition(cfg.Assignment)
			sp.End()
			p := &Processed{
				Index: ec.index, FirstFrame: ec.firstFrame, Pixels: ec.pixels,
				Video: ec.video, Importance: an.Importance, CompImportance: an.CompImportance,
				Parts:      parts,
				HeaderBits: ec.video.HeaderBits() + core.PivotOverheadBits(parts),
			}
			select {
			case anc <- p:
			case <-ctx.Done():
				return ctx.Err()
			}
		}
		return nil
	})

	// Stage 4: storer. Footprint costs per chunk, then the caller's sink —
	// single goroutine, so chunks arrive in order.
	stage(func() error {
		for p := range anc {
			if cfg.System != nil {
				costs, err := cfg.System.FrameCosts(ctx, p.Video, p.Parts, cfg.Workers)
				if err != nil {
					return err
				}
				p.Costs = costs
			}
			if err := sink(p); err != nil {
				return err
			}
			o.Counter(obs.CtrChunks, "", 1)
		}
		return nil
	})

	wg.Wait()
	if firstErr != nil {
		return firstErr
	}
	return ctx.Err()
}
