package chunk

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"reflect"
	"testing"

	"videoapp/internal/codec"
	"videoapp/internal/core"
	"videoapp/internal/frame"
	"videoapp/internal/mlc"
	"videoapp/internal/store"
	"videoapp/internal/synth"
	"videoapp/internal/y4m"
)

const gopSize = 4

// testSeq generates a deterministic multi-GOP sequence; frames need not be
// a multiple of the GOP size (ragged tails must stream correctly).
func testSeq(t testing.TB, frames int) *frame.Sequence {
	t.Helper()
	cfg, ok := synth.PresetByName("crew_like")
	if !ok {
		t.Fatal("crew_like preset missing")
	}
	return synth.Generate(cfg.ScaleTo(96, 64, frames))
}

func testParams() codec.Params {
	p := codec.DefaultParams()
	p.GOPSize = gopSize
	p.SearchRange = 8
	return p
}

func testConfig(t testing.TB, gopsPerChunk, workers int) Config {
	t.Helper()
	sys, err := store.New(store.Config{Substrate: mlc.Default(), Assignment: core.PaperAssignment()})
	if err != nil {
		t.Fatal(err)
	}
	return Config{
		Params:       testParams(),
		Assignment:   core.PaperAssignment(),
		System:       sys,
		GOPsPerChunk: gopsPerChunk,
		Workers:      workers,
	}
}

// collect runs the pipeline and gathers every chunk in sink order.
func collect(t testing.TB, cfg Config, src Source) []*Processed {
	t.Helper()
	var out []*Processed
	err := Run(context.Background(), cfg, src, func(p *Processed) error {
		out = append(out, p)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// TestRunMatchesBatch pins the streaming pipeline's core invariant: chunked
// processing of a closed-GOP stream reproduces the batch pipeline bit for
// bit — encoded payloads, analysis rows, partitions and footprint costs —
// at several chunk sizes and worker counts, including a ragged tail.
func TestRunMatchesBatch(t *testing.T) {
	const frames = 3*gopSize + 2 // ragged final GOP
	seq := testSeq(t, frames)

	// Batch reference.
	p := testParams()
	v, err := codec.Encode(seq, p)
	if err != nil {
		t.Fatal(err)
	}
	an := core.Analyze(v, core.DefaultOptions())
	parts := an.Partition(core.PaperAssignment())
	sys, err := store.New(store.Config{Substrate: mlc.Default(), Assignment: core.PaperAssignment()})
	if err != nil {
		t.Fatal(err)
	}
	refCosts, err := sys.FrameCosts(context.Background(), v, parts, 4)
	if err != nil {
		t.Fatal(err)
	}

	for _, gpc := range []int{1, 2, 4} {
		for _, workers := range []int{1, 8} {
			t.Run(fmt.Sprintf("gops=%d/workers=%d", gpc, workers), func(t *testing.T) {
				cfg := testConfig(t, gpc, workers)
				chunks := collect(t, cfg, FromSequence(seq))

				next := 0
				for i, c := range chunks {
					if c.Index != i || c.FirstFrame != next {
						t.Fatalf("chunk %d: index %d first %d, want %d %d", i, c.Index, c.FirstFrame, i, next)
					}
					for f, cf := range c.Video.Frames {
						g := c.FirstFrame + f
						if !bytes.Equal(cf.Payload, v.Frames[g].Payload) {
							t.Fatalf("chunk %d frame %d: payload differs from batch frame %d", i, f, g)
						}
						if !reflect.DeepEqual(c.Importance[f], an.Importance[g]) {
							t.Fatalf("chunk %d frame %d: importance differs from batch", i, f)
						}
						if !reflect.DeepEqual(c.CompImportance[f], an.CompImportance[g]) {
							t.Fatalf("chunk %d frame %d: comp importance differs from batch", i, f)
						}
						if c.Parts[f].Frame != f {
							t.Fatalf("chunk %d frame %d: partition frame %d not chunk-local", i, f, c.Parts[f].Frame)
						}
						if !reflect.DeepEqual(c.Parts[f].Pivots, parts[g].Pivots) {
							t.Fatalf("chunk %d frame %d: pivots differ from batch", i, f)
						}
						if !reflect.DeepEqual(c.Costs[f], refCosts[g]) {
							t.Fatalf("chunk %d frame %d: costs differ from batch", i, f)
						}
					}
					next += len(c.Video.Frames)
				}
				if next != frames {
					t.Fatalf("streamed %d frames, want %d", next, frames)
				}
			})
		}
	}
}

// TestRunChunkShapes checks the chunker's frame grouping, including the
// ragged tail chunk.
func TestRunChunkShapes(t *testing.T) {
	const frames = 2*gopSize + 3
	cfg := testConfig(t, 1, 2)
	chunks := collect(t, cfg, FromSequence(testSeq(t, frames)))
	var sizes []int
	for _, c := range chunks {
		sizes = append(sizes, len(c.Video.Frames))
	}
	want := []int{gopSize, gopSize, 3}
	if !reflect.DeepEqual(sizes, want) {
		t.Fatalf("chunk sizes %v, want %v", sizes, want)
	}
}

func TestRunY4MSourceMatchesSequence(t *testing.T) {
	seq := testSeq(t, 2*gopSize)
	var buf bytes.Buffer
	if err := y4m.Write(&buf, seq); err != nil {
		t.Fatal(err)
	}
	src, err := FromY4M(&buf, seq.Name)
	if err != nil {
		t.Fatal(err)
	}
	cfg := testConfig(t, 1, 2)
	fromY4M := collect(t, cfg, src)
	fromSeq := collect(t, cfg, FromSequence(seq))
	if len(fromY4M) != len(fromSeq) {
		t.Fatalf("%d chunks from y4m, %d from sequence", len(fromY4M), len(fromSeq))
	}
	for i := range fromSeq {
		for f := range fromSeq[i].Video.Frames {
			if !bytes.Equal(fromY4M[i].Video.Frames[f].Payload, fromSeq[i].Video.Frames[f].Payload) {
				t.Fatalf("chunk %d frame %d: y4m source payload differs", i, f)
			}
		}
	}
}

func TestRunEmptySource(t *testing.T) {
	cfg := testConfig(t, 1, 1)
	err := Run(context.Background(), cfg, FromSequence(&frame.Sequence{FPS: 30}), func(*Processed) error { return nil })
	if err == nil {
		t.Fatal("empty source must fail")
	}
}

func TestRunRejectsBFrames(t *testing.T) {
	cfg := testConfig(t, 1, 1)
	cfg.Params.BFrames = 2
	cfg.Params.GOPSize = 6
	err := Run(context.Background(), cfg, FromSequence(testSeq(t, 6)), func(*Processed) error { return nil })
	if err == nil {
		t.Fatal("BFrames > 0 must be rejected")
	}
}

// errSource fails after yielding n frames.
type errSource struct {
	src  Source
	n    int
	fail error
}

func (e *errSource) Next() (*frame.Frame, error) {
	if e.n <= 0 {
		return nil, e.fail
	}
	e.n--
	return e.src.Next()
}

func (e *errSource) FPS() int     { return e.src.FPS() }
func (e *errSource) Name() string { return e.src.Name() }

func TestRunSourceErrorPropagates(t *testing.T) {
	cfg := testConfig(t, 1, 2)
	boom := errors.New("disk on fire")
	src := &errSource{src: FromSequence(testSeq(t, 3*gopSize)), n: gopSize + 1, fail: boom}
	err := Run(context.Background(), cfg, src, func(*Processed) error { return nil })
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrapped %v", err, boom)
	}
}

func TestRunSinkErrorPropagates(t *testing.T) {
	cfg := testConfig(t, 1, 2)
	boom := errors.New("archive full")
	err := Run(context.Background(), cfg, FromSequence(testSeq(t, 3*gopSize)), func(p *Processed) error {
		if p.Index == 1 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want %v", err, boom)
	}
}

func TestRunCancel(t *testing.T) {
	cfg := testConfig(t, 1, 2)
	ctx, cancel := context.WithCancel(context.Background())
	err := Run(ctx, cfg, FromSequence(testSeq(t, 3*gopSize)), func(p *Processed) error {
		cancel()
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// mixedSource yields frames of inconsistent geometry.
type mixedSource struct{ n int }

func (m *mixedSource) Next() (*frame.Frame, error) {
	m.n++
	switch m.n {
	case 1:
		return frame.MustNew(96, 64), nil
	case 2:
		return frame.MustNew(64, 64), nil
	}
	return nil, io.EOF
}

func (m *mixedSource) FPS() int     { return 30 }
func (m *mixedSource) Name() string { return "mixed" }

func TestRunRejectsGeometryChange(t *testing.T) {
	cfg := testConfig(t, 1, 1)
	err := Run(context.Background(), cfg, &mixedSource{}, func(*Processed) error { return nil })
	if err == nil {
		t.Fatal("geometry change mid-stream must be rejected")
	}
}
