package transform

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func randResidual(rng *rand.Rand, amp int32) Block {
	var b Block
	for i := range b {
		b[i] = rng.Int31n(2*amp+1) - amp
	}
	return b
}

func TestForwardInverseLosslessAtQP0IsClose(t *testing.T) {
	// At QP 0 the round trip is nearly lossless for moderate residuals.
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 100; trial++ {
		x := randResidual(rng, 100)
		got := RoundTrip(&x, 0, false)
		for i := range x {
			if d := got[i] - x[i]; d < -2 || d > 2 {
				t.Fatalf("trial %d coeff %d: %d vs %d", trial, i, got[i], x[i])
			}
		}
	}
}

func TestErrorGrowsWithQP(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	errAt := func(qp int) float64 {
		var sum float64
		for trial := 0; trial < 50; trial++ {
			x := randResidual(rng, 80)
			got := RoundTrip(&x, qp, false)
			for i := range x {
				d := float64(got[i] - x[i])
				sum += d * d
			}
		}
		return sum
	}
	e0, e24, e40 := errAt(0), errAt(24), errAt(40)
	if !(e0 < e24 && e24 < e40) {
		t.Fatalf("quantization error must grow with QP: %g %g %g", e0, e24, e40)
	}
}

func TestZeroBlockStaysZero(t *testing.T) {
	var x Block
	for _, qp := range []int{0, 24, 51} {
		if QuantizeOnly(&x, qp, true) != (Block{}) {
			t.Fatalf("zero residual must quantize to zero at QP %d", qp)
		}
		z := Block{}
		if Reconstruct(&z, qp) != (Block{}) {
			t.Fatalf("zero levels must reconstruct to zero at QP %d", qp)
		}
	}
}

func TestDCOnlyBlock(t *testing.T) {
	// A flat residual has all its energy in the DC coefficient.
	var x Block
	for i := range x {
		x[i] = 64
	}
	y := Forward(&x)
	if y[0] != 64*16 {
		t.Fatalf("DC = %d, want %d", y[0], 64*16)
	}
	for i := 1; i < 16; i++ {
		if y[i] != 0 {
			t.Fatalf("AC coeff %d = %d, want 0", i, y[i])
		}
	}
}

func TestLinearity(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := randResidual(rng, 50)
		b := randResidual(rng, 50)
		var sum Block
		for i := range sum {
			sum[i] = a[i] + b[i]
		}
		fa, fb, fs := Forward(&a), Forward(&b), Forward(&sum)
		for i := range fs {
			if fs[i] != fa[i]+fb[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestHighQPZeroesSmallResiduals(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	x := randResidual(rng, 3)
	z := QuantizeOnly(&x, 51, false)
	for i, v := range z {
		if v != 0 {
			t.Fatalf("QP 51 must kill tiny residuals; coeff %d = %d", i, v)
		}
	}
}

func TestQuantizeSignSymmetry(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	x := randResidual(rng, 200)
	var neg Block
	for i := range x {
		neg[i] = -x[i]
	}
	zp := QuantizeOnly(&x, 20, true)
	zn := QuantizeOnly(&neg, 20, true)
	for i := range zp {
		if zp[i] != -zn[i] {
			t.Fatalf("coeff %d: %d vs %d", i, zp[i], zn[i])
		}
	}
}

func TestRoundTripPSNRReasonable(t *testing.T) {
	// At a mid QP, the reconstruction error on realistic residuals should be
	// bounded (the dead zone removes small coefficients only).
	rng := rand.New(rand.NewSource(5))
	var mse float64
	n := 0
	for trial := 0; trial < 50; trial++ {
		x := randResidual(rng, 60)
		got := RoundTrip(&x, 24, false)
		for i := range x {
			d := float64(got[i] - x[i])
			mse += d * d
			n++
		}
	}
	mse /= float64(n)
	psnr := 10 * math.Log10(255*255/mse)
	if psnr < 25 {
		t.Fatalf("QP24 round-trip PSNR %.1f dB is implausibly low", psnr)
	}
}

func TestClampQP(t *testing.T) {
	if ClampQP(-3) != 0 || ClampQP(99) != MaxQP || ClampQP(30) != 30 {
		t.Fatal("clamping")
	}
	// Extreme QPs must not panic anywhere in the path.
	var x Block
	x[0] = 1000
	RoundTrip(&x, -10, true)
	RoundTrip(&x, 1000, true)
}

func BenchmarkRoundTrip(b *testing.B) {
	b.ReportAllocs()
	rng := rand.New(rand.NewSource(6))
	x := randResidual(rng, 80)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		RoundTrip(&x, 24, false)
	}
}
