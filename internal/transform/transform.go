// Package transform implements the H.264 4×4 integer approximation of the
// DCT and its quantization, using the standard multiplication-factor (MF)
// and rescale (V) tables. The transform is bit-exact integer arithmetic,
// so encoder and decoder reconstructions match exactly — a requirement for
// tracking bit-flip damage without drift from floating-point noise.
package transform

// Block is a 4×4 coefficient or residual block in row-major order.
type Block [16]int32

// Quantization tables from the H.264 standard, indexed by QP%6 and by
// coefficient position class: class 0 for (even row, even col), class 1 for
// (odd, odd), class 2 otherwise.
var (
	mfTable = [6][3]int32{
		{13107, 5243, 8066},
		{11916, 4660, 7490},
		{10082, 4194, 6554},
		{9362, 3647, 5825},
		{8192, 3355, 5243},
		{7282, 2893, 4559},
	}
	vTable = [6][3]int32{
		{10, 16, 13},
		{11, 18, 14},
		{13, 20, 16},
		{14, 23, 18},
		{16, 25, 20},
		{18, 29, 23},
	}
)

func posClass(i int) int {
	r, c := i/4, i%4
	switch {
	case r%2 == 0 && c%2 == 0:
		return 0
	case r%2 == 1 && c%2 == 1:
		return 1
	default:
		return 2
	}
}

// Forward applies the 4×4 forward core transform Y = Cf·X·Cfᵀ.
func Forward(x *Block) Block {
	var tmp, y Block
	// Rows: tmp = Cf · X (apply to each column of X... operate row-wise).
	for i := 0; i < 4; i++ {
		a, b, c, d := x[i*4], x[i*4+1], x[i*4+2], x[i*4+3]
		s0, s3 := a+d, a-d
		s1, s2 := b+c, b-c
		tmp[i*4] = s0 + s1
		tmp[i*4+1] = 2*s3 + s2
		tmp[i*4+2] = s0 - s1
		tmp[i*4+3] = s3 - 2*s2
	}
	// Columns.
	for j := 0; j < 4; j++ {
		a, b, c, d := tmp[j], tmp[4+j], tmp[8+j], tmp[12+j]
		s0, s3 := a+d, a-d
		s1, s2 := b+c, b-c
		y[j] = s0 + s1
		y[4+j] = 2*s3 + s2
		y[8+j] = s0 - s1
		y[12+j] = s3 - 2*s2
	}
	return y
}

// Quantize maps transform coefficients to quantized levels at the given QP
// (0..51). intra selects the larger dead-zone rounding offset.
func Quantize(y *Block, qp int, intra bool) Block {
	qp = clampQP(qp)
	mf := mfTable[qp%6]
	qbits := uint(15 + qp/6)
	f := int64(1) << qbits / 6
	if intra {
		f = int64(1) << qbits / 3
	}
	var z Block
	for i := range y {
		m := int64(mf[posClass(i)])
		v := int64(y[i])
		neg := v < 0
		if neg {
			v = -v
		}
		q := (v*m + f) >> qbits
		if neg {
			q = -q
		}
		z[i] = int32(q)
	}
	return z
}

// Dequantize rescales quantized levels back to transform-domain values.
func Dequantize(z *Block, qp int) Block {
	qp = clampQP(qp)
	v := vTable[qp%6]
	shift := uint(qp / 6)
	var w Block
	for i := range z {
		w[i] = z[i] * v[posClass(i)] << shift
	}
	return w
}

// Inverse applies the 4×4 inverse core transform with the final >>6
// rounding, returning the reconstructed residual.
func Inverse(w *Block) Block {
	var tmp, x Block
	for i := 0; i < 4; i++ {
		a, b, c, d := w[i*4], w[i*4+1], w[i*4+2], w[i*4+3]
		e0 := a + c
		e1 := a - c
		e2 := b>>1 - d
		e3 := b + d>>1
		tmp[i*4] = e0 + e3
		tmp[i*4+1] = e1 + e2
		tmp[i*4+2] = e1 - e2
		tmp[i*4+3] = e0 - e3
	}
	for j := 0; j < 4; j++ {
		a, b, c, d := tmp[j], tmp[4+j], tmp[8+j], tmp[12+j]
		e0 := a + c
		e1 := a - c
		e2 := b>>1 - d
		e3 := b + d>>1
		x[j] = (e0 + e3 + 32) >> 6
		x[4+j] = (e1 + e2 + 32) >> 6
		x[8+j] = (e1 - e2 + 32) >> 6
		x[12+j] = (e0 - e3 + 32) >> 6
	}
	return x
}

// RoundTrip performs forward transform, quantization, dequantization and
// inverse transform — the complete lossy path a residual block undergoes.
func RoundTrip(x *Block, qp int, intra bool) Block {
	y := Forward(x)
	z := Quantize(&y, qp, intra)
	w := Dequantize(&z, qp)
	return Inverse(&w)
}

// QuantizeOnly runs forward transform and quantization, returning the levels
// the entropy coder will encode.
func QuantizeOnly(x *Block, qp int, intra bool) Block {
	y := Forward(x)
	return Quantize(&y, qp, intra)
}

// Reconstruct dequantizes levels and applies the inverse transform.
func Reconstruct(z *Block, qp int) Block {
	w := Dequantize(z, qp)
	return Inverse(&w)
}

// MaxQP is the largest legal quantization parameter.
const MaxQP = 51

func clampQP(qp int) int {
	if qp < 0 {
		return 0
	}
	if qp > MaxQP {
		return MaxQP
	}
	return qp
}

// ClampQP exposes QP clamping to the encoder and decoder so that corrupt
// delta-QP values decode to a legal quantizer instead of panicking.
func ClampQP(qp int) int { return clampQP(qp) }
