// Package obs is the zero-dependency observability layer of the pipeline:
// an Observer interface that every stage reports to, a no-op default that
// costs nothing on the hot path, a thread-safe aggregating Metrics
// implementation, and a streaming JSON-lines trace sink.
//
// Observers are passive: stages publish events (stage spans, per-frame
// progress, named counters and gauges) and never read anything back, so an
// attached observer can not perturb results — parallel stages stay
// bit-identical to serial with any observer at any worker count. Counter
// and gauge values are accumulated per (name, label) with order-independent
// reductions, so aggregated metrics are also identical at every worker
// count; only wall-clock figures vary between runs.
//
// The no-op path is allocation-free: stage names and labels are existing
// strings (package constants, scheme names, frame-type names), all other
// arguments are scalars, and Noop is a zero-size type, so calls through the
// interface never escape anything to the heap. This is guarded by
// BenchmarkNoopFramePath and TestNoopPathDoesNotAllocate.
//
// Observers reach the internal packages through the context: the pipeline
// attaches its observer with With, and every *Context stage entry point
// recovers it with From (returning Noop when none is attached). This keeps
// the stage signatures stable while still letting direct users of the
// subsystem APIs opt in.
package obs

import (
	"context"
	"time"
)

// Stage names published by the pipeline. Every stage span, FrameDone event
// and stage-scoped counter uses one of these.
const (
	StageEncode    = "encode"
	StageAnalyze   = "analyze"
	StagePartition = "partition"
	StageFootprint = "footprint"
	StageInject    = "inject"
	StageDecode    = "decode"
	StageMeasure   = "measure"
	// StageServeChunk spans one cold chunk materialization in the serve
	// layer: archive read, decode, and y4m rendering. Cache hits publish no
	// span, so the stage's wall time is pure decode-path latency.
	StageServeChunk = "serve_chunk"
	// StageScrub spans one Archive.Scrub pass: every record read,
	// verified, and (when a mirror is configured) repaired.
	StageScrub = "scrub"
)

// Counter and gauge names published by the instrumented stages. Labels are
// given per name.
const (
	// CtrEncodeFrames counts encoded frames, labelled by frame type (I/P/B).
	CtrEncodeFrames = "encode_frames"
	// CtrDecodeFrames counts decoded frames, labelled by frame type.
	CtrDecodeFrames = "decode_frames"
	// CtrResync counts entropy-stream desync events — slices whose CABAC or
	// CAVLC reader lost sync and rode garbage until the next resync point —
	// labelled by the entropy coder name.
	CtrResync = "codec_resync"
	// CtrRawFlips counts injected substrate bit errors before correction,
	// labelled by ECC scheme. On the nominal error model raw errors equal
	// residual errors; the block-accurate model also counts corrected ones.
	CtrRawFlips = "store_raw_flips"
	// CtrResidualFlips counts post-correction bit errors that survive to
	// the reader, labelled by ECC scheme.
	CtrResidualFlips = "store_residual_flips"
	// CtrChunks counts closed-GOP chunks completed by the streaming
	// pipeline.
	CtrChunks = "stream_chunks"
	// CtrPayloadBits counts stored payload bits, labelled by ECC scheme.
	CtrPayloadBits = "footprint_payload_bits"
	// CtrHeaderBits counts precisely-stored header and pivot-table bits.
	CtrHeaderBits = "footprint_header_bits"
	// GaugeCells is the substrate cell count of the last footprint.
	GaugeCells = "footprint_cells"
	// GaugeCellsPerPixel is the paper's density metric (Figure 11 x-axis).
	GaugeCellsPerPixel = "footprint_cells_per_pixel"
	// CtrServeRequests counts HTTP requests accepted by the chunk server,
	// labelled by route name (archive, chunk, chunk_meta, metrics, healthz).
	CtrServeRequests = "serve_requests"
	// CtrServeErrors counts requests that finished with a non-2xx status,
	// labelled by route name.
	CtrServeErrors = "serve_errors"
	// CtrServeCacheHits counts chunk requests answered from the decoded
	// cache.
	CtrServeCacheHits = "serve_cache_hits"
	// CtrServeCacheMisses counts chunk requests that had to wait on a
	// decode (coalesced waiters included).
	CtrServeCacheMisses = "serve_cache_misses"
	// CtrServeDecodes counts actual chunk decode executions; under request
	// coalescing this stays at one per cold chunk however many clients
	// stampede it.
	CtrServeDecodes = "serve_chunk_decodes"
	// CtrServeDegraded counts chunk responses served in degraded form —
	// one or more approximate streams failed verification after retries
	// and were replaced by zeroes, so the client got the precise-class
	// reconstruction instead of a 500. Every such response also carries
	// the X-Videoapp-Degraded header.
	CtrServeDegraded = "serve_chunk_degraded"
	// CtrServePrefetchIssued counts readahead loads the prefetcher
	// actually started (scheduled, found absent, and issued a decode),
	// labeled by archive.
	CtrServePrefetchIssued = "serve_prefetch_issued"
	// CtrServePrefetchUseful counts prefetched chunks later served to a
	// client from the cache — readahead that hid a decode.
	CtrServePrefetchUseful = "serve_prefetch_useful"
	// CtrServePrefetchWasted counts prefetched chunks that never reached a
	// client: the load failed, or the entry was evicted or purged before
	// any request touched it.
	CtrServePrefetchWasted = "serve_prefetch_wasted"
	// CtrServeShed counts chunk requests rejected by the open circuit
	// breaker with 503 + Retry-After.
	CtrServeShed = "serve_breaker_shed"
	// CtrReadRetries counts archive read attempts retried after a
	// transient failure or checksum mismatch.
	CtrReadRetries = "store_read_retries"
	// CtrCRCFailures counts archive region reads whose CRC did not match
	// the record header, labelled by region ("precise", "pivots", or the
	// stream's scheme name).
	CtrCRCFailures = "store_crc_failures"
	// CtrDegradedStreams counts approximate streams zero-filled after
	// exhausting retries (and the mirror, when configured), labelled by
	// scheme name.
	CtrDegradedStreams = "store_degraded_streams"
	// CtrMirrorReads counts archive regions recovered from the mirror
	// reader after the primary failed.
	CtrMirrorReads = "store_mirror_reads"
	// CtrScrubRepairs counts archive regions rewritten in place by Scrub
	// from a verified mirror copy.
	CtrScrubRepairs = "store_scrub_repairs"
	// GaugeServeInFlight is the number of requests currently being served.
	GaugeServeInFlight = "serve_in_flight"
	// GaugeServeBreakerOpen is 1 while the chunk server's circuit breaker
	// is open (shedding load) and 0 while it is closed.
	GaugeServeBreakerOpen = "serve_breaker_open"
	// GaugeServeCacheHitRate is the decoded-chunk cache hit rate in [0,1].
	GaugeServeCacheHitRate = "serve_cache_hit_rate"
	// GaugeServeCacheBytes is the resident cost of the decoded-chunk cache.
	GaugeServeCacheBytes = "serve_cache_bytes"
	// GaugeServePrefetchInFlight is the number of readahead loads the
	// prefetcher is executing right now.
	GaugeServePrefetchInFlight = "serve_prefetch_in_flight"
	// GaugeCatalogOpenArchives is the number of archives a serving catalog
	// currently holds open (lazily-opened tenants that have not been
	// idle-closed, plus any statically attached archive).
	GaugeCatalogOpenArchives = "serve_catalog_open_archives"
)

// Observer receives pipeline instrumentation events. Implementations must
// be safe for concurrent use: parallel stages publish FrameDone and Counter
// events from multiple worker goroutines.
type Observer interface {
	// StageStart marks the beginning of a pipeline stage.
	StageStart(stage string)
	// StageEnd marks the end of a pipeline stage with its wall time.
	StageEnd(stage string, wall time.Duration)
	// FrameDone reports that frames units of per-frame work finished in a
	// stage. Parallel stages call it out of frame order.
	FrameDone(stage string, frames int)
	// Counter adds delta to the counter identified by (name, label); label
	// is "" for unlabelled counters.
	Counter(name, label string, delta int64)
	// Gauge sets the gauge identified by (name, label) to v.
	Gauge(name, label string, v float64)
}

// Noop is the default observer: every method is an empty, allocation-free
// no-op. The zero value is ready to use and requires no synchronization.
type Noop struct{}

// StageStart implements Observer.
func (Noop) StageStart(string) {}

// StageEnd implements Observer.
func (Noop) StageEnd(string, time.Duration) {}

// FrameDone implements Observer.
func (Noop) FrameDone(string, int) {}

// Counter implements Observer.
func (Noop) Counter(string, string, int64) {}

// Gauge implements Observer.
func (Noop) Gauge(string, string, float64) {}

// multi fans every event out to several observers in order.
type multi []Observer

func (m multi) StageStart(stage string) {
	for _, o := range m {
		o.StageStart(stage)
	}
}

func (m multi) StageEnd(stage string, wall time.Duration) {
	for _, o := range m {
		o.StageEnd(stage, wall)
	}
}

func (m multi) FrameDone(stage string, frames int) {
	for _, o := range m {
		o.FrameDone(stage, frames)
	}
}

func (m multi) Counter(name, label string, delta int64) {
	for _, o := range m {
		o.Counter(name, label, delta)
	}
}

func (m multi) Gauge(name, label string, v float64) {
	for _, o := range m {
		o.Gauge(name, label, v)
	}
}

// Multi combines observers into one that fans every event out in argument
// order. Nil and Noop entries are dropped; with no live entries Multi
// returns Noop, and a single live entry is returned unwrapped.
func Multi(obs ...Observer) Observer {
	live := make(multi, 0, len(obs))
	for _, o := range obs {
		if o == nil {
			continue
		}
		if _, isNoop := o.(Noop); isNoop {
			continue
		}
		live = append(live, o)
	}
	switch len(live) {
	case 0:
		return Noop{}
	case 1:
		return live[0]
	}
	return live
}

// SpanTimer is an in-flight stage span started by StartSpan. It is a plain
// value, so starting and ending a span never allocates.
type SpanTimer struct {
	o     Observer
	stage string
	t0    time.Time
}

// StartSpan publishes StageStart and returns a timer whose End publishes
// StageEnd with the elapsed wall time; typically `defer StartSpan(o,
// stage).End()` around a stage body.
func StartSpan(o Observer, stage string) SpanTimer {
	o.StageStart(stage)
	return SpanTimer{o: o, stage: stage, t0: time.Now()}
}

// End publishes the span's StageEnd event.
func (s SpanTimer) End() { s.o.StageEnd(s.stage, time.Since(s.t0)) }

// ctxKey keys the observer attached to a context.
type ctxKey struct{}

// With returns a context carrying o; every *Context stage entry point
// reports to it. Attaching nil or Noop returns ctx unchanged.
func With(ctx context.Context, o Observer) context.Context {
	if o == nil {
		return ctx
	}
	if _, isNoop := o.(Noop); isNoop {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, o)
}

// From returns the observer attached to ctx, or Noop when none is. The
// lookup and the Noop fallback are allocation-free.
func From(ctx context.Context) Observer {
	if o, ok := ctx.Value(ctxKey{}).(Observer); ok {
		return o
	}
	return Noop{}
}
