package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"time"
)

// Metrics is a thread-safe aggregating Observer: stage spans accumulate
// into per-stage wall time and call counts, FrameDone events into per-stage
// frame totals, and Counter/Gauge events into (name, label) cells. All
// reductions are commutative, so for a deterministic pipeline the
// aggregated counters are identical at every worker count; only wall-clock
// figures vary between runs.
//
// A Metrics may be read concurrently with the pipeline: Snapshot takes a
// consistent copy under the same lock the writers use.
type Metrics struct {
	mu       sync.Mutex
	stages   map[string]*stageAgg
	counters map[metricKey]int64
	gauges   map[metricKey]float64
}

type stageAgg struct {
	started int64
	calls   int64
	frames  int64
	wall    time.Duration
}

type metricKey struct{ name, label string }

// NewMetrics returns an empty metrics aggregator.
func NewMetrics() *Metrics {
	return &Metrics{
		stages:   map[string]*stageAgg{},
		counters: map[metricKey]int64{},
		gauges:   map[metricKey]float64{},
	}
}

func (m *Metrics) stage(name string) *stageAgg {
	sa := m.stages[name]
	if sa == nil {
		sa = &stageAgg{}
		m.stages[name] = sa
	}
	return sa
}

// StageStart implements Observer.
func (m *Metrics) StageStart(stage string) {
	m.mu.Lock()
	m.stage(stage).started++
	m.mu.Unlock()
}

// StageEnd implements Observer.
func (m *Metrics) StageEnd(stage string, wall time.Duration) {
	m.mu.Lock()
	sa := m.stage(stage)
	sa.calls++
	sa.wall += wall
	m.mu.Unlock()
}

// FrameDone implements Observer.
func (m *Metrics) FrameDone(stage string, frames int) {
	m.mu.Lock()
	m.stage(stage).frames += int64(frames)
	m.mu.Unlock()
}

// Counter implements Observer.
func (m *Metrics) Counter(name, label string, delta int64) {
	m.mu.Lock()
	m.counters[metricKey{name, label}] += delta
	m.mu.Unlock()
}

// Gauge implements Observer.
func (m *Metrics) Gauge(name, label string, v float64) {
	m.mu.Lock()
	m.gauges[metricKey{name, label}] = v
	m.mu.Unlock()
}

// Reset clears every aggregate.
func (m *Metrics) Reset() {
	m.mu.Lock()
	m.stages = map[string]*stageAgg{}
	m.counters = map[metricKey]int64{}
	m.gauges = map[metricKey]float64{}
	m.mu.Unlock()
}

// StageStat is one stage's aggregate in a Snapshot.
type StageStat struct {
	// Stage is the stage name (see the Stage* constants).
	Stage string `json:"stage"`
	// Calls counts completed StageStart/StageEnd spans.
	Calls int64 `json:"calls"`
	// Frames is the number of per-frame work units the stage finished.
	Frames int64 `json:"frames,omitempty"`
	// Wall is the total wall time across calls.
	Wall time.Duration `json:"wall_ns"`
	// FramesPerSec is Frames divided by Wall (0 when either is 0).
	FramesPerSec float64 `json:"frames_per_sec,omitempty"`
}

// CounterStat is one counter cell in a Snapshot.
type CounterStat struct {
	Name  string `json:"name"`
	Label string `json:"label,omitempty"`
	Value int64  `json:"value"`
}

// GaugeStat is one gauge cell in a Snapshot.
type GaugeStat struct {
	Name  string  `json:"name"`
	Label string  `json:"label,omitempty"`
	Value float64 `json:"value"`
}

// Snapshot is a consistent point-in-time copy of a Metrics, with every
// section sorted by name (then label) so its rendering is deterministic.
type Snapshot struct {
	Stages   []StageStat   `json:"stages,omitempty"`
	Counters []CounterStat `json:"counters,omitempty"`
	Gauges   []GaugeStat   `json:"gauges,omitempty"`
}

// Snapshot returns a consistent copy of the current aggregates.
func (m *Metrics) Snapshot() Snapshot {
	m.mu.Lock()
	defer m.mu.Unlock()
	var s Snapshot
	for name, sa := range m.stages {
		st := StageStat{Stage: name, Calls: sa.calls, Frames: sa.frames, Wall: sa.wall}
		if sa.wall > 0 && sa.frames > 0 {
			st.FramesPerSec = float64(sa.frames) / sa.wall.Seconds()
		}
		s.Stages = append(s.Stages, st)
	}
	for k, v := range m.counters {
		s.Counters = append(s.Counters, CounterStat{Name: k.name, Label: k.label, Value: v})
	}
	for k, v := range m.gauges {
		s.Gauges = append(s.Gauges, GaugeStat{Name: k.name, Label: k.label, Value: v})
	}
	sort.Slice(s.Stages, func(i, j int) bool { return s.Stages[i].Stage < s.Stages[j].Stage })
	sort.Slice(s.Counters, func(i, j int) bool {
		a, b := s.Counters[i], s.Counters[j]
		if a.Name != b.Name {
			return a.Name < b.Name
		}
		return a.Label < b.Label
	})
	sort.Slice(s.Gauges, func(i, j int) bool {
		a, b := s.Gauges[i], s.Gauges[j]
		if a.Name != b.Name {
			return a.Name < b.Name
		}
		return a.Label < b.Label
	})
	return s
}

// Counter returns the value of the counter cell (name, label), 0 if absent.
func (s Snapshot) Counter(name, label string) int64 {
	for _, c := range s.Counters {
		if c.Name == name && c.Label == label {
			return c.Value
		}
	}
	return 0
}

// CounterTotal sums every label of a counter name.
func (s Snapshot) CounterTotal(name string) int64 {
	var total int64
	for _, c := range s.Counters {
		if c.Name == name {
			total += c.Value
		}
	}
	return total
}

// Gauge returns the value of the gauge cell (name, label), 0 if absent.
func (s Snapshot) Gauge(name, label string) float64 {
	for _, g := range s.Gauges {
		if g.Name == name && g.Label == label {
			return g.Value
		}
	}
	return 0
}

// WriteText renders the snapshot as a human-readable report.
func (s Snapshot) WriteText(w io.Writer) error {
	var b strings.Builder
	if len(s.Stages) > 0 {
		fmt.Fprintf(&b, "stage        calls     frames       wall    frames/s\n")
		for _, st := range s.Stages {
			fmt.Fprintf(&b, "%-12s %5d %10d %10s %11.1f\n",
				st.Stage, st.Calls, st.Frames, st.Wall.Round(time.Microsecond), st.FramesPerSec)
		}
	}
	for _, c := range s.Counters {
		fmt.Fprintf(&b, "counter %-28s %-8s %12d\n", c.Name, c.Label, c.Value)
	}
	for _, g := range s.Gauges {
		fmt.Fprintf(&b, "gauge   %-28s %-8s %12.4f\n", g.Name, g.Label, g.Value)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// JSON renders the snapshot as a single JSON object.
func (s Snapshot) JSON() ([]byte, error) { return json.Marshal(s) }
