package obs

import (
	"context"
	"testing"
)

// BenchmarkNoopFramePath measures the per-frame cost of instrumentation
// with no observer attached — the default for every pipeline run. The
// acceptance bar is zero allocations per operation (ReportAllocs).
func BenchmarkNoopFramePath(b *testing.B) {
	ctx := context.Background()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		o := From(ctx)
		o.FrameDone(StageDecode, 1)
		o.Counter(CtrResidualFlips, "BCH-6", 2)
	}
}

// BenchmarkMetricsFramePath is the same pattern against a live Metrics
// aggregator, the cost an instrumented run pays per frame event.
func BenchmarkMetricsFramePath(b *testing.B) {
	m := NewMetrics()
	ctx := With(context.Background(), m)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		o := From(ctx)
		o.FrameDone(StageDecode, 1)
		o.Counter(CtrResidualFlips, "BCH-6", 2)
	}
}
