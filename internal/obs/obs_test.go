package obs

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestFromDefaultsToNoop(t *testing.T) {
	o := From(context.Background())
	if _, ok := o.(Noop); !ok {
		t.Fatalf("bare context must yield Noop, got %T", o)
	}
}

func TestWithRoundTrips(t *testing.T) {
	m := NewMetrics()
	ctx := With(context.Background(), m)
	if From(ctx) != Observer(m) {
		t.Fatal("With/From must round-trip the observer")
	}
}

func TestWithNilAndNoopAreFree(t *testing.T) {
	ctx := context.Background()
	if With(ctx, nil) != ctx {
		t.Fatal("With(nil) must return ctx unchanged")
	}
	if With(ctx, Noop{}) != ctx {
		t.Fatal("With(Noop) must return ctx unchanged")
	}
}

func TestMultiCollapses(t *testing.T) {
	if _, ok := Multi().(Noop); !ok {
		t.Fatal("empty Multi must be Noop")
	}
	if _, ok := Multi(nil, Noop{}).(Noop); !ok {
		t.Fatal("Multi of nil and Noop must be Noop")
	}
	m := NewMetrics()
	if Multi(nil, m) != Observer(m) {
		t.Fatal("single live observer must be returned unwrapped")
	}
	m2 := NewMetrics()
	combined := Multi(m, m2)
	combined.Counter("c", "", 2)
	if m.Snapshot().Counter("c", "") != 2 || m2.Snapshot().Counter("c", "") != 2 {
		t.Fatal("Multi must fan counters out to every member")
	}
}

func TestMetricsAggregation(t *testing.T) {
	m := NewMetrics()
	m.StageStart(StageEncode)
	m.StageEnd(StageEncode, 2*time.Second)
	m.FrameDone(StageEncode, 30)
	m.FrameDone(StageEncode, 30)
	m.Counter("flips", "BCH-6", 5)
	m.Counter("flips", "BCH-6", 7)
	m.Counter("flips", "None", 1)
	m.Gauge("density", "", 1.5)
	m.Gauge("density", "", 2.5) // gauges keep the last value

	s := m.Snapshot()
	if len(s.Stages) != 1 || s.Stages[0].Stage != StageEncode {
		t.Fatalf("stages: %+v", s.Stages)
	}
	st := s.Stages[0]
	if st.Calls != 1 || st.Frames != 60 || st.Wall != 2*time.Second {
		t.Fatalf("stage agg: %+v", st)
	}
	if st.FramesPerSec != 30 {
		t.Fatalf("frames/s: %v", st.FramesPerSec)
	}
	if got := s.Counter("flips", "BCH-6"); got != 12 {
		t.Fatalf("BCH-6 flips: %d", got)
	}
	if got := s.CounterTotal("flips"); got != 13 {
		t.Fatalf("flips total: %d", got)
	}
	if got := s.Gauge("density", ""); got != 2.5 {
		t.Fatalf("gauge: %v", got)
	}
	// Counters are sorted by (name, label) for deterministic rendering.
	if s.Counters[0].Label != "BCH-6" || s.Counters[1].Label != "None" {
		t.Fatalf("counter order: %+v", s.Counters)
	}

	m.Reset()
	if got := m.Snapshot(); len(got.Stages)+len(got.Counters)+len(got.Gauges) != 0 {
		t.Fatalf("reset left data: %+v", got)
	}
}

func TestMetricsConcurrentReaders(t *testing.T) {
	m := NewMetrics()
	var wg sync.WaitGroup
	stopped := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stopped:
				return
			default:
				_ = m.Snapshot()
			}
		}
	}()
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				m.Counter("c", "", 1)
				m.FrameDone(StageDecode, 1)
			}
		}(w)
	}
	time.Sleep(10 * time.Millisecond)
	close(stopped)
	wg.Wait()
	if got := m.Snapshot().Counter("c", ""); got != 4000 {
		t.Fatalf("lost updates: %d", got)
	}
}

func TestSnapshotText(t *testing.T) {
	m := NewMetrics()
	m.StageEnd(StageDecode, time.Millisecond)
	m.FrameDone(StageDecode, 10)
	m.Counter(CtrResidualFlips, "None", 3)
	var b strings.Builder
	if err := m.Snapshot().WriteText(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"decode", CtrResidualFlips, "None"} {
		if !strings.Contains(out, want) {
			t.Fatalf("text report missing %q:\n%s", want, out)
		}
	}
}

func TestTraceEmitsJSONLines(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTrace(&buf)
	tr.StageStart(StageInject)
	tr.FrameDone(StageInject, 1)
	tr.Counter(CtrResidualFlips, "BCH-6", 4)
	tr.Gauge(GaugeCellsPerPixel, "", 1.25)
	tr.StageEnd(StageInject, 3*time.Millisecond)
	if err := tr.Err(); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(&buf)
	var events []string
	for sc.Scan() {
		var ev map[string]any
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad JSON line %q: %v", sc.Text(), err)
		}
		events = append(events, ev["ev"].(string))
	}
	want := []string{"stage_start", "frame", "counter", "gauge", "stage_end"}
	if len(events) != len(want) {
		t.Fatalf("got %d events, want %d", len(events), len(want))
	}
	for i := range want {
		if events[i] != want[i] {
			t.Fatalf("event %d = %q, want %q", i, events[i], want[i])
		}
	}
}

type failWriter struct{}

func (failWriter) Write([]byte) (int, error) { return 0, errFail }

var errFail = &writeError{}

type writeError struct{}

func (*writeError) Error() string { return "sink failed" }

func TestTraceLatchesFirstError(t *testing.T) {
	tr := NewTrace(failWriter{})
	tr.StageStart(StageEncode)
	if tr.Err() == nil {
		t.Fatal("write error must latch")
	}
	// Subsequent events are dropped, not retried.
	tr.StageEnd(StageEncode, time.Second)
	if tr.Err() == nil {
		t.Fatal("error must persist")
	}
}

// TestNoopPathDoesNotAllocate is the acceptance guard for the hot path: the
// per-frame publication pattern used inside the worker loops (context
// lookup, FrameDone, Counter with existing strings, span bracketing) must
// not allocate with the no-op observer.
func TestNoopPathDoesNotAllocate(t *testing.T) {
	ctx := context.Background()
	scheme := "BCH-6"
	allocs := testing.AllocsPerRun(1000, func() {
		o := From(ctx)
		sp := StartSpan(o, StageInject)
		o.FrameDone(StageInject, 1)
		o.Counter(CtrResidualFlips, scheme, 3)
		o.Gauge(GaugeCellsPerPixel, "", 1.5)
		sp.End()
	})
	if allocs != 0 {
		t.Fatalf("no-op observer path allocates %.1f times per frame", allocs)
	}
}
