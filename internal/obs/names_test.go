package obs

import (
	"go/ast"
	"go/constant"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"strings"
	"testing"
)

// registryConstants parses every non-test, non-generated source file of this
// package and collects the values of its exported Stage*/Ctr*/Gauge* string
// constants — the set the generated Names registry must mirror exactly.
func registryConstants(t *testing.T) map[string]bool {
	t.Helper()
	entries, err := os.ReadDir(".")
	if err != nil {
		t.Fatal(err)
	}
	fset := token.NewFileSet()
	var files []*ast.File
	for _, e := range entries {
		name := e.Name()
		if !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") || name == "names.go" {
			continue
		}
		f, err := parser.ParseFile(fset, name, nil, parser.SkipObjectResolution)
		if err != nil {
			t.Fatalf("parsing %s: %v", name, err)
		}
		files = append(files, f)
	}
	// Type-check with a nil importer: the constant declarations this test
	// cares about are untyped strings, and any import-induced errors are
	// ignored via the error handler.
	conf := types.Config{Error: func(error) {}, Importer: nil}
	info := &types.Info{Defs: map[*ast.Ident]types.Object{}}
	conf.Check("obs", fset, files, info)
	reg := map[string]bool{}
	for _, obj := range info.Defs {
		c, ok := obj.(*types.Const)
		if !ok || !c.Exported() || c.Val().Kind() != constant.String {
			continue
		}
		name := c.Name()
		if strings.HasPrefix(name, "Stage") || strings.HasPrefix(name, "Ctr") || strings.HasPrefix(name, "Gauge") {
			reg[constant.StringVal(c.Val())] = true
		}
	}
	return reg
}

// TestNamesRegistryInSync pins names.go to the constant set: adding a
// Stage*/Ctr*/Gauge* constant without re-running `vetvideoapp -gen-obsnames`
// fails here (and in `make lint`).
func TestNamesRegistryInSync(t *testing.T) {
	want := registryConstants(t)
	if len(want) == 0 {
		t.Fatal("found no registry constants; parser misconfigured?")
	}
	got := map[string]bool{}
	for _, n := range Names {
		if got[n] {
			t.Errorf("Names lists %q twice", n)
		}
		got[n] = true
	}
	for n := range want {
		if !got[n] {
			t.Errorf("registry constant %q missing from Names; run `vetvideoapp -gen-obsnames`", n)
		}
	}
	for n := range got {
		if !want[n] {
			t.Errorf("Names entry %q matches no registry constant; run `vetvideoapp -gen-obsnames`", n)
		}
	}
}

func TestKnownName(t *testing.T) {
	if !KnownName(StageDecode) {
		t.Errorf("KnownName(%q) = false, want true", StageDecode)
	}
	if !KnownName(CtrServeRequests) {
		t.Errorf("KnownName(%q) = false, want true", CtrServeRequests)
	}
	if KnownName("no_such_metric") {
		t.Error(`KnownName("no_such_metric") = true, want false`)
	}
	if KnownName("") {
		t.Error(`KnownName("") = true, want false`)
	}
}

// TestNamesSorted keeps the generated file deterministic: entries are
// ordered by constant name, so regeneration is diff-stable.
func TestNamesSorted(t *testing.T) {
	// The generator sorts by constant identifier, not value; re-derive the
	// identifier order from the source to check it.
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "names.go", nil, parser.SkipObjectResolution)
	if err != nil {
		t.Fatal(err)
	}
	var idents []string
	ast.Inspect(f, func(n ast.Node) bool {
		vs, ok := n.(*ast.ValueSpec)
		if !ok || len(vs.Names) != 1 || vs.Names[0].Name != "Names" {
			return true
		}
		lit, ok := vs.Values[0].(*ast.CompositeLit)
		if !ok {
			return true
		}
		for _, elt := range lit.Elts {
			if id, ok := elt.(*ast.Ident); ok {
				idents = append(idents, id.Name)
			}
		}
		return false
	})
	if len(idents) == 0 {
		t.Fatal("no Names entries parsed from names.go")
	}
	for i := 1; i < len(idents); i++ {
		if idents[i-1] >= idents[i] {
			t.Errorf("Names not sorted: %q before %q", idents[i-1], idents[i])
		}
	}
}
