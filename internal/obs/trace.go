package obs

import (
	"encoding/json"
	"io"
	"sync"
	"time"
)

// Trace is a streaming JSON-lines Observer: every event is written to the
// underlying writer as one JSON object per line, timestamped in
// microseconds since the trace was created. The writer is serialized with a
// mutex, so a Trace is safe to attach to parallel stages; events from
// concurrent workers interleave in arrival order.
//
// The first write error is latched and returned by Err; subsequent events
// are dropped so a broken sink cannot stall the pipeline.
type Trace struct {
	mu    sync.Mutex
	w     io.Writer
	start time.Time
	err   error
}

// NewTrace returns a trace sink writing JSON lines to w.
func NewTrace(w io.Writer) *Trace {
	return &Trace{w: w, start: time.Now()}
}

// traceEvent is one JSON line.
type traceEvent struct {
	// TimeUS is microseconds since the trace was created.
	TimeUS int64  `json:"t_us"`
	Event  string `json:"ev"`
	Stage  string `json:"stage,omitempty"`
	Name   string `json:"name,omitempty"`
	Label  string `json:"label,omitempty"`
	// WallUS is the span wall time in microseconds (stage_end only).
	WallUS int64 `json:"wall_us,omitempty"`
	// Frames is the unit count of a frame event.
	Frames int `json:"frames,omitempty"`
	// Delta is a counter increment, Value a gauge level.
	Delta int64   `json:"delta,omitempty"`
	Value float64 `json:"value,omitempty"`
}

func (t *Trace) emit(ev traceEvent) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.err != nil {
		return
	}
	ev.TimeUS = time.Since(t.start).Microseconds()
	line, err := json.Marshal(ev)
	if err != nil {
		t.err = err
		return
	}
	line = append(line, '\n')
	if _, err := t.w.Write(line); err != nil {
		t.err = err
	}
}

// Err returns the first write or encoding error, if any.
func (t *Trace) Err() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.err
}

// StageStart implements Observer.
func (t *Trace) StageStart(stage string) {
	t.emit(traceEvent{Event: "stage_start", Stage: stage})
}

// StageEnd implements Observer.
func (t *Trace) StageEnd(stage string, wall time.Duration) {
	t.emit(traceEvent{Event: "stage_end", Stage: stage, WallUS: wall.Microseconds()})
}

// FrameDone implements Observer.
func (t *Trace) FrameDone(stage string, frames int) {
	t.emit(traceEvent{Event: "frame", Stage: stage, Frames: frames})
}

// Counter implements Observer.
func (t *Trace) Counter(name, label string, delta int64) {
	t.emit(traceEvent{Event: "counter", Name: name, Label: label, Delta: delta})
}

// Gauge implements Observer.
func (t *Trace) Gauge(name, label string, v float64) {
	t.emit(traceEvent{Event: "gauge", Name: name, Label: label, Value: v})
}
