package experiments

import (
	"fmt"
	"math/rand"

	"videoapp/internal/bitio"
	"videoapp/internal/codec"
	"videoapp/internal/quality"
)

// Fig3Result is Figure 3: frame PSNR after a single bit flip as a function
// of the affected macroblock's position within the frame. The origin is the
// frame's top-left corner; damage decreases (PSNR increases) toward the
// bottom-right because coding errors only propagate forward in scan order.
type Fig3Result struct {
	MBCols, MBRows int
	// PSNR[y][x] is the mean frame PSNR (vs the clean decode) after one bit
	// flip in the macroblock at position (x, y), averaged over sampled
	// frames and videos.
	PSNR [][]float64
	// Samples counts flips measured per position.
	Samples int
}

// Figure3 reproduces the single-flip position sweep. Flips are injected into
// P frames and the damaged frame is decoded against clean references,
// excluding compensation effects exactly as the paper does (§3.1).
func Figure3(cfg Config) (*Fig3Result, error) {
	suite, err := EncodeSuite(cfg)
	if err != nil {
		return nil, err
	}
	if len(suite) == 0 {
		return nil, fmt.Errorf("experiments: empty suite")
	}
	mbCols := suite[0].Video.MBCols()
	mbRows := suite[0].Video.MBRows()
	sum := make([][]float64, mbRows)
	count := make([][]int, mbRows)
	for y := range sum {
		sum[y] = make([]float64, mbCols)
		count[y] = make([]int, mbCols)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	for _, ev := range suite {
		// Sample a few P frames spread across the video.
		var pFrames []int
		for i, f := range ev.Video.Frames {
			if f.Type == codec.FrameP {
				pFrames = append(pFrames, i)
			}
		}
		if len(pFrames) == 0 {
			continue
		}
		samplesPerVideo := cfg.Runs
		if samplesPerVideo < 1 {
			samplesPerVideo = 1
		}
		for s := 0; s < samplesPerVideo; s++ {
			fi := pFrames[rng.Intn(len(pFrames))]
			ef := ev.Video.Frames[fi]
			for my := 0; my < mbRows; my++ {
				for mx := 0; mx < mbCols; mx++ {
					mb := ef.MBs[my*mbCols+mx]
					if mb.BitLen < 2 {
						continue
					}
					c := ev.Video.ClonePooled()
					pos := mb.BitStart + rng.Int63n(mb.BitLen)
					bitio.FlipBit(c.Frames[fi].Payload, pos)
					// Decode only the damaged frame against clean refs:
					// isolates coding errors from compensation errors.
					dec := codec.DecodeSingle(c, fi, ev.CleanRecs)
					c.Release()
					p, err := quality.PSNRFrame(ev.CleanRecs[fi], dec)
					if err != nil {
						return nil, err
					}
					sum[my][mx] += p
					count[my][mx]++
				}
			}
		}
	}
	res := &Fig3Result{MBCols: mbCols, MBRows: mbRows, PSNR: make([][]float64, mbRows)}
	for y := 0; y < mbRows; y++ {
		res.PSNR[y] = make([]float64, mbCols)
		for x := 0; x < mbCols; x++ {
			if count[y][x] > 0 {
				res.PSNR[y][x] = sum[y][x] / float64(count[y][x])
				res.Samples += count[y][x]
			} else {
				res.PSNR[y][x] = quality.MaxPSNR
			}
		}
	}
	return res, nil
}

// Corners summarizes the figure's headline contrast: mean PSNR in the
// top-left vs bottom-right quadrant.
func (r *Fig3Result) Corners() (topLeft, bottomRight float64) {
	var tl, br float64
	var ntl, nbr int
	for y := 0; y < r.MBRows; y++ {
		for x := 0; x < r.MBCols; x++ {
			if y < r.MBRows/2 && x < r.MBCols/2 {
				tl += r.PSNR[y][x]
				ntl++
			}
			if y >= r.MBRows/2 && x >= r.MBCols/2 {
				br += r.PSNR[y][x]
				nbr++
			}
		}
	}
	if ntl > 0 {
		topLeft = tl / float64(ntl)
	}
	if nbr > 0 {
		bottomRight = br / float64(nbr)
	}
	return
}

// String renders the PSNR surface as a table, mirroring Figure 3.
func (r *Fig3Result) String() string {
	header := []string{"MB y\\x"}
	for x := 0; x < r.MBCols; x++ {
		header = append(header, fmt.Sprintf("%d", x))
	}
	var rows [][]string
	for y := 0; y < r.MBRows; y++ {
		row := []string{fmt.Sprintf("%d", y)}
		for x := 0; x < r.MBCols; x++ {
			row = append(row, fmt.Sprintf("%.1f", r.PSNR[y][x]))
		}
		rows = append(rows, row)
	}
	tl, br := r.Corners()
	return fmt.Sprintf("Figure 3: frame PSNR (dB) after a single bit flip by MB position (%d samples)\n%s\ntop-left quadrant mean: %.1f dB, bottom-right: %.1f dB\n",
		r.Samples, renderTable(header, rows), tl, br)
}
