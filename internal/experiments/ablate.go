package experiments

import (
	"fmt"
	"math"

	"videoapp/internal/codec"
	"videoapp/internal/core"
	"videoapp/internal/synth"
)

// AblateRow is one encoder configuration of the §8 discussion: how GOP and
// B-frame choices polarize the importance distribution and what they cost
// in storage.
type AblateRow struct {
	Name string
	// PayloadBits is the total coded size (storage cost of the option).
	PayloadBits int64
	// LowImportanceFrac is the fraction of payload bits whose macroblock
	// importance is at most 4 (class <= 2): the approximable share.
	LowImportanceFrac float64
	// MaxImportanceLog2 characterizes the head of the distribution.
	MaxImportanceLog2 float64
}

// AblateResult is the §8 encoder-option sweep.
type AblateResult struct {
	Rows []AblateRow
}

// AblateEncoderOptions measures how the §8 options change approximability:
// more B frames (unreferenced when BReference is false) polarize bits into
// important and unimportant, at some storage cost; shorter GOPs bound
// propagation similarly.
func AblateEncoderOptions(cfg Config) (*AblateResult, error) {
	type variant struct {
		name string
		mut  func(*codec.Params)
	}
	variants := []variant{
		{"baseline", func(p *codec.Params) {}},
		{"B=2 unreferenced", func(p *codec.Params) { p.BFrames = 2 }},
		{"B=2 referenced", func(p *codec.Params) { p.BFrames = 2; p.BReference = true }},
		{"GOP/2", func(p *codec.Params) { p.GOPSize /= 2 }},
		{"CAVLC", func(p *codec.Params) { p.Entropy = codec.CAVLC }},
		{"slices=4", func(p *codec.Params) { p.SlicesPerFrame = 4 }},
		{"halfpel", func(p *codec.Params) { p.HalfPel = true }},
		{"deblock", func(p *codec.Params) { p.Deblock = true }},
	}
	res := &AblateResult{}
	presets := cfg.presets()
	for _, v := range variants {
		params := cfg.params()
		// B-frame GOPs must align.
		if params.GOPSize%3 != 0 {
			params.GOPSize = (params.GOPSize/3 + 1) * 3
		}
		v.mut(&params)
		row := AblateRow{Name: v.name}
		var lowBits, totalBits int64
		for _, pc := range presets {
			seq := synth.Generate(pc)
			video, err := codec.Encode(seq, params)
			if err != nil {
				return nil, fmt.Errorf("experiments: ablate %s: %w", v.name, err)
			}
			an := core.Analyze(video, core.DefaultOptions())
			for _, m := range an.MBBitRanges() {
				totalBits += m.BitLen
				if core.Class(m.Importance) <= 2 {
					lowBits += m.BitLen
				}
			}
			if l2 := log2(an.MaxImportance()); l2 > row.MaxImportanceLog2 {
				row.MaxImportanceLog2 = l2
			}
		}
		row.PayloadBits = totalBits
		if totalBits > 0 {
			row.LowImportanceFrac = float64(lowBits) / float64(totalBits)
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

func log2(x float64) float64 {
	if x <= 1 {
		return 0
	}
	return math.Log2(x)
}

// String renders the sweep.
func (r *AblateResult) String() string {
	var rows [][]string
	for _, row := range r.Rows {
		rows = append(rows, []string{
			row.Name,
			fmt.Sprintf("%d", row.PayloadBits),
			fmt.Sprintf("%.1f%%", row.LowImportanceFrac*100),
			fmt.Sprintf("%.1f", row.MaxImportanceLog2),
		})
	}
	return "Section 8: encoder options vs approximability\n" +
		renderTable([]string{"Variant", "PayloadBits", "Approximable", "MaxImp(log2)"}, rows)
}
