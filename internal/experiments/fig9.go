package experiments

import (
	"fmt"
	"math"
)

// DefaultErrorRates is the x-axis of Figures 9 and 10.
var DefaultErrorRates = []float64{1e-10, 1e-9, 1e-8, 1e-7, 1e-6, 1e-5, 1e-4, 1e-3, 1e-2}

// NumBins is the paper's bin count for the §7.1 validation.
const NumBins = 16

// Fig9Result is Figure 9: per-bin quality degradation curves (a) and the
// maximum importance per bin (b).
type Fig9Result struct {
	Rates []float64
	// Loss[bin][rate] is the mean quality change in dB (negative = loss),
	// averaged over the suite; bin 0 holds the least important bits.
	Loss [][]float64
	// MaxImportanceLog2[bin] is Figure 9(b): log2 of the largest MB
	// importance in the bin, averaged over the suite.
	MaxImportanceLog2 []float64
}

// Figure9 reproduces the bin-injection validation experiment: sort all MBs
// by importance, divide into 16 equal-storage bins, inject errors into one
// bin at a time at each rate, and measure the quality change.
func Figure9(cfg Config) (*Fig9Result, error) {
	suite, err := EncodeSuite(cfg)
	if err != nil {
		return nil, err
	}
	rates := DefaultErrorRates
	res := &Fig9Result{
		Rates:             rates,
		Loss:              make([][]float64, NumBins),
		MaxImportanceLog2: make([]float64, NumBins),
	}
	for b := range res.Loss {
		res.Loss[b] = make([]float64, len(rates))
	}
	for _, ev := range suite {
		bins := equalStorageBins(sortedByImportance(ev), NumBins)
		// Per-video bin maxima; empty bins (a single huge macroblock can
		// span several bins' worth of storage) inherit their predecessor so
		// Figure 9(b) stays monotone.
		binMax := make([]float64, NumBins)
		run := 1.0
		for b, bin := range bins {
			for _, m := range bin {
				if m.Importance > run {
					run = m.Importance
				}
			}
			binMax[b] = run
		}
		for b, bin := range bins {
			res.MaxImportanceLog2[b] += math.Log2(binMax[b])
			if len(bin) == 0 {
				continue
			}
			region := newBitRegion(bin)
			for ri, p := range rates {
				mean, _, err := measureRegionLoss(ev, region, p, cfg.Runs, cfg.Seed+int64(b*1000+ri))
				if err != nil {
					return nil, err
				}
				res.Loss[b][ri] += mean
			}
		}
	}
	n := float64(len(suite))
	for b := range res.Loss {
		res.MaxImportanceLog2[b] /= n
		for ri := range res.Loss[b] {
			res.Loss[b][ri] /= n
		}
	}
	return res, nil
}

// OrderViolations counts (bin, rate) pairs where a higher-importance bin
// lost less quality than a lower-importance bin — the §7.1 validation
// criterion (the order of the curves must follow the bin order).
func (r *Fig9Result) OrderViolations(tolerance float64) int {
	violations := 0
	for ri := range r.Rates {
		for b := 1; b < len(r.Loss); b++ {
			if r.Loss[b][ri] > r.Loss[b-1][ri]+tolerance {
				violations++
			}
		}
	}
	return violations
}

// String renders both panels.
func (r *Fig9Result) String() string {
	header := []string{"bin"}
	for _, p := range r.Rates {
		header = append(header, fmt.Sprintf("%.0e", p))
	}
	header = append(header, "maxImp(log2)")
	var rows [][]string
	for b := range r.Loss {
		row := []string{fmt.Sprintf("%d", b)}
		for _, v := range r.Loss[b] {
			row = append(row, fmt.Sprintf("%+.3f", v))
		}
		row = append(row, fmt.Sprintf("%.1f", r.MaxImportanceLog2[b]))
		rows = append(rows, row)
	}
	return "Figure 9: quality change (dB) per equal-storage importance bin vs error rate\n" +
		renderTable(header, rows)
}
