package experiments

import (
	"fmt"
	"math"

	"videoapp/internal/core"
)

// Fig10Result is Figure 10: cumulative quality loss per importance class (a)
// and the cumulative storage occupied by each class (b). Importance class i
// contains every macroblock whose importance is at most 2^i.
type Fig10Result struct {
	Rates   []float64
	Classes []int
	// Loss[ci][rate] is the mean quality change (dB) when every bit of
	// class Classes[ci] (cumulative) suffers the given error rate.
	Loss [][]float64
	// StorageFrac[ci] is the cumulative fraction of payload bits the class
	// occupies (Figure 10b).
	StorageFrac []float64
}

// Figure10 reproduces the cumulative importance-class experiment that drives
// the §7.2 error correction assignment.
func Figure10(cfg Config) (*Fig10Result, error) {
	suite, err := EncodeSuite(cfg)
	if err != nil {
		return nil, err
	}
	// Determine the classes present across the suite.
	maxClass := 0
	for _, ev := range suite {
		if c := core.Class(ev.Analysis.MaxImportance()); c > maxClass {
			maxClass = c
		}
	}
	var classes []int
	for c := 1; c <= maxClass; c++ {
		classes = append(classes, c)
	}
	rates := DefaultErrorRates
	res := &Fig10Result{
		Rates:       rates,
		Classes:     classes,
		Loss:        make([][]float64, len(classes)),
		StorageFrac: make([]float64, len(classes)),
	}
	for ci := range res.Loss {
		res.Loss[ci] = make([]float64, len(rates))
	}
	for _, ev := range suite {
		sorted := sortedByImportance(ev)
		var totalBits int64
		for _, m := range sorted {
			totalBits += m.BitLen
		}
		for ci, cls := range classes {
			var members []core.MBBits
			var bits int64
			for _, m := range sorted {
				if core.Class(m.Importance) <= cls {
					members = append(members, m)
					bits += m.BitLen
				}
			}
			res.StorageFrac[ci] += float64(bits) / float64(totalBits)
			if len(members) == 0 {
				continue
			}
			region := newBitRegion(members)
			for ri, p := range rates {
				mean, _, err := measureRegionLoss(ev, region, p, cfg.Runs, cfg.Seed+int64(ci*10007+ri))
				if err != nil {
					return nil, err
				}
				res.Loss[ci][ri] += mean
			}
		}
	}
	n := float64(len(suite))
	for ci := range res.Loss {
		res.StorageFrac[ci] /= n
		for ri := range res.Loss[ci] {
			res.Loss[ci][ri] /= n
		}
	}
	return res, nil
}

// LossAt interpolates the loss of a cumulative class at an arbitrary error
// rate (log-linear between measured points), for the assignment algorithm.
func (r *Fig10Result) LossAt(classIdx int, p float64) float64 {
	rates, loss := r.Rates, r.Loss[classIdx]
	if p <= rates[0] {
		// Below the measured range the loss scales linearly with p (flip
		// count is proportional to p in the forced-flip regime).
		return loss[0] * p / rates[0]
	}
	for i := 1; i < len(rates); i++ {
		if p <= rates[i] {
			// Log-linear interpolation.
			f := (math.Log10(p) - math.Log10(rates[i-1])) / (math.Log10(rates[i]) - math.Log10(rates[i-1]))
			return loss[i-1] + f*(loss[i]-loss[i-1])
		}
	}
	return loss[len(loss)-1]
}

// String renders both panels.
func (r *Fig10Result) String() string {
	header := []string{"class"}
	for _, p := range r.Rates {
		header = append(header, fmt.Sprintf("%.0e", p))
	}
	header = append(header, "storage")
	var rows [][]string
	for ci, cls := range r.Classes {
		row := []string{fmt.Sprintf("%d", cls)}
		for _, v := range r.Loss[ci] {
			row = append(row, fmt.Sprintf("%+.3f", v))
		}
		row = append(row, fmt.Sprintf("%.1f%%", r.StorageFrac[ci]*100))
		rows = append(rows, row)
	}
	return "Figure 10: cumulative quality change (dB) per importance class vs error rate\n" +
		renderTable(header, rows)
}
