package experiments

import (
	"fmt"

	"videoapp/internal/bch"
	"videoapp/internal/core"
)

// QualityBudgetDB is the paper's §7.2 quality-loss budget: the worst-case
// approximation loss must stay below what deterministic compression would
// cost for the same storage savings (0.4-0.6 dB), so the budget is 0.3 dB.
const QualityBudgetDB = 0.3

// Table1Row is one row of Table 1.
type Table1Row struct {
	MinClass, MaxClass int
	Scheme             bch.Scheme
	// StorageFrac is the incremental payload fraction the class range holds.
	StorageFrac float64
	// BudgetDB and EstimatedLossDB document the algorithm's decision.
	BudgetDB, EstimatedLossDB float64
}

// Table1Result is the derived error correction assignment.
type Table1Result struct {
	Rows       []Table1Row
	Assignment core.ClassAssignment
	// TotalLossDB is the summed estimated loss (must be <= QualityBudgetDB).
	TotalLossDB float64
}

// DeriveTable1 runs the §7.2 budget-allocation algorithm on measured
// Figure 10 data: distribute the 0.3 dB budget across importance classes
// proportionally to the storage they occupy, then give each class the
// weakest scheme whose incremental loss fits its budget share. Scheme
// strength never decreases with class, preserving the pivot layout.
func DeriveTable1(f10 *Fig10Result) *Table1Result {
	res := &Table1Result{}
	ladder := bch.Schemes
	minScheme := 0 // index into ladder; grows monotonically
	prevLossAt := func(ri int, p float64) float64 {
		if ri == 0 {
			return 0
		}
		return f10.LossAt(ri-1, p)
	}
	prevClass := 0
	prevFrac := 0.0
	var assignment core.ClassAssignment
	assignment.Header = bch.SchemeBCH16
	for ci, cls := range f10.Classes {
		incFrac := f10.StorageFrac[ci] - prevFrac
		if incFrac < 0 {
			incFrac = 0
		}
		budget := QualityBudgetDB * incFrac
		chosen := len(ladder) - 1
		var estLoss float64
		for si := minScheme; si < len(ladder); si++ {
			s := ladder[si]
			// Incremental loss: cumulative class loss at the scheme's rate
			// minus the previous class's loss at the same rate (§7.2:
			// "excludes the bits covered by the previous class").
			loss := -(f10.LossAt(ci, s.NominalRate) - prevLossAt(ci, s.NominalRate))
			if loss < 0 {
				loss = 0
			}
			if loss <= budget || si == len(ladder)-1 {
				chosen, estLoss = si, loss
				break
			}
		}
		res.Rows = append(res.Rows, Table1Row{
			MinClass: prevClass + 1, MaxClass: cls,
			Scheme:      ladder[chosen],
			StorageFrac: incFrac,
			BudgetDB:    budget, EstimatedLossDB: estLoss,
		})
		res.TotalLossDB += estLoss
		minScheme = chosen
		prevClass = cls
		prevFrac = f10.StorageFrac[ci]
	}
	// Collapse consecutive rows with the same scheme into assignment bounds.
	for i, row := range res.Rows {
		if i+1 < len(res.Rows) && res.Rows[i+1].Scheme.Name == row.Scheme.Name {
			continue
		}
		assignment.Bounds = append(assignment.Bounds, core.ClassBound{
			MaxClass: row.MaxClass,
			Scheme:   row.Scheme,
		})
	}
	res.Assignment = assignment
	return res
}

// String renders the derived table next to the paper's Table 1 semantics.
func (r *Table1Result) String() string {
	var rows [][]string
	for _, row := range r.Rows {
		rows = append(rows, []string{
			fmt.Sprintf("%d-%d", row.MinClass, row.MaxClass),
			row.Scheme.Name,
			fmt.Sprintf("%.0e", row.Scheme.NominalRate),
			fmt.Sprintf("%.2f%%", row.Scheme.Overhead()*100),
			fmt.Sprintf("%.1f%%", row.StorageFrac*100),
			fmt.Sprintf("%.4f", row.BudgetDB),
			fmt.Sprintf("%.4f", row.EstimatedLossDB),
		})
	}
	rows = append(rows, []string{"header", "BCH-16", "1e-16", "31.25%", "-", "-", "-"})
	return fmt.Sprintf("Table 1: derived error correction assignment (budget %.1f dB, estimated loss %.4f dB)\n%s",
		QualityBudgetDB, r.TotalLossDB,
		renderTable([]string{"Class", "Scheme", "Rate", "Overhead", "Storage", "Budget", "EstLoss"}, rows))
}
