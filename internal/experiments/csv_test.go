package experiments

import (
	"bytes"
	"strings"
	"testing"
)

func TestFig8CSV(t *testing.T) {
	var buf bytes.Buffer
	if err := Figure8().WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 8 { // header + 7 schemes
		t.Fatalf("%d lines", len(lines))
	}
	if !strings.HasPrefix(lines[1], "BCH-6,") {
		t.Fatalf("first row %q", lines[1])
	}
}

func TestFig3CSV(t *testing.T) {
	r := &Fig3Result{MBCols: 2, MBRows: 2, PSNR: [][]float64{{1, 2}, {3, 4}}}
	var buf bytes.Buffer
	if err := r.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(buf.String(), "\n"); got != 5 {
		t.Fatalf("%d lines", got)
	}
}

func TestFig9And10CSV(t *testing.T) {
	f9 := &Fig9Result{
		Rates:             []float64{1e-3},
		Loss:              [][]float64{{-0.5}},
		MaxImportanceLog2: []float64{3},
	}
	var buf bytes.Buffer
	if err := f9.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "-0.5") {
		t.Fatal("loss missing")
	}
	f10 := &Fig10Result{Rates: []float64{1e-3}, Classes: []int{5}, Loss: [][]float64{{-0.25}}, StorageFrac: []float64{0.4}}
	buf.Reset()
	if err := f10.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "0.4") {
		t.Fatal("storage missing")
	}
}

func TestConservativeStrategy(t *testing.T) {
	cfg := FastConfig()
	cfg.Presets = []string{"crew_like"}
	cfg.Runs = 2
	f10, err := Figure10(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cons := DeriveConservative(f10)
	budget := DeriveTable1(f10)
	if len(cons.Rows) != len(budget.Rows) {
		t.Fatal("strategies must cover the same classes")
	}
	// Conservative never picks a weaker scheme than what its win condition
	// allows; its per-class scheme strength must be monotone too.
	for i := 1; i < len(cons.Rows); i++ {
		if cons.Rows[i].Scheme.T < cons.Rows[i-1].Scheme.T {
			t.Fatal("conservative schemes must be monotone")
		}
	}
	if cons.Assignment.Header.Name != "BCH-16" {
		t.Fatal("headers precise")
	}
	if s := CompareStrategies(f10); !strings.Contains(s, "conservative") {
		t.Fatal("comparison rendering")
	}
	var buf bytes.Buffer
	if err := cons.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
}

func TestFig11CSV(t *testing.T) {
	r := &Fig11Result{Points: []Fig11Point{{Design: "Variable", CRF: 24, CellsPerPixel: 0.1}}}
	var buf bytes.Buffer
	if err := r.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Variable,24") {
		t.Fatal("row missing")
	}
}
