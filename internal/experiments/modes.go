package experiments

import (
	"fmt"
	"math/rand"

	"videoapp/internal/cryptomode"
)

// ModesResult is the §5.2 encryption-mode compatibility table.
type ModesResult struct {
	Assessments []cryptomode.Assessment
}

// EncryptionModes assesses every implemented AES mode against the paper's
// three requirements for encrypted approximate storage.
func EncryptionModes(seed int64) (*ModesResult, error) {
	rng := rand.New(rand.NewSource(seed))
	res := &ModesResult{}
	for _, m := range cryptomode.Modes {
		a, err := cryptomode.Assess(m, rng)
		if err != nil {
			return nil, err
		}
		res.Assessments = append(res.Assessments, a)
	}
	return res, nil
}

func yesNo(b bool) string {
	if b {
		return "yes"
	}
	return "NO"
}

// String renders the verdict table.
func (r *ModesResult) String() string {
	var rows [][]string
	for _, a := range r.Assessments {
		rows = append(rows, []string{
			a.Mode.String(),
			yesNo(a.ConfidentialityOK),
			yesNo(a.ErrorContainmentOK),
			yesNo(a.ApproximationOK),
			fmt.Sprintf("%.2f", a.DuplicateLeakRatio),
			fmt.Sprintf("%.1f", a.AvgDamagedBits),
			yesNo(a.MeetsAll()),
		})
	}
	return "Section 5: AES mode compatibility with approximate storage\n" +
		renderTable([]string{"Mode", "Req1:secret", "Req2:contained", "Req3:approx", "DupLeak", "DmgBits/flip", "Usable"}, rows)
}
