package experiments

import (
	"context"
	"fmt"
	"math/rand"

	"videoapp/internal/codec"
	"videoapp/internal/core"
	"videoapp/internal/mlc"
	"videoapp/internal/quality"
	"videoapp/internal/store"
)

// ScrubRow is one scrubbing interval of the retention sweep: the substrate's
// effective raw error rate grows with the interval (drift accumulates), and
// with it the residual rates behind every correction scheme.
type ScrubRow struct {
	Months    float64
	RBER      float64
	WorstLoss float64
	MeanPSNR  float64
	Flips     int
}

// ScrubResult is the scrubbing-interval sweep, an extension of the paper's
// fixed three-month setting (§6.2): how long can scrubbing be deferred
// before the variable-correction assignment's quality guarantee erodes?
type ScrubResult struct {
	Rows []ScrubRow
}

// ScrubSweep evaluates the variable-correction design across scrubbing
// intervals using the computed (not nominal) residual rates.
func ScrubSweep(cfg Config, months []float64) (*ScrubResult, error) {
	if len(months) == 0 {
		months = []float64{1, 3, 6, 12, 24}
	}
	suite, err := EncodeSuite(cfg)
	if err != nil {
		return nil, err
	}
	res := &ScrubResult{}
	for _, m := range months {
		sys, err := store.New(store.Config{
			Substrate:   mlc.Default(),
			Assignment:  core.PaperAssignment(),
			ScrubMonths: m,
		})
		if err != nil {
			return nil, err
		}
		row := ScrubRow{Months: m, RBER: sys.RBER()}
		var psnrSum float64
		for _, ev := range suite {
			parts := ev.Analysis.Partition(core.PaperAssignment())
			worst := 0.0
			for run := 0; run < cfg.Runs; run++ {
				rng := rand.New(rand.NewSource(cfg.Seed + int64(run)*31337))
				//vetvideoapp:allow ctxfirst — the experiment harness is a batch driver with no caller cancellation to thread
				stored, flips, err := sys.StoreContext(context.Background(), ev.Video, parts, store.StoreOpts{Rng: rng})
				if err != nil {
					return nil, err
				}
				row.Flips += flips
				if flips == 0 {
					stored.Release()
					continue
				}
				dec, err := codec.Decode(stored)
				stored.Release()
				if err != nil {
					return nil, err
				}
				p, err := quality.PSNR(ev.Seq, dec)
				if err != nil {
					return nil, err
				}
				if loss := ev.CleanPSNR - p; loss > worst {
					worst = loss
				}
			}
			if worst > row.WorstLoss {
				row.WorstLoss = worst
			}
			psnrSum += ev.CleanPSNR - worst
		}
		row.MeanPSNR = psnrSum / float64(len(suite))
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// String renders the sweep.
func (r *ScrubResult) String() string {
	var rows [][]string
	for _, row := range r.Rows {
		rows = append(rows, []string{
			fmt.Sprintf("%.0f", row.Months),
			fmt.Sprintf("%.2e", row.RBER),
			fmt.Sprintf("%d", row.Flips),
			fmt.Sprintf("%.3f", row.WorstLoss),
			fmt.Sprintf("%.2f", row.MeanPSNR),
		})
	}
	return "Scrub-interval sweep (variable correction, computed residual rates)\n" +
		renderTable([]string{"Months", "RBER", "Flips", "WorstLoss(dB)", "PSNR(dB)"}, rows)
}
