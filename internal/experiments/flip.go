package experiments

import (
	"math/rand"
	"sort"

	"videoapp/internal/bitio"
	"videoapp/internal/codec"
	"videoapp/internal/core"
	"videoapp/internal/frame"
	"videoapp/internal/quality"
	"videoapp/internal/sim"
)

// bitRegion is a set of macroblock bit ranges treated as one flat bit space
// for error injection (the paper's bins and importance classes).
type bitRegion struct {
	ranges []core.MBBits
	// cum[i] is the flat offset where ranges[i] begins; cum[len] == total.
	cum   []int64
	total int64
}

func newBitRegion(ranges []core.MBBits) *bitRegion {
	r := &bitRegion{ranges: ranges, cum: make([]int64, len(ranges)+1)}
	for i, m := range ranges {
		r.cum[i] = r.total
		r.total += m.BitLen
	}
	r.cum[len(ranges)] = r.total
	return r
}

// locate maps a flat offset into (coded frame, payload bit position).
func (r *bitRegion) locate(off int64) (frameIdx int, bitPos int64) {
	if len(r.ranges) == 0 {
		return 0, 0
	}
	i := sort.Search(len(r.ranges), func(i int) bool { return r.cum[i+1] > off })
	if i >= len(r.ranges) {
		last := r.ranges[len(r.ranges)-1]
		return last.Frame, last.BitStart + last.BitLen - 1
	}
	m := r.ranges[i]
	return m.Frame, m.BitStart + (off - r.cum[i])
}

// inject flips bits of the region at rate p in a clone of v, returning the
// clone, the coded index of the first damaged frame (len(frames) if none)
// and the §6.4 scale factor for the measured loss.
func (r *bitRegion) inject(v *codec.Video, rng *rand.Rand, p float64) (damaged *codec.Video, firstDirty int, scale float64) {
	c := v.ClonePooled()
	firstDirty = len(v.Frames)
	scale = 1
	if r.total == 0 || p <= 0 {
		return c, firstDirty, scale
	}
	flip := func(off int64) {
		fi, pos := r.locate(off)
		bitio.FlipBit(c.Frames[fi].Payload, pos)
		if fi < firstDirty {
			firstDirty = fi
		}
	}
	if sim.UseForcedFlip(r.total, p) {
		ff := sim.ForceOneFlip(rng, r.total, p)
		flip(ff.Position)
		scale = ff.Scale
	} else {
		sim.VisitErrorPositions(rng, r.total, p, flip)
	}
	return c, firstDirty, scale
}

// measureRegionLoss runs the Monte-Carlo §6.4 methodology: inject errors in
// the region at rate p over the given runs and return the mean quality
// change in dB (negative = loss), with forced-flip scaling at low rates.
// Frames coded before the first corrupted one reuse their cached clean
// per-frame PSNRs, so the cost scales with the damaged suffix only.
func measureRegionLoss(ev *EncodedVideo, region *bitRegion, p float64, runs int, seed int64) (mean, worst float64, err error) {
	n := len(ev.Video.Frames)
	worst = 0
	for run := 0; run < runs; run++ {
		rng := rand.New(rand.NewSource(seed + int64(run)*7919))
		damaged, firstDirty, scale := region.inject(ev.Video, rng, p)
		var change float64
		if firstDirty < n {
			recs := make([]*frame.Frame, n)
			copy(recs, ev.CleanRecs[:firstDirty])
			var sum float64
			for i := 0; i < n; i++ {
				d := ev.Video.Frames[i].DisplayIdx
				if i < firstDirty {
					sum += ev.CleanFramePSNR[d]
					continue
				}
				recs[i] = codec.DecodeSingle(damaged, i, recs)
				pf, derr := quality.PSNRFrame(ev.Seq.Frames[d], recs[i])
				if derr != nil {
					damaged.Release()
					return 0, 0, derr
				}
				sum += pf
			}
			change = (sum/float64(n) - ev.CleanPSNR) * scale
		}
		damaged.Release()
		mean += change
		if change < worst {
			worst = change
		}
	}
	mean /= float64(runs)
	return mean, worst, nil
}

// sortedByImportance returns the MB records of ev ascending by importance.
func sortedByImportance(ev *EncodedVideo) []core.MBBits {
	ranges := ev.Analysis.MBBitRanges()
	sort.SliceStable(ranges, func(i, j int) bool {
		return ranges[i].Importance < ranges[j].Importance
	})
	return ranges
}

// equalStorageBins splits importance-sorted MB records into n bins of equal
// storage (§7.1).
func equalStorageBins(sorted []core.MBBits, n int) [][]core.MBBits {
	var total int64
	for _, m := range sorted {
		total += m.BitLen
	}
	bins := make([][]core.MBBits, n)
	if total == 0 {
		return bins
	}
	// Each record goes to the bin containing its cumulative midpoint, which
	// keeps bins storage-balanced and guarantees the last bin is populated
	// even when single macroblocks exceed a bin's nominal share.
	var cum int64
	for _, m := range sorted {
		mid := cum + m.BitLen/2
		bin := int(mid * int64(n) / total)
		if bin >= n {
			bin = n - 1
		}
		bins[bin] = append(bins[bin], m)
		cum += m.BitLen
	}
	return bins
}
