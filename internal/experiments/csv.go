package experiments

import (
	"encoding/csv"
	"fmt"
	"io"
)

// CSV export: each result type can write the raw series behind its figure so
// the plots can be regenerated with any plotting tool.

// WriteCSV emits the Figure 3 PSNR surface as (x, y, psnr) triples.
func (r *Fig3Result) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"mb_x", "mb_y", "psnr_db"}); err != nil {
		return err
	}
	for y := 0; y < r.MBRows; y++ {
		for x := 0; x < r.MBCols; x++ {
			if err := cw.Write([]string{itoa(x), itoa(y), ftoa(r.PSNR[y][x])}); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteCSV emits the Figure 8 table.
func (r *Fig8Result) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"scheme", "overhead_pct", "nominal_capability", "block_failure_prob"}); err != nil {
		return err
	}
	for _, row := range r.Rows {
		if err := cw.Write([]string{row.Scheme, ftoa(row.OverheadPct), etoa(row.NominalCapability), etoa(row.ComputedBlockFailure)}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteCSV emits the Figure 9 curves as (bin, rate, loss_db, max_imp_log2).
func (r *Fig9Result) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"bin", "error_rate", "quality_change_db", "bin_max_importance_log2"}); err != nil {
		return err
	}
	for b := range r.Loss {
		for ri, p := range r.Rates {
			if err := cw.Write([]string{itoa(b), etoa(p), ftoa(r.Loss[b][ri]), ftoa(r.MaxImportanceLog2[b])}); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteCSV emits the Figure 10 curves as (class, rate, loss_db, storage_frac).
func (r *Fig10Result) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"class", "error_rate", "cumulative_quality_change_db", "cumulative_storage_frac"}); err != nil {
		return err
	}
	for ci, cls := range r.Classes {
		for ri, p := range r.Rates {
			if err := cw.Write([]string{itoa(cls), etoa(p), ftoa(r.Loss[ci][ri]), ftoa(r.StorageFrac[ci])}); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteCSV emits the derived Table 1.
func (r *Table1Result) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"min_class", "max_class", "scheme", "nominal_rate", "overhead", "storage_frac", "budget_db", "estimated_loss_db"}); err != nil {
		return err
	}
	for _, row := range r.Rows {
		if err := cw.Write([]string{
			itoa(row.MinClass), itoa(row.MaxClass), row.Scheme.Name,
			etoa(row.Scheme.NominalRate), ftoa(row.Scheme.Overhead()),
			ftoa(row.StorageFrac), ftoa(row.BudgetDB), ftoa(row.EstimatedLossDB),
		}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteCSV emits the Figure 11 points.
func (r *Fig11Result) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"design", "crf", "cells_per_pixel", "psnr_db", "worst_loss_db", "ecc_overhead", "density_vs_slc"}); err != nil {
		return err
	}
	for _, p := range r.Points {
		if err := cw.Write([]string{
			p.Design, itoa(p.CRF), ftoa(p.CellsPerPixel), ftoa(p.PSNR),
			ftoa(p.QualityLossDB), ftoa(p.ECCOverhead), ftoa(p.DensityVsSLC),
		}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

func itoa(v int) string     { return fmt.Sprintf("%d", v) }
func ftoa(v float64) string { return fmt.Sprintf("%.6f", v) }
func etoa(v float64) string { return fmt.Sprintf("%.3e", v) }
