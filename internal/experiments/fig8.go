package experiments

import (
	"fmt"

	"videoapp/internal/bch"
)

// Fig8Row is one bar group of Figure 8: a BCH scheme's storage overhead and
// its error correction capability at raw bit error rate 10^-3.
type Fig8Row struct {
	Scheme string
	// OverheadPct is the storage overhead in percent (left axis).
	OverheadPct float64
	// NominalCapability is the post-correction error rate the paper quotes
	// (right axis, log scale).
	NominalCapability float64
	// ComputedBlockFailure is the analytically computed probability that a
	// 512-bit block exceeds the correction capability at RBER 10^-3.
	ComputedBlockFailure float64
}

// Fig8Result is the full Figure 8 table.
type Fig8Result struct {
	RawBER float64
	Rows   []Fig8Row
}

// Figure8 regenerates Figure 8 from the BCH code parameters.
func Figure8() *Fig8Result {
	const rber = 1e-3
	res := &Fig8Result{RawBER: rber}
	for _, s := range []bch.Scheme{
		bch.SchemeBCH6, bch.SchemeBCH7, bch.SchemeBCH8, bch.SchemeBCH9,
		bch.SchemeBCH10, bch.SchemeBCH11, bch.SchemeBCH16,
	} {
		res.Rows = append(res.Rows, Fig8Row{
			Scheme:               s.Name,
			OverheadPct:          s.Overhead() * 100,
			NominalCapability:    s.NominalRate,
			ComputedBlockFailure: bch.UncorrectableBlockProb(s.T, rber),
		})
	}
	return res
}

// String renders the table.
func (r *Fig8Result) String() string {
	var rows [][]string
	for _, row := range r.Rows {
		rows = append(rows, []string{
			row.Scheme,
			fmt.Sprintf("%.2f%%", row.OverheadPct),
			fmt.Sprintf("%.0e", row.NominalCapability),
			fmt.Sprintf("%.2e", row.ComputedBlockFailure),
		})
	}
	return fmt.Sprintf("Figure 8: BCH codes on 512-bit blocks at RBER %.0e\n%s",
		r.RawBER, renderTable([]string{"Scheme", "Overhead", "Capability", "P(block fail)"}, rows))
}
