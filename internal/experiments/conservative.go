package experiments

import (
	"fmt"

	"videoapp/internal/bch"
	"videoapp/internal/core"
)

// CompressionExchangeRateDB is how much quality deterministic compression
// costs per percent of storage saved, from the paper's calibration: 10-15%
// storage reduction costs 0.4-0.6 dB, i.e. roughly 0.04 dB per percent.
const CompressionExchangeRateDB = 0.04

// DeriveConservative implements the §7.2.1 alternative strategy: a class is
// given a weaker scheme only when the storage gained beats what compression
// would buy for the same quality loss — approximation must show a clear win
// against compression, otherwise the class keeps the stronger protection.
func DeriveConservative(f10 *Fig10Result) *Table1Result {
	res := &Table1Result{}
	ladder := bch.Schemes
	minScheme := 0
	prevClass := 0
	prevFrac := 0.0
	var assignment core.ClassAssignment
	assignment.Header = bch.SchemeBCH16
	strongest := len(ladder) - 1
	for ci, cls := range f10.Classes {
		incFrac := f10.StorageFrac[ci] - prevFrac
		if incFrac < 0 {
			incFrac = 0
		}
		chosen := strongest
		var estLoss float64
		for si := minScheme; si < strongest; si++ {
			s := ladder[si]
			loss := -(f10.LossAt(ci, s.NominalRate) - prevLoss(f10, ci, s.NominalRate))
			if loss < 0 {
				loss = 0
			}
			// Storage this scheme saves vs the strongest, for this class,
			// in percent of total payload.
			savedPct := (ladder[strongest].Overhead() - s.Overhead()) * incFrac * 100
			// Quality compression would give up for the same saving.
			compressionLoss := savedPct * CompressionExchangeRateDB
			if loss < compressionLoss {
				chosen, estLoss = si, loss
				break
			}
		}
		res.Rows = append(res.Rows, Table1Row{
			MinClass: prevClass + 1, MaxClass: cls,
			Scheme:          ladder[chosen],
			StorageFrac:     incFrac,
			BudgetDB:        incFrac * 100 * (ladder[strongest].Overhead() - ladder[chosen].Overhead()) * CompressionExchangeRateDB,
			EstimatedLossDB: estLoss,
		})
		res.TotalLossDB += estLoss
		minScheme = chosen
		prevClass = cls
		prevFrac = f10.StorageFrac[ci]
	}
	for i, row := range res.Rows {
		if i+1 < len(res.Rows) && res.Rows[i+1].Scheme.Name == row.Scheme.Name {
			continue
		}
		assignment.Bounds = append(assignment.Bounds, core.ClassBound{MaxClass: row.MaxClass, Scheme: row.Scheme})
	}
	res.Assignment = assignment
	return res
}

func prevLoss(f10 *Fig10Result, ci int, p float64) float64 {
	if ci == 0 {
		return 0
	}
	return f10.LossAt(ci-1, p)
}

// CompareStrategies summarizes budget vs conservative assignments on the
// same measured data.
func CompareStrategies(f10 *Fig10Result) string {
	budget := DeriveTable1(f10)
	conservative := DeriveConservative(f10)
	return fmt.Sprintf("budget strategy: loss %.4f dB, %d scheme bounds\nconservative strategy: loss %.4f dB, %d scheme bounds\n",
		budget.TotalLossDB, len(budget.Assignment.Bounds),
		conservative.TotalLossDB, len(conservative.Assignment.Bounds))
}
