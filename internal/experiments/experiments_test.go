package experiments

import (
	"strings"
	"testing"

	"videoapp/internal/core"
)

func TestEncodeSuiteFast(t *testing.T) {
	suite, err := EncodeSuite(FastConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(suite) != 2 {
		t.Fatalf("suite size %d", len(suite))
	}
	for _, ev := range suite {
		if ev.Video == nil || ev.Analysis == nil || ev.Clean == nil {
			t.Fatalf("%s: incomplete bundle", ev.Name)
		}
		if len(ev.CleanRecs) != len(ev.Video.Frames) {
			t.Fatalf("%s: rec count", ev.Name)
		}
	}
}

func TestFigure3Shape(t *testing.T) {
	cfg := FastConfig()
	cfg.Presets = []string{"crew_like"}
	cfg.Runs = 2
	res, err := Figure3(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.MBCols != 6 || res.MBRows != 4 {
		t.Fatalf("grid %dx%d", res.MBCols, res.MBRows)
	}
	if res.Samples == 0 {
		t.Fatal("no samples")
	}
	tl, br := res.Corners()
	if tl >= br {
		t.Fatalf("Figure 3 shape violated: top-left %.1f dB >= bottom-right %.1f dB", tl, br)
	}
	if !strings.Contains(res.String(), "Figure 3") {
		t.Fatal("rendering")
	}
}

func TestFigure8MatchesPaperNumbers(t *testing.T) {
	res := Figure8()
	if len(res.Rows) != 7 {
		t.Fatalf("%d rows", len(res.Rows))
	}
	// Paper's quoted overheads.
	want := map[string]float64{
		"BCH-6": 11.7, "BCH-7": 13.65, "BCH-8": 15.6, "BCH-9": 17.55,
		"BCH-10": 19.5, "BCH-16": 31.3,
	}
	for _, row := range res.Rows {
		if w, ok := want[row.Scheme]; ok {
			if diff := row.OverheadPct - w; diff > 0.1 || diff < -0.1 {
				t.Fatalf("%s overhead %.2f%%, paper says %.2f%%", row.Scheme, row.OverheadPct, w)
			}
		}
		if row.ComputedBlockFailure <= 0 || row.ComputedBlockFailure > 1e-4 {
			t.Fatalf("%s block failure %.2e implausible", row.Scheme, row.ComputedBlockFailure)
		}
	}
	// Capability ladder must be strictly improving.
	for i := 1; i < len(res.Rows); i++ {
		if res.Rows[i].ComputedBlockFailure >= res.Rows[i-1].ComputedBlockFailure {
			t.Fatal("stronger codes must fail less")
		}
	}
}

func TestFigure9BinsOrderedByImportance(t *testing.T) {
	cfg := FastConfig()
	cfg.Presets = []string{"crew_like"}
	cfg.Runs = 2
	res, err := Figure9(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Loss) != NumBins {
		t.Fatalf("%d bins", len(res.Loss))
	}
	// Figure 9b: max importance must be non-decreasing across bins.
	for b := 1; b < NumBins; b++ {
		if res.MaxImportanceLog2[b] < res.MaxImportanceLog2[b-1]-1e-9 {
			t.Fatalf("bin %d max importance %.2f below bin %d's %.2f",
				b, res.MaxImportanceLog2[b], b-1, res.MaxImportanceLog2[b-1])
		}
	}
	// Validation criterion (§7.1): the loss curves should mostly respect
	// the bin order; tiny suites tolerate a few inversions from noise.
	if v := res.OrderViolations(0.5); v > NumBins*len(res.Rates)/4 {
		t.Fatalf("%d order violations", v)
	}
	// High-importance bins at high rates must actually lose quality.
	if res.Loss[NumBins-1][len(res.Rates)-1] >= 0 {
		t.Fatal("top bin at 1e-2 must lose quality")
	}
	_ = res.String()
}

func TestFigure9LossGrowsWithRate(t *testing.T) {
	cfg := FastConfig()
	cfg.Presets = []string{"news_like"}
	cfg.Runs = 2
	res, err := Figure9(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// For the top bin, loss at 1e-2 must exceed loss at 1e-6.
	top := res.Loss[NumBins-1]
	if top[len(res.Rates)-1] > top[4] {
		t.Fatalf("loss must grow with rate: %v", top)
	}
}

func TestFigure10CumulativeStructure(t *testing.T) {
	cfg := FastConfig()
	cfg.Presets = []string{"crew_like"}
	cfg.Runs = 2
	res, err := Figure10(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Classes) == 0 {
		t.Fatal("no classes")
	}
	// Storage fraction must be non-decreasing and end at 100%.
	for i := 1; i < len(res.StorageFrac); i++ {
		if res.StorageFrac[i] < res.StorageFrac[i-1]-1e-9 {
			t.Fatal("cumulative storage must not decrease")
		}
	}
	last := res.StorageFrac[len(res.StorageFrac)-1]
	if last < 0.999 || last > 1.001 {
		t.Fatalf("final cumulative storage %.3f, want 1", last)
	}
	_ = res.String()
}

func TestFigure10LossAtInterpolation(t *testing.T) {
	r := &Fig10Result{
		Rates:   []float64{1e-6, 1e-4, 1e-2},
		Classes: []int{5},
		Loss:    [][]float64{{-0.01, -0.1, -1.0}},
	}
	if got := r.LossAt(0, 1e-4); got != -0.1 {
		t.Fatalf("exact point: %v", got)
	}
	if got := r.LossAt(0, 1e-5); got >= -0.01 || got <= -0.1 {
		t.Fatalf("interpolated %v out of bracket", got)
	}
	if got := r.LossAt(0, 1e-8); got < -0.01/50 {
		t.Fatalf("below-range %v must scale down linearly", got)
	}
	if got := r.LossAt(0, 1); got != -1.0 {
		t.Fatalf("above range clamps: %v", got)
	}
}

func TestDeriveTable1Properties(t *testing.T) {
	cfg := FastConfig()
	cfg.Presets = []string{"crew_like"}
	cfg.Runs = 2
	f10, err := Figure10(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tab := DeriveTable1(f10)
	if len(tab.Rows) == 0 {
		t.Fatal("empty table")
	}
	// Scheme strength must be non-decreasing across classes.
	for i := 1; i < len(tab.Rows); i++ {
		if tab.Rows[i].Scheme.T < tab.Rows[i-1].Scheme.T {
			t.Fatal("scheme strength decreased with class")
		}
	}
	// Total estimated loss within the budget (small slack for the last
	// forced strongest scheme).
	if tab.TotalLossDB > QualityBudgetDB*1.5 {
		t.Fatalf("estimated loss %.3f blows the %.1f budget", tab.TotalLossDB, QualityBudgetDB)
	}
	if tab.Assignment.Header.Name != "BCH-16" {
		t.Fatal("headers must stay precise")
	}
	// The assignment must be usable by the partitioner.
	if got := tab.Assignment.SchemeFor(1.0); got.T > 16 {
		t.Fatal("weakest class got an impossible scheme")
	}
	_ = tab.String()
}

func TestFigure11DesignOrdering(t *testing.T) {
	cfg := FastConfig()
	cfg.Presets = []string{"crew_like"}
	cfg.Runs = 2
	res, err := Figure11(cfg, []int{24}, core.PaperAssignment())
	if err != nil {
		t.Fatal(err)
	}
	uni := res.Point("Uniform", 24)
	vr := res.Point("Variable", 24)
	id := res.Point("Ideal", 24)
	if uni == nil || vr == nil || id == nil {
		t.Fatal("missing points")
	}
	if !(id.CellsPerPixel < vr.CellsPerPixel && vr.CellsPerPixel < uni.CellsPerPixel) {
		t.Fatalf("density ordering violated: ideal %.4f variable %.4f uniform %.4f",
			id.CellsPerPixel, vr.CellsPerPixel, uni.CellsPerPixel)
	}
	if res.OverheadReductionPct <= 0 {
		t.Fatalf("variable must cut ECC overhead, got %.1f%%", res.OverheadReductionPct)
	}
	if res.StorageSavingPct <= 0 {
		t.Fatalf("variable must save storage, got %.1f%%", res.StorageSavingPct)
	}
	// Density gain over SLC must be in a plausible band (paper: 2.57x for
	// variable, ~2.29x for uniform, 3x ideal).
	if id.DensityVsSLC < 2.99 || id.DensityVsSLC > 3.01 {
		t.Fatalf("ideal density vs SLC %.2f, want 3.0", id.DensityVsSLC)
	}
	if vr.DensityVsSLC <= uni.DensityVsSLC {
		t.Fatal("variable must beat uniform density")
	}
	_ = res.String()
}

func TestEncryptionModesTable(t *testing.T) {
	res, err := EncryptionModes(5)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Assessments) != 4 {
		t.Fatalf("%d modes", len(res.Assessments))
	}
	usable := 0
	for _, a := range res.Assessments {
		if a.MeetsAll() {
			usable++
		}
	}
	if usable != 2 {
		t.Fatalf("%d usable modes, want 2 (OFB, CTR)", usable)
	}
	if !strings.Contains(res.String(), "CTR") {
		t.Fatal("rendering")
	}
}

func TestAblateEncoderOptions(t *testing.T) {
	cfg := FastConfig()
	cfg.Presets = []string{"crew_like"}
	res, err := AblateEncoderOptions(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 8 {
		t.Fatalf("%d variants", len(res.Rows))
	}
	byName := map[string]AblateRow{}
	for _, r := range res.Rows {
		byName[r.Name] = r
		if r.PayloadBits <= 0 {
			t.Fatalf("%s: no payload", r.Name)
		}
	}
	// §8: unreferenced B frames must raise the approximable share vs the
	// same configuration with referenced B frames.
	if byName["B=2 unreferenced"].LowImportanceFrac <= byName["B=2 referenced"].LowImportanceFrac {
		t.Fatalf("unreferenced B frames must polarize importance: %.3f vs %.3f",
			byName["B=2 unreferenced"].LowImportanceFrac, byName["B=2 referenced"].LowImportanceFrac)
	}
	_ = res.String()
}

func TestRenderTableAlignment(t *testing.T) {
	out := renderTable([]string{"a", "bb"}, [][]string{{"xxx", "y"}})
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 2 {
		t.Fatal("two lines")
	}
	if !strings.HasPrefix(lines[0], "a  ") {
		t.Fatalf("alignment: %q", lines[0])
	}
}

func TestScrubSweep(t *testing.T) {
	cfg := FastConfig()
	cfg.Presets = []string{"crew_like"}
	cfg.Runs = 2
	res, err := ScrubSweep(cfg, []float64{3, 24})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("%d rows", len(res.Rows))
	}
	if res.Rows[1].RBER <= res.Rows[0].RBER {
		t.Fatal("longer scrub interval must raise the raw error rate")
	}
	if res.Rows[0].WorstLoss > res.Rows[1].WorstLoss+1e-9 && res.Rows[1].Flips > 0 {
		t.Fatalf("loss should not improve with deferred scrubbing: %+v", res.Rows)
	}
	_ = res.String()
}
