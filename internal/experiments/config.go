// Package experiments regenerates every table and figure of the paper's
// evaluation (§6-§7) plus the §8 discussion ablations, on the synthetic
// video suite. Each experiment returns a typed result with a text rendering
// whose rows mirror what the paper reports.
//
// Two scales are provided: FastConfig runs in seconds for tests and CI;
// PaperConfig approaches the paper's 720p/500-frame scale and is intended
// for the cmd/experiments binary.
package experiments

import (
	"fmt"
	"strings"

	"videoapp/internal/codec"
	"videoapp/internal/core"
	"videoapp/internal/frame"
	"videoapp/internal/quality"
	"videoapp/internal/synth"
)

// Config scales the experiment suite.
type Config struct {
	// W, H, Frames control the synthetic sequence size.
	W, H, Frames int
	// Presets names the synth presets used (empty = all 14).
	Presets []string
	// CRF is the encoder quality target (the paper uses 24/20/16).
	CRF int
	// GOPSize is the I-frame interval.
	GOPSize int
	// Runs is the Monte-Carlo repetition count (paper: 30).
	Runs int
	// Seed drives all stochastic components.
	Seed int64
	// Entropy selects the entropy coder (paper default: CABAC).
	Entropy codec.EntropyKind
}

// FastConfig is a seconds-scale configuration for tests.
func FastConfig() Config {
	return Config{
		W: 96, H: 64, Frames: 12,
		Presets: []string{"crew_like", "news_like"},
		CRF:     24, GOPSize: 12, Runs: 3, Seed: 1,
	}
}

// DefaultConfig is the medium scale used by benchmarks: large enough for
// stable trends, small enough for minutes-scale full reproduction.
func DefaultConfig() Config {
	return Config{
		W: 320, H: 176, Frames: 60,
		CRF: 24, GOPSize: 30, Runs: 10, Seed: 1,
	}
}

// PaperConfig approaches the paper's experimental scale. Expect long runs.
func PaperConfig() Config {
	return Config{
		W: 1280, H: 720, Frames: 500,
		CRF: 24, GOPSize: 60, Runs: 30, Seed: 1,
	}
}

func (c Config) presets() []synth.Config {
	names := c.Presets
	var out []synth.Config
	if len(names) == 0 {
		for _, p := range synth.Presets {
			out = append(out, p.ScaleTo(c.W, c.H, c.Frames))
		}
		return out
	}
	for _, n := range names {
		p, ok := synth.PresetByName(n)
		if ok {
			out = append(out, p.ScaleTo(c.W, c.H, c.Frames))
		}
	}
	return out
}

func (c Config) params() codec.Params {
	p := codec.DefaultParams()
	p.CRF = c.CRF
	p.GOPSize = c.GOPSize
	p.Entropy = c.Entropy
	p.SearchRange = 8
	return p
}

// EncodedVideo bundles everything the experiments reuse per suite member.
type EncodedVideo struct {
	Name     string
	Seq      *frame.Sequence
	Video    *codec.Video
	Analysis *core.Analysis
	// CleanRecs are the coded-order reconstructions of the undamaged video.
	CleanRecs []*frame.Frame
	// Clean is the display-order clean decode.
	Clean *frame.Sequence
	// CleanPSNR is PSNR(Seq, Clean), cached for quality-change math.
	CleanPSNR float64
	// CleanFramePSNR is the per-display-frame clean PSNR.
	CleanFramePSNR []float64
	// Pixels is the total luma pixel count.
	Pixels int64
}

// EncodeSuite encodes and analyzes every suite member once.
func EncodeSuite(cfg Config) ([]*EncodedVideo, error) {
	var out []*EncodedVideo
	params := cfg.params()
	for _, pc := range cfg.presets() {
		seq := synth.Generate(pc)
		v, err := codec.Encode(seq, params)
		if err != nil {
			return nil, fmt.Errorf("experiments: encode %s: %w", pc.Name, err)
		}
		recs, err := codec.DecodeRecs(v)
		if err != nil {
			return nil, err
		}
		clean, err := codec.RecsToDisplay(v, recs)
		if err != nil {
			return nil, err
		}
		cleanPSNR, err := quality.PSNR(seq, clean)
		if err != nil {
			return nil, err
		}
		framePSNR := make([]float64, len(clean.Frames))
		for d := range clean.Frames {
			framePSNR[d], err = quality.PSNRFrame(seq.Frames[d], clean.Frames[d])
			if err != nil {
				return nil, err
			}
		}
		out = append(out, &EncodedVideo{
			Name:           pc.Name,
			Seq:            seq,
			Video:          v,
			Analysis:       core.Analyze(v, core.DefaultOptions()),
			CleanRecs:      recs,
			Clean:          clean,
			CleanPSNR:      cleanPSNR,
			CleanFramePSNR: framePSNR,
			Pixels:         seq.PixelCount(),
		})
	}
	return out, nil
}

// qualityChangeDB is the evaluation's y-axis: the PSNR delta between the
// corrupted decode and the clean decode, both measured against the original
// raw video (negative = quality loss).
func qualityChangeDB(orig, clean, corrupted *frame.Sequence) (float64, error) {
	pc, err := quality.PSNR(orig, corrupted)
	if err != nil {
		return 0, err
	}
	p0, err := quality.PSNR(orig, clean)
	if err != nil {
		return 0, err
	}
	return pc - p0, nil
}

// renderTable formats rows with aligned columns for terminal output.
func renderTable(header []string, rows [][]string) string {
	width := make([]int, len(header))
	for i, h := range header {
		width[i] = len(h)
	}
	for _, r := range rows {
		for i, c := range r {
			if i < len(width) && len(c) > width[i] {
				width[i] = len(c)
			}
		}
	}
	var b strings.Builder
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", width[i], c)
		}
		b.WriteByte('\n')
	}
	line(header)
	for _, r := range rows {
		line(r)
	}
	return b.String()
}
