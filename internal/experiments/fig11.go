package experiments

import (
	"context"
	"fmt"
	"math/rand"

	"videoapp/internal/codec"
	"videoapp/internal/core"
	"videoapp/internal/mlc"
	"videoapp/internal/quality"
	"videoapp/internal/store"
)

// Fig11Point is one point of Figure 11: a storage design evaluated at one
// quality target.
type Fig11Point struct {
	Design        string
	CRF           int
	CellsPerPixel float64
	// PSNR is the suite-average PSNR of the stored-and-decoded videos
	// against the originals, using the paper's conservative convention of
	// charging each video its worst observed loss.
	PSNR float64
	// QualityLossDB is the worst-case loss vs the clean decode.
	QualityLossDB float64
	// ECCOverhead is the effective parity/payload ratio.
	ECCOverhead float64
	// DensityVsSLC is the density gain over reliable SLC storage.
	DensityVsSLC float64
}

// Fig11Result collects the design/quality sweep plus headline deltas.
type Fig11Result struct {
	Points []Fig11Point
	// OverheadReductionPct is the fraction of uniform-correction ECC
	// overhead the variable design eliminates at the base CRF.
	OverheadReductionPct float64
	// StorageSavingPct is the cell saving of variable vs uniform.
	StorageSavingPct float64
}

// Fig11Designs names the three storage designs of Figure 11.
var Fig11Designs = []string{"Uniform", "Variable", "Ideal"}

func designAssignment(name string, variable core.ClassAssignment) core.ClassAssignment {
	switch name {
	case "Uniform":
		return core.UniformAssignment()
	case "Ideal":
		return core.IdealAssignment()
	default:
		return variable
	}
}

// Figure11 reproduces the overall storage benefit evaluation: for each CRF
// quality target and each design, the density (cells per encoded pixel) and
// the resulting quality after one storage round trip.
func Figure11(cfg Config, crfs []int, variable core.ClassAssignment) (*Fig11Result, error) {
	if len(crfs) == 0 {
		crfs = []int{16, 20, 24}
	}
	res := &Fig11Result{}
	substrate := mlc.Default()
	for _, crf := range crfs {
		c := cfg
		c.CRF = crf
		suite, err := EncodeSuite(c)
		if err != nil {
			return nil, err
		}
		for _, design := range Fig11Designs {
			assignment := designAssignment(design, variable)
			sys, err := store.New(store.Config{Substrate: substrate, Assignment: assignment})
			if err != nil {
				return nil, err
			}
			var cellsPP, psnr, worstLoss, overhead float64
			for _, ev := range suite {
				parts := ev.Analysis.Partition(assignment)
				st, err := sys.Footprint(ev.Video, parts, ev.Pixels)
				if err != nil {
					return nil, err
				}
				cellsPP += st.CellsPerPixel
				overhead += st.ECCOverhead

				cleanPSNR, err := quality.PSNR(ev.Seq, ev.Clean)
				if err != nil {
					return nil, err
				}
				// Monte-Carlo store round trips; paper convention: report
				// the maximum loss per video.
				worst := 0.0
				for run := 0; run < cfg.Runs; run++ {
					rng := rand.New(rand.NewSource(cfg.Seed + int64(run)*104729))
					//vetvideoapp:allow ctxfirst — the experiment harness is a batch driver with no caller cancellation to thread
					stored, flips, err := sys.StoreContext(context.Background(), ev.Video, parts, store.StoreOpts{Rng: rng})
					if err != nil {
						return nil, err
					}
					if flips == 0 {
						stored.Release()
						continue
					}
					dec, err := codec.Decode(stored)
					stored.Release()
					if err != nil {
						return nil, err
					}
					change, err := qualityChangeDB(ev.Seq, ev.Clean, dec)
					if err != nil {
						return nil, err
					}
					if loss := -change; loss > worst {
						worst = loss
					}
				}
				psnr += cleanPSNR - worst
				if worst > worstLoss {
					worstLoss = worst
				}
			}
			n := float64(len(suite))
			res.Points = append(res.Points, Fig11Point{
				Design:        design,
				CRF:           crf,
				CellsPerPixel: cellsPP / n,
				PSNR:          psnr / n,
				QualityLossDB: worstLoss,
				ECCOverhead:   overhead / n,
				DensityVsSLC:  substrate.DensityVsSLC(overhead / n),
			})
		}
	}
	res.computeHeadlines(crfs[len(crfs)-1])
	return res, nil
}

func (r *Fig11Result) computeHeadlines(baseCRF int) {
	var uni, varr *Fig11Point
	for i := range r.Points {
		p := &r.Points[i]
		if p.CRF != baseCRF {
			continue
		}
		switch p.Design {
		case "Uniform":
			uni = p
		case "Variable":
			varr = p
		}
	}
	if uni == nil || varr == nil {
		return
	}
	if uni.ECCOverhead > 0 {
		r.OverheadReductionPct = (1 - varr.ECCOverhead/uni.ECCOverhead) * 100
	}
	if uni.CellsPerPixel > 0 {
		r.StorageSavingPct = (1 - varr.CellsPerPixel/uni.CellsPerPixel) * 100
	}
}

// Point returns the entry for a design at a CRF, or nil.
func (r *Fig11Result) Point(design string, crf int) *Fig11Point {
	for i := range r.Points {
		if r.Points[i].Design == design && r.Points[i].CRF == crf {
			return &r.Points[i]
		}
	}
	return nil
}

// String renders the sweep.
func (r *Fig11Result) String() string {
	var rows [][]string
	for _, p := range r.Points {
		rows = append(rows, []string{
			p.Design,
			fmt.Sprintf("%d", p.CRF),
			fmt.Sprintf("%.4f", p.CellsPerPixel),
			fmt.Sprintf("%.2f", p.PSNR),
			fmt.Sprintf("%.3f", p.QualityLossDB),
			fmt.Sprintf("%.1f%%", p.ECCOverhead*100),
			fmt.Sprintf("%.2fx", p.DensityVsSLC),
		})
	}
	return fmt.Sprintf("Figure 11: storage density vs quality (ECC overhead cut: %.0f%%, storage saving: %.1f%%)\n%s",
		r.OverheadReductionPct, r.StorageSavingPct,
		renderTable([]string{"Design", "CRF", "Cells/px", "PSNR", "WorstLoss", "ECC-OH", "vs SLC"}, rows))
}
