package codec

import (
	"encoding/binary"
	"fmt"

	"videoapp/internal/bitio"
)

// Container format: a compact serialization of an encoded video. The layout
// mirrors the storage system's reliability split — a precisely-stored
// sequence header and per-frame headers, followed by the approximable
// entropy-coded payloads.
//
//	magic "VAPP" | version | sequence header | per frame: header || payload
//
// Per-macroblock analysis records are not persisted: they are encoder-side
// artifacts; a container consumer decodes with the headers alone.

var containerMagic = [4]byte{'V', 'A', 'P', 'P'}

const containerVersion = 1

// Marshal serializes the video into a self-contained byte stream.
func Marshal(v *Video) []byte { return marshal(v, true) }

// MarshalPrecise serializes only the precisely-stored region of the video:
// the sequence header and the per-frame headers, with no payload bytes. The
// frame headers record each payload's length, so UnmarshalPrecise restores
// the exact frame structure with zeroed payload placeholders — the form a
// chunked archive stores in its precise cells while the payload bits live
// in the per-scheme approximate streams.
func MarshalPrecise(v *Video) []byte { return marshal(v, false) }

func marshal(v *Video, withPayload bool) []byte {
	w := bitio.NewWriter()
	for _, b := range containerMagic {
		w.WriteBits(uint64(b), 8)
	}
	w.WriteBits(containerVersion, 8)
	w.WriteUE(uint32(v.W))
	w.WriteUE(uint32(v.H))
	w.WriteUE(uint32(v.FPS))
	p := v.Params
	w.WriteUE(uint32(p.CRF))
	w.WriteUE(uint32(p.GOPSize))
	w.WriteUE(uint32(p.BFrames))
	w.WriteBool(p.BReference)
	w.WriteBits(uint64(p.Entropy), 2)
	w.WriteUE(uint32(p.SearchRange))
	w.WriteBool(p.ActivityAQ)
	w.WriteUE(uint32(p.SlicesPerFrame))
	w.WriteBool(p.Deblock)
	w.WriteBool(p.HalfPel)
	w.WriteUE(uint32(len(v.Frames)))
	w.AlignByte()
	out := w.Bytes()
	for _, f := range v.Frames {
		hdr := marshalHeader(f)
		var lenBuf [4]byte
		binary.BigEndian.PutUint32(lenBuf[:], uint32(len(hdr)))
		out = append(out, lenBuf[:]...)
		out = append(out, hdr...)
		if withPayload {
			out = append(out, f.Payload...)
		}
	}
	return out
}

// Unmarshal parses a container produced by Marshal. The returned video
// decodes identically to the original; per-macroblock analysis records are
// not restored (run the encoder or an analysis pass to regenerate them).
func Unmarshal(data []byte) (*Video, error) { return unmarshal(data, true) }

// UnmarshalPrecise parses a headers-only stream produced by MarshalPrecise:
// every frame comes back with a zeroed payload of its recorded length, ready
// for the approximate streams to be merged in.
func UnmarshalPrecise(data []byte) (*Video, error) { return unmarshal(data, false) }

func unmarshal(data []byte, withPayload bool) (*Video, error) {
	r := bitio.NewReader(data)
	for _, want := range containerMagic {
		b, err := r.ReadBits(8)
		if err != nil || byte(b) != want {
			return nil, fmt.Errorf("codec: bad container magic")
		}
	}
	ver, err := r.ReadBits(8)
	if err != nil || ver != containerVersion {
		return nil, fmt.Errorf("codec: unsupported container version %d", ver)
	}
	v := &Video{}
	var fields []uint32
	for i := 0; i < 3; i++ {
		u, err := r.ReadUE()
		if err != nil {
			return nil, fmt.Errorf("codec: truncated sequence header")
		}
		fields = append(fields, u)
	}
	v.W, v.H, v.FPS = int(fields[0]), int(fields[1]), int(fields[2])
	crf, err := r.ReadUE()
	if err != nil {
		return nil, errTruncated(err)
	}
	gop, err := r.ReadUE()
	if err != nil {
		return nil, errTruncated(err)
	}
	bf, err := r.ReadUE()
	if err != nil {
		return nil, errTruncated(err)
	}
	bref, err := r.ReadBool()
	if err != nil {
		return nil, errTruncated(err)
	}
	ent, err := r.ReadBits(2)
	if err != nil {
		return nil, errTruncated(err)
	}
	sr, err := r.ReadUE()
	if err != nil {
		return nil, errTruncated(err)
	}
	aq, err := r.ReadBool()
	if err != nil {
		return nil, errTruncated(err)
	}
	slices, err := r.ReadUE()
	if err != nil {
		return nil, errTruncated(err)
	}
	deblock, err := r.ReadBool()
	if err != nil {
		return nil, errTruncated(err)
	}
	halfpel, err := r.ReadBool()
	if err != nil {
		return nil, errTruncated(err)
	}
	nFrames, err := r.ReadUE()
	if err != nil {
		return nil, errTruncated(err)
	}
	v.Params = Params{
		CRF: int(crf), GOPSize: int(gop), BFrames: int(bf), BReference: bref,
		Entropy: EntropyKind(ent), SearchRange: int(sr), ActivityAQ: aq,
		SlicesPerFrame: int(slices), Deblock: deblock, HalfPel: halfpel,
	}
	if err := v.Params.Validate(); err != nil {
		return nil, fmt.Errorf("codec: container params invalid: %w", err)
	}
	if v.W <= 0 || v.H <= 0 || v.W%16 != 0 || v.H%16 != 0 {
		return nil, errFrameGeometry(v.W, v.H)
	}
	if nFrames > 1<<20 {
		return nil, fmt.Errorf("codec: implausible frame count %d", nFrames)
	}
	r.AlignByte()
	pos := int(r.BitPos() / 8)
	for i := uint32(0); i < nFrames; i++ {
		if pos+4 > len(data) {
			return nil, fmt.Errorf("codec: truncated at frame %d", i)
		}
		hdrLen := int(binary.BigEndian.Uint32(data[pos : pos+4]))
		pos += 4
		if hdrLen <= 0 || pos+hdrLen > len(data) {
			return nil, fmt.Errorf("codec: bad header length at frame %d", i)
		}
		f := &EncodedFrame{}
		payloadLen, err := unmarshalHeader(data[pos:pos+hdrLen], f)
		if err != nil {
			return nil, fmt.Errorf("codec: frame %d: %w", i, err)
		}
		pos += hdrLen
		if withPayload {
			if payloadLen < 0 || pos+payloadLen > len(data) {
				return nil, fmt.Errorf("codec: truncated payload at frame %d", i)
			}
			f.Payload = append([]byte(nil), data[pos:pos+payloadLen]...)
			pos += payloadLen
		} else {
			if payloadLen < 0 || payloadLen > 1<<30 {
				return nil, fmt.Errorf("codec: implausible payload length at frame %d", i)
			}
			f.Payload = make([]byte, payloadLen)
		}
		if f.DisplayIdx >= int(nFrames) || f.CodedIdx != int(i) {
			return nil, fmt.Errorf("codec: inconsistent frame indices at frame %d", i)
		}
		v.Frames = append(v.Frames, f)
	}
	if pos != len(data) {
		return nil, fmt.Errorf("codec: %d trailing bytes", len(data)-pos)
	}
	return v, nil
}

func errTruncated(err error) error {
	return fmt.Errorf("codec: truncated container: %w", err)
}
