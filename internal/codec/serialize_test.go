package codec

import (
	"testing"

	"videoapp/internal/quality"
)

func TestContainerRoundTrip(t *testing.T) {
	seq := testSeq(t, "crew_like", 96, 64, 8)
	p := testParams()
	p.SlicesPerFrame = 2
	v, err := Encode(seq, p)
	if err != nil {
		t.Fatal(err)
	}
	data := Marshal(v)
	got, err := Unmarshal(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.W != v.W || got.H != v.H || got.FPS != v.FPS {
		t.Fatal("geometry")
	}
	if got.Params != v.Params {
		t.Fatalf("params %+v vs %+v", got.Params, v.Params)
	}
	if len(got.Frames) != len(v.Frames) {
		t.Fatal("frame count")
	}
	for i := range v.Frames {
		a, b := v.Frames[i], got.Frames[i]
		if a.Type != b.Type || a.DisplayIdx != b.DisplayIdx || a.BaseQP != b.BaseQP ||
			a.RefFwd != b.RefFwd || a.RefBwd != b.RefBwd {
			t.Fatalf("frame %d header mismatch", i)
		}
		if len(a.Payload) != len(b.Payload) {
			t.Fatalf("frame %d payload length", i)
		}
		for j := range a.Payload {
			if a.Payload[j] != b.Payload[j] {
				t.Fatalf("frame %d payload byte %d", i, j)
			}
		}
	}
}

func TestContainerDecodesIdentically(t *testing.T) {
	seq := testSeq(t, "parkrun_like", 96, 64, 6)
	v, err := Encode(seq, testParams())
	if err != nil {
		t.Fatal(err)
	}
	got, err := Unmarshal(Marshal(v))
	if err != nil {
		t.Fatal(err)
	}
	a, err := Decode(v)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Decode(got)
	if err != nil {
		t.Fatal(err)
	}
	psnr, err := quality.PSNR(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if psnr != quality.MaxPSNR {
		t.Fatalf("container round trip must decode identically, PSNR %.2f", psnr)
	}
}

func TestContainerRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		{'V', 'A', 'P'},
		{'X', 'A', 'P', 'P', 1},
		{'V', 'A', 'P', 'P', 99}, // bad version
		append([]byte{'V', 'A', 'P', 'P', 1}, make([]byte, 3)...), // truncated header
	}
	for i, c := range cases {
		if _, err := Unmarshal(c); err == nil {
			t.Fatalf("case %d must be rejected", i)
		}
	}
}

func TestContainerRejectsTruncation(t *testing.T) {
	seq := testSeq(t, "news_like", 64, 48, 4)
	v, err := Encode(seq, testParams())
	if err != nil {
		t.Fatal(err)
	}
	data := Marshal(v)
	for _, cut := range []int{len(data) - 1, len(data) / 2, 10} {
		if _, err := Unmarshal(data[:cut]); err == nil {
			t.Fatalf("truncation at %d must be rejected", cut)
		}
	}
}

func TestContainerRejectsTrailingBytes(t *testing.T) {
	seq := testSeq(t, "news_like", 64, 48, 3)
	v, err := Encode(seq, testParams())
	if err != nil {
		t.Fatal(err)
	}
	data := append(Marshal(v), 0xEE)
	if _, err := Unmarshal(data); err == nil {
		t.Fatal("trailing bytes must be rejected")
	}
}

func TestContainerCompactness(t *testing.T) {
	// The container's framing overhead must be small relative to payload.
	seq := testSeq(t, "crew_like", 96, 64, 10)
	v, err := Encode(seq, testParams())
	if err != nil {
		t.Fatal(err)
	}
	var payload int
	for _, f := range v.Frames {
		payload += len(f.Payload)
	}
	framing := len(Marshal(v)) - payload
	if framing > payload/5+200 {
		t.Fatalf("framing %d bytes for %d payload bytes", framing, payload)
	}
}

func BenchmarkMarshal(b *testing.B) {
	b.ReportAllocs()
	seq := testSeq(b, "crew_like", 176, 144, 10)
	v, err := Encode(seq, testParams())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Marshal(v)
	}
}

func BenchmarkUnmarshal(b *testing.B) {
	b.ReportAllocs()
	seq := testSeq(b, "crew_like", 176, 144, 10)
	v, err := Encode(seq, testParams())
	if err != nil {
		b.Fatal(err)
	}
	data := Marshal(v)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Unmarshal(data); err != nil {
			b.Fatal(err)
		}
	}
}
