package codec

import (
	"testing"

	"videoapp/internal/quality"
)

func TestConcealOnDesyncImprovesTruncatedDecode(t *testing.T) {
	// Truncating a payload desyncs the reader; concealment should produce
	// a (usually) better picture than interpreting garbage.
	seq := testSeq(t, "crew_like", 96, 64, 8)
	v, err := Encode(seq, testParams())
	if err != nil {
		t.Fatal(err)
	}
	clean, err := Decode(v)
	if err != nil {
		t.Fatal(err)
	}
	c := v.Clone()
	// Truncate a mid-GOP P frame severely.
	if len(c.Frames[3].Payload) > 4 {
		c.Frames[3].Payload = c.Frames[3].Payload[:4]
	}
	raw, err := DecodeWithOptions(c, DecodeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	concealed, err := DecodeWithOptions(c, DecodeOptions{ConcealOnDesync: true})
	if err != nil {
		t.Fatal(err)
	}
	pRaw, _ := quality.PSNR(clean, raw)
	pCon, _ := quality.PSNR(clean, concealed)
	if pCon < pRaw-1 {
		t.Fatalf("concealment made things notably worse: %.2f vs %.2f dB", pCon, pRaw)
	}
	t.Logf("raw %.2f dB, concealed %.2f dB", pRaw, pCon)
}

func TestConcealOnCleanStreamIsIdentity(t *testing.T) {
	seq := testSeq(t, "news_like", 64, 48, 6)
	v, err := Encode(seq, testParams())
	if err != nil {
		t.Fatal(err)
	}
	a, _ := DecodeWithOptions(v, DecodeOptions{})
	b, _ := DecodeWithOptions(v, DecodeOptions{ConcealOnDesync: true})
	for i := range a.Frames {
		for j := range a.Frames[i].Y {
			if a.Frames[i].Y[j] != b.Frames[i].Y[j] {
				t.Fatal("concealment must not change clean decodes")
			}
		}
	}
}

func TestConcealIFrameWithoutReference(t *testing.T) {
	seq := testSeq(t, "news_like", 64, 48, 3)
	v, err := Encode(seq, testParams())
	if err != nil {
		t.Fatal(err)
	}
	c := v.Clone()
	c.Frames[0].Payload = c.Frames[0].Payload[:1] // destroy the I frame
	dec, err := DecodeWithOptions(c, DecodeOptions{ConcealOnDesync: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(dec.Frames) != 3 {
		t.Fatal("frame count")
	}
}
