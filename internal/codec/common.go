package codec

import (
	"errors"
	"fmt"

	"videoapp/internal/bitio"
	"videoapp/internal/entropy"
	"videoapp/internal/frame"
	"videoapp/internal/predict"
	"videoapp/internal/transform"
)

// Macroblock type codes as coded in the bitstream. I-frames code no MB type
// (always intra).
const (
	mbSkip      = 0 // P only: 16x16 with predicted MV, no residual
	mbInter16   = 1
	mbIntra     = 2
	mbInter16x8 = 3
	mbInter8x16 = 4
	mbInter8x8  = 5
	mbInter8x4  = 6
	mbInter4x8  = 7
	mbInter4x4  = 8
	numMBTypes  = 9
)

func mbTypeToShape(t int) predict.PartitionShape {
	switch t {
	case mbInter16x8:
		return predict.Part16x8
	case mbInter8x16:
		return predict.Part8x16
	case mbInter8x8:
		return predict.Part8x8
	case mbInter8x4:
		return predict.Part8x4
	case mbInter4x8:
		return predict.Part4x8
	case mbInter4x4:
		return predict.Part4x4
	default:
		return predict.Part16x16
	}
}

func shapeToMBType(s predict.PartitionShape) int {
	switch s {
	case predict.Part16x8:
		return mbInter16x8
	case predict.Part8x16:
		return mbInter8x16
	case predict.Part8x8:
		return mbInter8x8
	case predict.Part8x4:
		return mbInter8x4
	case predict.Part4x8:
		return mbInter4x8
	case predict.Part4x4:
		return mbInter4x4
	default:
		return mbInter16
	}
}

// B-frame partition prediction directions.
const (
	dirFwd = 0
	dirBwd = 1
	dirBi  = 2
)

// zigzag4 is the 4×4 zig-zag scan order.
var zigzag4 = [16]int{0, 1, 4, 8, 5, 2, 3, 6, 9, 12, 13, 10, 7, 11, 14, 15}

// maxLevel bounds decoded coefficient magnitudes; corrupt streams otherwise
// produce values whose inverse transform overflows int32.
const maxLevel = 1 << 15

// writeResidualBlock codes one quantized 4×4 block as a nonzero count
// followed by (zero-run, level) pairs in zig-zag order.
func writeResidualBlock(sw entropy.SymbolWriter, blk *transform.Block) {
	nnz := 0
	for _, v := range blk {
		if v != 0 {
			nnz++
		}
	}
	sw.PutUVal(entropy.ClassCoeffFlag, uint32(nnz))
	run := 0
	for _, pos := range zigzag4 {
		v := blk[pos]
		if v == 0 {
			run++
			continue
		}
		sw.PutUVal(entropy.ClassCoeffRun, uint32(run))
		sw.PutSVal(entropy.ClassCoeffLevel, v)
		run = 0
		nnz--
		if nnz == 0 {
			break
		}
	}
}

// readResidualBlock decodes one 4×4 block, clamping every field so corrupt
// streams yield garbage-but-bounded coefficients.
func readResidualBlock(sr entropy.SymbolReader) transform.Block {
	var blk transform.Block
	nnz := int(sr.GetUVal(entropy.ClassCoeffFlag))
	if nnz > 16 {
		nnz = 16
	}
	scan := 0
	for i := 0; i < nnz; i++ {
		run := int(sr.GetUVal(entropy.ClassCoeffRun))
		scan += run
		if scan >= 16 {
			break
		}
		level := sr.GetSVal(entropy.ClassCoeffLevel)
		if level > maxLevel {
			level = maxLevel
		}
		if level < -maxLevel {
			level = -maxLevel
		}
		blk[zigzag4[scan]] = level
		scan++
		if scan >= 16 {
			break
		}
	}
	return blk
}

// newSymbolWriter builds the configured entropy backend over w.
func newSymbolWriter(kind EntropyKind, w *bitio.Writer) entropy.SymbolWriter {
	if kind == CAVLC {
		return entropy.NewCAVLCWriter(w)
	}
	return entropy.NewCABACWriter(w)
}

// newSymbolReader builds the configured entropy backend over r.
func newSymbolReader(kind EntropyKind, r *bitio.Reader) entropy.SymbolReader {
	if kind == CAVLC {
		return entropy.NewCAVLCReader(r)
	}
	return entropy.NewCABACReader(r)
}

// marshalHeader serializes the precisely-stored frame header: everything the
// decoder needs before touching the (approximately stored) payload.
func marshalHeader(f *EncodedFrame) []byte {
	w := bitio.NewWriter()
	w.WriteBits(uint64(f.Type), 2)
	w.WriteUE(uint32(f.CodedIdx))
	w.WriteUE(uint32(f.DisplayIdx))
	w.WriteBits(uint64(f.BaseQP), 6)
	w.WriteUE(uint32(f.RefFwd + 1)) // -1 encodes as 0
	w.WriteUE(uint32(f.RefBwd + 1))
	w.WriteUE(uint32(len(f.Payload)))
	w.WriteUE(uint32(len(f.SliceMBStart)))
	for i := range f.SliceMBStart {
		w.WriteUE(uint32(f.SliceMBStart[i]))
		w.WriteUE(uint32(f.SliceByteStart[i]))
	}
	w.AlignByte()
	return w.Bytes()
}

// errBadHeader reports a header that cannot be parsed. Headers are stored
// precisely, so this indicates misuse rather than storage errors.
var errBadHeader = errors.New("codec: malformed frame header")

// unmarshalHeader parses a header produced by marshalHeader into f,
// returning the payload byte length.
func unmarshalHeader(buf []byte, f *EncodedFrame) (payloadLen int, err error) {
	r := bitio.NewReader(buf)
	ft, err := r.ReadBits(2)
	if err != nil {
		return 0, errBadHeader
	}
	f.Type = FrameType(ft)
	ci, err := r.ReadUE()
	if err != nil {
		return 0, errBadHeader
	}
	di, err := r.ReadUE()
	if err != nil {
		return 0, errBadHeader
	}
	qp, err := r.ReadBits(6)
	if err != nil {
		return 0, errBadHeader
	}
	rf, err := r.ReadUE()
	if err != nil {
		return 0, errBadHeader
	}
	rb, err := r.ReadUE()
	if err != nil {
		return 0, errBadHeader
	}
	pl, err := r.ReadUE()
	if err != nil {
		return 0, errBadHeader
	}
	nSlices, err := r.ReadUE()
	if err != nil || nSlices > 16 {
		return 0, errBadHeader
	}
	f.SliceMBStart = f.SliceMBStart[:0]
	f.SliceByteStart = f.SliceByteStart[:0]
	for i := uint32(0); i < nSlices; i++ {
		ms, err := r.ReadUE()
		if err != nil {
			return 0, errBadHeader
		}
		bs, err := r.ReadUE()
		if err != nil {
			return 0, errBadHeader
		}
		f.SliceMBStart = append(f.SliceMBStart, int(ms))
		f.SliceByteStart = append(f.SliceByteStart, int(bs))
	}
	f.CodedIdx = int(ci)
	f.DisplayIdx = int(di)
	f.BaseQP = int(qp)
	f.RefFwd = int(rf) - 1
	f.RefBwd = int(rb) - 1
	return int(pl), nil
}

// chromaInterPredict fills the 8×8 chroma predictions for a macroblock from
// ref using the partition vectors scaled down by mvDiv: 2 for full-pel
// vectors, 4 for half-pel vectors (4:2:0 chroma is half luma resolution).
func chromaInterPredict(dstCb, dstCr []uint8, ref *frame.Frame, mbx, mby int, rects []predict.Rect, mvs []predict.MV, mvDiv int) {
	cx0, cy0 := mbx*8, mby*8
	for i, r := range rects {
		mv := mvs[i]
		for y := r.Y / 2; y < (r.Y+r.H)/2; y++ {
			for x := r.X / 2; x < (r.X+r.W)/2; x++ {
				cb, cr := ref.ChromaAt(cx0+x+int(mv.X)/mvDiv, cy0+y+int(mv.Y)/mvDiv)
				dstCb[y*8+x] = cb
				dstCr[y*8+x] = cr
			}
		}
	}
}

// chromaIntraPredict fills flat DC chroma predictions from the neighboring
// reconstructed chroma samples, matching on encoder and decoder.
func chromaIntraPredict(dstCb, dstCr []uint8, rec *frame.Frame, mbx, mby int, hasAbove, hasLeft bool) {
	cx0, cy0 := mbx*8, mby*8
	sumB, sumR, n := 0, 0, 0
	if hasAbove {
		for x := 0; x < 8; x++ {
			cb, cr := rec.ChromaAt(cx0+x, cy0-1)
			sumB += int(cb)
			sumR += int(cr)
		}
		n += 8
	}
	if hasLeft {
		for y := 0; y < 8; y++ {
			cb, cr := rec.ChromaAt(cx0-1, cy0+y)
			sumB += int(cb)
			sumR += int(cr)
		}
		n += 8
	}
	db, dr := uint8(128), uint8(128)
	if n > 0 {
		db = uint8((sumB + n/2) / n)
		dr = uint8((sumR + n/2) / n)
	}
	for i := range dstCb {
		dstCb[i] = db
		dstCr[i] = dr
	}
}

// qpPrediction returns the median-of-neighbors QP prediction described in
// §3 of the paper: the median of the QPs of MBs A (left), B (above) and
// C (above-right), falling back to the frame base QP.
func qpPrediction(qps []int, mbx, mby, mbCols, baseQP, sliceTop int) int {
	get := func(x, y int) (int, bool) {
		if x < 0 || y < sliceTop || x >= mbCols {
			return 0, false
		}
		return qps[y*mbCols+x], true
	}
	a, okA := get(mbx-1, mby)
	b, okB := get(mbx, mby-1)
	c, okC := get(mbx+1, mby-1)
	vals := []int{}
	if okA {
		vals = append(vals, a)
	}
	if okB {
		vals = append(vals, b)
	}
	if okC {
		vals = append(vals, c)
	}
	switch len(vals) {
	case 0:
		return baseQP
	case 1:
		return vals[0]
	case 2:
		return (vals[0] + vals[1]) / 2
	default:
		return median3i(vals[0], vals[1], vals[2])
	}
}

func median3i(a, b, c int) int {
	if a > b {
		a, b = b, a
	}
	if b > c {
		b = c
	}
	if a > b {
		b = a
	}
	return b
}

// mvPrediction returns the median MV prediction from per-MB representative
// vectors. avail marks MBs coded as inter so far.
func mvPrediction(mvs []predict.MV, avail []bool, mbx, mby, mbCols, sliceTop int) predict.MV {
	get := func(x, y int) (predict.MV, bool) {
		if x < 0 || y < sliceTop || x >= mbCols {
			return predict.MV{}, false
		}
		i := y*mbCols + x
		if !avail[i] {
			return predict.MV{}, false
		}
		return mvs[i], true
	}
	a, okA := get(mbx-1, mby)
	b, okB := get(mbx, mby-1)
	c, okC := get(mbx+1, mby-1)
	return predict.MedianMV(a, b, c, okA, okB, okC)
}

func validFrameRef(n, count int) bool { return n >= 0 && n < count }

func errFrameGeometry(w, h int) error {
	return fmt.Errorf("codec: frame size %dx%d not macroblock aligned", w, h)
}
