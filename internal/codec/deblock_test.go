package codec

import (
	"testing"

	"videoapp/internal/bitio"
	"videoapp/internal/quality"
)

func TestDeblockEncodeDecodeConsistency(t *testing.T) {
	// The filter runs in the reconstruction loop: any encoder/decoder
	// mismatch would drift across the P-frame chain and collapse quality by
	// the end of the GOP.
	seq := testSeq(t, "crew_like", 96, 64, 12)
	p := testParams()
	p.Deblock = true
	_, dec := encodeDecode(t, seq, p)
	last, err := quality.PSNRFrame(seq.Frames[11], dec.Frames[11])
	if err != nil {
		t.Fatal(err)
	}
	if last < 28 {
		t.Fatalf("deblocked chain drifted: final frame PSNR %.2f dB", last)
	}
}

func TestDeblockChangesOutput(t *testing.T) {
	seq := testSeq(t, "news_like", 96, 64, 6)
	p := testParams()
	p.CRF = 36 // strong quantization produces blocking to filter
	v1, err := Encode(seq, p)
	if err != nil {
		t.Fatal(err)
	}
	p.Deblock = true
	v2, err := Encode(seq, p)
	if err != nil {
		t.Fatal(err)
	}
	d1, _ := Decode(v1)
	d2, _ := Decode(v2)
	diff := 0
	for i := range d1.Frames[0].Y {
		if d1.Frames[0].Y[i] != d2.Frames[0].Y[i] {
			diff++
		}
	}
	if diff == 0 {
		t.Fatal("deblocking must change the reconstruction at high QP")
	}
}

func TestDeblockDoesNotHurtQualityMuch(t *testing.T) {
	seq := testSeq(t, "crew_like", 96, 64, 8)
	measure := func(deblock bool) float64 {
		p := testParams()
		p.CRF = 32
		p.Deblock = deblock
		_, dec := encodeDecode(t, seq, p)
		psnr, _ := quality.PSNR(seq, dec)
		return psnr
	}
	off, on := measure(false), measure(true)
	if on < off-0.5 {
		t.Fatalf("deblocking cost %.2f dB (off %.2f, on %.2f)", off-on, off, on)
	}
}

func TestDeblockSurvivesCorruption(t *testing.T) {
	seq := testSeq(t, "sports_like", 64, 48, 5)
	p := testParams()
	p.Deblock = true
	v, err := Encode(seq, p)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 10; trial++ {
		c := v.Clone()
		for _, f := range c.Frames {
			bitio.FlipBit(f.Payload, int64(trial*41)%f.PayloadBits())
		}
		if _, err := Decode(c); err != nil {
			t.Fatal(err)
		}
	}
}

func TestDeblockContainerFlag(t *testing.T) {
	seq := testSeq(t, "news_like", 64, 48, 3)
	p := testParams()
	p.Deblock = true
	v, err := Encode(seq, p)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Unmarshal(Marshal(v))
	if err != nil {
		t.Fatal(err)
	}
	if !got.Params.Deblock {
		t.Fatal("deblock flag lost in container")
	}
	// Decodes identically through the container.
	a, _ := Decode(v)
	b, _ := Decode(got)
	for i := range a.Frames {
		for j := range a.Frames[i].Y {
			if a.Frames[i].Y[j] != b.Frames[i].Y[j] {
				t.Fatal("container decode differs with deblocking")
			}
		}
	}
}

func TestDeblockThresholdsMonotone(t *testing.T) {
	lastA, lastB := 0, 0
	for qp := 0; qp <= 51; qp++ {
		a, b := deblockThresholds(qp)
		if a < lastA || b < lastB {
			t.Fatalf("thresholds must grow with QP (qp=%d)", qp)
		}
		lastA, lastB = a, b
	}
}

func TestDeblockPreservesRealEdges(t *testing.T) {
	// A strong step edge must not be smoothed away.
	f := testSeq(t, "news_like", 64, 48, 1).Frames[0]
	for y := 0; y < 48; y++ {
		for x := 0; x < 64; x++ {
			if x < 32 {
				f.Y[y*64+x] = 30
			} else {
				f.Y[y*64+x] = 220
			}
		}
	}
	qps := make([]int, (64/16)*(48/16))
	for i := range qps {
		qps[i] = 30
	}
	deblockFrame(f, qps, 4)
	if f.LumaAt(31, 10) != 30 || f.LumaAt(32, 10) != 220 {
		t.Fatalf("real edge was filtered: %d / %d", f.LumaAt(31, 10), f.LumaAt(32, 10))
	}
}
