package codec

import (
	"testing"
)

func depKey(d CompDep) [4]int {
	return [4]int{d.SrcFrame, d.SrcMB.X, d.SrcMB.Y, d.Pixels}
}

func TestReanalyzeRecoversDependencies(t *testing.T) {
	// Decoding a clean stream must recover exactly the dependency records
	// the encoder produced: same MVs, same modes, same footprints.
	seq := testSeq(t, "crew_like", 96, 64, 10)
	for _, kind := range []EntropyKind{CABAC, CAVLC} {
		p := testParams()
		p.Entropy = kind
		v, err := Encode(seq, p)
		if err != nil {
			t.Fatal(err)
		}
		// Strip the records via the container and rebuild them by decoding.
		stripped, err := Unmarshal(Marshal(v))
		if err != nil {
			t.Fatal(err)
		}
		if err := Reanalyze(stripped); err != nil {
			t.Fatal(err)
		}
		for fi, ef := range v.Frames {
			got := stripped.Frames[fi].MBs
			if len(got) != len(ef.MBs) {
				t.Fatalf("%v frame %d: %d records, want %d", kind, fi, len(got), len(ef.MBs))
			}
			for mi, want := range ef.MBs {
				g := got[mi]
				if g.MB != want.MB || g.Intra != want.Intra || g.QP != want.QP {
					t.Fatalf("%v frame %d MB %d: header mismatch (%+v vs %+v)", kind, fi, mi, g, want)
				}
				wd := map[[4]int]int{}
				for _, d := range want.Deps {
					wd[depKey(d)]++
				}
				gd := map[[4]int]int{}
				for _, d := range g.Deps {
					gd[depKey(d)]++
				}
				if len(wd) != len(gd) {
					t.Fatalf("%v frame %d MB %d: dep sets differ (%d vs %d)", kind, fi, mi, len(gd), len(wd))
				}
				for k, n := range wd {
					if gd[k] != n {
						t.Fatalf("%v frame %d MB %d: dep %v count %d vs %d", kind, fi, mi, k, gd[k], n)
					}
				}
			}
		}
	}
}

func TestReanalyzeBitRangesCoverPayload(t *testing.T) {
	seq := testSeq(t, "parkrun_like", 96, 64, 8)
	p := testParams()
	p.SlicesPerFrame = 2
	v, err := Encode(seq, p)
	if err != nil {
		t.Fatal(err)
	}
	stripped, err := Unmarshal(Marshal(v))
	if err != nil {
		t.Fatal(err)
	}
	if err := Reanalyze(stripped); err != nil {
		t.Fatal(err)
	}
	for fi, ef := range stripped.Frames {
		var total int64
		for i, mb := range ef.MBs {
			if mb.BitLen < 0 {
				t.Fatalf("frame %d MB %d: negative length", fi, i)
			}
			total += mb.BitLen
		}
		if total != ef.PayloadBits() {
			t.Fatalf("frame %d: ranges cover %d of %d bits", fi, total, ef.PayloadBits())
		}
	}
}

func TestReanalyzeBitRangesCloseToEncoder(t *testing.T) {
	// CABAC decode-side attribution is allowed to differ from the encoder's
	// by the coder's lookahead, but only by a few bits.
	seq := testSeq(t, "news_like", 96, 64, 6)
	v, err := Encode(seq, testParams())
	if err != nil {
		t.Fatal(err)
	}
	stripped, err := Unmarshal(Marshal(v))
	if err != nil {
		t.Fatal(err)
	}
	if err := Reanalyze(stripped); err != nil {
		t.Fatal(err)
	}
	for fi, ef := range v.Frames {
		for mi, want := range ef.MBs {
			got := stripped.Frames[fi].MBs[mi]
			diff := got.BitStart - want.BitStart
			if diff < -2 || diff > 24 {
				t.Fatalf("frame %d MB %d: start %d vs encoder %d", fi, mi, got.BitStart, want.BitStart)
			}
		}
	}
}

func TestReanalyzeIdempotent(t *testing.T) {
	seq := testSeq(t, "crew_like", 64, 48, 5)
	v, err := Encode(seq, testParams())
	if err != nil {
		t.Fatal(err)
	}
	if err := Reanalyze(v); err != nil {
		t.Fatal(err)
	}
	first := append([]MBRecord(nil), v.Frames[1].MBs...)
	if err := Reanalyze(v); err != nil {
		t.Fatal(err)
	}
	for i, mb := range v.Frames[1].MBs {
		if mb.BitStart != first[i].BitStart || mb.BitLen != first[i].BitLen {
			t.Fatal("reanalysis must be deterministic")
		}
	}
}
