package codec

import (
	"fmt"

	"videoapp/internal/bitio"
	"videoapp/internal/entropy"
	"videoapp/internal/frame"
	"videoapp/internal/obs"
	"videoapp/internal/predict"
	"videoapp/internal/transform"
)

// DecodeOptions tunes error handling during decoding.
type DecodeOptions struct {
	// ConcealOnDesync switches the handling of entropy-stream desync from
	// "keep interpreting garbage" (the conservative behaviour the paper
	// measures) to macroblock concealment: once the reader reports desync,
	// the rest of the slice is filled by copying co-located content from
	// the forward reference (or mid-gray for I frames), as production
	// decoders such as ffmpeg do.
	ConcealOnDesync bool
	// Observer, when non-nil, receives decode instrumentation: the
	// per-slice entropy resync counter (obs.CtrResync) fires once for
	// every slice whose symbol reader ends desynced. DecodeContext fills
	// it from the context when unset; the serial Decode paths leave it
	// nil, which disables publication entirely.
	Observer obs.Observer
}

// Decode reconstructs the display-order sequence from the coded video.
//
// The decoder is error-resilient: arbitrarily corrupted payloads produce
// damaged pictures, never a panic or an abort. Every value read from the
// entropy stream is range-checked and clamped; when the stream desyncs the
// decoder keeps interpreting garbage within the frame (the paper's Figure
// 2(c) behaviour) and resynchronizes at the next frame boundary, because
// each frame's payload is independently delimited by its precisely-stored
// header and the entropy context is reset per frame.
func Decode(v *Video) (*frame.Sequence, error) {
	return DecodeWithOptions(v, DecodeOptions{})
}

// DecodeWithOptions is Decode with explicit error-handling options.
func DecodeWithOptions(v *Video, opts DecodeOptions) (*frame.Sequence, error) {
	rec, err := decodeRecsOpts(v, opts)
	if err != nil {
		return nil, err
	}
	return RecsToDisplay(v, rec)
}

// DecodeRecs decodes the video and returns the reconstructed frames in coded
// order — the form experiments need to re-decode single frames cheaply.
func DecodeRecs(v *Video) ([]*frame.Frame, error) {
	return decodeRecsOpts(v, DecodeOptions{})
}

func decodeRecsOpts(v *Video, opts DecodeOptions) ([]*frame.Frame, error) {
	if v.W%frame.MBSize != 0 || v.H%frame.MBSize != 0 || v.W <= 0 || v.H <= 0 {
		return nil, errFrameGeometry(v.W, v.H)
	}
	rec := make([]*frame.Frame, len(v.Frames))
	for i := range v.Frames {
		rec[i] = decodeSingleOpts(v, i, rec, opts)
	}
	return rec, nil
}

// DecodeSingle decodes only coded frame idx against the given coded-order
// reference reconstructions (entries beyond idx are not read). Callers can
// substitute clean references to isolate one frame's coding errors from
// compensation errors, as the Figure 3 experiment requires.
func DecodeSingle(v *Video, idx int, recs []*frame.Frame) *frame.Frame {
	return decodeSingleOpts(v, idx, recs, DecodeOptions{})
}

func decodeSingleOpts(v *Video, idx int, recs []*frame.Frame, opts DecodeOptions) *frame.Frame {
	fd := &frameDecoder{video: v, ef: v.Frames[idx], recRefs: recs, rec: frame.MustNew(v.W, v.H), opts: opts}
	fd.run()
	return fd.rec
}

// RecsToDisplay reorders coded-order reconstructions into a display-order
// sequence.
func RecsToDisplay(v *Video, rec []*frame.Frame) (*frame.Sequence, error) {
	display := make([]*frame.Frame, len(v.Frames))
	for i, ef := range v.Frames {
		if ef.DisplayIdx < 0 || ef.DisplayIdx >= len(v.Frames) {
			return nil, fmt.Errorf("codec: display index %d out of range", ef.DisplayIdx)
		}
		display[ef.DisplayIdx] = rec[i]
	}
	seq := &frame.Sequence{Name: "decoded", FPS: v.FPS}
	for _, f := range display {
		if f == nil {
			f = frame.MustNew(v.W, v.H)
		}
		seq.Frames = append(seq.Frames, f)
	}
	return seq, nil
}

type frameDecoder struct {
	video   *Video
	ef      *EncodedFrame
	recRefs []*frame.Frame
	rec     *frame.Frame

	sr       entropy.SymbolReader
	qps      []int
	mvRep    []predict.MV
	mvAvail  []bool
	sliceTop int
	opts     DecodeOptions

	// Recording mode (Reanalyze): rebuild per-MB records while decoding.
	record  bool
	recs    []MBRecord
	curRec  *MBRecord
	bitBase int64
}

// mvDiv is the divisor converting motion vector units to chroma pixels.
func (fd *frameDecoder) mvDiv() int {
	if fd.video.Params.HalfPel {
		return 4
	}
	return 2
}

func (fd *frameDecoder) compensate(buf []uint8, ref *frame.Frame, cx, cy, w, h int, mv predict.MV) {
	if fd.video.Params.HalfPel {
		predict.CompensateHP(buf, ref, cx, cy, w, h, mv)
	} else {
		predict.Compensate(buf, ref, cx, cy, w, h, mv)
	}
}

func (fd *frameDecoder) compensateBi(buf []uint8, ref0, ref1 *frame.Frame, cx, cy, w, h int, mv0, mv1 predict.MV) {
	if fd.video.Params.HalfPel {
		predict.CompensateBiHP(buf, ref0, ref1, cx, cy, w, h, mv0, mv1)
	} else {
		predict.CompensateBi(buf, ref0, ref1, cx, cy, w, h, mv0, mv1)
	}
}

func (fd *frameDecoder) refFrame(codedIdx int) *frame.Frame {
	if !validFrameRef(codedIdx, len(fd.recRefs)) || fd.recRefs[codedIdx] == nil {
		return nil
	}
	return fd.recRefs[codedIdx]
}

func (fd *frameDecoder) run() {
	mbCols, mbRows := fd.rec.MBCols(), fd.rec.MBRows()
	defer func() {
		if fd.video.Params.Deblock {
			deblockFrame(fd.rec, fd.qps, mbCols)
		}
	}()
	fd.qps = make([]int, mbCols*mbRows)
	fd.mvRep = make([]predict.MV, mbCols*mbRows)
	fd.mvAvail = make([]bool, mbCols*mbRows)
	starts := fd.ef.SliceMBStart
	byteStarts := fd.ef.SliceByteStart
	if len(starts) == 0 {
		starts, byteStarts = []int{0}, []int{0}
	}
	for s := range starts {
		topMB := clampRange(starts[s], 0, mbCols*mbRows)
		endMB := mbCols * mbRows
		if s+1 < len(starts) {
			endMB = clampRange(starts[s+1], topMB, mbCols*mbRows)
		}
		byteStart := clampRange(byteStarts[s], 0, len(fd.ef.Payload))
		byteEnd := len(fd.ef.Payload)
		if s+1 < len(byteStarts) {
			byteEnd = clampRange(byteStarts[s+1], byteStart, len(fd.ef.Payload))
		}
		// Fresh entropy context per slice over its own payload span.
		fd.sr = newSymbolReader(fd.video.Params.Entropy, bitio.NewReader(fd.ef.Payload[byteStart:byteEnd]))
		fd.sliceTop = topMB / mbCols
		fd.bitBase = int64(byteStart) * 8
		sliceRecStart := len(fd.recs)
		concealed := false
		for m := topMB; m < endMB; m++ {
			if fd.opts.ConcealOnDesync && (concealed || fd.sr.Desynced()) {
				concealed = true
				fd.concealMB(m%mbCols, m/mbCols)
				if fd.record {
					fd.recs = append(fd.recs, MBRecord{MB: frame.MB{X: m % mbCols, Y: m / mbCols}, BitStart: fd.bitBase + fd.sr.BitPos()})
					fd.curRec = &fd.recs[len(fd.recs)-1]
				}
				continue
			}
			if fd.record {
				fd.recs = append(fd.recs, MBRecord{MB: frame.MB{X: m % mbCols, Y: m / mbCols}})
				fd.curRec = &fd.recs[len(fd.recs)-1]
				fd.curRec.BitStart = fd.bitBase + fd.sr.BitPos()
				if m == topMB {
					// The arithmetic decoder's prefetch belongs to the
					// slice's first macroblock.
					fd.curRec.BitStart = fd.bitBase
				}
			}
			fd.decodeMB(m%mbCols, m/mbCols)
		}
		if fd.record {
			// Bit lengths from consecutive starts; the slice's last MB
			// absorbs the termination bits, mirroring the encoder.
			sliceEndBit := int64(byteEnd) * 8
			for i := sliceRecStart; i < len(fd.recs); i++ {
				end := sliceEndBit
				if i+1 < len(fd.recs) {
					end = fd.recs[i+1].BitStart
				}
				if end < fd.recs[i].BitStart {
					end = fd.recs[i].BitStart
				}
				fd.recs[i].BitLen = end - fd.recs[i].BitStart
			}
		}
		if fd.opts.Observer != nil && fd.sr.Desynced() {
			fd.opts.Observer.Counter(obs.CtrResync, fd.video.Params.Entropy.String(), 1)
		}
	}
}

// Reanalyze rebuilds the per-macroblock analysis records (bit ranges and
// dependency footprints) of every frame by decoding the video, replacing
// v.Frames[i].MBs in place. This is how VideoApp operates on videos it did
// not encode itself — e.g. ones loaded with Unmarshal. Dependencies are
// exact for clean streams; CABAC bit ranges are attribution estimates
// accurate to the arithmetic decoder's few-bit lookahead.
func Reanalyze(v *Video) error {
	if v.W%frame.MBSize != 0 || v.H%frame.MBSize != 0 || v.W <= 0 || v.H <= 0 {
		return errFrameGeometry(v.W, v.H)
	}
	rec := make([]*frame.Frame, len(v.Frames))
	for i, ef := range v.Frames {
		fd := &frameDecoder{video: v, ef: ef, recRefs: rec, rec: frame.MustNew(v.W, v.H), record: true}
		fd.run()
		rec[i] = fd.rec
		ef.MBs = fd.recs
	}
	return nil
}

// addDep records one dependency while in recording mode.
func (fd *frameDecoder) addDep(refCoded, cx, cy, w, h int, mv predict.MV, share int) {
	if !fd.record || fd.curRec == nil || refCoded < 0 {
		return
	}
	fp := predict.Footprint(fd.rec.W, fd.rec.H, cx, cy, w, h, mv)
	if fd.video.Params.HalfPel {
		fp = predict.FootprintHP(fd.rec.W, fd.rec.H, cx, cy, w, h, mv)
	}
	for _, wr := range fp {
		fd.curRec.Deps = append(fd.curRec.Deps, CompDep{SrcFrame: refCoded, SrcMB: wr.MB, Pixels: wr.Pixels / share})
	}
}

func clampRange(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

func (fd *frameDecoder) decodeMB(mx, my int) {
	mbCols := fd.rec.MBCols()
	mbIdx := my*mbCols + mx
	refF := fd.refFrame(fd.ef.RefFwd)
	refB := fd.refFrame(fd.ef.RefBwd)
	predMV := mvPrediction(fd.mvRep, fd.mvAvail, mx, my, mbCols, fd.sliceTop)

	mbType := mbIntra
	if fd.ef.Type != FrameI {
		mbType = int(fd.sr.GetUVal(entropy.ClassMBType)) % numMBTypes
	}
	// A frame without a forward reference cannot code inter MBs; corrupt
	// types collapse to intra, keeping decode well-defined.
	if mbType != mbIntra && refF == nil {
		mbType = mbIntra
	}

	switch mbType {
	case mbSkip:
		skipQP := qpPrediction(fd.qps, mx, my, mbCols, fd.ef.BaseQP, fd.sliceTop)
		fd.qps[mbIdx] = skipQP
		fd.reconstructSkip(mx, my, refF, predMV)
		fd.addDep(fd.ef.RefFwd, mx*frame.MBSize, my*frame.MBSize, 16, 16, predMV, 1)
		if fd.record && fd.curRec != nil {
			fd.curRec.QP = skipQP
		}
		fd.mvRep[mbIdx] = predMV
		fd.mvAvail[mbIdx] = true
	case mbIntra:
		mode := predict.IntraMode(int(fd.sr.GetUVal(entropy.ClassIntraMode)) % predict.NumIntraModes)
		qp := fd.decodeQP(mx, my, mbIdx)
		pred := predict.IntraPredict16Avail(fd.rec, mx, my, mode, my > fd.sliceTop, mx > 0)
		var predCb, predCr [64]uint8
		chromaIntraPredict(predCb[:], predCr[:], fd.rec, mx, my, my > fd.sliceTop, mx > 0)
		fd.decodeResidualAndReconstruct(mx, my, pred[:], predCb[:], predCr[:], qp)
		if fd.record && fd.curRec != nil {
			fd.curRec.Intra = true
			fd.curRec.QP = qp
			for _, wr := range predict.IntraFootprintAvail(mx, my, mbCols, mode, my > fd.sliceTop, mx > 0) {
				fd.curRec.Deps = append(fd.curRec.Deps, CompDep{SrcFrame: fd.ef.CodedIdx, SrcMB: wr.MB, Pixels: wr.Pixels})
			}
		}
		fd.mvAvail[mbIdx] = false
	default:
		shape := mbTypeToShape(mbType)
		rects := predict.PartitionRects(shape)
		dirs := make([]int, len(rects))
		mvF := make([]predict.MV, len(rects))
		mvB := make([]predict.MV, len(rects))
		prevMV := predMV
		for i := range rects {
			dir := dirFwd
			if fd.ef.Type == FrameB {
				dir = int(fd.sr.GetUVal(entropy.ClassRefIdx)) % 3
				if refB == nil && dir != dirFwd {
					dir = dirFwd
				}
			}
			dirs[i] = dir
			switch dir {
			case dirBwd:
				d := fd.readMVD()
				mvB[i] = predict.ClampMV(prevMV.Add(d))
				prevMV = mvB[i]
			case dirBi:
				dF := fd.readMVD()
				mvF[i] = predict.ClampMV(prevMV.Add(dF))
				dB := fd.readMVD()
				mvB[i] = predict.ClampMV(mvF[i].Add(dB))
				prevMV = mvF[i]
			default:
				d := fd.readMVD()
				mvF[i] = predict.ClampMV(prevMV.Add(d))
				prevMV = mvF[i]
			}
		}
		qp := fd.decodeQP(mx, my, mbIdx)

		px, py := mx*frame.MBSize, my*frame.MBSize
		var predY [256]uint8
		for i, r := range rects {
			buf := make([]uint8, r.W*r.H)
			switch dirs[i] {
			case dirBwd:
				fd.compensate(buf, refB, px+r.X, py+r.Y, r.W, r.H, mvB[i])
				fd.addDep(fd.ef.RefBwd, px+r.X, py+r.Y, r.W, r.H, mvB[i], 1)
			case dirBi:
				fd.compensateBi(buf, refF, refB, px+r.X, py+r.Y, r.W, r.H, mvF[i], mvB[i])
				fd.addDep(fd.ef.RefFwd, px+r.X, py+r.Y, r.W, r.H, mvF[i], 2)
				fd.addDep(fd.ef.RefBwd, px+r.X, py+r.Y, r.W, r.H, mvB[i], 2)
			default:
				fd.compensate(buf, refF, px+r.X, py+r.Y, r.W, r.H, mvF[i])
				fd.addDep(fd.ef.RefFwd, px+r.X, py+r.Y, r.W, r.H, mvF[i], 1)
			}
			for y := 0; y < r.H; y++ {
				copy(predY[(r.Y+y)*16+r.X:(r.Y+y)*16+r.X+r.W], buf[y*r.W:(y+1)*r.W])
			}
		}
		var predCb, predCr [64]uint8
		if dirs[0] == dirBwd {
			chromaInterPredict(predCb[:], predCr[:], refB, mx, my, rects, mvB, fd.mvDiv())
		} else {
			chromaInterPredict(predCb[:], predCr[:], refF, mx, my, rects, mvF, fd.mvDiv())
		}
		fd.decodeResidualAndReconstruct(mx, my, predY[:], predCb[:], predCr[:], qp)
		if fd.record && fd.curRec != nil {
			fd.curRec.QP = qp
		}
		if dirs[0] == dirBwd {
			fd.mvRep[mbIdx] = mvB[0]
		} else {
			fd.mvRep[mbIdx] = mvF[0]
		}
		fd.mvAvail[mbIdx] = true
	}
}

func (fd *frameDecoder) readMVD() predict.MV {
	x := fd.sr.GetSVal(entropy.ClassMVX)
	y := fd.sr.GetSVal(entropy.ClassMVY)
	return predict.ClampMV(predict.MV{X: clamp16(x), Y: clamp16(y)})
}

func clamp16(v int32) int16 {
	if v > 1<<14 {
		return 1 << 14
	}
	if v < -(1 << 14) {
		return -(1 << 14)
	}
	return int16(v)
}

func (fd *frameDecoder) decodeQP(mx, my, mbIdx int) int {
	dqp := int(fd.sr.GetSVal(entropy.ClassDQP))
	if dqp > transform.MaxQP {
		dqp = transform.MaxQP
	}
	if dqp < -transform.MaxQP {
		dqp = -transform.MaxQP
	}
	pred := qpPrediction(fd.qps, mx, my, fd.rec.MBCols(), fd.ef.BaseQP, fd.sliceTop)
	qp := transform.ClampQP(pred + dqp)
	fd.qps[mbIdx] = qp
	return qp
}

func (fd *frameDecoder) reconstructSkip(mx, my int, refF *frame.Frame, mv predict.MV) {
	px, py := mx*frame.MBSize, my*frame.MBSize
	var buf [256]uint8
	fd.compensate(buf[:], refF, px, py, 16, 16, mv)
	for y := 0; y < 16; y++ {
		for x := 0; x < 16; x++ {
			fd.rec.SetLuma(px+x, py+y, buf[y*16+x])
		}
	}
	rects := []predict.Rect{{X: 0, Y: 0, W: 16, H: 16}}
	var predCb, predCr [64]uint8
	chromaInterPredict(predCb[:], predCr[:], refF, mx, my, rects, []predict.MV{mv}, fd.mvDiv())
	cx0, cy0 := mx*8, my*8
	cw, ch := fd.rec.W/2, fd.rec.H/2
	for y := 0; y < 8; y++ {
		for x := 0; x < 8; x++ {
			if cx0+x < cw && cy0+y < ch {
				fd.rec.Cb[(cy0+y)*cw+cx0+x] = predCb[y*8+x]
				fd.rec.Cr[(cy0+y)*cw+cx0+x] = predCr[y*8+x]
			}
		}
	}
}

func (fd *frameDecoder) decodeResidualAndReconstruct(mx, my int, predY, predCb, predCr []uint8, qp int) {
	px, py := mx*frame.MBSize, my*frame.MBSize
	hasResidual := fd.sr.GetFlag(entropy.ClassCBP)
	var levels [16]transform.Block
	var chromaLevels [8]transform.Block
	if hasResidual {
		for b := 0; b < 16; b++ {
			levels[b] = readResidualBlock(fd.sr)
		}
		for b := 0; b < 8; b++ {
			chromaLevels[b] = readResidualBlock(fd.sr)
		}
	}
	for by := 0; by < 4; by++ {
		for bx := 0; bx < 4; bx++ {
			recon := transform.Reconstruct(&levels[by*4+bx], qp)
			for y := 0; y < 4; y++ {
				for x := 0; x < 4; x++ {
					ox, oy := bx*4+x, by*4+y
					fd.rec.SetLuma(px+ox, py+oy, frame.ClampU8(int(predY[oy*16+ox])+int(recon[y*4+x])))
				}
			}
		}
	}
	cx0, cy0 := mx*8, my*8
	cw, ch := fd.rec.W/2, fd.rec.H/2
	for plane := 0; plane < 2; plane++ {
		dst, prd := fd.rec.Cb, predCb
		if plane == 1 {
			dst, prd = fd.rec.Cr, predCr
		}
		for by := 0; by < 2; by++ {
			for bx := 0; bx < 2; bx++ {
				recon := transform.Reconstruct(&chromaLevels[plane*4+by*2+bx], qp)
				for y := 0; y < 4; y++ {
					for x := 0; x < 4; x++ {
						sx, sy := cx0+bx*4+x, cy0+by*4+y
						if sx < cw && sy < ch {
							i := (by*4+y)*8 + bx*4 + x
							dst[sy*cw+sx] = frame.ClampU8(int(prd[i]) + int(recon[y*4+x]))
						}
					}
				}
			}
		}
	}
}

// concealMB fills a macroblock by copying the co-located content from the
// forward reference frame, or mid-gray when none exists — standard temporal
// error concealment.
func (fd *frameDecoder) concealMB(mx, my int) {
	px, py := mx*frame.MBSize, my*frame.MBSize
	refF := fd.refFrame(fd.ef.RefFwd)
	if refF == nil {
		for y := 0; y < 16; y++ {
			for x := 0; x < 16; x++ {
				fd.rec.SetLuma(px+x, py+y, 128)
			}
		}
		cw, ch := fd.rec.W/2, fd.rec.H/2
		for y := 0; y < 8; y++ {
			for x := 0; x < 8; x++ {
				cx, cy := mx*8+x, my*8+y
				if cx < cw && cy < ch {
					fd.rec.Cb[cy*cw+cx] = 128
					fd.rec.Cr[cy*cw+cx] = 128
				}
			}
		}
		return
	}
	for y := 0; y < 16; y++ {
		for x := 0; x < 16; x++ {
			fd.rec.SetLuma(px+x, py+y, refF.LumaAt(px+x, py+y))
		}
	}
	cw, ch := fd.rec.W/2, fd.rec.H/2
	for y := 0; y < 8; y++ {
		for x := 0; x < 8; x++ {
			cx, cy := mx*8+x, my*8+y
			if cx < cw && cy < ch {
				cb, cr := refF.ChromaAt(cx, cy)
				fd.rec.Cb[cy*cw+cx] = cb
				fd.rec.Cr[cy*cw+cx] = cr
			}
		}
	}
}
