package codec

import (
	"math/rand"
	"testing"

	"videoapp/internal/bitio"
	"videoapp/internal/quality"
)

func TestLayeredImprovesOnBase(t *testing.T) {
	seq := testSeq(t, "crew_like", 96, 64, 8)
	p := testParams()
	p.CRF = 30
	lv, err := EncodeLayered(seq, p, 8)
	if err != nil {
		t.Fatal(err)
	}
	base, err := Decode(lv.Base)
	if err != nil {
		t.Fatal(err)
	}
	enhanced, err := DecodeLayered(lv)
	if err != nil {
		t.Fatal(err)
	}
	pBase, _ := quality.PSNR(seq, base)
	pEnh, _ := quality.PSNR(seq, enhanced)
	if pEnh <= pBase+0.5 {
		t.Fatalf("enhancement adds only %.2f dB (base %.2f)", pEnh-pBase, pBase)
	}
}

func TestLayeredRejectsBadDelta(t *testing.T) {
	seq := testSeq(t, "news_like", 64, 48, 3)
	if _, err := EncodeLayered(seq, testParams(), 0); err == nil {
		t.Fatal("delta 0 must fail")
	}
	if _, err := EncodeLayered(seq, testParams(), 30); err == nil {
		t.Fatal("delta 30 must fail")
	}
}

func TestEnhancementErrorsStayInFrame(t *testing.T) {
	// The layered design's whole point: corrupting one frame's enhancement
	// cannot damage any other frame (no frame references enhanced pixels).
	seq := testSeq(t, "crew_like", 96, 64, 8)
	p := testParams()
	p.CRF = 30
	lv, err := EncodeLayered(seq, p, 8)
	if err != nil {
		t.Fatal(err)
	}
	clean, err := DecodeLayered(lv)
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt frame 3's enhancement heavily.
	damagedEnh := append([]byte(nil), lv.Enh[3]...)
	rng := rand.New(rand.NewSource(1))
	for k := 0; k < 50; k++ {
		bitio.FlipBit(damagedEnh, rng.Int63n(int64(len(damagedEnh))*8))
	}
	orig3 := lv.Enh[3]
	lv.Enh[3] = damagedEnh
	corrupt, err := DecodeLayered(lv)
	if err != nil {
		t.Fatal(err)
	}
	lv.Enh[3] = orig3
	damagedDisplay := lv.Base.Frames[3].DisplayIdx
	for d := range clean.Frames {
		same := true
		for i := range clean.Frames[d].Y {
			if clean.Frames[d].Y[i] != corrupt.Frames[d].Y[i] {
				same = false
				break
			}
		}
		if d == damagedDisplay && same {
			t.Fatal("heavy corruption must damage the refined frame")
		}
		if d != damagedDisplay && !same {
			t.Fatalf("enhancement error leaked into frame %d", d)
		}
	}
}

func TestEnhancementMBRecordsCoverPayload(t *testing.T) {
	seq := testSeq(t, "parkrun_like", 64, 48, 4)
	lv, err := EncodeLayered(seq, testParams(), 6)
	if err != nil {
		t.Fatal(err)
	}
	for i, mbs := range lv.EnhMBs {
		var total int64
		for _, mb := range mbs {
			if mb.BitLen < 0 {
				t.Fatal("negative length")
			}
			total += mb.BitLen
		}
		if total != int64(len(lv.Enh[i]))*8 {
			t.Fatalf("frame %d: records cover %d of %d bits", i, total, len(lv.Enh[i])*8)
		}
	}
}

func TestLayeredBaseUnchanged(t *testing.T) {
	// The base layer of a layered encode must be bit-identical to a plain
	// encode: the enhancement is strictly additive.
	seq := testSeq(t, "news_like", 64, 48, 5)
	p := testParams()
	plain, err := Encode(seq, p)
	if err != nil {
		t.Fatal(err)
	}
	lv, err := EncodeLayered(seq, p, 6)
	if err != nil {
		t.Fatal(err)
	}
	for i := range plain.Frames {
		a, b := plain.Frames[i].Payload, lv.Base.Frames[i].Payload
		if len(a) != len(b) {
			t.Fatalf("frame %d base payload length", i)
		}
		for j := range a {
			if a[j] != b[j] {
				t.Fatalf("frame %d base payload differs", i)
			}
		}
	}
}

func TestLayeredStorageSplit(t *testing.T) {
	seq := testSeq(t, "crew_like", 96, 64, 6)
	p := testParams()
	p.CRF = 30
	lv, err := EncodeLayered(seq, p, 8)
	if err != nil {
		t.Fatal(err)
	}
	if lv.EnhBits() <= 0 {
		t.Fatal("enhancement layer empty")
	}
	// The enhancement carries finer-grained detail: typically larger than
	// the heavily-quantized base at these settings.
	t.Logf("base %d bits, enhancement %d bits", lv.Base.TotalPayloadBits(), lv.EnhBits())
}
