package codec

import (
	"testing"

	"videoapp/internal/synth"
)

// benchVideo encodes a small clip once; Clone benchmarks then measure pure
// copy cost, the per-round-trip overhead the §6.4 Monte-Carlo loop multiplies
// by runs × videos × design points.
func benchVideo(b *testing.B) *Video {
	b.Helper()
	cfg, _ := synth.PresetByName("crew_like")
	seq := synth.Generate(cfg.ScaleTo(96, 64, 10))
	p := DefaultParams()
	p.GOPSize = 10
	p.SearchRange = 8
	v, err := Encode(seq, p)
	if err != nil {
		b.Fatal(err)
	}
	return v
}

// BenchmarkClone measures the deep copy StoreContext takes per round trip.
func BenchmarkClone(b *testing.B) {
	v := benchVideo(b)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c := v.Clone()
		if len(c.Frames) != len(v.Frames) {
			b.Fatal("clone lost frames")
		}
	}
}

// BenchmarkClonePooled measures the steady-state pooled copy: the Release on
// each iteration is what lets the next clone reuse the arena, the pattern
// StoreContext-driven Monte-Carlo loops follow.
func BenchmarkClonePooled(b *testing.B) {
	v := benchVideo(b)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c := v.ClonePooled()
		if len(c.Frames) != len(v.Frames) {
			b.Fatal("clone lost frames")
		}
		c.Release()
	}
}
