package codec

import (
	"fmt"

	"videoapp/internal/frame"
	"videoapp/internal/transform"
)

// Average-bitrate (ABR) rate control: instead of the fixed CRF→QP mapping,
// the encoder tracks a virtual buffer of produced-vs-budgeted bits and
// nudges the quantizer to hold a target bitrate — the second of the two
// rate-control styles the paper's §6.3 discussion contrasts with CRF.

// RateControl configures ABR encoding.
type RateControl struct {
	// TargetBitsPerFrame is the bit budget per coded frame.
	TargetBitsPerFrame int64
	// MaxQPDelta bounds how far the controller may move the quantizer away
	// from the CRF baseline in either direction.
	MaxQPDelta int
}

// EncodeABR encodes with closed-loop rate control toward the target
// bitrate (bits per second at the sequence's frame rate). The CRF in p
// seeds the quantizer; the controller then adapts it frame by frame.
func EncodeABR(seq *frame.Sequence, p Params, targetBitsPerSecond int64) (*Video, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if len(seq.Frames) == 0 {
		return nil, fmt.Errorf("codec: empty sequence")
	}
	if targetBitsPerSecond <= 0 {
		return nil, fmt.Errorf("codec: target bitrate must be positive")
	}
	fps := seq.FPS
	if fps <= 0 {
		fps = 25
	}
	rc := RateControl{
		TargetBitsPerFrame: targetBitsPerSecond / int64(fps),
		MaxQPDelta:         8,
	}
	if p.BFrames != 0 {
		return nil, fmt.Errorf("codec: ABR requires BFrames == 0")
	}

	w, h := seq.W(), seq.H()
	if w%frame.MBSize != 0 || h%frame.MBSize != 0 {
		return nil, errFrameGeometry(w, h)
	}
	v := &Video{Params: p, W: w, H: h, FPS: seq.FPS}
	rec := make([]*frame.Frame, len(seq.Frames))
	var debt int64 // bits produced minus budget so far
	qpAdj := 0
	for d := 0; d < len(seq.Frames); d++ {
		ft := FrameP
		if d%p.GOPSize == 0 {
			ft = FrameI
		}
		ef := &EncodedFrame{Type: ft, CodedIdx: d, DisplayIdx: d, RefFwd: -1, RefBwd: -1}
		params := p
		params.CRF = transform.ClampQP(p.CRF + qpAdj)
		ef.BaseQP = baseQPFor(ft, params)
		if ft == FrameP {
			ef.RefFwd = d - 1
		}
		fe := &frameEncoder{
			params:  params,
			video:   v,
			ef:      ef,
			orig:    seq.Frames[d],
			rec:     frame.MustNewPooled(w, h),
			recRefs: rec,
		}
		fe.run()
		rec[d] = fe.rec
		v.Frames = append(v.Frames, ef)

		// Proportional controller on the accumulated debt: one QP step per
		// half-frame-budget of debt, bounded by MaxQPDelta. I frames are
		// budgeted at 4x a P frame's share, the conventional ratio.
		budget := rc.TargetBitsPerFrame
		if ft == FrameI {
			budget *= 4
		}
		debt += ef.PayloadBits() - budget
		qpAdj = int(debt / maxI64(rc.TargetBitsPerFrame/2, 1))
		if qpAdj > rc.MaxQPDelta {
			qpAdj = rc.MaxQPDelta
		}
		if qpAdj < -rc.MaxQPDelta {
			qpAdj = -rc.MaxQPDelta
		}
	}
	// Reconstructed frames never leave EncodeABR; recycle their planes.
	for _, r := range rec {
		frame.Recycle(r)
	}
	return v, nil
}

func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
