package codec

import (
	"fmt"

	"videoapp/internal/bitio"
	"videoapp/internal/entropy"
	"videoapp/internal/frame"
	"videoapp/internal/predict"
	"videoapp/internal/transform"
)

// Encode compresses the sequence with the given parameters, producing the
// coded video together with the per-macroblock records consumed by the
// VideoApp dependency analysis.
func Encode(seq *frame.Sequence, p Params) (*Video, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if len(seq.Frames) == 0 {
		return nil, fmt.Errorf("codec: empty sequence")
	}
	w, h := seq.W(), seq.H()
	if w%frame.MBSize != 0 || h%frame.MBSize != 0 {
		return nil, errFrameGeometry(w, h)
	}
	v := &Video{Params: p, W: w, H: h, FPS: seq.FPS}
	order := codedOrder(len(seq.Frames), p)
	// rec holds reconstructed frames by coded index; displayToCoded maps
	// display positions of already-coded frames.
	rec := make([]*frame.Frame, len(order))
	displayToCoded := make(map[int]int, len(order))
	for codedIdx, disp := range order {
		ft := frameTypeOf(disp.display, len(seq.Frames), p)
		ef := &EncodedFrame{
			Type:       ft,
			CodedIdx:   codedIdx,
			DisplayIdx: disp.display,
			RefFwd:     -1,
			RefBwd:     -1,
		}
		ef.BaseQP = baseQPFor(ft, p)
		switch ft {
		case FrameP:
			ef.RefFwd = nearestCodedBefore(displayToCoded, disp.display, p)
		case FrameB:
			ef.RefFwd = nearestCodedBefore(displayToCoded, disp.display, p)
			ef.RefBwd = nearestCodedAfter(displayToCoded, disp.display)
		}
		fe := &frameEncoder{
			params:  p,
			video:   v,
			ef:      ef,
			orig:    seq.Frames[disp.display],
			rec:     frame.MustNewPooled(w, h),
			recRefs: rec,
		}
		fe.run()
		rec[codedIdx] = fe.rec
		displayToCoded[disp.display] = codedIdx
		v.Frames = append(v.Frames, ef)
	}
	// Reconstructed frames never leave Encode; recycle their planes.
	for _, r := range rec {
		frame.Recycle(r)
	}
	return v, nil
}

type codedEntry struct{ display int }

// codedOrder computes the coded (stream) order of display frames: each
// anchor first, then the B frames that precede it in display order.
func codedOrder(n int, p Params) []codedEntry {
	var order []codedEntry
	if p.BFrames == 0 {
		for d := 0; d < n; d++ {
			order = append(order, codedEntry{d})
		}
		return order
	}
	prevAnchor := -1
	for d := 0; d < n; d++ {
		if !isAnchor(d, p) {
			continue
		}
		order = append(order, codedEntry{d})
		if p.BReference {
			// Referenced Bs are coded in display order between anchors.
			for b := prevAnchor + 1; b < d; b++ {
				order = append(order, codedEntry{b})
			}
		} else {
			for b := prevAnchor + 1; b < d; b++ {
				order = append(order, codedEntry{b})
			}
		}
		prevAnchor = d
	}
	// Trailing frames after the last anchor are coded as P frames.
	for d := prevAnchor + 1; d < n; d++ {
		order = append(order, codedEntry{d})
	}
	return order
}

func isAnchor(display int, p Params) bool {
	return display%(p.BFrames+1) == 0
}

func frameTypeOf(display, n int, p Params) FrameType {
	if display%p.GOPSize == 0 {
		return FrameI
	}
	if p.BFrames > 0 && !isAnchor(display, p) {
		// Trailing frames past the final anchor become P.
		lastAnchor := (n - 1) / (p.BFrames + 1) * (p.BFrames + 1)
		if display > lastAnchor {
			return FrameP
		}
		return FrameB
	}
	return FrameP
}

func baseQPFor(t FrameType, p Params) int {
	switch t {
	case FrameI:
		return transform.ClampQP(p.CRF - 3)
	case FrameB:
		return transform.ClampQP(p.CRF + 2)
	default:
		return transform.ClampQP(p.CRF)
	}
}

// nearestCodedBefore finds the coded index of the closest already-coded
// frame displayed before d that is allowed as a reference.
func nearestCodedBefore(d2c map[int]int, d int, p Params) int {
	for disp := d - 1; disp >= 0; disp-- {
		if ci, ok := d2c[disp]; ok {
			if !p.BReference && !isAnchor(disp, p) && p.BFrames > 0 {
				continue
			}
			return ci
		}
	}
	return -1
}

func nearestCodedAfter(d2c map[int]int, d int) int {
	best, bestDisp := -1, 1<<30
	for disp, ci := range d2c {
		if disp > d && disp < bestDisp {
			best, bestDisp = ci, disp
		}
	}
	return best
}

// frameEncoder carries per-frame encoding state.
type frameEncoder struct {
	params  Params
	video   *Video
	ef      *EncodedFrame
	orig    *frame.Frame
	rec     *frame.Frame
	recRefs []*frame.Frame

	sw      entropy.SymbolWriter
	qps     []int
	mvRep   []predict.MV
	mvAvail []bool
	// sliceTop is the first macroblock row of the slice being coded;
	// prediction never crosses it.
	sliceTop int
	// biBuf and partBuf are per-encoder scratch for candidate and partition
	// predictions (a partition is at most one 16×16 macroblock), hoisted out
	// of the search loops so candidate evaluation never allocates.
	biBuf   [frame.MBSize * frame.MBSize]uint8
	partBuf [frame.MBSize * frame.MBSize]uint8
}

func (fe *frameEncoder) run() {
	w := bitio.NewWriter()
	mbCols, mbRows := fe.orig.MBCols(), fe.orig.MBRows()
	fe.qps = make([]int, mbCols*mbRows)
	fe.mvRep = make([]predict.MV, mbCols*mbRows)
	fe.mvAvail = make([]bool, mbCols*mbRows)
	nSlices := fe.params.slices()
	if nSlices > mbRows {
		nSlices = mbRows
	}
	for s := 0; s < nSlices; s++ {
		topRow := s * mbRows / nSlices
		botRow := (s + 1) * mbRows / nSlices
		fe.sliceTop = topRow
		fe.ef.SliceMBStart = append(fe.ef.SliceMBStart, topRow*mbCols)
		fe.ef.SliceByteStart = append(fe.ef.SliceByteStart, w.Len())
		// Each slice has its own entropy context: a fresh coder over the
		// shared byte-aligned output.
		fe.sw = newSymbolWriter(fe.params.Entropy, w)
		for my := topRow; my < botRow; my++ {
			for mx := 0; mx < mbCols; mx++ {
				start := fe.sw.BitPos()
				rec := fe.encodeMB(mx, my)
				rec.BitStart = start
				rec.BitLen = fe.sw.BitPos() - start
				fe.ef.MBs = append(fe.ef.MBs, rec)
			}
		}
		fe.sw.Flush()
		// Flush/termination bits are charged to the slice's last macroblock
		// so every payload bit belongs to exactly one importance region.
		if n := len(fe.ef.MBs); n > 0 {
			last := &fe.ef.MBs[n-1]
			last.BitLen = w.BitPos() - last.BitStart
		}
	}
	fe.ef.Payload = w.Bytes()
	if fe.params.Deblock {
		deblockFrame(fe.rec, fe.qps, mbCols)
	}
}

// mvDiv is the divisor converting motion vector units to chroma pixels.
func (fe *frameEncoder) mvDiv() int {
	if fe.params.HalfPel {
		return 4
	}
	return 2
}

func (fe *frameEncoder) compensate(buf []uint8, ref *frame.Frame, cx, cy, w, h int, mv predict.MV) {
	if fe.params.HalfPel {
		predict.CompensateHP(buf, ref, cx, cy, w, h, mv)
	} else {
		predict.Compensate(buf, ref, cx, cy, w, h, mv)
	}
}

func (fe *frameEncoder) compensateBi(buf []uint8, ref0, ref1 *frame.Frame, cx, cy, w, h int, mv0, mv1 predict.MV) {
	if fe.params.HalfPel {
		predict.CompensateBiHP(buf, ref0, ref1, cx, cy, w, h, mv0, mv1)
	} else {
		predict.CompensateBi(buf, ref0, ref1, cx, cy, w, h, mv0, mv1)
	}
}

func (fe *frameEncoder) motionSearch(cur, ref *frame.Frame, cx, cy, w, h int, seed predict.MV, sr int) (predict.MV, int) {
	if fe.params.HalfPel {
		return predict.MotionSearchHP(cur, ref, cx, cy, w, h, seed, sr)
	}
	return predict.MotionSearch(cur, ref, cx, cy, w, h, seed, sr)
}

func (fe *frameEncoder) footprint(cx, cy, w, h int, mv predict.MV) []predict.WeightedRef {
	if fe.params.HalfPel {
		return predict.FootprintHP(fe.orig.W, fe.orig.H, cx, cy, w, h, mv)
	}
	return predict.Footprint(fe.orig.W, fe.orig.H, cx, cy, w, h, mv)
}

func (fe *frameEncoder) refFrame(codedIdx int) *frame.Frame {
	if codedIdx < 0 || codedIdx >= len(fe.recRefs) || fe.recRefs[codedIdx] == nil {
		return nil
	}
	return fe.recRefs[codedIdx]
}

// interCandidate is one evaluated motion configuration.
type interCandidate struct {
	mbType int
	rects  []predict.Rect
	dirs   []int        // per partition (B frames)
	mvF    []predict.MV // forward MV per partition (valid per dir)
	mvB    []predict.MV // backward MV per partition
	cost   int
}

func (fe *frameEncoder) encodeMB(mx, my int) MBRecord {
	mbCols := fe.orig.MBCols()
	mbIdx := my*mbCols + mx
	rec := MBRecord{MB: frame.MB{X: mx, Y: my}}

	qp := fe.mbQP(mx, my)
	fe.qps[mbIdx] = qp

	refF := fe.refFrame(fe.ef.RefFwd)
	refB := fe.refFrame(fe.ef.RefBwd)
	predMV := mvPrediction(fe.mvRep, fe.mvAvail, mx, my, mbCols, fe.sliceTop)

	intraMode, intraPred, intraSAD := predict.BestIntraModeAvail(fe.orig, fe.rec, mx, my, my > fe.sliceTop, mx > 0)

	var inter *interCandidate
	if fe.ef.Type != FrameI && refF != nil {
		inter = fe.searchInter(mx, my, predMV, refF, refB)
	}

	// Mode decision: intra carries a fixed penalty approximating its larger
	// coded size; scene changes still select it.
	const intraPenalty = 512
	useIntra := fe.ef.Type == FrameI || inter == nil || intraSAD+intraPenalty < inter.cost

	if useIntra {
		fe.codeIntraMB(&rec, mx, my, intraMode, &intraPred, qp, mbIdx)
		return rec
	}
	fe.codeInterMB(&rec, mx, my, inter, predMV, refF, refB, qp, mbIdx)
	return rec
}

// mbQP selects this macroblock's quantizer: the frame base QP plus an
// activity-driven offset when adaptive quantization is enabled.
func (fe *frameEncoder) mbQP(mx, my int) int {
	qp := fe.ef.BaseQP
	if !fe.params.ActivityAQ {
		return qp
	}
	px, py := mx*frame.MBSize, my*frame.MBSize
	var sum, sum2 int64
	for y := 0; y < 16; y++ {
		for x := 0; x < 16; x++ {
			v := int64(fe.orig.LumaAt(px+x, py+y))
			sum += v
			sum2 += v * v
		}
	}
	mean := sum / 256
	variance := sum2/256 - mean*mean
	switch {
	case variance > 2000:
		qp += 2 // busy areas hide quantization noise
	case variance < 100:
		qp -= 2 // flat areas show banding; spend bits here
	}
	return transform.ClampQP(qp)
}

func (fe *frameEncoder) searchInter(mx, my int, predMV predict.MV, refF, refB *frame.Frame) *interCandidate {
	px, py := mx*frame.MBSize, my*frame.MBSize
	sr := fe.params.SearchRange
	searchShape := func(shape predict.PartitionShape) *interCandidate {
		rects := predict.PartitionRects(shape)
		cand := &interCandidate{
			mbType: shapeToMBType(shape),
			rects:  rects,
			dirs:   make([]int, len(rects)),
			mvF:    make([]predict.MV, len(rects)),
			mvB:    make([]predict.MV, len(rects)),
		}
		// Each extra partition costs bits; penalize finer shapes.
		cand.cost = 24 * (len(rects) - 1)
		seed := predMV
		for i, r := range rects {
			mvf, costF := fe.motionSearch(fe.orig, refF, px+r.X, py+r.Y, r.W, r.H, seed, sr)
			dir, mv0, mv1, cost := dirFwd, mvf, predict.MV{}, costF
			if fe.ef.Type == FrameB && refB != nil {
				mvb, costB := fe.motionSearch(fe.orig, refB, px+r.X, py+r.Y, r.W, r.H, seed, sr)
				if costB < cost {
					dir, mv0, mv1, cost = dirBwd, mvb, predict.MV{}, costB
				}
				// Bi-prediction: average of both best vectors. The SAD
				// terminates early once it cannot beat cost-8; the strict
				// comparison rejects partial sums exactly as it would the
				// full SAD.
				bi := fe.biBuf[:r.W*r.H]
				fe.compensateBi(bi, refF, refB, px+r.X, py+r.Y, r.W, r.H, mvf, mvb)
				biSAD := predict.SADAgainstLimit(fe.orig, px+r.X, py+r.Y, r.W, r.H, bi, cost-8)
				if biCost := biSAD + 8; biCost < cost {
					dir, mv0, mv1, cost = dirBi, mvf, mvb, biCost
				}
			}
			cand.dirs[i] = dir
			cand.mvF[i] = mv0
			cand.mvB[i] = mv1
			cand.cost += cost
			seed = mv0
		}
		return cand
	}

	best := searchShape(predict.Part16x16)
	// Coarse-to-fine shape evaluation, pruned by per-pixel cost thresholds.
	if best.cost > 256*3 {
		for _, s := range []predict.PartitionShape{predict.Part16x8, predict.Part8x16} {
			if c := searchShape(s); c.cost < best.cost {
				best = c
			}
		}
	}
	if best.cost > 256*5 {
		if c := searchShape(predict.Part8x8); c.cost < best.cost {
			best = c
		}
	}
	if best.cost > 256*8 {
		for _, s := range []predict.PartitionShape{predict.Part8x4, predict.Part4x8, predict.Part4x4} {
			if c := searchShape(s); c.cost < best.cost {
				best = c
			}
		}
	}
	return best
}

func (fe *frameEncoder) codeIntraMB(rec *MBRecord, mx, my int, mode predict.IntraMode, pred *[256]uint8, qp, mbIdx int) {
	rec.Intra = true
	rec.QP = qp
	if fe.ef.Type != FrameI {
		fe.sw.PutUVal(entropy.ClassMBType, mbIntra)
	}
	fe.sw.PutUVal(entropy.ClassIntraMode, uint32(mode))
	fe.codeDQP(mx, my, qp)

	// Intra reference footprint: spatial dependency on neighbor MBs.
	for _, wr := range predict.IntraFootprintAvail(mx, my, fe.orig.MBCols(), mode, my > fe.sliceTop, mx > 0) {
		rec.Deps = append(rec.Deps, CompDep{SrcFrame: fe.ef.CodedIdx, SrcMB: wr.MB, Pixels: wr.Pixels})
	}

	// Chroma intra prediction.
	var predCb, predCr [64]uint8
	chromaIntraPredict(predCb[:], predCr[:], fe.rec, mx, my, my > fe.sliceTop, mx > 0)

	fe.codeResidualAndReconstruct(mx, my, pred[:], predCb[:], predCr[:], qp, true)
	fe.mvAvail[mbIdx] = false
}

func (fe *frameEncoder) codeInterMB(rec *MBRecord, mx, my int, cand *interCandidate, predMV predict.MV, refF, refB *frame.Frame, qp, mbIdx int) {
	px, py := mx*frame.MBSize, my*frame.MBSize
	mbCols := fe.orig.MBCols()

	// Build the luma prediction and dependency footprints.
	var predY [256]uint8
	for i, r := range cand.rects {
		buf := fe.partBuf[:r.W*r.H]
		switch cand.dirs[i] {
		case dirBwd:
			fe.compensate(buf, refB, px+r.X, py+r.Y, r.W, r.H, cand.mvB[i])
			fe.addDeps(rec, fe.ef.RefBwd, px+r.X, py+r.Y, r.W, r.H, cand.mvB[i], 1)
		case dirBi:
			fe.compensateBi(buf, refF, refB, px+r.X, py+r.Y, r.W, r.H, cand.mvF[i], cand.mvB[i])
			fe.addDeps(rec, fe.ef.RefFwd, px+r.X, py+r.Y, r.W, r.H, cand.mvF[i], 2)
			fe.addDeps(rec, fe.ef.RefBwd, px+r.X, py+r.Y, r.W, r.H, cand.mvB[i], 2)
		default:
			fe.compensate(buf, refF, px+r.X, py+r.Y, r.W, r.H, cand.mvF[i])
			fe.addDeps(rec, fe.ef.RefFwd, px+r.X, py+r.Y, r.W, r.H, cand.mvF[i], 1)
		}
		for y := 0; y < r.H; y++ {
			copy(predY[(r.Y+y)*16+r.X:(r.Y+y)*16+r.X+r.W], buf[y*r.W:(y+1)*r.W])
		}
	}

	// Quantize the residual to test for skip (P frames, 16x16, no MV delta).
	levels, allZero := fe.quantizeLuma(px, py, predY[:], qp, false)
	var predCb, predCr [64]uint8
	if cand.dirs[0] == dirBwd {
		chromaInterPredict(predCb[:], predCr[:], refB, mx, my, cand.rects, cand.mvB, fe.mvDiv())
	} else {
		chromaInterPredict(predCb[:], predCr[:], refF, mx, my, cand.rects, cand.mvF, fe.mvDiv())
	}
	chromaLevels, chromaZero := fe.quantizeChroma(mx, my, predCb[:], predCr[:], qp, false)

	canSkip := fe.ef.Type == FrameP && cand.mbType == mbInter16 &&
		cand.mvF[0] == predMV && allZero && chromaZero
	if canSkip {
		fe.sw.PutUVal(entropy.ClassMBType, mbSkip)
		// No delta-QP is coded for skip; encoder and decoder both fall back
		// to the neighborhood prediction. The residual is zero, so the QP
		// value itself does not affect reconstruction.
		skipQP := qpPrediction(fe.qps, mx, my, mbCols, fe.ef.BaseQP, fe.sliceTop)
		fe.qps[mbIdx] = skipQP
		rec.QP = skipQP
		fe.reconstructInter(mx, my, predY[:], predCb[:], predCr[:], levels, chromaLevels, skipQP)
		fe.mvRep[mbIdx] = predMV
		fe.mvAvail[mbIdx] = true
		return
	}

	fe.sw.PutUVal(entropy.ClassMBType, uint32(cand.mbType))
	prevMV := predMV
	for i := range cand.rects {
		if fe.ef.Type == FrameB {
			fe.sw.PutUVal(entropy.ClassRefIdx, uint32(cand.dirs[i]))
		}
		switch cand.dirs[i] {
		case dirBwd:
			d := cand.mvB[i].Sub(prevMV)
			fe.sw.PutSVal(entropy.ClassMVX, int32(d.X))
			fe.sw.PutSVal(entropy.ClassMVY, int32(d.Y))
			prevMV = cand.mvB[i]
		case dirBi:
			dF := cand.mvF[i].Sub(prevMV)
			fe.sw.PutSVal(entropy.ClassMVX, int32(dF.X))
			fe.sw.PutSVal(entropy.ClassMVY, int32(dF.Y))
			dB := cand.mvB[i].Sub(cand.mvF[i])
			fe.sw.PutSVal(entropy.ClassMVX, int32(dB.X))
			fe.sw.PutSVal(entropy.ClassMVY, int32(dB.Y))
			prevMV = cand.mvF[i]
		default:
			d := cand.mvF[i].Sub(prevMV)
			fe.sw.PutSVal(entropy.ClassMVX, int32(d.X))
			fe.sw.PutSVal(entropy.ClassMVY, int32(d.Y))
			prevMV = cand.mvF[i]
		}
	}
	fe.codeDQP(mx, my, qp)
	rec.QP = qp

	hasResidual := !(allZero && chromaZero)
	fe.sw.PutFlag(entropy.ClassCBP, hasResidual)
	if hasResidual {
		for b := 0; b < 16; b++ {
			writeResidualBlock(fe.sw, &levels[b])
		}
		for b := 0; b < 8; b++ {
			writeResidualBlock(fe.sw, &chromaLevels[b])
		}
	}
	fe.reconstructInter(mx, my, predY[:], predCb[:], predCr[:], levels, chromaLevels, qp)
	fe.mvRep[mbIdx] = firstMV(cand)
	fe.mvAvail[mbIdx] = true
}

func firstMV(cand *interCandidate) predict.MV {
	if cand.dirs[0] == dirBwd {
		return cand.mvB[0]
	}
	return cand.mvF[0]
}

// addDeps records compensation dependencies of a partition; share divides the
// pixel weights (2 for bi-prediction, which draws half its content from each
// reference).
func (fe *frameEncoder) addDeps(rec *MBRecord, refCoded int, cx, cy, w, h int, mv predict.MV, share int) {
	if refCoded < 0 {
		return
	}
	for _, wr := range fe.footprint(cx, cy, w, h, mv) {
		rec.Deps = append(rec.Deps, CompDep{SrcFrame: refCoded, SrcMB: wr.MB, Pixels: wr.Pixels / share})
	}
}

func (fe *frameEncoder) codeDQP(mx, my, qp int) {
	pred := qpPrediction(fe.qps, mx, my, fe.orig.MBCols(), fe.ef.BaseQP, fe.sliceTop)
	fe.sw.PutSVal(entropy.ClassDQP, int32(qp-pred))
}

// quantizeLuma transforms and quantizes the 16 luma 4×4 blocks of the MB.
func (fe *frameEncoder) quantizeLuma(px, py int, pred []uint8, qp int, intra bool) (levels [16]transform.Block, allZero bool) {
	allZero = true
	for by := 0; by < 4; by++ {
		for bx := 0; bx < 4; bx++ {
			var res transform.Block
			for y := 0; y < 4; y++ {
				for x := 0; x < 4; x++ {
					ox, oy := bx*4+x, by*4+y
					res[y*4+x] = int32(fe.orig.LumaAt(px+ox, py+oy)) - int32(pred[oy*16+ox])
				}
			}
			lv := transform.QuantizeOnly(&res, qp, intra)
			levels[by*4+bx] = lv
			if lv != (transform.Block{}) {
				allZero = false
			}
		}
	}
	return levels, allZero
}

// quantizeChroma quantizes the 4+4 chroma 4×4 blocks (Cb then Cr).
func (fe *frameEncoder) quantizeChroma(mx, my int, predCb, predCr []uint8, qp int, intra bool) (levels [8]transform.Block, allZero bool) {
	allZero = true
	cx0, cy0 := mx*8, my*8
	cw := fe.orig.W / 2
	for plane := 0; plane < 2; plane++ {
		src, prd := fe.orig.Cb, predCb
		if plane == 1 {
			src, prd = fe.orig.Cr, predCr
		}
		for by := 0; by < 2; by++ {
			for bx := 0; bx < 2; bx++ {
				var res transform.Block
				for y := 0; y < 4; y++ {
					for x := 0; x < 4; x++ {
						sx, sy := cx0+bx*4+x, cy0+by*4+y
						i := (by*4+y)*8 + bx*4 + x
						res[y*4+x] = int32(src[clampi(sy, fe.orig.H/2)*cw+clampi(sx, cw)]) - int32(prd[i])
					}
				}
				lv := transform.QuantizeOnly(&res, qp, intra)
				levels[plane*4+by*2+bx] = lv
				if lv != (transform.Block{}) {
					allZero = false
				}
			}
		}
	}
	return levels, allZero
}

func clampi(v, n int) int {
	if v < 0 {
		return 0
	}
	if v >= n {
		return n - 1
	}
	return v
}

// reconstructInter reconstructs the macroblock into fe.rec from predictions
// plus dequantized residuals, exactly as the decoder will.
func (fe *frameEncoder) reconstructInter(mx, my int, predY, predCb, predCr []uint8, levels [16]transform.Block, chromaLevels [8]transform.Block, qp int) {
	px, py := mx*frame.MBSize, my*frame.MBSize
	for by := 0; by < 4; by++ {
		for bx := 0; bx < 4; bx++ {
			recon := transform.Reconstruct(&levels[by*4+bx], qp)
			for y := 0; y < 4; y++ {
				for x := 0; x < 4; x++ {
					ox, oy := bx*4+x, by*4+y
					fe.rec.SetLuma(px+ox, py+oy, frame.ClampU8(int(predY[oy*16+ox])+int(recon[y*4+x])))
				}
			}
		}
	}
	fe.reconstructChroma(mx, my, predCb, predCr, chromaLevels, qp)
}

func (fe *frameEncoder) reconstructChroma(mx, my int, predCb, predCr []uint8, levels [8]transform.Block, qp int) {
	cx0, cy0 := mx*8, my*8
	cw, ch := fe.rec.W/2, fe.rec.H/2
	for plane := 0; plane < 2; plane++ {
		dst, prd := fe.rec.Cb, predCb
		if plane == 1 {
			dst, prd = fe.rec.Cr, predCr
		}
		for by := 0; by < 2; by++ {
			for bx := 0; bx < 2; bx++ {
				recon := transform.Reconstruct(&levels[plane*4+by*2+bx], qp)
				for y := 0; y < 4; y++ {
					for x := 0; x < 4; x++ {
						sx, sy := cx0+bx*4+x, cy0+by*4+y
						if sx < cw && sy < ch {
							i := (by*4+y)*8 + bx*4 + x
							dst[sy*cw+sx] = frame.ClampU8(int(prd[i]) + int(recon[y*4+x]))
						}
					}
				}
			}
		}
	}
}

// codeResidualAndReconstruct codes the full residual of an (intra) MB and
// reconstructs it, sharing the CBP-flag convention with inter MBs.
func (fe *frameEncoder) codeResidualAndReconstruct(mx, my int, predY, predCb, predCr []uint8, qp int, intra bool) {
	px, py := mx*frame.MBSize, my*frame.MBSize
	levels, allZero := fe.quantizeLuma(px, py, predY, qp, intra)
	chromaLevels, chromaZero := fe.quantizeChroma(mx, my, predCb, predCr, qp, intra)
	hasResidual := !(allZero && chromaZero)
	fe.sw.PutFlag(entropy.ClassCBP, hasResidual)
	if hasResidual {
		for b := 0; b < 16; b++ {
			writeResidualBlock(fe.sw, &levels[b])
		}
		for b := 0; b < 8; b++ {
			writeResidualBlock(fe.sw, &chromaLevels[b])
		}
	}
	fe.reconstructInter(mx, my, predY, predCb, predCr, levels, chromaLevels, qp)
}
