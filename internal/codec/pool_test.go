package codec

import (
	"bytes"
	"sync"
	"testing"

	"videoapp/internal/frame"
	"videoapp/internal/synth"
)

func testVideo(t testing.TB) *Video {
	t.Helper()
	seq := synth.Generate(synth.Config{
		Name: "pool", Seed: 3, W: 96, H: 64, Frames: 8, FPS: 30,
		Sprites: 3, SpriteV: 2, PanX: 0.4, Texture: 0.6, Noise: 1.2,
	})
	p := DefaultParams()
	p.GOPSize = 8
	p.SearchRange = 8
	p.SlicesPerFrame = 2
	v, err := Encode(seq, p)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func assertVideoEqual(t *testing.T, a, b *Video) {
	t.Helper()
	if len(a.Frames) != len(b.Frames) {
		t.Fatalf("frame count %d vs %d", len(a.Frames), len(b.Frames))
	}
	for i, fa := range a.Frames {
		fb := b.Frames[i]
		if !bytes.Equal(fa.Payload, fb.Payload) {
			t.Fatalf("frame %d payload differs", i)
		}
		if len(fa.MBs) != len(fb.MBs) {
			t.Fatalf("frame %d MB count differs", i)
		}
		for m := range fa.MBs {
			if fa.MBs[m].BitStart != fb.MBs[m].BitStart || fa.MBs[m].BitLen != fb.MBs[m].BitLen {
				t.Fatalf("frame %d MB %d bit range differs", i, m)
			}
		}
		for s := range fa.SliceMBStart {
			if fa.SliceMBStart[s] != fb.SliceMBStart[s] || fa.SliceByteStart[s] != fb.SliceByteStart[s] {
				t.Fatalf("frame %d slice tables differ", i)
			}
		}
		if fa.Type != fb.Type || fa.BaseQP != fb.BaseQP || fa.RefFwd != fb.RefFwd || fa.RefBwd != fb.RefBwd {
			t.Fatalf("frame %d header differs", i)
		}
	}
}

// TestClonePooledBitIdentical proves a pooled clone equals a plain clone, and
// that reuse through Release leaves no residue from the previous occupant.
func TestClonePooledBitIdentical(t *testing.T) {
	v := testVideo(t)
	plain := v.Clone()
	assertVideoEqual(t, v, plain)

	pooled := v.ClonePooled()
	assertVideoEqual(t, v, pooled)

	// Mutate the pooled copy; the original and plain clone must not move.
	for _, f := range pooled.Frames {
		for i := range f.Payload {
			f.Payload[i] ^= 0xff
		}
	}
	assertVideoEqual(t, v, plain)

	// Recycle, clone again: the arena comes back dirty and must be fully
	// overwritten.
	pooled.Release()
	again := v.ClonePooled()
	assertVideoEqual(t, v, again)
	again.Release()

	// Double release and releasing a plain clone are no-ops.
	again.Release()
	plain.Release()
	if plain.Frames == nil {
		t.Fatal("releasing a non-pooled clone must not detach its frames")
	}
}

// TestClonePooledNoSliceBleed verifies the three-index subslices: appending
// to one frame's slices must never overwrite a neighbouring frame's data in
// the shared arena.
func TestClonePooledNoSliceBleed(t *testing.T) {
	v := testVideo(t)
	c := v.ClonePooled()
	if len(c.Frames) < 2 {
		t.Skip("need at least two frames")
	}
	f0 := c.Frames[0]
	next := append([]byte(nil), c.Frames[1].Payload...)
	f0.Payload = append(f0.Payload, 0xAB)
	if !bytes.Equal(c.Frames[1].Payload, next) {
		t.Fatal("append to frame 0 payload bled into frame 1's arena range")
	}
	f0.MBs = append(f0.MBs, MBRecord{})
	f0.SliceMBStart = append(f0.SliceMBStart, 7)
	if c.Frames[1].SliceMBStart[0] == 7 {
		t.Fatal("append to frame 0 slice table bled into frame 1")
	}
	c.Release()
}

// TestClonePooledConcurrent hammers the pool from many goroutines under the
// race detector: every clone must match the source regardless of which
// recycled arena it lands in.
func TestClonePooledConcurrent(t *testing.T) {
	v := testVideo(t)
	want := v.Clone()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				c := v.ClonePooled()
				for f := range c.Frames {
					if !bytes.Equal(c.Frames[f].Payload, want.Frames[f].Payload) {
						panic("pooled clone corrupted")
					}
				}
				// Dirty it before returning so reuse must rewrite it.
				for _, ef := range c.Frames {
					for i := range ef.Payload {
						ef.Payload[i] = 0xEE
					}
				}
				c.Release()
			}
		}()
	}
	wg.Wait()
}

// TestFramePoolZeroed checks frame.NewPooled's contract the encoder relies
// on: recycled frames come back zeroed, per geometry.
func TestFramePoolZeroed(t *testing.T) {
	f := frame.MustNewPooled(32, 32)
	for i := range f.Y {
		f.Y[i] = 0x55
	}
	for i := range f.Cb {
		f.Cb[i], f.Cr[i] = 0x66, 0x77
	}
	frame.Recycle(f)
	g := frame.MustNewPooled(32, 32)
	for i := range g.Y {
		if g.Y[i] != 0 {
			t.Fatal("recycled luma plane not zeroed")
		}
	}
	for i := range g.Cb {
		if g.Cb[i] != 0 || g.Cr[i] != 0 {
			t.Fatal("recycled chroma planes not zeroed")
		}
	}
	frame.Recycle(g)
	if h := frame.MustNewPooled(64, 32); h.W != 64 || len(h.Y) != 64*32 {
		t.Fatal("geometry-keyed pool returned wrong dimensions")
	}
}
