package codec

import "sync"

// The §6.4 Monte-Carlo methodology clones the whole video once per storage
// round trip — 30 runs per video per design point — so the deep copy is a
// measured hot path. Two mechanisms keep it off the garbage collector:
//
//   - Clone lays every copied frame out in one flat arena (one payload
//     buffer, one frame array, one macroblock-record array, one int array)
//     instead of four-plus allocations per frame.
//
//   - ClonePooled draws that arena from a sync.Pool; Release returns it.
//     A released video's buffers are reused by later clones, so steady-state
//     round-trip loops allocate nothing for the copy.
//
// The two forms produce bit-identical videos; pooling only changes where the
// backing memory comes from.

// cloneArena is the backing storage of one cloned video. Sub-slices handed
// to frames use full slice expressions, so an accidental append never bleeds
// into a neighbouring frame's range.
type cloneArena struct {
	payload []byte
	frames  []EncodedFrame
	ptrs    []*EncodedFrame
	mbs     []MBRecord
	ints    []int
}

var arenaPool = sync.Pool{New: func() any { return new(cloneArena) }}

// arenaSlice returns s resized to n, reallocating only when the capacity is
// insufficient (the pool's reuse path).
func arenaSlice[T any](s []T, n int) []T {
	if cap(s) < n {
		return make([]T, n)
	}
	return s[:n]
}

// cloneInto deep-copies v using a's buffers, growing them as needed.
func (v *Video) cloneInto(a *cloneArena) *Video {
	var payloadN, mbN, intN int
	for _, f := range v.Frames {
		payloadN += len(f.Payload)
		mbN += len(f.MBs)
		intN += len(f.SliceMBStart) + len(f.SliceByteStart)
	}
	a.payload = arenaSlice(a.payload, payloadN)
	a.frames = arenaSlice(a.frames, len(v.Frames))
	a.ptrs = arenaSlice(a.ptrs, len(v.Frames))
	a.mbs = arenaSlice(a.mbs, mbN)
	a.ints = arenaSlice(a.ints, intN)

	out := &Video{Params: v.Params, W: v.W, H: v.H, FPS: v.FPS, Frames: a.ptrs}
	var pOff, mOff, iOff int
	for i, f := range v.Frames {
		g := &a.frames[i]
		*g = *f
		g.Payload = a.payload[pOff : pOff+len(f.Payload) : pOff+len(f.Payload)]
		copy(g.Payload, f.Payload)
		pOff += len(f.Payload)
		g.MBs = a.mbs[mOff : mOff+len(f.MBs) : mOff+len(f.MBs)]
		copy(g.MBs, f.MBs)
		mOff += len(f.MBs)
		g.SliceMBStart = a.ints[iOff : iOff+len(f.SliceMBStart) : iOff+len(f.SliceMBStart)]
		copy(g.SliceMBStart, f.SliceMBStart)
		iOff += len(f.SliceMBStart)
		g.SliceByteStart = a.ints[iOff : iOff+len(f.SliceByteStart) : iOff+len(f.SliceByteStart)]
		copy(g.SliceByteStart, f.SliceByteStart)
		iOff += len(f.SliceByteStart)
		a.ptrs[i] = g
	}
	return out
}

// ClonePooled is Clone with the backing arena drawn from an internal
// sync.Pool. The copy is bit-identical to Clone's; call Release when done
// with the video to recycle its buffers. A pooled clone that is never
// released is simply collected like any other garbage.
func (v *Video) ClonePooled() *Video {
	a := arenaPool.Get().(*cloneArena)
	out := v.cloneInto(a)
	out.arena = a
	return out
}

// Release returns the backing buffers of a pooled clone to the pool and
// detaches the frame list so accidental reuse fails loudly. It is a no-op on
// videos that did not come from ClonePooled, and on second calls. The caller
// must not retain references to the video's frames or payloads past Release.
func (v *Video) Release() {
	a := v.arena
	if a == nil {
		return
	}
	v.arena = nil
	v.Frames = nil
	arenaPool.Put(a)
}
