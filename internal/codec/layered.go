package codec

import (
	"fmt"

	"videoapp/internal/bitio"
	"videoapp/internal/frame"
	"videoapp/internal/transform"
)

// SNR-scalable (layered) coding, the extension sketched in the paper's
// related-work discussion: "videos could be also encoded in a layered way,
// where each layer refines the quality produced by the previous... Our work
// focuses on approximation within a layer, and is trivially extensible to
// multiple layers by adding another dimension of approximation."
//
// The base layer is an ordinary Video. The enhancement layer codes, per
// frame, the residual between the source and the base reconstruction at a
// finer quantizer. Crucially, the prediction loop uses only base-layer
// reconstructions (MPEG-2-style SNR scalability without drift), so
// enhancement bits are never referenced by anything: an error there damages
// exactly one frame's refinement — the maximally approximable class.

// LayeredVideo is a base layer plus an optional enhancement layer.
type LayeredVideo struct {
	Base *Video
	// EnhQPDelta is subtracted from each macroblock's base QP to form the
	// enhancement quantizer.
	EnhQPDelta int
	// Enh[i] is the enhancement payload for coded frame i.
	Enh [][]byte
	// EnhMBs[i] are the enhancement bit ranges per macroblock (scan order),
	// the analysis records for the enhancement dimension.
	EnhMBs [][]MBRecord
}

// EncodeLayered produces a two-layer encoding: p configures the base layer,
// enhQPDelta (> 0) how much finer the enhancement quantizer is.
func EncodeLayered(seq *frame.Sequence, p Params, enhQPDelta int) (*LayeredVideo, error) {
	if enhQPDelta < 1 || enhQPDelta > 20 {
		return nil, fmt.Errorf("codec: enhancement QP delta %d outside 1..20", enhQPDelta)
	}
	base, err := Encode(seq, p)
	if err != nil {
		return nil, err
	}
	baseRecs, err := DecodeRecs(base)
	if err != nil {
		return nil, err
	}
	lv := &LayeredVideo{Base: base, EnhQPDelta: enhQPDelta}
	for i, ef := range base.Frames {
		orig := seq.Frames[ef.DisplayIdx]
		payload, mbs := encodeEnhFrame(orig, baseRecs[i], ef, p, enhQPDelta)
		lv.Enh = append(lv.Enh, payload)
		lv.EnhMBs = append(lv.EnhMBs, mbs)
	}
	return lv, nil
}

// encodeEnhFrame codes the luma refinement residual of one frame.
func encodeEnhFrame(orig, baseRec *frame.Frame, ef *EncodedFrame, p Params, delta int) ([]byte, []MBRecord) {
	w := bitio.NewWriter()
	sw := newSymbolWriter(p.Entropy, w)
	mbCols, mbRows := orig.MBCols(), orig.MBRows()
	var mbs []MBRecord
	for my := 0; my < mbRows; my++ {
		for mx := 0; mx < mbCols; mx++ {
			start := sw.BitPos()
			mbQP := ef.BaseQP
			if idx := my*mbCols + mx; idx < len(ef.MBs) {
				mbQP = ef.MBs[idx].QP
			}
			qp := transform.ClampQP(mbQP - delta)
			px, py := mx*frame.MBSize, my*frame.MBSize
			for by := 0; by < 4; by++ {
				for bx := 0; bx < 4; bx++ {
					var res transform.Block
					for y := 0; y < 4; y++ {
						for x := 0; x < 4; x++ {
							ox, oy := px+bx*4+x, py+by*4+y
							res[y*4+x] = int32(orig.LumaAt(ox, oy)) - int32(baseRec.LumaAt(ox, oy))
						}
					}
					lv := transform.QuantizeOnly(&res, qp, false)
					writeResidualBlock(sw, &lv)
				}
			}
			mbs = append(mbs, MBRecord{
				MB:       frame.MB{X: mx, Y: my},
				BitStart: start,
				BitLen:   sw.BitPos() - start,
				QP:       qp,
			})
		}
	}
	sw.Flush()
	if n := len(mbs); n > 0 {
		mbs[n-1].BitLen = int64(w.Len())*8 - mbs[n-1].BitStart
	}
	return w.Bytes(), mbs
}

// DecodeLayered decodes the base layer and applies the enhancement
// refinements. Corrupt enhancement payloads damage only their own frame's
// refinement; the base reconstruction is untouched.
func DecodeLayered(lv *LayeredVideo) (*frame.Sequence, error) {
	baseRecs, err := DecodeRecs(lv.Base)
	if err != nil {
		return nil, err
	}
	if len(lv.Enh) != len(lv.Base.Frames) {
		return nil, fmt.Errorf("codec: %d enhancement frames for %d base frames", len(lv.Enh), len(lv.Base.Frames))
	}
	out := make([]*frame.Frame, len(baseRecs))
	for i, ef := range lv.Base.Frames {
		out[i] = applyEnhFrame(baseRecs[i], lv.Enh[i], ef, lv.Base.Params, lv.EnhQPDelta)
	}
	return RecsToDisplay(lv.Base, out)
}

func applyEnhFrame(baseRec *frame.Frame, payload []byte, ef *EncodedFrame, p Params, delta int) *frame.Frame {
	rec := baseRec.Clone()
	sr := newSymbolReader(p.Entropy, bitio.NewReader(payload))
	mbCols, mbRows := rec.MBCols(), rec.MBRows()
	for my := 0; my < mbRows; my++ {
		for mx := 0; mx < mbCols; mx++ {
			// Containers do not persist MB records; fall back to the frame
			// base QP (Reanalyze restores the exact per-MB values).
			mbQP := ef.BaseQP
			if idx := my*mbCols + mx; idx < len(ef.MBs) {
				mbQP = ef.MBs[idx].QP
			}
			qp := transform.ClampQP(mbQP - delta)
			px, py := mx*frame.MBSize, my*frame.MBSize
			for by := 0; by < 4; by++ {
				for bx := 0; bx < 4; bx++ {
					lv := readResidualBlock(sr)
					recon := transform.Reconstruct(&lv, qp)
					for y := 0; y < 4; y++ {
						for x := 0; x < 4; x++ {
							ox, oy := px+bx*4+x, py+by*4+y
							rec.SetLuma(ox, oy, frame.ClampU8(int(rec.LumaAt(ox, oy))+int(recon[y*4+x])))
						}
					}
				}
			}
		}
	}
	return rec
}

// EnhBits returns the total enhancement payload size in bits.
func (lv *LayeredVideo) EnhBits() int64 {
	var n int64
	for _, p := range lv.Enh {
		n += int64(len(p)) * 8
	}
	return n
}
