package codec

import (
	"testing"

	"videoapp/internal/bitio"
	"videoapp/internal/frame"
	"videoapp/internal/quality"
	"videoapp/internal/synth"
)

// testSeq builds a small deterministic test sequence.
func testSeq(t testing.TB, preset string, w, h, frames int) *frame.Sequence {
	t.Helper()
	cfg, ok := synth.PresetByName(preset)
	if !ok {
		t.Fatalf("unknown preset %s", preset)
	}
	return synth.Generate(cfg.ScaleTo(w, h, frames))
}

func testParams() Params {
	p := DefaultParams()
	p.GOPSize = 12
	p.SearchRange = 8
	return p
}

func encodeDecode(t testing.TB, seq *frame.Sequence, p Params) (*Video, *frame.Sequence) {
	t.Helper()
	v, err := Encode(seq, p)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	dec, err := Decode(v)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	return v, dec
}

func TestEncodeDecodeCleanQuality(t *testing.T) {
	seq := testSeq(t, "news_like", 96, 64, 12)
	for _, crf := range []int{16, 24, 32} {
		p := testParams()
		p.CRF = crf
		_, dec := encodeDecode(t, seq, p)
		psnr, err := quality.PSNR(seq, dec)
		if err != nil {
			t.Fatal(err)
		}
		minPSNR := 30.0
		if crf >= 32 {
			minPSNR = 24.0
		}
		if psnr < minPSNR {
			t.Fatalf("CRF %d: decoded PSNR %.2f dB below %.1f", crf, psnr, minPSNR)
		}
	}
}

func TestDecodedMatchesEncoderReconstruction(t *testing.T) {
	// The decoder must reproduce the encoder's reconstruction bit-exactly;
	// otherwise references drift and damage experiments are meaningless.
	// We verify indirectly but strictly: encode, decode, re-encode the
	// decoded output at the same settings; if decode matched encoder
	// reconstructions, the coded stream of pass 2 decodes to itself.
	seq := testSeq(t, "crew_like", 96, 64, 8)
	p := testParams()
	v, dec := encodeDecode(t, seq, p)
	_ = v
	// Direct check: decoding twice gives identical output (determinism).
	dec2, err := Decode(v)
	if err != nil {
		t.Fatal(err)
	}
	for i := range dec.Frames {
		for j := range dec.Frames[i].Y {
			if dec.Frames[i].Y[j] != dec2.Frames[i].Y[j] {
				t.Fatalf("decode nondeterministic at frame %d pixel %d", i, j)
			}
		}
	}
}

func TestQualityImprovesWithLowerCRF(t *testing.T) {
	seq := testSeq(t, "parkrun_like", 96, 64, 10)
	var prevPSNR float64
	var prevBits int64
	for i, crf := range []int{36, 28, 20} {
		p := testParams()
		p.CRF = crf
		v, dec := encodeDecode(t, seq, p)
		psnr, _ := quality.PSNR(seq, dec)
		bits := v.TotalPayloadBits()
		if i > 0 {
			if psnr <= prevPSNR {
				t.Fatalf("CRF %d: PSNR %.2f not better than %.2f at higher CRF", crf, psnr, prevPSNR)
			}
			if bits <= prevBits {
				t.Fatalf("CRF %d: bits %d not larger than %d at higher CRF", crf, bits, prevBits)
			}
		}
		prevPSNR, prevBits = psnr, bits
	}
}

func TestGOPStructure(t *testing.T) {
	seq := testSeq(t, "news_like", 64, 48, 25)
	p := testParams()
	p.GOPSize = 10
	v, _ := encodeDecode(t, seq, p)
	for _, f := range v.Frames {
		wantI := f.DisplayIdx%10 == 0
		if wantI != (f.Type == FrameI) {
			t.Fatalf("frame %d: type %v, GOP size 10", f.DisplayIdx, f.Type)
		}
		if f.Type == FrameI && (f.RefFwd != -1 || f.RefBwd != -1) {
			t.Fatalf("I frame %d has references", f.DisplayIdx)
		}
		if f.Type == FrameP && f.RefFwd == -1 {
			t.Fatalf("P frame %d missing forward reference", f.DisplayIdx)
		}
	}
}

func TestBFrameStructure(t *testing.T) {
	seq := testSeq(t, "crew_like", 64, 48, 13)
	p := testParams()
	p.GOPSize = 12
	p.BFrames = 2
	v, dec := encodeDecode(t, seq, p)
	types := map[FrameType]int{}
	for _, f := range v.Frames {
		types[f.Type]++
		if f.Type == FrameB {
			if f.RefFwd == -1 || f.RefBwd == -1 {
				t.Fatalf("B frame %d missing references (%d, %d)", f.DisplayIdx, f.RefFwd, f.RefBwd)
			}
			// Coded-order causality: references must be coded earlier.
			if f.RefFwd >= f.CodedIdx || f.RefBwd >= f.CodedIdx {
				t.Fatalf("B frame %d references future coded frames", f.DisplayIdx)
			}
		}
	}
	if types[FrameB] == 0 {
		t.Fatal("no B frames produced")
	}
	if len(dec.Frames) != 13 {
		t.Fatalf("decoded %d frames, want 13", len(dec.Frames))
	}
	psnr, _ := quality.PSNR(seq, dec)
	if psnr < 26 {
		t.Fatalf("B-frame encode quality %.2f dB too low", psnr)
	}
}

func TestDisplayOrderRestored(t *testing.T) {
	seq := testSeq(t, "news_like", 64, 48, 9)
	p := testParams()
	p.BFrames = 2
	p.GOPSize = 9
	v, _ := encodeDecode(t, seq, p)
	seen := map[int]bool{}
	for _, f := range v.Frames {
		if seen[f.DisplayIdx] {
			t.Fatalf("display index %d coded twice", f.DisplayIdx)
		}
		seen[f.DisplayIdx] = true
	}
	for d := 0; d < 9; d++ {
		if !seen[d] {
			t.Fatalf("display index %d never coded", d)
		}
	}
}

func TestCAVLCBackend(t *testing.T) {
	seq := testSeq(t, "crew_like", 96, 64, 8)
	p := testParams()
	p.Entropy = CAVLC
	_, dec := encodeDecode(t, seq, p)
	psnr, _ := quality.PSNR(seq, dec)
	if psnr < 28 {
		t.Fatalf("CAVLC decode PSNR %.2f dB", psnr)
	}
}

func TestCABACSmallerThanCAVLC(t *testing.T) {
	// The paper's premise for choosing CABAC: better compression (§2.3.4).
	seq := testSeq(t, "stockholm_like", 96, 64, 10)
	pa, pv := testParams(), testParams()
	pv.Entropy = CAVLC
	va, err := Encode(seq, pa)
	if err != nil {
		t.Fatal(err)
	}
	vv, err := Encode(seq, pv)
	if err != nil {
		t.Fatal(err)
	}
	if va.TotalPayloadBits() >= vv.TotalPayloadBits() {
		t.Fatalf("CABAC %d bits >= CAVLC %d bits", va.TotalPayloadBits(), vv.TotalPayloadBits())
	}
}

func TestMBRecordsCoverPayload(t *testing.T) {
	seq := testSeq(t, "parkrun_like", 64, 48, 6)
	v, _ := encodeDecode(t, seq, testParams())
	for fi, f := range v.Frames {
		if len(f.MBs) != v.MBCols()*v.MBRows() {
			t.Fatalf("frame %d: %d MB records", fi, len(f.MBs))
		}
		var pos int64
		for i, mb := range f.MBs {
			if mb.BitStart != pos {
				t.Fatalf("frame %d MB %d: bit start %d, want %d", fi, i, mb.BitStart, pos)
			}
			if mb.BitLen < 0 {
				t.Fatalf("frame %d MB %d: negative length", fi, i)
			}
			pos += mb.BitLen
		}
		if pos != f.PayloadBits() {
			t.Fatalf("frame %d: records cover %d bits, payload %d", fi, pos, f.PayloadBits())
		}
	}
}

func TestMBDependenciesRecorded(t *testing.T) {
	seq := testSeq(t, "crew_like", 64, 48, 8)
	v, _ := encodeDecode(t, seq, testParams())
	interDeps, intraDeps := 0, 0
	for _, f := range v.Frames {
		for _, mb := range f.MBs {
			for _, d := range mb.Deps {
				if d.Pixels <= 0 || d.Pixels > 256 {
					t.Fatalf("dep pixels %d out of range", d.Pixels)
				}
				if d.SrcFrame == f.CodedIdx {
					intraDeps++
					// Same-frame references must respect scan order.
					if d.SrcMB.Index(v.MBCols()) >= mb.MB.Index(v.MBCols()) {
						t.Fatal("intra dep must reference an earlier MB")
					}
				} else {
					interDeps++
					if d.SrcFrame > f.CodedIdx {
						t.Fatal("compensation dep must reference an earlier coded frame")
					}
				}
			}
		}
	}
	if interDeps == 0 {
		t.Fatal("no inter-frame dependencies recorded")
	}
	if intraDeps == 0 {
		t.Fatal("no intra-frame dependencies recorded")
	}
}

func TestHeaderRoundTrip(t *testing.T) {
	f := &EncodedFrame{
		Type: FrameB, CodedIdx: 17, DisplayIdx: 15, BaseQP: 26,
		RefFwd: 12, RefBwd: -1, Payload: make([]byte, 12345),
	}
	var g EncodedFrame
	n, err := unmarshalHeader(marshalHeader(f), &g)
	if err != nil {
		t.Fatal(err)
	}
	if n != 12345 || g.Type != FrameB || g.CodedIdx != 17 || g.DisplayIdx != 15 ||
		g.BaseQP != 26 || g.RefFwd != 12 || g.RefBwd != -1 {
		t.Fatalf("header round trip: %+v payload %d", g, n)
	}
}

func TestHeaderRejectsGarbage(t *testing.T) {
	var g EncodedFrame
	if _, err := unmarshalHeader(nil, &g); err == nil {
		t.Fatal("empty header must error")
	}
}

func TestParamValidation(t *testing.T) {
	bad := []Params{
		{CRF: -1, GOPSize: 10, SearchRange: 8},
		{CRF: 99, GOPSize: 10, SearchRange: 8},
		{CRF: 24, GOPSize: 0, SearchRange: 8},
		{CRF: 24, GOPSize: 10, SearchRange: 0},
		{CRF: 24, GOPSize: 10, SearchRange: 8, BFrames: -1},
		{CRF: 24, GOPSize: 10, SearchRange: 8, BFrames: 3}, // 10 % 4 != 0
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Fatalf("params %d must be rejected: %+v", i, p)
		}
	}
	if err := DefaultParams().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestEncodeRejectsBadInput(t *testing.T) {
	if _, err := Encode(&frame.Sequence{}, DefaultParams()); err == nil {
		t.Fatal("empty sequence must be rejected")
	}
}

func TestVideoClone(t *testing.T) {
	seq := testSeq(t, "news_like", 64, 48, 4)
	v, _ := encodeDecode(t, seq, testParams())
	c := v.Clone()
	c.Frames[0].Payload[0] ^= 0xFF
	if v.Frames[0].Payload[0] == c.Frames[0].Payload[0] {
		t.Fatal("clone must not alias payload")
	}
}

func TestSkipModeUsedInStaticContent(t *testing.T) {
	cfg, _ := synth.PresetByName("news_like")
	cfg = cfg.ScaleTo(64, 48, 8)
	cfg.Sprites, cfg.Noise, cfg.Shake, cfg.PanX, cfg.PanY = 0, 0, 0, 0, 0
	seq := synth.Generate(cfg)
	v, err := Encode(seq, testParams())
	if err != nil {
		t.Fatal(err)
	}
	// Static P frames should be mostly skip: tiny payloads.
	var pBits, iBits int64
	for _, f := range v.Frames {
		if f.Type == FrameP {
			pBits += f.PayloadBits()
		} else {
			iBits += f.PayloadBits()
		}
	}
	if pBits >= iBits {
		t.Fatalf("static P frames (%d bits) should be far smaller than I (%d bits)", pBits, iBits)
	}
}

// --- Error resilience: the core requirement for the paper's experiments ---

func TestDecodeCorruptPayloadNeverPanics(t *testing.T) {
	seq := testSeq(t, "sports_like", 64, 48, 6)
	for _, kind := range []EntropyKind{CABAC, CAVLC} {
		p := testParams()
		p.Entropy = kind
		v, err := Encode(seq, p)
		if err != nil {
			t.Fatal(err)
		}
		for trial := 0; trial < 30; trial++ {
			c := v.Clone()
			for fi, f := range c.Frames {
				for b := 0; b < 3; b++ {
					bitio.FlipBit(f.Payload, int64((trial*7+fi*13+b*29)*31)%f.PayloadBits())
				}
			}
			if _, err := Decode(c); err != nil {
				t.Fatalf("%v: corrupt decode returned error: %v", kind, err)
			}
		}
	}
}

func TestDecodeAllOnesPayload(t *testing.T) {
	seq := testSeq(t, "news_like", 64, 48, 4)
	v, err := Encode(seq, testParams())
	if err != nil {
		t.Fatal(err)
	}
	c := v.Clone()
	for _, f := range c.Frames {
		for i := range f.Payload {
			f.Payload[i] = 0xFF
		}
	}
	if _, err := Decode(c); err != nil {
		t.Fatalf("all-ones payload: %v", err)
	}
}

func TestDecodeTruncatedPayload(t *testing.T) {
	seq := testSeq(t, "news_like", 64, 48, 4)
	v, err := Encode(seq, testParams())
	if err != nil {
		t.Fatal(err)
	}
	c := v.Clone()
	for _, f := range c.Frames {
		if len(f.Payload) > 2 {
			f.Payload = f.Payload[:2]
		}
	}
	if _, err := Decode(c); err != nil {
		t.Fatalf("truncated payload: %v", err)
	}
}

func TestBitFlipDamagesQuality(t *testing.T) {
	seq := testSeq(t, "crew_like", 96, 64, 10)
	v, dec := encodeDecode(t, seq, testParams())
	cleanPSNR, _ := quality.PSNR(seq, dec)

	c := v.Clone()
	// Flip one bit early in the first P frame.
	target := c.Frames[1]
	bitio.FlipBit(target.Payload, 10)
	corrupted, err := Decode(c)
	if err != nil {
		t.Fatal(err)
	}
	corruptPSNR, _ := quality.PSNR(seq, corrupted)
	if corruptPSNR >= cleanPSNR-0.1 {
		t.Fatalf("single bit flip: PSNR %.2f vs clean %.2f — no visible damage", corruptPSNR, cleanPSNR)
	}
}

func TestErrorPropagationStopsAtIFrame(t *testing.T) {
	seq := testSeq(t, "crew_like", 64, 48, 16)
	p := testParams()
	p.GOPSize = 8
	v, err := Encode(seq, p)
	if err != nil {
		t.Fatal(err)
	}
	clean, _ := Decode(v)

	c := v.Clone()
	bitio.FlipBit(c.Frames[1].Payload, 5) // damage in first GOP
	corrupt, _ := Decode(c)

	// Frames of the second GOP (display 8..15) must be unaffected.
	for d := 8; d < 16; d++ {
		for i := range clean.Frames[d].Y {
			if clean.Frames[d].Y[i] != corrupt.Frames[d].Y[i] {
				t.Fatalf("error leaked past I-frame into display frame %d", d)
			}
		}
	}
	// And at least one frame in the first GOP must differ.
	damaged := false
	for d := 1; d < 8 && !damaged; d++ {
		for i := range clean.Frames[d].Y {
			if clean.Frames[d].Y[i] != corrupt.Frames[d].Y[i] {
				damaged = true
				break
			}
		}
	}
	if !damaged {
		t.Fatal("bit flip produced no damage at all")
	}
}

func TestLaterMBFlipDamagesLess(t *testing.T) {
	// Coding error propagation (Figure 2c / Figure 3): a flip near the end
	// of a frame's scan order damages fewer MBs than a flip near the start.
	seq := testSeq(t, "parkrun_like", 96, 64, 8)
	v, err := Encode(seq, testParams())
	if err != nil {
		t.Fatal(err)
	}
	clean, _ := Decode(v)

	measure := func(bitPos int64) float64 {
		c := v.Clone()
		bitio.FlipBit(c.Frames[2].Payload, bitPos)
		corrupt, _ := Decode(c)
		psnr, _ := quality.PSNR(clean, corrupt)
		return psnr
	}
	f := v.Frames[2]
	early := f.MBs[0].BitStart + 2
	lastMB := f.MBs[len(f.MBs)-1]
	late := lastMB.BitStart + 2
	var earlySum, lateSum float64
	earlySum = measure(early)
	lateSum = measure(late)
	if earlySum >= lateSum {
		t.Fatalf("early flip PSNR %.2f >= late flip PSNR %.2f; propagation pattern violated", earlySum, lateSum)
	}
}

func BenchmarkEncodeQCIF(b *testing.B) {
	b.ReportAllocs()
	cfg, _ := synth.PresetByName("crew_like")
	seq := synth.Generate(cfg.ScaleTo(176, 144, 10))
	p := testParams()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Encode(seq, p); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecodeQCIF(b *testing.B) {
	b.ReportAllocs()
	cfg, _ := synth.PresetByName("crew_like")
	seq := synth.Generate(cfg.ScaleTo(176, 144, 10))
	v, err := Encode(seq, testParams())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Decode(v); err != nil {
			b.Fatal(err)
		}
	}
}
