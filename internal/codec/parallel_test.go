package codec

import (
	"bytes"
	"context"
	"errors"
	"testing"

	"videoapp/internal/frame"
)

func TestEncodeParallelBitExact(t *testing.T) {
	seq := testSeq(t, "crew_like", 96, 64, 25)
	p := testParams()
	p.GOPSize = 8
	serial, err := Encode(seq, p)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := EncodeParallel(seq, p, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(parallel.Frames) != len(serial.Frames) {
		t.Fatalf("frame count %d vs %d", len(parallel.Frames), len(serial.Frames))
	}
	for i := range serial.Frames {
		a, b := serial.Frames[i], parallel.Frames[i]
		if a.Type != b.Type || a.CodedIdx != b.CodedIdx || a.DisplayIdx != b.DisplayIdx ||
			a.RefFwd != b.RefFwd || a.RefBwd != b.RefBwd {
			t.Fatalf("frame %d header mismatch: %+v vs %+v", i, a.Type, b.Type)
		}
		if !bytes.Equal(a.Payload, b.Payload) {
			t.Fatalf("frame %d payload differs", i)
		}
		if len(a.MBs) != len(b.MBs) {
			t.Fatalf("frame %d MB records", i)
		}
		for m := range a.MBs {
			if a.MBs[m].BitStart != b.MBs[m].BitStart || len(a.MBs[m].Deps) != len(b.MBs[m].Deps) {
				t.Fatalf("frame %d MB %d records differ", i, m)
			}
			for d := range a.MBs[m].Deps {
				if a.MBs[m].Deps[d] != b.MBs[m].Deps[d] {
					t.Fatalf("frame %d MB %d dep %d differs", i, m, d)
				}
			}
		}
	}
	// Decodes identically too.
	da, _ := Decode(serial)
	db, _ := Decode(parallel)
	for i := range da.Frames {
		if !bytes.Equal(da.Frames[i].Y, db.Frames[i].Y) {
			t.Fatalf("decoded frame %d differs", i)
		}
	}
}

func TestEncodeParallelRejectsBFrames(t *testing.T) {
	seq := testSeq(t, "news_like", 64, 48, 6)
	p := testParams()
	p.BFrames = 2
	if _, err := EncodeParallel(seq, p, 2); err == nil {
		t.Fatal("open GOPs must be rejected")
	}
}

func TestEncodeParallelPartialFinalGOP(t *testing.T) {
	seq := testSeq(t, "news_like", 64, 48, 10) // 10 frames, GOP 8 -> 8+2
	p := testParams()
	p.GOPSize = 8
	v, err := EncodeParallel(seq, p, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(v.Frames) != 10 {
		t.Fatalf("%d frames", len(v.Frames))
	}
	if v.Frames[8].Type != FrameI {
		t.Fatal("second GOP must start with I")
	}
}

// sameSequences fails the test unless the two sequences match pixel-exactly.
func sameSequences(t *testing.T, label string, a, b *frame.Sequence) {
	t.Helper()
	if len(a.Frames) != len(b.Frames) {
		t.Fatalf("%s: frame count %d vs %d", label, len(a.Frames), len(b.Frames))
	}
	for i := range a.Frames {
		if !bytes.Equal(a.Frames[i].Y, b.Frames[i].Y) ||
			!bytes.Equal(a.Frames[i].Cb, b.Frames[i].Cb) ||
			!bytes.Equal(a.Frames[i].Cr, b.Frames[i].Cr) {
			t.Fatalf("%s: decoded frame %d differs", label, i)
		}
	}
}

func TestDecodeParallelBitExact(t *testing.T) {
	seq := testSeq(t, "crew_like", 96, 64, 25)
	for _, tc := range []struct {
		name string
		mut  func(*Params)
	}{
		{"base", func(p *Params) {}},
		{"slices", func(p *Params) { p.SlicesPerFrame = 2 }},
		{"halfpel_deblock", func(p *Params) { p.HalfPel = true; p.Deblock = true }},
		{"cavlc", func(p *Params) { p.Entropy = CAVLC }},
		{"bframes", func(p *Params) { p.BFrames = 2; p.GOPSize = 6 }},
	} {
		p := testParams()
		p.GOPSize = 8
		tc.mut(&p)
		v, err := Encode(seq, p)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		serial, err := Decode(v)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		for _, workers := range []int{1, 2, 8} {
			parallel, err := DecodeParallel(v, workers)
			if err != nil {
				t.Fatalf("%s workers=%d: %v", tc.name, workers, err)
			}
			sameSequences(t, tc.name, serial, parallel)
		}
	}
}

func TestDecodeParallelCorruptedPayload(t *testing.T) {
	seq := testSeq(t, "sports_like", 96, 64, 24)
	p := testParams()
	p.GOPSize = 8
	v, err := Encode(seq, p)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a deterministic scatter of payload bits in every frame; the
	// parallel decoder must interpret the garbage identically to the serial
	// one (desync, propagation and all).
	for fi, ef := range v.Frames {
		for _, bit := range []int{7, 101, 1031} {
			if pos := bit + 13*fi; pos < len(ef.Payload)*8 {
				ef.Payload[pos/8] ^= 1 << (7 - uint(pos%8))
			}
		}
	}
	serial, err := Decode(v)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 2, 8} {
		parallel, err := DecodeParallel(v, workers)
		if err != nil {
			t.Fatal(err)
		}
		sameSequences(t, "corrupted", serial, parallel)
	}
	// Concealment mode takes a different per-frame path; it must stay
	// equivalent too.
	serialC, err := DecodeWithOptions(v, DecodeOptions{ConcealOnDesync: true})
	if err != nil {
		t.Fatal(err)
	}
	parallelC, err := DecodeContext(context.Background(), v, DecodeOptions{ConcealOnDesync: true}, 8)
	if err != nil {
		t.Fatal(err)
	}
	sameSequences(t, "concealed", serialC, parallelC)
}

func TestHeaderRefSpans(t *testing.T) {
	seq := testSeq(t, "news_like", 64, 48, 20)
	p := testParams()
	p.GOPSize = 8
	v, err := Encode(seq, p)
	if err != nil {
		t.Fatal(err)
	}
	spans := headerRefSpans(v)
	want := [][2]int{{0, 8}, {8, 16}, {16, 20}}
	if len(spans) != len(want) {
		t.Fatalf("spans %v", spans)
	}
	for i := range want {
		if spans[i] != want[i] {
			t.Fatalf("spans %v, want %v", spans, want)
		}
	}
	// A forward reference across the first GOP boundary must keep frames 3
	// and 9 in one span (no cut may separate a frame from its forward ref,
	// which has to be observed as "not yet decoded", exactly as in serial
	// decode). The frames before the dangling ref split off; the 8..16 GOP
	// merges in.
	v.Frames[3].RefFwd = 9
	spans = headerRefSpans(v)
	want = [][2]int{{0, 3}, {3, 16}, {16, 20}}
	if len(spans) != len(want) {
		t.Fatalf("forward ref not honoured: %v", spans)
	}
	for i := range want {
		if spans[i] != want[i] {
			t.Fatalf("forward ref not honoured: %v, want %v", spans, want)
		}
	}
	serial, err := Decode(v)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := DecodeParallel(v, 8)
	if err != nil {
		t.Fatal(err)
	}
	sameSequences(t, "forward-ref", serial, parallel)
	// Out-of-range refs never resolve to a frame and must not affect
	// spanning: restoring frame 3 and pointing an unused backward ref past
	// the end of the video must yield the original GOP spans.
	v.Frames[3].RefFwd = 2
	v.Frames[5].RefBwd = 1 << 20
	got := headerRefSpans(v)
	want = [][2]int{{0, 8}, {8, 16}, {16, 20}}
	for i := range want {
		if len(got) != len(want) || got[i] != want[i] {
			t.Fatalf("out-of-range ref affected spans: %v", got)
		}
	}
}

func TestDecodeContextCancelled(t *testing.T) {
	seq := testSeq(t, "news_like", 64, 48, 8)
	p := testParams()
	p.GOPSize = 4
	v, err := Encode(seq, p)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := DecodeContext(ctx, v, DecodeOptions{}, 2); !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v", err)
	}
}

func TestEncodeParallelContextCancelled(t *testing.T) {
	seq := testSeq(t, "news_like", 64, 48, 8)
	p := testParams()
	p.GOPSize = 4
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := EncodeParallelContext(ctx, seq, p, 2); !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v", err)
	}
}

func BenchmarkEncodeParallel(b *testing.B) {
	b.ReportAllocs()
	seq := testSeq(b, "crew_like", 176, 144, 24)
	p := testParams()
	p.GOPSize = 8
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := EncodeParallel(seq, p, 0); err != nil {
			b.Fatal(err)
		}
	}
}
