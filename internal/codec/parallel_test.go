package codec

import (
	"bytes"
	"testing"
)

func TestEncodeParallelBitExact(t *testing.T) {
	seq := testSeq(t, "crew_like", 96, 64, 25)
	p := testParams()
	p.GOPSize = 8
	serial, err := Encode(seq, p)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := EncodeParallel(seq, p, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(parallel.Frames) != len(serial.Frames) {
		t.Fatalf("frame count %d vs %d", len(parallel.Frames), len(serial.Frames))
	}
	for i := range serial.Frames {
		a, b := serial.Frames[i], parallel.Frames[i]
		if a.Type != b.Type || a.CodedIdx != b.CodedIdx || a.DisplayIdx != b.DisplayIdx ||
			a.RefFwd != b.RefFwd || a.RefBwd != b.RefBwd {
			t.Fatalf("frame %d header mismatch: %+v vs %+v", i, a.Type, b.Type)
		}
		if !bytes.Equal(a.Payload, b.Payload) {
			t.Fatalf("frame %d payload differs", i)
		}
		if len(a.MBs) != len(b.MBs) {
			t.Fatalf("frame %d MB records", i)
		}
		for m := range a.MBs {
			if a.MBs[m].BitStart != b.MBs[m].BitStart || len(a.MBs[m].Deps) != len(b.MBs[m].Deps) {
				t.Fatalf("frame %d MB %d records differ", i, m)
			}
			for d := range a.MBs[m].Deps {
				if a.MBs[m].Deps[d] != b.MBs[m].Deps[d] {
					t.Fatalf("frame %d MB %d dep %d differs", i, m, d)
				}
			}
		}
	}
	// Decodes identically too.
	da, _ := Decode(serial)
	db, _ := Decode(parallel)
	for i := range da.Frames {
		if !bytes.Equal(da.Frames[i].Y, db.Frames[i].Y) {
			t.Fatalf("decoded frame %d differs", i)
		}
	}
}

func TestEncodeParallelRejectsBFrames(t *testing.T) {
	seq := testSeq(t, "news_like", 64, 48, 6)
	p := testParams()
	p.BFrames = 2
	if _, err := EncodeParallel(seq, p, 2); err == nil {
		t.Fatal("open GOPs must be rejected")
	}
}

func TestEncodeParallelPartialFinalGOP(t *testing.T) {
	seq := testSeq(t, "news_like", 64, 48, 10) // 10 frames, GOP 8 -> 8+2
	p := testParams()
	p.GOPSize = 8
	v, err := EncodeParallel(seq, p, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(v.Frames) != 10 {
		t.Fatalf("%d frames", len(v.Frames))
	}
	if v.Frames[8].Type != FrameI {
		t.Fatal("second GOP must start with I")
	}
}

func BenchmarkEncodeParallel(b *testing.B) {
	seq := testSeq(b, "crew_like", 176, 144, 24)
	p := testParams()
	p.GOPSize = 8
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := EncodeParallel(seq, p, 0); err != nil {
			b.Fatal(err)
		}
	}
}
