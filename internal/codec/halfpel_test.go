package codec

import (
	"testing"

	"videoapp/internal/bitio"
	"videoapp/internal/quality"
)

func TestHalfPelEncodeDecodeConsistency(t *testing.T) {
	seq := testSeq(t, "parkrun_like", 96, 64, 12)
	p := testParams()
	p.HalfPel = true
	_, dec := encodeDecode(t, seq, p)
	psnr, _ := quality.PSNR(seq, dec)
	if psnr < 28 {
		t.Fatalf("half-pel decode PSNR %.2f dB", psnr)
	}
	// The real drift check: the last frame of the P chain.
	last, _ := quality.PSNRFrame(seq.Frames[11], dec.Frames[11])
	if last < 26 {
		t.Fatalf("half-pel chain drifted: final frame %.2f dB", last)
	}
}

func TestHalfPelImprovesSubPixelMotion(t *testing.T) {
	// Shaky content with fractional effective motion: half-pel compensation
	// should spend fewer bits and/or deliver better quality. Compare the
	// rate-distortion product rather than either alone.
	seq := testSeq(t, "handheld_like", 96, 64, 10)
	score := func(halfpel bool) (float64, int64) {
		p := testParams()
		p.HalfPel = halfpel
		v, err := Encode(seq, p)
		if err != nil {
			t.Fatal(err)
		}
		dec, err := Decode(v)
		if err != nil {
			t.Fatal(err)
		}
		psnr, _ := quality.PSNR(seq, dec)
		return psnr, v.TotalPayloadBits()
	}
	p0, b0 := score(false)
	p1, b1 := score(true)
	t.Logf("full-pel: %.2f dB / %d bits; half-pel: %.2f dB / %d bits", p0, b0, p1, b1)
	// Half-pel must not be strictly worse on both axes.
	if p1 < p0-0.05 && b1 > b0 {
		t.Fatalf("half-pel worse on both rate and distortion")
	}
}

func TestHalfPelContainerRoundTrip(t *testing.T) {
	seq := testSeq(t, "crew_like", 64, 48, 5)
	p := testParams()
	p.HalfPel = true
	v, err := Encode(seq, p)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Unmarshal(Marshal(v))
	if err != nil {
		t.Fatal(err)
	}
	if !got.Params.HalfPel {
		t.Fatal("half-pel flag lost")
	}
	a, _ := Decode(v)
	b, _ := Decode(got)
	for i := range a.Frames {
		for j := range a.Frames[i].Y {
			if a.Frames[i].Y[j] != b.Frames[i].Y[j] {
				t.Fatal("container decode differs")
			}
		}
	}
}

func TestHalfPelReanalyzeRecoversDeps(t *testing.T) {
	seq := testSeq(t, "crew_like", 64, 48, 6)
	p := testParams()
	p.HalfPel = true
	v, err := Encode(seq, p)
	if err != nil {
		t.Fatal(err)
	}
	stripped, err := Unmarshal(Marshal(v))
	if err != nil {
		t.Fatal(err)
	}
	if err := Reanalyze(stripped); err != nil {
		t.Fatal(err)
	}
	for fi, ef := range v.Frames {
		for mi, want := range ef.MBs {
			got := stripped.Frames[fi].MBs[mi]
			if len(got.Deps) != len(want.Deps) {
				t.Fatalf("frame %d MB %d: %d deps vs %d", fi, mi, len(got.Deps), len(want.Deps))
			}
			for d := range want.Deps {
				if got.Deps[d] != want.Deps[d] {
					t.Fatalf("frame %d MB %d dep %d: %+v vs %+v", fi, mi, d, got.Deps[d], want.Deps[d])
				}
			}
		}
	}
}

func TestHalfPelCorruptionSafety(t *testing.T) {
	seq := testSeq(t, "sports_like", 64, 48, 5)
	p := testParams()
	p.HalfPel = true
	v, err := Encode(seq, p)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 15; trial++ {
		c := v.Clone()
		for _, f := range c.Frames {
			bitio.FlipBit(f.Payload, int64(trial*53)%f.PayloadBits())
		}
		if _, err := Decode(c); err != nil {
			t.Fatal(err)
		}
	}
}

func TestHalfPelAnalysisMonotone(t *testing.T) {
	seq := testSeq(t, "parkrun_like", 96, 64, 8)
	p := testParams()
	p.HalfPel = true
	v, err := Encode(seq, p)
	if err != nil {
		t.Fatal(err)
	}
	// Dependencies must stay in-range and pixel counts conserved per MB.
	for _, f := range v.Frames {
		for _, mb := range f.MBs {
			for _, d := range mb.Deps {
				if d.Pixels <= 0 || d.Pixels > 256 {
					t.Fatalf("dep pixels %d", d.Pixels)
				}
				if d.SrcMB.X < 0 || d.SrcMB.X >= v.MBCols() || d.SrcMB.Y < 0 || d.SrcMB.Y >= v.MBRows() {
					t.Fatalf("dep MB out of range: %+v", d)
				}
			}
		}
	}
}
