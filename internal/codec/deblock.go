package codec

import "videoapp/internal/frame"

// In-loop deblocking, a simplified version of the H.264 filter: after a
// frame is fully reconstructed, block edges on the 4×4 grid are smoothed
// when the discontinuity across the edge is small enough to be quantization
// blocking (large discontinuities are real content edges and are left
// alone). The filter runs identically in the encoder and the decoder, so
// reconstructed references stay bit-exact between them.
//
// Thresholds follow the H.264 idea of scaling with QP: stronger quantization
// produces stronger blocking, so more filtering is allowed.

// deblockThresholds returns the edge-detection (alpha) and sample-clip
// (beta) thresholds for a quantizer.
func deblockThresholds(qp int) (alpha, beta int) {
	// Piecewise-exponential ramps, clamped like the H.264 tables.
	a := 2 + qp*qp/24
	if a > 255 {
		a = 255
	}
	b := 1 + qp/4
	if b > 18 {
		b = 18
	}
	return a, b
}

// deblockFrame filters all 4×4 luma edges of rec in place. qps holds the
// per-macroblock quantizers used for reconstruction.
func deblockFrame(rec *frame.Frame, qps []int, mbCols int) {
	// Vertical edges (filtering across columns), then horizontal edges.
	for y := 0; y < rec.H; y++ {
		for x := 4; x < rec.W; x += 4 {
			qp := qps[(y/16)*mbCols+x/16]
			filterEdge(rec, x, y, 1, 0, qp)
		}
	}
	for y := 4; y < rec.H; y += 4 {
		for x := 0; x < rec.W; x++ {
			qp := qps[(y/16)*mbCols+x/16]
			filterEdge(rec, x, y, 0, 1, qp)
		}
	}
}

// filterEdge smooths one sample pair across an edge at (x, y); (dx, dy) is
// the direction across the edge.
func filterEdge(rec *frame.Frame, x, y, dx, dy, qp int) {
	alpha, beta := deblockThresholds(qp)
	p0 := int(rec.LumaAt(x-dx, y-dy))
	q0 := int(rec.LumaAt(x, y))
	d0 := p0 - q0
	if d0 < 0 {
		d0 = -d0
	}
	if d0 == 0 || d0 >= alpha {
		return // flat already, or a real edge
	}
	p1 := int(rec.LumaAt(x-2*dx, y-2*dy))
	q1 := int(rec.LumaAt(x+dx, y+dy))
	if abs(p1-p0) >= beta || abs(q1-q0) >= beta {
		return // activity next to the edge: not blocking
	}
	// Weak four-tap smoothing of the two edge samples.
	delta := clamp(((q0-p0)*3+(p1-q1)+4)>>3, -beta, beta)
	rec.SetLuma(x-dx, y-dy, frame.ClampU8(p0+delta))
	rec.SetLuma(x, y, frame.ClampU8(q0-delta))
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

func clamp(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
