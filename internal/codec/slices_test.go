package codec

import (
	"testing"

	"videoapp/internal/bitio"
	"videoapp/internal/quality"
)

func sliceParams(n int) Params {
	p := testParams()
	p.SlicesPerFrame = n
	return p
}

func TestSlicedEncodeDecodeQuality(t *testing.T) {
	seq := testSeq(t, "crew_like", 96, 64, 8)
	for _, n := range []int{1, 2, 4} {
		_, dec := encodeDecode(t, seq, sliceParams(n))
		psnr, _ := quality.PSNR(seq, dec)
		if psnr < 28 {
			t.Fatalf("%d slices: PSNR %.2f dB", n, psnr)
		}
	}
}

func TestSliceTablesRecorded(t *testing.T) {
	seq := testSeq(t, "crew_like", 96, 64, 4)
	v, _ := encodeDecode(t, seq, sliceParams(4))
	for fi, f := range v.Frames {
		if len(f.SliceMBStart) != 4 {
			t.Fatalf("frame %d: %d slices", fi, len(f.SliceMBStart))
		}
		if f.SliceMBStart[0] != 0 || f.SliceByteStart[0] != 0 {
			t.Fatal("first slice must start at 0")
		}
		for s := 1; s < 4; s++ {
			if f.SliceMBStart[s] <= f.SliceMBStart[s-1] {
				t.Fatal("slice MB starts must increase")
			}
			if f.SliceByteStart[s] <= f.SliceByteStart[s-1] {
				t.Fatal("slice byte starts must increase")
			}
			if f.SliceMBStart[s]%v.MBCols() != 0 {
				t.Fatal("slices must start at row boundaries")
			}
		}
	}
}

func TestSliceHeaderRoundTrip(t *testing.T) {
	f := &EncodedFrame{
		Type: FrameP, CodedIdx: 3, DisplayIdx: 3, BaseQP: 24,
		RefFwd: 2, RefBwd: -1, Payload: make([]byte, 100),
		SliceMBStart:   []int{0, 12, 24},
		SliceByteStart: []int{0, 40, 70},
	}
	var g EncodedFrame
	if _, err := unmarshalHeader(marshalHeader(f), &g); err != nil {
		t.Fatal(err)
	}
	if len(g.SliceMBStart) != 3 || g.SliceMBStart[1] != 12 || g.SliceByteStart[2] != 70 {
		t.Fatalf("slice tables: %+v", g)
	}
}

func TestSliceOfMB(t *testing.T) {
	f := &EncodedFrame{SliceMBStart: []int{0, 10, 20}}
	cases := map[int]int{0: 0, 9: 0, 10: 1, 19: 1, 20: 2, 99: 2}
	for m, want := range cases {
		if got := f.SliceOfMB(m); got != want {
			t.Fatalf("SliceOfMB(%d) = %d, want %d", m, got, want)
		}
	}
}

func TestSlicesCostExtraStorage(t *testing.T) {
	// §8: each slice resets the entropy context and forfeits cross-slice
	// prediction, so more slices must cost more bits.
	seq := testSeq(t, "stockholm_like", 96, 64, 10)
	v1, err := Encode(seq, sliceParams(1))
	if err != nil {
		t.Fatal(err)
	}
	v4, err := Encode(seq, sliceParams(4))
	if err != nil {
		t.Fatal(err)
	}
	if v4.TotalPayloadBits() <= v1.TotalPayloadBits() {
		t.Fatalf("4 slices %d bits <= 1 slice %d bits", v4.TotalPayloadBits(), v1.TotalPayloadBits())
	}
}

func TestSliceContainsCodingErrors(t *testing.T) {
	// The point of slices: a flip in the LAST slice must not damage the
	// rows of earlier slices in the same frame.
	seq := testSeq(t, "parkrun_like", 96, 64, 6)
	v, err := Encode(seq, sliceParams(2))
	if err != nil {
		t.Fatal(err)
	}
	clean, err := DecodeRecs(v)
	if err != nil {
		t.Fatal(err)
	}
	target := 2 // a P frame
	f := v.Frames[target]
	// Flip inside the second slice's payload span.
	lastSliceBitStart := int64(f.SliceByteStart[1]) * 8
	c := v.Clone()
	bitio.FlipBit(c.Frames[target].Payload, lastSliceBitStart+8)
	dec := DecodeSingle(c, target, clean)

	// Rows of slice 0 (above SliceMBStart[1]) must be untouched.
	topRows := f.SliceMBStart[1] / v.MBCols() * 16
	for y := 0; y < topRows; y++ {
		for x := 0; x < v.W; x++ {
			if dec.Y[y*v.W+x] != clean[target].Y[y*v.W+x] {
				t.Fatalf("slice 0 pixel (%d,%d) damaged by a slice-1 flip", x, y)
			}
		}
	}
	// And the flip must damage something in slice 1.
	damaged := false
	for y := topRows; y < v.H && !damaged; y++ {
		for x := 0; x < v.W; x++ {
			if dec.Y[y*v.W+x] != clean[target].Y[y*v.W+x] {
				damaged = true
				break
			}
		}
	}
	if !damaged {
		t.Fatal("flip produced no damage at all")
	}
}

func TestSlicedCorruptDecodeNeverPanics(t *testing.T) {
	seq := testSeq(t, "sports_like", 64, 48, 5)
	v, err := Encode(seq, sliceParams(3))
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 20; trial++ {
		c := v.Clone()
		for _, f := range c.Frames {
			bitio.FlipBit(f.Payload, int64(trial*37)%f.PayloadBits())
		}
		if _, err := Decode(c); err != nil {
			t.Fatal(err)
		}
	}
}

func TestSliceCountClampedToRows(t *testing.T) {
	// 48 px = 3 MB rows; asking for 16 slices must degrade gracefully.
	seq := testSeq(t, "news_like", 64, 48, 3)
	v, err := Encode(seq, sliceParams(16))
	if err != nil {
		t.Fatal(err)
	}
	if len(v.Frames[0].SliceMBStart) != 3 {
		t.Fatalf("%d slices for 3 MB rows", len(v.Frames[0].SliceMBStart))
	}
	if _, err := Decode(v); err != nil {
		t.Fatal(err)
	}
}
