package codec

import (
	"fmt"
	"runtime"
	"sync"

	"videoapp/internal/frame"
)

// EncodeParallel encodes GOPs concurrently and produces a video bit-exactly
// identical to Encode. It requires a closed-GOP structure (BFrames == 0):
// every GOP then starts with an I frame and references only frames within
// itself, so GOPs are independent units of work. workers <= 0 selects
// GOMAXPROCS.
func EncodeParallel(seq *frame.Sequence, p Params, workers int) (*Video, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if p.BFrames != 0 {
		return nil, fmt.Errorf("codec: parallel encoding requires BFrames == 0 (open GOPs are not independent)")
	}
	if len(seq.Frames) == 0 {
		return nil, fmt.Errorf("codec: empty sequence")
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	// Chunk the display frames into GOPs.
	type chunk struct {
		start int // display index of the chunk's I frame
		end   int // exclusive
	}
	var chunks []chunk
	for s := 0; s < len(seq.Frames); s += p.GOPSize {
		e := s + p.GOPSize
		if e > len(seq.Frames) {
			e = len(seq.Frames)
		}
		chunks = append(chunks, chunk{start: s, end: e})
	}

	videos := make([]*Video, len(chunks))
	errs := make([]error, len(chunks))
	var wg sync.WaitGroup
	sem := make(chan struct{}, workers)
	for ci, ch := range chunks {
		wg.Add(1)
		go func(ci int, ch chunk) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			sub := &frame.Sequence{Name: seq.Name, FPS: seq.FPS, Frames: seq.Frames[ch.start:ch.end]}
			videos[ci], errs[ci] = Encode(sub, p)
		}(ci, ch)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	// Stitch: shift frame indices and dependency references by the chunk's
	// base position.
	out := &Video{Params: p, W: seq.W(), H: seq.H(), FPS: seq.FPS}
	base := 0
	for ci, v := range videos {
		for _, f := range v.Frames {
			f.CodedIdx += base
			f.DisplayIdx += base
			if f.RefFwd >= 0 {
				f.RefFwd += base
			}
			if f.RefBwd >= 0 {
				f.RefBwd += base
			}
			for i := range f.MBs {
				for d := range f.MBs[i].Deps {
					f.MBs[i].Deps[d].SrcFrame += base
				}
			}
			out.Frames = append(out.Frames, f)
		}
		base += chunks[ci].end - chunks[ci].start
	}
	return out, nil
}
