package codec

import (
	"context"
	"fmt"

	"videoapp/internal/frame"
	"videoapp/internal/obs"
	"videoapp/internal/par"
)

// EncodeParallel encodes GOPs concurrently and produces a video bit-exactly
// identical to Encode. It requires a closed-GOP structure (BFrames == 0):
// every GOP then starts with an I frame and references only frames within
// itself, so GOPs are independent units of work. workers <= 0 selects
// GOMAXPROCS.
func EncodeParallel(seq *frame.Sequence, p Params, workers int) (*Video, error) {
	//vetvideoapp:allow ctxfirst — EncodeParallel is the documented context-less convenience form of EncodeParallelContext
	return EncodeParallelContext(context.Background(), seq, p, workers)
}

// EncodeParallelContext is EncodeParallel with cooperative cancellation:
// ctx is checked at GOP boundaries, and a cancelled context aborts the
// remaining GOPs and returns ctx.Err(). An observer attached to ctx
// (obs.With) receives the encode stage span, per-GOP frame progress and
// per-frame-type counters; GOP workers run under pprof labels
// (stage=encode, gop=N) so CPU profiles attribute samples per GOP.
func EncodeParallelContext(ctx context.Context, seq *frame.Sequence, p Params, workers int) (*Video, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if p.BFrames != 0 {
		return nil, fmt.Errorf("codec: parallel encoding requires BFrames == 0 (open GOPs are not independent)")
	}
	if len(seq.Frames) == 0 {
		return nil, fmt.Errorf("codec: empty sequence")
	}
	o := obs.From(ctx)
	defer obs.StartSpan(o, obs.StageEncode).End()
	// Chunk the display frames into GOPs.
	type chunk struct {
		start int // display index of the chunk's I frame
		end   int // exclusive
	}
	var chunks []chunk
	for s := 0; s < len(seq.Frames); s += p.GOPSize {
		e := s + p.GOPSize
		if e > len(seq.Frames) {
			e = len(seq.Frames)
		}
		chunks = append(chunks, chunk{start: s, end: e})
	}

	videos := make([]*Video, len(chunks))
	err := par.ForEachLabeled(ctx, len(chunks), workers, obs.StageEncode, "gop", func(ci int) error {
		ch := chunks[ci]
		sub := &frame.Sequence{Name: seq.Name, FPS: seq.FPS, Frames: seq.Frames[ch.start:ch.end]}
		var err error
		videos[ci], err = Encode(sub, p)
		if err == nil {
			o.FrameDone(obs.StageEncode, ch.end-ch.start)
		}
		return err
	})
	if err != nil {
		return nil, err
	}

	// Stitch: shift frame indices and dependency references by the chunk's
	// base position.
	out := &Video{Params: p, W: seq.W(), H: seq.H(), FPS: seq.FPS}
	base := 0
	for ci, v := range videos {
		v.ShiftIndices(base)
		for _, f := range v.Frames {
			o.Counter(obs.CtrEncodeFrames, f.Type.String(), 1)
			out.Frames = append(out.Frames, f)
		}
		base += chunks[ci].end - chunks[ci].start
	}
	return out, nil
}

// headerRefSpans partitions the coded order into maximal runs whose frames
// reference (via their precisely-stored header refs) no frame outside the
// run, in either direction. Each run is then an independent decode unit: a
// closed-GOP video splits at every I frame, while a video with arbitrary
// (e.g. corrupted-container) reference structure degrades gracefully toward
// a single serial span. Only the headers matter — payload corruption cannot
// move a span boundary, so parallel decode of a damaged video stays exactly
// as resilient as serial decode.
func headerRefSpans(v *Video) [][2]int {
	n := len(v.Frames)
	if n == 0 {
		return nil
	}
	// A cut before frame c is sound iff no frame at or after c references a
	// frame before c (suffix min) AND no frame before c references a frame
	// at or after c (prefix max). The second direction matters for
	// malformed inputs: a forward reference must observe the same
	// "not yet decoded" nil the serial pass sees, never a speculatively
	// decoded frame from a later span. Out-of-range refs never resolve to a
	// frame, so they are ignored.
	sufMin := make([]int, n+1)
	sufMin[n] = n
	for i := n - 1; i >= 0; i-- {
		m := sufMin[i+1]
		for _, r := range [2]int{v.Frames[i].RefFwd, v.Frames[i].RefBwd} {
			if validFrameRef(r, n) && r < m {
				m = r
			}
		}
		sufMin[i] = m
	}
	var spans [][2]int
	start, preMax := 0, -1
	for c := 1; c < n; c++ {
		for _, r := range [2]int{v.Frames[c-1].RefFwd, v.Frames[c-1].RefBwd} {
			if validFrameRef(r, n) && r > preMax {
				preMax = r
			}
		}
		if sufMin[c] >= c && preMax < c {
			spans = append(spans, [2]int{start, c})
			start = c
		}
	}
	return append(spans, [2]int{start, n})
}

// DecodeParallel decodes independent closed-GOP spans concurrently and is
// bit- and pixel-identical to Decode for any input, including corrupted
// payloads. workers <= 0 selects GOMAXPROCS.
func DecodeParallel(v *Video, workers int) (*frame.Sequence, error) {
	//vetvideoapp:allow ctxfirst — DecodeParallel is the documented context-less convenience form of DecodeContext
	return DecodeContext(context.Background(), v, DecodeOptions{}, workers)
}

// DecodeContext is the parallel decoder with explicit options and
// cooperative cancellation checked at frame boundaries. Unless opts already
// carries an Observer, the one attached to ctx (obs.With) receives the
// decode stage span, per-frame progress and counters, including the
// entropy-resync events of damaged slices; span workers run under pprof
// labels (stage=decode, span=N).
func DecodeContext(ctx context.Context, v *Video, opts DecodeOptions, workers int) (*frame.Sequence, error) {
	if v.W%frame.MBSize != 0 || v.H%frame.MBSize != 0 || v.W <= 0 || v.H <= 0 {
		return nil, errFrameGeometry(v.W, v.H)
	}
	if opts.Observer == nil {
		opts.Observer = obs.From(ctx)
	}
	o := opts.Observer
	defer obs.StartSpan(o, obs.StageDecode).End()
	// Spans never share reference frames, so each goroutine touches only its
	// own disjoint range of rec; within a span frames decode in coded order,
	// exactly as the serial pass does.
	rec := make([]*frame.Frame, len(v.Frames))
	spans := headerRefSpans(v)
	err := par.ForEachLabeled(ctx, len(spans), workers, obs.StageDecode, "span", func(si int) error {
		sp := spans[si]
		for i := sp[0]; i < sp[1]; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			rec[i] = decodeSingleOpts(v, i, rec, opts)
			o.Counter(obs.CtrDecodeFrames, v.Frames[i].Type.String(), 1)
			o.FrameDone(obs.StageDecode, 1)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return RecsToDisplay(v, rec)
}
