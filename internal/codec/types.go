// Package codec implements the H.264-class video encoder and decoder used as
// the experimental substrate: I/P/B frames, macroblock partitioning, intra
// and motion-compensated prediction with predictive metadata coding (median
// motion vectors, median-predicted delta-QP), the 4×4 integer transform, and
// CABAC- or CAVLC-style entropy coding.
//
// Beyond encoding and decoding, the codec records for every macroblock its
// exact bit range within the frame payload and its pixel-level reference
// footprints; these records are the input to the VideoApp dependency
// analysis in internal/core. The decoder is error-resilient by construction:
// arbitrarily corrupted payloads decode to damaged pictures (never panics,
// never aborts), reproducing the error-propagation behaviour of a real
// concealing decoder that the paper measures.
package codec

import (
	"fmt"

	"videoapp/internal/frame"
	"videoapp/internal/predict"
)

// FrameType classifies coded frames.
type FrameType int

// Frame types.
const (
	FrameI FrameType = iota
	FrameP
	FrameB
)

func (t FrameType) String() string {
	switch t {
	case FrameI:
		return "I"
	case FrameP:
		return "P"
	case FrameB:
		return "B"
	default:
		return fmt.Sprintf("FrameType(%d)", int(t))
	}
}

// EntropyKind selects the entropy-coding backend.
type EntropyKind int

// Entropy coder choices. CABAC is the paper's (deliberately conservative)
// default; CAVLC is the error-resilient alternative discussed in §8.
const (
	CABAC EntropyKind = iota
	CAVLC
)

func (k EntropyKind) String() string {
	if k == CAVLC {
		return "CAVLC"
	}
	return "CABAC"
}

// Params configures the encoder.
type Params struct {
	// CRF is the constant-rate-factor quality target; the paper evaluates
	// 24 (standard), 20 (high) and 16 (very high). It maps to the base QP.
	CRF int
	// GOPSize is the I-frame interval in display frames (checkpoint
	// distance limiting error propagation). Must be >= 1.
	GOPSize int
	// BFrames is the number of B frames between consecutive anchor frames.
	BFrames int
	// BReference allows B frames to be used as references. H.264 provides a
	// flag to disallow it, creating unreferenced frames in which errors
	// cannot propagate (§8); false is that conservative setting.
	BReference bool
	// Entropy selects CABAC (default) or CAVLC.
	Entropy EntropyKind
	// SearchRange bounds motion estimation, in pixels.
	SearchRange int
	// ActivityAQ enables per-macroblock adaptive quantization from local
	// activity, exercising delta-QP predictive coding.
	ActivityAQ bool
	// SlicesPerFrame divides each frame into horizontal slice bands, each
	// with its own entropy context and no cross-slice prediction, limiting
	// coding error propagation to the slice at the cost of extra storage
	// (§8). The paper's conservative setting is 1.
	SlicesPerFrame int
	// Deblock enables the in-loop deblocking filter on reconstructed
	// frames (applied identically by encoder and decoder).
	Deblock bool
	// HalfPel enables half-pixel motion compensation (6-tap interpolation);
	// motion vectors are then coded in half-pel units.
	HalfPel bool
}

// DefaultParams returns the paper's standard-quality configuration.
func DefaultParams() Params {
	return Params{
		CRF:         24,
		GOPSize:     60,
		BFrames:     0,
		Entropy:     CABAC,
		SearchRange: 16,
		ActivityAQ:  true,
	}
}

// Validate reports configuration errors.
func (p Params) Validate() error {
	if p.CRF < 0 || p.CRF > 51 {
		return fmt.Errorf("codec: CRF %d outside 0..51", p.CRF)
	}
	if p.GOPSize < 1 {
		return fmt.Errorf("codec: GOP size %d must be >= 1", p.GOPSize)
	}
	if p.BFrames < 0 || p.BFrames > 7 {
		return fmt.Errorf("codec: BFrames %d outside 0..7", p.BFrames)
	}
	if p.SearchRange < 1 || p.SearchRange > predict.MaxMV {
		return fmt.Errorf("codec: search range %d outside 1..%d", p.SearchRange, predict.MaxMV)
	}
	if p.BFrames > 0 && p.GOPSize%(p.BFrames+1) != 0 {
		return fmt.Errorf("codec: GOP size %d must be a multiple of BFrames+1 = %d", p.GOPSize, p.BFrames+1)
	}
	if p.SlicesPerFrame < 0 || p.SlicesPerFrame > 16 {
		return fmt.Errorf("codec: slices per frame %d outside 0..16", p.SlicesPerFrame)
	}
	return nil
}

// slices normalizes the slice count (0 means the default single slice).
func (p Params) slices() int {
	if p.SlicesPerFrame < 1 {
		return 1
	}
	return p.SlicesPerFrame
}

// CompDep is one compensation dependency: the coded macroblock references
// Pixels pixels of SrcMB in the frame at coded index SrcFrame. Weight on the
// dependency edge is Pixels divided by the macroblock area contributed by
// all deps of the destination MB.
type CompDep struct {
	SrcFrame int
	SrcMB    frame.MB
	Pixels   int
}

// MBRecord is the per-macroblock metadata captured during encoding that the
// VideoApp analysis consumes.
type MBRecord struct {
	MB frame.MB
	// BitStart and BitLen delimit this macroblock's bits within the frame
	// payload. With CABAC, symbol boundaries are attributed at the precision
	// of the arithmetic coder's output (carry-delayed bits are charged to
	// the symbol that flushes them).
	BitStart, BitLen int64
	// Intra reports whether the MB was spatially predicted.
	Intra bool
	// Deps lists compensation (and intra reference) dependencies.
	Deps []CompDep
	// QP is the quantizer actually used (for diagnostics).
	QP int
}

// EncodedFrame is one coded frame: a small precisely-stored header plus an
// entropy-coded payload, with per-MB records.
type EncodedFrame struct {
	Type FrameType
	// CodedIdx is the frame's position in coded (stream) order.
	CodedIdx int
	// DisplayIdx is the frame's position in display order.
	DisplayIdx int
	// BaseQP is the frame-level quantizer before per-MB deltas.
	BaseQP int
	// RefFwd and RefBwd are coded indices of the reference frames
	// (-1 when absent).
	RefFwd, RefBwd int
	// Payload is the entropy-coded macroblock data, byte-aligned.
	Payload []byte
	// MBs are the per-macroblock records in scan order.
	MBs []MBRecord
	// SliceMBStart lists the first macroblock index of each slice; its
	// length is the slice count. A single-slice frame holds {0}.
	SliceMBStart []int
	// SliceByteStart lists each slice's byte offset within Payload.
	SliceByteStart []int
}

// SliceOfMB returns the index of the slice containing macroblock m.
func (f *EncodedFrame) SliceOfMB(m int) int {
	s := 0
	for i, start := range f.SliceMBStart {
		if m >= start {
			s = i
		}
	}
	return s
}

// PayloadBits returns the payload length in bits.
func (f *EncodedFrame) PayloadBits() int64 { return int64(len(f.Payload)) * 8 }

// Video is a complete encoded video in coded order.
type Video struct {
	Params Params
	W, H   int
	FPS    int
	Frames []*EncodedFrame

	// arena is non-nil only on videos produced by ClonePooled; Release
	// returns it to the pool.
	arena *cloneArena
}

// TotalPayloadBits sums the entropy-coded payload sizes.
func (v *Video) TotalPayloadBits() int64 {
	var n int64
	for _, f := range v.Frames {
		n += f.PayloadBits()
	}
	return n
}

// HeaderBits returns the total size of the precisely-stored frame headers
// (marshalled form).
func (v *Video) HeaderBits() int64 {
	var n int64
	for _, f := range v.Frames {
		n += int64(len(marshalHeader(f))) * 8
	}
	return n
}

// MBCols returns macroblock columns of the coded picture.
func (v *Video) MBCols() int { return v.W / frame.MBSize }

// MBRows returns macroblock rows of the coded picture.
func (v *Video) MBRows() int { return v.H / frame.MBSize }

// ShiftIndices rebases every frame index in the video by base: coded and
// display indices, header reference indices and per-macroblock dependency
// sources all move together. It is the stitching primitive behind
// GOP-parallel encoding and chunked streaming: a closed-GOP video encoded as
// an independent unit becomes part of a longer video by shifting its indices
// to the unit's global first-frame position. Payload bytes are untouched, so
// shifting never changes what the bits decode to.
func (v *Video) ShiftIndices(base int) {
	for _, f := range v.Frames {
		f.CodedIdx += base
		f.DisplayIdx += base
		if f.RefFwd >= 0 {
			f.RefFwd += base
		}
		if f.RefBwd >= 0 {
			f.RefBwd += base
		}
		for i := range f.MBs {
			for d := range f.MBs[i].Deps {
				f.MBs[i].Deps[d].SrcFrame += base
			}
		}
	}
}

// Clone returns a deep copy of the video (payload bytes are copied so error
// injection never mutates the original). The copy is laid out in one flat
// arena — a handful of allocations regardless of frame count. ClonePooled is
// the same copy with the arena recycled through a pool.
func (v *Video) Clone() *Video {
	return v.cloneInto(new(cloneArena))
}
