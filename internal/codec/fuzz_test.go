package codec

import (
	"testing"

	"videoapp/internal/synth"
)

// Fuzz targets: the decoder and container parser must be total — any byte
// sequence either decodes to a picture or returns an error, never panics.
// Without -fuzz these run the seed corpus as regular tests.

func fuzzSeedVideo(f *testing.F) *Video {
	f.Helper()
	cfg, _ := synth.PresetByName("crew_like")
	seq := synth.Generate(cfg.ScaleTo(64, 48, 4))
	p := DefaultParams()
	p.GOPSize = 4
	p.SearchRange = 8
	v, err := Encode(seq, p)
	if err != nil {
		f.Fatal(err)
	}
	return v
}

func FuzzDecodePayload(f *testing.F) {
	v := fuzzSeedVideo(f)
	f.Add(v.Frames[1].Payload)
	f.Add([]byte{})
	f.Add([]byte{0xFF, 0xFF, 0xFF})
	f.Fuzz(func(t *testing.T, payload []byte) {
		c := v.Clone()
		c.Frames[1].Payload = payload
		if _, err := Decode(c); err != nil {
			t.Fatalf("decode must tolerate arbitrary payloads: %v", err)
		}
	})
}

func FuzzUnmarshal(f *testing.F) {
	v := fuzzSeedVideo(f)
	f.Add(Marshal(v))
	f.Add([]byte("VAPP"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := Unmarshal(data)
		if err != nil {
			return // rejected is fine; panics are not
		}
		// Whatever parses must also decode safely.
		if _, err := Decode(got); err != nil {
			// Geometry or index errors are acceptable outcomes.
			return
		}
	})
}

func FuzzCorruptSliceTables(f *testing.F) {
	v := fuzzSeedVideo(f)
	f.Add(0, 0)
	f.Add(1000, -5)
	f.Fuzz(func(t *testing.T, mbStart, byteStart int) {
		c := v.Clone()
		c.Frames[1].SliceMBStart = []int{0, mbStart}
		c.Frames[1].SliceByteStart = []int{0, byteStart}
		if _, err := Decode(c); err != nil {
			t.Fatalf("decode must tolerate corrupt slice tables: %v", err)
		}
	})
}
