package codec

import (
	"testing"

	"videoapp/internal/frame"
	"videoapp/internal/quality"
)

func TestABRHitsTargetBitrate(t *testing.T) {
	seq := testSeq(t, "parkrun_like", 96, 64, 30)
	p := testParams()
	p.GOPSize = 30
	// Pick a target near what CRF 24 produces so the controller has a
	// reachable setpoint, then verify convergence within a factor.
	ref, err := Encode(seq, p)
	if err != nil {
		t.Fatal(err)
	}
	natural := ref.TotalPayloadBits() * int64(seq.FPS) / int64(len(seq.Frames))
	for _, scale := range []int64{2, 1, 2} {
		target := natural / scale
		v, err := EncodeABR(seq, p, target)
		if err != nil {
			t.Fatal(err)
		}
		got := v.TotalPayloadBits() * int64(seq.FPS) / int64(len(seq.Frames))
		ratio := float64(got) / float64(target)
		if ratio < 0.4 || ratio > 2.5 {
			t.Fatalf("target %d bps, got %d bps (ratio %.2f)", target, got, ratio)
		}
	}
}

func TestABRLowerTargetFewerBits(t *testing.T) {
	seq := testSeq(t, "crew_like", 96, 64, 20)
	p := testParams()
	p.GOPSize = 20
	hi, err := EncodeABR(seq, p, 2_000_000)
	if err != nil {
		t.Fatal(err)
	}
	lo, err := EncodeABR(seq, p, 100_000)
	if err != nil {
		t.Fatal(err)
	}
	if lo.TotalPayloadBits() >= hi.TotalPayloadBits() {
		t.Fatalf("low target %d bits >= high target %d bits",
			lo.TotalPayloadBits(), hi.TotalPayloadBits())
	}
}

func TestABRDecodes(t *testing.T) {
	seq := testSeq(t, "news_like", 96, 64, 12)
	p := testParams()
	v, err := EncodeABR(seq, p, 500_000)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := Decode(v)
	if err != nil {
		t.Fatal(err)
	}
	psnr, _ := quality.PSNR(seq, dec)
	if psnr < 25 {
		t.Fatalf("ABR decode PSNR %.2f dB", psnr)
	}
}

func TestABRRejectsBadConfig(t *testing.T) {
	seq := testSeq(t, "news_like", 64, 48, 3)
	if _, err := EncodeABR(seq, testParams(), 0); err == nil {
		t.Fatal("zero bitrate must fail")
	}
	p := testParams()
	p.BFrames = 2
	if _, err := EncodeABR(seq, p, 100000); err == nil {
		t.Fatal("B frames must be rejected")
	}
	if _, err := EncodeABR(&frame.Sequence{}, testParams(), 100000); err == nil {
		t.Fatal("empty sequence must fail")
	}
}

func TestABRAnalysisCompatible(t *testing.T) {
	// ABR output must flow through the VideoApp analysis like any encode.
	seq := testSeq(t, "crew_like", 64, 48, 8)
	p := testParams()
	p.GOPSize = 8
	v, err := EncodeABR(seq, p, 300_000)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range v.Frames {
		if len(f.MBs) != v.MBCols()*v.MBRows() {
			t.Fatal("MB records missing")
		}
	}
}
