package core

import (
	"context"
	"errors"
	"testing"

	"videoapp/internal/codec"
	"videoapp/internal/frame"
)

// TestAnalyzeContextBitIdentical verifies the headline guarantee of the
// parallel analysis: every importance value is bit-identical to the serial
// sweep at every worker count, because spans of the dependency DAG never
// interleave their floating-point accumulations.
func TestAnalyzeContextBitIdentical(t *testing.T) {
	p := smallParams()
	p.GOPSize = 4 // 12 frames -> 3 independent spans
	v := encodeTestVideo(t, "crew_like", 64, 48, 12, p)
	ref := Analyze(v, DefaultOptions())
	for _, workers := range []int{1, 2, 8} {
		an, err := AnalyzeContext(context.Background(), v, DefaultOptions(), workers)
		if err != nil {
			t.Fatal(err)
		}
		for f := range ref.Importance {
			for m := range ref.Importance[f] {
				if an.Importance[f][m] != ref.Importance[f][m] {
					t.Fatalf("workers=%d: frame %d MB %d: %v != %v",
						workers, f, m, an.Importance[f][m], ref.Importance[f][m])
				}
				if an.CompImportance[f][m] != ref.CompImportance[f][m] {
					t.Fatalf("workers=%d: frame %d MB %d: comp importance differs", workers, f, m)
				}
			}
		}
	}
}

func TestDepSpansClosedGOPs(t *testing.T) {
	p := smallParams()
	p.GOPSize = 4
	v := encodeTestVideo(t, "news_like", 64, 48, 10, p)
	spans := depSpans(v)
	want := [][2]int{{0, 4}, {4, 8}, {8, 10}}
	if len(spans) != len(want) {
		t.Fatalf("spans %v", spans)
	}
	for i := range want {
		if spans[i] != want[i] {
			t.Fatalf("spans %v, want %v", spans, want)
		}
	}
	// A dependency crossing a GOP boundary must fuse the spans.
	v.Frames[5].MBs[0].Deps = append(v.Frames[5].MBs[0].Deps,
		codec.CompDep{SrcFrame: 3, SrcMB: frame.MB{X: 0, Y: 0}, Pixels: 16})
	spans = depSpans(v)
	if spans[0] != [2]int{0, 8} {
		t.Fatalf("cross-GOP dep not honoured: %v", spans)
	}
	// And the fused analysis must still match serial exactly.
	ref := Analyze(v, DefaultOptions())
	an, err := AnalyzeContext(context.Background(), v, DefaultOptions(), 8)
	if err != nil {
		t.Fatal(err)
	}
	for f := range ref.Importance {
		for m := range ref.Importance[f] {
			if an.Importance[f][m] != ref.Importance[f][m] {
				t.Fatalf("frame %d MB %d differs after fuse", f, m)
			}
		}
	}
}

func TestAnalyzeContextCancelled(t *testing.T) {
	v := encodeTestVideo(t, "news_like", 64, 48, 8, smallParams())
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := AnalyzeContext(ctx, v, DefaultOptions(), 2); !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v", err)
	}
}

func TestNonMonotoneSentinel(t *testing.T) {
	// Hand-build an analysis whose importance rises in scan order; the
	// checker must flag it with the ErrNonMonotone sentinel.
	v := encodeTestVideo(t, "news_like", 64, 48, 2, smallParams())
	an := Analyze(v, DefaultOptions())
	an.Importance[0][1] = an.Importance[0][0] + 5
	err := an.CheckMonotone()
	if !errors.Is(err, ErrNonMonotone) {
		t.Fatalf("got %v", err)
	}
}
