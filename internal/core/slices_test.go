package core

import (
	"testing"

	"videoapp/internal/codec"
)

func slicedVideo(t *testing.T, slices int) *codec.Video {
	t.Helper()
	p := smallParams()
	p.SlicesPerFrame = slices
	return encodeTestVideo(t, "parkrun_like", 96, 64, 8, p)
}

func TestMonotonePerSlice(t *testing.T) {
	v := slicedVideo(t, 2)
	an := Analyze(v, DefaultOptions())
	if err := an.CheckMonotone(); err != nil {
		t.Fatal(err)
	}
}

func TestSliceResetsCodingChain(t *testing.T) {
	// The first MB of slice 2 must not inherit the coding-chain importance
	// of slice 1's MBs: its total importance stays close to its
	// compensation importance plus its own chain.
	v := slicedVideo(t, 2)
	an := Analyze(v, DefaultOptions())
	for f, ef := range v.Frames {
		if len(ef.SliceMBStart) < 2 {
			t.Fatal("expected 2 slices")
		}
		s1 := ef.SliceMBStart[1]
		// The last MB of slice 1 is a chain leaf: its importance must be
		// exactly its compensation importance.
		leaf := s1 - 1
		if an.Importance[f][leaf] != an.CompImportance[f][leaf] {
			t.Fatalf("frame %d: slice-1 tail MB %d carries chain weight %f > comp %f",
				f, leaf, an.Importance[f][leaf], an.CompImportance[f][leaf])
		}
	}
}

func TestSlicedPartitionPivotsPerSlice(t *testing.T) {
	v := slicedVideo(t, 2)
	an := Analyze(v, DefaultOptions())
	parts := an.Partition(PaperAssignment())
	for f, fp := range parts {
		// Segments must still exactly cover the payload.
		var pos int64
		for _, s := range fp.Segments(v.Frames[f].PayloadBits()) {
			if s.Start != pos {
				t.Fatalf("frame %d: gap at %d", f, s.Start)
			}
			pos = s.Start + s.Bits
		}
		if pos != v.Frames[f].PayloadBits() {
			t.Fatalf("frame %d: cover %d of %d", f, pos, v.Frames[f].PayloadBits())
		}
	}
}

func TestSlicedSplitMergeRoundTrip(t *testing.T) {
	v := slicedVideo(t, 3)
	an := Analyze(v, DefaultOptions())
	ss, err := SplitStreams(v, an.Partition(PaperAssignment()))
	if err != nil {
		t.Fatal(err)
	}
	merged, err := ss.Merge(v)
	if err != nil {
		t.Fatal(err)
	}
	for f := range v.Frames {
		a, b := v.Frames[f].Payload, merged.Frames[f].Payload
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("frame %d differs", f)
			}
		}
	}
}

func TestSlicesIncreaseApproximableShare(t *testing.T) {
	// §8's promise: limiting coding propagation increases the share of
	// low-importance bits.
	v1 := slicedVideo(t, 1)
	v4 := slicedVideo(t, 4)
	share := func(v *codec.Video) float64 {
		an := Analyze(v, DefaultOptions())
		var low, total int64
		for _, m := range an.MBBitRanges() {
			total += m.BitLen
			if Class(m.Importance) <= 6 {
				low += m.BitLen
			}
		}
		return float64(low) / float64(total)
	}
	if s4, s1 := share(v4), share(v1); s4 <= s1 {
		t.Fatalf("4 slices share %.3f <= 1 slice share %.3f", s4, s1)
	}
}
