package core

import (
	"testing"

	"videoapp/internal/bch"
	"videoapp/internal/bitio"
)

func TestPartitionsRoundTrip(t *testing.T) {
	v := encodeTestVideo(t, "parkrun_like", 96, 64, 8, smallParams())
	an := Analyze(v, DefaultOptions())
	parts := an.Partition(PaperAssignment())
	data, err := MarshalPartitions(parts)
	if err != nil {
		t.Fatal(err)
	}
	got, err := UnmarshalPartitions(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(parts) {
		t.Fatalf("%d frames, want %d", len(got), len(parts))
	}
	for f := range parts {
		if len(got[f].Pivots) != len(parts[f].Pivots) {
			t.Fatalf("frame %d: pivot count", f)
		}
		for i := range parts[f].Pivots {
			a, b := parts[f].Pivots[i], got[f].Pivots[i]
			if a.Bit != b.Bit || a.Scheme.Name != b.Scheme.Name {
				t.Fatalf("frame %d pivot %d: %+v vs %+v", f, i, a, b)
			}
		}
	}
	// Round-tripped tables must drive Merge identically.
	ss, err := SplitStreams(v, parts)
	if err != nil {
		t.Fatal(err)
	}
	ss.Parts = got
	merged, err := ss.Merge(v)
	if err != nil {
		t.Fatal(err)
	}
	for f := range v.Frames {
		a, b := v.Frames[f].Payload, merged.Frames[f].Payload
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("frame %d differs with round-tripped pivots", f)
			}
		}
	}
}

func TestPartitionsCompact(t *testing.T) {
	// §4.4: a few bytes per frame.
	v := encodeTestVideo(t, "crew_like", 96, 64, 10, smallParams())
	an := Analyze(v, DefaultOptions())
	data, err := MarshalPartitions(an.Partition(PaperAssignment()))
	if err != nil {
		t.Fatal(err)
	}
	if perFrame := len(data) / 10; perFrame > 8 {
		t.Fatalf("%d bytes per frame", perFrame)
	}
}

func TestPartitionsIdealScheme(t *testing.T) {
	v := encodeTestVideo(t, "news_like", 64, 48, 4, smallParams())
	an := Analyze(v, DefaultOptions())
	parts := an.Partition(IdealAssignment())
	data, err := MarshalPartitions(parts)
	if err != nil {
		t.Fatal(err)
	}
	got, err := UnmarshalPartitions(data)
	if err != nil {
		t.Fatal(err)
	}
	if got[0].Pivots[0].Scheme.Name != "Ideal" {
		t.Fatalf("ideal scheme lost: %+v", got[0].Pivots[0])
	}
}

func TestUnmarshalPartitionsRejectsGarbage(t *testing.T) {
	if _, err := UnmarshalPartitions(nil); err == nil {
		t.Fatal("empty must fail")
	}
	parts := []FramePartition{
		{Pivots: []Pivot{{Bit: 1000, Scheme: PaperAssignment().Header}}},
		{Pivots: []Pivot{{Bit: 2000, Scheme: PaperAssignment().Header}}},
	}
	data, err := MarshalPartitions(parts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := UnmarshalPartitions(data[:1]); err == nil {
		t.Fatal("truncation must fail")
	}
}

// TestUnmarshalPartitionsTruncatedEverywhere cuts a real pivot stream at
// every byte boundary: the parser must be total (error or parse, never a
// panic) and a parsed prefix can never carry more frames than the original.
func TestUnmarshalPartitionsTruncatedEverywhere(t *testing.T) {
	v := encodeTestVideo(t, "crew_like", 96, 64, 6, smallParams())
	an := Analyze(v, DefaultOptions())
	parts := an.Partition(PaperAssignment())
	data, err := MarshalPartitions(parts)
	if err != nil {
		t.Fatal(err)
	}
	for n := 0; n < len(data); n++ {
		got, err := UnmarshalPartitions(data[:n])
		if err != nil {
			continue
		}
		if len(got) > len(parts) {
			t.Fatalf("prefix of %d bytes parsed %d frames, original has %d", n, len(got), len(parts))
		}
	}
	if _, err := UnmarshalPartitions(data); err != nil {
		t.Fatalf("full stream must parse: %v", err)
	}
}

// TestUnmarshalPartitionsCorruptHeader exercises the header limits: an
// absurd frame count, an oversized pivot count, and a stream that ends
// between a pivot's delta and its scheme id.
func TestUnmarshalPartitionsCorruptHeader(t *testing.T) {
	craft := func(build func(w *bitio.Writer)) []byte {
		w := bitio.NewWriter()
		build(w)
		w.AlignByte()
		return w.Bytes()
	}
	cases := map[string][]byte{
		"oversized frame count": craft(func(w *bitio.Writer) {
			w.WriteUE(1 << 21)
		}),
		"oversized pivot count": craft(func(w *bitio.Writer) {
			w.WriteUE(1)  // one frame
			w.WriteUE(65) // 65 pivots > 64 limit
		}),
		"missing scheme id": craft(func(w *bitio.Writer) {
			w.WriteUE(1)   // one frame
			w.WriteUE(9)   // nine pivots...
			w.WriteUE(100) // ...but only one delta and nothing after
		}),
	}
	for name, data := range cases {
		if _, err := UnmarshalPartitions(data); err == nil {
			t.Errorf("%s: must be rejected", name)
		}
	}
}

func TestMarshalPartitionsRejectsUnknownScheme(t *testing.T) {
	parts := []FramePartition{{Pivots: []Pivot{
		{Bit: 0, Scheme: bch.Scheme{Name: "BCH-99", T: 99}},
	}}}
	if _, err := MarshalPartitions(parts); err == nil {
		t.Fatal("unknown scheme must be rejected")
	}
}

func TestMarshalPartitionsRejectsUnsorted(t *testing.T) {
	parts := []FramePartition{{Pivots: []Pivot{
		{Bit: 100, Scheme: PaperAssignment().Header},
		{Bit: 50, Scheme: PaperAssignment().Header},
	}}}
	if _, err := MarshalPartitions(parts); err == nil {
		t.Fatal("unsorted pivots must be rejected")
	}
}
