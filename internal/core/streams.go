package core

import (
	"fmt"
	"sort"

	"videoapp/internal/bitio"
	"videoapp/internal/codec"
)

// StreamSet is the multi-stream form of a partitioned video (§5.3): each
// reliability class becomes its own bitstream so that it can be stored with
// its own error correction level and encrypted independently. The per-frame
// pivots (stored precisely with the frame headers) carry the information
// needed to merge the streams back.
type StreamSet struct {
	// Parts is the pivot layout the split was computed from.
	Parts []FramePartition
	// Streams maps scheme name to the concatenated payload bits of every
	// segment protected by that scheme, in coded order.
	Streams map[string][]byte
	// Bits is the exact bit length of each stream (the byte slices are
	// padded to whole bytes).
	Bits map[string]int64
}

// SchemeNames returns the stream names in deterministic order.
func (s *StreamSet) SchemeNames() []string {
	names := make([]string, 0, len(s.Streams))
	for n := range s.Streams {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// SplitStreams separates the payloads of v into per-scheme substreams
// according to the partition layout.
func SplitStreams(v *codec.Video, parts []FramePartition) (*StreamSet, error) {
	if len(parts) != len(v.Frames) {
		return nil, fmt.Errorf("core: %w: %d partitions for %d frames", ErrPartitionMismatch, len(parts), len(v.Frames))
	}
	writers := map[string]*bitio.Writer{}
	for f, ef := range v.Frames {
		for _, seg := range parts[f].Segments(ef.PayloadBits()) {
			w, ok := writers[seg.Scheme.Name]
			if !ok {
				w = bitio.NewWriter()
				writers[seg.Scheme.Name] = w
			}
			for i := int64(0); i < seg.Bits; i++ {
				w.WriteBit(bitio.GetBit(ef.Payload, seg.Start+i))
			}
		}
	}
	out := &StreamSet{Parts: parts, Streams: map[string][]byte{}, Bits: map[string]int64{}}
	for name, w := range writers {
		out.Streams[name] = w.Bytes()
		out.Bits[name] = w.BitPos()
	}
	return out, nil
}

// Merge reassembles the payloads from the substreams into a deep copy of v.
// It is the exact inverse of SplitStreams given the same partition layout.
// Corrupted stream content merges back verbatim — errors stay local to the
// bits that carried them, which is what makes per-stream approximation and
// OFB/CTR encryption composable.
func (s *StreamSet) Merge(v *codec.Video) (*codec.Video, error) {
	if len(s.Parts) != len(v.Frames) {
		return nil, fmt.Errorf("core: %w: %d partitions for %d frames", ErrPartitionMismatch, len(s.Parts), len(v.Frames))
	}
	cursors := map[string]int64{}
	out := v.Clone()
	for f, ef := range out.Frames {
		for _, seg := range s.Parts[f].Segments(ef.PayloadBits()) {
			src, ok := s.Streams[seg.Scheme.Name]
			if !ok {
				return nil, fmt.Errorf("core: missing stream %q", seg.Scheme.Name)
			}
			cur := cursors[seg.Scheme.Name]
			bitio.CopyBits(ef.Payload, seg.Start, src, cur, seg.Bits)
			cursors[seg.Scheme.Name] = cur + seg.Bits
		}
	}
	for name, cur := range cursors {
		if cur != s.Bits[name] {
			return nil, fmt.Errorf("core: stream %q consumed %d of %d bits", name, cur, s.Bits[name])
		}
	}
	return out, nil
}
