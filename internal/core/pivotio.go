package core

import (
	"fmt"

	"videoapp/internal/bch"
	"videoapp/internal/bitio"
)

// Pivot tables are part of the precisely-stored frame headers (§4.4): a few
// bytes per frame that let the storage controller map every payload bit to
// its correction scheme, and the reader reassemble the streams. This file
// gives them a compact serialized form.

// schemeID assigns each scheme a stable 4-bit identifier.
func schemeID(name string) (int, error) {
	for i, s := range bch.Schemes {
		if s.Name == name {
			return i, nil
		}
	}
	if name == "Ideal" {
		return 15, nil
	}
	return 0, fmt.Errorf("core: unknown scheme %q", name)
}

func schemeByID(id int) bch.Scheme {
	if id == 15 {
		return bch.Scheme{Name: "Ideal", T: 0, NominalRate: 0}
	}
	if id >= 0 && id < len(bch.Schemes) {
		return bch.Schemes[id]
	}
	return bch.SchemeNone
}

// MarshalPartitions serializes the per-frame pivot tables.
func MarshalPartitions(parts []FramePartition) ([]byte, error) {
	w := bitio.NewWriter()
	w.WriteUE(uint32(len(parts)))
	for _, fp := range parts {
		w.WriteUE(uint32(len(fp.Pivots)))
		var prev int64
		for _, pv := range fp.Pivots {
			if pv.Bit < prev {
				return nil, fmt.Errorf("core: frame %d pivots not sorted", fp.Frame)
			}
			w.WriteUE(uint32(pv.Bit - prev)) // delta coding keeps it tiny
			prev = pv.Bit
			id, err := schemeID(pv.Scheme.Name)
			if err != nil {
				return nil, err
			}
			w.WriteBits(uint64(id), 4)
		}
	}
	w.AlignByte()
	return w.Bytes(), nil
}

// UnmarshalPartitions parses tables produced by MarshalPartitions.
func UnmarshalPartitions(data []byte) ([]FramePartition, error) {
	r := bitio.NewReader(data)
	n, err := r.ReadUE()
	if err != nil || n > 1<<20 {
		return nil, fmt.Errorf("core: bad partition table header")
	}
	parts := make([]FramePartition, n)
	for f := range parts {
		parts[f].Frame = f
		np, err := r.ReadUE()
		if err != nil || np > 64 {
			return nil, fmt.Errorf("core: frame %d: bad pivot count", f)
		}
		var pos int64
		for i := uint32(0); i < np; i++ {
			delta, err := r.ReadUE()
			if err != nil {
				return nil, fmt.Errorf("core: frame %d: truncated pivots", f)
			}
			id, err := r.ReadBits(4)
			if err != nil {
				return nil, fmt.Errorf("core: frame %d: truncated scheme id", f)
			}
			pos += int64(delta)
			parts[f].Pivots = append(parts[f].Pivots, Pivot{Bit: pos, Scheme: schemeByID(int(id))})
		}
	}
	return parts, nil
}
