// Package core implements VideoApp, the paper's primary contribution: a
// framework that takes an encoded video and orders all of its bits by the
// visual damage a flip would cause (§4).
//
// It builds the weighted macroblock dependency graph from the records the
// encoder captured — compensation (pixel-domain) edges from reference
// footprints and coding (metadata/entropy) edges from the scan-order
// propagation pattern — and computes per-macroblock importance with the
// two-phase backward traversal of §4.3. It then derives per-frame pivots
// (§4.4) that compactly describe each frame's error-correction layout, and
// splits the payload into per-reliability streams (§5.3).
package core

import (
	"context"
	"errors"
	"fmt"
	"math"

	"videoapp/internal/bch"
	"videoapp/internal/codec"
	"videoapp/internal/obs"
	"videoapp/internal/par"
)

// Sentinel errors for the analysis and partitioning layer. They are wrapped
// with context (frame numbers, counts) at every return site; match with
// errors.Is.
var (
	// ErrPartitionMismatch reports a partition list whose length does not
	// match the video's frame count.
	ErrPartitionMismatch = errors.New("partition count does not match frame count")
	// ErrNonMonotone reports a violation of the §4.4 invariant that
	// importance never increases in scan order within a slice.
	ErrNonMonotone = errors.New("importance is not monotone non-increasing in scan order")
)

// Options tunes the analysis.
type Options struct {
	// CodingWeight is the weight of coding (scan-order) dependency edges.
	// The paper uses 1.0 — importance counts damaged macroblocks — and
	// notes the weight can be tweaked to re-balance coding vs compensation
	// damage (§4.2).
	CodingWeight float64
}

// DefaultOptions returns the paper's configuration.
func DefaultOptions() Options { return Options{CodingWeight: 1.0} }

// Analysis is the per-macroblock importance map for a coded video.
type Analysis struct {
	Video *codec.Video
	// Importance[f][m] estimates the number of macroblocks damaged by a bit
	// flip in macroblock m of coded frame f (>= 1).
	Importance [][]float64
	// CompImportance[f][m] is the compensation-only importance after step 4
	// of the algorithm, kept for diagnostics and ablations.
	CompImportance [][]float64
	opts           Options
}

// Analyze runs the VideoApp dependency analysis on an encoded video.
func Analyze(v *codec.Video, opts Options) *Analysis {
	// A background context and a single worker cannot fail.
	//vetvideoapp:allow ctxfirst — Analyze is the documented context-less convenience form of AnalyzeContext
	an, _ := AnalyzeContext(context.Background(), v, opts, 1)
	return an
}

// depSpans partitions the coded order into maximal frame runs whose
// compensation dependencies stay inside the run, in either direction. For a
// closed-GOP video the runs are exactly the GOPs; arbitrary (re-analyzed or
// malformed) dependency structures degrade gracefully toward one serial
// span. Out-of-range source frames are skipped by the accumulation and are
// therefore ignored here too.
func depSpans(v *codec.Video) [][2]int {
	n := len(v.Frames)
	if n == 0 {
		return nil
	}
	lo := make([]int, n) // lowest in-range dep source of frame i
	hi := make([]int, n) // highest in-range dep source of frame i
	for i, ef := range v.Frames {
		lo[i], hi[i] = n, -1
		for _, mb := range ef.MBs {
			for _, d := range mb.Deps {
				if d.SrcFrame < 0 || d.SrcFrame >= n {
					continue
				}
				if d.SrcFrame < lo[i] {
					lo[i] = d.SrcFrame
				}
				if d.SrcFrame > hi[i] {
					hi[i] = d.SrcFrame
				}
			}
		}
	}
	sufMin := make([]int, n+1)
	sufMin[n] = n
	for i := n - 1; i >= 0; i-- {
		sufMin[i] = min(lo[i], sufMin[i+1])
	}
	var spans [][2]int
	start, preMax := 0, -1
	for c := 1; c < n; c++ {
		preMax = max(preMax, hi[c-1])
		if sufMin[c] >= c && preMax < c {
			spans = append(spans, [2]int{start, c})
			start = c
		}
	}
	return append(spans, [2]int{start, n})
}

// AnalyzeContext is Analyze with GOP-level fan-out of the backward pass
// (phase 1) and per-frame fan-out of the coding chain (phase 2), plus
// cooperative cancellation checked at frame boundaries. Spans of the
// dependency DAG are mutually independent, so every floating-point
// accumulation happens in the same order as in the serial sweep and the
// result is bit-identical at any worker count.
func AnalyzeContext(ctx context.Context, v *codec.Video, opts Options, workers int) (*Analysis, error) {
	o := obs.From(ctx)
	defer obs.StartSpan(o, obs.StageAnalyze).End()
	nF := len(v.Frames)
	imp := make([][]float64, nF)
	for f, ef := range v.Frames {
		imp[f] = make([]float64, len(ef.MBs))
		for m := range imp[f] {
			imp[f][m] = 1 // every node starts as "one MB of damage"
		}
	}

	// Phase 1 (steps 1-4): compensation graph, backward accumulation.
	// Coded order is a topological order: every dependency points to an
	// earlier coded frame, or to an earlier MB of the same frame (intra
	// spatial references). Sweeping frames and MBs in reverse order
	// therefore visits every destination after all of its children, so its
	// importance is final when we push contributions to its sources.
	mbCols := v.MBCols()
	spans := depSpans(v)
	err := par.ForEachLabeled(ctx, len(spans), workers, obs.StageAnalyze, "span", func(si int) error {
		sp := spans[si]
		for f := sp[1] - 1; f >= sp[0]; f-- {
			if err := ctx.Err(); err != nil {
				return err
			}
			ef := v.Frames[f]
			for m := len(ef.MBs) - 1; m >= 0; m-- {
				mb := &ef.MBs[m]
				total := 0
				for _, d := range mb.Deps {
					total += d.Pixels
				}
				if total == 0 {
					continue
				}
				for _, d := range mb.Deps {
					w := float64(d.Pixels) / float64(total)
					srcIdx := d.SrcMB.Index(mbCols)
					if d.SrcFrame < 0 || d.SrcFrame >= nF {
						continue
					}
					if srcIdx < 0 || srcIdx >= len(imp[d.SrcFrame]) {
						continue
					}
					imp[d.SrcFrame][srcIdx] += w * imp[f][m]
				}
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}

	// Phase 2 (steps 5-8): coding graph — within each slice a weighted
	// chain following the scan order (Figure 2c); the chain weight is 1 in
	// the paper's damaged-area heuristic. With one slice per frame (the
	// paper's conservative setting) the chain spans the whole frame; with
	// slices enabled (§8) it resets at every slice boundary. Frames are
	// independent here, so the fan-out is per frame.
	comp := make([][]float64, nF)
	cw := opts.CodingWeight
	err = par.ForEachLabeled(ctx, nF, workers, obs.StageAnalyze, "", func(f int) error {
		comp[f] = append([]float64(nil), imp[f]...)
		row := imp[f]
		starts := sliceStartSet(v.Frames[f])
		for m := len(row) - 2; m >= 0; m-- {
			if starts[m+1] {
				continue // the chain does not cross into the next slice
			}
			row[m] += cw * row[m+1]
		}
		o.FrameDone(obs.StageAnalyze, 1)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return &Analysis{Video: v, Importance: imp, CompImportance: comp, opts: opts}, nil
}

// sliceStartSet returns the set of macroblock indices that begin a slice.
func sliceStartSet(ef *codec.EncodedFrame) map[int]bool {
	set := map[int]bool{}
	for _, s := range ef.SliceMBStart {
		set[s] = true
	}
	return set
}

// MaxImportance returns the largest importance in the video.
func (a *Analysis) MaxImportance() float64 {
	max := 0.0
	for _, row := range a.Importance {
		for _, v := range row {
			if v > max {
				max = v
			}
		}
	}
	return max
}

// Class returns the paper's logarithmic importance class of a value:
// class i contains all macroblocks whose importance is at most 2^i (§7.2).
func Class(importance float64) int {
	if importance <= 1 {
		return 0
	}
	return int(math.Ceil(math.Log2(importance)))
}

// MBBits describes one macroblock's bits for binning experiments.
type MBBits struct {
	Frame      int
	MBIndex    int
	BitStart   int64
	BitLen     int64
	Importance float64
}

// MBBitRanges flattens the analysis into one record per macroblock, in
// coded order.
func (a *Analysis) MBBitRanges() []MBBits {
	var out []MBBits
	for f, ef := range a.Video.Frames {
		for m, mb := range ef.MBs {
			out = append(out, MBBits{
				Frame:      f,
				MBIndex:    m,
				BitStart:   mb.BitStart,
				BitLen:     mb.BitLen,
				Importance: a.Importance[f][m],
			})
		}
	}
	return out
}

// CheckMonotone verifies the §4.4 observation that importance is strictly
// non-increasing in scan order within every slice, which is what makes the
// pivot encoding exact. It returns an error naming the first violation.
func (a *Analysis) CheckMonotone() error {
	for f, row := range a.Importance {
		starts := sliceStartSet(a.Video.Frames[f])
		for m := 1; m < len(row); m++ {
			if starts[m] {
				continue
			}
			if row[m] > row[m-1]+1e-9 {
				return fmt.Errorf("core: %w: frame %d: rises at MB %d (%.3f -> %.3f)", ErrNonMonotone, f, m, row[m-1], row[m])
			}
		}
	}
	return nil
}

// ClassAssignment maps importance classes to error-correction schemes.
type ClassAssignment struct {
	// Bounds is ordered by ascending MaxClass; a macroblock of class c gets
	// the scheme of the first bound with MaxClass >= c, or Header beyond.
	Bounds []ClassBound
	// Header is the scheme protecting frame headers and any macroblock
	// above every bound (precise storage).
	Header bch.Scheme
}

// ClassBound is one row of the assignment table.
type ClassBound struct {
	MaxClass int
	Scheme   bch.Scheme
}

// PaperAssignment returns Table 1 of the paper: importance classes 0-2 get
// no correction, 3-10 BCH-6, 11-13 BCH-7, 14-16 BCH-8, 17-20 BCH-9,
// 21-26 BCH-10, frame headers BCH-16.
func PaperAssignment() ClassAssignment {
	return ClassAssignment{
		Bounds: []ClassBound{
			{MaxClass: 2, Scheme: bch.SchemeNone},
			{MaxClass: 10, Scheme: bch.SchemeBCH6},
			{MaxClass: 13, Scheme: bch.SchemeBCH7},
			{MaxClass: 16, Scheme: bch.SchemeBCH8},
			{MaxClass: 20, Scheme: bch.SchemeBCH9},
			{MaxClass: 26, Scheme: bch.SchemeBCH10},
		},
		Header: bch.SchemeBCH16,
	}
}

// UniformAssignment protects everything with the header scheme — the
// baseline design of Figure 11.
func UniformAssignment() ClassAssignment {
	return ClassAssignment{Header: bch.SchemeBCH16}
}

// IdealAssignment models a perfect error correction scheme with no storage
// overhead and no errors — the "Ideal" curve of Figure 11.
func IdealAssignment() ClassAssignment {
	ideal := bch.Scheme{Name: "Ideal", T: 0, NominalRate: 0}
	return ClassAssignment{Header: ideal, Bounds: []ClassBound{{MaxClass: 1 << 30, Scheme: ideal}}}
}

// SchemeFor returns the scheme protecting a macroblock of the given
// importance.
func (ca ClassAssignment) SchemeFor(importance float64) bch.Scheme {
	c := Class(importance)
	for _, b := range ca.Bounds {
		if c <= b.MaxClass {
			return b.Scheme
		}
	}
	return ca.Header
}

// Pivot marks a scheme change within a frame payload: bits from Bit onward
// (until the next pivot) are protected by Scheme.
type Pivot struct {
	Bit    int64
	Scheme bch.Scheme
}

// FramePartition is the §4.4 reliability layout of one frame: a few pivots
// describing the correction level of every payload bit, stored precisely in
// the frame header.
type FramePartition struct {
	Frame  int
	Pivots []Pivot
}

// Segments expands the pivots into (scheme, start, length) runs covering
// payloadBits.
func (fp FramePartition) Segments(payloadBits int64) []Segment {
	out := make([]Segment, 0, len(fp.Pivots))
	fp.VisitSegments(payloadBits, func(s Segment) { out = append(out, s) })
	return out
}

// VisitSegments calls visit with each (scheme, start, length) run covering
// payloadBits, in order. It yields exactly the runs Segments returns without
// materializing the slice, so per-frame hot paths (error injection, footprint
// accounting) iterate the layout allocation-free.
func (fp FramePartition) VisitSegments(payloadBits int64, visit func(Segment)) {
	for i, p := range fp.Pivots {
		end := payloadBits
		if i+1 < len(fp.Pivots) {
			end = fp.Pivots[i+1].Bit
		}
		if end > p.Bit {
			visit(Segment{Scheme: p.Scheme, Start: p.Bit, Bits: end - p.Bit})
		}
	}
}

// Segment is a contiguous payload bit range under one scheme.
type Segment struct {
	Scheme bch.Scheme
	Start  int64
	Bits   int64
}

// Partition computes the per-frame pivots for an assignment. Because
// importance is non-increasing in scan order, each frame needs at most one
// pivot per scheme: the bit position where the layout steps down to a weaker
// scheme. The stronger schemes come first (high importance at the top-left).
func (a *Analysis) Partition(ca ClassAssignment) []FramePartition {
	parts := make([]FramePartition, len(a.Video.Frames))
	for f, ef := range a.Video.Frames {
		fp := FramePartition{Frame: f}
		starts := sliceStartSet(ef)
		var cur string
		mono := math.Inf(1)
		for m, mb := range ef.MBs {
			if starts[m] {
				// Each slice restarts the monotone descent; a pivot may
				// strengthen the scheme again at a slice boundary.
				mono = math.Inf(1)
			}
			// Guard the §4.4 monotonicity invariant against numerical jitter.
			impv := a.Importance[f][m]
			if impv > mono {
				impv = mono
			}
			mono = impv
			s := ca.SchemeFor(impv)
			if s.Name != cur {
				fp.Pivots = append(fp.Pivots, Pivot{Bit: mb.BitStart, Scheme: s})
				cur = s.Name
			}
		}
		if len(fp.Pivots) == 0 {
			fp.Pivots = []Pivot{{Bit: 0, Scheme: ca.Header}}
		}
		parts[f] = fp
	}
	return parts
}

// PivotOverheadBits estimates the §4.4 bookkeeping cost: a few bytes per
// pivot (bit offset + scheme id), stored precisely in the frame header.
func PivotOverheadBits(parts []FramePartition) int64 {
	var n int64
	for _, fp := range parts {
		n += int64(len(fp.Pivots)) * (32 + 4) // 32-bit offset + 4-bit scheme id
	}
	return n
}
