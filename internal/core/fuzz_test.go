package core

import (
	"reflect"
	"testing"

	"videoapp/internal/codec"
	"videoapp/internal/synth"
)

// Fuzz target: the pivot-table parser must be total — any byte sequence
// either parses or returns an error, never panics — and whatever parses
// must survive a canonical re-marshal round trip. Without -fuzz this runs
// the seed corpus as a regular test.

func FuzzPartitionsRoundTrip(f *testing.F) {
	cfg, _ := synth.PresetByName("crew_like")
	seq := synth.Generate(cfg.ScaleTo(64, 48, 4))
	p := codec.DefaultParams()
	p.GOPSize = 4
	p.SearchRange = 8
	v, err := codec.Encode(seq, p)
	if err != nil {
		f.Fatal(err)
	}
	an := Analyze(v, DefaultOptions())
	seed, err := MarshalPartitions(an.Partition(PaperAssignment()))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seed)
	f.Add([]byte{})
	f.Add([]byte{0x01})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF})
	f.Fuzz(func(t *testing.T, data []byte) {
		parts, err := UnmarshalPartitions(data)
		if err != nil {
			return // rejected is fine; panics are not
		}
		// Parsed tables are canonical: deltas are non-negative and schemes
		// come from the registry, so they must re-marshal and round-trip to
		// an identical table.
		out, err := MarshalPartitions(parts)
		if err != nil {
			t.Fatalf("parsed table failed to re-marshal: %v", err)
		}
		again, err := UnmarshalPartitions(out)
		if err != nil {
			t.Fatalf("re-marshalled table failed to parse: %v", err)
		}
		if !reflect.DeepEqual(parts, again) {
			t.Fatal("pivot table not stable under re-marshal")
		}
	})
}
