package core

import (
	"math"
	"testing"

	"videoapp/internal/bitio"
	"videoapp/internal/codec"
	"videoapp/internal/quality"
	"videoapp/internal/synth"
)

func encodeTestVideo(t testing.TB, preset string, w, h, frames int, p codec.Params) *codec.Video {
	t.Helper()
	cfg, ok := synth.PresetByName(preset)
	if !ok {
		t.Fatalf("unknown preset %s", preset)
	}
	seq := synth.Generate(cfg.ScaleTo(w, h, frames))
	v, err := codec.Encode(seq, p)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func smallParams() codec.Params {
	p := codec.DefaultParams()
	p.GOPSize = 12
	p.SearchRange = 8
	return p
}

func TestImportanceAtLeastOne(t *testing.T) {
	v := encodeTestVideo(t, "crew_like", 64, 48, 8, smallParams())
	an := Analyze(v, DefaultOptions())
	for f, row := range an.Importance {
		for m, imp := range row {
			if imp < 1 {
				t.Fatalf("frame %d MB %d: importance %f < 1", f, m, imp)
			}
		}
	}
}

func TestImportanceMonotoneWithinFrames(t *testing.T) {
	// §4.4: coding dependencies impose strictly decreasing importance in
	// scan order — the property that makes pivots exact.
	for _, preset := range []string{"crew_like", "news_like", "sports_like"} {
		v := encodeTestVideo(t, preset, 64, 48, 10, smallParams())
		an := Analyze(v, DefaultOptions())
		if err := an.CheckMonotone(); err != nil {
			t.Fatalf("%s: %v", preset, err)
		}
	}
}

func TestEarlyFramesMoreImportant(t *testing.T) {
	// Frames early in a GOP feed every later frame via compensation, so
	// their top MBs must dominate the top MBs of late frames.
	p := smallParams()
	p.GOPSize = 10
	v := encodeTestVideo(t, "crew_like", 64, 48, 10, p)
	an := Analyze(v, DefaultOptions())
	if an.Importance[0][0] <= an.Importance[9][0] {
		t.Fatalf("first frame head importance %.1f <= last frame head %.1f",
			an.Importance[0][0], an.Importance[9][0])
	}
}

func TestCompImportanceExcludesCodingChain(t *testing.T) {
	v := encodeTestVideo(t, "crew_like", 64, 48, 6, smallParams())
	an := Analyze(v, DefaultOptions())
	for f, row := range an.Importance {
		for m := range row {
			if an.CompImportance[f][m] > row[m]+1e-9 {
				t.Fatalf("compensation importance exceeds total at frame %d MB %d", f, m)
			}
		}
	}
}

func TestCodingWeightZeroDropsChain(t *testing.T) {
	v := encodeTestVideo(t, "crew_like", 64, 48, 6, smallParams())
	an := Analyze(v, Options{CodingWeight: 0})
	for f, row := range an.Importance {
		for m := range row {
			if math.Abs(row[m]-an.CompImportance[f][m]) > 1e-9 {
				t.Fatal("with zero coding weight total must equal compensation importance")
			}
		}
	}
}

func TestUnreferencedBFramesLowImportance(t *testing.T) {
	// §8: disallowing B references creates frames whose errors cannot
	// propagate; all their MBs keep compensation importance 1.
	p := smallParams()
	p.BFrames = 2
	p.BReference = false
	v := encodeTestVideo(t, "crew_like", 64, 48, 12, p)
	an := Analyze(v, DefaultOptions())
	checked := 0
	for f, ef := range v.Frames {
		if ef.Type != codec.FrameB {
			continue
		}
		for m := range ef.MBs {
			if an.CompImportance[f][m] != 1 {
				t.Fatalf("unreferenced B frame %d MB %d has compensation importance %f",
					ef.DisplayIdx, m, an.CompImportance[f][m])
			}
		}
		checked++
	}
	if checked == 0 {
		t.Fatal("no B frames in test video")
	}
}

func TestClassFunction(t *testing.T) {
	cases := []struct {
		imp  float64
		want int
	}{{0.5, 0}, {1, 0}, {2, 1}, {3, 2}, {4, 2}, {5, 3}, {1024, 10}, {1025, 11}}
	for _, c := range cases {
		if got := Class(c.imp); got != c.want {
			t.Fatalf("Class(%v) = %d, want %d", c.imp, got, c.want)
		}
	}
}

func TestPaperAssignmentMatchesTable1(t *testing.T) {
	ca := PaperAssignment()
	cases := []struct {
		imp    float64
		scheme string
	}{
		{1, "None"}, {4, "None"}, // class 0-2
		{5, "BCH-6"}, {1024, "BCH-6"}, // class 3-10
		{1025, "BCH-7"}, {8192, "BCH-7"}, // class 11-13
		{1 << 16, "BCH-8"},  // class 14-16
		{1 << 20, "BCH-9"},  // class 17-20
		{1 << 26, "BCH-10"}, // class 21-26
		{1 << 27, "BCH-16"}, // beyond: precise
	}
	for _, c := range cases {
		if got := ca.SchemeFor(c.imp); got.Name != c.scheme {
			t.Fatalf("SchemeFor(%v) = %s, want %s", c.imp, got.Name, c.scheme)
		}
	}
	if ca.Header.Name != "BCH-16" {
		t.Fatal("headers must be precise")
	}
}

func TestPartitionPivotsMonotoneSchemes(t *testing.T) {
	v := encodeTestVideo(t, "parkrun_like", 96, 64, 10, smallParams())
	an := Analyze(v, DefaultOptions())
	parts := an.Partition(PaperAssignment())
	if len(parts) != len(v.Frames) {
		t.Fatal("one partition per frame")
	}
	for f, fp := range parts {
		if len(fp.Pivots) == 0 {
			t.Fatalf("frame %d has no pivots", f)
		}
		if fp.Pivots[0].Bit != v.Frames[f].MBs[0].BitStart {
			t.Fatalf("frame %d: first pivot at bit %d", f, fp.Pivots[0].Bit)
		}
		for i := 1; i < len(fp.Pivots); i++ {
			if fp.Pivots[i].Bit <= fp.Pivots[i-1].Bit {
				t.Fatalf("frame %d: pivots not increasing", f)
			}
			// Schemes must weaken monotonically down the frame.
			if fp.Pivots[i].Scheme.T > fp.Pivots[i-1].Scheme.T {
				t.Fatalf("frame %d: scheme strengthens mid-frame", f)
			}
		}
	}
}

func TestSegmentsCoverPayload(t *testing.T) {
	v := encodeTestVideo(t, "crew_like", 64, 48, 8, smallParams())
	an := Analyze(v, DefaultOptions())
	parts := an.Partition(PaperAssignment())
	for f, fp := range parts {
		var covered int64
		segs := fp.Segments(v.Frames[f].PayloadBits())
		var pos int64
		for _, s := range segs {
			if s.Start != pos {
				t.Fatalf("frame %d: gap before segment at %d", f, s.Start)
			}
			covered += s.Bits
			pos = s.Start + s.Bits
		}
		if covered != v.Frames[f].PayloadBits() {
			t.Fatalf("frame %d: segments cover %d of %d bits", f, covered, v.Frames[f].PayloadBits())
		}
	}
}

func TestSplitMergeRoundTrip(t *testing.T) {
	v := encodeTestVideo(t, "sports_like", 96, 64, 10, smallParams())
	an := Analyze(v, DefaultOptions())
	parts := an.Partition(PaperAssignment())
	ss, err := SplitStreams(v, parts)
	if err != nil {
		t.Fatal(err)
	}
	merged, err := ss.Merge(v)
	if err != nil {
		t.Fatal(err)
	}
	for f := range v.Frames {
		a, b := v.Frames[f].Payload, merged.Frames[f].Payload
		if len(a) != len(b) {
			t.Fatalf("frame %d payload length changed", f)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("frame %d byte %d differs after split+merge", f, i)
			}
		}
	}
}

func TestSplitStreamsConserveBits(t *testing.T) {
	v := encodeTestVideo(t, "crew_like", 64, 48, 8, smallParams())
	an := Analyze(v, DefaultOptions())
	ss, err := SplitStreams(v, an.Partition(PaperAssignment()))
	if err != nil {
		t.Fatal(err)
	}
	var total int64
	for _, n := range ss.Bits {
		total += n
	}
	if total != v.TotalPayloadBits() {
		t.Fatalf("streams hold %d bits, video has %d", total, v.TotalPayloadBits())
	}
}

func TestMergeDetectsMissingStream(t *testing.T) {
	v := encodeTestVideo(t, "crew_like", 64, 48, 4, smallParams())
	an := Analyze(v, DefaultOptions())
	ss, _ := SplitStreams(v, an.Partition(PaperAssignment()))
	for name := range ss.Streams {
		delete(ss.Streams, name)
		break
	}
	if _, err := ss.Merge(v); err == nil {
		t.Fatal("missing stream must be detected")
	}
}

func TestCorruptionInStreamStaysLocal(t *testing.T) {
	// Flipping bits in one substream then merging must corrupt exactly
	// those payload bit positions — the §5.3 composability invariant.
	v := encodeTestVideo(t, "crew_like", 64, 48, 6, smallParams())
	an := Analyze(v, DefaultOptions())
	parts := an.Partition(PaperAssignment())
	ss, _ := SplitStreams(v, parts)
	name := ss.SchemeNames()[0]
	flipped := append([]byte(nil), ss.Streams[name]...)
	bitio.FlipBit(flipped, 3)
	ss.Streams[name] = flipped
	merged, err := ss.Merge(v)
	if err != nil {
		t.Fatal(err)
	}
	diff := 0
	for f := range v.Frames {
		a, b := v.Frames[f].Payload, merged.Frames[f].Payload
		for i := range a {
			if a[i] != b[i] {
				x := a[i] ^ b[i]
				for ; x != 0; x &= x - 1 {
					diff++
				}
			}
		}
	}
	if diff != 1 {
		t.Fatalf("one flipped stream bit produced %d payload bit changes", diff)
	}
}

func TestImportanceCorrelatesWithMeasuredDamage(t *testing.T) {
	// §7.1 validation in miniature: flips in the most-important decile must
	// hurt more than flips in the least-important decile.
	v := encodeTestVideo(t, "crew_like", 96, 64, 12, smallParams())
	clean, err := codec.Decode(v)
	if err != nil {
		t.Fatal(err)
	}
	an := Analyze(v, DefaultOptions())
	ranges := an.MBBitRanges()

	flipAndMeasure := func(sel func(MBBits) bool) float64 {
		sum, n := 0.0, 0
		for _, r := range ranges {
			if !sel(r) || r.BitLen < 4 {
				continue
			}
			c := v.Clone()
			bitio.FlipBit(c.Frames[r.Frame].Payload, r.BitStart+1)
			dec, err := codec.Decode(c)
			if err != nil {
				t.Fatal(err)
			}
			p, _ := quality.PSNR(clean, dec)
			sum += p
			n++
			if n >= 25 {
				break
			}
		}
		if n == 0 {
			t.Fatal("no MBs selected")
		}
		return sum / float64(n)
	}
	// Thresholds from the importance distribution.
	max := an.MaxImportance()
	hiPSNR := flipAndMeasure(func(r MBBits) bool { return r.Importance > max/4 })
	loPSNR := flipAndMeasure(func(r MBBits) bool { return r.Importance <= 2 })
	if hiPSNR >= loPSNR {
		t.Fatalf("high-importance flips PSNR %.2f >= low-importance %.2f; importance does not track damage", hiPSNR, loPSNR)
	}
}

func TestPivotOverheadTiny(t *testing.T) {
	// §4.4: bookkeeping must be a few bytes per frame, i.e. orders of
	// magnitude below the payload.
	v := encodeTestVideo(t, "parkrun_like", 96, 64, 10, smallParams())
	an := Analyze(v, DefaultOptions())
	parts := an.Partition(PaperAssignment())
	overhead := PivotOverheadBits(parts)
	perFrame := overhead / int64(len(parts))
	if perFrame > 8*8 {
		t.Fatalf("pivot overhead %d bits/frame exceeds a few bytes", perFrame)
	}
}

func TestIdealAndUniformAssignments(t *testing.T) {
	ideal := IdealAssignment()
	if s := ideal.SchemeFor(1e9); s.NominalRate != 0 {
		t.Fatal("ideal must be error-free")
	}
	uniform := UniformAssignment()
	if s := uniform.SchemeFor(1); s.Name != "BCH-16" {
		t.Fatal("uniform must protect everything precisely")
	}
}

func TestAnalysisOverheadSmall(t *testing.T) {
	// §4.3.1: analysis is meant to cost 2-3% of encode; allow generous
	// slack for tiny inputs but catch anything pathological (>50%).
	cfg, _ := synth.PresetByName("crew_like")
	seq := synth.Generate(cfg.ScaleTo(96, 64, 12))
	t0 := nowNano()
	v, err := codec.Encode(seq, smallParams())
	if err != nil {
		t.Fatal(err)
	}
	encodeNs := nowNano() - t0
	t1 := nowNano()
	Analyze(v, DefaultOptions())
	analyzeNs := nowNano() - t1
	if analyzeNs*2 > encodeNs {
		t.Fatalf("analysis took %dns vs encode %dns", analyzeNs, encodeNs)
	}
}

func BenchmarkAnalyze(b *testing.B) {
	b.ReportAllocs()
	v := encodeTestVideo(b, "crew_like", 176, 144, 20, smallParams())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Analyze(v, DefaultOptions())
	}
}

func BenchmarkSplitStreams(b *testing.B) {
	b.ReportAllocs()
	v := encodeTestVideo(b, "crew_like", 176, 144, 10, smallParams())
	an := Analyze(v, DefaultOptions())
	parts := an.Partition(PaperAssignment())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SplitStreams(v, parts); err != nil {
			b.Fatal(err)
		}
	}
}

func nowNano() int64 { return testingNano() }
