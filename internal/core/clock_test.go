package core

import "time"

// testingNano isolates the wall clock so tests depending on relative timing
// have a single seam.
func testingNano() int64 { return time.Now().UnixNano() }
