package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"videoapp/internal/bch"
	"videoapp/internal/codec"
	"videoapp/internal/frame"
)

// syntheticVideo fabricates a Video with arbitrary (but structurally valid)
// dependency records, so analysis invariants can be property-tested far
// beyond what real encodes produce.
func syntheticVideo(rng *rand.Rand, nFrames, mbCols, mbRows int) *codec.Video {
	v := &codec.Video{W: mbCols * 16, H: mbRows * 16, FPS: 30}
	for f := 0; f < nFrames; f++ {
		ef := &codec.EncodedFrame{
			Type: codec.FrameP, CodedIdx: f, DisplayIdx: f,
			RefFwd: f - 1, RefBwd: -1,
		}
		if f == 0 {
			ef.Type = codec.FrameI
			ef.RefFwd = -1
		}
		var bit int64
		for m := 0; m < mbCols*mbRows; m++ {
			mb := codec.MBRecord{
				MB:       frame.MBFromIndex(m, mbCols),
				BitStart: bit,
				BitLen:   int64(8 + rng.Intn(64)),
			}
			bit += mb.BitLen
			// Random compensation deps on the previous frame; pixel counts
			// sum to at most 256.
			if f > 0 {
				left := 256
				for left > 0 && rng.Intn(3) > 0 {
					px := 1 + rng.Intn(left)
					mb.Deps = append(mb.Deps, codec.CompDep{
						SrcFrame: f - 1,
						SrcMB:    frame.MBFromIndex(rng.Intn(mbCols*mbRows), mbCols),
						Pixels:   px,
					})
					left -= px
				}
			}
			ef.MBs = append(ef.MBs, mb)
		}
		ef.Payload = make([]byte, (bit+7)/8)
		v.Frames = append(v.Frames, ef)
	}
	return v
}

func TestImportanceConservationProperty(t *testing.T) {
	// For any dependency structure: total importance >= number of MBs (each
	// node contributes at least itself), and every value >= 1.
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		v := syntheticVideo(rng, 2+rng.Intn(4), 2+rng.Intn(3), 2+rng.Intn(3))
		an := Analyze(v, DefaultOptions())
		var total float64
		n := 0
		for _, row := range an.Importance {
			for _, imp := range row {
				if imp < 1 {
					return false
				}
				total += imp
				n++
			}
		}
		return total >= float64(n)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestMonotonePropertyOnSyntheticGraphs(t *testing.T) {
	// Monotone scan-order importance must hold for ANY compensation
	// structure, because the coding chain dominates within a frame.
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		v := syntheticVideo(rng, 3, 3, 3)
		an := Analyze(v, DefaultOptions())
		return an.CheckMonotone() == nil
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestCompensationImportanceBoundedByArea(t *testing.T) {
	// With incoming-edge weights normalized to 1, a node's compensation
	// importance cannot exceed the total macroblock count of the video.
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nf, c, r := 2+rng.Intn(3), 2+rng.Intn(3), 2+rng.Intn(3)
		v := syntheticVideo(rng, nf, c, r)
		an := Analyze(v, DefaultOptions())
		bound := float64(nf * c * r)
		for _, row := range an.CompImportance {
			for _, imp := range row {
				if imp > bound+1e-6 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestPartitionSegmentsConservationProperty(t *testing.T) {
	// For any assignment thresholds, segments exactly tile every payload.
	prop := func(seed int64, t1, t2 uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		v := syntheticVideo(rng, 3, 3, 2)
		an := Analyze(v, DefaultOptions())
		a, b := int(t1%20), int(t2%20)
		if a > b {
			a, b = b, a
		}
		ca := ClassAssignment{
			Bounds: []ClassBound{
				{MaxClass: a, Scheme: bch.SchemeNone},
				{MaxClass: b, Scheme: bch.SchemeBCH6},
			},
			Header: bch.SchemeBCH16,
		}
		for f, fp := range an.Partition(ca) {
			var pos int64
			for _, s := range fp.Segments(v.Frames[f].PayloadBits()) {
				if s.Start != pos || s.Bits <= 0 {
					return false
				}
				pos += s.Bits
			}
			if pos != v.Frames[f].PayloadBits() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestSplitMergeProperty(t *testing.T) {
	// Split+merge is the identity for any partition produced by Partition.
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		v := syntheticVideo(rng, 3, 2, 2)
		for _, ef := range v.Frames {
			rng.Read(ef.Payload)
		}
		an := Analyze(v, DefaultOptions())
		parts := an.Partition(PaperAssignment())
		ss, err := SplitStreams(v, parts)
		if err != nil {
			return false
		}
		merged, err := ss.Merge(v)
		if err != nil {
			return false
		}
		for f := range v.Frames {
			a, b := v.Frames[f].Payload, merged.Frames[f].Payload
			for i := range a {
				if a[i] != b[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
