package faultio

import (
	"bytes"
	"errors"
	"io"
	"testing"
	"time"
)

func backing(n int) []byte {
	data := make([]byte, n)
	for i := range data {
		data[i] = byte(i * 131)
	}
	return data
}

// replay performs a fixed deterministic read sequence and returns the
// fault log alongside the observed per-read outcomes.
func replay(t *testing.T, prof Profile, data []byte) ([]Fault, []string) {
	t.Helper()
	f := New(bytes.NewReader(data), prof)
	var outcomes []string
	for round := 0; round < 50; round++ {
		for off := int64(0); off+64 <= int64(len(data)); off += 64 {
			buf := make([]byte, 64)
			n, err := f.ReadAt(buf, off)
			switch {
			case errors.Is(err, ErrInjected):
				outcomes = append(outcomes, "fault")
			case err != nil:
				t.Fatalf("unexpected non-injected error: %v", err)
			case n != 64:
				t.Fatalf("clean read returned %d bytes", n)
			default:
				outcomes = append(outcomes, "ok")
			}
		}
	}
	return f.Faults(), outcomes
}

// TestDeterministicFaultSequence pins the core contract twice: the same
// seed over the same read sequence reproduces the identical fault
// sequence, and a different seed produces a different one.
func TestDeterministicFaultSequence(t *testing.T) {
	data := backing(4096)
	prof := Profile{Seed: 7, TransientRate: 0.05, CorruptRate: 0.02, ShortRate: 0.03}

	faults1, out1 := replay(t, prof, data)
	faults2, out2 := replay(t, prof, data)
	if len(faults1) == 0 {
		t.Fatal("profile injected no faults at these rates")
	}
	if len(faults1) != len(faults2) {
		t.Fatalf("replays injected %d vs %d faults", len(faults1), len(faults2))
	}
	for i := range faults1 {
		if faults1[i] != faults2[i] {
			t.Fatalf("fault %d differs between replays: %v vs %v", i, faults1[i], faults2[i])
		}
	}
	for i := range out1 {
		if out1[i] != out2[i] {
			t.Fatalf("outcome %d differs between replays: %s vs %s", i, out1[i], out2[i])
		}
	}

	prof.Seed = 8
	faults3, _ := replay(t, prof, data)
	same := len(faults3) == len(faults1)
	if same {
		for i := range faults1 {
			if faults1[i] != faults3[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds produced the identical fault sequence")
	}
}

// TestCorruptionIsPersistent: a corrupted range carries the same flipped
// bit on every read, and a clean range stays clean.
func TestCorruptionIsPersistent(t *testing.T) {
	data := backing(8192)
	f := New(bytes.NewReader(data), Profile{Seed: 3, CorruptRate: 0.3})

	var corruptOff, cleanOff = int64(-1), int64(-1)
	first := map[int64][]byte{}
	for off := int64(0); off+128 <= int64(len(data)); off += 128 {
		buf := make([]byte, 128)
		if _, err := f.ReadAt(buf, off); err != nil {
			t.Fatal(err)
		}
		first[off] = buf
		if !bytes.Equal(buf, data[off:off+128]) {
			corruptOff = off
		} else {
			cleanOff = off
		}
	}
	if corruptOff < 0 || cleanOff < 0 {
		t.Fatalf("need both corrupt and clean ranges (corrupt=%d clean=%d)", corruptOff, cleanOff)
	}
	for i := 0; i < 5; i++ {
		buf := make([]byte, 128)
		if _, err := f.ReadAt(buf, corruptOff); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf, first[corruptOff]) {
			t.Fatal("corrupted range changed between reads; corruption must be persistent")
		}
		if _, err := f.ReadAt(buf, cleanOff); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf, data[cleanOff:cleanOff+128]) {
			t.Fatal("clean range became corrupted on re-read")
		}
	}
	// Exactly one bit differs in the corrupt range.
	diff := 0
	for i, b := range first[corruptOff] {
		x := b ^ data[corruptOff+int64(i)]
		for ; x != 0; x &= x - 1 {
			diff++
		}
	}
	if diff != 1 {
		t.Fatalf("corrupt range differs in %d bits, want exactly 1", diff)
	}
}

// TestTransientFaultsClearOnRetry: a read that fails transiently succeeds
// within a bounded number of retries, because retry decisions are drawn
// per attempt.
func TestTransientFaultsClearOnRetry(t *testing.T) {
	data := backing(1024)
	f := New(bytes.NewReader(data), Profile{Seed: 11, TransientRate: 0.5})
	buf := make([]byte, 256)
	sawFault := false
	for off := int64(0); off+256 <= int64(len(data)); off += 256 {
		ok := false
		for attempt := 0; attempt < 64; attempt++ {
			if _, err := f.ReadAt(buf, off); err == nil {
				ok = true
				break
			} else if !errors.Is(err, ErrInjected) {
				t.Fatalf("unexpected error class: %v", err)
			} else {
				sawFault = true
			}
		}
		if !ok {
			t.Fatalf("read at %d never succeeded in 64 attempts at rate 0.5", off)
		}
	}
	if !sawFault {
		t.Fatal("transient rate 0.5 injected nothing across the workload")
	}
}

// TestShortReadContract: short reads return partial data with ErrInjected,
// honoring the io.ReaderAt error contract.
func TestShortReadContract(t *testing.T) {
	data := backing(4096)
	f := New(bytes.NewReader(data), Profile{Seed: 5, ShortRate: 1})
	buf := make([]byte, 64)
	n, err := f.ReadAt(buf, 0)
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("short read must wrap ErrInjected, got %v", err)
	}
	if n != 32 {
		t.Fatalf("short read returned %d bytes, want 32", n)
	}
	if !bytes.Equal(buf[:n], data[:n]) {
		t.Fatal("short read returned wrong bytes")
	}
	if s := f.Stats(); s.Short != 1 || s.Reads != 1 {
		t.Fatalf("stats %+v, want 1 short in 1 read", s)
	}
}

// TestZeroProfilePassesThrough: the zero profile is a transparent wrapper.
func TestZeroProfilePassesThrough(t *testing.T) {
	data := backing(2048)
	f := New(bytes.NewReader(data), Profile{})
	buf := make([]byte, len(data))
	if _, err := f.ReadAt(buf, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, data) {
		t.Fatal("zero profile altered the data")
	}
	if _, err := f.ReadAt(buf[:16], int64(len(data))); err != io.EOF && !errors.Is(err, io.EOF) {
		t.Fatalf("EOF must pass through, got %v", err)
	}
	if s := f.Stats(); s.Transient+s.Short+s.Corrupt != 0 {
		t.Fatalf("zero profile injected faults: %+v", s)
	}
}

func TestParseProfile(t *testing.T) {
	p, err := ParseProfile("seed=7,transient=0.01,corrupt=0.001,short=0.005,latency=200us")
	if err != nil {
		t.Fatal(err)
	}
	want := Profile{Seed: 7, TransientRate: 0.01, CorruptRate: 0.001, ShortRate: 0.005, Latency: 200 * time.Microsecond}
	if p != want {
		t.Fatalf("parsed %+v, want %+v", p, want)
	}
	if p, err := ParseProfile(""); err != nil || p != (Profile{}) {
		t.Fatalf("empty spec: %+v, %v", p, err)
	}
	for _, bad := range []string{"transient=2", "corrupt=-1", "wat=1", "seed", "latency=-1s", "transient=x"} {
		if _, err := ParseProfile(bad); err == nil {
			t.Fatalf("spec %q must be rejected", bad)
		}
	}
}

// TestWriteAtPassthrough: writes reach the backing store unfaulted when it
// supports io.WriterAt, and error otherwise.
func TestWriteAtPassthrough(t *testing.T) {
	mem := &memFile{data: backing(128)}
	f := New(mem, Profile{Seed: 1, CorruptRate: 1})
	if _, err := f.WriteAt([]byte{1, 2, 3}, 5); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(mem.data[5:8], []byte{1, 2, 3}) {
		t.Fatal("write did not reach the backing store")
	}
	ro := New(bytes.NewReader(nil), Profile{})
	if _, err := ro.WriteAt([]byte{1}, 0); err == nil {
		t.Fatal("WriteAt on a read-only backing must fail")
	}
}

// TestWrapIsABackendDecorator: Wrap composes over a full backend — reads
// are faulted while Size and Close pass straight through, and the decorated
// Reader satisfies Backend itself so decorators stack.
func TestWrapIsABackendDecorator(t *testing.T) {
	mem := &memFile{data: backing(4096)}
	f := Wrap(mem, Profile{Seed: 3, CorruptRate: 0.3})
	var _ Backend = f

	if sz, err := f.Size(); err != nil || sz != 4096 {
		t.Fatalf("Size = %d, %v; want 4096", sz, err)
	}
	sawCorrupt := false
	for off := int64(0); off+128 <= 4096; off += 128 {
		buf := make([]byte, 128)
		if _, err := f.ReadAt(buf, off); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf, mem.data[off:off+128]) {
			sawCorrupt = true
		}
	}
	if !sawCorrupt {
		t.Fatal("decorated backend injected no corruption at rate 0.3")
	}
	if _, err := f.WriteAt([]byte{9}, 0); err != nil {
		t.Fatal(err)
	}
	if mem.data[0] != 9 {
		t.Fatal("write did not reach the decorated backend")
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if !mem.closed {
		t.Fatal("Close did not reach the decorated backend")
	}

	// Decorators stack: a Reader over a Reader is still a Backend.
	stacked := Wrap(Wrap(&memFile{data: backing(64)}, Profile{}), Profile{})
	if sz, err := stacked.Size(); err != nil || sz != 64 {
		t.Fatalf("stacked Size = %d, %v; want 64", sz, err)
	}
}

// TestNewBareReaderBackendSurface: a Reader over a bare io.ReaderAt still
// exposes the Backend surface, degraded — Size errors, Close is a no-op.
func TestNewBareReaderBackendSurface(t *testing.T) {
	f := New(bytes.NewReader(backing(16)), Profile{})
	if _, err := f.Size(); err == nil {
		t.Fatal("Size over a bare reader must error")
	}
	if err := f.Close(); err != nil {
		t.Fatalf("Close over a bare reader must be a no-op, got %v", err)
	}
}

// memFile is a tiny in-memory backend (ReaderAt+WriterAt+Size+Close).
type memFile struct {
	data   []byte
	closed bool
}

func (m *memFile) Size() (int64, error) { return int64(len(m.data)), nil }

func (m *memFile) Close() error {
	m.closed = true
	return nil
}

func (m *memFile) ReadAt(p []byte, off int64) (int, error) {
	if off >= int64(len(m.data)) {
		return 0, io.EOF
	}
	n := copy(p, m.data[off:])
	if n < len(p) {
		return n, io.EOF
	}
	return n, nil
}

func (m *memFile) WriteAt(p []byte, off int64) (int, error) {
	if off+int64(len(p)) > int64(len(m.data)) {
		return 0, io.ErrShortWrite
	}
	return copy(m.data[off:], p), nil
}
