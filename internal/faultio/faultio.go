// Package faultio is a deterministic fault-injection layer for the archive
// read path: a storage-backend decorator that injects the paper's §5 error
// classes — persistent bit flips in stored data, transient device errors,
// short reads, and access latency — as a pure function of a seed and the
// read sequence, so every test, benchmark and chaos run that replays the
// same reads against the same seed sees the identical fault sequence.
//
// The decorator composes with any backend: Wrap takes the full Backend
// surface (ReadAt/WriteAt/Size/Close — structurally identical to
// store.Backend, declared locally so this package stays dependency-free)
// and returns a Reader that is itself a Backend, faulting reads while
// passing writes, size queries and lifecycle through untouched. New is the
// narrower form for wrapping a bare io.ReaderAt.
//
// Fault decisions are drawn from a splitmix64 hash of (seed, offset,
// length[, attempt]):
//
//   - corruption is keyed by (offset, length) alone, so a damaged range is
//     damaged on every read — retrying never repairs it, exactly like a
//     stuck cell whose drift exceeded the ECC budget (§5.1). The flipped
//     bit position is drawn from the same hash, so the damage is stable.
//   - transient errors and short reads are additionally keyed by a
//     per-(offset, length) attempt counter, so a retry of the same read
//     draws a fresh decision and eventually succeeds — the signature of a
//     bus glitch or a busy device, not of lost data.
//   - latency is a deterministic per-read fraction of Profile.Latency.
//
// The wrapper records every injected fault in an order-preserving log and
// per-class counters; Faults returns a sorted copy so that two runs of the
// same workload can be compared even when concurrency reorders the reads.
package faultio

import (
	"errors"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// ErrInjected is the sentinel wrapped by every transient fault this package
// injects (transient errors and short reads). Callers classify injected
// faults with errors.Is; corruption is silent by design — it surfaces only
// through checksum verification downstream.
var ErrInjected = errors.New("injected I/O fault")

// Backend is the storage surface this package decorates. It is structurally
// identical to store.Backend — declared here, not imported, so faultio
// depends on nothing and any store backend (file, memory, snapshot, or
// another decorator) satisfies it as-is.
type Backend interface {
	io.ReaderAt
	io.WriterAt
	Size() (int64, error)
	Close() error
}

// Profile configures the injected fault mix. The zero value injects
// nothing and passes every read through untouched.
type Profile struct {
	// Seed drives every fault decision. Two readers with the same seed and
	// the same read sequence inject the identical fault sequence.
	Seed int64
	// TransientRate is the per-attempt probability in [0,1] that a read
	// fails with a transient error (ErrInjected). A retry of the same read
	// draws a fresh decision.
	TransientRate float64
	// CorruptRate is the per-(offset, length) probability in [0,1] that a
	// read range carries a persistent single-bit flip. The same range is
	// corrupted (at the same bit) on every read.
	CorruptRate float64
	// ShortRate is the per-attempt probability in [0,1] that a read
	// returns only half its bytes alongside ErrInjected.
	ShortRate float64
	// Latency is the maximum injected delay per read; the actual delay is
	// a deterministic per-read fraction of it. Zero injects none.
	Latency time.Duration
}

// ParseProfile parses a CLI fault-profile spec of comma-separated
// key=value pairs:
//
//	seed=7,transient=0.01,corrupt=0.001,short=0.005,latency=200us
//
// Unknown keys, malformed values and rates outside [0,1] are errors. The
// empty string parses to the zero Profile.
func ParseProfile(spec string) (Profile, error) {
	var p Profile
	if spec == "" {
		return p, nil
	}
	for _, field := range strings.Split(spec, ",") {
		key, val, ok := strings.Cut(strings.TrimSpace(field), "=")
		if !ok {
			return Profile{}, fmt.Errorf("faultio: field %q is not key=value", field)
		}
		var err error
		switch key {
		case "seed":
			p.Seed, err = strconv.ParseInt(val, 10, 64)
		case "transient":
			p.TransientRate, err = parseRate(val)
		case "corrupt":
			p.CorruptRate, err = parseRate(val)
		case "short":
			p.ShortRate, err = parseRate(val)
		case "latency":
			p.Latency, err = time.ParseDuration(val)
			if err == nil && p.Latency < 0 {
				err = fmt.Errorf("negative latency")
			}
		default:
			return Profile{}, fmt.Errorf("faultio: unknown profile key %q (want seed, transient, corrupt, short, latency)", key)
		}
		if err != nil {
			return Profile{}, fmt.Errorf("faultio: bad %s=%q: %v", key, val, err)
		}
	}
	return p, nil
}

func parseRate(val string) (float64, error) {
	r, err := strconv.ParseFloat(val, 64)
	if err != nil {
		return 0, err
	}
	if r < 0 || r > 1 || math.IsNaN(r) {
		return 0, fmt.Errorf("rate %v outside [0,1]", r)
	}
	return r, nil
}

// Fault describes one injected fault.
type Fault struct {
	// Class is "transient", "short" or "corrupt".
	Class string
	// Off and Len identify the read range the fault was injected into.
	Off int64
	Len int
	// Attempt is the 1-based count of reads of this (Off, Len) range at
	// injection time; corruption, being attempt-independent, records the
	// attempt it was observed on.
	Attempt uint64
}

// String renders the fault as a stable, comparable token.
func (f Fault) String() string {
	return fmt.Sprintf("%s@%d+%d#%d", f.Class, f.Off, f.Len, f.Attempt)
}

// Stats are the per-class fault counters of a Reader.
type Stats struct {
	// Reads counts ReadAt calls.
	Reads int64
	// Transient, Short and Corrupt count injected faults by class.
	Transient, Short, Corrupt int64
}

// Reader wraps a storage backend (or bare io.ReaderAt) with deterministic
// fault injection. It is safe for concurrent use and is itself a Backend:
// reads are faulted, while writes, Size and Close pass through unfaulted
// (so scrub repairs reach the backing store and lifecycle stays with the
// decorated backend).
type Reader struct {
	r       io.ReaderAt
	backend Backend // nil when wrapping a bare io.ReaderAt via New
	prof    Profile

	mu       sync.Mutex
	attempts map[[2]int64]uint64
	log      []Fault

	reads     atomic.Int64
	transient atomic.Int64
	short     atomic.Int64
	corrupt   atomic.Int64
}

// New wraps a bare io.ReaderAt with fault injection under prof. The result
// still exposes the full Backend surface, degraded where the underlying
// reader cannot support it: Size errors unless r implements
// Size() (int64, error), and Close closes r only if it is an io.Closer.
// Prefer Wrap when a full Backend is available.
func New(r io.ReaderAt, prof Profile) *Reader {
	return &Reader{r: r, prof: prof, attempts: map[[2]int64]uint64{}}
}

// Wrap decorates a full storage backend with fault injection under prof.
// The returned Reader satisfies Backend (and, structurally, store.Backend),
// so a faulted file, memory region or snapshot drops into any place a clean
// backend goes — an archive open, a serving catalog entry, a scrub pass.
func Wrap(b Backend, prof Profile) *Reader {
	return &Reader{r: b, backend: b, prof: prof, attempts: map[[2]int64]uint64{}}
}

// splitmix64 is the standard splitmix64 finalizer: a bijective avalanche
// mix whose output bits are uniform enough to derive probabilities from.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// draw derives a uniform [0,1) variate for one fault class of one read.
// class decorrelates the streams; attempt is 0 for attempt-independent
// (persistent) decisions.
func (f *Reader) draw(off int64, n int, class uint64, attempt uint64) (float64, uint64) {
	h := splitmix64(uint64(f.prof.Seed) ^ splitmix64(uint64(off)*0x9e3779b97f4a7c15+uint64(n)))
	h = splitmix64(h ^ class*0xd1342543de82ef95 ^ attempt*0xaf251af3b0f025b5)
	return float64(h>>11) / (1 << 53), h
}

// record logs one injected fault and bumps its class counter.
func (f *Reader) record(ctr *atomic.Int64, fault Fault) {
	ctr.Add(1)
	f.mu.Lock()
	f.log = append(f.log, fault)
	f.mu.Unlock()
}

// ReadAt implements io.ReaderAt with fault injection. Transient failures
// and short reads wrap ErrInjected; corrupted ranges return nil error with
// a flipped bit, exactly as a damaged substrate would.
func (f *Reader) ReadAt(p []byte, off int64) (int, error) {
	f.reads.Add(1)
	key := [2]int64{off, int64(len(p))}
	f.mu.Lock()
	f.attempts[key]++
	attempt := f.attempts[key]
	f.mu.Unlock()

	if f.prof.Latency > 0 {
		frac, _ := f.draw(off, len(p), 4, attempt)
		time.Sleep(time.Duration(float64(f.prof.Latency) * frac))
	}
	if u, _ := f.draw(off, len(p), 1, attempt); u < f.prof.TransientRate {
		f.record(&f.transient, Fault{Class: "transient", Off: off, Len: len(p), Attempt: attempt})
		return 0, fmt.Errorf("faultio: transient read error at %d+%d: %w", off, len(p), ErrInjected)
	}
	if u, _ := f.draw(off, len(p), 2, attempt); u < f.prof.ShortRate && len(p) > 1 {
		f.record(&f.short, Fault{Class: "short", Off: off, Len: len(p), Attempt: attempt})
		n, err := f.r.ReadAt(p[:len(p)/2], off)
		if err != nil {
			return n, err
		}
		return n, fmt.Errorf("faultio: short read %d of %d at %d: %w", n, len(p), off, ErrInjected)
	}
	n, err := f.r.ReadAt(p, off)
	if err != nil || n == 0 {
		return n, err
	}
	if u, h := f.draw(off, len(p), 3, 0); u < f.prof.CorruptRate {
		bit := splitmix64(h) % uint64(n*8)
		p[bit/8] ^= 1 << (bit % 8)
		f.record(&f.corrupt, Fault{Class: "corrupt", Off: off, Len: len(p), Attempt: attempt})
	}
	return n, err
}

// WriteAt passes writes through to the underlying backend or writer
// (repairs are never faulted), and reports an error when the underlying
// reader cannot accept writes.
func (f *Reader) WriteAt(p []byte, off int64) (int, error) {
	if w, ok := f.r.(io.WriterAt); ok {
		return w.WriteAt(p, off)
	}
	return 0, fmt.Errorf("faultio: underlying %T is not an io.WriterAt", f.r)
}

// Size passes through to the decorated backend — container length is a
// control-plane query, never faulted. A Reader over a bare io.ReaderAt
// reports Size only if the reader happens to implement it.
func (f *Reader) Size() (int64, error) {
	if f.backend != nil {
		return f.backend.Size()
	}
	if s, ok := f.r.(interface{ Size() (int64, error) }); ok {
		return s.Size()
	}
	return 0, fmt.Errorf("faultio: underlying %T does not report its size", f.r)
}

// Close closes the decorated backend (or the underlying io.Closer, if any).
// Lifecycle is pass-through: closing the decorator closes the medium.
func (f *Reader) Close() error {
	if f.backend != nil {
		return f.backend.Close()
	}
	if c, ok := f.r.(io.Closer); ok {
		return c.Close()
	}
	return nil
}

// Stats returns the current fault counters.
func (f *Reader) Stats() Stats {
	return Stats{
		Reads:     f.reads.Load(),
		Transient: f.transient.Load(),
		Short:     f.short.Load(),
		Corrupt:   f.corrupt.Load(),
	}
}

// Faults returns a copy of the fault log sorted into a canonical order
// (class, offset, length, attempt), so two runs of the same workload
// compare equal even when concurrency reordered their reads. A sequential
// workload's log is already in injection order before sorting.
func (f *Reader) Faults() []Fault {
	f.mu.Lock()
	out := append([]Fault(nil), f.log...)
	f.mu.Unlock()
	sortFaults(out)
	return out
}

func sortFaults(fs []Fault) {
	sort.Slice(fs, func(i, j int) bool {
		a, b := fs[i], fs[j]
		if a.Class != b.Class {
			return a.Class < b.Class
		}
		if a.Off != b.Off {
			return a.Off < b.Off
		}
		if a.Len != b.Len {
			return a.Len < b.Len
		}
		return a.Attempt < b.Attempt
	})
}
