// Package cache is a sharded, sized LRU cache with singleflight loading,
// the building block of the serve layer's decoded-chunk cache. It has no
// dependencies beyond the standard library.
//
// The cache is keyed, generic, and bounded by total cost rather than entry
// count: each value is charged a caller-defined cost (bytes of a decoded
// chunk, say) and the least-recently-used entries are evicted until the
// total fits the budget. GetOrLoad coalesces concurrent loads of the same
// key — under a stampede of N readers for a cold key, the loader runs
// exactly once and all N share its result — which is what keeps a hot chunk
// from being decoded N times when N clients request it at once.
//
// # Sharding
//
// A cache is split into a power-of-two number of shards, each with its own
// mutex, LRU list, and flight table, keyed by a seeded hash of the key.
// Concurrent lookups of different keys therefore contend only 1/N of the
// time, which is what makes the hot serve path scale across cores. The
// cost budget is divided across the shards (so the global budget is always
// respected: the per-shard budgets sum to exactly the configured maximum),
// and eviction is per-shard LRU — an entry can only displace entries of
// its own shard, which approximates global LRU closely at serving cache
// sizes while never taking more than one lock. New builds the single-shard
// (strict global LRU) cache; NewSharded selects the shard count, with
// DefaultShards as the serving default.
package cache

import (
	"container/list"
	"context"
	"hash/maphash"
	"math/bits"
	"runtime"
	"sync"
	"sync/atomic"
)

// Cache is a cost-bounded sharded LRU map with request-coalescing loads.
// The zero value is not usable; construct with New or NewSharded. All
// methods are safe for concurrent use.
type Cache[K comparable, V any] struct {
	cost   func(V) int64
	hash   func(maphash.Seed, K) uint64
	seed   maphash.Seed
	mask   uint64
	shards []shard[K, V]
}

// shard is one independently locked slice of the cache: its own mutex,
// entry map, LRU list, flight table, cost budget, and counters. The pad
// keeps neighbouring shards' hot fields off one another's cache lines.
type shard[K comparable, V any] struct {
	maxCost int64

	mu      sync.Mutex
	entries map[K]*list.Element
	order   *list.List // front = most recently used
	flights map[K]*flight[V]

	// total and count mirror the resident cost and entry count. They are
	// only mutated under mu but read atomically, so Stats/Len/Cost never
	// take a shard lock — the serve path publishes cache gauges per
	// request, and that must not serialize against lookups.
	total atomic.Int64
	count atomic.Int64

	hits      atomic.Int64
	misses    atomic.Int64
	loads     atomic.Int64
	evictions atomic.Int64

	_ [32]byte
}

// entry is one resident cache cell.
type entry[K comparable, V any] struct {
	key  K
	val  V
	cost int64
}

// flight is one in-progress load shared by every concurrent caller of the
// same key.
type flight[V any] struct {
	done chan struct{}
	val  V
	err  error
}

// DefaultShards is the shard count NewSharded selects when asked for 0 or
// fewer shards: max(8, GOMAXPROCS) rounded up to a power of two. Eight is
// enough to keep accidental hash collisions from serializing a small
// machine; larger machines get one shard per scheduler thread.
func DefaultShards() int {
	n := runtime.GOMAXPROCS(0)
	if n < 8 {
		n = 8
	}
	return ceilPow2(n)
}

// ceilPow2 rounds n up to the nearest power of two (minimum 1).
func ceilPow2(n int) int {
	if n <= 1 {
		return 1
	}
	return 1 << bits.Len(uint(n-1))
}

// New returns a single-shard cache bounded by maxCost, with each value
// charged by cost: the strict-global-LRU building block (one mutex, exact
// recency order). Serving paths that want multicore scaling should use
// NewSharded. A nil cost charges every entry 1, making maxCost an entry
// count. A maxCost <= 0 disables residency entirely — GetOrLoad still
// coalesces concurrent loads, but nothing is retained.
func New[K comparable, V any](maxCost int64, cost func(V) int64) *Cache[K, V] {
	return NewSharded[K, V](maxCost, 1, cost)
}

// NewSharded returns a cache of nshards power-of-two shards (values round
// up; nshards <= 0 selects DefaultShards) bounded by maxCost in total. The
// budget is split evenly across shards — the per-shard budgets sum to
// exactly maxCost, so the global bound holds under any key distribution —
// which also means a single value costing more than maxCost/nshards is not
// retained. Cost and maxCost semantics otherwise match New.
func NewSharded[K comparable, V any](maxCost int64, nshards int, cost func(V) int64) *Cache[K, V] {
	return NewShardedHash[K, V](maxCost, nshards, cost, nil)
}

// NewShardedHash is NewSharded with a caller-provided shard hash. A nil
// hash selects maphash.Comparable, which is correct for every comparable
// key but heap-escapes keys whose type contains pointers (strings, say) on
// each call; hot paths with such keys should pass a hash built from the
// per-field maphash primitives instead (see KeyedHash). The hash only
// picks the shard — it need not be collision-free, just well distributed.
func NewShardedHash[K comparable, V any](maxCost int64, nshards int, cost func(V) int64, hash func(maphash.Seed, K) uint64) *Cache[K, V] {
	if cost == nil {
		cost = func(V) int64 { return 1 }
	}
	if hash == nil {
		hash = func(seed maphash.Seed, k K) uint64 { return maphash.Comparable(seed, k) }
	}
	if nshards <= 0 {
		nshards = DefaultShards()
	}
	nshards = ceilPow2(nshards)
	c := &Cache[K, V]{
		cost:   cost,
		hash:   hash,
		seed:   maphash.MakeSeed(),
		mask:   uint64(nshards - 1),
		shards: make([]shard[K, V], nshards),
	}
	base, rem := int64(0), int64(0)
	if maxCost > 0 {
		base = maxCost / int64(nshards)
		rem = maxCost % int64(nshards)
	}
	for i := range c.shards {
		s := &c.shards[i]
		s.maxCost = base
		if int64(i) < rem {
			s.maxCost++
		}
		s.entries = map[K]*list.Element{}
		s.order = list.New()
		s.flights = map[K]*flight[V]{}
	}
	return c
}

// Shards returns the cache's shard count.
func (c *Cache[K, V]) Shards() int { return len(c.shards) }

// shard returns the shard owning key.
func (c *Cache[K, V]) shard(key K) *shard[K, V] {
	if c.mask == 0 {
		return &c.shards[0]
	}
	return &c.shards[c.hash(c.seed, key)&c.mask]
}

// Get returns the cached value for key, marking it most recently used.
func (c *Cache[K, V]) Get(key K) (V, bool) {
	s := c.shard(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.entries[key]; ok {
		s.order.MoveToFront(el)
		s.hits.Add(1)
		return el.Value.(*entry[K, V]).val, true
	}
	s.misses.Add(1)
	var zero V
	return zero, false
}

// Contains reports whether key is resident, without touching the recency
// order or the hit/miss counters — the prefetcher's "already warm?" probe.
func (c *Cache[K, V]) Contains(key K) bool {
	s := c.shard(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.entries[key]
	return ok
}

// Add inserts or replaces the value for key and evicts LRU entries of its
// shard until the shard's cost fits its budget. A value whose own cost
// exceeds the shard budget is not retained (it would only evict everything
// else and then miss anyway).
func (c *Cache[K, V]) Add(key K, val V) {
	cost := c.cost(val)
	s := c.shard(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	s.addLocked(key, val, cost)
}

func (s *shard[K, V]) addLocked(key K, val V, cost int64) {
	if cost > s.maxCost {
		return
	}
	if el, ok := s.entries[key]; ok {
		e := el.Value.(*entry[K, V])
		s.total.Add(cost - e.cost)
		e.val, e.cost = val, cost
		s.order.MoveToFront(el)
	} else {
		s.entries[key] = s.order.PushFront(&entry[K, V]{key: key, val: val, cost: cost})
		s.total.Add(cost)
		s.count.Add(1)
	}
	for s.total.Load() > s.maxCost {
		back := s.order.Back()
		if back == nil {
			break
		}
		s.removeLocked(back)
		s.evictions.Add(1)
	}
}

func (s *shard[K, V]) removeLocked(el *list.Element) {
	e := el.Value.(*entry[K, V])
	s.order.Remove(el)
	delete(s.entries, e.key)
	s.total.Add(-e.cost)
	s.count.Add(-1)
}

// Remove drops key from the cache, reporting whether it was resident.
func (c *Cache[K, V]) Remove(key K) bool {
	s := c.shard(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	el, ok := s.entries[key]
	if ok {
		s.removeLocked(el)
	}
	return ok
}

// GetOrLoad returns the cached value for key, or runs load to produce it,
// reporting whether the value was resident at lookup (the hit/miss verdict
// of this one request — callers must not re-probe with Get, which would
// both double-count and take the shard lock twice). Concurrent calls for
// the same key share a single load (singleflight): exactly one caller's
// load function runs, the rest block until it finishes and receive the
// same value or error. Successful loads are added to the cache; failed
// loads are not, so a later call retries.
//
// The load function receives a context detached from ctx's cancellation:
// the result is shared by every waiter (and the cache), so one caller
// hanging up must not poison it for the others. A caller whose own ctx
// ends while waiting returns ctx.Err() immediately; the load keeps running
// and its result is still cached for future readers.
func (c *Cache[K, V]) GetOrLoad(ctx context.Context, key K, load func(context.Context) (V, error)) (V, bool, error) {
	s := c.shard(key)
	s.mu.Lock()
	if el, ok := s.entries[key]; ok {
		s.order.MoveToFront(el)
		s.hits.Add(1)
		v := el.Value.(*entry[K, V]).val
		s.mu.Unlock()
		return v, true, nil
	}
	s.misses.Add(1)
	if f, ok := s.flights[key]; ok {
		// Someone is already loading this key; wait on their flight.
		s.mu.Unlock()
		v, err := wait(ctx, f)
		return v, false, err
	}
	f := &flight[V]{done: make(chan struct{})}
	s.flights[key] = f
	s.mu.Unlock()

	s.loads.Add(1)
	go func() {
		f.val, f.err = load(context.WithoutCancel(ctx))
		s.mu.Lock()
		delete(s.flights, key)
		if f.err == nil {
			s.addLocked(key, f.val, c.cost(f.val))
		}
		s.mu.Unlock()
		close(f.done)
	}()
	v, err := wait(ctx, f)
	return v, false, err
}

// wait blocks on a flight until it completes or the caller's own context
// ends, whichever comes first.
func wait[V any](ctx context.Context, f *flight[V]) (V, error) {
	select {
	case <-f.done:
		return f.val, f.err
	case <-ctx.Done():
		var zero V
		return zero, ctx.Err()
	}
}

// Len returns the number of resident entries across all shards. It takes
// no locks; see Stats.
func (c *Cache[K, V]) Len() int {
	n := int64(0)
	for i := range c.shards {
		n += c.shards[i].count.Load()
	}
	return int(n)
}

// Cost returns the total cost of resident entries across all shards. It
// takes no locks; see Stats.
func (c *Cache[K, V]) Cost() int64 {
	var total int64
	for i := range c.shards {
		total += c.shards[i].total.Load()
	}
	return total
}

// Stats is a point-in-time copy of the cache's counters, aggregated across
// shards (see ShardStats for the per-shard breakdown).
type Stats struct {
	// Hits and Misses count Get/GetOrLoad lookups by residency at lookup
	// time (a coalesced waiter counts as a miss — the value was not
	// resident — but triggers no extra load).
	Hits, Misses int64
	// Loads counts loader executions started by GetOrLoad; under a stampede
	// it stays at one per cold key, which is the singleflight guarantee.
	Loads int64
	// Evictions counts entries dropped to fit the cost budget.
	Evictions int64
	// Len and Cost describe current residency.
	Len  int
	Cost int64
}

// HitRate returns Hits over total lookups, 0 when there were none.
func (s Stats) HitRate() float64 {
	if s.Hits+s.Misses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Hits+s.Misses)
}

// add folds o into s.
func (s *Stats) add(o Stats) {
	s.Hits += o.Hits
	s.Misses += o.Misses
	s.Loads += o.Loads
	s.Evictions += o.Evictions
	s.Len += o.Len
	s.Cost += o.Cost
}

// Stats returns the current counter values aggregated across all shards.
func (c *Cache[K, V]) Stats() Stats {
	var agg Stats
	for _, s := range c.ShardStats() {
		agg.add(s)
	}
	return agg
}

// ShardStats returns each shard's counters, indexed by shard. Reads are
// lock-free: each field is an atomic snapshot, so a slice taken during
// concurrent mutation is consistent per field, not across fields. The sum
// of the returned slice is exactly Stats() at the same instant of each
// shard's snapshot.
func (c *Cache[K, V]) ShardStats() []Stats {
	out := make([]Stats, len(c.shards))
	for i := range c.shards {
		s := &c.shards[i]
		out[i] = Stats{
			Hits:      s.hits.Load(),
			Misses:    s.misses.Load(),
			Loads:     s.loads.Load(),
			Evictions: s.evictions.Load(),
			Len:       int(s.count.Load()),
			Cost:      s.total.Load(),
		}
	}
	return out
}
