// Package cache is a sized LRU cache with singleflight loading, the
// building block of the serve layer's decoded-chunk cache. It has no
// dependencies beyond the standard library.
//
// The cache is keyed, generic, and bounded by total cost rather than entry
// count: each value is charged a caller-defined cost (bytes of a decoded
// chunk, say) and the least-recently-used entries are evicted until the
// total fits the budget. GetOrLoad coalesces concurrent loads of the same
// key — under a stampede of N readers for a cold key, the loader runs
// exactly once and all N share its result — which is what keeps a hot chunk
// from being decoded N times when N clients request it at once.
package cache

import (
	"container/list"
	"context"
	"sync"
	"sync/atomic"
)

// Cache is a cost-bounded LRU map with request-coalescing loads. The zero
// value is not usable; construct with New. All methods are safe for
// concurrent use.
type Cache[K comparable, V any] struct {
	maxCost int64
	cost    func(V) int64

	mu      sync.Mutex
	entries map[K]*list.Element
	order   *list.List // front = most recently used
	total   int64
	flights map[K]*flight[V]

	hits      atomic.Int64
	misses    atomic.Int64
	loads     atomic.Int64
	evictions atomic.Int64
}

// entry is one resident cache cell.
type entry[K comparable, V any] struct {
	key  K
	val  V
	cost int64
}

// flight is one in-progress load shared by every concurrent caller of the
// same key.
type flight[V any] struct {
	done chan struct{}
	val  V
	err  error
}

// New returns a cache bounded by maxCost, with each value charged by cost.
// A nil cost charges every entry 1, making maxCost an entry count. A
// maxCost <= 0 disables residency entirely — GetOrLoad still coalesces
// concurrent loads, but nothing is retained.
func New[K comparable, V any](maxCost int64, cost func(V) int64) *Cache[K, V] {
	if cost == nil {
		cost = func(V) int64 { return 1 }
	}
	return &Cache[K, V]{
		maxCost: maxCost,
		cost:    cost,
		entries: map[K]*list.Element{},
		order:   list.New(),
		flights: map[K]*flight[V]{},
	}
}

// Get returns the cached value for key, marking it most recently used.
func (c *Cache[K, V]) Get(key K) (V, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		c.order.MoveToFront(el)
		c.hits.Add(1)
		return el.Value.(*entry[K, V]).val, true
	}
	c.misses.Add(1)
	var zero V
	return zero, false
}

// Add inserts or replaces the value for key and evicts LRU entries until
// the total cost fits the budget. A value whose own cost exceeds the whole
// budget is not retained (it would only evict everything else and then
// miss anyway).
func (c *Cache[K, V]) Add(key K, val V) {
	cost := c.cost(val)
	c.mu.Lock()
	defer c.mu.Unlock()
	c.addLocked(key, val, cost)
}

func (c *Cache[K, V]) addLocked(key K, val V, cost int64) {
	if cost > c.maxCost {
		return
	}
	if el, ok := c.entries[key]; ok {
		e := el.Value.(*entry[K, V])
		c.total += cost - e.cost
		e.val, e.cost = val, cost
		c.order.MoveToFront(el)
	} else {
		c.entries[key] = c.order.PushFront(&entry[K, V]{key: key, val: val, cost: cost})
		c.total += cost
	}
	for c.total > c.maxCost {
		back := c.order.Back()
		if back == nil {
			break
		}
		c.removeLocked(back)
		c.evictions.Add(1)
	}
}

func (c *Cache[K, V]) removeLocked(el *list.Element) {
	e := el.Value.(*entry[K, V])
	c.order.Remove(el)
	delete(c.entries, e.key)
	c.total -= e.cost
}

// Remove drops key from the cache, reporting whether it was resident.
func (c *Cache[K, V]) Remove(key K) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if ok {
		c.removeLocked(el)
	}
	return ok
}

// GetOrLoad returns the cached value for key, or runs load to produce it.
// Concurrent calls for the same key share a single load (singleflight):
// exactly one caller's load function runs, the rest block until it
// finishes and receive the same value or error. Successful loads are added
// to the cache; failed loads are not, so a later call retries.
//
// The load function receives a context detached from ctx's cancellation:
// the result is shared by every waiter (and the cache), so one caller
// hanging up must not poison it for the others. A caller whose own ctx
// ends while waiting returns ctx.Err() immediately; the load keeps running
// and its result is still cached for future readers.
func (c *Cache[K, V]) GetOrLoad(ctx context.Context, key K, load func(context.Context) (V, error)) (V, error) {
	c.mu.Lock()
	if el, ok := c.entries[key]; ok {
		c.order.MoveToFront(el)
		c.hits.Add(1)
		v := el.Value.(*entry[K, V]).val
		c.mu.Unlock()
		return v, nil
	}
	c.misses.Add(1)
	if f, ok := c.flights[key]; ok {
		// Someone is already loading this key; wait on their flight.
		c.mu.Unlock()
		return c.wait(ctx, f)
	}
	f := &flight[V]{done: make(chan struct{})}
	c.flights[key] = f
	c.mu.Unlock()

	c.loads.Add(1)
	go func() {
		f.val, f.err = load(context.WithoutCancel(ctx))
		c.mu.Lock()
		delete(c.flights, key)
		if f.err == nil {
			c.addLocked(key, f.val, c.cost(f.val))
		}
		c.mu.Unlock()
		close(f.done)
	}()
	return c.wait(ctx, f)
}

// wait blocks on a flight until it completes or the caller's own context
// ends, whichever comes first.
func (c *Cache[K, V]) wait(ctx context.Context, f *flight[V]) (V, error) {
	select {
	case <-f.done:
		return f.val, f.err
	case <-ctx.Done():
		var zero V
		return zero, ctx.Err()
	}
}

// Len returns the number of resident entries.
func (c *Cache[K, V]) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Cost returns the total cost of resident entries.
func (c *Cache[K, V]) Cost() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.total
}

// Stats is a point-in-time copy of the cache's counters.
type Stats struct {
	// Hits and Misses count Get/GetOrLoad lookups by residency at lookup
	// time (a coalesced waiter counts as a miss — the value was not
	// resident — but triggers no extra load).
	Hits, Misses int64
	// Loads counts loader executions started by GetOrLoad; under a stampede
	// it stays at one per cold key, which is the singleflight guarantee.
	Loads int64
	// Evictions counts entries dropped to fit the cost budget.
	Evictions int64
	// Len and Cost describe current residency.
	Len  int
	Cost int64
}

// HitRate returns Hits over total lookups, 0 when there were none.
func (s Stats) HitRate() float64 {
	if s.Hits+s.Misses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Hits+s.Misses)
}

// Stats returns the current counter values.
func (c *Cache[K, V]) Stats() Stats {
	c.mu.Lock()
	n, total := len(c.entries), c.total
	c.mu.Unlock()
	return Stats{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Loads:     c.loads.Load(),
		Evictions: c.evictions.Load(),
		Len:       n,
		Cost:      total,
	}
}
