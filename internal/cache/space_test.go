package cache

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

// TestSpacesShareOneBudget: two namespaces over one cache share a single
// cost budget and a single recency order — filling one space evicts the
// globally least-recent entries regardless of which space owns them.
func TestSpacesShareOneBudget(t *testing.T) {
	c := New[Keyed[int], string](4, nil) // cost 1 each: 4 entries total
	a, b := In[int, string](c, "a"), In[int, string](c, "b")

	a.Add(1, "a1")
	a.Add(2, "a2")
	b.Add(1, "b1")
	b.Add(2, "b2")
	if c.Len() != 4 {
		t.Fatalf("Len = %d, want 4", c.Len())
	}
	// Touch a1 so it is most recent; the next insert must evict a2 — the
	// globally least-recent — not anything of b's.
	if v, ok := a.Get(1); !ok || v != "a1" {
		t.Fatalf("a.Get(1) = %q, %v", v, ok)
	}
	b.Add(3, "b3")
	if _, ok := a.Get(2); ok {
		t.Fatal("a2 should have been evicted as globally least-recent")
	}
	for key, want := range map[int]string{1: "b1", 2: "b2", 3: "b3"} {
		if v, ok := b.Get(key); !ok || v != want {
			t.Fatalf("b.Get(%d) = %q, %v; want %q resident", key, v, ok, want)
		}
	}
	if v, ok := a.Get(1); !ok || v != "a1" {
		t.Fatalf("a1 lost: %q, %v", v, ok)
	}
}

// TestSpaceKeysAreDistinct: the same inner key in two spaces is two
// entries; removing one leaves the other.
func TestSpaceKeysAreDistinct(t *testing.T) {
	c := New[Keyed[int], string](10, nil)
	a, b := In[int, string](c, "a"), In[int, string](c, "b")
	a.Add(7, "from-a")
	b.Add(7, "from-b")
	if v, _ := a.Get(7); v != "from-a" {
		t.Fatalf("a[7] = %q", v)
	}
	if v, _ := b.Get(7); v != "from-b" {
		t.Fatalf("b[7] = %q", v)
	}
	if !a.Remove(7) {
		t.Fatal("a.Remove(7) reported not resident")
	}
	if _, ok := a.Get(7); ok {
		t.Fatal("a[7] survived Remove")
	}
	if v, ok := b.Get(7); !ok || v != "from-b" {
		t.Fatal("removing a[7] disturbed b[7]")
	}
}

// TestConcurrentGetOrLoadAcrossSpaces is the namespaced-key acceptance
// test, run under -race: many goroutines hammer the same inner keys through
// two spaces sharing one budget. Singleflight must stay per-(space, key) —
// each (space, key) loads exactly once while everything is resident-or-in-
// flight — and the shared budget must hold.
func TestConcurrentGetOrLoadAcrossSpaces(t *testing.T) {
	const keys = 8
	// Budget holds all entries of both spaces, so every key loads exactly
	// once; eviction pressure is exercised separately below.
	c := New[Keyed[int], string](2*keys, nil)
	spaces := []Space[int, string]{In[int, string](c, "a"), In[int, string](c, "b")}

	var loadsPer [2 * keys]atomic.Int64
	var wg sync.WaitGroup
	start := make(chan struct{})
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			<-start
			for i := 0; i < 200; i++ {
				si := (g + i) % 2
				key := (g * 7 % keys) ^ (i%keys)%keys
				s := spaces[si]
				want := fmt.Sprintf("%s-%d", s.Name(), key)
				got, _, err := s.GetOrLoad(context.Background(), key, func(context.Context) (string, error) {
					loadsPer[si*keys+key].Add(1)
					return want, nil
				})
				if err != nil {
					t.Error(err)
					return
				}
				if got != want {
					t.Errorf("space %s key %d: got %q, want %q — value crossed namespaces", s.Name(), key, got, want)
					return
				}
			}
		}(g)
	}
	close(start)
	wg.Wait()

	for i := range loadsPer {
		if n := loadsPer[i].Load(); n > 1 {
			t.Errorf("(space %d, key %d) loaded %d times, want at most 1 (singleflight per (space,key))", i/keys, i%keys, n)
		}
	}
	if got := c.Cost(); got > 2*keys {
		t.Fatalf("cost %d exceeds shared budget %d", got, 2*keys)
	}
}

// TestConcurrentSpacesUnderEviction: with a budget far below the working
// set, concurrent loads through two spaces must never over-fill the shared
// cache and every read must still return its own space's value.
func TestConcurrentSpacesUnderEviction(t *testing.T) {
	const budget = 4
	c := New[Keyed[int], string](budget, nil)
	spaces := []Space[int, string]{In[int, string](c, "a"), In[int, string](c, "b")}

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 300; i++ {
				s := spaces[(g+i)%2]
				key := i % 16
				want := fmt.Sprintf("%s-%d", s.Name(), key)
				got, _, err := s.GetOrLoad(context.Background(), key, func(context.Context) (string, error) {
					return want, nil
				})
				if err != nil || got != want {
					t.Errorf("space %s key %d: got %q, %v; want %q", s.Name(), key, got, err, want)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if got := c.Cost(); got > budget {
		t.Fatalf("cost %d exceeds budget %d", got, budget)
	}
}

// TestSpacePurge: Purge empties exactly one namespace and reports the
// count; the shared budget is released for the survivors.
func TestSpacePurge(t *testing.T) {
	c := New[Keyed[int], string](8, nil)
	a, b := In[int, string](c, "a"), In[int, string](c, "b")
	for i := 0; i < 4; i++ {
		a.Add(i, "a")
		b.Add(i, "b")
	}
	if n := a.Purge(); n != 4 {
		t.Fatalf("Purge removed %d, want 4", n)
	}
	if c.Len() != 4 {
		t.Fatalf("Len after purge = %d, want 4", c.Len())
	}
	for i := 0; i < 4; i++ {
		if _, ok := a.Get(i); ok {
			t.Fatalf("a[%d] survived Purge", i)
		}
		if _, ok := b.Get(i); !ok {
			t.Fatalf("b[%d] lost to a's Purge", i)
		}
	}
	if n := a.Purge(); n != 0 {
		t.Fatalf("second Purge removed %d, want 0", n)
	}
}
