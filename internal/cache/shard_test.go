package cache

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

func TestDefaultShardsIsPowerOfTwo(t *testing.T) {
	n := DefaultShards()
	if n < 8 || n&(n-1) != 0 {
		t.Fatalf("DefaultShards() = %d, want a power of two >= 8", n)
	}
	if p := runtime.GOMAXPROCS(0); n < p {
		t.Fatalf("DefaultShards() = %d < GOMAXPROCS %d", n, p)
	}
}

func TestShardCountRoundsUp(t *testing.T) {
	for _, tc := range []struct{ ask, want int }{
		{1, 1}, {2, 2}, {3, 4}, {5, 8}, {8, 8}, {9, 16}, {33, 64},
	} {
		c := NewSharded[int, int](100, tc.ask, nil)
		if got := c.Shards(); got != tc.want {
			t.Fatalf("NewSharded(shards=%d): %d shards, want %d", tc.ask, got, tc.want)
		}
	}
	if got := New[int, int](100, nil).Shards(); got != 1 {
		t.Fatalf("New: %d shards, want 1", got)
	}
}

// TestShardedGlobalBudget is the cross-shard eviction acceptance test: a
// working set far larger than the budget, spread by hash across every
// shard, must evict down to the global budget — the per-shard budgets sum
// to exactly maxCost, so the aggregate can never exceed it.
func TestShardedGlobalBudget(t *testing.T) {
	const budget = 1000
	c := NewSharded[int, int](budget, 8, func(int) int64 { return 7 })
	for i := 0; i < 4096; i++ {
		c.Add(i, i)
	}
	if got := c.Cost(); got > budget {
		t.Fatalf("total cost %d exceeds global budget %d", got, budget)
	}
	// Per-shard budgets partition the global one exactly.
	var sumBudget int64
	for i := range c.shards {
		sumBudget += c.shards[i].maxCost
		if got := c.shards[i].total.Load(); got > c.shards[i].maxCost {
			t.Fatalf("shard %d cost %d over its budget %d", i, got, c.shards[i].maxCost)
		}
	}
	if sumBudget != budget {
		t.Fatalf("shard budgets sum to %d, want %d", sumBudget, budget)
	}
	if s := c.Stats(); s.Evictions == 0 {
		t.Fatal("4096 inserts into a ~142-entry budget evicted nothing")
	}
}

// TestShardedSingleflightStampede pins the per-shard singleflight
// guarantee under -race: 32 goroutines per key, keys spread across every
// shard, and each key's loader runs exactly once while every caller
// observes its value.
func TestShardedSingleflightStampede(t *testing.T) {
	c := NewSharded[int, int](1<<20, 8, nil)
	const keys = 32 // ~4 keys per shard
	const stampede = 32
	var loads [keys]atomic.Int64
	release := make(chan struct{})
	var wg sync.WaitGroup
	errs := make(chan error, keys*stampede)
	for k := 0; k < keys; k++ {
		for g := 0; g < stampede; g++ {
			wg.Add(1)
			go func(k int) {
				defer wg.Done()
				v, _, err := c.GetOrLoad(context.Background(), k, func(context.Context) (int, error) {
					loads[k].Add(1)
					<-release // hold every stampeder of this key in one flight
					return k * 10, nil
				})
				if err != nil {
					errs <- err
					return
				}
				if v != k*10 {
					errs <- fmt.Errorf("key %d: got %d, want %d", k, v, k*10)
				}
			}(k)
		}
	}
	close(release)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	for k := range loads {
		if got := loads[k].Load(); got != 1 {
			t.Fatalf("key %d loaded %d times under a %d-goroutine stampede, want exactly 1", k, got, stampede)
		}
	}
	if s := c.Stats(); s.Loads != keys {
		t.Fatalf("Stats.Loads = %d, want %d", s.Loads, keys)
	}
}

// TestShardStatsAggregation: Stats() must equal the field-wise sum of
// ShardStats(), and traffic must actually spread over multiple shards.
func TestShardStatsAggregation(t *testing.T) {
	c := NewSharded[int, int](256, 8, nil)
	for i := 0; i < 128; i++ {
		c.Add(i, i)
	}
	for i := 0; i < 256; i++ {
		c.Get(i % 160) // mix of hits and misses
	}
	for i := 0; i < 16; i++ {
		c.GetOrLoad(context.Background(), 1000+i, func(context.Context) (int, error) { return i, nil })
	}
	per := c.ShardStats()
	var sum Stats
	for _, s := range per {
		sum.add(s)
	}
	got := c.Stats()
	if got != sum {
		t.Fatalf("Stats() = %+v, sum of ShardStats() = %+v", got, sum)
	}
	touched := 0
	for _, s := range per {
		if s.Hits+s.Misses > 0 {
			touched++
		}
	}
	if touched < 2 {
		t.Fatalf("traffic landed on %d shard(s); the hash is not spreading keys", touched)
	}
}

// TestGetOrLoadReportsResidency pins the hit flag: miss on the load, hit
// once resident, miss again for a coalesced waiter.
func TestGetOrLoadReportsResidency(t *testing.T) {
	c := New[string, int](8, nil)
	if _, hit, _ := c.GetOrLoad(context.Background(), "k", func(context.Context) (int, error) { return 1, nil }); hit {
		t.Fatal("first GetOrLoad reported hit")
	}
	if _, hit, _ := c.GetOrLoad(context.Background(), "k", func(context.Context) (int, error) { return 2, nil }); !hit {
		t.Fatal("resident GetOrLoad reported miss")
	}
	s := c.Stats()
	if s.Hits != 1 || s.Misses != 1 {
		t.Fatalf("stats %+v, want exactly 1 hit / 1 miss (no double counting)", s)
	}

	// A waiter coalesced onto someone else's flight reports a miss. The
	// waiter's context is pre-cancelled so it returns while the flight is
	// still pending — the value provably was not resident at its lookup.
	release := make(chan struct{})
	started := make(chan struct{})
	go c.GetOrLoad(context.Background(), "slow", func(context.Context) (int, error) {
		close(started)
		<-release
		return 3, nil
	})
	<-started
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	_, hit, err := c.GetOrLoad(cancelled, "slow", func(context.Context) (int, error) { return 4, nil })
	close(release)
	if hit {
		t.Fatal("coalesced waiter reported hit; the value was not resident at lookup")
	}
	if err == nil {
		t.Fatal("cancelled waiter returned no error")
	}
}

// TestShardedConcurrentChurn hammers a sharded cache from many goroutines
// under -race: mixed Add/Get/GetOrLoad/Remove over a key space larger than
// the budget, asserting the global budget at the end.
func TestShardedConcurrentChurn(t *testing.T) {
	const budget = 64
	c := NewSharded[int, int](budget, 0, nil) // default shard count
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				k := (g*31 + i) % 256
				switch i % 4 {
				case 0:
					c.Add(k, k)
				case 1:
					c.Get(k)
				case 2:
					c.GetOrLoad(context.Background(), k, func(context.Context) (int, error) { return k, nil })
				default:
					c.Remove(k)
				}
			}
		}(g)
	}
	wg.Wait()
	if got := c.Cost(); got > budget {
		t.Fatalf("cost %d exceeds budget %d after churn", got, budget)
	}
}
