package cache

import "context"

// Keyed is a namespaced cache key: the same inner key in two spaces is two
// distinct entries. It is how one cost-bounded cache is shared by many
// tenants (the serving catalog's archives) while staying a single LRU — the
// budget and the recency order are global, so a hot tenant naturally
// displaces a cold one instead of each tenant hoarding a fixed slice.
type Keyed[K comparable] struct {
	// Space names the partition (a catalog archive, say). Spaces are free:
	// an unused space occupies nothing.
	Space string
	// Key is the inner key within the space.
	Key K
}

// Space is a view of a shared cache scoped to one namespace. All views over
// the same Cache share its budget, LRU order, and singleflight table;
// operations through a view touch only that namespace's entries. The view
// is stateless and safe for concurrent use.
type Space[K comparable, V any] struct {
	c    *Cache[Keyed[K], V]
	name string
}

// In returns the view of c scoped to the named space.
func In[K comparable, V any](c *Cache[Keyed[K], V], name string) Space[K, V] {
	return Space[K, V]{c: c, name: name}
}

// Name returns the namespace this view is scoped to.
func (s Space[K, V]) Name() string { return s.name }

// Get returns the cached value for key within the space.
func (s Space[K, V]) Get(key K) (V, bool) {
	return s.c.Get(Keyed[K]{Space: s.name, Key: key})
}

// Add inserts or replaces the value for key within the space, evicting the
// globally least-recently-used entries (any space) to fit the shared budget.
func (s Space[K, V]) Add(key K, val V) {
	s.c.Add(Keyed[K]{Space: s.name, Key: key}, val)
}

// Remove drops key from the space, reporting whether it was resident.
func (s Space[K, V]) Remove(key K) bool {
	return s.c.Remove(Keyed[K]{Space: s.name, Key: key})
}

// GetOrLoad is Cache.GetOrLoad scoped to the space: singleflight is per
// (space, key), so the same chunk index loading in two spaces runs two
// loads, while a stampede on one (space, key) still runs exactly one.
func (s Space[K, V]) GetOrLoad(ctx context.Context, key K, load func(context.Context) (V, error)) (V, error) {
	return s.c.GetOrLoad(ctx, Keyed[K]{Space: s.name, Key: key}, load)
}

// Purge drops every resident entry in the space and returns the count. In-
// flight loads keyed to the space are not interrupted; their results land
// after the purge and age out through the shared LRU. Callers that must
// keep stale results unreachable should retire the space name itself (open
// the tenant under a fresh generation suffix) rather than rely on Purge
// racing the loads.
func (s Space[K, V]) Purge() int {
	return s.c.RemoveIf(func(k Keyed[K]) bool { return k.Space == s.name })
}

// RemoveIf drops every resident entry whose key matches pred, returning the
// number removed. It holds the cache lock for the scan: pred must be fast
// and must not touch the cache.
func (c *Cache[K, V]) RemoveIf(pred func(K) bool) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	removed := 0
	for key, el := range c.entries {
		if pred(key) {
			c.removeLocked(el)
			removed++
		}
	}
	return removed
}
