package cache

import (
	"context"
	"hash/maphash"
)

// Keyed is a namespaced cache key: the same inner key in two spaces is two
// distinct entries. It is how one cost-bounded cache is shared by many
// tenants (the serving catalog's archives) while staying a single LRU — the
// budget and the recency order are global, so a hot tenant naturally
// displaces a cold one instead of each tenant hoarding a fixed slice.
type Keyed[K comparable] struct {
	// Space names the partition (a catalog archive, say). Spaces are free:
	// an unused space occupies nothing.
	Space string
	// Key is the inner key within the space.
	Key K
}

// KeyedHash returns a shard hash for Keyed[K] keys that hashes the space
// string with maphash.String and folds in the inner key separately.
// Unlike maphash.Comparable over the whole struct — whose string field
// makes every call copy the key to the heap — it allocates nothing, which
// is what the serve path's per-request lookups want. The inner key's own
// type must still be pointer-free (int chunk indexes are) for the
// Comparable call on it to stay allocation-free.
func KeyedHash[K comparable]() func(maphash.Seed, Keyed[K]) uint64 {
	return func(seed maphash.Seed, k Keyed[K]) uint64 {
		h := maphash.String(seed, k.Space) ^ maphash.Comparable(seed, k.Key)
		// Finalizing mix: shard selection uses the low bits, so spread the
		// xor-combined entropy through them (splitmix64 finalizer).
		h ^= h >> 30
		h *= 0xbf58476d1ce4e5b9
		h ^= h >> 27
		return h
	}
}

// Space is a view of a shared cache scoped to one namespace. All views over
// the same Cache share its budget, LRU order, and singleflight table;
// operations through a view touch only that namespace's entries. The view
// is stateless and safe for concurrent use.
type Space[K comparable, V any] struct {
	c    *Cache[Keyed[K], V]
	name string
}

// In returns the view of c scoped to the named space.
func In[K comparable, V any](c *Cache[Keyed[K], V], name string) Space[K, V] {
	return Space[K, V]{c: c, name: name}
}

// Name returns the namespace this view is scoped to.
func (s Space[K, V]) Name() string { return s.name }

// Get returns the cached value for key within the space.
func (s Space[K, V]) Get(key K) (V, bool) {
	return s.c.Get(Keyed[K]{Space: s.name, Key: key})
}

// Contains reports whether key is resident within the space without
// touching the recency order or the hit/miss counters.
func (s Space[K, V]) Contains(key K) bool {
	return s.c.Contains(Keyed[K]{Space: s.name, Key: key})
}

// Add inserts or replaces the value for key within the space, evicting the
// globally least-recently-used entries (any space) to fit the shared budget.
func (s Space[K, V]) Add(key K, val V) {
	s.c.Add(Keyed[K]{Space: s.name, Key: key}, val)
}

// Remove drops key from the space, reporting whether it was resident.
func (s Space[K, V]) Remove(key K) bool {
	return s.c.Remove(Keyed[K]{Space: s.name, Key: key})
}

// GetOrLoad is Cache.GetOrLoad scoped to the space: singleflight is per
// (space, key), so the same chunk index loading in two spaces runs two
// loads, while a stampede on one (space, key) still runs exactly one. The
// middle return reports whether the value was resident at lookup.
func (s Space[K, V]) GetOrLoad(ctx context.Context, key K, load func(context.Context) (V, error)) (V, bool, error) {
	return s.c.GetOrLoad(ctx, Keyed[K]{Space: s.name, Key: key}, load)
}

// Purge drops every resident entry in the space and returns the count. In-
// flight loads keyed to the space are not interrupted; their results land
// after the purge and age out through the shared LRU. Callers that must
// keep stale results unreachable should retire the space name itself (open
// the tenant under a fresh generation suffix) rather than rely on Purge
// racing the loads.
func (s Space[K, V]) Purge() int {
	return s.c.RemoveIf(func(k Keyed[K]) bool { return k.Space == s.name })
}

// RemoveIf drops every resident entry whose key matches pred, returning the
// number removed. It scans shard by shard, holding each shard's lock for
// its slice of the scan: pred must be fast and must not touch the cache.
func (c *Cache[K, V]) RemoveIf(pred func(K) bool) int {
	removed := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		for key, el := range s.entries {
			if pred(key) {
				s.removeLocked(el)
				removed++
			}
		}
		s.mu.Unlock()
	}
	return removed
}
