package cache

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestGetAddEvictLRU(t *testing.T) {
	c := New[int, string](3, nil) // nil cost: capacity of 3 entries
	c.Add(1, "a")
	c.Add(2, "b")
	c.Add(3, "c")
	if _, ok := c.Get(1); !ok { // touch 1: now 2 is LRU
		t.Fatal("1 must be resident")
	}
	c.Add(4, "d") // evicts 2
	if _, ok := c.Get(2); ok {
		t.Fatal("2 must have been evicted as LRU")
	}
	for _, k := range []int{1, 3, 4} {
		if _, ok := c.Get(k); !ok {
			t.Fatalf("%d must be resident", k)
		}
	}
	if s := c.Stats(); s.Evictions != 1 || s.Len != 3 {
		t.Fatalf("stats %+v: want 1 eviction, 3 resident", s)
	}
}

func TestCostBasedEviction(t *testing.T) {
	c := New[int, string](10, func(v string) int64 { return int64(len(v)) })
	c.Add(1, "aaaa") // cost 4
	c.Add(2, "bbbb") // cost 4
	c.Add(3, "cc")   // cost 2, total 10: all fit
	if c.Cost() != 10 || c.Len() != 3 {
		t.Fatalf("cost %d len %d, want 10/3", c.Cost(), c.Len())
	}
	c.Add(4, "ddd") // cost 3: evicts 1 (LRU), total 9
	if _, ok := c.Get(1); ok {
		t.Fatal("1 must have been evicted")
	}
	if c.Cost() != 9 {
		t.Fatalf("cost %d, want 9", c.Cost())
	}
	// An entry larger than the whole budget is not retained.
	c.Add(5, "0123456789ABCDEF")
	if _, ok := c.Get(5); ok {
		t.Fatal("oversized entry must not be retained")
	}
	// Replacing a key adjusts the total rather than double counting.
	c.Add(4, "dddddd")
	if c.Cost() > 10 {
		t.Fatalf("cost %d exceeds budget after replace", c.Cost())
	}
}

func TestGetOrLoadCachesSuccess(t *testing.T) {
	c := New[string, int](8, nil)
	calls := 0
	load := func(context.Context) (int, error) { calls++; return 42, nil }
	for i := 0; i < 3; i++ {
		v, _, err := c.GetOrLoad(context.Background(), "k", load)
		if err != nil || v != 42 {
			t.Fatalf("GetOrLoad = %d, %v", v, err)
		}
	}
	if calls != 1 {
		t.Fatalf("loader ran %d times, want 1", calls)
	}
}

func TestGetOrLoadDoesNotCacheErrors(t *testing.T) {
	c := New[string, int](8, nil)
	boom := errors.New("boom")
	calls := 0
	load := func(context.Context) (int, error) { calls++; return 0, boom }
	for i := 0; i < 2; i++ {
		if _, _, err := c.GetOrLoad(context.Background(), "k", load); !errors.Is(err, boom) {
			t.Fatalf("want boom, got %v", err)
		}
	}
	if calls != 2 {
		t.Fatalf("failed load must not be cached: %d calls, want 2", calls)
	}
}

// TestSingleflightStampede pins the coalescing guarantee: N concurrent
// readers of one cold key trigger exactly one loader execution and all
// observe its value.
func TestSingleflightStampede(t *testing.T) {
	c := New[string, int](8, nil)
	const n = 64
	var calls atomic.Int64
	release := make(chan struct{})
	load := func(context.Context) (int, error) {
		calls.Add(1)
		<-release // hold every reader in the same flight
		return 7, nil
	}
	var wg sync.WaitGroup
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, _, err := c.GetOrLoad(context.Background(), "hot", load)
			if err != nil {
				errs <- err
				return
			}
			if v != 7 {
				errs <- fmt.Errorf("got %d, want 7", v)
			}
		}()
	}
	// Let the goroutines pile into the flight, then release the one loader.
	time.Sleep(10 * time.Millisecond)
	close(release)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("loader ran %d times under stampede, want exactly 1", got)
	}
	if s := c.Stats(); s.Loads != 1 {
		t.Fatalf("Stats.Loads = %d, want 1", s.Loads)
	}
}

// TestWaiterCancellation: a waiter whose context ends returns promptly with
// ctx.Err while the load completes and is cached for later readers.
func TestWaiterCancellation(t *testing.T) {
	c := New[string, int](8, nil)
	release := make(chan struct{})
	load := func(context.Context) (int, error) {
		<-release
		return 9, nil
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, _, err := c.GetOrLoad(ctx, "k", load)
		done <- err
	}()
	time.Sleep(5 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("want context.Canceled, got %v", err)
		}
	case <-time.After(time.Second):
		t.Fatal("cancelled waiter did not return")
	}
	close(release)
	// The detached load still completes and caches its value.
	v, _, err := c.GetOrLoad(context.Background(), "k", func(context.Context) (int, error) {
		return 0, errors.New("must not reload")
	})
	if err != nil || v != 9 {
		t.Fatalf("after cancel: %d, %v (want cached 9)", v, err)
	}
}

func TestConcurrentMixedAccess(t *testing.T) {
	c := New[int, int](16, nil)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				k := (g + i) % 32
				switch i % 3 {
				case 0:
					c.Add(k, k)
				case 1:
					c.Get(k)
				default:
					c.GetOrLoad(context.Background(), k, func(context.Context) (int, error) { return k, nil })
				}
			}
		}(g)
	}
	wg.Wait()
	if c.Len() > 16 {
		t.Fatalf("%d entries exceed capacity", c.Len())
	}
}

func TestHitRate(t *testing.T) {
	c := New[int, int](4, nil)
	c.Add(1, 1)
	c.Get(1)
	c.Get(2)
	s := c.Stats()
	if s.Hits != 1 || s.Misses != 1 || s.HitRate() != 0.5 {
		t.Fatalf("stats %+v, want 1 hit / 1 miss / rate 0.5", s)
	}
	if (Stats{}).HitRate() != 0 {
		t.Fatal("empty stats hit rate must be 0")
	}
}
