package entropy

import "videoapp/internal/bitio"

// SyntaxClass identifies the syntax element being coded. The CABAC backend
// maintains a separate set of adaptive contexts per class, mirroring how
// H.264 models each macroblock field independently.
type SyntaxClass int

// Syntax element classes used by the codec.
const (
	ClassMBType SyntaxClass = iota
	ClassIntraMode
	ClassPartition
	ClassRefIdx
	ClassMVX
	ClassMVY
	ClassDQP
	ClassCBP
	ClassCoeffFlag
	ClassCoeffLevel
	ClassCoeffRun
	ClassEOB
	numClasses
)

// prefixContexts is the number of adaptive contexts per class: one per
// unary-prefix position, with the tail sharing the last context.
const prefixContexts = 4

// prefixCap is the unary prefix length beyond which values switch to a
// bypass-coded exp-Golomb suffix (UEG binarization, as in H.264 MVD coding).
const prefixCap = 12

// suffixCapBits bounds the exp-Golomb suffix length a decoder will accept;
// corrupted streams otherwise produce astronomically long suffixes.
const suffixCapBits = 24

// SymbolWriter is the encoder-side entropy backend interface.
type SymbolWriter interface {
	// PutUVal codes an unsigned value in the given class.
	PutUVal(c SyntaxClass, v uint32)
	// PutSVal codes a signed value in the given class.
	PutSVal(c SyntaxClass, v int32)
	// PutFlag codes a single boolean.
	PutFlag(c SyntaxClass, b bool)
	// BitPos reports the number of bits emitted to the underlying writer.
	BitPos() int64
	// Flush terminates the payload and byte-aligns the writer.
	Flush()
}

// SymbolReader is the decoder-side entropy backend interface. Readers never
// fail: on corruption or stream exhaustion they keep producing (garbage)
// values and raise the Desynced flag, so the codec can decode damaged
// streams end-to-end the way a concealing video decoder does.
type SymbolReader interface {
	GetUVal(c SyntaxClass) uint32
	GetSVal(c SyntaxClass) int32
	GetFlag(c SyntaxClass) bool
	// Desynced reports whether the reader has detected it is no longer
	// aligned with a valid stream (overrun or capped suffix).
	Desynced() bool
	// BitPos reports the number of bits consumed from the underlying
	// stream (for the arithmetic backend this includes its fixed 9-bit
	// prefetch and renormalization lookahead, so positions are attribution
	// estimates accurate to within a few bits).
	BitPos() int64
}

// --- CABAC backend ---

// CABACWriter codes symbols with the adaptive binary arithmetic coder.
type CABACWriter struct {
	w    *bitio.Writer
	enc  *Encoder
	ctxs [numClasses][prefixContexts]Context
}

// NewCABACWriter returns a writer with freshly initialized contexts.
// Contexts start at the equiprobable state, as at the top of each frame.
func NewCABACWriter(w *bitio.Writer) *CABACWriter {
	return &CABACWriter{w: w, enc: NewEncoder(w)}
}

// PutUVal implements SymbolWriter using UEG binarization: a context-coded
// truncated-unary prefix followed by a bypass exp-Golomb suffix.
func (cw *CABACWriter) PutUVal(c SyntaxClass, v uint32) {
	ctxs := &cw.ctxs[c]
	n := int(v)
	if n > prefixCap {
		n = prefixCap
	}
	for i := 0; i < n; i++ {
		cw.enc.EncodeBit(&ctxs[ctxIdx(i)], 1)
	}
	if n < prefixCap {
		cw.enc.EncodeBit(&ctxs[ctxIdx(n)], 0)
		return
	}
	cw.putBypassEG(v - prefixCap)
}

// PutSVal maps the signed value to unsigned order 0,1,-1,2,-2,... and codes
// the magnitude with contexts plus the sign in bypass.
func (cw *CABACWriter) PutSVal(c SyntaxClass, v int32) {
	mag := v
	if mag < 0 {
		mag = -mag
	}
	cw.PutUVal(c, uint32(mag))
	if mag != 0 {
		sign := 0
		if v < 0 {
			sign = 1
		}
		cw.enc.EncodeBypass(sign)
	}
}

// PutFlag codes one context-modeled bit.
func (cw *CABACWriter) PutFlag(c SyntaxClass, b bool) {
	bit := 0
	if b {
		bit = 1
	}
	cw.enc.EncodeBit(&cw.ctxs[c][0], bit)
}

// BitPos implements SymbolWriter.
func (cw *CABACWriter) BitPos() int64 { return cw.w.BitPos() }

// Flush implements SymbolWriter.
func (cw *CABACWriter) Flush() { cw.enc.Flush() }

func (cw *CABACWriter) putBypassEG(v uint32) {
	x := uint64(v) + 1
	n := 0
	for t := x; t > 1; t >>= 1 {
		n++
	}
	for i := 0; i < n; i++ {
		cw.enc.EncodeBypass(1)
	}
	cw.enc.EncodeBypass(0)
	for i := n - 1; i >= 0; i-- {
		cw.enc.EncodeBypass(int(x >> uint(i) & 1))
	}
}

// CABACReader decodes symbols coded by CABACWriter.
type CABACReader struct {
	dec      *Decoder
	ctxs     [numClasses][prefixContexts]Context
	desynced bool
}

// NewCABACReader returns a reader over r with freshly initialized contexts.
func NewCABACReader(r *bitio.Reader) *CABACReader {
	return &CABACReader{dec: NewDecoder(r)}
}

// GetUVal implements SymbolReader.
func (cr *CABACReader) GetUVal(c SyntaxClass) uint32 {
	ctxs := &cr.ctxs[c]
	n := 0
	for n < prefixCap && cr.dec.DecodeBit(&ctxs[ctxIdx(n)]) == 1 {
		n++
	}
	if n < prefixCap {
		cr.noteOverruns()
		return uint32(n)
	}
	v := cr.getBypassEG()
	cr.noteOverruns()
	return prefixCap + v
}

// GetSVal implements SymbolReader.
func (cr *CABACReader) GetSVal(c SyntaxClass) int32 {
	mag := cr.GetUVal(c)
	if mag == 0 {
		return 0
	}
	if cr.dec.DecodeBypass() == 1 {
		return -int32(mag)
	}
	return int32(mag)
}

// GetFlag implements SymbolReader.
func (cr *CABACReader) GetFlag(c SyntaxClass) bool {
	b := cr.dec.DecodeBit(&cr.ctxs[c][0]) == 1
	cr.noteOverruns()
	return b
}

// Desynced implements SymbolReader.
func (cr *CABACReader) Desynced() bool { return cr.desynced }

// BitPos implements SymbolReader.
func (cr *CABACReader) BitPos() int64 { return cr.dec.BitPos() }

func (cr *CABACReader) noteOverruns() {
	// A handful of overrun bits is normal (flush padding); sustained
	// reading past the end means the stream structure is broken.
	if cr.dec.Overruns() > 16 {
		cr.desynced = true
	}
}

func (cr *CABACReader) getBypassEG() uint32 {
	n := 0
	for cr.dec.DecodeBypass() == 1 {
		n++
		if n > suffixCapBits {
			cr.desynced = true
			return 0
		}
	}
	var rest uint64
	for i := 0; i < n; i++ {
		rest = rest<<1 | uint64(cr.dec.DecodeBypass())
	}
	return uint32(uint64(1)<<uint(n) + rest - 1)
}

func ctxIdx(i int) int {
	if i >= prefixContexts {
		return prefixContexts - 1
	}
	return i
}

// --- CAVLC backend ---

// CAVLCWriter codes symbols with static exp-Golomb codes (no adaptation, no
// arithmetic coding), the error-resilient alternative entropy coder.
type CAVLCWriter struct{ w *bitio.Writer }

// NewCAVLCWriter returns a CAVLC-style writer over w.
func NewCAVLCWriter(w *bitio.Writer) *CAVLCWriter { return &CAVLCWriter{w: w} }

// PutUVal implements SymbolWriter.
func (vw *CAVLCWriter) PutUVal(_ SyntaxClass, v uint32) { vw.w.WriteUE(v) }

// PutSVal implements SymbolWriter.
func (vw *CAVLCWriter) PutSVal(_ SyntaxClass, v int32) { vw.w.WriteSE(v) }

// PutFlag implements SymbolWriter.
func (vw *CAVLCWriter) PutFlag(_ SyntaxClass, b bool) { vw.w.WriteBool(b) }

// BitPos implements SymbolWriter.
func (vw *CAVLCWriter) BitPos() int64 { return vw.w.BitPos() }

// Flush implements SymbolWriter.
func (vw *CAVLCWriter) Flush() { vw.w.AlignByte() }

// CAVLCReader decodes symbols coded by CAVLCWriter.
type CAVLCReader struct {
	r        *bitio.Reader
	desynced bool
}

// NewCAVLCReader returns a CAVLC-style reader over r.
func NewCAVLCReader(r *bitio.Reader) *CAVLCReader { return &CAVLCReader{r: r} }

// GetUVal implements SymbolReader.
func (vr *CAVLCReader) GetUVal(_ SyntaxClass) uint32 {
	v, err := vr.r.ReadUE()
	if err != nil {
		vr.desynced = true
		return 0
	}
	return v
}

// GetSVal implements SymbolReader.
func (vr *CAVLCReader) GetSVal(_ SyntaxClass) int32 {
	v, err := vr.r.ReadSE()
	if err != nil {
		vr.desynced = true
		return 0
	}
	return v
}

// GetFlag implements SymbolReader.
func (vr *CAVLCReader) GetFlag(_ SyntaxClass) bool {
	b, err := vr.r.ReadBool()
	if err != nil {
		vr.desynced = true
		return false
	}
	return b
}

// Desynced implements SymbolReader.
func (vr *CAVLCReader) Desynced() bool { return vr.desynced }

// BitPos implements SymbolReader.
func (vr *CAVLCReader) BitPos() int64 { return vr.r.BitPos() }
