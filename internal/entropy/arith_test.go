package entropy

import (
	"math/rand"
	"testing"

	"videoapp/internal/bitio"
)

func TestArithRoundTripSingleContext(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	bits := make([]int, 5000)
	for i := range bits {
		// Biased source: mostly zeros, which the context should learn.
		if rng.Float64() < 0.85 {
			bits[i] = 0
		} else {
			bits[i] = 1
		}
	}
	w := bitio.NewWriter()
	enc := NewEncoder(w)
	var ectx Context
	for _, b := range bits {
		enc.EncodeBit(&ectx, b)
	}
	enc.Flush()

	dec := NewDecoder(bitio.NewReader(w.Bytes()))
	var dctx Context
	for i, want := range bits {
		if got := dec.DecodeBit(&dctx); got != want {
			t.Fatalf("bit %d: got %d, want %d", i, got, want)
		}
	}
}

func TestArithCompressesBiasedSource(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	const n = 20000
	w := bitio.NewWriter()
	enc := NewEncoder(w)
	var ctx Context
	for i := 0; i < n; i++ {
		b := 0
		if rng.Float64() < 0.05 {
			b = 1
		}
		enc.EncodeBit(&ctx, b)
	}
	enc.Flush()
	// Entropy of p=0.05 is ~0.286 bits/symbol; the adaptive coder should
	// get well below 0.5 bits/symbol.
	if got := w.BitPos(); got > n/2 {
		t.Fatalf("coded %d bits for %d symbols; no compression achieved", got, n)
	}
}

func TestArithBypassRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	bits := make([]int, 3000)
	w := bitio.NewWriter()
	enc := NewEncoder(w)
	for i := range bits {
		bits[i] = rng.Intn(2)
		enc.EncodeBypass(bits[i])
	}
	enc.Flush()
	dec := NewDecoder(bitio.NewReader(w.Bytes()))
	for i, want := range bits {
		if got := dec.DecodeBypass(); got != want {
			t.Fatalf("bypass bit %d: got %d, want %d", i, got, want)
		}
	}
}

func TestArithMixedContextAndBypass(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	type sym struct {
		bit    int
		bypass bool
		ctx    int
	}
	syms := make([]sym, 8000)
	for i := range syms {
		syms[i] = sym{bit: rng.Intn(2), bypass: rng.Intn(3) == 0, ctx: rng.Intn(5)}
		if !syms[i].bypass && rng.Float64() < 0.7 {
			syms[i].bit = 0
		}
	}
	w := bitio.NewWriter()
	enc := NewEncoder(w)
	ectx := make([]Context, 5)
	for _, s := range syms {
		if s.bypass {
			enc.EncodeBypass(s.bit)
		} else {
			enc.EncodeBit(&ectx[s.ctx], s.bit)
		}
	}
	enc.Flush()
	dec := NewDecoder(bitio.NewReader(w.Bytes()))
	dctx := make([]Context, 5)
	for i, s := range syms {
		var got int
		if s.bypass {
			got = dec.DecodeBypass()
		} else {
			got = dec.DecodeBit(&dctx[s.ctx])
		}
		if got != s.bit {
			t.Fatalf("symbol %d: got %d, want %d", i, got, s.bit)
		}
	}
	if dec.Overruns() > 16 {
		t.Fatalf("%d overruns on a clean stream", dec.Overruns())
	}
}

func TestBitFlipDesynchronizesDecoder(t *testing.T) {
	// The motivating failure mode: one flipped bit early in the stream
	// should corrupt a large fraction of subsequently decoded symbols.
	rng := rand.New(rand.NewSource(5))
	bits := make([]int, 4000)
	for i := range bits {
		if rng.Float64() < 0.8 {
			bits[i] = 0
		} else {
			bits[i] = 1
		}
	}
	w := bitio.NewWriter()
	enc := NewEncoder(w)
	var ectx Context
	for _, b := range bits {
		enc.EncodeBit(&ectx, b)
	}
	enc.Flush()
	buf := append([]byte(nil), w.Bytes()...)
	bitio.FlipBit(buf, 20)

	dec := NewDecoder(bitio.NewReader(buf))
	var dctx Context
	wrong := 0
	for _, want := range bits {
		if dec.DecodeBit(&dctx) != want {
			wrong++
		}
	}
	if wrong < len(bits)/20 {
		t.Fatalf("only %d/%d symbols wrong after an early bit flip; decoder did not desync", wrong, len(bits))
	}
}

func TestDecoderToleratesTruncation(t *testing.T) {
	w := bitio.NewWriter()
	enc := NewEncoder(w)
	var ctx Context
	for i := 0; i < 1000; i++ {
		enc.EncodeBit(&ctx, i%3%2)
	}
	enc.Flush()
	buf := w.Bytes()[:4] // drastic truncation
	dec := NewDecoder(bitio.NewReader(buf))
	var dctx Context
	for i := 0; i < 1000; i++ {
		dec.DecodeBit(&dctx) // must not panic
	}
	if dec.Overruns() == 0 {
		t.Fatal("truncation must be observable via Overruns")
	}
}

func TestStateTablesSane(t *testing.T) {
	for s := 0; s < numStates; s++ {
		for q := 0; q < 4; q++ {
			if rangeLPS[s][q] < 2 || rangeLPS[s][q] > 256 {
				t.Fatalf("rangeLPS[%d][%d] = %d out of range", s, q, rangeLPS[s][q])
			}
			if q > 0 && rangeLPS[s][q] < rangeLPS[s][q-1] {
				t.Fatalf("rangeLPS[%d] not monotone in q", s)
			}
		}
		if s > 0 && rangeLPS[s][0] > rangeLPS[s-1][0] {
			t.Fatalf("rangeLPS[.][0] not monotone in state")
		}
		if int(nextMPS[s]) < s && s != numStates-1 {
			t.Fatalf("MPS transition must not decrease confidence: state %d -> %d", s, nextMPS[s])
		}
		if int(nextLPS[s]) > s {
			t.Fatalf("LPS transition must not increase confidence: state %d -> %d", s, nextLPS[s])
		}
	}
}

func BenchmarkEncodeBit(b *testing.B) {
	b.ReportAllocs()
	w := bitio.NewWriter()
	enc := NewEncoder(w)
	var ctx Context
	for i := 0; i < b.N; i++ {
		if i%100000 == 0 {
			w.Reset()
			enc = NewEncoder(w)
		}
		enc.EncodeBit(&ctx, i&1)
	}
}

func BenchmarkDecodeBit(b *testing.B) {
	b.ReportAllocs()
	w := bitio.NewWriter()
	enc := NewEncoder(w)
	var ctx Context
	rng := rand.New(rand.NewSource(7))
	const n = 100000
	for i := 0; i < n; i++ {
		bit := 0
		if rng.Float64() < 0.3 {
			bit = 1
		}
		enc.EncodeBit(&ctx, bit)
	}
	enc.Flush()
	buf := w.Bytes()
	b.ResetTimer()
	var dec *Decoder
	var dctx Context
	for i := 0; i < b.N; i++ {
		if i%n == 0 {
			dec = NewDecoder(bitio.NewReader(buf))
			dctx = Context{}
		}
		dec.DecodeBit(&dctx)
	}
}
