package entropy

import (
	"math/rand"
	"testing"

	"videoapp/internal/bitio"
)

// arithBenchBits builds a biased bit source resembling residual syntax:
// mostly-zero significance bits that the adaptive contexts learn quickly,
// which keeps the coder in its renormalization-heavy regime.
func arithBenchBits(n int) []int {
	rng := rand.New(rand.NewSource(3))
	bits := make([]int, n)
	for i := range bits {
		if rng.Float64() < 0.12 {
			bits[i] = 1
		}
	}
	return bits
}

// BenchmarkArith measures the arithmetic coder's encode and decode loops,
// renormalization included, over 16 adaptive contexts.
func BenchmarkArith(b *testing.B) {
	const n = 1 << 15
	bits := arithBenchBits(n)

	b.Run("encode", func(b *testing.B) {
		b.ReportAllocs()
		w := bitio.NewWriter()
		for i := 0; i < b.N; i++ {
			w.Reset()
			enc := NewEncoder(w)
			var ctxs [16]Context
			for j, bit := range bits {
				enc.EncodeBit(&ctxs[j&15], bit)
			}
			enc.Flush()
		}
		b.SetBytes(n / 8)
	})

	b.Run("decode", func(b *testing.B) {
		w := bitio.NewWriter()
		enc := NewEncoder(w)
		var ctxs [16]Context
		for j, bit := range bits {
			enc.EncodeBit(&ctxs[j&15], bit)
		}
		enc.Flush()
		payload := w.Bytes()
		b.ResetTimer()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			dec := NewDecoder(bitio.NewReader(payload))
			var dctxs [16]Context
			for j := 0; j < n; j++ {
				if dec.DecodeBit(&dctxs[j&15]) != bits[j] {
					b.Fatalf("decode mismatch at bit %d", j)
				}
			}
		}
		b.SetBytes(n / 8)
	})

	b.Run("bypass", func(b *testing.B) {
		b.ReportAllocs()
		w := bitio.NewWriter()
		for i := 0; i < b.N; i++ {
			w.Reset()
			enc := NewEncoder(w)
			for j := 0; j < n; j++ {
				enc.EncodeBypass(j & 1)
			}
			enc.Flush()
		}
		b.SetBytes(n / 8)
	})
}
