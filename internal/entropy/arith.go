// Package entropy implements the two entropy-coding backends of the codec:
// a CABAC-class context-adaptive binary arithmetic coder and a CAVLC-class
// variable-length coder.
//
// The arithmetic coder follows the H.264 CABAC architecture: a 64-state
// probability estimation FSM per context, a 9-bit range coder with
// outstanding-bit carry resolution, and bypass coding for near-equiprobable
// bits. The state tables are generated from the published CABAC design
// formula (exponential probability ladder with alpha = (0.01875/0.5)^(1/63)),
// so encoder and decoder share one bit-exact definition. Bit-level
// compatibility with H.264 itself is not required by the experiments — what
// matters is the failure mode: a single flipped bit desynchronizes the
// decoder's range state and corrupts the adaptive contexts for the remainder
// of the frame, exactly the behaviour the paper analyses.
package entropy

import (
	"math"
	"math/bits"

	"videoapp/internal/bitio"
)

const numStates = 64

// Probability FSM tables, generated in init from the CABAC design formula.
var (
	// rangeLPS[state][q] is the sub-range width assigned to the LPS when the
	// current 9-bit range falls in quantization cell q.
	rangeLPS [numStates][4]uint32
	// nextMPS[state] and nextLPS[state] are the state transitions after
	// coding an MPS or LPS respectively.
	nextMPS [numStates]uint8
	nextLPS [numStates]uint8
)

func init() {
	alpha := math.Pow(0.01875/0.5, 1.0/63.0)
	p := make([]float64, numStates)
	for s := 0; s < numStates; s++ {
		p[s] = 0.5 * math.Pow(alpha, float64(s))
	}
	for s := 0; s < numStates; s++ {
		for q := 0; q < 4; q++ {
			// Representative range value for cell q: 256+64q+32.
			r := float64(64*q + 288)
			v := uint32(math.Round(p[s] * r))
			if v < 2 {
				v = 2
			}
			rangeLPS[s][q] = v
		}
		if s < numStates-1 {
			nextMPS[s] = uint8(s + 1)
		} else {
			nextMPS[s] = uint8(s)
		}
		// After an LPS the probability moves back toward 0.5:
		// pNew = alpha*p + (1-alpha); find the closest state.
		pNew := alpha*p[s] + (1 - alpha)
		if pNew > 0.5 {
			pNew = 0.5
		}
		best, bestD := 0, math.Inf(1)
		for c := 0; c < numStates; c++ {
			if d := math.Abs(p[c] - pNew); d < bestD {
				best, bestD = c, d
			}
		}
		nextLPS[s] = uint8(best)
	}
}

// Context is one adaptive binary probability model: the FSM state and the
// current most-probable symbol.
type Context struct {
	State uint8
	MPS   uint8
}

// Encoder is the binary arithmetic encoder.
type Encoder struct {
	w           *bitio.Writer
	low         uint32
	rng         uint32
	outstanding int
	first       bool
}

// NewEncoder returns an encoder writing to w. The caller should byte-align w
// before starting a new arithmetic-coded payload.
func NewEncoder(w *bitio.Writer) *Encoder {
	return &Encoder{w: w, rng: 510, first: true}
}

func (e *Encoder) putBit(b int) {
	if e.first {
		// The very first renormalization output of a range coder carries no
		// information (it is always resolvable); H.264 drops it too.
		e.first = false
	} else {
		e.w.WriteBit(b)
	}
	if e.outstanding == 0 {
		return
	}
	// A carry resolution releases the whole outstanding run at once as the
	// emitted bit's inverse; write it in word-wide chunks.
	var pat uint64
	if b == 0 {
		pat = ^uint64(0)
	}
	for e.outstanding > 0 {
		k := e.outstanding
		if k > 64 {
			k = 64
		}
		e.w.WriteBits(pat, uint(k))
		e.outstanding -= k
	}
}

func (e *Encoder) renorm() {
	if e.rng >= 256 {
		return
	}
	// The shift count is known up front: double rng until it re-enters
	// [256, 511]. rng is hoisted out of the loop; low still walks bit by bit
	// because each emitted bit depends on the running value after the
	// previous subtraction.
	k := 9 - bits.Len32(e.rng)
	e.rng <<= uint(k)
	for ; k > 0; k-- {
		switch {
		case e.low < 256:
			e.putBit(0)
		case e.low >= 512:
			e.low -= 512
			e.putBit(1)
		default:
			e.low -= 256
			e.outstanding++
		}
		e.low <<= 1
	}
}

// EncodeBit codes one bit with the adaptive context ctx.
func (e *Encoder) EncodeBit(ctx *Context, bit int) {
	q := (e.rng >> 6) & 3
	rl := rangeLPS[ctx.State][q]
	e.rng -= rl
	if uint8(bit) == ctx.MPS {
		ctx.State = nextMPS[ctx.State]
	} else {
		e.low += e.rng
		e.rng = rl
		if ctx.State == 0 {
			ctx.MPS ^= 1
		}
		ctx.State = nextLPS[ctx.State]
	}
	e.renorm()
}

// EncodeBypass codes one equiprobable bit without touching any context.
func (e *Encoder) EncodeBypass(bit int) {
	e.low <<= 1
	if bit == 1 {
		e.low += e.rng
	}
	switch {
	case e.low >= 1024:
		e.low -= 1024
		e.putBit(1)
	case e.low < 512:
		e.putBit(0)
	default:
		e.low -= 512
		e.outstanding++
	}
}

// Flush terminates the arithmetic codeword so the decoder can reconstruct
// every coded bit, and byte-aligns the underlying writer. It follows the
// H.264 EncodeFlush procedure: shrink the range to 2, renormalize to push
// out the remaining significant bits of low, then emit the final two bits.
func (e *Encoder) Flush() {
	e.rng = 2
	e.renorm()
	e.putBit(int(e.low >> 9 & 1))
	e.w.WriteBits(uint64(e.low>>7&3|1), 2)
	// Trailing padding guarantees the decoder's 9-bit prefetch never starves
	// inside the meaningful part of the stream.
	e.w.WriteBits(0, 9)
	e.w.AlignByte()
}

// Decoder is the binary arithmetic decoder. It is deliberately forgiving:
// reads past the end of the buffer produce zero bits (and are counted) so
// that corrupted streams decode to garbage rather than aborting, mirroring
// a real error-concealing video decoder.
type Decoder struct {
	r        *bitio.Reader
	rng      uint32
	offset   uint32
	overruns int
}

// NewDecoder initializes a decoder from r, consuming the 9-bit prefetch.
func NewDecoder(r *bitio.Reader) *Decoder {
	d := &Decoder{r: r, rng: 510}
	d.offset = uint32(d.nextBits(9))
	return d
}

func (d *Decoder) nextBit() int {
	b, err := d.r.ReadBit()
	if err != nil {
		d.overruns++
		return 0
	}
	return b
}

// nextBits reads k bits at once with the decoder's forgiving end-of-stream
// semantics: bits past the end read as zero, each counted as one overrun —
// exactly what k successive nextBit calls would produce.
func (d *Decoder) nextBits(k uint) uint64 {
	if rem := d.r.Remaining(); int64(k) > rem {
		got := uint(rem)
		v, _ := d.r.ReadBits(got)
		d.overruns += int(k - got)
		return v << (k - got)
	}
	v, _ := d.r.ReadBits(k)
	return v
}

// Overruns reports how many bits were read past the end of the stream — a
// desync indicator for the error-resilient codec layer.
func (d *Decoder) Overruns() int { return d.overruns }

// BitPos reports the bits consumed from the underlying reader, including the
// 9-bit initialization prefetch.
func (d *Decoder) BitPos() int64 { return d.r.BitPos() }

// DecodeBit decodes one bit with the adaptive context ctx.
func (d *Decoder) DecodeBit(ctx *Context) int {
	q := (d.rng >> 6) & 3
	rl := rangeLPS[ctx.State][q]
	d.rng -= rl
	var bit int
	if d.offset >= d.rng {
		bit = int(ctx.MPS ^ 1)
		d.offset -= d.rng
		d.rng = rl
		if ctx.State == 0 {
			ctx.MPS ^= 1
		}
		ctx.State = nextLPS[ctx.State]
	} else {
		bit = int(ctx.MPS)
		ctx.State = nextMPS[ctx.State]
	}
	if d.rng < 256 {
		// Batched renormalization: the refill width is known up front, so the
		// range shifts once and the missing offset bits arrive in one read.
		// The one-bit case — every MPS renormalization — skips the batching
		// machinery entirely.
		if k := uint(9 - bits.Len32(d.rng)); k == 1 {
			d.rng <<= 1
			d.offset = d.offset<<1 | uint32(d.nextBit())
		} else {
			d.rng <<= k
			d.offset = d.offset<<k | uint32(d.nextBits(k))
		}
	}
	return bit
}

// DecodeBypass decodes one bypass-coded bit.
func (d *Decoder) DecodeBypass() int {
	d.offset = d.offset<<1 | uint32(d.nextBit())
	if d.offset >= d.rng {
		d.offset -= d.rng
		return 1
	}
	return 0
}
