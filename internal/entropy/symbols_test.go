package entropy

import (
	"math/rand"
	"testing"
	"testing/quick"

	"videoapp/internal/bitio"
)

// backends builds a fresh writer plus a reader constructor for each backend.
func backends() map[string]struct {
	newW func(*bitio.Writer) SymbolWriter
	newR func(*bitio.Reader) SymbolReader
} {
	return map[string]struct {
		newW func(*bitio.Writer) SymbolWriter
		newR func(*bitio.Reader) SymbolReader
	}{
		"cabac": {
			newW: func(w *bitio.Writer) SymbolWriter { return NewCABACWriter(w) },
			newR: func(r *bitio.Reader) SymbolReader { return NewCABACReader(r) },
		},
		"cavlc": {
			newW: func(w *bitio.Writer) SymbolWriter { return NewCAVLCWriter(w) },
			newR: func(r *bitio.Reader) SymbolReader { return NewCAVLCReader(r) },
		},
	}
}

type symEvent struct {
	kind  int // 0=uval, 1=sval, 2=flag
	class SyntaxClass
	uval  uint32
	sval  int32
	flag  bool
}

func randomEvents(rng *rand.Rand, n int) []symEvent {
	evs := make([]symEvent, n)
	for i := range evs {
		ev := symEvent{kind: rng.Intn(3), class: SyntaxClass(rng.Intn(int(numClasses)))}
		switch ev.kind {
		case 0:
			// Mix of small (common) and large (rare) values.
			if rng.Intn(10) == 0 {
				ev.uval = uint32(rng.Intn(100000))
			} else {
				ev.uval = uint32(rng.Intn(8))
			}
		case 1:
			ev.sval = int32(rng.Intn(2001) - 1000)
		case 2:
			ev.flag = rng.Intn(2) == 0
		}
		evs[i] = ev
	}
	return evs
}

func TestSymbolRoundTripBothBackends(t *testing.T) {
	for name, be := range backends() {
		t.Run(name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(11))
			evs := randomEvents(rng, 5000)
			w := bitio.NewWriter()
			sw := be.newW(w)
			for _, ev := range evs {
				switch ev.kind {
				case 0:
					sw.PutUVal(ev.class, ev.uval)
				case 1:
					sw.PutSVal(ev.class, ev.sval)
				case 2:
					sw.PutFlag(ev.class, ev.flag)
				}
			}
			sw.Flush()
			sr := be.newR(bitio.NewReader(w.Bytes()))
			for i, ev := range evs {
				switch ev.kind {
				case 0:
					if got := sr.GetUVal(ev.class); got != ev.uval {
						t.Fatalf("event %d: uval %d, want %d", i, got, ev.uval)
					}
				case 1:
					if got := sr.GetSVal(ev.class); got != ev.sval {
						t.Fatalf("event %d: sval %d, want %d", i, got, ev.sval)
					}
				case 2:
					if got := sr.GetFlag(ev.class); got != ev.flag {
						t.Fatalf("event %d: flag %v, want %v", i, got, ev.flag)
					}
				}
			}
			if sr.Desynced() {
				t.Fatal("clean stream must not be flagged desynced")
			}
		})
	}
}

func TestSymbolRoundTripProperty(t *testing.T) {
	for name, be := range backends() {
		t.Run(name, func(t *testing.T) {
			prop := func(seed int64, n uint8) bool {
				rng := rand.New(rand.NewSource(seed))
				evs := randomEvents(rng, int(n)%64+1)
				w := bitio.NewWriter()
				sw := be.newW(w)
				for _, ev := range evs {
					switch ev.kind {
					case 0:
						sw.PutUVal(ev.class, ev.uval)
					case 1:
						sw.PutSVal(ev.class, ev.sval)
					case 2:
						sw.PutFlag(ev.class, ev.flag)
					}
				}
				sw.Flush()
				sr := be.newR(bitio.NewReader(w.Bytes()))
				for _, ev := range evs {
					switch ev.kind {
					case 0:
						if sr.GetUVal(ev.class) != ev.uval {
							return false
						}
					case 1:
						if sr.GetSVal(ev.class) != ev.sval {
							return false
						}
					case 2:
						if sr.GetFlag(ev.class) != ev.flag {
							return false
						}
					}
				}
				return true
			}
			if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestCABACBeatsOrMatchesCAVLCOnSkewedData(t *testing.T) {
	// CABAC's raison d'être (and why the paper accepts its fragility):
	// better compression on predictable data.
	rng := rand.New(rand.NewSource(13))
	vals := make([]uint32, 20000)
	for i := range vals {
		vals[i] = uint32(rng.Intn(3)) // heavily skewed small values
	}
	wa, wv := bitio.NewWriter(), bitio.NewWriter()
	ca, cv := NewCABACWriter(wa), NewCAVLCWriter(wv)
	for _, v := range vals {
		ca.PutUVal(ClassCoeffLevel, v)
		cv.PutUVal(ClassCoeffLevel, v)
	}
	ca.Flush()
	cv.Flush()
	if wa.BitPos() >= wv.BitPos() {
		t.Fatalf("CABAC %d bits >= CAVLC %d bits on skewed data", wa.BitPos(), wv.BitPos())
	}
}

func TestCABACDesyncAfterFlip(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	w := bitio.NewWriter()
	sw := NewCABACWriter(w)
	vals := make([]uint32, 2000)
	for i := range vals {
		vals[i] = uint32(rng.Intn(5))
		sw.PutUVal(ClassMVX, vals[i])
	}
	sw.Flush()
	buf := append([]byte(nil), w.Bytes()...)
	bitio.FlipBit(buf, 30)
	sr := NewCABACReader(bitio.NewReader(buf))
	wrong := 0
	for _, want := range vals {
		if sr.GetUVal(ClassMVX) != want {
			wrong++
		}
	}
	if wrong < 50 {
		t.Fatalf("only %d wrong symbols after early flip", wrong)
	}
}

func TestCAVLCDesyncFlagOnTruncation(t *testing.T) {
	w := bitio.NewWriter()
	sw := NewCAVLCWriter(w)
	for i := 0; i < 100; i++ {
		sw.PutUVal(ClassMVX, 500)
	}
	sw.Flush()
	buf := w.Bytes()[:3]
	sr := NewCAVLCReader(bitio.NewReader(buf))
	for i := 0; i < 100; i++ {
		sr.GetUVal(ClassMVX)
	}
	if !sr.Desynced() {
		t.Fatal("truncated CAVLC stream must flag desync")
	}
}

func TestCABACReaderCapsCorruptSuffix(t *testing.T) {
	// All-ones garbage drives the UEG suffix decoder into its cap; it must
	// flag desync rather than hang or overflow.
	buf := make([]byte, 64)
	for i := range buf {
		buf[i] = 0xFF
	}
	sr := NewCABACReader(bitio.NewReader(buf))
	for i := 0; i < 50; i++ {
		sr.GetUVal(ClassCoeffLevel)
	}
	_ = sr.Desynced() // must simply terminate; flag value depends on garbage
}

func TestBitPosMonotone(t *testing.T) {
	for name, be := range backends() {
		t.Run(name, func(t *testing.T) {
			w := bitio.NewWriter()
			sw := be.newW(w)
			last := sw.BitPos()
			for i := 0; i < 200; i++ {
				sw.PutUVal(ClassCBP, uint32(i%7))
				if sw.BitPos() < last {
					t.Fatal("BitPos must be monotone")
				}
				last = sw.BitPos()
			}
		})
	}
}
