package store

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"videoapp/internal/bch"
	"videoapp/internal/codec"
	"videoapp/internal/core"
	"videoapp/internal/mlc"
)

// TestBlockAccurateMatchesAnalyticRates cross-validates the two error
// models: over many runs, the block-accurate simulator's flip counts on an
// unprotected segment must track the raw substrate rate, and on protected
// segments the analytic uncorrectable-block probability.
func TestBlockAccurateMatchesAnalyticRates(t *testing.T) {
	v, _, _, _ := buildVideo(t)
	// Force everything into one class so one scheme covers all payload.
	uniformNone := core.ClassAssignment{
		Bounds: []core.ClassBound{{MaxClass: 1 << 30, Scheme: bch.SchemeNone}},
		Header: bch.SchemeBCH16,
	}
	an := core.Analyze(v, core.DefaultOptions())
	parts := an.Partition(uniformNone)
	sys, err := New(Config{Substrate: mlc.Default(), Assignment: uniformNone, BlockAccurate: true})
	if err != nil {
		t.Fatal(err)
	}
	totalBits := float64(v.TotalPayloadBits())
	const runs = 40
	var flips float64
	for run := 0; run < runs; run++ {
		_, n, err := sys.StoreContext(context.Background(), v, parts, StoreOpts{Rng: rand.New(rand.NewSource(int64(run)))})
		if err != nil {
			t.Fatal(err)
		}
		flips += float64(n)
	}
	got := flips / runs / totalBits
	want := 1e-3
	if got < want/2 || got > want*2 {
		t.Fatalf("unprotected block-accurate flip rate %.2e, want ~%.0e", got, want)
	}
}

func TestBlockAccurateProtectedNearlySilent(t *testing.T) {
	// With BCH-6 on everything at RBER 1e-3, block failures are ~2e-6 per
	// block: tens of runs over a small video should see at most a couple.
	v, _, _, _ := buildVideo(t)
	allBCH6 := core.ClassAssignment{
		Bounds: []core.ClassBound{{MaxClass: 1 << 30, Scheme: bch.SchemeBCH6}},
		Header: bch.SchemeBCH16,
	}
	an := core.Analyze(v, core.DefaultOptions())
	parts := an.Partition(allBCH6)
	sys, err := New(Config{Substrate: mlc.Default(), Assignment: allBCH6, BlockAccurate: true})
	if err != nil {
		t.Fatal(err)
	}
	totalFlips := 0
	for run := 0; run < 30; run++ {
		_, n, err := sys.StoreContext(context.Background(), v, parts, StoreOpts{Rng: rand.New(rand.NewSource(int64(1000 + run)))})
		if err != nil {
			t.Fatal(err)
		}
		totalFlips += n
	}
	// Expected failed blocks: blocks × runs × P(fail) << 1.
	blocks := float64(v.TotalPayloadBits()) / 512
	expect := blocks * 30 * bch.UncorrectableBlockProb(6, 1e-3)
	if float64(totalFlips) > math.Max(expect*50, 20) {
		t.Fatalf("protected store flipped %d bits; expected ~%.3f failures", totalFlips, expect)
	}
}

func TestBlockAccurateStillDecodes(t *testing.T) {
	v, _, parts, _ := buildVideo(t)
	sys, err := New(Config{Substrate: mlc.Default(), Assignment: core.PaperAssignment(), BlockAccurate: true})
	if err != nil {
		t.Fatal(err)
	}
	stored, _, err := sys.StoreContext(context.Background(), v, parts, StoreOpts{Rng: rand.New(rand.NewSource(2))})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := codec.Decode(stored); err != nil {
		t.Fatal(err)
	}
}
