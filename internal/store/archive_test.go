package store

import (
	"math/rand"
	"testing"

	"videoapp/internal/bitio"
	"videoapp/internal/codec"
	"videoapp/internal/quality"
)

func TestArchiveRoundTrip(t *testing.T) {
	v, _, parts, _ := buildVideo(t)
	ar, err := BuildArchive(v, parts)
	if err != nil {
		t.Fatal(err)
	}
	restored, gotParts, err := ar.Restore()
	if err != nil {
		t.Fatal(err)
	}
	if len(gotParts) != len(parts) {
		t.Fatal("partition count")
	}
	for f := range v.Frames {
		a, b := v.Frames[f].Payload, restored.Frames[f].Payload
		if len(a) != len(b) {
			t.Fatalf("frame %d payload length", f)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("frame %d byte %d differs", f, i)
			}
		}
	}
	ca, err := codec.Decode(v)
	if err != nil {
		t.Fatal(err)
	}
	cb, err := codec.Decode(restored)
	if err != nil {
		t.Fatal(err)
	}
	psnr, _ := quality.PSNR(ca, cb)
	if psnr != quality.MaxPSNR {
		t.Fatalf("archive round trip must be lossless, PSNR %.2f", psnr)
	}
}

func TestArchiveRegionSizes(t *testing.T) {
	v, _, parts, _ := buildVideo(t)
	ar, err := BuildArchive(v, parts)
	if err != nil {
		t.Fatal(err)
	}
	if ar.PreciseBytes() <= 0 || ar.ApproxBytes() <= 0 {
		t.Fatalf("degenerate regions: precise %d approx %d", ar.PreciseBytes(), ar.ApproxBytes())
	}
	// The precise region must be a small fraction of the approximate one
	// (the paper: headers < 0.1% of storage; ours are relatively bigger on
	// tiny videos but still clearly minor).
	if ar.PreciseBytes() > ar.ApproxBytes()/2 {
		t.Fatalf("precise region %d vs approximate %d implausibly large", ar.PreciseBytes(), ar.ApproxBytes())
	}
}

func TestArchiveStreamCorruptionStaysLocal(t *testing.T) {
	v, _, parts, _ := buildVideo(t)
	ar, err := BuildArchive(v, parts)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a handful of bits in every approximate stream.
	rng := rand.New(rand.NewSource(5))
	flips := 0
	for name := range ar.Streams {
		s := append([]byte(nil), ar.Streams[name]...)
		for k := 0; k < 3 && len(s) > 0; k++ {
			bitio.FlipBit(s, rng.Int63n(int64(len(s))*8))
			flips++
		}
		ar.Streams[name] = s
	}
	restored, _, err := ar.Restore()
	if err != nil {
		t.Fatal(err)
	}
	// Payload damage equals exactly the flipped bits.
	diff := 0
	for f := range v.Frames {
		a, b := v.Frames[f].Payload, restored.Frames[f].Payload
		for i := range a {
			for x := a[i] ^ b[i]; x != 0; x &= x - 1 {
				diff++
			}
		}
	}
	if diff != flips {
		t.Fatalf("%d stream flips produced %d payload bit changes", flips, diff)
	}
	// And the damaged video still decodes.
	if _, err := codec.Decode(restored); err != nil {
		t.Fatal(err)
	}
}

func TestArchiveDetectsMismatchedTables(t *testing.T) {
	v, _, parts, _ := buildVideo(t)
	ar, err := BuildArchive(v, parts)
	if err != nil {
		t.Fatal(err)
	}
	ar.PivotTables = ar.PivotTables[:1]
	if _, _, err := ar.Restore(); err == nil {
		t.Fatal("corrupt pivot tables must be detected")
	}
}
