// Package store implements the end-to-end approximate video storage system:
// a partitioned video is laid out on the MLC substrate with per-segment BCH
// protection chosen by the VideoApp analysis, frame headers (including the
// pivot tables) are stored precisely, and reads inject the residual
// post-correction errors that the decoder then has to live with.
//
// Three designs from Figure 11 are expressible through the assignment:
// uniform correction (everything BCH-16), variable correction (Table 1) and
// ideal correction (error-free, overhead-free).
//
// StoreContext is the single round-trip entry point. For chunked streaming,
// FrameCosts/StatsFromCosts expose the footprint accounting at per-frame
// granularity so per-chunk accumulation reduces to exactly the batch totals,
// and StoreOpts.FrameOffset rebases the per-frame error streams so a chunk
// stored on its own draws the same bits it would inside the whole video.
package store

import (
	"context"
	"fmt"
	"math/rand"
	"sync"

	"videoapp/internal/bch"
	"videoapp/internal/codec"
	"videoapp/internal/core"
	"videoapp/internal/mlc"
	"videoapp/internal/obs"
	"videoapp/internal/par"
	"videoapp/internal/sim"
)

// ErrPartitionMismatch reports a partition list whose length does not match
// the video's frame count. It is the same sentinel the core package uses, so
// errors.Is matches it across both layers. Wrapped errors carry the counts.
var ErrPartitionMismatch = core.ErrPartitionMismatch

// Config describes one storage system design.
type Config struct {
	// Substrate is the physical cell model.
	Substrate mlc.Substrate
	// Assignment maps importance classes to correction schemes.
	Assignment core.ClassAssignment
	// ScrubMonths overrides the scrubbing interval (0 = substrate default).
	ScrubMonths float64
	// BlockAccurate switches from the nominal per-scheme residual rates
	// (Table 1) to explicit per-512-bit-block binomial error simulation
	// with BCH correction capability accounting.
	BlockAccurate bool
}

// System is a configured approximate storage system.
type System struct {
	cfg  Config
	rber float64
	// resid memoizes residualRate per scheme for every scheme reachable
	// through the assignment. It is built once in New and read-only after,
	// so concurrent injections share it without locking.
	resid map[bch.Scheme]float64
}

// New validates the configuration and builds a System.
func New(cfg Config) (*System, error) {
	if err := cfg.Substrate.Validate(); err != nil {
		return nil, err
	}
	s := &System{cfg: cfg}
	s.rber = cfg.Substrate.EffectiveRBER(cfg.ScrubMonths)
	s.resid = map[bch.Scheme]float64{}
	for _, b := range cfg.Assignment.Bounds {
		s.resid[b.Scheme] = s.computeResidualRate(b.Scheme)
	}
	s.resid[cfg.Assignment.Header] = s.computeResidualRate(cfg.Assignment.Header)
	return s, nil
}

// Config returns the system configuration.
func (s *System) Config() Config { return s.cfg }

// RBER returns the raw bit error rate the system operates at.
func (s *System) RBER() float64 { return s.rber }

// residualRate returns the post-correction bit error rate for a scheme,
// memoized at New time for every scheme in the assignment. Schemes outside
// the assignment (possible with hand-built partitions) fall back to the
// direct computation.
func (s *System) residualRate(sc bch.Scheme) float64 {
	if r, ok := s.resid[sc]; ok {
		return r
	}
	return s.computeResidualRate(sc)
}

// computeResidualRate is the uncached residual-rate model: nominal Table 1
// rates at the substrate's reference scrub interval, the §6.4 recomputed
// BCH residual beyond it.
func (s *System) computeResidualRate(sc bch.Scheme) float64 {
	if sc.NominalRate == 0 {
		return 0 // ideal correction
	}
	if sc.T == 0 {
		return s.rber // no correction: the raw substrate rate
	}
	if s.cfg.ScrubMonths == 0 || s.cfg.ScrubMonths == s.cfg.Substrate.ScrubIntervalMonths {
		return sc.NominalRate
	}
	return bch.ResidualBitErrorRate(sc.T, s.rber)
}

// Stats is the physical storage footprint of one stored video.
type Stats struct {
	// PayloadBits and HeaderBits are the logical stream sizes.
	PayloadBits, HeaderBits int64
	// ParityBits is the total error-correction overhead in bits.
	ParityBits float64
	// Cells is the number of substrate cells consumed.
	Cells float64
	// CellsPerPixel is the paper's density metric: storage cells per
	// encoded video pixel (Figure 11's x-axis).
	CellsPerPixel float64
	// ECCOverhead is ParityBits divided by the protected bits.
	ECCOverhead float64
	// PerScheme breaks the payload down by protection level.
	PerScheme map[string]int64
}

// FrameCost is one frame's contribution to the footprint, computed
// independently per frame and merged in frame order so the totals are
// identical at every worker count. The chunked pipeline accumulates
// FrameCost slices chunk by chunk and reduces them once with
// StatsFromCosts, reproducing the batch Stats bit for bit.
type FrameCost struct {
	PayloadBits int64
	Cells       float64
	Parity      float64
	PerScheme   map[string]int64
}

// Footprint computes the storage cost of a partitioned video, including the
// precisely-stored frame headers and pivot tables.
func (s *System) Footprint(v *codec.Video, parts []core.FramePartition, pixels int64) (Stats, error) {
	//vetvideoapp:allow ctxfirst — Footprint is the documented context-less convenience form of FootprintContext
	return s.FootprintContext(context.Background(), v, parts, pixels, 1)
}

// FrameCosts computes each frame's independent footprint contribution with
// per-frame fan-out across workers and cooperative cancellation. An observer
// attached to ctx (obs.With) receives the footprint stage span and per-frame
// progress; the aggregate counters and gauges are published by whoever runs
// the final reduction (FootprintContext, or the streaming accumulator via
// PublishFootprint).
func (s *System) FrameCosts(ctx context.Context, v *codec.Video, parts []core.FramePartition, workers int) ([]FrameCost, error) {
	if len(parts) != len(v.Frames) {
		return nil, fmt.Errorf("store: %w: %d partitions for %d frames", ErrPartitionMismatch, len(parts), len(v.Frames))
	}
	o := obs.From(ctx)
	defer obs.StartSpan(o, obs.StageFootprint).End()
	costs := make([]FrameCost, len(v.Frames))
	err := par.ForEachLabeled(ctx, len(v.Frames), workers, obs.StageFootprint, "", func(f int) error {
		ef := v.Frames[f]
		fc := FrameCost{PerScheme: map[string]int64{}}
		parts[f].VisitSegments(ef.PayloadBits(), func(seg core.Segment) {
			fc.PayloadBits += seg.Bits
			fc.PerScheme[seg.Scheme.Name] += seg.Bits
			fc.Cells += s.cfg.Substrate.CellsForBits(seg.Bits, seg.Scheme.Overhead())
			fc.Parity += float64(seg.Bits) * seg.Scheme.Overhead()
		})
		costs[f] = fc
		o.FrameDone(obs.StageFootprint, 1)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return costs, nil
}

// StatsFromCosts reduces per-frame costs to the video's Stats. The reduction
// runs in slice order with the same accumulation sequence as the serial
// batch path, so feeding it the concatenation of per-chunk FrameCosts slices
// yields floats bit-identical to one batch FootprintContext call.
// headerBits is the total precise region (frame headers + pivot tables);
// pixels scales the density metric (0 leaves CellsPerPixel zero).
func (s *System) StatsFromCosts(costs []FrameCost, headerBits, pixels int64) Stats {
	st := Stats{PerScheme: map[string]int64{}}
	var cells, parity float64
	for _, fc := range costs {
		st.PayloadBits += fc.PayloadBits
		cells += fc.Cells
		parity += fc.Parity
		for name, bits := range fc.PerScheme {
			st.PerScheme[name] += bits
		}
	}
	st.HeaderBits = headerBits
	headerScheme := s.cfg.Assignment.Header
	cells += s.cfg.Substrate.CellsForBits(st.HeaderBits, headerScheme.Overhead())
	parity += float64(st.HeaderBits) * headerScheme.Overhead()
	st.ParityBits = parity
	st.Cells = cells
	if pixels > 0 {
		st.CellsPerPixel = cells / float64(pixels)
	}
	total := float64(st.PayloadBits + st.HeaderBits)
	if total > 0 {
		st.ECCOverhead = parity / total
	}
	return st
}

// PublishFootprint reports the aggregate footprint counters and gauges of a
// reduced Stats to an observer, exactly as FootprintContext does for the
// batch path. The streaming pipeline calls it once after its final
// StatsFromCosts reduction so metrics reconcile with the batch run.
func PublishFootprint(o obs.Observer, st Stats) {
	for name, bits := range st.PerScheme {
		o.Counter(obs.CtrPayloadBits, name, bits)
	}
	o.Counter(obs.CtrHeaderBits, "", st.HeaderBits)
	o.Gauge(obs.GaugeCells, "", st.Cells)
	o.Gauge(obs.GaugeCellsPerPixel, "", st.CellsPerPixel)
}

// FootprintContext is Footprint with per-frame fan-out across workers and
// cooperative cancellation. Per-frame costs are accumulated independently
// and reduced in frame order, so the result is identical for every worker
// count. An observer attached to ctx (obs.With) receives the footprint
// stage span, per-frame progress, per-scheme payload-bit counters and the
// cell-density gauges.
func (s *System) FootprintContext(ctx context.Context, v *codec.Video, parts []core.FramePartition, pixels int64, workers int) (Stats, error) {
	costs, err := s.FrameCosts(ctx, v, parts, workers)
	if err != nil {
		return Stats{}, err
	}
	st := s.StatsFromCosts(costs, v.HeaderBits()+core.PivotOverheadBits(parts), pixels)
	PublishFootprint(obs.From(ctx), st)
	return st, nil
}

// StoreOpts configures one StoreContext round trip.
type StoreOpts struct {
	// Seed selects the deterministic per-frame error streams: every frame
	// draws from its own RNG seeded by a SplitMix64 finalizer over (Seed,
	// FrameOffset + frame), so the stored bits and flip count are a pure
	// function of (video, parts, Seed, FrameOffset) — never of Workers or
	// the goroutine schedule. Ignored when Rng is set.
	Seed int64
	// FrameOffset rebases the per-frame error streams: frame f of v draws
	// the stream of global frame FrameOffset+f. A chunk of a longer video
	// stored with its global first-frame position here receives exactly
	// the error pattern the full-video round trip would inject into those
	// frames, which is what makes single-GOP round trips from a chunked
	// archive bit-identical to the batch path. Ignored when Rng is set.
	FrameOffset int
	// Workers bounds the per-frame fan-out; <= 0 selects GOMAXPROCS.
	// Forced to 1 when Rng is set.
	Workers int
	// Observer receives the inject stage span, per-frame progress and the
	// per-scheme raw/residual flip counters. nil falls back to the
	// observer attached to ctx (obs.With), then to the no-op default.
	Observer obs.Observer
	// Rng, when non-nil, selects the legacy serial error stream: one
	// caller-owned source drawn frame by frame in order, matching the
	// deprecated Store method. The outcome then depends on the source's
	// prior state, and the round trip runs on a single worker.
	Rng *rand.Rand
}

// StoreContext simulates one write-scrub-read round trip: it returns a deep
// copy of v whose payload bits carry the residual errors of their assigned
// protection levels, plus the number of injected residual errors. Headers
// and pivots are stored precisely and come back intact (their nominal 1e-16
// rate is below any plausible per-video probability; the §6.4 scaling
// handles it analytically where needed).
//
// The returned copy is pool-backed: callers running repeated round trips
// (Monte-Carlo loops) should codec.Video.Release it once done with it so the
// next trip reuses its buffers. Skipping Release is always safe — the copy is
// then collected like any other garbage.
//
// Cancellation is cooperative, checked at frame boundaries. See StoreOpts
// for seeding, worker and observer selection.
func (s *System) StoreContext(ctx context.Context, v *codec.Video, parts []core.FramePartition, o StoreOpts) (*codec.Video, int, error) {
	if len(parts) != len(v.Frames) {
		return nil, 0, fmt.Errorf("store: %w: %d partitions for %d frames", ErrPartitionMismatch, len(parts), len(v.Frames))
	}
	ob := o.Observer
	if ob == nil {
		ob = obs.From(ctx)
	}
	defer obs.StartSpan(ob, obs.StageInject).End()
	out := v.ClonePooled()
	if o.Rng != nil {
		// Legacy serial stream: draws must happen in frame order from the
		// one shared source.
		flips := 0
		for f, ef := range out.Frames {
			if err := ctx.Err(); err != nil {
				return nil, 0, err
			}
			flips += s.injectFrame(o.Rng, ef, parts[f], ob)
			ob.FrameDone(obs.StageInject, 1)
		}
		return out, flips, nil
	}
	flips := make([]int, len(out.Frames))
	err := par.ForEachLabeled(ctx, len(out.Frames), o.Workers, obs.StageInject, "", func(f int) error {
		rng := rngPool.Get().(*rand.Rand)
		rng.Seed(frameSeed(o.Seed, o.FrameOffset+f))
		flips[f] = s.injectFrame(rng, out.Frames[f], parts[f], ob)
		rngPool.Put(rng)
		ob.FrameDone(obs.StageInject, 1)
		return nil
	})
	if err != nil {
		return nil, 0, err
	}
	total := 0
	for _, n := range flips {
		total += n
	}
	return out, total, nil
}

// rngPool recycles per-frame RNGs across injection rounds. Seed fully resets
// a *rand.Rand to the state rand.New(rand.NewSource(seed)) would have, so a
// pooled source draws exactly the stream a fresh one would.
var rngPool = sync.Pool{New: func() any { return rand.New(rand.NewSource(0)) }}

// injectFrame applies the configured error model to one frame's payload,
// publishes per-scheme raw/residual counters to ob, and returns the number
// of surviving flips. The whole path — segment iteration, error placement,
// bit flipping — runs without allocating.
func (s *System) injectFrame(rng *rand.Rand, ef *codec.EncodedFrame, part core.FramePartition, ob obs.Observer) int {
	flips := 0
	part.VisitSegments(ef.PayloadBits(), func(seg core.Segment) {
		var raw, kept int
		if s.cfg.BlockAccurate {
			raw, kept = s.injectBlockAccurate(rng, ef.Payload, seg)
		} else {
			kept = s.injectNominal(rng, ef.Payload, seg)
			raw = kept
		}
		if raw != 0 {
			ob.Counter(obs.CtrRawFlips, seg.Scheme.Name, int64(raw))
		}
		if kept != 0 {
			ob.Counter(obs.CtrResidualFlips, seg.Scheme.Name, int64(kept))
		}
		flips += kept
	})
	return flips
}

// frameSeed derives the sub-stream seed of frame f from the caller's seed
// with a SplitMix64-style finalizer, decorrelating neighbouring frames while
// staying a pure function of (seed, f) — the property that makes StoreContext
// reproducible at every worker count.
func frameSeed(seed int64, f int) int64 {
	z := uint64(seed) + 0x9e3779b97f4a7c15*uint64(f+1)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return int64(z ^ (z >> 31))
}

func (s *System) injectNominal(rng *rand.Rand, payload []byte, seg core.Segment) int {
	rate := s.residualRate(seg.Scheme)
	if rate <= 0 {
		return 0
	}
	n := 0
	sim.VisitErrorPositions(rng, seg.Bits, rate, func(pos int64) {
		flipBit(payload, seg.Start+pos)
		n++
	})
	return n
}

// injectBlockAccurate simulates raw substrate errors per BCH block: a block
// with at most T errors is fully corrected; beyond T the raw errors that
// landed in the payload portion of the block survive to the reader. It
// returns the raw error count alongside the surviving flips.
func (s *System) injectBlockAccurate(rng *rand.Rand, payload []byte, seg core.Segment) (raw, flips int) {
	sc := seg.Scheme
	if sc.NominalRate == 0 {
		return 0, 0
	}
	// The correction decision needs the block's error count before any flip,
	// so positions are gathered per block. The scratch array covers any
	// remotely plausible per-block count (64 errors in a ~600-bit block at
	// substrate rates); the slice stays on the stack because the collecting
	// closure never escapes VisitErrorPositions.
	var errbuf [64]int64
	errs := errbuf[:0]
	collect := func(pos int64) { errs = append(errs, pos) }
	blockPayload := int64(bch.BlockDataBits)
	blockTotal := blockPayload + int64(10*sc.T)
	for off := int64(0); off < seg.Bits; off += blockPayload {
		remaining := seg.Bits - off
		dataBits := blockPayload
		if remaining < dataBits {
			dataBits = remaining
		}
		totalBits := dataBits + (blockTotal - blockPayload)
		errs = errs[:0]
		sim.VisitErrorPositions(rng, totalBits, s.rber, collect)
		raw += len(errs)
		if sc.T > 0 && len(errs) <= sc.T {
			continue // corrected
		}
		for _, e := range errs {
			if e < dataBits {
				flipBit(payload, seg.Start+off+e)
				flips++
			}
		}
	}
	return raw, flips
}

func flipBit(buf []byte, pos int64) {
	if pos < 0 || pos >= int64(len(buf))*8 {
		return
	}
	buf[pos>>3] ^= 1 << (7 - uint(pos&7))
}
