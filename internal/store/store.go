// Package store implements the end-to-end approximate video storage system:
// a partitioned video is laid out on the MLC substrate with per-segment BCH
// protection chosen by the VideoApp analysis, frame headers (including the
// pivot tables) are stored precisely, and reads inject the residual
// post-correction errors that the decoder then has to live with.
//
// Three designs from Figure 11 are expressible through the assignment:
// uniform correction (everything BCH-16), variable correction (Table 1) and
// ideal correction (error-free, overhead-free).
package store

import (
	"fmt"
	"math/rand"

	"videoapp/internal/bch"
	"videoapp/internal/codec"
	"videoapp/internal/core"
	"videoapp/internal/mlc"
	"videoapp/internal/sim"
)

// Config describes one storage system design.
type Config struct {
	// Substrate is the physical cell model.
	Substrate mlc.Substrate
	// Assignment maps importance classes to correction schemes.
	Assignment core.ClassAssignment
	// ScrubMonths overrides the scrubbing interval (0 = substrate default).
	ScrubMonths float64
	// BlockAccurate switches from the nominal per-scheme residual rates
	// (Table 1) to explicit per-512-bit-block binomial error simulation
	// with BCH correction capability accounting.
	BlockAccurate bool
}

// System is a configured approximate storage system.
type System struct {
	cfg  Config
	rber float64
}

// New validates the configuration and builds a System.
func New(cfg Config) (*System, error) {
	if err := cfg.Substrate.Validate(); err != nil {
		return nil, err
	}
	s := &System{cfg: cfg}
	s.rber = cfg.Substrate.EffectiveRBER(cfg.ScrubMonths)
	return s, nil
}

// Config returns the system configuration.
func (s *System) Config() Config { return s.cfg }

// RBER returns the raw bit error rate the system operates at.
func (s *System) RBER() float64 { return s.rber }

// residualRate returns the post-correction bit error rate for a scheme.
func (s *System) residualRate(sc bch.Scheme) float64 {
	if sc.NominalRate == 0 {
		return 0 // ideal correction
	}
	if sc.T == 0 {
		return s.rber // no correction: the raw substrate rate
	}
	if s.cfg.ScrubMonths == 0 || s.cfg.ScrubMonths == s.cfg.Substrate.ScrubIntervalMonths {
		return sc.NominalRate
	}
	return bch.ResidualBitErrorRate(sc.T, s.rber)
}

// Stats is the physical storage footprint of one stored video.
type Stats struct {
	// PayloadBits and HeaderBits are the logical stream sizes.
	PayloadBits, HeaderBits int64
	// ParityBits is the total error-correction overhead in bits.
	ParityBits float64
	// Cells is the number of substrate cells consumed.
	Cells float64
	// CellsPerPixel is the paper's density metric: storage cells per
	// encoded video pixel (Figure 11's x-axis).
	CellsPerPixel float64
	// ECCOverhead is ParityBits divided by the protected bits.
	ECCOverhead float64
	// PerScheme breaks the payload down by protection level.
	PerScheme map[string]int64
}

// Footprint computes the storage cost of a partitioned video, including the
// precisely-stored frame headers and pivot tables.
func (s *System) Footprint(v *codec.Video, parts []core.FramePartition, pixels int64) (Stats, error) {
	if len(parts) != len(v.Frames) {
		return Stats{}, fmt.Errorf("store: %d partitions for %d frames", len(parts), len(v.Frames))
	}
	st := Stats{PerScheme: map[string]int64{}}
	var cells, parity float64
	for f, ef := range v.Frames {
		for _, seg := range parts[f].Segments(ef.PayloadBits()) {
			st.PayloadBits += seg.Bits
			st.PerScheme[seg.Scheme.Name] += seg.Bits
			cells += s.cfg.Substrate.CellsForBits(seg.Bits, seg.Scheme.Overhead())
			parity += float64(seg.Bits) * seg.Scheme.Overhead()
		}
	}
	st.HeaderBits = v.HeaderBits() + core.PivotOverheadBits(parts)
	headerScheme := s.cfg.Assignment.Header
	cells += s.cfg.Substrate.CellsForBits(st.HeaderBits, headerScheme.Overhead())
	parity += float64(st.HeaderBits) * headerScheme.Overhead()
	st.ParityBits = parity
	st.Cells = cells
	if pixels > 0 {
		st.CellsPerPixel = cells / float64(pixels)
	}
	total := float64(st.PayloadBits + st.HeaderBits)
	if total > 0 {
		st.ECCOverhead = parity / total
	}
	return st, nil
}

// Store simulates one write-scrub-read round trip: it returns a deep copy of
// v whose payload bits carry the residual errors of their assigned
// protection levels. Headers and pivots are stored precisely and come back
// intact (their nominal 1e-16 rate is below any plausible per-video
// probability; the §6.4 scaling handles it analytically where needed).
func (s *System) Store(v *codec.Video, parts []core.FramePartition, rng *rand.Rand) (*codec.Video, int, error) {
	if len(parts) != len(v.Frames) {
		return nil, 0, fmt.Errorf("store: %d partitions for %d frames", len(parts), len(v.Frames))
	}
	out := v.Clone()
	flips := 0
	for f, ef := range out.Frames {
		for _, seg := range parts[f].Segments(ef.PayloadBits()) {
			if s.cfg.BlockAccurate {
				flips += s.injectBlockAccurate(rng, ef.Payload, seg)
			} else {
				flips += s.injectNominal(rng, ef.Payload, seg)
			}
		}
	}
	return out, flips, nil
}

func (s *System) injectNominal(rng *rand.Rand, payload []byte, seg core.Segment) int {
	rate := s.residualRate(seg.Scheme)
	if rate <= 0 {
		return 0
	}
	n := 0
	for _, pos := range sim.ErrorPositions(rng, seg.Bits, rate) {
		flipBit(payload, seg.Start+pos)
		n++
	}
	return n
}

// injectBlockAccurate simulates raw substrate errors per BCH block: a block
// with at most T errors is fully corrected; beyond T the raw errors that
// landed in the payload portion of the block survive to the reader.
func (s *System) injectBlockAccurate(rng *rand.Rand, payload []byte, seg core.Segment) int {
	sc := seg.Scheme
	if sc.NominalRate == 0 {
		return 0
	}
	blockPayload := int64(bch.BlockDataBits)
	blockTotal := blockPayload + int64(10*sc.T)
	flips := 0
	for off := int64(0); off < seg.Bits; off += blockPayload {
		remaining := seg.Bits - off
		dataBits := blockPayload
		if remaining < dataBits {
			dataBits = remaining
		}
		totalBits := dataBits + (blockTotal - blockPayload)
		errs := sim.ErrorPositions(rng, totalBits, s.rber)
		if sc.T > 0 && len(errs) <= sc.T {
			continue // corrected
		}
		for _, e := range errs {
			if e < dataBits {
				flipBit(payload, seg.Start+off+e)
				flips++
			}
		}
	}
	return flips
}

func flipBit(buf []byte, pos int64) {
	if pos < 0 || pos >= int64(len(buf))*8 {
		return
	}
	buf[pos>>3] ^= 1 << (7 - uint(pos&7))
}
