package store

import (
	"bytes"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"videoapp/internal/codec"
	"videoapp/internal/core"
	"videoapp/internal/synth"
)

// buildChunkedVideo encodes a multi-GOP video and splits it at GOP
// boundaries into chunk-local videos with their partitions, the form the
// streaming pipeline hands to the archive writer.
func buildChunkedVideo(t testing.TB, gops int) (*codec.Video, []*codec.Video, [][]core.FramePartition) {
	t.Helper()
	const gopSize = 4
	cfg, _ := synth.PresetByName("crew_like")
	seq := synth.Generate(cfg.ScaleTo(96, 64, gops*gopSize))
	p := codec.DefaultParams()
	p.GOPSize = gopSize
	p.SearchRange = 8
	v, err := codec.Encode(seq, p)
	if err != nil {
		t.Fatal(err)
	}
	an := core.Analyze(v, core.DefaultOptions())
	parts := an.Partition(core.PaperAssignment())
	var chunks []*codec.Video
	var chunkParts [][]core.FramePartition
	for s := 0; s < len(v.Frames); s += gopSize {
		e := min(s+gopSize, len(v.Frames))
		sub := &codec.Video{Params: p, W: v.W, H: v.H, FPS: v.FPS}
		for _, f := range v.Frames[s:e] {
			sub.Frames = append(sub.Frames, f)
		}
		sub = sub.Clone()
		sub.ShiftIndices(-s)
		chunks = append(chunks, sub)
		chunkParts = append(chunkParts, parts[s:e])
	}
	return v, chunks, chunkParts
}

func writeChunks(t testing.TB, cw *ChunkWriter, chunks []*codec.Video, parts [][]core.FramePartition, firstFrame int) int {
	t.Helper()
	for i, c := range chunks {
		if err := cw.Append(c, parts[i], firstFrame); err != nil {
			t.Fatal(err)
		}
		firstFrame += len(c.Frames)
	}
	return firstFrame
}

func TestChunkArchiveRoundTrip(t *testing.T) {
	v, chunks, chunkParts := buildChunkedVideo(t, 3)
	var buf bytes.Buffer
	cw, err := NewChunkWriter(&buf, ArchiveMeta{W: v.W, H: v.H, FPS: v.FPS, GOPSize: v.Params.GOPSize, GOPsPerChunk: 1})
	if err != nil {
		t.Fatal(err)
	}
	writeChunks(t, cw, chunks, chunkParts, 0)

	a, err := OpenChunkArchiveAt(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if a.NumChunks() != len(chunks) {
		t.Fatalf("%d chunks, want %d", a.NumChunks(), len(chunks))
	}
	if a.TotalFrames() != len(v.Frames) {
		t.Fatalf("%d frames, want %d", a.TotalFrames(), len(v.Frames))
	}
	if a.Meta() != cw.Meta() {
		t.Fatalf("meta mismatch: %+v vs %+v", a.Meta(), cw.Meta())
	}
	base := 0
	for i, want := range chunks {
		got, parts, err := a.ReadChunk(i)
		if err != nil {
			t.Fatal(err)
		}
		if len(got.Frames) != len(want.Frames) || len(parts) != len(want.Frames) {
			t.Fatalf("chunk %d: %d frames, %d parts, want %d", i, len(got.Frames), len(parts), len(want.Frames))
		}
		for f := range want.Frames {
			if !bytes.Equal(got.Frames[f].Payload, want.Frames[f].Payload) {
				t.Fatalf("chunk %d frame %d: payload differs", i, f)
			}
		}
		// The chunk must decode on its own, pixel-identical to the same
		// frames decoded as part of the whole video.
		whole, err := codec.Decode(v)
		if err != nil {
			t.Fatal(err)
		}
		dec, err := codec.Decode(got)
		if err != nil {
			t.Fatal(err)
		}
		for f := range dec.Frames {
			if !bytes.Equal(dec.Frames[f].Y, whole.Frames[base+f].Y) {
				t.Fatalf("chunk %d frame %d: decode differs from whole video", i, f)
			}
		}
		base += len(want.Frames)
	}
}

// trackingReader records every byte range read from the underlying reader.
type trackingReader struct {
	r     *bytes.Reader
	mu    sync.Mutex
	reads [][2]int64
}

func (tr *trackingReader) ReadAt(p []byte, off int64) (int, error) {
	n, err := tr.r.ReadAt(p, off)
	if n > 0 {
		tr.mu.Lock()
		tr.reads = append(tr.reads, [2]int64{off, off + int64(n)})
		tr.mu.Unlock()
	}
	return n, err
}

// TestReadChunkTouchesOnlyItsPayload pins the random-access guarantee:
// indexing the archive reads headers only, and reading chunk i reads bytes
// exclusively inside chunk i's payload range.
func TestReadChunkTouchesOnlyItsPayload(t *testing.T) {
	v, chunks, chunkParts := buildChunkedVideo(t, 3)
	var buf bytes.Buffer
	cw, err := NewChunkWriter(&buf, ArchiveMeta{W: v.W, H: v.H, FPS: v.FPS, GOPSize: v.Params.GOPSize, GOPsPerChunk: 1})
	if err != nil {
		t.Fatal(err)
	}
	writeChunks(t, cw, chunks, chunkParts, 0)

	tr := &trackingReader{r: bytes.NewReader(buf.Bytes())}
	a, err := OpenChunkArchiveAt(tr)
	if err != nil {
		t.Fatal(err)
	}
	payload := func(i int) (int64, int64) {
		info, err := a.Info(i)
		if err != nil {
			t.Fatal(err)
		}
		return info.Offset, info.Offset + info.Length
	}
	// Open must not have read inside any chunk's payload.
	for i := 0; i < a.NumChunks(); i++ {
		lo, hi := payload(i)
		for _, rd := range tr.reads {
			if rd[0] < hi && rd[1] > lo {
				t.Fatalf("Open read [%d,%d) inside chunk %d payload [%d,%d)", rd[0], rd[1], i, lo, hi)
			}
		}
	}
	// ReadChunk(1) must stay inside chunk 1's payload range.
	tr.reads = nil
	if _, _, err := a.ReadChunk(1); err != nil {
		t.Fatal(err)
	}
	lo, hi := payload(1)
	for _, rd := range tr.reads {
		if rd[0] < lo || rd[1] > hi {
			t.Fatalf("ReadChunk(1) read [%d,%d) outside its payload [%d,%d)", rd[0], rd[1], lo, hi)
		}
	}
	if len(tr.reads) == 0 {
		t.Fatal("ReadChunk read nothing")
	}
}

// TestAppendChunkWriter exercises append-on-write: reopening an archive file
// and appending more chunks must leave earlier chunks untouched and index
// the new ones.
func TestAppendChunkWriter(t *testing.T) {
	v, chunks, chunkParts := buildChunkedVideo(t, 3)
	path := filepath.Join(t.TempDir(), "archive.vacs")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	cw, err := NewChunkWriter(f, ArchiveMeta{W: v.W, H: v.H, FPS: v.FPS, GOPSize: v.Params.GOPSize, GOPsPerChunk: 1})
	if err != nil {
		t.Fatal(err)
	}
	next := writeChunks(t, cw, chunks[:2], chunkParts[:2], 0)
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	rw, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	aw, err := AppendChunkWriter(rw)
	if err != nil {
		t.Fatal(err)
	}
	if aw.Frames() != next {
		t.Fatalf("append writer resumes at frame %d, want %d", aw.Frames(), next)
	}
	writeChunks(t, aw, chunks[2:], chunkParts[2:], next)
	if err := rw.Close(); err != nil {
		t.Fatal(err)
	}

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	a, err := OpenChunkArchiveAt(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if a.NumChunks() != 3 || a.TotalFrames() != len(v.Frames) {
		t.Fatalf("after append: %d chunks, %d frames", a.NumChunks(), a.TotalFrames())
	}
	for i, want := range chunks {
		got, _, err := a.ReadChunk(i)
		if err != nil {
			t.Fatal(err)
		}
		for f := range want.Frames {
			if !bytes.Equal(got.Frames[f].Payload, want.Frames[f].Payload) {
				t.Fatalf("chunk %d frame %d differs after append", i, f)
			}
		}
	}
}

func TestChunkWriterRejectsOutOfOrder(t *testing.T) {
	v, chunks, chunkParts := buildChunkedVideo(t, 2)
	var buf bytes.Buffer
	cw, err := NewChunkWriter(&buf, ArchiveMeta{W: v.W, H: v.H, FPS: v.FPS, GOPSize: v.Params.GOPSize, GOPsPerChunk: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := cw.Append(chunks[1], chunkParts[1], 7); err == nil {
		t.Fatal("out-of-order chunk must be rejected")
	}
}

func TestOpenChunkArchiveRejectsGarbage(t *testing.T) {
	cases := map[string][]byte{
		"empty":     {},
		"bad magic": []byte("NOPE\x01aaaaaaaaaaaaaaaaaaaa"),
		"truncated": []byte("VACS"),
	}
	for name, data := range cases {
		if _, err := OpenChunkArchiveAt(bytes.NewReader(data)); err == nil {
			t.Fatalf("%s: must be rejected", name)
		}
	}
	// A valid header followed by a corrupt chunk marker must fail cleanly.
	v, chunks, chunkParts := buildChunkedVideo(t, 2)
	var buf bytes.Buffer
	cw, err := NewChunkWriter(&buf, ArchiveMeta{W: v.W, H: v.H, FPS: v.FPS, GOPSize: v.Params.GOPSize, GOPsPerChunk: 1})
	if err != nil {
		t.Fatal(err)
	}
	writeChunks(t, cw, chunks, chunkParts, 0)
	data := buf.Bytes()
	a, err := OpenChunkArchiveAt(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	// The second record's marker starts right after the first chunk's
	// payload; corrupting it must fail indexing cleanly.
	first, err := a.Info(0)
	if err != nil {
		t.Fatal(err)
	}
	data[first.Offset+first.Length] ^= 0xFF
	if _, err := OpenChunkArchiveAt(bytes.NewReader(data)); err == nil {
		t.Fatal("corrupt chunk marker must be rejected")
	}
}
