package store

import (
	"context"
	"time"
)

// FaultPolicy is the single knob set of the fault-tolerant read path: how
// archive reads retry, how they back off, whether record checksums are
// verified, and when the serving layer's circuit breaker opens. The zero
// value selects every documented default; resolve it with withDefaults.
//
// A policy reaches the read path two ways, in precedence order: attached
// to a context with ContextWithFaultPolicy (per-call override, the form
// the chunk server uses), or attached to the archive at open time with
// the WithFaultPolicy archive option.
type FaultPolicy struct {
	// MaxRetries bounds the extra read attempts after the first failure
	// of one region read (transient I/O error or checksum mismatch).
	// 0 selects 2; negative disables retries.
	MaxRetries int
	// RetryBackoff is the base delay before the first retry; each further
	// retry doubles it, and a deterministic jitter in [0.5, 1.0) of the
	// doubled value is applied so stampeding readers decorrelate.
	// <= 0 selects 500µs.
	RetryBackoff time.Duration
	// MaxBackoff caps the per-retry delay. <= 0 selects 50ms.
	MaxBackoff time.Duration
	// SkipVerify disables CRC verification of v2 archive records (v1
	// records carry no checksums and are never verified).
	SkipVerify bool
	// BreakerThreshold is the number of consecutive hard read failures
	// (retries exhausted, mirror exhausted) after which the serving
	// layer's circuit breaker opens and sheds chunk requests with
	// 503 + Retry-After. 0 selects 8; negative disables the breaker.
	BreakerThreshold int
	// BreakerCooldown is how long the breaker stays open before letting
	// requests probe the read path again; it is also the Retry-After
	// value advertised while shedding. <= 0 selects 1s.
	BreakerCooldown time.Duration
}

// Resolved returns the policy with zero fields replaced by their
// documented defaults — the form the read path and the serving layer's
// circuit breaker actually run under. Negative MaxRetries resolves to 0
// (retries off); a negative BreakerThreshold is preserved (breaker off).
func (p FaultPolicy) Resolved() FaultPolicy { return p.withDefaults() }

// withDefaults resolves zero fields to their documented defaults.
func (p FaultPolicy) withDefaults() FaultPolicy {
	if p.MaxRetries == 0 {
		p.MaxRetries = 2
	}
	if p.MaxRetries < 0 {
		p.MaxRetries = 0
	}
	if p.RetryBackoff <= 0 {
		p.RetryBackoff = 500 * time.Microsecond
	}
	if p.MaxBackoff <= 0 {
		p.MaxBackoff = 50 * time.Millisecond
	}
	if p.BreakerThreshold == 0 {
		p.BreakerThreshold = 8
	}
	if p.BreakerCooldown <= 0 {
		p.BreakerCooldown = time.Second
	}
	return p
}

// policyKey keys a FaultPolicy attached to a context.
type policyKey struct{}

// ContextWithFaultPolicy returns a context carrying p. Archive reads under
// this context use p in place of the archive's own policy.
func ContextWithFaultPolicy(ctx context.Context, p FaultPolicy) context.Context {
	return context.WithValue(ctx, policyKey{}, p)
}

// FaultPolicyFromContext returns the policy attached to ctx, reporting
// whether one was.
func FaultPolicyFromContext(ctx context.Context) (FaultPolicy, bool) {
	p, ok := ctx.Value(policyKey{}).(FaultPolicy)
	return p, ok
}

// backoff returns the delay before retry attempt (1-based), exponential
// with a deterministic jitter derived from the read offset — two readers
// retrying different regions decorrelate, while the same retry of the
// same region reproduces the same delay.
func (p FaultPolicy) backoff(off int64, attempt int) time.Duration {
	d := p.RetryBackoff << (attempt - 1)
	if d <= 0 || d > p.MaxBackoff {
		d = p.MaxBackoff
	}
	h := uint64(off)*0x9e3779b97f4a7c15 + uint64(attempt)
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	frac := float64(h>>11) / (1 << 53)
	return d/2 + time.Duration(float64(d/2)*frac)
}

// sleepBackoff waits for the attempt's backoff delay or until ctx ends,
// returning ctx.Err() in the latter case.
func sleepBackoff(ctx context.Context, p FaultPolicy, off int64, attempt int) error {
	t := time.NewTimer(p.backoff(off, attempt))
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
