package store

import (
	"context"
	"math/rand"
	"testing"

	"videoapp/internal/bch"
	"videoapp/internal/core"
	"videoapp/internal/mlc"
	"videoapp/internal/obs"
)

// scrubSystem builds a system with a non-default scrub interval, the
// configuration whose residual rates require the expensive binomial
// recomputation instead of the nominal Table 1 values.
func scrubSystem(b testing.TB) *System {
	b.Helper()
	s, err := New(Config{Substrate: mlc.Default(), Assignment: core.PaperAssignment(), ScrubMonths: 12})
	if err != nil {
		b.Fatal(err)
	}
	return s
}

// BenchmarkResidualRate is the regression guard for the per-scheme
// memoization: residualRate used to recompute the BCH residual-rate
// binomial sum on every segment of every frame whenever the scrub interval
// deviated from the substrate default; New now computes it once per
// assignment scheme and lookups are map hits.
func BenchmarkResidualRate(b *testing.B) {
	s := scrubSystem(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if s.residualRate(bch.SchemeBCH6) <= 0 {
			b.Fatal("BCH-6 residual rate must be positive at a 12-month scrub interval")
		}
	}
}

// BenchmarkStoreScrubOverride exercises the full injection path on the
// recomputed-rate configuration, where every segment consults residualRate.
func BenchmarkStoreScrubOverride(b *testing.B) {
	b.ReportAllocs()
	v, _, parts, _ := buildVideo(b)
	s := scrubSystem(b)
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := s.StoreContext(ctx, v, parts, StoreOpts{Seed: int64(i), Workers: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkInject measures the error-injection kernel alone: one frame's
// payload per iteration, with the deep clone factored out, in both the
// nominal (Table 1 residual rates) and block-accurate (per-512-bit-block
// binomial) models.
func BenchmarkInject(b *testing.B) {
	v, _, parts, _ := buildVideo(b)
	for _, name := range []string{"nominal", "blockaccurate"} {
		b.Run(name, func(b *testing.B) {
			cfg := Config{Substrate: mlc.Default(), Assignment: core.PaperAssignment(), BlockAccurate: name == "blockaccurate"}
			s, err := New(cfg)
			if err != nil {
				b.Fatal(err)
			}
			// Inject into a scratch copy so the source video stays clean; the
			// payload bytes are restored each iteration outside the timer-free
			// fast path (flips are sparse, so re-copying dominates less than
			// recloning the whole video would).
			work := v.Clone()
			rng := rand.New(rand.NewSource(1))
			b.ResetTimer()
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				f := i % len(work.Frames)
				rng.Seed(int64(i))
				s.injectFrame(rng, work.Frames[f], parts[f], obs.Noop{})
			}
		})
	}
}

// TestResidualRateMemoMatchesCompute pins the memo table to the direct
// computation for every scheme in the assignment.
func TestResidualRateMemoMatchesCompute(t *testing.T) {
	for _, months := range []float64{0, 3, 12} {
		s, err := New(Config{Substrate: mlc.Default(), Assignment: core.PaperAssignment(), ScrubMonths: months})
		if err != nil {
			t.Fatal(err)
		}
		check := func(sc bch.Scheme) {
			if got, want := s.residualRate(sc), s.computeResidualRate(sc); got != want {
				t.Fatalf("months=%v scheme=%s: memoized %g != computed %g", months, sc.Name, got, want)
			}
		}
		for _, bound := range s.cfg.Assignment.Bounds {
			check(bound.Scheme)
		}
		check(s.cfg.Assignment.Header)
		// A scheme outside the assignment falls back to direct computation.
		check(bch.SchemeBCH11)
	}
}
