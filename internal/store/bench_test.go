package store

import (
	"context"
	"testing"

	"videoapp/internal/bch"
	"videoapp/internal/core"
	"videoapp/internal/mlc"
)

// scrubSystem builds a system with a non-default scrub interval, the
// configuration whose residual rates require the expensive binomial
// recomputation instead of the nominal Table 1 values.
func scrubSystem(b testing.TB) *System {
	b.Helper()
	s, err := New(Config{Substrate: mlc.Default(), Assignment: core.PaperAssignment(), ScrubMonths: 12})
	if err != nil {
		b.Fatal(err)
	}
	return s
}

// BenchmarkResidualRate is the regression guard for the per-scheme
// memoization: residualRate used to recompute the BCH residual-rate
// binomial sum on every segment of every frame whenever the scrub interval
// deviated from the substrate default; New now computes it once per
// assignment scheme and lookups are map hits.
func BenchmarkResidualRate(b *testing.B) {
	s := scrubSystem(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if s.residualRate(bch.SchemeBCH6) <= 0 {
			b.Fatal("BCH-6 residual rate must be positive at a 12-month scrub interval")
		}
	}
}

// BenchmarkStoreScrubOverride exercises the full injection path on the
// recomputed-rate configuration, where every segment consults residualRate.
func BenchmarkStoreScrubOverride(b *testing.B) {
	v, _, parts, _ := buildVideo(b)
	s := scrubSystem(b)
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := s.StoreContext(ctx, v, parts, StoreOpts{Seed: int64(i), Workers: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

// TestResidualRateMemoMatchesCompute pins the memo table to the direct
// computation for every scheme in the assignment.
func TestResidualRateMemoMatchesCompute(t *testing.T) {
	for _, months := range []float64{0, 3, 12} {
		s, err := New(Config{Substrate: mlc.Default(), Assignment: core.PaperAssignment(), ScrubMonths: months})
		if err != nil {
			t.Fatal(err)
		}
		check := func(sc bch.Scheme) {
			if got, want := s.residualRate(sc), s.computeResidualRate(sc); got != want {
				t.Fatalf("months=%v scheme=%s: memoized %g != computed %g", months, sc.Name, got, want)
			}
		}
		for _, bound := range s.cfg.Assignment.Bounds {
			check(bound.Scheme)
		}
		check(s.cfg.Assignment.Header)
		// A scheme outside the assignment falls back to direct computation.
		check(bch.SchemeBCH11)
	}
}
