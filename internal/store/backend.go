package store

import (
	"errors"
	"fmt"
	"io"
	"os"
	"sync"
)

// Backend is the storage seam of the archive layer: one stored container
// addressed by positionless reads and writes, plus its size and lifecycle.
// It is the paper's substrate/controller boundary (§5) in interface form —
// everything above it (archive indexing, the fault-tolerance ladder, the
// scrubber, the serving catalog) is the memory controller, and a Backend is
// whatever dense, possibly error-prone medium holds the bytes: a file, a
// memory region, a remote block device, or any of those behind a
// fault-injecting decorator (internal/faultio).
//
// ReadAt and WriteAt follow the io.ReaderAt/io.WriterAt contracts and must
// be safe for unbounded concurrent use; Size reports the current container
// length; Close releases the backing resource and is idempotent. Read-only
// media report writes with an error wrapping ErrReadOnly — the scrubber
// treats such a region as damaged-but-unrepairable rather than failing the
// pass.
type Backend interface {
	io.ReaderAt
	io.WriterAt
	// Size returns the current byte length of the stored container.
	Size() (int64, error)
	// Close releases the backing resource. Close is idempotent.
	Close() error
}

// ErrReadOnly reports a write to a backend that does not accept writes
// (SnapshotBackend, a FileBackend opened read-only). Match with errors.Is.
var ErrReadOnly = errors.New("read-only backend")

// FileBackend is the file-backed Backend: a thin wrapper over *os.File.
// *os.File's ReadAt/WriteAt are positionless, so concurrent archive reads
// share no cursor and take no lock.
type FileBackend struct {
	f        *os.File
	writable bool
}

// OpenFileBackend opens path as an archive backend. With writable set the
// file opens read-write (the form scrub repairs need); otherwise writes
// report ErrReadOnly without touching the file.
func OpenFileBackend(path string, writable bool) (*FileBackend, error) {
	mode := os.O_RDONLY
	if writable {
		mode = os.O_RDWR
	}
	f, err := os.OpenFile(path, mode, 0)
	if err != nil {
		return nil, err
	}
	return &FileBackend{f: f, writable: writable}, nil
}

// NewFileBackend wraps an already opened file as a writable backend. The
// backend takes ownership: Close closes the file.
func NewFileBackend(f *os.File) *FileBackend {
	return &FileBackend{f: f, writable: true}
}

// ReadAt implements io.ReaderAt.
func (b *FileBackend) ReadAt(p []byte, off int64) (int, error) { return b.f.ReadAt(p, off) }

// WriteAt implements io.WriterAt; read-only backends report ErrReadOnly.
func (b *FileBackend) WriteAt(p []byte, off int64) (int, error) {
	if !b.writable {
		return 0, fmt.Errorf("store: writing %s: %w", b.f.Name(), ErrReadOnly)
	}
	return b.f.WriteAt(p, off)
}

// Size returns the file's current length.
func (b *FileBackend) Size() (int64, error) {
	fi, err := b.f.Stat()
	if err != nil {
		return 0, err
	}
	return fi.Size(), nil
}

// Close closes the underlying file. Closing twice reports the second
// close's error from the OS (os.ErrClosed), matching *os.File.
func (b *FileBackend) Close() error { return b.f.Close() }

// MemBackend is the in-memory Backend: a growable byte region safe for
// concurrent use, the substrate model for RAM-resident archives and tests.
type MemBackend struct {
	mu   sync.RWMutex
	data []byte
}

// NewMemBackend returns a memory backend holding a copy of data (the
// backend must not alias caller memory: archives read from it concurrently
// while the caller may keep mutating its slice).
func NewMemBackend(data []byte) *MemBackend {
	return &MemBackend{data: append([]byte(nil), data...)}
}

// ReadAt implements io.ReaderAt with the standard contract: a read ending
// exactly at the container's end returns io.EOF alongside the bytes.
func (b *MemBackend) ReadAt(p []byte, off int64) (int, error) {
	b.mu.RLock()
	defer b.mu.RUnlock()
	if off < 0 {
		return 0, fmt.Errorf("store: negative read offset %d", off)
	}
	if off >= int64(len(b.data)) {
		//vetvideoapp:allow wrapeof — io.ReaderAt contract requires bare io.EOF at end-of-region; the archive layer above classifies it
		return 0, io.EOF
	}
	n := copy(p, b.data[off:])
	if n < len(p) {
		//vetvideoapp:allow wrapeof — io.ReaderAt contract requires bare io.EOF on short reads at the region's end
		return n, io.EOF
	}
	return n, nil
}

// WriteAt implements io.WriterAt, growing the region as needed (the gap, if
// any, zero-fills — exactly like a sparse file).
func (b *MemBackend) WriteAt(p []byte, off int64) (int, error) {
	if off < 0 {
		return 0, fmt.Errorf("store: negative write offset %d", off)
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if end := off + int64(len(p)); end > int64(len(b.data)) {
		grown := make([]byte, end)
		copy(grown, b.data)
		b.data = grown
	}
	return copy(b.data[off:], p), nil
}

// Size returns the current region length.
func (b *MemBackend) Size() (int64, error) {
	b.mu.RLock()
	defer b.mu.RUnlock()
	return int64(len(b.data)), nil
}

// Close is an idempotent no-op: memory needs no release.
func (b *MemBackend) Close() error { return nil }

// Bytes returns a copy of the current contents.
func (b *MemBackend) Bytes() []byte {
	b.mu.RLock()
	defer b.mu.RUnlock()
	return append([]byte(nil), b.data...)
}

// SnapshotBackend is the read-only Backend: an immutable view over a byte
// slice, for serving sealed archives (a mapped region, an embedded asset, a
// replica fetched whole). Reads are zero-copy and lock-free; every write
// reports ErrReadOnly.
type SnapshotBackend struct {
	data []byte
}

// NewSnapshotBackend wraps data as a read-only backend. The caller must not
// mutate data afterwards — that is the snapshot contract.
func NewSnapshotBackend(data []byte) *SnapshotBackend { return &SnapshotBackend{data: data} }

// ReadAt implements io.ReaderAt.
func (b *SnapshotBackend) ReadAt(p []byte, off int64) (int, error) {
	if off < 0 {
		return 0, fmt.Errorf("store: negative read offset %d", off)
	}
	if off >= int64(len(b.data)) {
		//vetvideoapp:allow wrapeof — io.ReaderAt contract requires bare io.EOF at end-of-region; the archive layer above classifies it
		return 0, io.EOF
	}
	n := copy(p, b.data[off:])
	if n < len(p) {
		//vetvideoapp:allow wrapeof — io.ReaderAt contract requires bare io.EOF on short reads at the region's end
		return n, io.EOF
	}
	return n, nil
}

// WriteAt always reports ErrReadOnly: snapshots are sealed.
func (b *SnapshotBackend) WriteAt(p []byte, off int64) (int, error) {
	return 0, fmt.Errorf("store: writing snapshot: %w", ErrReadOnly)
}

// Size returns the snapshot length.
func (b *SnapshotBackend) Size() (int64, error) { return int64(len(b.data)), nil }

// Close is an idempotent no-op.
func (b *SnapshotBackend) Close() error { return nil }

// OpenArchiveBackend indexes a container stored on any Backend. It is
// OpenChunkArchiveAt with the full seam: reads go through the backend's
// ReadAt, Scrub repairs go through its WriteAt (read-only backends report
// the damage unrepaired instead), and the caller closes the backend after
// the archive. Compose backends freely — a faultio decorator over a
// MemBackend behaves exactly like one over a file.
func OpenArchiveBackend(b Backend, opts ...ArchiveOption) (*ChunkArchive, error) {
	return OpenChunkArchiveAt(b, opts...)
}
