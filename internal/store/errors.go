package store

import "errors"

// Typed sentinel errors of the archive layer. Every error returned by
// OpenChunkArchiveAt, ChunkArchive.Info and ChunkArchive.ReadChunk wraps one
// of these (or the underlying I/O error) with %w, so callers can classify
// failures with errors.Is: a missing chunk is a client error, a corrupt
// record is a data error, a closed archive is a lifecycle error.
var (
	// ErrChunkNotFound reports a chunk index outside the archive.
	ErrChunkNotFound = errors.New("chunk not found")
	// ErrCorruptRecord reports a structurally invalid archive: bad magic,
	// unsupported version, a zero-length or truncated file, a damaged chunk
	// header, or payload lengths that contradict the container.
	ErrCorruptRecord = errors.New("corrupt archive record")
	// ErrArchiveClosed reports a read on an archive after Close.
	ErrArchiveClosed = errors.New("archive closed")
	// ErrReadFailed reports that the underlying reader kept failing after
	// the fault policy's retries (and the mirror, when one is configured)
	// were exhausted. Unlike ErrCorruptRecord it describes the device, not
	// the data: the bytes may be fine, the path to them is not, which is
	// what the serving layer's circuit breaker keys on.
	ErrReadFailed = errors.New("archive read failed")
)
