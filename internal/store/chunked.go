package store

import (
	"encoding/binary"
	"fmt"
	"io"
	"sync"
	"sync/atomic"

	"videoapp/internal/codec"
	"videoapp/internal/core"
)

// Chunked archive container: the at-rest form of a streamed video, laid out
// so that any single closed-GOP chunk can be read, decoded and round-tripped
// without loading the rest — the unit a video server ships to clients.
//
//	magic "VACS" | version | W | H | FPS | GOPSize | GOPsPerChunk
//	per chunk:   marker "CHNK" | first frame | frame count
//	             | precise len | pivot len | stream count
//	             | per stream: name len | name | bit count | byte len
//	             | precise bytes | pivot bytes | stream bytes
//
// Each chunk record is self-describing and the payload lengths are all in
// its fixed-position header, so a reader indexes the whole container by
// hopping record headers (seeking past payload bytes) and then reads exactly
// one chunk's bytes to serve it. There is no trailing index to rewrite,
// which is what makes the container append-on-write: new chunks go at the
// end, concurrent readers keep working from their existing index.
//
// Within a chunk the split mirrors the paper's reliability boundary exactly
// as Archive does for a whole video: a precise region (headers with payload
// placeholders, MarshalPrecise form, plus the §4.4 pivot tables) and one
// approximate stream per ECC scheme (§5.3).

var chunkedMagic = [4]byte{'V', 'A', 'C', 'S'}
var chunkMarker = [4]byte{'C', 'H', 'N', 'K'}

const chunkedVersion = 1

// ArchiveMeta is the sequence-level header of a chunked archive.
type ArchiveMeta struct {
	// W, H, FPS describe the coded sequence.
	W, H, FPS int
	// GOPSize is the encoder's I-frame interval; chunk boundaries are
	// multiples of it, which is what makes chunks independently decodable.
	GOPSize int
	// GOPsPerChunk is the nominal chunk granularity (the last chunk may be
	// shorter).
	GOPsPerChunk int
}

// ChunkInfo locates one chunk inside the container.
type ChunkInfo struct {
	// Index is the chunk's position in append order.
	Index int
	// FirstFrame and Frames give the chunk's coded-frame span in the whole
	// video.
	FirstFrame, Frames int
	// Offset and Length delimit the chunk's payload bytes (precise region,
	// pivot tables and approximate streams) within the container.
	Offset, Length int64
}

// ChunkWriter appends chunks to an archive container. It only ever writes
// forward — the header goes out once at construction and every Append emits
// one self-describing record — so it runs against any io.Writer, including
// a network connection or an append-only log.
type ChunkWriter struct {
	w      io.Writer
	meta   ArchiveMeta
	off    int64
	chunks []ChunkInfo
	frames int
}

// NewChunkWriter writes the container header and returns a writer ready to
// append chunks.
func NewChunkWriter(w io.Writer, meta ArchiveMeta) (*ChunkWriter, error) {
	if meta.W <= 0 || meta.H <= 0 || meta.GOPSize < 1 || meta.GOPsPerChunk < 1 {
		return nil, fmt.Errorf("store: invalid archive meta %+v", meta)
	}
	hdr := make([]byte, 0, archiveHeaderLen)
	hdr = append(hdr, chunkedMagic[:]...)
	hdr = append(hdr, chunkedVersion)
	hdr = appendU32(hdr, uint32(meta.W))
	hdr = appendU32(hdr, uint32(meta.H))
	hdr = appendU32(hdr, uint32(meta.FPS))
	hdr = appendU32(hdr, uint32(meta.GOPSize))
	hdr = appendU32(hdr, uint32(meta.GOPsPerChunk))
	if _, err := w.Write(hdr); err != nil {
		return nil, fmt.Errorf("store: writing archive header: %w", err)
	}
	return &ChunkWriter{w: w, meta: meta, off: int64(len(hdr))}, nil
}

// Meta returns the sequence-level header.
func (cw *ChunkWriter) Meta() ArchiveMeta { return cw.meta }

// Chunks lists the records appended so far.
func (cw *ChunkWriter) Chunks() []ChunkInfo { return cw.chunks }

// Frames returns the total frame count appended so far.
func (cw *ChunkWriter) Frames() int { return cw.frames }

// Append writes one chunk: a closed-GOP video (frame indices chunk-local)
// and its partition layout. firstFrame is the chunk's position in the whole
// video; chunks must arrive in order, each starting where the previous one
// ended.
func (cw *ChunkWriter) Append(v *codec.Video, parts []core.FramePartition, firstFrame int) error {
	if firstFrame != cw.frames {
		return fmt.Errorf("store: chunk starts at frame %d, want %d (chunks must append in order)", firstFrame, cw.frames)
	}
	if len(v.Frames) == 0 {
		return fmt.Errorf("store: empty chunk")
	}
	ss, err := core.SplitStreams(v, parts)
	if err != nil {
		return err
	}
	pivots, err := core.MarshalPartitions(parts)
	if err != nil {
		return err
	}
	precise := codec.MarshalPrecise(v)

	names := ss.SchemeNames()
	rec := make([]byte, 0, 64)
	rec = append(rec, chunkMarker[:]...)
	rec = appendU32(rec, uint32(firstFrame))
	rec = appendU32(rec, uint32(len(v.Frames)))
	rec = appendU32(rec, uint32(len(precise)))
	rec = appendU32(rec, uint32(len(pivots)))
	rec = append(rec, byte(len(names)))
	for _, name := range names {
		if len(name) > 255 {
			return fmt.Errorf("store: scheme name %q too long", name)
		}
		rec = append(rec, byte(len(name)))
		rec = append(rec, name...)
		rec = binary.BigEndian.AppendUint64(rec, uint64(ss.Bits[name]))
		rec = appendU32(rec, uint32(len(ss.Streams[name])))
	}
	if _, err := cw.w.Write(rec); err != nil {
		return fmt.Errorf("store: writing chunk header: %w", err)
	}
	payloadOff := cw.off + int64(len(rec))
	var payload int64
	for _, blob := range [][]byte{precise, pivots} {
		if _, err := cw.w.Write(blob); err != nil {
			return fmt.Errorf("store: writing chunk: %w", err)
		}
		payload += int64(len(blob))
	}
	for _, name := range names {
		if _, err := cw.w.Write(ss.Streams[name]); err != nil {
			return fmt.Errorf("store: writing chunk stream %q: %w", name, err)
		}
		payload += int64(len(ss.Streams[name]))
	}
	cw.chunks = append(cw.chunks, ChunkInfo{
		Index: len(cw.chunks), FirstFrame: firstFrame, Frames: len(v.Frames),
		Offset: payloadOff, Length: payload,
	})
	cw.off = payloadOff + payload
	cw.frames += len(v.Frames)
	return nil
}

// chunkRec is the reader-side index entry for one chunk.
type chunkRec struct {
	info       ChunkInfo
	preciseLen int64
	pivotLen   int64
	streams    []streamRec
}

type streamRec struct {
	name  string
	bits  int64
	bytes int64
}

// ChunkArchive is the random-access reader over a chunked container,
// backed by an io.ReaderAt so that it is safe for unbounded concurrent use:
// OpenChunkArchiveAt builds the index from the record headers alone —
// payload bytes are hopped over, never read — and ReadChunk then touches
// exactly one chunk's bytes through a private section reader, sharing no
// cursor with other readers. Every method except Close may be called from
// any number of goroutines simultaneously.
type ChunkArchive struct {
	r      io.ReaderAt
	meta   ArchiveMeta
	recs   []chunkRec
	closed atomic.Bool
}

// archiveHeaderLen is the fixed container header size (magic, version and
// the five ArchiveMeta fields).
const archiveHeaderLen = 25

// OpenChunkArchiveAt indexes a container produced by ChunkWriter. The
// returned archive performs all reads through r's positionless ReadAt, so
// concurrent ReadChunk calls never contend on a seek cursor. Structural
// damage — a zero-length or truncated file, bad magic, a damaged chunk
// header — is reported as an error wrapping ErrCorruptRecord; underlying
// I/O failures are wrapped with %w and match with errors.Is.
func OpenChunkArchiveAt(r io.ReaderAt) (*ChunkArchive, error) {
	var hdr [archiveHeaderLen]byte
	if n, err := r.ReadAt(hdr[:], 0); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return nil, fmt.Errorf("store: %w: archive header truncated at %d of %d bytes", ErrCorruptRecord, n, len(hdr))
		}
		return nil, fmt.Errorf("store: reading archive header: %w", err)
	}
	if [4]byte(hdr[:4]) != chunkedMagic {
		return nil, fmt.Errorf("store: %w: bad archive magic", ErrCorruptRecord)
	}
	if hdr[4] != chunkedVersion {
		return nil, fmt.Errorf("store: %w: unsupported archive version %d", ErrCorruptRecord, hdr[4])
	}
	a := &ChunkArchive{r: r}
	a.meta = ArchiveMeta{
		W:            int(binary.BigEndian.Uint32(hdr[5:9])),
		H:            int(binary.BigEndian.Uint32(hdr[9:13])),
		FPS:          int(binary.BigEndian.Uint32(hdr[13:17])),
		GOPSize:      int(binary.BigEndian.Uint32(hdr[17:21])),
		GOPsPerChunk: int(binary.BigEndian.Uint32(hdr[21:25])),
	}
	if a.meta.W <= 0 || a.meta.H <= 0 || a.meta.GOPSize < 1 || a.meta.GOPsPerChunk < 1 {
		return nil, fmt.Errorf("store: %w: invalid archive meta %+v", ErrCorruptRecord, a.meta)
	}
	off := int64(len(hdr))
	frames := 0
	for {
		rec, next, err := readChunkHeader(r, off)
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		rec.info.Index = len(a.recs)
		if rec.info.FirstFrame != frames {
			return nil, fmt.Errorf("store: %w: chunk %d starts at frame %d, want %d", ErrCorruptRecord, rec.info.Index, rec.info.FirstFrame, frames)
		}
		frames += rec.info.Frames
		a.recs = append(a.recs, rec)
		off = next
	}
	return a, nil
}

// OpenChunkArchive indexes a container through a seek-cursor reader. If r
// also implements io.ReaderAt (os.File, bytes.Reader do) it is used
// directly; otherwise reads are serialized behind a mutex-guarded
// seek-and-read adapter, so concurrent ReadChunk calls remain correct but
// lose their parallelism.
//
// Deprecated: use OpenChunkArchiveAt, which serves parallel readers without
// any serialization.
func OpenChunkArchive(r io.ReadSeeker) (*ChunkArchive, error) {
	if ra, ok := r.(io.ReaderAt); ok {
		return OpenChunkArchiveAt(ra)
	}
	return OpenChunkArchiveAt(&seekerAt{r: r})
}

// seekerAt adapts a bare io.ReadSeeker to io.ReaderAt by serializing
// seek+read pairs behind a mutex. It exists only for OpenChunkArchive
// compatibility; native ReaderAt implementations never pay this lock.
type seekerAt struct {
	mu sync.Mutex
	r  io.ReadSeeker
}

func (s *seekerAt) ReadAt(p []byte, off int64) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, err := s.r.Seek(off, io.SeekStart); err != nil {
		return 0, err
	}
	n, err := io.ReadFull(s.r, p)
	if err == io.ErrUnexpectedEOF {
		// The io.ReaderAt contract reports a short read at end of data
		// as io.EOF.
		err = io.EOF
	}
	return n, err
}

// readChunkHeader parses one record header at off, returning the index entry
// and the offset of the next record. It reads only the header bytes; the
// payload is hopped over by offset arithmetic. io.EOF reports a clean end of
// the container; any partial header is ErrCorruptRecord.
func readChunkHeader(r io.ReaderAt, off int64) (chunkRec, int64, error) {
	// A chunk header is at most 21 fixed bytes plus 255 stream entries of at
	// most 268 bytes each; the section reader bounds what one record may
	// consume without ever touching payload ranges (entries are read
	// front-to-back and sized before each read).
	sr := io.NewSectionReader(r, off, 21+255*(1+255+12))
	var fixed [21]byte
	if _, err := io.ReadFull(sr, fixed[:]); err != nil {
		if err == io.EOF {
			return chunkRec{}, 0, io.EOF
		}
		return chunkRec{}, 0, fmt.Errorf("store: %w: truncated chunk header at offset %d: %w", ErrCorruptRecord, off, err)
	}
	if [4]byte(fixed[:4]) != chunkMarker {
		return chunkRec{}, 0, fmt.Errorf("store: %w: bad chunk marker at offset %d", ErrCorruptRecord, off)
	}
	rec := chunkRec{
		info: ChunkInfo{
			FirstFrame: int(binary.BigEndian.Uint32(fixed[4:8])),
			Frames:     int(binary.BigEndian.Uint32(fixed[8:12])),
		},
		preciseLen: int64(binary.BigEndian.Uint32(fixed[12:16])),
		pivotLen:   int64(binary.BigEndian.Uint32(fixed[16:20])),
	}
	if rec.info.Frames < 1 || rec.info.Frames > 1<<20 {
		return chunkRec{}, 0, fmt.Errorf("store: %w: implausible chunk frame count %d", ErrCorruptRecord, rec.info.Frames)
	}
	nStreams := int(fixed[20])
	hdrLen := int64(len(fixed))
	payload := rec.preciseLen + rec.pivotLen
	for s := 0; s < nStreams; s++ {
		var nameLen [1]byte
		if _, err := io.ReadFull(sr, nameLen[:]); err != nil {
			return chunkRec{}, 0, fmt.Errorf("store: %w: truncated stream entry: %w", ErrCorruptRecord, err)
		}
		entry := make([]byte, int(nameLen[0])+12)
		if _, err := io.ReadFull(sr, entry); err != nil {
			return chunkRec{}, 0, fmt.Errorf("store: %w: truncated stream entry: %w", ErrCorruptRecord, err)
		}
		name := string(entry[:nameLen[0]])
		rs := streamRec{
			name:  name,
			bits:  int64(binary.BigEndian.Uint64(entry[nameLen[0] : nameLen[0]+8])),
			bytes: int64(binary.BigEndian.Uint32(entry[nameLen[0]+8:])),
		}
		if rs.bits < 0 || rs.bytes < 0 || rs.bits > rs.bytes*8 {
			return chunkRec{}, 0, fmt.Errorf("store: %w: stream %q: %d bits in %d bytes", ErrCorruptRecord, name, rs.bits, rs.bytes)
		}
		rec.streams = append(rec.streams, rs)
		hdrLen += 1 + int64(len(entry))
		payload += rs.bytes
	}
	rec.info.Offset = off + hdrLen
	rec.info.Length = payload
	return rec, rec.info.Offset + payload, nil
}

// Meta returns the sequence-level header.
func (a *ChunkArchive) Meta() ArchiveMeta { return a.meta }

// NumChunks returns the number of chunks in the container.
func (a *ChunkArchive) NumChunks() int { return len(a.recs) }

// TotalFrames sums the frame counts of every chunk.
func (a *ChunkArchive) TotalFrames() int {
	n := 0
	for _, rec := range a.recs {
		n += rec.info.Frames
	}
	return n
}

// Info returns the location of chunk i. Unknown indices report an error
// wrapping ErrChunkNotFound.
func (a *ChunkArchive) Info(i int) (ChunkInfo, error) {
	if i < 0 || i >= len(a.recs) {
		return ChunkInfo{}, fmt.Errorf("store: %w: chunk %d outside 0..%d", ErrChunkNotFound, i, len(a.recs)-1)
	}
	return a.recs[i].info, nil
}

// Close marks the archive closed: subsequent Info and ReadChunk calls fail
// with an error wrapping ErrArchiveClosed. The underlying reader belongs to
// the caller and is not touched — close it separately once Close returns
// and in-flight reads have drained. Close is idempotent.
func (a *ChunkArchive) Close() error {
	a.closed.Store(true)
	return nil
}

// ReadChunk reads and reassembles chunk i: the returned video carries
// chunk-local frame indices (its first frame is index 0) and decodes on its
// own, because chunk boundaries are closed-GOP boundaries. Exactly the
// chunk's payload byte range [Info(i).Offset, +Length) is read — other
// chunks' bytes are never touched. ReadChunk is lock-free and safe to call
// from any number of goroutines: each call reads through its own section
// reader over the shared io.ReaderAt. Unknown indices report
// ErrChunkNotFound, reads after Close report ErrArchiveClosed, and damaged
// payloads report ErrCorruptRecord; all are matched with errors.Is.
func (a *ChunkArchive) ReadChunk(i int) (*codec.Video, []core.FramePartition, error) {
	if a.closed.Load() {
		return nil, nil, fmt.Errorf("store: reading chunk %d: %w", i, ErrArchiveClosed)
	}
	if i < 0 || i >= len(a.recs) {
		return nil, nil, fmt.Errorf("store: %w: chunk %d outside 0..%d", ErrChunkNotFound, i, len(a.recs)-1)
	}
	rec := a.recs[i]
	r := io.NewSectionReader(a.r, rec.info.Offset, rec.info.Length)
	precise := make([]byte, rec.preciseLen)
	if _, err := io.ReadFull(r, precise); err != nil {
		return nil, nil, fmt.Errorf("store: chunk %d precise region: %w", i, err)
	}
	pivots := make([]byte, rec.pivotLen)
	if _, err := io.ReadFull(r, pivots); err != nil {
		return nil, nil, fmt.Errorf("store: chunk %d pivot tables: %w", i, err)
	}
	v, err := codec.UnmarshalPrecise(precise)
	if err != nil {
		return nil, nil, fmt.Errorf("store: %w: chunk %d precise region: %w", ErrCorruptRecord, i, err)
	}
	parts, err := core.UnmarshalPartitions(pivots)
	if err != nil {
		return nil, nil, fmt.Errorf("store: %w: chunk %d pivot tables: %w", ErrCorruptRecord, i, err)
	}
	if len(parts) != len(v.Frames) {
		return nil, nil, fmt.Errorf("store: %w: chunk %d: %d pivot tables for %d frames", ErrCorruptRecord, i, len(parts), len(v.Frames))
	}
	ss := &core.StreamSet{Parts: parts, Streams: map[string][]byte{}, Bits: map[string]int64{}}
	for _, rs := range rec.streams {
		data := make([]byte, rs.bytes)
		if _, err := io.ReadFull(r, data); err != nil {
			return nil, nil, fmt.Errorf("store: chunk %d stream %q: %w", i, rs.name, err)
		}
		ss.Streams[rs.name] = data
		ss.Bits[rs.name] = rs.bits
	}
	merged, err := ss.Merge(v)
	if err != nil {
		return nil, nil, fmt.Errorf("store: %w: chunk %d: %w", ErrCorruptRecord, i, err)
	}
	return merged, parts, nil
}

// AppendChunkWriter reopens an existing container for appending: it indexes
// the records already present, positions the stream at the end, and returns
// a writer that continues where the last chunk stopped.
func AppendChunkWriter(rw io.ReadWriteSeeker) (*ChunkWriter, error) {
	a, err := OpenChunkArchive(rw)
	if err != nil {
		return nil, err
	}
	end := int64(archiveHeaderLen)
	if n := len(a.recs); n > 0 {
		last := a.recs[n-1].info
		end = last.Offset + last.Length
	}
	if _, err := rw.Seek(end, io.SeekStart); err != nil {
		return nil, fmt.Errorf("store: seeking archive end: %w", err)
	}
	cw := &ChunkWriter{w: rw, meta: a.meta, off: end, frames: a.TotalFrames()}
	for _, rec := range a.recs {
		cw.chunks = append(cw.chunks, rec.info)
	}
	return cw, nil
}

func appendU32(b []byte, v uint32) []byte {
	return binary.BigEndian.AppendUint32(b, v)
}
