package store

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"sync/atomic"

	"videoapp/internal/codec"
	"videoapp/internal/core"
	"videoapp/internal/obs"
)

// Chunked archive container: the at-rest form of a streamed video, laid out
// so that any single closed-GOP chunk can be read, decoded and round-tripped
// without loading the rest — the unit a video server ships to clients.
//
//	magic "VACS" | version | W | H | FPS | GOPSize | GOPsPerChunk
//	per chunk:   marker "CHNK" | first frame | frame count
//	             | precise len | pivot len
//	             | precise CRC | pivot CRC          (version >= 2)
//	             | stream count
//	             | per stream: name len | name | bit count | byte len
//	             |             stream CRC            (version >= 2)
//	             | precise bytes | pivot bytes | stream bytes
//
// Each chunk record is self-describing and the payload lengths are all in
// its fixed-position header, so a reader indexes the whole container by
// hopping record headers (seeking past payloads) and then reads exactly
// one chunk's bytes to serve it. There is no trailing index to rewrite,
// which is what makes the container append-on-write: new chunks go at the
// end, concurrent readers keep working from their existing index.
//
// Version 2 adds a CRC-32C per region (precise, pivots, one per stream),
// stored in the record header — i.e. in the precisely-kept part of the
// container — so the read path can tell exactly which region a substrate
// error landed in: damage to an approximate stream is detected, isolated
// and degradable, while damage to the precise region is a hard data error.
// Version 1 containers remain readable; they just carry no checksums to
// verify.
//
// Within a chunk the split mirrors the paper's reliability boundary exactly
// as Archive does for a whole video: a precise region (headers with payload
// placeholders, MarshalPrecise form, plus the §4.4 pivot tables) and one
// approximate stream per ECC scheme (§5.3).

var chunkedMagic = [4]byte{'V', 'A', 'C', 'S'}
var chunkMarker = [4]byte{'C', 'H', 'N', 'K'}

const chunkedVersion = 2

// castagnoli is the CRC-32C table shared by the writer and the verifier.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ArchiveMeta is the sequence-level header of a chunked archive.
type ArchiveMeta struct {
	// W, H, FPS describe the coded sequence.
	W, H, FPS int
	// GOPSize is the encoder's I-frame interval; chunk boundaries are
	// multiples of it, which is what makes chunks independently decodable.
	GOPSize int
	// GOPsPerChunk is the nominal chunk granularity (the last chunk may be
	// shorter).
	GOPsPerChunk int
}

// ChunkInfo locates one chunk inside the container.
type ChunkInfo struct {
	// Index is the chunk's position in append order.
	Index int
	// FirstFrame and Frames give the chunk's coded-frame span in the whole
	// video.
	FirstFrame, Frames int
	// Offset and Length delimit the chunk's payload bytes (precise region,
	// pivot tables and approximate streams) within the container.
	Offset, Length int64
}

// ChunkWriter appends chunks to an archive container. It only ever writes
// forward — the header goes out once at construction and every Append emits
// one self-describing record — so it runs against any io.Writer, including
// a network connection or an append-only log.
type ChunkWriter struct {
	w       io.Writer
	meta    ArchiveMeta
	version byte
	off     int64
	chunks  []ChunkInfo
	frames  int
}

// NewChunkWriter writes the container header and returns a writer ready to
// append chunks. New containers are written at the current format version
// (with per-region checksums).
func NewChunkWriter(w io.Writer, meta ArchiveMeta) (*ChunkWriter, error) {
	return newChunkWriter(w, meta, chunkedVersion)
}

func newChunkWriter(w io.Writer, meta ArchiveMeta, version byte) (*ChunkWriter, error) {
	if meta.W <= 0 || meta.H <= 0 || meta.GOPSize < 1 || meta.GOPsPerChunk < 1 {
		return nil, fmt.Errorf("store: invalid archive meta %+v", meta)
	}
	hdr := make([]byte, 0, archiveHeaderLen)
	hdr = append(hdr, chunkedMagic[:]...)
	hdr = append(hdr, version)
	hdr = appendU32(hdr, uint32(meta.W))
	hdr = appendU32(hdr, uint32(meta.H))
	hdr = appendU32(hdr, uint32(meta.FPS))
	hdr = appendU32(hdr, uint32(meta.GOPSize))
	hdr = appendU32(hdr, uint32(meta.GOPsPerChunk))
	if _, err := w.Write(hdr); err != nil {
		return nil, fmt.Errorf("store: writing archive header: %w", err)
	}
	return &ChunkWriter{w: w, meta: meta, version: version, off: int64(len(hdr))}, nil
}

// Meta returns the sequence-level header.
func (cw *ChunkWriter) Meta() ArchiveMeta { return cw.meta }

// Chunks lists the records appended so far.
func (cw *ChunkWriter) Chunks() []ChunkInfo { return cw.chunks }

// Frames returns the total frame count appended so far.
func (cw *ChunkWriter) Frames() int { return cw.frames }

// Append writes one chunk: a closed-GOP video (frame indices chunk-local)
// and its partition layout. firstFrame is the chunk's position in the whole
// video; chunks must arrive in order, each starting where the previous one
// ended.
func (cw *ChunkWriter) Append(v *codec.Video, parts []core.FramePartition, firstFrame int) error {
	if firstFrame != cw.frames {
		return fmt.Errorf("store: chunk starts at frame %d, want %d (chunks must append in order)", firstFrame, cw.frames)
	}
	if len(v.Frames) == 0 {
		return fmt.Errorf("store: empty chunk")
	}
	ss, err := core.SplitStreams(v, parts)
	if err != nil {
		return err
	}
	pivots, err := core.MarshalPartitions(parts)
	if err != nil {
		return err
	}
	precise := codec.MarshalPrecise(v)

	names := ss.SchemeNames()
	rec := make([]byte, 0, 64)
	rec = append(rec, chunkMarker[:]...)
	rec = appendU32(rec, uint32(firstFrame))
	rec = appendU32(rec, uint32(len(v.Frames)))
	rec = appendU32(rec, uint32(len(precise)))
	rec = appendU32(rec, uint32(len(pivots)))
	if cw.version >= 2 {
		rec = appendU32(rec, crc32.Checksum(precise, castagnoli))
		rec = appendU32(rec, crc32.Checksum(pivots, castagnoli))
	}
	rec = append(rec, byte(len(names)))
	for _, name := range names {
		if len(name) > 255 {
			return fmt.Errorf("store: scheme name %q too long", name)
		}
		rec = append(rec, byte(len(name)))
		rec = append(rec, name...)
		rec = binary.BigEndian.AppendUint64(rec, uint64(ss.Bits[name]))
		rec = appendU32(rec, uint32(len(ss.Streams[name])))
		if cw.version >= 2 {
			rec = appendU32(rec, crc32.Checksum(ss.Streams[name], castagnoli))
		}
	}
	if _, err := cw.w.Write(rec); err != nil {
		return fmt.Errorf("store: writing chunk header: %w", err)
	}
	payloadOff := cw.off + int64(len(rec))
	var payload int64
	for _, blob := range [][]byte{precise, pivots} {
		if _, err := cw.w.Write(blob); err != nil {
			return fmt.Errorf("store: writing chunk: %w", err)
		}
		payload += int64(len(blob))
	}
	for _, name := range names {
		if _, err := cw.w.Write(ss.Streams[name]); err != nil {
			return fmt.Errorf("store: writing chunk stream %q: %w", name, err)
		}
		payload += int64(len(ss.Streams[name]))
	}
	cw.chunks = append(cw.chunks, ChunkInfo{
		Index: len(cw.chunks), FirstFrame: firstFrame, Frames: len(v.Frames),
		Offset: payloadOff, Length: payload,
	})
	cw.off = payloadOff + payload
	cw.frames += len(v.Frames)
	return nil
}

// chunkRec is the reader-side index entry for one chunk.
type chunkRec struct {
	info       ChunkInfo
	preciseLen int64
	pivotLen   int64
	preciseCRC uint32
	pivotCRC   uint32
	streams    []streamRec
}

type streamRec struct {
	name  string
	bits  int64
	bytes int64
	crc   uint32
}

// ChunkArchive is the random-access reader over a chunked container,
// backed by an io.ReaderAt so that it is safe for unbounded concurrent use:
// OpenChunkArchiveAt builds the index from the record headers alone —
// payload bytes are hopped over, never read — and ReadChunk then touches
// exactly one chunk's bytes, sharing no cursor with other readers. Every
// method except Close may be called from any number of goroutines
// simultaneously.
//
// The archive is the unit of fault tolerance: reads retry transient
// failures under the configured FaultPolicy, verify per-region checksums
// on version-2 containers, fall back to the mirror reader when one is
// configured (WithMirror), and — through ReadChunkContext — degrade
// gracefully when only approximate streams are damaged. Scrub walks every
// record proactively and repairs damage in place from the mirror.
type ChunkArchive struct {
	r       io.ReaderAt
	mirror  io.ReaderAt
	policy  FaultPolicy
	meta    ArchiveMeta
	version byte
	recs    []chunkRec
	closed  atomic.Bool
}

// ArchiveOption configures a ChunkArchive at open time.
type ArchiveOption func(*ChunkArchive)

// WithFaultPolicy sets the archive's fault policy: retry counts, backoff,
// and checksum verification for every read that is not running under a
// context carrying its own policy (ContextWithFaultPolicy).
func WithFaultPolicy(p FaultPolicy) ArchiveOption {
	return func(a *ChunkArchive) { a.policy = p }
}

// WithMirror attaches a mirror reader holding a replica of the same
// container bytes. When a region read from the primary exhausts its
// retries (I/O failure or checksum mismatch), the read path fetches the
// region from the mirror instead; Scrub additionally repairs the primary
// in place from the mirror when the primary also implements io.WriterAt.
func WithMirror(r io.ReaderAt) ArchiveOption {
	return func(a *ChunkArchive) { a.mirror = r }
}

// archiveHeaderLen is the fixed container header size (magic, version and
// the five ArchiveMeta fields).
const archiveHeaderLen = 25

// OpenChunkArchiveAt indexes a container produced by ChunkWriter. The
// returned archive performs all reads through r's positionless ReadAt, so
// concurrent ReadChunk calls never contend on a seek cursor. Structural
// damage — a zero-length or truncated file, bad magic, a damaged chunk
// header — is reported as an error wrapping ErrCorruptRecord; underlying
// I/O failures are wrapped with %w and match with errors.Is.
func OpenChunkArchiveAt(r io.ReaderAt, opts ...ArchiveOption) (*ChunkArchive, error) {
	a := &ChunkArchive{r: r}
	for _, o := range opts {
		o(a)
	}
	// The index scan rides the same retry ladder as region reads, so a
	// device that fails transiently at open time does not kill the open;
	// EOF passes through untouched (it is the scan's end-of-container
	// signal, and truncation detection depends on it).
	scan := io.ReaderAt(&retryAt{r: r, pol: a.policy.withDefaults()})
	var hdr [archiveHeaderLen]byte
	if n, err := scan.ReadAt(hdr[:], 0); err != nil {
		//vetvideoapp:allow wrapeof — this is the mapping site: raw EOF from the backend becomes ErrCorruptRecord here
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return nil, fmt.Errorf("store: %w: archive header truncated at %d of %d bytes", ErrCorruptRecord, n, len(hdr))
		}
		return nil, fmt.Errorf("store: reading archive header: %w", err)
	}
	if [4]byte(hdr[:4]) != chunkedMagic {
		return nil, fmt.Errorf("store: %w: bad archive magic", ErrCorruptRecord)
	}
	if hdr[4] < 1 || hdr[4] > chunkedVersion {
		return nil, fmt.Errorf("store: %w: unsupported archive version %d", ErrCorruptRecord, hdr[4])
	}
	a.version = hdr[4]
	a.meta = ArchiveMeta{
		W:            int(binary.BigEndian.Uint32(hdr[5:9])),
		H:            int(binary.BigEndian.Uint32(hdr[9:13])),
		FPS:          int(binary.BigEndian.Uint32(hdr[13:17])),
		GOPSize:      int(binary.BigEndian.Uint32(hdr[17:21])),
		GOPsPerChunk: int(binary.BigEndian.Uint32(hdr[21:25])),
	}
	if a.meta.W <= 0 || a.meta.H <= 0 || a.meta.GOPSize < 1 || a.meta.GOPsPerChunk < 1 {
		return nil, fmt.Errorf("store: %w: invalid archive meta %+v", ErrCorruptRecord, a.meta)
	}
	off := int64(archiveHeaderLen)
	frames := 0
	for {
		rec, next, err := readChunkHeader(scan, off, a.version)
		//vetvideoapp:allow wrapeof — readChunkHeader's io.EOF is the internal clean-end-of-container signal, consumed (never propagated) here
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		rec.info.Index = len(a.recs)
		if rec.info.FirstFrame != frames {
			return nil, fmt.Errorf("store: %w: chunk %d starts at frame %d, want %d", ErrCorruptRecord, rec.info.Index, rec.info.FirstFrame, frames)
		}
		frames += rec.info.Frames
		a.recs = append(a.recs, rec)
		off = next
	}
	return a, nil
}

// retryAt wraps a ReaderAt with the fault policy's retry ladder for the
// open-time index scan: transient errors are retried with the same backoff
// as region reads, while EOF-class results return immediately — they are
// how the scan detects the end (or truncation) of the container.
type retryAt struct {
	r   io.ReaderAt
	pol FaultPolicy
}

func (ra *retryAt) ReadAt(p []byte, off int64) (int, error) {
	var n int
	var err error
	for attempt := 0; attempt <= ra.pol.MaxRetries; attempt++ {
		if attempt > 0 {
			//vetvideoapp:allow ctxfirst — retryAt implements io.ReaderAt, whose signature cannot carry a context; only the open-time index scan runs through it
			if serr := sleepBackoff(context.Background(), ra.pol, off, attempt); serr != nil {
				break
			}
		}
		n, err = ra.r.ReadAt(p, off)
		//vetvideoapp:allow wrapeof — EOF-class results pass through unmapped by design: they are the scan's end/truncation signal, classified by the callers above
		if err == nil || errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
			return n, err
		}
	}
	return n, err
}

// noEOF converts a clean io.EOF into io.ErrUnexpectedEOF: running out of
// bytes inside a record is structural truncation, not a clean end of the
// container, and callers probing errors.Is(err, io.EOF) for end-of-archive
// must never match a corruption report.
func noEOF(err error) error {
	//vetvideoapp:allow wrapeof — noEOF is the designated EOF-normalization helper; its callers wrap the result under ErrCorruptRecord
	if err == io.EOF {
		//vetvideoapp:allow wrapeof — see above: normalized EOF is immediately wrapped by every caller
		return io.ErrUnexpectedEOF
	}
	return err
}

// readChunkHeader parses one record header at off, returning the index entry
// and the offset of the next record. It reads only the header bytes; the
// payload is hopped over by offset arithmetic. io.EOF reports a clean end of
// the container; any partial header is ErrCorruptRecord.
func readChunkHeader(r io.ReaderAt, off int64, version byte) (chunkRec, int64, error) {
	fixedLen := 21
	entryExtra := 12
	if version >= 2 {
		fixedLen = 29   // + precise CRC + pivot CRC
		entryExtra = 16 // + stream CRC
	}
	// A chunk header is the fixed part plus at most 255 stream entries of
	// bounded size; the section reader bounds what one record may consume
	// without ever touching payload ranges (entries are read front-to-back
	// and sized before each read).
	sr := io.NewSectionReader(r, off, int64(fixedLen+255*(1+255+entryExtra)))
	fixed := make([]byte, fixedLen)
	if _, err := io.ReadFull(sr, fixed); err != nil {
		//vetvideoapp:allow wrapeof — a clean EOF before any header byte is the end-of-container protocol with OpenChunkArchiveAt, which consumes it; partial headers fall through to ErrCorruptRecord
		if err == io.EOF {
			//vetvideoapp:allow wrapeof — see above: protocol signal to the only caller, never escapes the parser
			return chunkRec{}, 0, io.EOF
		}
		return chunkRec{}, 0, fmt.Errorf("store: %w: truncated chunk header at offset %d: %w", ErrCorruptRecord, off, err)
	}
	if [4]byte(fixed[:4]) != chunkMarker {
		return chunkRec{}, 0, fmt.Errorf("store: %w: bad chunk marker at offset %d", ErrCorruptRecord, off)
	}
	rec := chunkRec{
		info: ChunkInfo{
			FirstFrame: int(binary.BigEndian.Uint32(fixed[4:8])),
			Frames:     int(binary.BigEndian.Uint32(fixed[8:12])),
		},
		preciseLen: int64(binary.BigEndian.Uint32(fixed[12:16])),
		pivotLen:   int64(binary.BigEndian.Uint32(fixed[16:20])),
	}
	if version >= 2 {
		rec.preciseCRC = binary.BigEndian.Uint32(fixed[20:24])
		rec.pivotCRC = binary.BigEndian.Uint32(fixed[24:28])
	}
	if rec.info.Frames < 1 || rec.info.Frames > 1<<20 {
		return chunkRec{}, 0, fmt.Errorf("store: %w: implausible chunk frame count %d", ErrCorruptRecord, rec.info.Frames)
	}
	nStreams := int(fixed[fixedLen-1])
	hdrLen := int64(fixedLen)
	payload := rec.preciseLen + rec.pivotLen
	for s := 0; s < nStreams; s++ {
		var nameLen [1]byte
		if _, err := io.ReadFull(sr, nameLen[:]); err != nil {
			return chunkRec{}, 0, fmt.Errorf("store: %w: truncated stream entry: %w", ErrCorruptRecord, noEOF(err))
		}
		// Widen before any offset arithmetic: byte addition wraps mod 256,
		// which for names longer than 247 bytes would invert the slice
		// bounds below and panic instead of parsing.
		nl := int(nameLen[0])
		entry := make([]byte, nl+entryExtra)
		if _, err := io.ReadFull(sr, entry); err != nil {
			return chunkRec{}, 0, fmt.Errorf("store: %w: truncated stream entry: %w", ErrCorruptRecord, noEOF(err))
		}
		name := string(entry[:nl])
		rs := streamRec{
			name:  name,
			bits:  int64(binary.BigEndian.Uint64(entry[nl : nl+8])),
			bytes: int64(binary.BigEndian.Uint32(entry[nl+8 : nl+12])),
		}
		if version >= 2 {
			rs.crc = binary.BigEndian.Uint32(entry[nl+12:])
		}
		if rs.bits < 0 || rs.bytes < 0 || rs.bits > rs.bytes*8 {
			return chunkRec{}, 0, fmt.Errorf("store: %w: stream %q: %d bits in %d bytes", ErrCorruptRecord, name, rs.bits, rs.bytes)
		}
		rec.streams = append(rec.streams, rs)
		hdrLen += 1 + int64(len(entry))
		payload += rs.bytes
	}
	rec.info.Offset = off + hdrLen
	rec.info.Length = payload
	return rec, rec.info.Offset + payload, nil
}

// Meta returns the sequence-level header.
func (a *ChunkArchive) Meta() ArchiveMeta { return a.meta }

// Version returns the container format version (1: no checksums,
// 2: per-region CRC-32C).
func (a *ChunkArchive) Version() int { return int(a.version) }

// NumChunks returns the number of chunks in the container.
func (a *ChunkArchive) NumChunks() int { return len(a.recs) }

// TotalFrames sums the frame counts of every chunk.
func (a *ChunkArchive) TotalFrames() int {
	n := 0
	for _, rec := range a.recs {
		n += rec.info.Frames
	}
	return n
}

// Info returns the location of chunk i. Unknown indices report an error
// wrapping ErrChunkNotFound.
func (a *ChunkArchive) Info(i int) (ChunkInfo, error) {
	if i < 0 || i >= len(a.recs) {
		return ChunkInfo{}, fmt.Errorf("store: %w: chunk %d outside 0..%d", ErrChunkNotFound, i, len(a.recs)-1)
	}
	return a.recs[i].info, nil
}

// Close marks the archive closed: subsequent Info and ReadChunk calls fail
// with an error wrapping ErrArchiveClosed. The underlying reader belongs to
// the caller and is not touched — close it separately once Close returns
// and in-flight reads have drained. Close is idempotent.
func (a *ChunkArchive) Close() error {
	a.closed.Store(true)
	return nil
}

// resolvePolicy picks the effective fault policy for one call: a context
// override wins, then the archive's configured policy, then the defaults.
func (a *ChunkArchive) resolvePolicy(ctx context.Context) FaultPolicy {
	if p, ok := FaultPolicyFromContext(ctx); ok {
		return p.withDefaults()
	}
	return a.policy.withDefaults()
}

// verified reports whether region bytes match their recorded checksum;
// containers without checksums (version 1) always verify.
func (a *ChunkArchive) verified(pol FaultPolicy, data []byte, crc uint32) bool {
	if a.version < 2 || pol.SkipVerify {
		return true
	}
	return crc32.Checksum(data, castagnoli) == crc
}

// readRegion reads one region of one record — the precise bytes, the pivot
// tables, or a single approximate stream — with the full fault-tolerance
// ladder: verify-on-read, retry with exponential backoff and deterministic
// jitter on transient failures and checksum mismatches, then the mirror
// (nil disables the mirror rung; Scrub exploits that to probe the primary
// alone). EOF inside the region means the container itself is truncated,
// which no retry can fix: it reports ErrCorruptRecord immediately. An
// exhausted ladder reports ErrCorruptRecord when the last failure was a
// checksum mismatch and ErrReadFailed when the device kept erroring.
func (a *ChunkArchive) readRegion(ctx context.Context, pol FaultPolicy, o obs.Observer, mirror io.ReaderAt, off, n int64, crc uint32, label string) ([]byte, error) {
	buf := make([]byte, n)
	// read attempts one fetch+verify from r; truncated reports the
	// non-retryable case (the container ends inside the region — no retry
	// can grow the file).
	read := func(r io.ReaderAt) (truncated bool, err error) {
		m, err := r.ReadAt(buf, off)
		if err != nil {
			//vetvideoapp:allow wrapeof — this is the region-read mapping site: EOF inside a region becomes ErrCorruptRecord truncation right here
			if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
				return true, fmt.Errorf("%w: %s truncated at %d of %d bytes", ErrCorruptRecord, label, m, n)
			}
			return false, err
		}
		if !a.verified(pol, buf, crc) {
			o.Counter(obs.CtrCRCFailures, label, 1)
			return false, fmt.Errorf("%w: %s checksum mismatch", ErrCorruptRecord, label)
		}
		return false, nil
	}

	var lastErr error
	for attempt := 0; attempt <= pol.MaxRetries; attempt++ {
		if attempt > 0 {
			o.Counter(obs.CtrReadRetries, "", 1)
			if err := sleepBackoff(ctx, pol, off, attempt); err != nil {
				return nil, err
			}
		}
		truncated, err := read(a.r)
		if err == nil {
			return buf, nil
		}
		lastErr = err
		if truncated && mirror == nil {
			return nil, fmt.Errorf("store: %w", err)
		}
		if truncated {
			break
		}
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
	}
	if mirror != nil {
		if _, err := read(mirror); err == nil {
			o.Counter(obs.CtrMirrorReads, "", 1)
			return buf, nil
		}
	}
	if errors.Is(lastErr, ErrCorruptRecord) {
		return nil, fmt.Errorf("store: %w", lastErr)
	}
	return nil, fmt.Errorf("store: %w: %s: %v", ErrReadFailed, label, lastErr)
}

// ChunkRead is the result of one fault-tolerant chunk read.
type ChunkRead struct {
	// Video carries chunk-local frame indices and decodes on its own.
	Video *codec.Video
	// Parts is the chunk's pivot layout.
	Parts []core.FramePartition
	// Degraded lists the approximate streams (by scheme name) that failed
	// verification after retries and the mirror, and were therefore
	// replaced by zeroes: the video decodes, at reduced quality, instead
	// of failing — the paper's degradation contract. Empty for a fully
	// verified read.
	Degraded []string
}

// ReadChunkContext reads and reassembles chunk i under the effective fault
// policy (context override, then the archive's, then defaults): every
// region read retries transient failures with backoff, verifies its
// CRC on version-2 containers, and falls back to the mirror. Damage that
// survives all of that is classified by the reliability boundary: the
// precise region and pivot tables are required — their loss is
// ErrCorruptRecord (or ErrReadFailed when the device, not the data, kept
// failing) — while a damaged approximate stream is zero-filled and
// reported in ChunkRead.Degraded, so the caller still gets a decodable
// video carrying every verified bit.
func (a *ChunkArchive) ReadChunkContext(ctx context.Context, i int) (ChunkRead, error) {
	if a.closed.Load() {
		return ChunkRead{}, fmt.Errorf("store: reading chunk %d: %w", i, ErrArchiveClosed)
	}
	if i < 0 || i >= len(a.recs) {
		return ChunkRead{}, fmt.Errorf("store: %w: chunk %d outside 0..%d", ErrChunkNotFound, i, len(a.recs)-1)
	}
	pol := a.resolvePolicy(ctx)
	o := obs.From(ctx)
	rec := a.recs[i]

	off := rec.info.Offset
	precise, err := a.readRegion(ctx, pol, o, a.mirror, off, rec.preciseLen, rec.preciseCRC, "precise")
	if err != nil {
		return ChunkRead{}, fmt.Errorf("store: chunk %d precise region: %w", i, err)
	}
	pivots, err := a.readRegion(ctx, pol, o, a.mirror, off+rec.preciseLen, rec.pivotLen, rec.pivotCRC, "pivots")
	if err != nil {
		return ChunkRead{}, fmt.Errorf("store: chunk %d pivot tables: %w", i, err)
	}
	v, err := codec.UnmarshalPrecise(precise)
	if err != nil {
		return ChunkRead{}, fmt.Errorf("store: %w: chunk %d precise region: %w", ErrCorruptRecord, i, err)
	}
	parts, err := core.UnmarshalPartitions(pivots)
	if err != nil {
		return ChunkRead{}, fmt.Errorf("store: %w: chunk %d pivot tables: %w", ErrCorruptRecord, i, err)
	}
	if len(parts) != len(v.Frames) {
		return ChunkRead{}, fmt.Errorf("store: %w: chunk %d: %d pivot tables for %d frames", ErrCorruptRecord, i, len(parts), len(v.Frames))
	}
	ss := &core.StreamSet{Parts: parts, Streams: map[string][]byte{}, Bits: map[string]int64{}}
	var degraded []string
	soff := off + rec.preciseLen + rec.pivotLen
	for _, rs := range rec.streams {
		data, err := a.readRegion(ctx, pol, o, a.mirror, soff, rs.bytes, rs.crc, rs.name)
		if err != nil {
			if ctx.Err() != nil {
				return ChunkRead{}, ctx.Err()
			}
			// The reliability boundary: an approximate stream that cannot
			// be read or verified costs quality, never availability. Zero
			// its bits and let the error-resilient decoder conceal.
			data = make([]byte, rs.bytes)
			degraded = append(degraded, rs.name)
			o.Counter(obs.CtrDegradedStreams, rs.name, 1)
		}
		ss.Streams[rs.name] = data
		ss.Bits[rs.name] = rs.bits
		soff += rs.bytes
	}
	merged, err := ss.Merge(v)
	if err != nil {
		return ChunkRead{}, fmt.Errorf("store: %w: chunk %d: %w", ErrCorruptRecord, i, err)
	}
	return ChunkRead{Video: merged, Parts: parts, Degraded: degraded}, nil
}

// ReadChunk is the strict form of ReadChunkContext: it runs the same
// fault-tolerance ladder (retries, verification, mirror) under the
// archive's policy, but treats any unrecovered damage — including a
// degradable approximate stream — as an error wrapping ErrCorruptRecord.
// The returned video carries chunk-local frame indices (its first frame is
// index 0) and decodes on its own, because chunk boundaries are closed-GOP
// boundaries. ReadChunk is lock-free and safe to call from any number of
// goroutines. Unknown indices report ErrChunkNotFound and reads after
// Close report ErrArchiveClosed; all are matched with errors.Is.
func (a *ChunkArchive) ReadChunk(i int) (*codec.Video, []core.FramePartition, error) {
	//vetvideoapp:allow ctxfirst — ReadChunk is the documented context-less convenience form of ReadChunkContext
	cr, err := a.ReadChunkContext(context.Background(), i)
	if err != nil {
		return nil, nil, err
	}
	if len(cr.Degraded) > 0 {
		return nil, nil, fmt.Errorf("store: %w: chunk %d: streams %v failed verification", ErrCorruptRecord, i, cr.Degraded)
	}
	return cr.Video, cr.Parts, nil
}

// AppendChunkWriter reopens an existing container for appending: it indexes
// the records already present, positions the stream at the end, and returns
// a writer that continues where the last chunk stopped, at the container's
// own format version (a version-1 container keeps accumulating version-1
// records; records of mixed layouts never share a container). rw must also
// implement io.ReaderAt (os.File does) so the index scan can share the
// lock-free read path; a seek-only stream cannot be appended to.
func AppendChunkWriter(rw io.ReadWriteSeeker) (*ChunkWriter, error) {
	ra, ok := rw.(io.ReaderAt)
	if !ok {
		return nil, fmt.Errorf("store: append target %T does not implement io.ReaderAt", rw)
	}
	a, err := OpenChunkArchiveAt(ra)
	if err != nil {
		return nil, err
	}
	end := int64(archiveHeaderLen)
	if n := len(a.recs); n > 0 {
		last := a.recs[n-1].info
		end = last.Offset + last.Length
	}
	if _, err := rw.Seek(end, io.SeekStart); err != nil {
		return nil, fmt.Errorf("store: seeking archive end: %w", err)
	}
	cw := &ChunkWriter{w: rw, meta: a.meta, version: a.version, off: end, frames: a.TotalFrames()}
	for _, rec := range a.recs {
		cw.chunks = append(cw.chunks, rec.info)
	}
	return cw, nil
}

func appendU32(b []byte, v uint32) []byte {
	return binary.BigEndian.AppendUint32(b, v)
}
