package store

import (
	"bytes"
	"context"
	"errors"
	"math"
	"math/rand"
	"testing"

	"videoapp/internal/codec"
	"videoapp/internal/core"
	"videoapp/internal/mlc"
)

// TestStoreContextDeterministicAcrossWorkers is the core reproducibility
// guarantee of the parallel storage path: for a fixed seed, the stored
// payload bytes and the flip count are identical at every worker count.
func TestStoreContextDeterministicAcrossWorkers(t *testing.T) {
	v, _, parts, _ := buildVideo(t)
	ctx := context.Background()
	for _, cfg := range []Config{
		{Substrate: mlc.Default(), Assignment: core.PaperAssignment()},
		{Substrate: mlc.Default(), Assignment: core.PaperAssignment(), BlockAccurate: true},
	} {
		s, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		ref, refFlips, err := s.StoreContext(ctx, v, parts, StoreOpts{Seed: 42, Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		if refFlips <= 0 {
			t.Fatalf("block-accurate=%v: expected some residual flips, got %d", cfg.BlockAccurate, refFlips)
		}
		for _, workers := range []int{2, 8} {
			got, flips, err := s.StoreContext(ctx, v, parts, StoreOpts{Seed: 42, Workers: workers})
			if err != nil {
				t.Fatal(err)
			}
			if flips != refFlips {
				t.Fatalf("block-accurate=%v workers=%d: %d flips, want %d", cfg.BlockAccurate, workers, flips, refFlips)
			}
			for f := range ref.Frames {
				if !bytes.Equal(ref.Frames[f].Payload, got.Frames[f].Payload) {
					t.Fatalf("block-accurate=%v workers=%d: frame %d payload differs", cfg.BlockAccurate, workers, f)
				}
			}
		}
		// A different seed must give a different error pattern.
		other, _, err := s.StoreContext(ctx, v, parts, StoreOpts{Seed: 43, Workers: 4})
		if err != nil {
			t.Fatal(err)
		}
		same := true
		for f := range ref.Frames {
			if !bytes.Equal(ref.Frames[f].Payload, other.Frames[f].Payload) {
				same = false
				break
			}
		}
		if same {
			t.Fatal("independent seeds produced identical error patterns")
		}
	}
}

// TestStoreContextFrameOffset pins the chunked-store contract: storing a
// tail slice of the video with FrameOffset set to its global first-frame
// index injects exactly the errors the full-video round trip injects into
// those frames.
func TestStoreContextFrameOffset(t *testing.T) {
	v, _, parts, _ := buildVideo(t)
	s := variableSystem(t)
	ctx := context.Background()

	ref, refFlips, err := s.StoreContext(ctx, v, parts, StoreOpts{Seed: 42, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(v.Frames) < 3 {
		t.Fatalf("need >= 3 frames, have %d", len(v.Frames))
	}
	cut := len(v.Frames) / 2
	sub := &codec.Video{Params: v.Params, W: v.W, H: v.H, FPS: v.FPS, Frames: v.Frames[cut:]}
	got, flips, err := s.StoreContext(ctx, sub, parts[cut:], StoreOpts{Seed: 42, Workers: 4, FrameOffset: cut})
	if err != nil {
		t.Fatal(err)
	}
	for f := range got.Frames {
		if !bytes.Equal(ref.Frames[cut+f].Payload, got.Frames[f].Payload) {
			t.Fatalf("frame %d payload differs from batch round trip", cut+f)
		}
	}
	if flips > refFlips {
		t.Fatalf("tail flips %d exceed total %d", flips, refFlips)
	}
	// The head slice with offset 0 injects the remaining flips, so the two
	// chunked halves reproduce the batch round trip exactly.
	head := &codec.Video{Params: v.Params, W: v.W, H: v.H, FPS: v.FPS, Frames: v.Frames[:cut]}
	gotHead, headFlips, err := s.StoreContext(ctx, head, parts[:cut], StoreOpts{Seed: 42, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	for f := range gotHead.Frames {
		if !bytes.Equal(ref.Frames[f].Payload, gotHead.Frames[f].Payload) {
			t.Fatalf("head frame %d payload differs from batch round trip", f)
		}
	}
	if headFlips+flips != refFlips {
		t.Fatalf("chunked flips %d+%d != batch %d", headFlips, flips, refFlips)
	}
}

func TestStoreContextDoesNotMutateInput(t *testing.T) {
	v, _, parts, _ := buildVideo(t)
	s := variableSystem(t)
	before := make([][]byte, len(v.Frames))
	for f := range v.Frames {
		before[f] = append([]byte(nil), v.Frames[f].Payload...)
	}
	if _, _, err := s.StoreContext(context.Background(), v, parts, StoreOpts{Seed: 7, Workers: 8}); err != nil {
		t.Fatal(err)
	}
	for f := range v.Frames {
		if !bytes.Equal(before[f], v.Frames[f].Payload) {
			t.Fatalf("frame %d input payload mutated", f)
		}
	}
}

func TestFootprintContextMatchesSerial(t *testing.T) {
	v, _, parts, pixels := buildVideo(t)
	s := variableSystem(t)
	ref, err := s.Footprint(v, parts, pixels)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 8} {
		got, err := s.FootprintContext(context.Background(), v, parts, pixels, workers)
		if err != nil {
			t.Fatal(err)
		}
		if got.PayloadBits != ref.PayloadBits || got.HeaderBits != ref.HeaderBits ||
			got.Cells != ref.Cells || got.ParityBits != ref.ParityBits ||
			math.Abs(got.CellsPerPixel-ref.CellsPerPixel) != 0 ||
			got.ECCOverhead != ref.ECCOverhead {
			t.Fatalf("workers=%d: stats differ: %+v vs %+v", workers, got, ref)
		}
		if len(got.PerScheme) != len(ref.PerScheme) {
			t.Fatalf("workers=%d: per-scheme keys differ", workers)
		}
		for name, bits := range ref.PerScheme {
			if got.PerScheme[name] != bits {
				t.Fatalf("workers=%d: scheme %s: %d vs %d bits", workers, name, got.PerScheme[name], bits)
			}
		}
	}
}

func TestPartitionMismatchSentinel(t *testing.T) {
	v, _, parts, pixels := buildVideo(t)
	s := variableSystem(t)
	if _, err := s.Footprint(v, parts[:1], pixels); !errors.Is(err, ErrPartitionMismatch) {
		t.Fatalf("Footprint: got %v", err)
	}
	if _, _, err := s.StoreContext(context.Background(), v, parts[:1], StoreOpts{Seed: 1, Workers: 2}); !errors.Is(err, ErrPartitionMismatch) {
		t.Fatalf("StoreContext: got %v", err)
	}
}

func TestStoreContextCancelled(t *testing.T) {
	v, _, parts, _ := buildVideo(t)
	s := variableSystem(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := s.StoreContext(ctx, v, parts, StoreOpts{Seed: 1, Workers: 2}); !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v", err)
	}
	if _, _, err := s.StoreContext(ctx, v, parts, StoreOpts{Rng: rand.New(rand.NewSource(1))}); !errors.Is(err, context.Canceled) {
		t.Fatalf("rng path: got %v", err)
	}
	if _, err := s.FootprintContext(ctx, v, parts, 100, 2); !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v", err)
	}
}

// TestStoreContextRoundTripDecodes makes sure the seeded path composes with
// the decoder exactly like the rng path does.
func TestStoreContextRoundTripDecodes(t *testing.T) {
	v, _, parts, _ := buildVideo(t)
	s := variableSystem(t)
	stored, _, err := s.StoreContext(context.Background(), v, parts, StoreOpts{Seed: 3, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := codec.Decode(stored); err != nil {
		t.Fatal(err)
	}
}
