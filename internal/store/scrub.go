package store

import (
	"context"
	"errors"
	"fmt"
	"io"

	"videoapp/internal/obs"
)

// ChunkHealth is the scrub verdict for one chunk: which of its regions
// (the precise bytes, the pivot tables, and each approximate stream, by
// label) could not be read and verified, and which of those the scrubber
// repaired in place from the mirror.
type ChunkHealth struct {
	// Index is the chunk's position in the archive.
	Index int
	// Regions is the number of regions examined (2 + stream count).
	Regions int
	// Damaged lists region labels that failed verification (or could not
	// be read at all) from the primary after the policy's retries.
	Damaged []string
	// Repaired lists the subset of Damaged that was rewritten from a
	// verified mirror copy and re-verified on the primary.
	Repaired []string
}

// Healthy reports whether every damaged region was repaired.
func (h ChunkHealth) Healthy() bool { return len(h.Damaged) == len(h.Repaired) }

// ScrubReport summarizes one full scrub pass over the archive.
type ScrubReport struct {
	// Chunks holds one entry per chunk, in index order.
	Chunks []ChunkHealth
	// Damaged and Repaired are the region totals across all chunks.
	Damaged, Repaired int
}

// Healthy reports whether the archive left the scrub with no unrepaired
// damage.
func (r ScrubReport) Healthy() bool { return r.Damaged == r.Repaired }

// Scrub proactively walks every record in the archive, reading and
// verifying each region under the archive's fault policy — the background
// counterpart of the verify-on-read path, so damage is found before a
// client asks for the chunk. On version-1 containers (no checksums) scrub
// still exercises every byte, catching hard read failures and truncation.
//
// When a mirror is configured (WithMirror) and the primary also implements
// io.WriterAt, scrub repairs damaged regions in place: it fetches the
// region from the mirror, verifies it against the record's checksum,
// writes it back to the primary, and re-reads to confirm the repair took.
// Regions that stay damaged are reported but do not stop the pass; ctx
// cancellation does.
func (a *ChunkArchive) Scrub(ctx context.Context) (ScrubReport, error) {
	if a.closed.Load() {
		return ScrubReport{}, fmt.Errorf("store: scrub: %w", ErrArchiveClosed)
	}
	o := obs.From(ctx)
	defer obs.StartSpan(o, obs.StageScrub).End()
	pol := a.resolvePolicy(ctx)
	w, canRepair := a.r.(io.WriterAt)
	if a.mirror == nil {
		canRepair = false
	}

	var rep ScrubReport
	for _, rec := range a.recs {
		if err := ctx.Err(); err != nil {
			return rep, err
		}
		h := ChunkHealth{Index: rec.info.Index, Regions: 2 + len(rec.streams)}
		for _, reg := range a.regions(rec) {
			_, err := a.readRegion(ctx, pol, o, nil, reg.off, reg.n, reg.crc, reg.label)
			if err == nil {
				continue
			}
			if ctx.Err() != nil {
				return rep, ctx.Err()
			}
			h.Damaged = append(h.Damaged, reg.label)
			if canRepair && a.repairRegion(ctx, pol, o, w, reg) {
				h.Repaired = append(h.Repaired, reg.label)
				o.Counter(obs.CtrScrubRepairs, "", 1)
			}
		}
		rep.Damaged += len(h.Damaged)
		rep.Repaired += len(h.Repaired)
		rep.Chunks = append(rep.Chunks, h)
	}
	return rep, nil
}

// region locates one verifiable span of a record.
type region struct {
	label string
	off   int64
	n     int64
	crc   uint32
}

// regions enumerates a record's verifiable spans in payload order.
func (a *ChunkArchive) regions(rec chunkRec) []region {
	regs := make([]region, 0, 2+len(rec.streams))
	off := rec.info.Offset
	regs = append(regs, region{"precise", off, rec.preciseLen, rec.preciseCRC})
	off += rec.preciseLen
	regs = append(regs, region{"pivots", off, rec.pivotLen, rec.pivotCRC})
	off += rec.pivotLen
	for _, rs := range rec.streams {
		regs = append(regs, region{rs.name, off, rs.bytes, rs.crc})
		off += rs.bytes
	}
	return regs
}

// repairRegion fetches reg from the mirror, verifies it, writes it back to
// the primary and re-reads to confirm. It reports whether the primary now
// holds a verified copy.
func (a *ChunkArchive) repairRegion(ctx context.Context, pol FaultPolicy, o obs.Observer, w io.WriterAt, reg region) bool {
	buf := make([]byte, reg.n)
	//vetvideoapp:allow wrapeof — ReaderAt contract: a full read ending exactly at the mirror's end carries io.EOF and is still a success; anything else is handled as repair failure, not propagated
	if n, err := a.mirror.ReadAt(buf, reg.off); err != nil && !(n == len(buf) && errors.Is(err, io.EOF)) {
		return false
	}
	if !a.verified(pol, buf, reg.crc) {
		return false
	}
	o.Counter(obs.CtrMirrorReads, "", 1)
	if _, err := w.WriteAt(buf, reg.off); err != nil {
		return false
	}
	// Re-read through the faulty primary path to confirm the repair took;
	// one verified read is enough (persistent damage reproduces).
	back := make([]byte, reg.n)
	for attempt := 0; attempt <= pol.MaxRetries; attempt++ {
		if attempt > 0 {
			if err := sleepBackoff(ctx, pol, reg.off, attempt); err != nil {
				return false
			}
		}
		if _, err := a.r.ReadAt(back, reg.off); err != nil {
			continue
		}
		if a.verified(pol, back, reg.crc) {
			return true
		}
	}
	return false
}
