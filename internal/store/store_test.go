package store

import (
	"context"
	"math/rand"
	"testing"

	"videoapp/internal/codec"
	"videoapp/internal/core"
	"videoapp/internal/mlc"
	"videoapp/internal/quality"
	"videoapp/internal/synth"
)

func buildVideo(t testing.TB) (*codec.Video, *core.Analysis, []core.FramePartition, int64) {
	t.Helper()
	cfg, _ := synth.PresetByName("crew_like")
	seq := synth.Generate(cfg.ScaleTo(96, 64, 10))
	p := codec.DefaultParams()
	p.GOPSize = 10
	p.SearchRange = 8
	v, err := codec.Encode(seq, p)
	if err != nil {
		t.Fatal(err)
	}
	an := core.Analyze(v, core.DefaultOptions())
	parts := an.Partition(core.PaperAssignment())
	return v, an, parts, seq.PixelCount()
}

func variableSystem(t testing.TB) *System {
	t.Helper()
	s, err := New(Config{Substrate: mlc.Default(), Assignment: core.PaperAssignment()})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewValidatesSubstrate(t *testing.T) {
	_, err := New(Config{Substrate: mlc.Substrate{LevelsPerCell: 3, RawBER: 1e-3, ScrubIntervalMonths: 3}})
	if err == nil {
		t.Fatal("bad substrate must be rejected")
	}
}

func TestFootprintAccounting(t *testing.T) {
	v, _, parts, pixels := buildVideo(t)
	s := variableSystem(t)
	st, err := s.Footprint(v, parts, pixels)
	if err != nil {
		t.Fatal(err)
	}
	if st.PayloadBits != v.TotalPayloadBits() {
		t.Fatalf("payload %d, want %d", st.PayloadBits, v.TotalPayloadBits())
	}
	if st.HeaderBits <= 0 || st.Cells <= 0 || st.CellsPerPixel <= 0 {
		t.Fatalf("degenerate stats: %+v", st)
	}
	var schemeSum int64
	for _, n := range st.PerScheme {
		schemeSum += n
	}
	if schemeSum != st.PayloadBits {
		t.Fatal("per-scheme sizes must sum to the payload")
	}
}

func TestVariableBeatsUniformDensity(t *testing.T) {
	// The headline result: variable correction needs fewer cells than
	// uniform BCH-16 on everything, and more than ideal.
	v, _, parts, pixels := buildVideo(t)
	variable := variableSystem(t)
	uniform, _ := New(Config{Substrate: mlc.Default(), Assignment: core.UniformAssignment()})
	ideal, _ := New(Config{Substrate: mlc.Default(), Assignment: core.IdealAssignment()})

	an := core.Analyze(v, core.DefaultOptions())
	uniParts := an.Partition(core.UniformAssignment())
	idealParts := an.Partition(core.IdealAssignment())

	sv, _ := variable.Footprint(v, parts, pixels)
	su, _ := uniform.Footprint(v, uniParts, pixels)
	si, _ := ideal.Footprint(v, idealParts, pixels)

	if !(si.Cells < sv.Cells && sv.Cells < su.Cells) {
		t.Fatalf("cells: ideal %.0f, variable %.0f, uniform %.0f — ordering violated",
			si.Cells, sv.Cells, su.Cells)
	}
	saved := (su.Cells - sv.Cells) / su.Cells
	if saved < 0.02 {
		t.Fatalf("variable correction saves only %.1f%% vs uniform", saved*100)
	}
}

func TestECCOverheadEliminationVsUniform(t *testing.T) {
	// Paper: ~47% of the error correction overhead eliminated. Exact value
	// depends on the video; require a substantial cut.
	v, _, parts, pixels := buildVideo(t)
	variable := variableSystem(t)
	uniform, _ := New(Config{Substrate: mlc.Default(), Assignment: core.UniformAssignment()})
	an := core.Analyze(v, core.DefaultOptions())

	sv, _ := variable.Footprint(v, parts, pixels)
	su, _ := uniform.Footprint(v, an.Partition(core.UniformAssignment()), pixels)
	cut := 1 - sv.ParityBits/su.ParityBits
	if cut < 0.2 {
		t.Fatalf("variable correction cuts only %.1f%% of parity bits", cut*100)
	}
}

func TestStorePreservesOriginal(t *testing.T) {
	v, _, parts, _ := buildVideo(t)
	s := variableSystem(t)
	before := append([]byte(nil), v.Frames[1].Payload...)
	if _, _, err := s.StoreContext(context.Background(), v, parts, StoreOpts{Rng: rand.New(rand.NewSource(1))}); err != nil {
		t.Fatal(err)
	}
	for i := range before {
		if v.Frames[1].Payload[i] != before[i] {
			t.Fatal("Store must not mutate the input video")
		}
	}
}

func TestStoreInjectsAtNoneRate(t *testing.T) {
	// With the raw substrate rate of 1e-3 on unprotected segments, a video
	// with tens of kilobits in class None should see some flips.
	v, _, parts, _ := buildVideo(t)
	s := variableSystem(t)
	totalFlips := 0
	for run := 0; run < 10; run++ {
		_, flips, err := s.StoreContext(context.Background(), v, parts, StoreOpts{Rng: rand.New(rand.NewSource(int64(run)))})
		if err != nil {
			t.Fatal(err)
		}
		totalFlips += flips
	}
	if totalFlips == 0 {
		t.Fatal("no errors injected across 10 runs at RBER 1e-3")
	}
}

func TestIdealStoreInjectsNothing(t *testing.T) {
	v, an, _, _ := buildVideo(t)
	parts := an.Partition(core.IdealAssignment())
	s, _ := New(Config{Substrate: mlc.Default(), Assignment: core.IdealAssignment()})
	for run := 0; run < 5; run++ {
		_, flips, err := s.StoreContext(context.Background(), v, parts, StoreOpts{Rng: rand.New(rand.NewSource(int64(run)))})
		if err != nil {
			t.Fatal(err)
		}
		if flips != 0 {
			t.Fatal("ideal correction must be error-free")
		}
	}
}

func TestUniformStoreEffectivelyClean(t *testing.T) {
	// 1e-16 on a ~100kbit video: no flips in any reasonable number of runs.
	v, an, _, _ := buildVideo(t)
	parts := an.Partition(core.UniformAssignment())
	s, _ := New(Config{Substrate: mlc.Default(), Assignment: core.UniformAssignment()})
	_, flips, err := s.StoreContext(context.Background(), v, parts, StoreOpts{Rng: rand.New(rand.NewSource(9))})
	if err != nil {
		t.Fatal(err)
	}
	if flips != 0 {
		t.Fatalf("uniform BCH-16 store flipped %d bits", flips)
	}
}

func TestStoredVideoStillDecodes(t *testing.T) {
	v, _, parts, _ := buildVideo(t)
	s := variableSystem(t)
	stored, _, err := s.StoreContext(context.Background(), v, parts, StoreOpts{Rng: rand.New(rand.NewSource(3))})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := codec.Decode(stored); err != nil {
		t.Fatalf("stored video failed to decode: %v", err)
	}
}

func TestQualityLossBounded(t *testing.T) {
	// End-to-end §7 sanity: the variable-correction store should cost well
	// under a few dB versus the clean decode on this small suite member.
	v, _, parts, _ := buildVideo(t)
	clean, err := codec.Decode(v)
	if err != nil {
		t.Fatal(err)
	}
	s := variableSystem(t)
	worst := 0.0
	for run := 0; run < 5; run++ {
		stored, _, err := s.StoreContext(context.Background(), v, parts, StoreOpts{Rng: rand.New(rand.NewSource(int64(100 + run)))})
		if err != nil {
			t.Fatal(err)
		}
		dec, err := codec.Decode(stored)
		if err != nil {
			t.Fatal(err)
		}
		p, _ := quality.PSNR(clean, dec)
		if loss := quality.MaxPSNR - p; loss > worst {
			worst = loss
		}
	}
	// The tiny test video concentrates importance, so allow generous slack;
	// the real bound is exercised by the Figure 11 experiment.
	if worst > 40 {
		t.Fatalf("worst-case quality loss %.1f dB is catastrophic", worst)
	}
}

func TestBlockAccurateMode(t *testing.T) {
	v, _, parts, _ := buildVideo(t)
	s, err := New(Config{Substrate: mlc.Default(), Assignment: core.PaperAssignment(), BlockAccurate: true})
	if err != nil {
		t.Fatal(err)
	}
	_, flips, err := s.StoreContext(context.Background(), v, parts, StoreOpts{Rng: rand.New(rand.NewSource(4))})
	if err != nil {
		t.Fatal(err)
	}
	// Block-accurate BCH-6+ segments almost never fail at 1e-3; class-None
	// segments still flip freely.
	if flips < 0 {
		t.Fatal("impossible")
	}
	if _, err := codec.Decode(v); err != nil {
		t.Fatal(err)
	}
}

func TestLongerScrubIntervalRaisesRates(t *testing.T) {
	short, _ := New(Config{Substrate: mlc.Default(), Assignment: core.PaperAssignment(), ScrubMonths: 3})
	long, _ := New(Config{Substrate: mlc.Default(), Assignment: core.PaperAssignment(), ScrubMonths: 12})
	if long.RBER() <= short.RBER() {
		t.Fatalf("12-month scrub RBER %g <= 3-month %g", long.RBER(), short.RBER())
	}
}

func TestPartitionCountMismatch(t *testing.T) {
	v, _, parts, _ := buildVideo(t)
	s := variableSystem(t)
	if _, err := s.Footprint(v, parts[:1], 100); err == nil {
		t.Fatal("partition mismatch must error")
	}
	if _, _, err := s.StoreContext(context.Background(), v, parts[:1], StoreOpts{Rng: rand.New(rand.NewSource(1))}); err == nil {
		t.Fatal("partition mismatch must error")
	}
}

func BenchmarkStore(b *testing.B) {
	b.ReportAllocs()
	v, _, parts, _ := buildVideo(b)
	s := variableSystem(b)
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := s.StoreContext(context.Background(), v, parts, StoreOpts{Rng: rng}); err != nil {
			b.Fatal(err)
		}
	}
}
