package store

import (
	"bytes"
	"context"
	"errors"
	"io"
	"sync"
	"testing"
	"time"

	"videoapp/internal/codec"
	"videoapp/internal/faultio"
	"videoapp/internal/obs"
)

// fastPolicy keeps retry delays negligible so fault-path tests stay quick.
func fastPolicy() FaultPolicy {
	return FaultPolicy{RetryBackoff: time.Nanosecond, MaxBackoff: time.Microsecond}
}

// memAt is an in-memory ReaderAt+WriterAt, the writable primary used by
// the scrub-repair tests.
type memAt struct {
	data []byte
}

func (m *memAt) ReadAt(p []byte, off int64) (int, error) {
	if off >= int64(len(m.data)) {
		return 0, io.EOF
	}
	n := copy(p, m.data[off:])
	if n < len(p) {
		return n, io.EOF
	}
	return n, nil
}

func (m *memAt) WriteAt(p []byte, off int64) (int, error) {
	if off+int64(len(p)) > int64(len(m.data)) {
		return 0, io.ErrShortWrite
	}
	return copy(m.data[off:], p), nil
}

// flakyAt fails the first failures attempts at every distinct offset with a
// transient non-EOF error, then serves cleanly.
type flakyAt struct {
	r        io.ReaderAt
	failures int
	mu       sync.Mutex
	seen     map[int64]int
}

var errFlaky = errors.New("transient device error")

func (f *flakyAt) ReadAt(p []byte, off int64) (int, error) {
	f.mu.Lock()
	if f.seen == nil {
		f.seen = map[int64]int{}
	}
	f.seen[off]++
	attempt := f.seen[off]
	f.mu.Unlock()
	if attempt <= f.failures {
		return 0, errFlaky
	}
	return f.r.ReadAt(p, off)
}

// streamRegion returns the archive offset and length of chunk ci's first
// approximate stream, plus its scheme name — the degradable target for
// corruption tests.
func streamRegion(t *testing.T, a *ChunkArchive, ci int) (int64, int64, string) {
	t.Helper()
	rec := a.recs[ci]
	if len(rec.streams) == 0 {
		t.Fatal("chunk has no approximate streams")
	}
	return rec.info.Offset + rec.preciseLen + rec.pivotLen, rec.streams[0].bytes, rec.streams[0].name
}

// TestReadRetryRecoversTransient: a device failing the first attempt at
// every offset is fully absorbed by the default retry ladder, and the
// retries are visible in metrics.
func TestReadRetryRecoversTransient(t *testing.T) {
	data, _ := buildArchiveBytes(t, 2)
	a, err := OpenChunkArchiveAt(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	flaky := &flakyAt{r: bytes.NewReader(data), failures: 1}
	a.r = flaky

	m := obs.NewMetrics()
	ctx := obs.With(context.Background(), m)
	ctx = ContextWithFaultPolicy(ctx, fastPolicy())
	for i := 0; i < a.NumChunks(); i++ {
		cr, err := a.ReadChunkContext(ctx, i)
		if err != nil {
			t.Fatalf("chunk %d: %v", i, err)
		}
		if len(cr.Degraded) != 0 {
			t.Fatalf("chunk %d degraded %v under a transient-only fault", i, cr.Degraded)
		}
	}
	if got := m.Snapshot().CounterTotal(obs.CtrReadRetries); got == 0 {
		t.Fatal("no retries recorded despite transient failures")
	}
}

// TestRetriesDisabledFailsFast: MaxRetries < 0 turns the ladder off — the
// first transient failure surfaces as ErrReadFailed.
func TestRetriesDisabledFailsFast(t *testing.T) {
	data, _ := buildArchiveBytes(t, 1)
	a, err := OpenChunkArchiveAt(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	a.r = &flakyAt{r: bytes.NewReader(data), failures: 1}
	pol := fastPolicy()
	pol.MaxRetries = -1
	ctx := ContextWithFaultPolicy(context.Background(), pol)
	_, err = a.ReadChunkContext(ctx, 0)
	if !errors.Is(err, ErrReadFailed) {
		t.Fatalf("want ErrReadFailed, got %v", err)
	}
	if errors.Is(err, ErrCorruptRecord) {
		t.Fatalf("device failure must not be classified as data corruption: %v", err)
	}
}

// TestStreamCorruptionDegrades: a bit flip inside an approximate stream is
// caught by the record CRC; the strict read reports ErrCorruptRecord while
// the context read degrades — zero-filled stream, decodable video, the
// scheme listed in Degraded and counted in metrics.
func TestStreamCorruptionDegrades(t *testing.T) {
	data, _ := buildArchiveBytes(t, 2)
	a, err := OpenChunkArchiveAt(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	off, _, scheme := streamRegion(t, a, 0)
	bad := bytes.Clone(data)
	bad[off] ^= 0x40
	a, err = OpenChunkArchiveAt(bytes.NewReader(bad), WithFaultPolicy(fastPolicy()))
	if err != nil {
		t.Fatal(err)
	}

	if _, _, err := a.ReadChunk(0); !errors.Is(err, ErrCorruptRecord) {
		t.Fatalf("strict read of damaged stream: want ErrCorruptRecord, got %v", err)
	}

	m := obs.NewMetrics()
	ctx := obs.With(context.Background(), m)
	cr, err := a.ReadChunkContext(ctx, 0)
	if err != nil {
		t.Fatalf("degraded read must not fail: %v", err)
	}
	if len(cr.Degraded) != 1 || cr.Degraded[0] != scheme {
		t.Fatalf("Degraded = %v, want [%s]", cr.Degraded, scheme)
	}
	if cr.Video == nil || len(cr.Video.Frames) == 0 {
		t.Fatal("degraded read returned no video")
	}
	if _, err := codec.Decode(cr.Video); err != nil {
		t.Fatalf("degraded video must still decode: %v", err)
	}
	s := m.Snapshot()
	if s.Counter(obs.CtrDegradedStreams, scheme) != 1 {
		t.Fatalf("degraded-stream counter = %d, want 1", s.Counter(obs.CtrDegradedStreams, scheme))
	}
	if s.Counter(obs.CtrCRCFailures, scheme) == 0 {
		t.Fatal("CRC failure not counted")
	}

	// The other chunk is untouched and must read cleanly.
	if cr, err := a.ReadChunkContext(context.Background(), 1); err != nil || len(cr.Degraded) != 0 {
		t.Fatalf("clean chunk read: degraded=%v err=%v", cr.Degraded, err)
	}
}

// TestPreciseCorruptionHardFails: damage inside the precise region is on
// the wrong side of the reliability boundary — no degradation, hard
// ErrCorruptRecord from both read forms.
func TestPreciseCorruptionHardFails(t *testing.T) {
	data, _ := buildArchiveBytes(t, 1)
	a, err := OpenChunkArchiveAt(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	info, _ := a.Info(0)
	bad := bytes.Clone(data)
	bad[info.Offset+1] ^= 0x01
	a, err = OpenChunkArchiveAt(bytes.NewReader(bad), WithFaultPolicy(fastPolicy()))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.ReadChunkContext(context.Background(), 0); !errors.Is(err, ErrCorruptRecord) {
		t.Fatalf("context read: want ErrCorruptRecord, got %v", err)
	}
	if _, _, err := a.ReadChunk(0); !errors.Is(err, ErrCorruptRecord) {
		t.Fatalf("strict read: want ErrCorruptRecord, got %v", err)
	}
}

// TestMidPayloadTruncationTyped pins the typed-error fix: a container cut
// inside the last chunk's payload indexes cleanly (the record header is
// intact) but the chunk read reports ErrCorruptRecord — never a raw
// io.ErrUnexpectedEOF.
func TestMidPayloadTruncationTyped(t *testing.T) {
	data, _ := buildArchiveBytes(t, 2)
	full, err := OpenChunkArchiveAt(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	last, _ := full.Info(full.NumChunks() - 1)
	cut := data[:last.Offset+last.Length/2]
	a, err := OpenChunkArchiveAt(bytes.NewReader(cut), WithFaultPolicy(fastPolicy()))
	if err != nil {
		t.Fatalf("index over truncated payload must still open: %v", err)
	}
	_, _, err = a.ReadChunk(a.NumChunks() - 1)
	if !errors.Is(err, ErrCorruptRecord) {
		t.Fatalf("want ErrCorruptRecord, got %v", err)
	}
	if errors.Is(err, io.ErrUnexpectedEOF) || errors.Is(err, io.EOF) {
		t.Fatalf("raw EOF class must not surface: %v", err)
	}
	// Earlier chunks are intact and keep reading.
	if _, _, err := a.ReadChunk(0); err != nil {
		t.Fatalf("intact chunk after truncation: %v", err)
	}
}

// TestMirrorRecoversCorruption: with a clean mirror attached, even the
// strict read survives primary-side corruption — the damaged region is
// refetched from the replica and verified.
func TestMirrorRecoversCorruption(t *testing.T) {
	data, _ := buildArchiveBytes(t, 1)
	a, err := OpenChunkArchiveAt(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	off, _, _ := streamRegion(t, a, 0)
	bad := bytes.Clone(data)
	bad[off] ^= 0x80
	a, err = OpenChunkArchiveAt(bytes.NewReader(bad),
		WithFaultPolicy(fastPolicy()), WithMirror(bytes.NewReader(data)))
	if err != nil {
		t.Fatal(err)
	}
	m := obs.NewMetrics()
	ctx := obs.With(context.Background(), m)
	cr, err := a.ReadChunkContext(ctx, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(cr.Degraded) != 0 {
		t.Fatalf("mirror should have recovered the stream, degraded %v", cr.Degraded)
	}
	if m.Snapshot().CounterTotal(obs.CtrMirrorReads) == 0 {
		t.Fatal("mirror read not counted")
	}
}

// TestV1ContainerCompat: version-1 containers (no checksums) stay readable
// and report their version; corruption passes unverified, as documented.
func TestV1ContainerCompat(t *testing.T) {
	v, chunks, chunkParts := buildChunkedVideo(t, 2)
	var buf bytes.Buffer
	cw, err := newChunkWriter(&buf, ArchiveMeta{W: v.W, H: v.H, FPS: v.FPS, GOPSize: v.Params.GOPSize, GOPsPerChunk: 1}, 1)
	if err != nil {
		t.Fatal(err)
	}
	writeChunks(t, cw, chunks, chunkParts, 0)
	data := buf.Bytes()

	a, err := OpenChunkArchiveAt(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if a.Version() != 1 {
		t.Fatalf("Version() = %d, want 1", a.Version())
	}
	for i := 0; i < a.NumChunks(); i++ {
		if _, _, err := a.ReadChunk(i); err != nil {
			t.Fatalf("v1 chunk %d: %v", i, err)
		}
	}
	off, _, _ := streamRegion(t, a, 0)
	bad := bytes.Clone(data)
	bad[off] ^= 0x01
	a, err = OpenChunkArchiveAt(bytes.NewReader(bad))
	if err != nil {
		t.Fatal(err)
	}
	cr, err := a.ReadChunkContext(context.Background(), 0)
	if err != nil || len(cr.Degraded) != 0 {
		t.Fatalf("v1 has no checksums to trip: degraded=%v err=%v", cr.Degraded, err)
	}

	// AppendChunkWriter preserves the container's version.
	cw2, err := AppendChunkWriter(&rwsBuffer{data: bytes.Clone(data)})
	if err != nil {
		t.Fatal(err)
	}
	if cw2.version != 1 {
		t.Fatalf("appending writer version = %d, want 1", cw2.version)
	}
}

// rwsBuffer is a minimal in-memory io.ReadWriteSeeker + io.ReaderAt for
// append tests.
type rwsBuffer struct {
	data []byte
	pos  int64
}

func (b *rwsBuffer) ReadAt(p []byte, off int64) (int, error) {
	if off >= int64(len(b.data)) {
		return 0, io.EOF
	}
	n := copy(p, b.data[off:])
	if n < len(p) {
		return n, io.EOF
	}
	return n, nil
}

func (b *rwsBuffer) Read(p []byte) (int, error) {
	if b.pos >= int64(len(b.data)) {
		return 0, io.EOF
	}
	n := copy(p, b.data[b.pos:])
	b.pos += int64(n)
	return n, nil
}

func (b *rwsBuffer) Write(p []byte) (int, error) {
	need := b.pos + int64(len(p))
	if need > int64(len(b.data)) {
		b.data = append(b.data, make([]byte, need-int64(len(b.data)))...)
	}
	n := copy(b.data[b.pos:], p)
	b.pos += int64(n)
	return n, nil
}

func (b *rwsBuffer) Seek(off int64, whence int) (int64, error) {
	switch whence {
	case io.SeekStart:
		b.pos = off
	case io.SeekCurrent:
		b.pos += off
	case io.SeekEnd:
		b.pos = int64(len(b.data)) + off
	}
	return b.pos, nil
}

// TestScrubRepairsFromMirror: scrub finds the damaged region, rewrites it
// from the mirror, re-verifies, and leaves the primary byte-identical to
// the clean container; a second pass is clean.
func TestScrubRepairsFromMirror(t *testing.T) {
	data, _ := buildArchiveBytes(t, 2)
	clean := bytes.Clone(data)
	probe, err := OpenChunkArchiveAt(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	off, _, scheme := streamRegion(t, probe, 1)
	primary := &memAt{data: bytes.Clone(data)}
	primary.data[off] ^= 0x20

	a, err := OpenChunkArchiveAt(primary,
		WithFaultPolicy(fastPolicy()), WithMirror(bytes.NewReader(clean)))
	if err != nil {
		t.Fatal(err)
	}
	m := obs.NewMetrics()
	rep, err := a.Scrub(obs.With(context.Background(), m))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Damaged != 1 || rep.Repaired != 1 || !rep.Healthy() {
		t.Fatalf("report %+v, want 1 damaged, 1 repaired", rep)
	}
	if h := rep.Chunks[1]; len(h.Damaged) != 1 || h.Damaged[0] != scheme || !h.Healthy() {
		t.Fatalf("chunk 1 health %+v, want damaged=[%s] repaired", h, scheme)
	}
	if !bytes.Equal(primary.data, clean) {
		t.Fatal("scrub did not restore the primary to the clean bytes")
	}
	if m.Snapshot().CounterTotal(obs.CtrScrubRepairs) != 1 {
		t.Fatal("scrub repair not counted")
	}

	rep, err = a.Scrub(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Damaged != 0 {
		t.Fatalf("second pass found damage: %+v", rep)
	}
}

// TestScrubWithoutMirrorReports: no mirror means no repairs — the damage
// is reported and the report is unhealthy.
func TestScrubWithoutMirrorReports(t *testing.T) {
	data, _ := buildArchiveBytes(t, 1)
	probe, err := OpenChunkArchiveAt(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	off, _, _ := streamRegion(t, probe, 0)
	bad := bytes.Clone(data)
	bad[off] ^= 0x10
	a, err := OpenChunkArchiveAt(bytes.NewReader(bad), WithFaultPolicy(fastPolicy()))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := a.Scrub(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Damaged != 1 || rep.Repaired != 0 || rep.Healthy() {
		t.Fatalf("report %+v, want 1 damaged, 0 repaired", rep)
	}
}

// TestFaultioIntegration: the archive read path rides out a deterministic
// faultio device profile — transient errors and short reads absorbed by
// retries, persistent corruption caught by CRC and degraded — and two runs
// over the same seed behave identically.
func TestFaultioIntegration(t *testing.T) {
	data, _ := buildArchiveBytes(t, 3)

	run := func() ([]int, int64) {
		fr := faultio.New(bytes.NewReader(data), faultio.Profile{
			Seed: 42, TransientRate: 0.05, ShortRate: 0.02, CorruptRate: 0.002,
		})
		pol := fastPolicy()
		pol.MaxRetries = 8
		a, err := OpenChunkArchiveAt(fr, WithFaultPolicy(pol))
		if err != nil {
			t.Fatal(err)
		}
		m := obs.NewMetrics()
		ctx := obs.With(context.Background(), m)
		var degraded []int
		for i := 0; i < a.NumChunks(); i++ {
			cr, err := a.ReadChunkContext(ctx, i)
			if err != nil {
				t.Fatalf("chunk %d under faultio: %v", i, err)
			}
			degraded = append(degraded, len(cr.Degraded))
		}
		return degraded, m.Snapshot().CounterTotal(obs.CtrReadRetries)
	}

	deg1, retries1 := run()
	deg2, retries2 := run()
	for i := range deg1 {
		if deg1[i] != deg2[i] {
			t.Fatalf("chunk %d degradation differs between identical-seed runs: %d vs %d", i, deg1[i], deg2[i])
		}
	}
	if retries1 != retries2 {
		t.Fatalf("retry counts differ between identical-seed runs: %d vs %d", retries1, retries2)
	}
}
