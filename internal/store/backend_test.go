package store

import (
	"bytes"
	"errors"
	"io"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"videoapp/internal/codec"
	"videoapp/internal/faultio"
)

// The faultio decorator must satisfy the store seam structurally, without
// either package importing the other.
var _ Backend = (*faultio.Reader)(nil)

// buildArchiveBuf writes a small multi-chunk archive and returns its bytes
// plus the source chunks for comparison.
func buildArchiveBuf(t *testing.T, gops int) ([]byte, []*codecVideoRef) {
	t.Helper()
	_, chunks, chunkParts := buildChunkedVideo(t, gops)
	var buf bytes.Buffer
	cw, err := NewChunkWriter(&buf, ArchiveMeta{
		W: chunks[0].W, H: chunks[0].H, FPS: chunks[0].FPS,
		GOPSize: chunks[0].Params.GOPSize, GOPsPerChunk: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	writeChunks(t, cw, chunks, chunkParts, 0)
	refs := make([]*codecVideoRef, len(chunks))
	for i, c := range chunks {
		refs[i] = &codecVideoRef{frames: len(c.Frames)}
	}
	return buf.Bytes(), refs
}

// codecVideoRef keeps just what backend tests compare against.
type codecVideoRef struct{ frames int }

// TestBackendsServeIdenticalArchives pins the seam contract: the same
// container opened through a file, a memory region, and a sealed snapshot
// yields the same index and the same chunk bytes.
func TestBackendsServeIdenticalArchives(t *testing.T) {
	data, refs := buildArchiveBuf(t, 3)

	path := filepath.Join(t.TempDir(), "a.vacs")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	fb, err := OpenFileBackend(path, false)
	if err != nil {
		t.Fatal(err)
	}
	defer fb.Close()

	backends := map[string]Backend{
		"file":     fb,
		"mem":      NewMemBackend(data),
		"snapshot": NewSnapshotBackend(data),
	}
	want, err := OpenChunkArchiveAt(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	for name, b := range backends {
		a, err := OpenArchiveBackend(b)
		if err != nil {
			t.Fatalf("%s: open: %v", name, err)
		}
		if a.NumChunks() != len(refs) {
			t.Fatalf("%s: %d chunks, want %d", name, a.NumChunks(), len(refs))
		}
		if sz, err := b.Size(); err != nil || sz != int64(len(data)) {
			t.Fatalf("%s: Size = %d, %v; want %d", name, sz, err, len(data))
		}
		for i := 0; i < a.NumChunks(); i++ {
			got, _, err := a.ReadChunk(i)
			if err != nil {
				t.Fatalf("%s: chunk %d: %v", name, i, err)
			}
			ref, _, err := want.ReadChunk(i)
			if err != nil {
				t.Fatal(err)
			}
			if len(got.Frames) != len(ref.Frames) {
				t.Fatalf("%s: chunk %d: %d frames, want %d", name, i, len(got.Frames), len(ref.Frames))
			}
			gd, err := codec.Decode(got)
			if err != nil {
				t.Fatal(err)
			}
			rd, err := codec.Decode(ref)
			if err != nil {
				t.Fatal(err)
			}
			for f := range gd.Frames {
				if !bytes.Equal(gd.Frames[f].Y, rd.Frames[f].Y) {
					t.Fatalf("%s: chunk %d frame %d differs", name, i, f)
				}
			}
		}
		if err := a.Close(); err != nil {
			t.Fatalf("%s: close: %v", name, err)
		}
	}
}

// TestReadOnlyBackendsRejectWrites: writes to sealed media report
// ErrReadOnly without mutating anything.
func TestReadOnlyBackendsRejectWrites(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ro.bin")
	if err := os.WriteFile(path, []byte("hello"), 0o644); err != nil {
		t.Fatal(err)
	}
	fb, err := OpenFileBackend(path, false)
	if err != nil {
		t.Fatal(err)
	}
	defer fb.Close()

	snap := NewSnapshotBackend([]byte("hello"))
	for name, b := range map[string]Backend{"file": fb, "snapshot": snap} {
		if _, err := b.WriteAt([]byte("x"), 0); !errors.Is(err, ErrReadOnly) {
			t.Fatalf("%s: WriteAt error = %v, want ErrReadOnly", name, err)
		}
	}
	if got, _ := os.ReadFile(path); string(got) != "hello" {
		t.Fatalf("read-only file mutated: %q", got)
	}
	buf := make([]byte, 5)
	if _, err := snap.ReadAt(buf, 0); err != nil && err != io.EOF {
		t.Fatal(err)
	}
	if string(buf) != "hello" {
		t.Fatalf("snapshot mutated: %q", buf)
	}
}

// TestMemBackendGrowsAndZeroFills: WriteAt past the end grows the region
// with a zero gap, like a sparse file, and Size tracks the high-water mark.
func TestMemBackendGrowsAndZeroFills(t *testing.T) {
	b := NewMemBackend(nil)
	if _, err := b.WriteAt([]byte{0xAA}, 4); err != nil {
		t.Fatal(err)
	}
	if sz, _ := b.Size(); sz != 5 {
		t.Fatalf("Size = %d, want 5", sz)
	}
	got := b.Bytes()
	want := []byte{0, 0, 0, 0, 0xAA}
	if !bytes.Equal(got, want) {
		t.Fatalf("contents = %v, want %v", got, want)
	}
	// Reads at and past the end follow the io.ReaderAt contract.
	p := make([]byte, 2)
	if n, err := b.ReadAt(p, 4); n != 1 || err != io.EOF {
		t.Fatalf("tail read = (%d, %v), want (1, EOF)", n, err)
	}
	if _, err := b.ReadAt(p, 99); err != io.EOF {
		t.Fatalf("past-end read err = %v, want EOF", err)
	}
}

// TestMemBackendConcurrent: concurrent readers and writers on disjoint
// ranges stay race-free and every byte lands (run under -race).
func TestMemBackendConcurrent(t *testing.T) {
	b := NewMemBackend(make([]byte, 64))
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			chunk := bytes.Repeat([]byte{byte(g + 1)}, 8)
			for i := 0; i < 50; i++ {
				if _, err := b.WriteAt(chunk, int64(g*8)); err != nil {
					t.Error(err)
					return
				}
				p := make([]byte, 8)
				if _, err := b.ReadAt(p, int64(g*8)); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	data := b.Bytes()
	for g := 0; g < 8; g++ {
		for i := 0; i < 8; i++ {
			if data[g*8+i] != byte(g+1) {
				t.Fatalf("byte %d = %d, want %d", g*8+i, data[g*8+i], g+1)
			}
		}
	}
}

// TestScrubReadOnlyBackendReportsUnrepaired: a damaged region on sealed
// media is reported damaged but never repaired — the WriteAt refusal must
// not fail the pass.
func TestScrubReadOnlyBackendReportsUnrepaired(t *testing.T) {
	data, _ := buildArchiveBuf(t, 2)
	clean := bytes.Clone(data)

	// Corrupt the last payload byte (inside the final stream region).
	bad := bytes.Clone(data)
	bad[len(bad)-1] ^= 0xFF

	a, err := OpenArchiveBackend(NewSnapshotBackend(bad), WithMirror(bytes.NewReader(clean)))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := a.Scrub(t.Context())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Damaged == 0 {
		t.Fatal("scrub found no damage in a corrupted archive")
	}
	if rep.Repaired != 0 {
		t.Fatalf("scrub repaired %d regions on a read-only backend", rep.Repaired)
	}
}
