package store

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"testing"
)

// fuzzSeedArchive builds a small real archive for the fuzz corpus.
func fuzzSeedArchive(t testing.TB, gops int) []byte {
	t.Helper()
	_, chunks, chunkParts := buildChunkedVideo(t, gops)
	var buf bytes.Buffer
	cw, err := NewChunkWriter(&buf, ArchiveMeta{
		W: chunks[0].W, H: chunks[0].H, FPS: chunks[0].FPS,
		GOPSize: chunks[0].Params.GOPSize, GOPsPerChunk: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	writeChunks(t, cw, chunks, chunkParts, 0)
	return buf.Bytes()
}

// v1Header hand-crafts a chunkless VACS v1 container (the legacy layout has
// no CRCs, so only the writer moved on — the reader must still parse it).
func v1Header() []byte {
	hdr := make([]byte, archiveHeaderLen)
	copy(hdr, "VACS")
	hdr[4] = 1
	binary.BigEndian.PutUint32(hdr[5:9], 64)   // W
	binary.BigEndian.PutUint32(hdr[9:13], 48)  // H
	binary.BigEndian.PutUint32(hdr[13:17], 30) // FPS
	binary.BigEndian.PutUint32(hdr[17:21], 4)  // GOPSize
	binary.BigEndian.PutUint32(hdr[21:25], 1)  // GOPsPerChunk
	return hdr
}

// FuzzOpenArchive asserts the container parser is total: for ANY byte
// slice, opening either succeeds or fails with the package's typed errors —
// it never panics, never loops, and never surfaces a raw io.EOF from a
// truncated read. When the index parses, the whole metadata surface must be
// usable, and reading a (small) chunk must likewise end in frames or a
// typed error. This is the guarantee the serving layer's error mapping is
// built on: every storage-level failure has an errors.Is identity.
func FuzzOpenArchive(f *testing.F) {
	valid := fuzzSeedArchive(f, 2)
	f.Add([]byte{})
	f.Add([]byte("VACS"))
	f.Add(v1Header())
	f.Add(valid)
	f.Add(valid[:archiveHeaderLen])    // header only, no records
	f.Add(valid[:len(valid)-1])        // truncated payload
	f.Add(valid[:archiveHeaderLen+10]) // truncated chunk header
	f.Add(bytes.Replace(valid, []byte("CHNK"), []byte("JUNK"), 1))
	wrongVersion := bytes.Clone(valid)
	wrongVersion[4] = 1 // v2 record layout under a v1 version byte
	f.Add(wrongVersion)

	f.Fuzz(func(t *testing.T, data []byte) {
		a, err := OpenChunkArchiveAt(bytes.NewReader(data))
		if err != nil {
			if !errors.Is(err, ErrCorruptRecord) && !errors.Is(err, ErrReadFailed) {
				t.Fatalf("open: untyped error %v (input %d bytes)", err, len(data))
			}
			if errors.Is(err, io.EOF) && !errors.Is(err, io.ErrUnexpectedEOF) {
				t.Fatalf("open: raw io.EOF escaped the parser: %v", err)
			}
			return
		}
		// The index parsed: every metadata accessor must be total.
		meta := a.Meta()
		if meta.W <= 0 || meta.H <= 0 {
			t.Fatalf("parsed archive with invalid meta %+v", meta)
		}
		if v := a.Version(); v < 1 || v > 2 {
			t.Fatalf("parsed archive with version %d", v)
		}
		frames := 0
		for i := 0; i < a.NumChunks(); i++ {
			info, err := a.Info(i)
			if err != nil {
				t.Fatalf("Info(%d) failed on an indexed chunk: %v", i, err)
			}
			if info.Offset < archiveHeaderLen || info.Length < 0 || info.Frames < 1 {
				t.Fatalf("Info(%d) = %+v: implausible indexed record", i, info)
			}
			frames += info.Frames
			// Reading is bounded to small records so a fabricated
			// multi-gigabyte length cannot balloon the fuzz process; open
			// and Info above already cover the parser for such records.
			if info.Length < 1<<20 {
				cr, err := a.ReadChunkContext(t.Context(), i)
				switch {
				case err == nil:
					if len(cr.Video.Frames) != info.Frames {
						t.Fatalf("chunk %d decoded %d frames, index says %d", i, len(cr.Video.Frames), info.Frames)
					}
				case errors.Is(err, ErrCorruptRecord), errors.Is(err, ErrReadFailed):
				default:
					t.Fatalf("ReadChunk(%d): untyped error %v", i, err)
				}
			}
		}
		if a.TotalFrames() != frames {
			t.Fatalf("TotalFrames = %d, index sums to %d", a.TotalFrames(), frames)
		}
	})
}
