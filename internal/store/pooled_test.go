package store

import (
	"bytes"
	"context"
	"math/rand"
	"testing"

	"videoapp/internal/core"
	"videoapp/internal/mlc"
	"videoapp/internal/obs"
)

// TestStoreContextPooledReuseBitIdentical pins the pooling contract of the
// round trip: releasing a stored copy and running the identical round trip
// again — now through recycled arenas and pooled RNGs — must reproduce every
// payload bit and the flip count, at one worker and at eight.
func TestStoreContextPooledReuseBitIdentical(t *testing.T) {
	v, _, parts, _ := buildVideo(t)
	sys := variableSystem(t)
	for _, workers := range []int{1, 8} {
		first, flips1, err := sys.StoreContext(context.Background(), v, parts, StoreOpts{Seed: 1234, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		payloads := make([][]byte, len(first.Frames))
		for i, f := range first.Frames {
			payloads[i] = append([]byte(nil), f.Payload...)
		}
		first.Release()
		for round := 0; round < 3; round++ {
			again, flips2, err := sys.StoreContext(context.Background(), v, parts, StoreOpts{Seed: 1234, Workers: workers})
			if err != nil {
				t.Fatal(err)
			}
			if flips2 != flips1 {
				t.Fatalf("workers=%d round %d: flips %d, want %d", workers, round, flips2, flips1)
			}
			for i, f := range again.Frames {
				if !bytes.Equal(f.Payload, payloads[i]) {
					t.Fatalf("workers=%d round %d: frame %d payload differs after pool reuse", workers, round, i)
				}
			}
			again.Release()
		}
	}
}

// TestInjectFrameNoAlloc verifies the zero-allocation claim of the injection
// hot path for both error models.
func TestInjectFrameNoAlloc(t *testing.T) {
	v, _, parts, _ := buildVideo(t)
	for _, tc := range []struct {
		name          string
		blockAccurate bool
	}{{"nominal", false}, {"blockaccurate", true}} {
		s, err := New(Config{
			Substrate:     mlc.Default(),
			Assignment:    core.PaperAssignment(),
			BlockAccurate: tc.blockAccurate,
		})
		if err != nil {
			t.Fatal(err)
		}
		work := v.Clone()
		rng := rand.New(rand.NewSource(1))
		allocs := testing.AllocsPerRun(20, func() {
			for f := range work.Frames {
				rng.Seed(int64(f))
				s.injectFrame(rng, work.Frames[f], parts[f], obs.Noop{})
			}
		})
		if allocs != 0 {
			t.Errorf("%s: injectFrame allocates %.1f per sweep, want 0", tc.name, allocs)
		}
	}
}
