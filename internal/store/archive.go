package store

import (
	"fmt"

	"videoapp/internal/codec"
	"videoapp/internal/core"
)

// Archive is the complete at-rest representation of an approximately stored
// video, split exactly along the paper's reliability boundary:
//
//   - Precise holds everything that must never be wrong: the container's
//     sequence and frame headers (payload bytes zeroed) and the per-frame
//     pivot tables. This region is stored with the strongest correction
//     (BCH-16 in Table 1) and is a fraction of a percent of the total.
//   - Streams holds the per-scheme payload substreams, each destined for
//     cells protected at that scheme's level (and optionally encrypted per
//     stream, §5.3).
//
// Restore is the exact inverse while the streams are intact; corrupted
// stream bits flow back into the corresponding payload bits, which is
// precisely the approximation model the experiments measure.
type Archive struct {
	Precise     []byte
	PivotTables []byte
	Streams     map[string][]byte
	Bits        map[string]int64
}

// BuildArchive splits an analyzed video into its archive form.
func BuildArchive(v *codec.Video, parts []core.FramePartition) (*Archive, error) {
	ss, err := core.SplitStreams(v, parts)
	if err != nil {
		return nil, err
	}
	pivots, err := core.MarshalPartitions(parts)
	if err != nil {
		return nil, err
	}
	// Zero the payloads in the precise container: their bits live in the
	// approximate streams.
	blank := v.Clone()
	for _, f := range blank.Frames {
		for i := range f.Payload {
			f.Payload[i] = 0
		}
	}
	return &Archive{
		Precise:     codec.Marshal(blank),
		PivotTables: pivots,
		Streams:     ss.Streams,
		Bits:        ss.Bits,
	}, nil
}

// Restore reassembles the video from the archive.
func (a *Archive) Restore() (*codec.Video, []core.FramePartition, error) {
	v, err := codec.Unmarshal(a.Precise)
	if err != nil {
		return nil, nil, fmt.Errorf("store: precise region: %w", err)
	}
	parts, err := core.UnmarshalPartitions(a.PivotTables)
	if err != nil {
		return nil, nil, fmt.Errorf("store: pivot tables: %w", err)
	}
	if len(parts) != len(v.Frames) {
		return nil, nil, fmt.Errorf("store: %d pivot tables for %d frames", len(parts), len(v.Frames))
	}
	ss := &core.StreamSet{Parts: parts, Streams: a.Streams, Bits: a.Bits}
	merged, err := ss.Merge(v)
	if err != nil {
		return nil, nil, err
	}
	return merged, parts, nil
}

// PreciseBytes is the size of the precisely-stored region, excluding the
// zeroed payload placeholders (which occupy approximate cells).
func (a *Archive) PreciseBytes() int {
	var payload int64
	for _, n := range a.Bits {
		payload += n
	}
	return len(a.Precise) + len(a.PivotTables) - int(payload/8)
}

// ApproxBytes is the total size of the approximate streams.
func (a *Archive) ApproxBytes() int {
	n := 0
	for _, s := range a.Streams {
		n += len(s)
	}
	return n
}
