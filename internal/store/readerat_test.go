package store

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"sync"
	"testing"
)

// buildArchiveBytes writes a small multi-chunk archive into memory and
// returns its bytes alongside the chunk-local source videos.
func buildArchiveBytes(t testing.TB, gops int) ([]byte, [][]byte) {
	t.Helper()
	v, chunks, chunkParts := buildChunkedVideo(t, gops)
	var buf bytes.Buffer
	cw, err := NewChunkWriter(&buf, ArchiveMeta{W: v.W, H: v.H, FPS: v.FPS, GOPSize: v.Params.GOPSize, GOPsPerChunk: 1})
	if err != nil {
		t.Fatal(err)
	}
	writeChunks(t, cw, chunks, chunkParts, 0)
	var payloads [][]byte
	for _, c := range chunks {
		var frames []byte
		for _, f := range c.Frames {
			frames = append(frames, f.Payload...)
		}
		payloads = append(payloads, frames)
	}
	return buf.Bytes(), payloads
}

// TestConcurrentReadChunkBitIdentical pins the tentpole guarantee of the
// ReaderAt read path: N goroutines reading all M chunks in shuffled orders
// see frames bit-identical to a serial reader, with no locking and (under
// -race) no data races.
func TestConcurrentReadChunkBitIdentical(t *testing.T) {
	data, _ := buildArchiveBytes(t, 4)
	a, err := OpenChunkArchiveAt(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}

	// Serial baseline: the reference payload bytes of every chunk.
	want := make([][][]byte, a.NumChunks())
	for i := range want {
		v, _, err := a.ReadChunk(i)
		if err != nil {
			t.Fatal(err)
		}
		for _, f := range v.Frames {
			want[i] = append(want[i], f.Payload)
		}
	}

	const readers = 32
	var wg sync.WaitGroup
	errs := make(chan error, readers)
	for g := 0; g < readers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			order := rng.Perm(a.NumChunks())
			for _, i := range order {
				v, parts, err := a.ReadChunk(i)
				if err != nil {
					errs <- fmt.Errorf("reader %d chunk %d: %w", g, i, err)
					return
				}
				if len(parts) != len(v.Frames) {
					errs <- fmt.Errorf("reader %d chunk %d: %d parts for %d frames", g, i, len(parts), len(v.Frames))
					return
				}
				for f := range v.Frames {
					if !bytes.Equal(v.Frames[f].Payload, want[i][f]) {
						errs <- fmt.Errorf("reader %d chunk %d frame %d: payload differs from serial read", g, i, f)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestOpenArchiveTypedErrors(t *testing.T) {
	data, _ := buildArchiveBytes(t, 2)

	t.Run("zero-length file", func(t *testing.T) {
		_, err := OpenChunkArchiveAt(bytes.NewReader(nil))
		if !errors.Is(err, ErrCorruptRecord) {
			t.Fatalf("want ErrCorruptRecord, got %v", err)
		}
		if errors.Is(err, io.EOF) {
			t.Fatalf("raw io.EOF must not surface: %v", err)
		}
	})
	t.Run("truncated stream header", func(t *testing.T) {
		_, err := OpenChunkArchiveAt(bytes.NewReader(data[:10]))
		if !errors.Is(err, ErrCorruptRecord) {
			t.Fatalf("want ErrCorruptRecord, got %v", err)
		}
	})
	t.Run("truncated chunk index", func(t *testing.T) {
		// Cut inside the first chunk record's header (just past the
		// stream header) so the index scan hits a partial record.
		_, err := OpenChunkArchiveAt(bytes.NewReader(data[:archiveHeaderLen+10]))
		if !errors.Is(err, ErrCorruptRecord) {
			t.Fatalf("want ErrCorruptRecord, got %v", err)
		}
		if errors.Is(err, io.EOF) {
			t.Fatalf("raw io.EOF must not surface: %v", err)
		}
	})
	t.Run("bad magic", func(t *testing.T) {
		bad := bytes.Clone(data)
		bad[0] ^= 0xFF
		_, err := OpenChunkArchiveAt(bytes.NewReader(bad))
		if !errors.Is(err, ErrCorruptRecord) {
			t.Fatalf("want ErrCorruptRecord, got %v", err)
		}
	})
	t.Run("chunk not found", func(t *testing.T) {
		a, err := OpenChunkArchiveAt(bytes.NewReader(data))
		if err != nil {
			t.Fatal(err)
		}
		if _, _, err := a.ReadChunk(99); !errors.Is(err, ErrChunkNotFound) {
			t.Fatalf("ReadChunk(99): want ErrChunkNotFound, got %v", err)
		}
		if _, _, err := a.ReadChunk(-1); !errors.Is(err, ErrChunkNotFound) {
			t.Fatalf("ReadChunk(-1): want ErrChunkNotFound, got %v", err)
		}
		if _, err := a.Info(99); !errors.Is(err, ErrChunkNotFound) {
			t.Fatalf("Info(99): want ErrChunkNotFound, got %v", err)
		}
	})
	t.Run("archive closed", func(t *testing.T) {
		a, err := OpenChunkArchiveAt(bytes.NewReader(data))
		if err != nil {
			t.Fatal(err)
		}
		if err := a.Close(); err != nil {
			t.Fatal(err)
		}
		if err := a.Close(); err != nil {
			t.Fatalf("Close must be idempotent: %v", err)
		}
		if _, _, err := a.ReadChunk(0); !errors.Is(err, ErrArchiveClosed) {
			t.Fatalf("want ErrArchiveClosed, got %v", err)
		}
	})
}

// trackingReaderAt records every byte range fetched through ReadAt.
type trackingReaderAt struct {
	r  *bytes.Reader
	mu sync.Mutex
	// reads holds [start, end) ranges in call order.
	reads [][2]int64
}

func (tr *trackingReaderAt) ReadAt(p []byte, off int64) (int, error) {
	n, err := tr.r.ReadAt(p, off)
	if n > 0 {
		tr.mu.Lock()
		tr.reads = append(tr.reads, [2]int64{off, off + int64(n)})
		tr.mu.Unlock()
	}
	return n, err
}

// TestReaderAtReadChunkLocality re-pins the random-access guarantee on the
// native ReaderAt path: indexing reads no payload bytes, and ReadChunk(i)
// reads exclusively inside chunk i's payload range.
func TestReaderAtReadChunkLocality(t *testing.T) {
	data, _ := buildArchiveBytes(t, 3)
	tr := &trackingReaderAt{r: bytes.NewReader(data)}
	a, err := OpenChunkArchiveAt(tr)
	if err != nil {
		t.Fatal(err)
	}
	payload := func(i int) (int64, int64) {
		info, err := a.Info(i)
		if err != nil {
			t.Fatal(err)
		}
		return info.Offset, info.Offset + info.Length
	}
	for i := 0; i < a.NumChunks(); i++ {
		lo, hi := payload(i)
		for _, rd := range tr.reads {
			if rd[0] < hi && rd[1] > lo {
				t.Fatalf("Open read [%d,%d) inside chunk %d payload [%d,%d)", rd[0], rd[1], i, lo, hi)
			}
		}
	}
	tr.reads = nil
	if _, _, err := a.ReadChunk(1); err != nil {
		t.Fatal(err)
	}
	lo, hi := payload(1)
	if len(tr.reads) == 0 {
		t.Fatal("ReadChunk read nothing")
	}
	for _, rd := range tr.reads {
		if rd[0] < lo || rd[1] > hi {
			t.Fatalf("ReadChunk(1) read [%d,%d) outside its payload [%d,%d)", rd[0], rd[1], lo, hi)
		}
	}
}
