package predict

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"videoapp/internal/frame"
)

func gradientFrame(w, h int) *frame.Frame {
	f := frame.MustNew(w, h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			f.Y[y*w+x] = uint8((x*3 + y*5) % 256)
		}
	}
	return f
}

func TestIntraVerticalCopiesTopRow(t *testing.T) {
	rec := gradientFrame(48, 48)
	pred := IntraPredict16(rec, 1, 1, IntraVertical)
	for x := 0; x < 16; x++ {
		want := rec.LumaAt(16+x, 15)
		for y := 0; y < 16; y++ {
			if pred[y*16+x] != want {
				t.Fatalf("col %d row %d: got %d, want %d", x, y, pred[y*16+x], want)
			}
		}
	}
}

func TestIntraHorizontalCopiesLeftCol(t *testing.T) {
	rec := gradientFrame(48, 48)
	pred := IntraPredict16(rec, 1, 1, IntraHorizontal)
	for y := 0; y < 16; y++ {
		want := rec.LumaAt(15, 16+y)
		for x := 0; x < 16; x++ {
			if pred[y*16+x] != want {
				t.Fatalf("row %d: got %d, want %d", y, pred[y*16+x], want)
			}
		}
	}
}

func TestIntraDCNoNeighbors(t *testing.T) {
	rec := gradientFrame(48, 48)
	pred := IntraPredict16(rec, 0, 0, IntraDC)
	for _, v := range pred {
		if v != 128 {
			t.Fatalf("corner MB without neighbors must predict 128, got %d", v)
		}
	}
}

func TestIntraUnavailableModeFallsBackDeterministically(t *testing.T) {
	rec := gradientFrame(48, 48)
	// Vertical at the top row has no above neighbor: must equal the DC
	// fallback so encoder and decoder agree.
	v := IntraPredict16(rec, 1, 0, IntraVertical)
	dc := IntraPredict16(rec, 1, 0, IntraDC)
	if v != dc {
		t.Fatal("unavailable vertical must fall back to DC")
	}
}

func TestBestIntraModePicksExactMatch(t *testing.T) {
	rec := frame.MustNew(48, 48)
	// Build a vertical pattern: each column constant, copied from row above.
	for y := 0; y < 48; y++ {
		for x := 0; x < 48; x++ {
			rec.Y[y*48+x] = uint8(x * 5 % 256)
		}
	}
	orig := rec.Clone()
	mode, _, sad := BestIntraMode(orig, rec, 1, 1)
	if sad != 0 {
		t.Fatalf("perfect vertical pattern should give SAD 0, got %d (mode %d)", sad, mode)
	}
	if mode != IntraVertical {
		t.Fatalf("mode = %d, want vertical", mode)
	}
}

func TestIntraFootprintWeights(t *testing.T) {
	fp := IntraFootprint(1, 1, 4, IntraVertical)
	if len(fp) != 1 || fp[0].MB != (frame.MB{X: 1, Y: 0}) || fp[0].Pixels != 256 {
		t.Fatalf("vertical footprint %v", fp)
	}
	fp = IntraFootprint(1, 1, 4, IntraPlane)
	total := 0
	for _, w := range fp {
		total += w.Pixels
	}
	if total != 256 {
		t.Fatalf("plane footprint pixels %d, want 256", total)
	}
	if fp := IntraFootprint(0, 0, 4, IntraDC); fp != nil {
		t.Fatal("no neighbors -> no footprint")
	}
}

func TestMedianMV(t *testing.T) {
	a, b, c := MV{10, 0}, MV{20, 5}, MV{30, -5}
	if got := MedianMV(a, b, c, true, true, true); got != (MV{20, 0}) {
		t.Fatalf("median = %v", got)
	}
	if got := MedianMV(a, b, c, false, false, false); got != (MV{}) {
		t.Fatal("no neighbors -> zero")
	}
	if got := MedianMV(a, b, c, true, false, false); got != a {
		t.Fatal("only A -> A")
	}
	// B and C available: median of (0, B, C).
	if got := MedianMV(a, b, c, false, true, true); got != (MV{20, 0}) {
		t.Fatalf("got %v", got)
	}
}

func TestMedianMVProperty(t *testing.T) {
	prop := func(ax, ay, bx, by, cx, cy int16) bool {
		a := ClampMV(MV{ax % 64, ay % 64})
		b := ClampMV(MV{bx % 64, by % 64})
		c := ClampMV(MV{cx % 64, cy % 64})
		m := MedianMV(a, b, c, true, true, true)
		// Median must be within the min/max of the inputs per component.
		minX, maxX := min3(a.X, b.X, c.X), max3(a.X, b.X, c.X)
		minY, maxY := min3(a.Y, b.Y, c.Y), max3(a.Y, b.Y, c.Y)
		return m.X >= minX && m.X <= maxX && m.Y >= minY && m.Y <= maxY
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func min3(a, b, c int16) int16 {
	m := a
	if b < m {
		m = b
	}
	if c < m {
		m = c
	}
	return m
}

func max3(a, b, c int16) int16 {
	m := a
	if b > m {
		m = b
	}
	if c > m {
		m = c
	}
	return m
}

func TestPartitionRectsTile(t *testing.T) {
	for s := PartitionShape(0); s < numPartShapes; s++ {
		var cover [16][16]int
		for _, r := range PartitionRects(s) {
			for y := r.Y; y < r.Y+r.H; y++ {
				for x := r.X; x < r.X+r.W; x++ {
					cover[y][x]++
				}
			}
		}
		for y := 0; y < 16; y++ {
			for x := 0; x < 16; x++ {
				if cover[y][x] != 1 {
					t.Fatalf("shape %d: pixel (%d,%d) covered %d times", s, x, y, cover[y][x])
				}
			}
		}
	}
}

func TestMotionSearchFindsTranslation(t *testing.T) {
	// ref shifted by (3, 2) gives cur; the search must find mv = (3, 2)
	// (reading ref at +3 recovers cur content). A low-frequency texture
	// makes the SAD landscape unimodal within the search range, as for
	// natural video, so gradient-style search converges to the optimum.
	ref := frame.MustNew(64, 64)
	for y := 0; y < 64; y++ {
		for x := 0; x < 64; x++ {
			v := 128 + 55*math.Sin(float64(x)*0.13) + 45*math.Cos(float64(y)*0.11) + 20*math.Sin(float64(x+y)*0.07)
			ref.Y[y*64+x] = frame.ClampU8(int(v))
		}
	}
	cur := frame.MustNew(64, 64)
	for y := 0; y < 64; y++ {
		for x := 0; x < 64; x++ {
			cur.Y[y*64+x] = ref.LumaAt(x+3, y+2)
		}
	}
	mv, cost := MotionSearch(cur, ref, 16, 16, 16, 16, MV{}, 16)
	if mv != (MV{3, 2}) {
		t.Fatalf("mv = %v, want (3,2), cost %d", mv, cost)
	}
	if SAD(cur, ref, 16, 16, 16, 16, mv) != 0 {
		t.Fatal("found vector must give zero SAD")
	}
}

func TestMotionSearchRespectsRange(t *testing.T) {
	ref := gradientFrame(64, 64)
	cur := gradientFrame(64, 64)
	mv, _ := MotionSearch(cur, ref, 16, 16, 16, 16, MV{}, 4)
	if mv.X < -4 || mv.X > 4 || mv.Y < -4 || mv.Y > 4 {
		t.Fatalf("mv %v outside search range", mv)
	}
}

func TestCompensateMatchesLumaAt(t *testing.T) {
	ref := gradientFrame(64, 64)
	dst := make([]uint8, 8*8)
	Compensate(dst, ref, 56, 56, 8, 8, MV{10, 10}) // runs off the edge
	for y := 0; y < 8; y++ {
		for x := 0; x < 8; x++ {
			if dst[y*8+x] != ref.LumaAt(56+x+10, 56+y+10) {
				t.Fatalf("pixel (%d,%d)", x, y)
			}
		}
	}
}

func TestCompensateBiAverages(t *testing.T) {
	a, b := frame.MustNew(16, 16), frame.MustNew(16, 16)
	a.Fill(100, 128, 128)
	b.Fill(50, 128, 128)
	dst := make([]uint8, 16)
	CompensateBi(dst, a, b, 0, 0, 4, 4, MV{}, MV{})
	for _, v := range dst {
		if v != 75 {
			t.Fatalf("bi average %d, want 75", v)
		}
	}
}

func TestFootprintConservation(t *testing.T) {
	// Pixel counts must always sum to the rectangle area.
	prop := func(cx, cy, mvx, mvy int16) bool {
		mv := ClampMV(MV{mvx % 64, mvy % 64})
		x := int(cx%4) * 16
		y := int(cy%3) * 16
		if x < 0 {
			x = -x
		}
		if y < 0 {
			y = -y
		}
		fp := Footprint(64, 48, x, y, 16, 16, mv)
		total := 0
		for _, w := range fp {
			total += w.Pixels
			if w.MB.X < 0 || w.MB.X >= 4 || w.MB.Y < 0 || w.MB.Y >= 3 {
				return false
			}
		}
		return total == 256
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestFootprintAlignedSingleMB(t *testing.T) {
	fp := Footprint(64, 64, 16, 16, 16, 16, MV{})
	if len(fp) != 1 || fp[0].MB != (frame.MB{X: 1, Y: 1}) || fp[0].Pixels != 256 {
		t.Fatalf("aligned footprint %v", fp)
	}
}

func TestFootprintStraddlesFourMBs(t *testing.T) {
	fp := Footprint(64, 64, 16, 16, 16, 16, MV{8, 8})
	if len(fp) != 4 {
		t.Fatalf("straddling footprint has %d MBs, want 4", len(fp))
	}
	for _, w := range fp {
		if w.Pixels != 64 {
			t.Fatalf("straddle at +8/+8 gives 64 px per MB, got %v", fp)
		}
	}
}

func TestFootprintEdgeClampConcentrates(t *testing.T) {
	// A vector far off the top-left corner references only MB (0,0).
	fp := Footprint(64, 64, 0, 0, 16, 16, MV{-60, -60})
	if len(fp) != 1 || fp[0].MB != (frame.MB{}) || fp[0].Pixels != 256 {
		t.Fatalf("clamped footprint %v", fp)
	}
}

func TestClampMV(t *testing.T) {
	if got := ClampMV(MV{100, -100}); got != (MV{MaxMV, -MaxMV}) {
		t.Fatalf("clamp %v", got)
	}
	if got := ClampMV(MV{5, -7}); got != (MV{5, -7}) {
		t.Fatal("in-range must pass through")
	}
}

func BenchmarkMotionSearch16x16(b *testing.B) {
	b.ReportAllocs()
	rng := rand.New(rand.NewSource(1))
	ref := frame.MustNew(320, 176)
	for i := range ref.Y {
		ref.Y[i] = uint8(rng.Intn(256))
	}
	cur := ref.Clone()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MotionSearch(cur, ref, 160, 80, 16, 16, MV{}, 16)
	}
}
