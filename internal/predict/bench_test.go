package predict

import (
	"fmt"
	"math/rand"
	"testing"

	"videoapp/internal/frame"
)

// benchFrames builds a current/reference frame pair with correlated noise so
// SAD values and search trajectories resemble real inter coding rather than
// the degenerate all-zero case.
func benchFrames(w, h int) (*frame.Frame, *frame.Frame) {
	rng := rand.New(rand.NewSource(7))
	cur, ref := frame.MustNew(w, h), frame.MustNew(w, h)
	for i := range ref.Y {
		ref.Y[i] = uint8(rng.Intn(256))
	}
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			// cur is ref shifted by (3, 1) plus noise: a realistic motion field.
			v := int(ref.LumaAt(x-3, y-1)) + rng.Intn(9) - 4
			cur.Y[y*w+x] = frame.ClampU8(v)
		}
	}
	return cur, ref
}

// BenchmarkSAD measures the block-matching kernel at the three partition
// widths the encoder uses, over a grid of candidate vectors (all interior, so
// the fast path is eligible; the scalar edge path is covered by BenchmarkSADEdge).
func BenchmarkSAD(b *testing.B) {
	cur, ref := benchFrames(128, 128)
	for _, size := range []int{16, 8, 4} {
		b.Run(fmt.Sprintf("w=%d", size), func(b *testing.B) {
			b.ReportAllocs()
			sink := 0
			for i := 0; i < b.N; i++ {
				for _, mv := range [8]MV{{0, 0}, {1, 0}, {-1, 0}, {0, 1}, {0, -1}, {3, 1}, {-3, -1}, {5, 5}} {
					sink += SAD(cur, ref, 48, 48, size, size, mv)
				}
			}
			if sink < 0 {
				b.Fatal("impossible")
			}
		})
	}
}

// BenchmarkSADEdge pins the cost of the clamped (frame-border) path.
func BenchmarkSADEdge(b *testing.B) {
	cur, ref := benchFrames(128, 128)
	b.ReportAllocs()
	sink := 0
	for i := 0; i < b.N; i++ {
		sink += SAD(cur, ref, 0, 0, 16, 16, MV{-8, -8})
		sink += SAD(cur, ref, 112, 112, 16, 16, MV{8, 8})
	}
	if sink < 0 {
		b.Fatal("impossible")
	}
}

// BenchmarkMotionSearch measures the full search loop the encoder runs per
// partition: the kernel optimizations (word-wide SAD plus early termination
// against the running minimum) show up here end to end.
func BenchmarkMotionSearch(b *testing.B) {
	cur, ref := benchFrames(128, 128)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for my := 1; my < 7; my++ {
			for mx := 1; mx < 7; mx++ {
				MotionSearch(cur, ref, mx*16, my*16, 16, 16, MV{}, 16)
			}
		}
	}
}
