package predict

import (
	"encoding/binary"
	"math"

	"videoapp/internal/frame"
)

// This file holds the block-matching kernel. The exhaustive motion search
// evaluates thousands of candidate vectors per macroblock, and each
// evaluation is a sum of absolute differences over the partition rectangle —
// the single hottest loop in the encoder. Two mechanical optimizations keep
// results bit-identical while removing most of the work:
//
//  1. Word-wide SAD: when neither block touches a frame edge (no clamping),
//     rows are contiguous byte runs, and eight pixel pairs are differenced at
//     once with a SWAR emulation of the psadbw instruction on uint64 loads.
//
//  2. Early termination: callers pass the running minimum as a limit. Once
//     the partial sum reaches the limit the candidate cannot win, and the
//     kernel returns the partial sum. Search loops only accept candidates
//     whose cost is strictly below the current best, so an early-terminated
//     (underestimated) value changes no accept/reject decision: the exact
//     SAD is >= the partial sum, and both are >= the limit.
//
// maxSADLimit disables early termination (an exact computation).
const maxSADLimit = math.MaxInt

const (
	swarH    = 0x8080808080808080
	swarLo8  = 0x0101010101010101
	swarLo16 = 0x0001000100010001
	swarM16  = 0x00ff00ff00ff00ff
)

// sad8 returns the sum of absolute byte differences of the eight byte pairs
// packed in a and b — a SWAR psadbw. Bytewise subtraction uses the
// borrow-contained form ((x|H) - (y&^H)) ^ ((x^^y) & H); the per-byte
// "x >= y" mask then selects between the two subtraction directions.
func sad8(a, b uint64) int {
	t := (a | swarH) - (b &^ swarH)
	d1 := t ^ ((a ^ ^b) & swarH)                            // bytewise a-b (mod 256)
	d2 := ((b | swarH) - (a &^ swarH)) ^ ((b ^ ^a) & swarH) // bytewise b-a
	ge := (a & ^b & swarH) | (^(a ^ b) & t & swarH)
	m := ((ge >> 7) & swarLo8) * 0xff // 0xff per byte where a >= b
	abs := (d1 & m) | (d2 &^ m)
	// Horizontal sum: fold bytes into 16-bit lanes, then one multiply.
	s := (abs & swarM16) + ((abs >> 8) & swarM16)
	return int((s * swarLo16) >> 48)
}

// sadRow sums absolute differences over two contiguous w-byte rows using
// 8-byte words, a 4-byte half word, and a scalar tail.
func sadRow(a, c []uint8) int {
	sad := 0
	x := 0
	for ; x+8 <= len(a); x += 8 {
		sad += sad8(binary.LittleEndian.Uint64(a[x:]), binary.LittleEndian.Uint64(c[x:]))
	}
	if x+4 <= len(a) {
		sad += sad8(uint64(binary.LittleEndian.Uint32(a[x:])), uint64(binary.LittleEndian.Uint32(c[x:])))
		x += 4
	}
	for ; x < len(a); x++ {
		d := int(a[x]) - int(c[x])
		if d < 0 {
			d = -d
		}
		sad += d
	}
	return sad
}

// interior reports whether the w×h rectangle at (x, y) lies fully inside the
// f frame, so row reads need no edge clamping.
func interior(f *frame.Frame, x, y, w, h int) bool {
	return x >= 0 && y >= 0 && x+w <= f.W && y+h <= f.H
}

// SADLimit computes the sum of absolute differences between the cur
// rectangle at (cx, cy) and the ref rectangle displaced by mv, with edge
// clamping, stopping early once the running sum reaches limit (checked at
// row boundaries). The result is exact whenever it is below limit; an
// early-terminated result is a lower bound on the exact SAD that is already
// >= limit, which strict-minimum searches reject identically.
func SADLimit(cur, ref *frame.Frame, cx, cy, w, h int, mv MV, limit int) int {
	rx, ry := cx+int(mv.X), cy+int(mv.Y)
	if interior(cur, cx, cy, w, h) && interior(ref, rx, ry, w, h) {
		sad := 0
		for y := 0; y < h; y++ {
			co := (cy+y)*cur.W + cx
			ro := (ry+y)*ref.W + rx
			sad += sadRow(cur.Y[co:co+w], ref.Y[ro:ro+w])
			if sad >= limit {
				return sad
			}
		}
		return sad
	}
	sad := 0
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			d := int(cur.LumaAt(cx+x, cy+y)) - int(ref.LumaAt(rx+x, ry+y))
			if d < 0 {
				d = -d
			}
			sad += d
		}
		if sad >= limit {
			return sad
		}
	}
	return sad
}

// sadAgainstLimit is SADLimit against a flat row-major prediction buffer
// instead of a second frame.
func sadAgainstLimit(orig *frame.Frame, cx, cy, w, h int, pred []uint8, limit int) int {
	sad := 0
	if interior(orig, cx, cy, w, h) {
		for y := 0; y < h; y++ {
			co := (cy+y)*orig.W + cx
			sad += sadRow(orig.Y[co:co+w], pred[y*w:y*w+w])
			if sad >= limit {
				return sad
			}
		}
		return sad
	}
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			d := int(orig.LumaAt(cx+x, cy+y)) - int(pred[y*w+x])
			if d < 0 {
				d = -d
			}
			sad += d
		}
		if sad >= limit {
			return sad
		}
	}
	return sad
}

// SADAgainst computes the exact SAD between the orig rectangle at (cx, cy)
// and a flat row-major prediction buffer.
func SADAgainst(orig *frame.Frame, cx, cy, w, h int, pred []uint8) int {
	return sadAgainstLimit(orig, cx, cy, w, h, pred, maxSADLimit)
}

// SADAgainstLimit is SADAgainst with early termination at limit, under the
// same exactness contract as SADLimit.
func SADAgainstLimit(orig *frame.Frame, cx, cy, w, h int, pred []uint8, limit int) int {
	return sadAgainstLimit(orig, cx, cy, w, h, pred, limit)
}
