package predict

import (
	"encoding/binary"
	"math/rand"
	"testing"

	"videoapp/internal/frame"
)

// sadScalar is the pre-optimization reference implementation: plain
// byte-by-byte absolute differences through the clamped accessor.
func sadScalar(cur, ref *frame.Frame, cx, cy, w, h int, mv MV) int {
	sad := 0
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			d := int(cur.LumaAt(cx+x, cy+y)) - int(ref.LumaAt(cx+x+int(mv.X), cy+y+int(mv.Y)))
			if d < 0 {
				d = -d
			}
			sad += d
		}
	}
	return sad
}

// TestSAD8Exhaustive checks the SWAR byte-difference primitive against every
// byte pair, in every lane position.
func TestSAD8Exhaustive(t *testing.T) {
	for lane := 0; lane < 8; lane++ {
		for a := 0; a < 256; a++ {
			for b := 0; b < 256; b++ {
				wa := uint64(a) << (8 * lane)
				wb := uint64(b) << (8 * lane)
				want := a - b
				if want < 0 {
					want = -want
				}
				if got := sad8(wa, wb); got != want {
					t.Fatalf("sad8 lane %d: |%d-%d| = %d, got %d", lane, a, b, want, got)
				}
			}
		}
	}
}

// TestSAD8AllLanes cross-checks full random words against a per-byte sum.
func TestSAD8AllLanes(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 100000; i++ {
		a, b := rng.Uint64(), rng.Uint64()
		want := 0
		var ab, bb [8]byte
		binary.LittleEndian.PutUint64(ab[:], a)
		binary.LittleEndian.PutUint64(bb[:], b)
		for j := 0; j < 8; j++ {
			d := int(ab[j]) - int(bb[j])
			if d < 0 {
				d = -d
			}
			want += d
		}
		if got := sad8(a, b); got != want {
			t.Fatalf("sad8(%#x, %#x) = %d, want %d", a, b, got, want)
		}
	}
}

// TestSADMatchesScalar proves exact equivalence of the word-wide kernel and
// the scalar reference on random content: interior blocks, frame-edge blocks
// (clamped path), and every partition width the encoder uses, 4 through 16,
// including non-multiple-of-8 widths that exercise the 4-byte and scalar
// tails.
func TestSADMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	cur, ref := frame.MustNew(64, 48), frame.MustNew(64, 48)
	for i := range cur.Y {
		cur.Y[i] = uint8(rng.Intn(256))
		ref.Y[i] = uint8(rng.Intn(256))
	}
	widths := []int{4, 5, 7, 8, 9, 12, 13, 16}
	heights := []int{4, 8, 16}
	for _, w := range widths {
		for _, h := range heights {
			for trial := 0; trial < 200; trial++ {
				cx := rng.Intn(cur.W-w+1) - 4 // sometimes off the left edge
				cy := rng.Intn(cur.H-h+1) - 4
				mv := MV{int16(rng.Intn(41) - 20), int16(rng.Intn(41) - 20)}
				want := sadScalar(cur, ref, cx, cy, w, h, mv)
				if got := SAD(cur, ref, cx, cy, w, h, mv); got != want {
					t.Fatalf("SAD(%d,%d,%dx%d,mv=%v) = %d, want %d", cx, cy, w, h, mv, got, want)
				}
			}
		}
	}
	// Explicit corner cases: all four frame corners with outward vectors.
	for _, c := range [][2]int{{0, 0}, {48, 0}, {0, 32}, {48, 32}} {
		for _, mv := range []MV{{-9, -9}, {9, 9}, {-17, 5}, {5, -17}} {
			want := sadScalar(cur, ref, c[0], c[1], 16, 16, mv)
			if got := SAD(cur, ref, c[0], c[1], 16, 16, mv); got != want {
				t.Fatalf("corner SAD(%v, mv=%v) = %d, want %d", c, mv, got, want)
			}
		}
	}
}

// TestSADLimitContract pins the early-termination contract: results below
// the limit are exact, and early-terminated results are lower bounds of the
// exact SAD that still reach the limit.
func TestSADLimitContract(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	cur, ref := frame.MustNew(64, 48), frame.MustNew(64, 48)
	for i := range cur.Y {
		cur.Y[i] = uint8(rng.Intn(256))
		ref.Y[i] = uint8(rng.Intn(256))
	}
	for trial := 0; trial < 2000; trial++ {
		cx, cy := rng.Intn(48), rng.Intn(32)
		mv := MV{int16(rng.Intn(21) - 10), int16(rng.Intn(21) - 10)}
		exact := SAD(cur, ref, cx, cy, 16, 16, mv)
		limit := rng.Intn(exact + 100)
		got := SADLimit(cur, ref, cx, cy, 16, 16, mv, limit)
		if got < limit && got != exact {
			t.Fatalf("below-limit result must be exact: got %d, exact %d, limit %d", got, exact, limit)
		}
		if got >= limit && got > exact {
			t.Fatalf("terminated result must lower-bound the exact SAD: got %d, exact %d", got, exact)
		}
	}
}

// TestSADAgainstMatchesScalar covers the prediction-buffer variant used for
// bi-prediction candidates.
func TestSADAgainstMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	orig := frame.MustNew(48, 48)
	for i := range orig.Y {
		orig.Y[i] = uint8(rng.Intn(256))
	}
	for _, w := range []int{4, 8, 16} {
		for _, h := range []int{4, 8, 16} {
			pred := make([]uint8, w*h)
			for i := range pred {
				pred[i] = uint8(rng.Intn(256))
			}
			for _, origin := range [][2]int{{0, 0}, {16, 16}, {44, 44}} {
				cx, cy := origin[0], origin[1]
				want := 0
				for y := 0; y < h; y++ {
					for x := 0; x < w; x++ {
						d := int(orig.LumaAt(cx+x, cy+y)) - int(pred[y*w+x])
						if d < 0 {
							d = -d
						}
						want += d
					}
				}
				if got := SADAgainst(orig, cx, cy, w, h, pred); got != want {
					t.Fatalf("SADAgainst(%d,%d,%dx%d) = %d, want %d", cx, cy, w, h, got, want)
				}
			}
		}
	}
}

// TestMotionSearchMatchesScalarCost verifies that the limit-driven search
// returns identical vectors and costs to a search evaluating exact SADs
// only — the bit-identity property the encoder's determinism rests on.
func TestMotionSearchMatchesScalarCost(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	cur, ref := frame.MustNew(64, 64), frame.MustNew(64, 64)
	for i := range ref.Y {
		ref.Y[i] = uint8(rng.Intn(256))
	}
	for y := 0; y < 64; y++ {
		for x := 0; x < 64; x++ {
			cur.Y[y*64+x] = frame.ClampU8(int(ref.LumaAt(x-2, y+1)) + rng.Intn(7) - 3)
		}
	}
	// Reference search: the same traversal with exact scalar costs.
	refSearch := func(cx, cy, w, h int, pred MV, searchRange int) (MV, int) {
		cost := func(mv MV) int {
			d := mv.Sub(pred)
			return sadScalar(cur, ref, cx, cy, w, h, mv) + 2*(int(abs16(d.X))+int(abs16(d.Y)))
		}
		best := ClampMV(pred)
		bestCost := cost(best)
		if zc := cost(MV{}); zc < bestCost {
			best, bestCost = MV{}, zc
		}
		for _, step := range []int16{8, 4, 2, 1} {
			improved := true
			for improved {
				improved = false
				for _, d := range [8]MV{
					{step, 0}, {-step, 0}, {0, step}, {0, -step},
					{step, step}, {step, -step}, {-step, step}, {-step, -step},
				} {
					cand := ClampMV(best.Add(d))
					if cand == best {
						continue
					}
					if abs16(cand.X-pred.X) > int16(searchRange) || abs16(cand.Y-pred.Y) > int16(searchRange) {
						continue
					}
					if c := cost(cand); c < bestCost {
						best, bestCost = cand, c
						improved = true
					}
				}
			}
		}
		return best, bestCost
	}
	for _, block := range [][2]int{{0, 0}, {16, 16}, {32, 48}, {48, 0}} {
		for _, pred := range []MV{{}, {4, -2}, {-6, 6}} {
			wantMV, wantCost := refSearch(block[0], block[1], 16, 16, pred, 16)
			gotMV, gotCost := MotionSearch(cur, ref, block[0], block[1], 16, 16, pred, 16)
			if gotMV != wantMV || gotCost != wantCost {
				t.Fatalf("block %v pred %v: got (%v, %d), want (%v, %d)", block, pred, gotMV, gotCost, wantMV, wantCost)
			}
		}
	}
}
