package predict

import "videoapp/internal/frame"

// Half-pel motion: motion vectors measured in half-pixel units, with
// fractional samples produced by the H.264 6-tap filter (1,-5,20,20,-5,1)/32.
// Functions ending in HP interpret MV components as half-pel; encoder and
// decoder share them, so reconstructions stay bit-exact.

// SampleHP returns the luma sample at half-pel coordinates (hx, hy), where
// hx = 2·x + fx for integer pixel x and fractional bit fx. Out-of-frame
// coordinates clamp, as for integer samples.
func SampleHP(ref *frame.Frame, hx, hy int) uint8 {
	ix, fx := floorDiv2(hx)
	iy, fy := floorDiv2(hy)
	switch {
	case fx == 0 && fy == 0:
		return ref.LumaAt(ix, iy)
	case fx == 1 && fy == 0:
		return sixTapH(ref, ix, iy)
	case fx == 0 && fy == 1:
		return sixTapV(ref, ix, iy)
	default:
		// Diagonal: average of the horizontal and vertical half samples,
		// a deterministic simplification of H.264's 2D filter.
		b := int(sixTapH(ref, ix, iy))
		h := int(sixTapV(ref, ix, iy))
		return uint8((b + h + 1) / 2)
	}
}

func floorDiv2(v int) (int, int) {
	f := v & 1
	return (v - f) / 2, f
}

func sixTapH(ref *frame.Frame, x, y int) uint8 {
	v := int(ref.LumaAt(x-2, y)) - 5*int(ref.LumaAt(x-1, y)) + 20*int(ref.LumaAt(x, y)) +
		20*int(ref.LumaAt(x+1, y)) - 5*int(ref.LumaAt(x+2, y)) + int(ref.LumaAt(x+3, y))
	return frame.ClampU8((v + 16) >> 5)
}

func sixTapV(ref *frame.Frame, x, y int) uint8 {
	v := int(ref.LumaAt(x, y-2)) - 5*int(ref.LumaAt(x, y-1)) + 20*int(ref.LumaAt(x, y)) +
		20*int(ref.LumaAt(x, y+1)) - 5*int(ref.LumaAt(x, y+2)) + int(ref.LumaAt(x, y+3))
	return frame.ClampU8((v + 16) >> 5)
}

// CompensateHP writes the motion-compensated prediction for the rectangle at
// (cx, cy) with the half-pel vector mv.
func CompensateHP(dst []uint8, ref *frame.Frame, cx, cy, w, h int, mv MV) {
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			dst[y*w+x] = SampleHP(ref, 2*(cx+x)+int(mv.X), 2*(cy+y)+int(mv.Y))
		}
	}
}

// CompensateBiHP averages two half-pel compensations (bi-prediction).
func CompensateBiHP(dst []uint8, ref0, ref1 *frame.Frame, cx, cy, w, h int, mv0, mv1 MV) {
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			a := int(SampleHP(ref0, 2*(cx+x)+int(mv0.X), 2*(cy+y)+int(mv0.Y)))
			b := int(SampleHP(ref1, 2*(cx+x)+int(mv1.X), 2*(cy+y)+int(mv1.Y)))
			dst[y*w+x] = uint8((a + b + 1) / 2)
		}
	}
}

// SADHP computes the sum of absolute differences for a half-pel vector.
func SADHP(cur, ref *frame.Frame, cx, cy, w, h int, mv MV) int {
	return sadHPLimit(cur, ref, cx, cy, w, h, mv, maxSADLimit)
}

// sadHPLimit is SADHP with early termination at limit (checked per row),
// under the same exactness contract as SADLimit. Vectors with both
// components at full-pel positions delegate to the word-wide integer kernel.
func sadHPLimit(cur, ref *frame.Frame, cx, cy, w, h int, mv MV, limit int) int {
	if mv.X&1 == 0 && mv.Y&1 == 0 {
		return SADLimit(cur, ref, cx, cy, w, h, MV{X: mv.X / 2, Y: mv.Y / 2}, limit)
	}
	sad := 0
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			d := int(cur.LumaAt(cx+x, cy+y)) - int(SampleHP(ref, 2*(cx+x)+int(mv.X), 2*(cy+y)+int(mv.Y)))
			if d < 0 {
				d = -d
			}
			sad += d
		}
		if sad >= limit {
			return sad
		}
	}
	return sad
}

// MotionSearchHP finds the best half-pel vector: an integer-pel search
// seeded at the prediction, followed by a one-step half-pel refinement of
// the eight fractional neighbors. pred and the result are in half-pel units.
func MotionSearchHP(cur, ref *frame.Frame, cx, cy, w, h int, pred MV, searchRange int) (MV, int) {
	intPred := MV{X: pred.X / 2, Y: pred.Y / 2}
	intBest, _ := MotionSearch(cur, ref, cx, cy, w, h, intPred, searchRange)
	best := MV{X: intBest.X * 2, Y: intBest.Y * 2}
	// As in MotionSearch, candidates terminate early against the running
	// minimum; rejected candidates return >= limit, accepted ones are exact.
	cost := func(mv MV, limit int) int {
		d := mv.Sub(pred)
		rate := int(abs16(d.X)) + int(abs16(d.Y))
		if rate >= limit {
			return limit
		}
		return sadHPLimit(cur, ref, cx, cy, w, h, mv, limit-rate) + rate
	}
	bestCost := cost(best, maxSADLimit)
	for _, d := range [8]MV{
		{1, 0}, {-1, 0}, {0, 1}, {0, -1},
		{1, 1}, {1, -1}, {-1, 1}, {-1, -1},
	} {
		cand := ClampMV(best.Add(d))
		if c := cost(cand, bestCost); c < bestCost {
			// Note: refinement is a single pass; the integer optimum plus
			// one half step is within half a pel of the true optimum.
			best, bestCost = cand, c
		}
	}
	return best, bestCost
}

// FootprintHP reports the reference macroblocks of a half-pel compensation.
// Each destination pixel is attributed to its floor integer source pixel;
// the one-pixel tap fringe of the 6-tap filter is below the model's
// macroblock-granularity resolution (§4.1) and ignored.
func FootprintHP(refW, refH, cx, cy, rw, rh int, mv MV) []WeightedRef {
	return Footprint(refW, refH, cx, cy, rw, rh, MV{X: floor2(mv.X), Y: floor2(mv.Y)})
}

func floor2(v int16) int16 {
	if v >= 0 {
		return v / 2
	}
	return (v - 1) / 2
}
