// Package predict implements the pixel-prediction substrate of the codec:
// directional intra prediction, block-based motion estimation, motion
// compensation, median motion-vector prediction, and — crucially for
// VideoApp — the computation of reference footprints: which source
// macroblocks a prediction reads and with what pixel counts, which become
// the weighted edges of the dependency graph.
package predict

import "videoapp/internal/frame"

// IntraMode is a 16×16 luma intra prediction mode.
type IntraMode int

// Intra prediction modes, mirroring H.264's 16×16 luma modes.
const (
	IntraVertical IntraMode = iota
	IntraHorizontal
	IntraDC
	IntraPlane
	numIntraModes
)

// NumIntraModes is the count of intra modes (for validation of decoded values).
const NumIntraModes = int(numIntraModes)

// IntraPredict16 builds the 16×16 luma prediction for macroblock (mbx, mby)
// from the reconstructed frame rec. Neighbor availability follows the scan
// order: above requires mby > 0, left requires mbx > 0. Unavailable modes
// fall back to DC with the available neighbors (or 128 with none), exactly as
// the decoder will reproduce.
func IntraPredict16(rec *frame.Frame, mbx, mby int, mode IntraMode) [256]uint8 {
	return IntraPredict16Avail(rec, mbx, mby, mode, mby > 0, mbx > 0)
}

// IntraPredict16Avail is IntraPredict16 with explicit neighbor availability,
// used when slices cut the prediction dependency at their boundary.
func IntraPredict16Avail(rec *frame.Frame, mbx, mby int, mode IntraMode, hasAbove, hasLeft bool) [256]uint8 {
	var out [256]uint8
	px, py := mbx*frame.MBSize, mby*frame.MBSize
	switch {
	case mode == IntraVertical && hasAbove:
		for x := 0; x < 16; x++ {
			v := rec.LumaAt(px+x, py-1)
			for y := 0; y < 16; y++ {
				out[y*16+x] = v
			}
		}
	case mode == IntraHorizontal && hasLeft:
		for y := 0; y < 16; y++ {
			v := rec.LumaAt(px-1, py+y)
			for x := 0; x < 16; x++ {
				out[y*16+x] = v
			}
		}
	case mode == IntraPlane && hasAbove && hasLeft:
		// Simplified plane fit through the neighbor row and column.
		var h, v int
		for i := 1; i <= 8; i++ {
			h += i * (int(rec.LumaAt(px+7+i, py-1)) - int(rec.LumaAt(px+7-i, py-1)))
			v += i * (int(rec.LumaAt(px-1, py+7+i)) - int(rec.LumaAt(px-1, py+7-i)))
		}
		a := 16 * (int(rec.LumaAt(px+15, py-1)) + int(rec.LumaAt(px-1, py+15)))
		b := (5*h + 32) >> 6
		c := (5*v + 32) >> 6
		for y := 0; y < 16; y++ {
			for x := 0; x < 16; x++ {
				out[y*16+x] = frame.ClampU8((a + b*(x-7) + c*(y-7) + 16) >> 5)
			}
		}
	default:
		// DC (and the fallback for unavailable directional modes).
		sum, n := 0, 0
		if hasAbove {
			for x := 0; x < 16; x++ {
				sum += int(rec.LumaAt(px+x, py-1))
			}
			n += 16
		}
		if hasLeft {
			for y := 0; y < 16; y++ {
				sum += int(rec.LumaAt(px-1, py+y))
			}
			n += 16
		}
		dc := uint8(128)
		if n > 0 {
			dc = uint8((sum + n/2) / n)
		}
		for i := range out {
			out[i] = dc
		}
	}
	return out
}

// BestIntraMode evaluates all intra modes against the original pixels and
// returns the mode with the lowest SAD, its prediction, and the SAD value.
func BestIntraMode(orig, rec *frame.Frame, mbx, mby int) (IntraMode, [256]uint8, int) {
	return BestIntraModeAvail(orig, rec, mbx, mby, mby > 0, mbx > 0)
}

// BestIntraModeAvail is BestIntraMode with explicit neighbor availability.
func BestIntraModeAvail(orig, rec *frame.Frame, mbx, mby int, hasAbove, hasLeft bool) (IntraMode, [256]uint8, int) {
	px, py := mbx*frame.MBSize, mby*frame.MBSize
	bestMode, bestSAD := IntraDC, 1<<30
	var bestPred [256]uint8
	for m := IntraMode(0); m < numIntraModes; m++ {
		pred := IntraPredict16Avail(rec, mbx, mby, m, hasAbove, hasLeft)
		sad := 0
		for y := 0; y < 16; y++ {
			for x := 0; x < 16; x++ {
				d := int(orig.LumaAt(px+x, py+y)) - int(pred[y*16+x])
				if d < 0 {
					d = -d
				}
				sad += d
			}
		}
		if sad < bestSAD {
			bestMode, bestSAD, bestPred = m, sad, pred
		}
	}
	return bestMode, bestPred, bestSAD
}

// IntraFootprint returns the dependency weights of an intra-predicted
// macroblock on its source macroblocks: the neighbor MBs contributing
// reference pixels, weighted by pixel share as in §4.1 of the paper.
// The returned weights sum to 1 when any neighbor is available.
func IntraFootprint(mbx, mby, mbCols int, mode IntraMode) []WeightedRef {
	return IntraFootprintAvail(mbx, mby, mbCols, mode, mby > 0, mbx > 0)
}

// IntraFootprintAvail is IntraFootprint with explicit neighbor availability.
func IntraFootprintAvail(mbx, mby, mbCols int, mode IntraMode, hasAbove, hasLeft bool) []WeightedRef {
	above := frame.MB{X: mbx, Y: mby - 1}
	left := frame.MB{X: mbx - 1, Y: mby}
	switch {
	case mode == IntraVertical && hasAbove:
		return []WeightedRef{{MB: above, Pixels: 256}}
	case mode == IntraHorizontal && hasLeft:
		return []WeightedRef{{MB: left, Pixels: 256}}
	case mode == IntraPlane && hasAbove && hasLeft:
		return []WeightedRef{{MB: above, Pixels: 128}, {MB: left, Pixels: 128}}
	default:
		switch {
		case hasAbove && hasLeft:
			return []WeightedRef{{MB: above, Pixels: 128}, {MB: left, Pixels: 128}}
		case hasAbove:
			return []WeightedRef{{MB: above, Pixels: 256}}
		case hasLeft:
			return []WeightedRef{{MB: left, Pixels: 256}}
		}
		return nil
	}
}
