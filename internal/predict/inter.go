package predict

import "videoapp/internal/frame"

// MV is a motion vector in full luma pixels.
type MV struct{ X, Y int16 }

// Add returns the component-wise sum of two vectors.
func (m MV) Add(o MV) MV { return MV{m.X + o.X, m.Y + o.Y} }

// Sub returns the component-wise difference of two vectors.
func (m MV) Sub(o MV) MV { return MV{m.X - o.X, m.Y - o.Y} }

// MaxMV bounds motion vector components; decoded vectors outside this range
// (possible only in corrupt streams) are clamped.
const MaxMV = 64

// ClampMV saturates both components to the legal range.
func ClampMV(m MV) MV {
	c := func(v int16) int16 {
		if v < -MaxMV {
			return -MaxMV
		}
		if v > MaxMV {
			return MaxMV
		}
		return v
	}
	return MV{c(m.X), c(m.Y)}
}

// MedianMV computes the H.264 motion vector prediction: the component-wise
// median of the neighbors A (left), B (above), C (above-right), substituting
// zero vectors for unavailable neighbors when any neighbor exists.
func MedianMV(a, b, c MV, availA, availB, availC bool) MV {
	if !availA && !availB && !availC {
		return MV{}
	}
	// H.264 falls back to the single available neighbor when only A exists;
	// we generalize: unavailable neighbors contribute zero vectors.
	if availA && !availB && !availC {
		return a
	}
	var ax, bx, cx, ay, by, cy int16
	if availA {
		ax, ay = a.X, a.Y
	}
	if availB {
		bx, by = b.X, b.Y
	}
	if availC {
		cx, cy = c.X, c.Y
	}
	return MV{median3(ax, bx, cx), median3(ay, by, cy)}
}

func median3(a, b, c int16) int16 {
	if a > b {
		a, b = b, a
	}
	if b > c {
		b = c
	}
	if a > b {
		b = a
	}
	return b
}

// PartitionShape describes how a 16×16 macroblock is split for motion
// compensation. Shapes follow the H.264 partition tree; Part8x8Mixed allows
// each 8×8 quadrant its own sub-split.
type PartitionShape int

// Macroblock partition shapes.
const (
	Part16x16 PartitionShape = iota
	Part16x8
	Part8x16
	Part8x8
	Part8x4
	Part4x8
	Part4x4
	numPartShapes
)

// NumPartShapes is the number of partition shapes (for decoded-value checks).
const NumPartShapes = int(numPartShapes)

// Rect is a sub-rectangle of a macroblock, in luma pixels relative to the
// macroblock origin.
type Rect struct{ X, Y, W, H int }

// PartitionRects returns the compensation units of a shape. All shapes tile
// the full 16×16 block.
func PartitionRects(s PartitionShape) []Rect {
	switch s {
	case Part16x8:
		return []Rect{{0, 0, 16, 8}, {0, 8, 16, 8}}
	case Part8x16:
		return []Rect{{0, 0, 8, 16}, {8, 0, 8, 16}}
	case Part8x8:
		return []Rect{{0, 0, 8, 8}, {8, 0, 8, 8}, {0, 8, 8, 8}, {8, 8, 8, 8}}
	case Part8x4:
		rects := make([]Rect, 0, 8)
		for y := 0; y < 16; y += 4 {
			for x := 0; x < 16; x += 8 {
				rects = append(rects, Rect{x, y, 8, 4})
			}
		}
		return rects
	case Part4x8:
		rects := make([]Rect, 0, 8)
		for y := 0; y < 16; y += 8 {
			for x := 0; x < 16; x += 4 {
				rects = append(rects, Rect{x, y, 4, 8})
			}
		}
		return rects
	case Part4x4:
		rects := make([]Rect, 0, 16)
		for y := 0; y < 16; y += 4 {
			for x := 0; x < 16; x += 4 {
				rects = append(rects, Rect{x, y, 4, 4})
			}
		}
		return rects
	default:
		return []Rect{{0, 0, 16, 16}}
	}
}

// SAD computes the sum of absolute differences between the cur rectangle at
// (cx, cy) and the ref rectangle displaced by mv, with edge clamping.
func SAD(cur, ref *frame.Frame, cx, cy, w, h int, mv MV) int {
	return SADLimit(cur, ref, cx, cy, w, h, mv, maxSADLimit)
}

// MotionSearch finds the best integer-pel motion vector for the rectangle at
// (cx, cy) of size w×h, searching a diamond pattern seeded at the predicted
// vector pred within ±searchRange. The cost includes a small rate penalty on
// the vector difference so that near-prediction vectors win ties, as in a
// rate-distortion-aware encoder.
func MotionSearch(cur, ref *frame.Frame, cx, cy, w, h int, pred MV, searchRange int) (MV, int) {
	// cost evaluates a candidate with early termination against limit: once
	// the rate penalty alone, or the partial SAD plus the penalty, reaches
	// limit the candidate cannot beat the running minimum, and any returned
	// value >= limit is rejected by the strict comparisons below exactly as
	// the exact cost would be. Accepted candidates always carry exact costs.
	cost := func(mv MV, limit int) int {
		d := mv.Sub(pred)
		rate := 2 * (int(abs16(d.X)) + int(abs16(d.Y)))
		if rate >= limit {
			return limit
		}
		return SADLimit(cur, ref, cx, cy, w, h, mv, limit-rate) + rate
	}
	best := ClampMV(pred)
	bestCost := cost(best, maxSADLimit)
	if zc := cost(MV{}, bestCost); zc < bestCost {
		best, bestCost = MV{}, zc
	}
	// Coarse-to-fine square-pattern refinement until no improvement at each
	// step size. Eight directions per step avoid the axis-only traps of a
	// pure diamond on diagonal motion.
	for _, step := range []int16{8, 4, 2, 1} {
		improved := true
		for improved {
			improved = false
			for _, d := range [8]MV{
				{step, 0}, {-step, 0}, {0, step}, {0, -step},
				{step, step}, {step, -step}, {-step, step}, {-step, -step},
			} {
				cand := ClampMV(best.Add(d))
				if cand == best {
					continue
				}
				if abs16(cand.X-pred.X) > int16(searchRange) || abs16(cand.Y-pred.Y) > int16(searchRange) {
					continue
				}
				if c := cost(cand, bestCost); c < bestCost {
					best, bestCost = cand, c
					improved = true
				}
			}
		}
	}
	return best, bestCost
}

func abs16(v int16) int16 {
	if v < 0 {
		return -v
	}
	return v
}

// Compensate writes the motion-compensated luma prediction for the rectangle
// at absolute position (cx, cy) of size w×h into dst (row-major w×h),
// reading ref displaced by mv with edge clamping.
func Compensate(dst []uint8, ref *frame.Frame, cx, cy, w, h int, mv MV) {
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			dst[y*w+x] = ref.LumaAt(cx+x+int(mv.X), cy+y+int(mv.Y))
		}
	}
}

// CompensateBi writes the average of two motion-compensated predictions,
// used by bi-predicted B-frame partitions.
func CompensateBi(dst []uint8, ref0, ref1 *frame.Frame, cx, cy, w, h int, mv0, mv1 MV) {
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			a := int(ref0.LumaAt(cx+x+int(mv0.X), cy+y+int(mv0.Y)))
			b := int(ref1.LumaAt(cx+x+int(mv1.X), cy+y+int(mv1.Y)))
			dst[y*w+x] = uint8((a + b + 1) / 2)
		}
	}
}

// WeightedRef is one edge of the dependency graph in pixel units: the source
// macroblock and the number of its pixels referenced by the prediction.
type WeightedRef struct {
	MB     frame.MB
	Pixels int
}

// Footprint computes which macroblocks of a w×h reference frame a
// compensation of the rectangle at (cx, cy) displaced by mv actually reads,
// and how many pixels land in each, accounting for edge clamping. The pixel
// counts sum to the rectangle area.
func Footprint(refW, refH, cx, cy, rw, rh int, mv MV) []WeightedRef {
	// Clamped coordinates form contiguous runs of MB columns and rows, so
	// the histograms are small dense slices, emitted in raster order to
	// keep dependency records deterministic.
	colPix := pixelsPerMB(cx+int(mv.X), rw, refW)
	rowPix := pixelsPerMB(cy+int(mv.Y), rh, refH)
	out := make([]WeightedRef, 0, len(colPix)*len(rowPix))
	for _, r := range rowPix {
		for _, c := range colPix {
			out = append(out, WeightedRef{MB: frame.MB{X: c.mb, Y: r.mb}, Pixels: c.n * r.n})
		}
	}
	return out
}

type mbCount struct{ mb, n int }

// pixelsPerMB histograms the clamped coordinates start..start+len-1 by
// macroblock index along one axis, in ascending order.
func pixelsPerMB(start, length, limit int) []mbCount {
	var out []mbCount
	for i := 0; i < length; i++ {
		mb := clampInt(start+i, limit) / frame.MBSize
		if n := len(out); n > 0 && out[n-1].mb == mb {
			out[n-1].n++
		} else {
			out = append(out, mbCount{mb: mb, n: 1})
		}
	}
	return out
}

func clampInt(v, n int) int {
	if v < 0 {
		return 0
	}
	if v >= n {
		return n - 1
	}
	return v
}
