package predict

import (
	"math"
	"testing"

	"videoapp/internal/frame"
)

func rampFrame(w, h int) *frame.Frame {
	f := frame.MustNew(w, h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			f.Y[y*w+x] = uint8((x * 4) % 256)
		}
	}
	return f
}

func TestSampleHPIntegerPositions(t *testing.T) {
	f := rampFrame(64, 64)
	for _, c := range [][2]int{{0, 0}, {10, 20}, {63, 63}} {
		if got := SampleHP(f, 2*c[0], 2*c[1]); got != f.LumaAt(c[0], c[1]) {
			t.Fatalf("integer position (%d,%d): %d", c[0], c[1], got)
		}
	}
}

func TestSampleHPHalfBetweenEqualNeighborsIsExact(t *testing.T) {
	f := frame.MustNew(32, 32)
	f.Fill(77, 128, 128)
	if got := SampleHP(f, 2*10+1, 2*10); got != 77 {
		t.Fatalf("flat field half sample = %d", got)
	}
	if got := SampleHP(f, 2*10, 2*10+1); got != 77 {
		t.Fatalf("flat field vertical half sample = %d", got)
	}
	if got := SampleHP(f, 2*10+1, 2*10+1); got != 77 {
		t.Fatalf("flat field diagonal half sample = %d", got)
	}
}

func TestSampleHPInterpolatesOnRamp(t *testing.T) {
	// On a linear luma ramp, the 6-tap half sample sits between the two
	// neighbors (the filter is exact for linear signals away from clamps).
	f := rampFrame(64, 64)
	x, y := 20, 10
	a, b := int(f.LumaAt(x, y)), int(f.LumaAt(x+1, y))
	got := int(SampleHP(f, 2*x+1, 2*y))
	want := (a + b) / 2
	if got < want-1 || got > want+1 {
		t.Fatalf("ramp half sample %d, want ~%d (between %d and %d)", got, want, a, b)
	}
}

func TestCompensateHPEvenVectorMatchesInteger(t *testing.T) {
	f := rampFrame(64, 64)
	a := make([]uint8, 16*16)
	b := make([]uint8, 16*16)
	Compensate(a, f, 16, 16, 16, 16, MV{3, -2})
	CompensateHP(b, f, 16, 16, 16, 16, MV{6, -4})
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("even half-pel vector must equal integer compensation at %d", i)
		}
	}
}

func TestMotionSearchHPFindsHalfPelShift(t *testing.T) {
	// cur is ref shifted by exactly half a pixel (averaged neighbors): the
	// half-pel search must beat the best integer vector.
	ref := frame.MustNew(64, 64)
	for y := 0; y < 64; y++ {
		for x := 0; x < 64; x++ {
			v := 128 + 60*math.Sin(float64(x)*0.15)
			ref.Y[y*64+x] = frame.ClampU8(int(v))
		}
	}
	cur := frame.MustNew(64, 64)
	for y := 0; y < 64; y++ {
		for x := 0; x < 64; x++ {
			a := int(ref.LumaAt(x, y))
			b := int(ref.LumaAt(x+1, y))
			cur.Y[y*64+x] = uint8((a + b + 1) / 2)
		}
	}
	mv, _ := MotionSearchHP(cur, ref, 16, 16, 16, 16, MV{}, 8)
	if mv.X != 1 || mv.Y != 0 {
		t.Fatalf("mv = %v, want (1,0) half-pel", mv)
	}
	intSAD := SAD(cur, ref, 16, 16, 16, 16, MV{})
	hpSAD := SADHP(cur, ref, 16, 16, 16, 16, mv)
	if hpSAD >= intSAD {
		t.Fatalf("half-pel SAD %d not better than integer %d", hpSAD, intSAD)
	}
}

func TestFootprintHPConservation(t *testing.T) {
	for _, mv := range []MV{{0, 0}, {1, 1}, {-1, -1}, {7, -3}, {-15, 9}} {
		fp := FootprintHP(64, 64, 16, 16, 16, 16, mv)
		total := 0
		for _, w := range fp {
			total += w.Pixels
		}
		if total != 256 {
			t.Fatalf("mv %v: footprint pixels %d", mv, total)
		}
	}
}

func TestFloor2(t *testing.T) {
	cases := map[int16]int16{0: 0, 1: 0, 2: 1, 3: 1, -1: -1, -2: -1, -3: -2}
	for in, want := range cases {
		if got := floor2(in); got != want {
			t.Fatalf("floor2(%d) = %d, want %d", in, got, want)
		}
	}
}

func TestCompensateBiHPAverages(t *testing.T) {
	a, b := frame.MustNew(16, 16), frame.MustNew(16, 16)
	a.Fill(100, 128, 128)
	b.Fill(60, 128, 128)
	dst := make([]uint8, 16)
	CompensateBiHP(dst, a, b, 0, 0, 4, 4, MV{1, 0}, MV{0, 1})
	for _, v := range dst {
		if v != 80 {
			t.Fatalf("bi half-pel average %d", v)
		}
	}
}
