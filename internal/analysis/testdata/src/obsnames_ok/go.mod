module obsnamesok.example

go 1.24
