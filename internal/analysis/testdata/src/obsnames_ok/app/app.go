// Package app publishes metrics exclusively through registered obs
// constants.
package app

import (
	"context"

	"obsnamesok.example/obs"
)

// Record publishes per-request metrics.
func Record(ctx context.Context, o *obs.Observer) {
	o.Counter(obs.CtrFrames)
	obs.StartSpan(ctx, obs.StageDecode)
}
