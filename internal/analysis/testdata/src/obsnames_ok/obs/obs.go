// Package obs is a miniature observability package whose Names registry is
// in sync with its constant set.
package obs

import "context"

const (
	StageDecode = "decode"
	CtrFrames   = "frames"
	GaugeOpen   = "open_archives"
)

// Names lists exactly the registry constants.
var Names = []string{
	CtrFrames,
	GaugeOpen,
	StageDecode,
}

// Observer publishes counters.
type Observer struct{}

// Counter bumps the named counter.
func (o *Observer) Counter(name string) {}

// StartSpan opens a named tracing span.
func StartSpan(ctx context.Context, name string) context.Context { return ctx }
