module obsnames.example

go 1.24
