// Package app passes a typo'd literal and a dynamic value where registered
// obs constants are required — each would silently split a time series.
package app

import (
	"context"

	"obsnames.example/obs"
)

// Record publishes per-request metrics.
func Record(ctx context.Context, o *obs.Observer, name string) {
	o.Counter("framez")
	o.Counter(name)
	obs.StartSpan(ctx, obs.StageDecode)
}
