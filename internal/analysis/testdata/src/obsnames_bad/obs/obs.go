// Package obs is a miniature observability package whose generated Names
// registry has drifted: it lists a name with no backing constant and is
// missing two constants that were added without regenerating.
package obs

import "context"

const (
	StageDecode = "decode"
	CtrFrames   = "frames"
	GaugeOpen   = "open_archives"
)

// Names is stale relative to the constant set above.
var Names = []string{
	StageDecode,
	"stale_entry",
}

// Observer publishes counters.
type Observer struct{}

// Counter bumps the named counter.
func (o *Observer) Counter(name string) {}

// StartSpan opens a named tracing span.
func StartSpan(ctx context.Context, name string) context.Context { return ctx }
