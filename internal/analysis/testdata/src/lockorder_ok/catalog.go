// Package catalog is the negative lockorder fixture: every acquisition
// respects the declared order (outer rank 0 before inner rank 1), including
// nested critical sections and the lookup-then-lock pattern the real
// catalog uses.
package catalog

import "sync"

// Catalog is the multi-tenant server slot table.
type Catalog struct {
	mu      sync.Mutex // lock-order: 0 — catalog membership (outer)
	tenants map[string]*tenant
}

type tenant struct {
	mu   sync.Mutex // lock-order: 1 — tenant state (inner)
	open bool
}

// Lookup snapshots membership under the catalog lock, releases it, and only
// then touches the tenant lock — the post-PR-7 discipline.
func (c *Catalog) Lookup(name string) bool {
	c.mu.Lock()
	t := c.tenants[name]
	c.mu.Unlock()
	if t == nil {
		return false
	}
	t.mu.Lock()
	open := t.open
	t.mu.Unlock()
	return open
}

// Nest acquires in ascending declared order, which is allowed.
func (c *Catalog) Nest(t *tenant) int {
	c.mu.Lock()
	t.mu.Lock()
	n := len(c.tenants)
	t.mu.Unlock()
	c.mu.Unlock()
	return n
}

// closeLocked runs under t.mu and touches only unranked state — no
// inversion.
func closeLocked(t *tenant) {
	t.open = false
}

// Shut holds the tenant lock over a helper that acquires nothing ranked.
func (c *Catalog) Shut(t *tenant) {
	t.mu.Lock()
	closeLocked(t)
	t.mu.Unlock()
}
