module lockorderok.example

go 1.24
