module ctxfirstok.example

go 1.24
