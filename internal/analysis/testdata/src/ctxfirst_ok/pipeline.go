// Package pipeline follows the context conventions: ctx first everywhere,
// and the one documented context-less convenience wrapper carries an allow
// comment.
package pipeline

import "context"

// Process threads the caller's context as the first parameter.
func Process(ctx context.Context, name string) error {
	return run(ctx, name)
}

func run(ctx context.Context, name string) error {
	_ = ctx
	_ = name
	return nil
}

// ProcessAll is the documented context-less convenience form.
func ProcessAll(names []string) error {
	//vetvideoapp:allow ctxfirst — documented context-less convenience wrapper; callers needing cancellation use Process
	ctx := context.Background()
	for _, n := range names {
		if err := run(ctx, n); err != nil {
			return err
		}
	}
	return nil
}
