// Package store maps every bare io EOF sentinel to a typed error at the
// boundary, and marks the one deliberate pass-through with an allow comment.
package store

import (
	"errors"
	"fmt"
	"io"
)

// ErrCorruptRecord is the typed sentinel bare EOFs are mapped to.
var ErrCorruptRecord = errors.New("store: corrupt record")

// ReadHeader maps short reads to the typed sentinel at the boundary.
func ReadHeader(r io.Reader, buf []byte) error {
	if _, err := io.ReadFull(r, buf); err != nil {
		if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) { //vetvideoapp:allow wrapeof — this is the mapping site: bare EOFs are consumed here and converted to the typed sentinel
			return fmt.Errorf("%w: truncated header", ErrCorruptRecord)
		}
		return err
	}
	return nil
}

// Retryable consults only the typed sentinel.
func Retryable(err error) bool {
	return !errors.Is(err, ErrCorruptRecord)
}
