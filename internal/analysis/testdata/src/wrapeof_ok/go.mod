module wrapeofok.example

go 1.24
