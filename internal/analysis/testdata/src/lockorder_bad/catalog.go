// Package catalog re-introduces the PR-7 catalog ABBA lock inversion: the
// tenant lock is held while the catalog lock is acquired, both directly and
// through a helper call — the two shapes the deadlock actually shipped in.
package catalog

import "sync"

// Catalog is the multi-tenant server slot table.
type Catalog struct {
	mu      sync.Mutex // lock-order: 0 — catalog membership (outer)
	tenants map[string]*tenant
}

type tenant struct {
	mu   sync.Mutex // lock-order: 1 — tenant state (inner)
	open bool
}

// Remove holds the tenant lock and closes through the helper — the helper
// acquires Catalog.mu, inverting the declared order (the PR-7 deadlock).
func (c *Catalog) Remove(name string, t *tenant) {
	t.mu.Lock()
	c.closeTenantLocked(name, t)
	t.mu.Unlock()
}

// closeTenantLocked updates catalog membership under Catalog.mu; callers
// hold t.mu, so this acquisition is rank 0 under rank 1.
func (c *Catalog) closeTenantLocked(name string, t *tenant) {
	c.mu.Lock()
	delete(c.tenants, name)
	t.open = false
	c.mu.Unlock()
}

// gaugeUpdate is the direct form of the same inversion.
func (c *Catalog) gaugeUpdate(t *tenant) int {
	t.mu.Lock()
	c.mu.Lock()
	n := len(c.tenants)
	c.mu.Unlock()
	t.mu.Unlock()
	return n
}
