module lockorder.example

go 1.24
