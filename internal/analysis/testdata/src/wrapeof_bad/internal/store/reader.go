// Package store leaks bare io EOF sentinels out of the read path — the
// exact bug class the PR-6/PR-7 fuzzers hit: callers retried on
// io.ErrUnexpectedEOF instead of seeing ErrCorruptRecord.
package store

import (
	"errors"
	"io"
)

// ErrCorruptRecord is the typed sentinel bare EOFs must be mapped to.
var ErrCorruptRecord = errors.New("store: corrupt record")

// ReadHeader returns the bare sentinel instead of mapping it.
func ReadHeader(r io.Reader, buf []byte) error {
	if _, err := io.ReadFull(r, buf); err != nil {
		return io.ErrUnexpectedEOF
	}
	return nil
}

// Retryable compares against the bare sentinels instead of the typed ones.
func Retryable(err error) bool {
	if err == io.EOF {
		return false
	}
	return errors.Is(err, io.ErrUnexpectedEOF)
}

// classify switches on the bare sentinel.
func classify(err error) string {
	switch err {
	case io.EOF:
		return "eof"
	default:
		return "other"
	}
}
