module wrapeof.example

go 1.24
