module ctxfirst.example

go 1.24
