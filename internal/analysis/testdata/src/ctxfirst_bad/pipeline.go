// Package pipeline violates both context conventions: ctx is buried in the
// parameter list, and library code mints root contexts instead of
// threading the caller's.
package pipeline

import "context"

// Process takes ctx second, so deadlines do not read as the first concern.
func Process(name string, ctx context.Context) error {
	return run(ctx, name)
}

func run(ctx context.Context, name string) error {
	_ = ctx
	_ = name
	return nil
}

// Detach silently swaps the caller's context for a fresh root.
func Detach(name string) error {
	return run(context.Background(), name)
}

// Later was stubbed with a TODO context that never got threaded.
func Later(name string) error {
	return run(context.TODO(), name)
}
