// Package api carries a deprecation marker, which this module forbids:
// dead API is deleted, not left to rot behind a Deprecated notice.
package api

// OldOpen opens an archive by path.
//
// Deprecated: use Open instead.
func OldOpen(path string) error { return nil }
