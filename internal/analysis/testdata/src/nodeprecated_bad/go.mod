module nodeprecated.example

go 1.24
