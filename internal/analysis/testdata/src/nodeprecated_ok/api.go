// Package api has no deprecation markers; superseded APIs are removed
// outright.
package api

// Open opens an archive by path. The word "deprecated" mid-sentence is not
// a marker and must not be flagged.
func Open(path string) error { return nil }
