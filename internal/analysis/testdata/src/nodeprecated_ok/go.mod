module nodeprecatedok.example

go 1.24
