package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strconv"
)

// Lockorder flags lock-ordering inversions against declared `// lock-order:`
// annotations — the machine check for the PR-7 catalog ABBA deadlock, where
// one path acquired Catalog.mu then tenant.mu while the gauge path acquired
// tenant.mu then Catalog.mu.
//
// A mutex field or package-level mutex variable declares its rank with a
// trailing comment:
//
//	mu sync.Mutex // lock-order: 0 — catalog membership (outer)
//
// Lower ranks are outer locks and must be acquired first. The analyzer
// flags, within each function of the package, any acquisition of a
// lower-ranked lock while a higher-ranked one is held — directly, or through
// a call to another function of the package that (transitively) performs
// such an acquisition. Deferred calls and goroutine bodies run outside the
// current critical section's order and are not tracked; same-rank nesting is
// not checked (distinct instances of one rank are indistinguishable
// statically).
var Lockorder = &Analyzer{
	Name: "lockorder",
	Doc: "flags acquisitions that invert a declared `// lock-order:` annotation\n\n" +
		"Annotate sync.Mutex/RWMutex fields and package-level mutex variables with\n" +
		"`// lock-order: N` (lower N = outer lock, acquired first). Acquiring a\n" +
		"lower-ranked lock while holding a higher-ranked one — directly or via a\n" +
		"same-package call — is reported as an inversion. Guards against the PR-7\n" +
		"catalog/tenant ABBA deadlock.",
	Run: runLockorder,
}

var lockOrderRe = regexp.MustCompile(`lock-order:\s*(-?\d+)`)

// lockRank is one annotated mutex: its declared rank and a human label
// (Type.field or the variable name).
type lockRank struct {
	rank  int
	label string
}

// heldLock is one annotated lock currently held during the linear walk.
type heldLock struct {
	obj  *types.Var
	rank lockRank
	pos  token.Pos
}

// lockSummary is the per-function fact used for the transitive check: every
// rank the function may acquire while executing, and its same-package
// static callees.
type lockSummary struct {
	acquires map[int]lockRank
	callees  []*types.Func
}

func runLockorder(pass *Pass) error {
	ranks := collectLockRanks(pass)
	if len(ranks) == 0 {
		return nil
	}

	// Pass 1: per-function summaries (direct acquisitions + static callees).
	summaries := map[*types.Func]*lockSummary{}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, ok := pass.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			summaries[obj] = summarizeLocks(pass, fd.Body, ranks)
		}
	}
	closure := map[*types.Func]map[int]lockRank{}
	for fn := range summaries {
		transitiveAcquires(fn, summaries, closure, map[*types.Func]bool{})
	}

	// Pass 2: linear walk of every function (and every function literal as
	// its own context — closures run at times the enclosing order does not
	// constrain), tracking held annotated locks.
	w := &lockWalker{pass: pass, ranks: ranks, closure: closure}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					w.checkBody(fn.Body)
				}
				return true // descend: nested FuncLits get their own context
			case *ast.FuncLit:
				w.checkBody(fn.Body)
				return true
			}
			return true
		})
	}
	return nil
}

// collectLockRanks maps annotated mutex field/variable objects to their
// declared ranks.
func collectLockRanks(pass *Pass) map[*types.Var]lockRank {
	ranks := map[*types.Var]lockRank{}
	addField := func(owner string, name *ast.Ident, comment string) {
		m := lockOrderRe.FindStringSubmatch(comment)
		if m == nil {
			return
		}
		rank, err := strconv.Atoi(m[1])
		if err != nil {
			return
		}
		v, ok := pass.Info.Defs[name].(*types.Var)
		if !ok {
			return
		}
		label := name.Name
		if owner != "" {
			label = owner + "." + name.Name
		}
		ranks[v] = lockRank{rank: rank, label: label}
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				switch s := spec.(type) {
				case *ast.TypeSpec:
					st, ok := s.Type.(*ast.StructType)
					if !ok {
						continue
					}
					for _, field := range st.Fields.List {
						if !isMutexType(pass.Info, field.Type) {
							continue
						}
						comment := field.Doc.Text() + " " + field.Comment.Text()
						for _, name := range field.Names {
							addField(s.Name.Name, name, comment)
						}
					}
				case *ast.ValueSpec:
					if s.Type != nil && !isMutexType(pass.Info, s.Type) {
						continue
					}
					comment := gd.Doc.Text() + " " + s.Doc.Text() + " " + s.Comment.Text()
					for _, name := range s.Names {
						if v, ok := pass.Info.Defs[name].(*types.Var); ok && isMutex(v.Type()) {
							addField("", name, comment)
						}
					}
				}
			}
		}
	}
	return ranks
}

// isMutexType reports whether the type expression denotes sync.Mutex or
// sync.RWMutex.
func isMutexType(info *types.Info, expr ast.Expr) bool {
	tv, ok := info.Types[expr]
	if !ok {
		return false
	}
	return isMutex(tv.Type)
}

func isMutex(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false
	}
	return obj.Name() == "Mutex" || obj.Name() == "RWMutex"
}

// mutexOp resolves a call to x.mu.Lock()/Unlock()/RLock()/RUnlock() on an
// annotated lock, returning the lock's object and whether it is an acquire.
func mutexOp(pass *Pass, ranks map[*types.Var]lockRank, call *ast.CallExpr) (obj *types.Var, acquire, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return nil, false, false
	}
	var isAcquire bool
	switch sel.Sel.Name {
	case "Lock", "RLock":
		isAcquire = true
	case "Unlock", "RUnlock":
		isAcquire = false
	default:
		return nil, false, false
	}
	var target *types.Var
	switch x := ast.Unparen(sel.X).(type) {
	case *ast.SelectorExpr:
		if s, ok := pass.Info.Selections[x]; ok {
			target, _ = s.Obj().(*types.Var)
		} else {
			target, _ = pass.Info.Uses[x.Sel].(*types.Var)
		}
	case *ast.Ident:
		target, _ = pass.Info.Uses[x].(*types.Var)
	}
	if target == nil {
		return nil, false, false
	}
	if _, annotated := ranks[target]; !annotated {
		return nil, false, false
	}
	return target, isAcquire, true
}

// summarizeLocks records which annotated ranks a body acquires directly and
// which same-package functions it calls, skipping nested function literals
// (separate contexts).
func summarizeLocks(pass *Pass, body *ast.BlockStmt, ranks map[*types.Var]lockRank) *lockSummary {
	sum := &lockSummary{acquires: map[int]lockRank{}}
	ast.Inspect(body, func(n ast.Node) bool {
		switch nn := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.CallExpr:
			if obj, acquire, ok := mutexOp(pass, ranks, nn); ok {
				if acquire {
					r := ranks[obj]
					sum.acquires[r.rank] = r
				}
				return true
			}
			if callee := staticCallee(pass.Info, nn); callee != nil && callee.Pkg() == pass.Pkg {
				sum.callees = append(sum.callees, callee)
			}
		}
		return true
	})
	return sum
}

// transitiveAcquires computes every rank fn may acquire, following
// same-package static calls, with a visiting set guarding recursion.
func transitiveAcquires(fn *types.Func, summaries map[*types.Func]*lockSummary, memo map[*types.Func]map[int]lockRank, visiting map[*types.Func]bool) map[int]lockRank {
	if got, ok := memo[fn]; ok {
		return got
	}
	if visiting[fn] {
		return nil
	}
	visiting[fn] = true
	defer delete(visiting, fn)
	sum := summaries[fn]
	if sum == nil {
		return nil
	}
	out := map[int]lockRank{}
	for r, lr := range sum.acquires {
		out[r] = lr
	}
	for _, callee := range sum.callees {
		for r, lr := range transitiveAcquires(callee, summaries, memo, visiting) {
			if _, ok := out[r]; !ok {
				out[r] = lr
			}
		}
	}
	memo[fn] = out
	return out
}

// lockWalker performs the order check over one function body: a linear,
// branch-cloning walk tracking the currently-held annotated locks.
type lockWalker struct {
	pass    *Pass
	ranks   map[*types.Var]lockRank
	closure map[*types.Func]map[int]lockRank
}

func (w *lockWalker) checkBody(body *ast.BlockStmt) {
	held := []heldLock{}
	w.walkStmts(body.List, &held)
}

func (w *lockWalker) walkStmts(stmts []ast.Stmt, held *[]heldLock) {
	for _, s := range stmts {
		w.walkStmt(s, held)
	}
}

// walkStmt visits one statement. Branch bodies see a clone of the held set
// (their effects do not leak to the sequel — conservative against false
// positives from early-unlock-and-return patterns); straight-line
// lock/unlock calls mutate the live set.
func (w *lockWalker) walkStmt(s ast.Stmt, held *[]heldLock) {
	switch st := s.(type) {
	case nil:
	case *ast.ExprStmt:
		w.walkExpr(st.X, held)
	case *ast.AssignStmt:
		for _, e := range st.Rhs {
			w.walkExpr(e, held)
		}
	case *ast.DeclStmt:
		if gd, ok := st.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, e := range vs.Values {
						w.walkExpr(e, held)
					}
				}
			}
		}
	case *ast.ReturnStmt:
		for _, e := range st.Results {
			w.walkExpr(e, held)
		}
	case *ast.IfStmt:
		w.walkStmt(st.Init, held)
		w.walkExpr(st.Cond, held)
		branch := cloneHeld(*held)
		w.walkStmts(st.Body.List, &branch)
		if st.Else != nil {
			els := cloneHeld(*held)
			w.walkStmt(st.Else, &els)
		}
	case *ast.BlockStmt:
		w.walkStmts(st.List, held)
	case *ast.ForStmt:
		w.walkStmt(st.Init, held)
		if st.Cond != nil {
			w.walkExpr(st.Cond, held)
		}
		body := cloneHeld(*held)
		w.walkStmts(st.Body.List, &body)
		w.walkStmt(st.Post, &body)
	case *ast.RangeStmt:
		w.walkExpr(st.X, held)
		body := cloneHeld(*held)
		w.walkStmts(st.Body.List, &body)
	case *ast.SwitchStmt:
		w.walkStmt(st.Init, held)
		if st.Tag != nil {
			w.walkExpr(st.Tag, held)
		}
		for _, cc := range st.Body.List {
			if c, ok := cc.(*ast.CaseClause); ok {
				branch := cloneHeld(*held)
				w.walkStmts(c.Body, &branch)
			}
		}
	case *ast.TypeSwitchStmt:
		w.walkStmt(st.Init, held)
		for _, cc := range st.Body.List {
			if c, ok := cc.(*ast.CaseClause); ok {
				branch := cloneHeld(*held)
				w.walkStmts(c.Body, &branch)
			}
		}
	case *ast.SelectStmt:
		for _, cc := range st.Body.List {
			if c, ok := cc.(*ast.CommClause); ok {
				branch := cloneHeld(*held)
				w.walkStmt(c.Comm, &branch)
				w.walkStmts(c.Body, &branch)
			}
		}
	case *ast.LabeledStmt:
		w.walkStmt(st.Stmt, held)
	case *ast.GoStmt, *ast.DeferStmt:
		// New goroutines and deferred calls run outside this critical
		// section's acquisition order; their bodies (when literals) are
		// checked as independent contexts by runLockorder.
	case *ast.SendStmt:
		w.walkExpr(st.Value, held)
	case *ast.IncDecStmt, *ast.BranchStmt, *ast.EmptyStmt:
	}
}

// walkExpr visits the calls inside one expression in source order, skipping
// function literals.
func (w *lockWalker) walkExpr(e ast.Expr, held *[]heldLock) {
	ast.Inspect(e, func(n ast.Node) bool {
		if _, isLit := n.(*ast.FuncLit); isLit {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		w.visitCall(call, held)
		return true
	})
}

func (w *lockWalker) visitCall(call *ast.CallExpr, held *[]heldLock) {
	if obj, acquire, ok := mutexOp(w.pass, w.ranks, call); ok {
		rank := w.ranks[obj]
		if acquire {
			for _, h := range *held {
				if rank.rank < h.rank.rank {
					w.pass.Reportf(call.Pos(),
						"acquires %s (lock-order %d) while holding %s (lock-order %d): lock-ordering inversion",
						rank.label, rank.rank, h.rank.label, h.rank.rank)
				}
			}
			*held = append(*held, heldLock{obj: obj, rank: rank, pos: call.Pos()})
		} else {
			// Release the most recent hold of this lock object.
			for i := len(*held) - 1; i >= 0; i-- {
				if (*held)[i].obj == obj {
					*held = append((*held)[:i], (*held)[i+1:]...)
					break
				}
			}
		}
		return
	}
	callee := staticCallee(w.pass.Info, call)
	if callee == nil || callee.Pkg() != w.pass.Pkg || len(*held) == 0 {
		return
	}
	acq := w.closure[callee]
	if len(acq) == 0 {
		return
	}
	// Report the worst inversion the callee can introduce under each held
	// lock, deterministically (lowest callee rank first).
	callRanks := make([]int, 0, len(acq))
	for r := range acq {
		callRanks = append(callRanks, r)
	}
	sort.Ints(callRanks)
	for _, h := range *held {
		for _, r := range callRanks {
			if r < h.rank.rank {
				w.pass.Reportf(call.Pos(),
					"calls %s, which acquires %s (lock-order %d), while holding %s (lock-order %d): lock-ordering inversion",
					calleeName(callee), acq[r].label, r, h.rank.label, h.rank.rank)
				break // one report per held lock per call
			}
		}
	}
}

func cloneHeld(held []heldLock) []heldLock {
	return append([]heldLock(nil), held...)
}

// calleeName renders a *types.Func as Type.Method or Func for reports.
func calleeName(f *types.Func) string {
	sig := f.Type().(*types.Signature)
	if recv := sig.Recv(); recv != nil {
		t := recv.Type()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		if named, ok := t.(*types.Named); ok {
			return named.Obj().Name() + "." + f.Name()
		}
	}
	return f.Name()
}
