package analysis

import (
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func names(as []*Analyzer) []string {
	out := make([]string, len(as))
	for i, a := range as {
		out[i] = a.Name
	}
	return out
}

func TestSelect(t *testing.T) {
	cases := []struct {
		enable, disable string
		want            []string
		wantErr         string
	}{
		{enable: "", disable: "", want: names(All())},
		{enable: "lockorder", want: []string{"lockorder"}},
		{enable: "wrapeof,lockorder", want: []string{"lockorder", "wrapeof"}},
		{disable: "ctxfirst", want: []string{"lockorder", "nodeprecated", "obsnames", "wrapeof"}},
		{enable: "lockorder", disable: "lockorder", want: nil},
		{enable: " lockorder , ", want: []string{"lockorder"}},
		{enable: "lockodrer", wantErr: "unknown analyzer"},
		{disable: "nope", wantErr: "unknown analyzer"},
	}
	for _, tc := range cases {
		got, err := Select(tc.enable, tc.disable)
		if tc.wantErr != "" {
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Errorf("Select(%q, %q) error = %v, want containing %q", tc.enable, tc.disable, err, tc.wantErr)
			}
			continue
		}
		if err != nil {
			t.Errorf("Select(%q, %q): %v", tc.enable, tc.disable, err)
			continue
		}
		if strings.Join(names(got), ",") != strings.Join(tc.want, ",") {
			t.Errorf("Select(%q, %q) = %v, want %v", tc.enable, tc.disable, names(got), tc.want)
		}
	}
}

func TestSelectErrorListsKnownAnalyzers(t *testing.T) {
	_, err := Select("typo", "")
	if err == nil {
		t.Fatal("expected error")
	}
	for _, a := range All() {
		if !strings.Contains(err.Error(), a.Name) {
			t.Errorf("error %q does not list analyzer %s", err, a.Name)
		}
	}
}

func diag(analyzer, file string, line int, msg string) Diagnostic {
	return Diagnostic{
		Pos:      token.Position{Filename: file, Line: line, Column: 1},
		Analyzer: analyzer,
		Message:  msg,
	}
}

func TestBaselineRoundTrip(t *testing.T) {
	root := t.TempDir()
	diags := []Diagnostic{
		diag("wrapeof", filepath.Join(root, "internal/store/x.go"), 10, "returns bare io.EOF"),
		diag("ctxfirst", filepath.Join(root, "a.go"), 3, "context.Context is parameter 1; it must be the first parameter"),
	}
	path := filepath.Join(root, "lint.baseline")
	if err := os.WriteFile(path, WriteBaseline(diags, root), 0o644); err != nil {
		t.Fatal(err)
	}
	b, err := ReadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		if !b.Match(d, root) {
			t.Errorf("written entry did not match back: %s", d)
		}
	}
	// Same message on a different line still matches: entries are keyed
	// without line numbers so unrelated edits do not invalidate them.
	moved := diags[0]
	moved.Pos.Line = 99
	if !b.Match(moved, root) {
		t.Error("baseline entry should match regardless of line number")
	}
	if b.Match(diag("wrapeof", filepath.Join(root, "other.go"), 1, "returns bare io.EOF"), root) {
		t.Error("baseline matched a finding in a different file")
	}
	if stale := b.Stale(); len(stale) != 0 {
		t.Errorf("no entries should be stale after all matched: %v", stale)
	}
}

func TestBaselineStale(t *testing.T) {
	root := t.TempDir()
	diags := []Diagnostic{
		diag("wrapeof", filepath.Join(root, "x.go"), 1, "returns bare io.EOF"),
		diag("nodeprecated", filepath.Join(root, "y.go"), 2, "introduces a Deprecated: marker"),
	}
	path := filepath.Join(root, "lint.baseline")
	if err := os.WriteFile(path, WriteBaseline(diags, root), 0o644); err != nil {
		t.Fatal(err)
	}
	b, err := ReadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	b.Match(diags[0], root)
	stale := b.Stale()
	if len(stale) != 1 || !strings.Contains(stale[0], "nodeprecated") {
		t.Errorf("Stale() = %v, want the unmatched nodeprecated entry", stale)
	}
}

func TestBaselineMissingFileIsEmpty(t *testing.T) {
	b, err := ReadBaseline(filepath.Join(t.TempDir(), "absent"))
	if err != nil {
		t.Fatal(err)
	}
	if b.Match(diag("wrapeof", "x.go", 1, "m"), "") {
		t.Error("empty baseline matched a finding")
	}
}

func TestBaselineMalformed(t *testing.T) {
	path := filepath.Join(t.TempDir(), "lint.baseline")
	if err := os.WriteFile(path, []byte("wrapeof only-two-fields\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadBaseline(path); err == nil || !strings.Contains(err.Error(), "malformed") {
		t.Errorf("ReadBaseline = %v, want malformed-entry error", err)
	}
}

func TestBaselineCommentsAndBlanksIgnored(t *testing.T) {
	path := filepath.Join(t.TempDir(), "lint.baseline")
	body := "# header\n\n# justification: io.ReaderAt contract\nwrapeof\tx.go\treturns bare io.EOF\n"
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	b, err := ReadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	if !b.Match(diag("wrapeof", "x.go", 7, "returns bare io.EOF"), "") {
		t.Error("entry after comments did not match")
	}
}
