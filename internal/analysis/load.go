package analysis

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// Package is one loaded, parsed, type-checked package of the module under
// analysis.
type Package struct {
	ImportPath string
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	Info       *types.Info
}

// LoadConfig configures Load.
type LoadConfig struct {
	// Dir is the module directory to load from; "" means the current
	// directory.
	Dir string
	// Go is the go tool to shell out to; "" means "go".
	Go string
}

// listPkg is the subset of `go list -json` output the loader consumes.
type listPkg struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	Export     string
	Module     *struct {
		Path string
		Main bool
	}
	Error *struct{ Err string }
}

// Load type-checks every main-module package matched by patterns and
// returns them ready for analysis. It has no dependency beyond the go tool
// itself: package structure and export data come from
// `go list -json -export -deps`, sources are parsed with go/parser, and
// imports are resolved through the compiler's export data with
// importer.ForCompiler — so loading works offline and never touches the
// network or the module proxy.
func Load(cfg LoadConfig, patterns ...string) ([]*Package, error) {
	goTool := cfg.Go
	if goTool == "" {
		goTool = "go"
	}
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	// One walk of the import graph yields everything: which packages are
	// ours (Module.Main) and the export-data file of every dependency.
	args := append([]string{"list", "-json", "-export", "-deps"}, patterns...)
	cmd := exec.Command(goTool, args...)
	cmd.Dir = cfg.Dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		msg := strings.TrimSpace(stderr.String())
		if msg == "" {
			msg = err.Error()
		}
		return nil, fmt.Errorf("analysis: go list %s: %s", strings.Join(patterns, " "), msg)
	}

	exports := map[string]string{}
	var targets []listPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPkg
		if err := dec.Decode(&p); errors.Is(err, io.EOF) {
			break
		} else if err != nil {
			return nil, fmt.Errorf("analysis: decoding go list output: %w", err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("analysis: loading %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if p.Module != nil && p.Module.Main {
			targets = append(targets, p)
		}
	}

	fset := token.NewFileSet()
	lookup := func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	}
	imp := importer.ForCompiler(fset, "gc", lookup)

	var pkgs []*Package
	for _, t := range targets {
		// Only the package's ordinary files are analyzed: test files would
		// need the test-variant dependency closure for their export data,
		// and every invariant the suite checks is a production-code rule
		// (tests legitimately compare io.EOF, use context.Background, and
		// name ad-hoc metrics).
		var parsed []*ast.File
		for _, gf := range t.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(t.Dir, gf), nil, parser.ParseComments|parser.SkipObjectResolution)
			if err != nil {
				return nil, fmt.Errorf("analysis: parsing %s: %w", gf, err)
			}
			parsed = append(parsed, f)
		}
		info := &types.Info{
			Types:      map[ast.Expr]types.TypeAndValue{},
			Defs:       map[*ast.Ident]types.Object{},
			Uses:       map[*ast.Ident]types.Object{},
			Selections: map[*ast.SelectorExpr]*types.Selection{},
			Implicits:  map[ast.Node]types.Object{},
		}
		var tcErrs []error
		conf := types.Config{
			Importer: imp,
			Error:    func(err error) { tcErrs = append(tcErrs, err) },
		}
		tpkg, err := conf.Check(t.ImportPath, fset, parsed, info)
		if len(tcErrs) > 0 {
			return nil, fmt.Errorf("analysis: type-checking %s: %w", t.ImportPath, errors.Join(tcErrs...))
		}
		if err != nil {
			return nil, fmt.Errorf("analysis: type-checking %s: %w", t.ImportPath, err)
		}
		pkgs = append(pkgs, &Package{
			ImportPath: t.ImportPath,
			Dir:        t.Dir,
			Fset:       fset,
			Files:      parsed,
			Types:      tpkg,
			Info:       info,
		})
	}
	return pkgs, nil
}
