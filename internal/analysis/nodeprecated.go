package analysis

import (
	"strings"
)

// Nodeprecated enforces the PR-7 "zero deprecated names" guarantee: the
// public surface carries no `// Deprecated:` markers, so none may be
// introduced. A transition shim must either be removed within the same PR
// or shipped under a different migration mechanism (documented in the
// README migration tables), never parked behind a Deprecated comment that
// outlives its release.
var Nodeprecated = &Analyzer{
	Name: "nodeprecated",
	Doc: "no `// Deprecated:` declarations anywhere in the module\n\n" +
		"PR-7 removed the last deprecated shims and the API guarantees zero\n" +
		"deprecated names; this check keeps new ones from accruing.",
	Run: runNodeprecated,
}

func runNodeprecated(pass *Pass) error {
	for _, f := range pass.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := c.Text
				for _, line := range strings.Split(text, "\n") {
					line = strings.TrimSpace(line)
					line = strings.TrimPrefix(line, "//")
					line = strings.TrimPrefix(line, "/*")
					line = strings.TrimSpace(line)
					if strings.HasPrefix(line, "Deprecated:") {
						pass.Reportf(c.Pos(),
							"introduces a Deprecated: marker; this module guarantees zero deprecated names — remove the shim or redesign the migration")
					}
				}
			}
		}
	}
	return nil
}
