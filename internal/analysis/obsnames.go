package analysis

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/types"
	"sort"
	"strings"
)

// obsNameArg maps each obs API entry point to the index of its name/stage
// argument.
var obsNameArg = map[string]int{
	"Counter":    0,
	"Gauge":      0,
	"FrameDone":  0,
	"StageStart": 0,
	"StageEnd":   0,
	"StartSpan":  1,
}

// obsRegistryPrefixes are the constant-name prefixes that make an exported
// string constant of the obs package part of the metric-name registry.
var obsRegistryPrefixes = []string{"Stage", "Ctr", "Gauge"}

// Obsnames pins every observability name to the generated registry: any
// stage, counter, or gauge name passed to an obs API must be a compile-time
// constant whose value is declared in the obs package's Stage*/Ctr*/Gauge*
// constants, and the generated internal/obs/names.go registry must list
// exactly those constants. Typo'd metric names (which would silently split
// a time series) and registry/doc drift both fail the build. Regenerate the
// registry with `vetvideoapp -gen-obsnames` after adding a constant.
var Obsnames = &Analyzer{
	Name: "obsnames",
	Doc: "obs counter/gauge/stage names must come from the generated internal/obs registry\n\n" +
		"Names passed to Counter/Gauge/FrameDone/StageStart/StageEnd/StartSpan must\n" +
		"be obs package constants (Stage*/Ctr*/Gauge*), and the generated Names\n" +
		"registry in internal/obs/names.go must stay in sync with the constant set\n" +
		"(run `vetvideoapp -gen-obsnames` to refresh it).",
	Run: runObsnames,
}

// isObsPackage reports whether p is an observability package subject to the
// registry rule.
func isObsPackage(p *types.Package) bool { return p != nil && p.Name() == "obs" }

// obsRegistry returns the registered name values of an obs package: the
// values of its exported string constants named Stage*/Ctr*/Gauge*.
func obsRegistry(p *types.Package) map[string]bool {
	reg := map[string]bool{}
	scope := p.Scope()
	for _, name := range scope.Names() {
		c, ok := scope.Lookup(name).(*types.Const)
		if !ok || !c.Exported() || c.Val().Kind() != constant.String {
			continue
		}
		if !hasRegistryPrefix(name) {
			continue
		}
		reg[constant.StringVal(c.Val())] = true
	}
	return reg
}

func hasRegistryPrefix(name string) bool {
	for _, p := range obsRegistryPrefixes {
		if strings.HasPrefix(name, p) {
			return true
		}
	}
	return false
}

func runObsnames(pass *Pass) error {
	if isObsPackage(pass.Pkg) {
		return checkObsRegistrySync(pass)
	}
	registries := map[*types.Package]map[string]bool{}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee, argIdx, ok := obsCallee(pass, call)
			if !ok || len(call.Args) <= argIdx {
				return true
			}
			arg := call.Args[argIdx]
			tv, ok := pass.Info.Types[arg]
			if !ok {
				return true
			}
			if tv.Value == nil || tv.Value.Kind() != constant.String {
				pass.Reportf(arg.Pos(),
					"obs name passed to %s must be a registered constant from the obs package, not a dynamic value", callee.Name())
				return true
			}
			reg, ok := registries[callee.Pkg()]
			if !ok {
				reg = obsRegistry(callee.Pkg())
				registries[callee.Pkg()] = reg
			}
			if val := constant.StringVal(tv.Value); !reg[val] {
				pass.Reportf(arg.Pos(),
					"obs name %q is not in the obs registry; declare a Stage*/Ctr*/Gauge* constant in the obs package and run `vetvideoapp -gen-obsnames`", val)
			}
			return true
		})
	}
	return nil
}

// obsCallee resolves call to an obs API target (Observer methods or the
// obs package's StartSpan), returning the callee and the index of the name
// argument.
func obsCallee(pass *Pass, call *ast.CallExpr) (*types.Func, int, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return nil, 0, false
	}
	argIdx, watched := obsNameArg[sel.Sel.Name]
	if !watched {
		return nil, 0, false
	}
	var callee *types.Func
	if s, ok := pass.Info.Selections[sel]; ok && s.Kind() == types.MethodVal {
		callee, _ = s.Obj().(*types.Func)
	} else if f, ok := pass.Info.Uses[sel.Sel].(*types.Func); ok {
		callee = f
	}
	if callee == nil || !isObsPackage(callee.Pkg()) {
		return nil, 0, false
	}
	return callee, argIdx, true
}

// checkObsRegistrySync runs inside the obs package: the generated Names
// slice must reference exactly the registry constants.
func checkObsRegistrySync(pass *Pass) error {
	registry := obsRegistry(pass.Pkg)
	var namesSpec *ast.ValueSpec
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for _, name := range vs.Names {
					if name.Name == "Names" {
						namesSpec = vs
					}
				}
			}
		}
	}
	if namesSpec == nil {
		if len(registry) > 0 && len(pass.Files) > 0 {
			pass.Reportf(pass.Files[0].Package,
				"obs package declares %d registry constants but no generated Names registry; run `vetvideoapp -gen-obsnames`", len(registry))
		}
		return nil
	}
	if len(namesSpec.Values) != 1 {
		return nil
	}
	lit, ok := namesSpec.Values[0].(*ast.CompositeLit)
	if !ok {
		pass.Reportf(namesSpec.Pos(), "obs Names registry must be a composite literal of the registry constants")
		return nil
	}
	listed := map[string]bool{}
	for _, elt := range lit.Elts {
		tv, ok := pass.Info.Types[elt]
		if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
			pass.Reportf(elt.Pos(), "obs Names registry entry is not a string constant")
			continue
		}
		val := constant.StringVal(tv.Value)
		if listed[val] {
			pass.Reportf(elt.Pos(), "obs Names registry lists %q twice", val)
		}
		listed[val] = true
		if !registry[val] {
			pass.Reportf(elt.Pos(),
				"obs Names registry entry %q matches no Stage*/Ctr*/Gauge* constant; run `vetvideoapp -gen-obsnames`", val)
		}
	}
	missing := make([]string, 0)
	for val := range registry {
		if !listed[val] {
			missing = append(missing, val)
		}
	}
	sort.Strings(missing)
	for _, val := range missing {
		pass.Reportf(namesSpec.Pos(),
			"obs registry constant %q is missing from the generated Names registry; run `vetvideoapp -gen-obsnames`", val)
	}
	return nil
}

// ObsNamesSource renders the generated internal/obs/names.go registry for
// an obs package: one Names entry per Stage*/Ctr*/Gauge* constant, sorted
// by constant name, plus the KnownName lookup.
func ObsNamesSource(p *types.Package) []byte {
	scope := p.Scope()
	var idents []string
	for _, name := range scope.Names() {
		c, ok := scope.Lookup(name).(*types.Const)
		if !ok || !c.Exported() || c.Val().Kind() != constant.String {
			continue
		}
		if hasRegistryPrefix(name) {
			idents = append(idents, name)
		}
	}
	sort.Strings(idents)
	var b strings.Builder
	b.WriteString("// Code generated by vetvideoapp -gen-obsnames; DO NOT EDIT.\n\n")
	b.WriteString("package " + p.Name() + "\n\n")
	b.WriteString("// Names is the registry of every stage, counter and gauge name this\n")
	b.WriteString("// module may publish: exactly the package's Stage*/Ctr*/Gauge* constants.\n")
	b.WriteString("// The obsnames analyzer enforces that every name passed to an obs API is\n")
	b.WriteString("// one of these and that this file stays in sync with the constant set.\n")
	b.WriteString("var Names = []string{\n")
	for _, id := range idents {
		fmt.Fprintf(&b, "\t%s,\n", id)
	}
	b.WriteString("}\n\n")
	b.WriteString("// nameSet indexes Names for KnownName.\n")
	b.WriteString("var nameSet = func() map[string]bool {\n")
	b.WriteString("\tm := make(map[string]bool, len(Names))\n")
	b.WriteString("\tfor _, n := range Names {\n")
	b.WriteString("\t\tm[n] = true\n")
	b.WriteString("\t}\n")
	b.WriteString("\treturn m\n")
	b.WriteString("}()\n\n")
	b.WriteString("// KnownName reports whether s is a registered observability name.\n")
	b.WriteString("func KnownName(s string) bool { return nameSet[s] }\n")
	return []byte(b.String())
}
