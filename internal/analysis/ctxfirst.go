package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// Ctxfirst enforces the repo's context conventions: a context.Context
// parameter is always the first parameter (the *Context entry-point style
// every subsystem uses), and fresh root contexts — context.Background() /
// context.TODO() — are never minted inside library code, where they detach
// work from the caller's cancellation. Package main, tests, and explicitly
// annotated compatibility wrappers (the context-less convenience API) are
// exempt.
var Ctxfirst = &Analyzer{
	Name: "ctxfirst",
	Doc: "context.Context must be the first parameter; no context.Background()/TODO() in library code\n\n" +
		"Library functions receive cancellation from their caller; minting a root\n" +
		"context silently detaches retries, decodes and RPCs from request deadlines.\n" +
		"Exempt: package main, _test.go files, and compatibility wrappers annotated\n" +
		"with vetvideoapp:allow ctxfirst.",
	Run: runCtxfirst,
}

func runCtxfirst(pass *Pass) error {
	isMain := pass.Pkg.Name() == "main"
	for _, f := range pass.Files {
		filename := pass.Fset.Position(f.Pos()).Filename
		isTest := strings.HasSuffix(filename, "_test.go")
		ast.Inspect(f, func(n ast.Node) bool {
			switch nn := n.(type) {
			case *ast.FuncType:
				checkCtxPosition(pass, nn)
			case *ast.CallExpr:
				if isMain || isTest {
					return true
				}
				callee := staticCallee(pass.Info, nn)
				if callee == nil || callee.Pkg() == nil || callee.Pkg().Path() != "context" {
					return true
				}
				if callee.Name() == "Background" || callee.Name() == "TODO" {
					pass.Reportf(nn.Pos(),
						"calls context.%s() in library code; thread the caller's context through (or annotate a deliberate detachment with vetvideoapp:allow ctxfirst)", callee.Name())
				}
			}
			return true
		})
	}
	return nil
}

// checkCtxPosition flags function signatures that take context.Context
// anywhere but first.
func checkCtxPosition(pass *Pass, ft *ast.FuncType) {
	if ft.Params == nil {
		return
	}
	// Parameter index counts names, not fields: f(a int, ctx context.Context)
	// has ctx at index 1.
	idx := 0
	for _, field := range ft.Params.List {
		n := len(field.Names)
		if n == 0 {
			n = 1
		}
		if isContextType(pass, field.Type) && idx != 0 {
			pass.Reportf(field.Pos(),
				"context.Context is parameter %d; it must be the first parameter", idx)
		}
		idx += n
	}
}

func isContextType(pass *Pass, expr ast.Expr) bool {
	tv, ok := pass.Info.Types[expr]
	if !ok || tv.Type == nil {
		return false
	}
	named, ok := tv.Type.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}
