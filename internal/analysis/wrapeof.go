package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// wrapeofPackages are the import-path suffixes the wrapeof rule applies
// to: the archive parser and the serving layer, where a bare io.EOF
// escaping means a corruption report callers cannot classify.
var wrapeofPackages = []string{"internal/store", "internal/serve"}

// Wrapeof flags bare io.EOF / io.ErrUnexpectedEOF returns and comparisons
// in the storage and serving packages — the PR-6/PR-7 fuzz bugs, where raw
// EOF escaped the archive parser instead of the typed sentinels
// ErrCorruptRecord (data damage) and ErrReadFailed (device failure).
//
// Inside internal/store and internal/serve, io.EOF and io.ErrUnexpectedEOF
// must never be returned as-is, compared with == or !=, switched over, or
// probed with errors.Is/errors.As: every EOF crossing a record boundary
// must be mapped to (or wrapped under) a typed sentinel first. The handful
// of legitimate sites — io.ReaderAt implementations, whose contract
// requires returning bare io.EOF, and the designated mapping helpers — each
// carry a justifying vetvideoapp:allow comment.
var Wrapeof = &Analyzer{
	Name: "wrapeof",
	Doc: "flags bare io.EOF/io.ErrUnexpectedEOF in internal/store and internal/serve\n\n" +
		"EOF-class errors must be mapped to the typed sentinels ErrCorruptRecord /\n" +
		"ErrReadFailed before crossing a function boundary; returning or comparing\n" +
		"them bare reintroduces the PR-6/PR-7 fuzz bugs. ReaderAt contracts and the\n" +
		"mapping helpers themselves are annotated with vetvideoapp:allow wrapeof.",
	Run: runWrapeof,
}

func runWrapeof(pass *Pass) error {
	applies := false
	for _, suffix := range wrapeofPackages {
		if pass.Pkg.Path() == suffix || strings.HasSuffix(pass.Pkg.Path(), "/"+suffix) {
			applies = true
			break
		}
	}
	if !applies {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch nn := n.(type) {
			case *ast.ReturnStmt:
				for _, res := range nn.Results {
					if name, ok := objIsIOErr(pass.Info, res); ok {
						pass.Reportf(res.Pos(),
							"returns bare %s; map it to store.ErrCorruptRecord (data damage) or store.ErrReadFailed (device failure), wrapping with %%w", name)
					}
				}
			case *ast.BinaryExpr:
				if nn.Op != token.EQL && nn.Op != token.NEQ {
					return true
				}
				for _, side := range []ast.Expr{nn.X, nn.Y} {
					if name, ok := objIsIOErr(pass.Info, side); ok {
						pass.Reportf(nn.Pos(),
							"compares %s bare; EOF must be classified into the typed sentinels at the read site, not leaked to callers", name)
					}
				}
			case *ast.CaseClause:
				for _, e := range nn.List {
					if name, ok := objIsIOErr(pass.Info, e); ok {
						pass.Reportf(e.Pos(),
							"switches on bare %s; EOF must be classified into the typed sentinels at the read site, not leaked to callers", name)
					}
				}
			case *ast.CallExpr:
				callee := staticCallee(pass.Info, nn)
				if callee == nil || callee.Pkg() == nil || callee.Pkg().Path() != "errors" {
					return true
				}
				if callee.Name() != "Is" && callee.Name() != "As" {
					return true
				}
				if len(nn.Args) != 2 {
					return true
				}
				if name, ok := objIsIOErr(pass.Info, nn.Args[1]); ok {
					pass.Reportf(nn.Pos(),
						"probes errors.%s(err, %s); probe the typed sentinels (ErrCorruptRecord/ErrReadFailed) instead of raw EOF", callee.Name(), name)
				}
			}
			return true
		})
	}
	return nil
}
