package analysis

import (
	"fmt"
	"sort"
	"strings"
)

// All returns every analyzer in the suite, in stable order.
func All() []*Analyzer {
	return []*Analyzer{Ctxfirst, Lockorder, Nodeprecated, Obsnames, Wrapeof}
}

// Select resolves -enable/-disable analyzer lists against the full suite.
// Empty enable means "all". Unknown names are an error (a typo'd analyzer
// name must not silently disable a gate).
func Select(enable, disable string) ([]*Analyzer, error) {
	byName := map[string]*Analyzer{}
	for _, a := range All() {
		byName[a.Name] = a
	}
	parse := func(list string) (map[string]bool, error) {
		set := map[string]bool{}
		if strings.TrimSpace(list) == "" {
			return set, nil
		}
		for _, name := range strings.Split(list, ",") {
			name = strings.TrimSpace(name)
			if name == "" {
				continue
			}
			if _, ok := byName[name]; !ok {
				known := make([]string, 0, len(byName))
				for n := range byName {
					known = append(known, n)
				}
				sort.Strings(known)
				return nil, fmt.Errorf("unknown analyzer %q (known: %s)", name, strings.Join(known, ", "))
			}
			set[name] = true
		}
		return set, nil
	}
	enabled, err := parse(enable)
	if err != nil {
		return nil, err
	}
	disabled, err := parse(disable)
	if err != nil {
		return nil, err
	}
	var out []*Analyzer
	for _, a := range All() {
		if len(enabled) > 0 && !enabled[a.Name] {
			continue
		}
		if disabled[a.Name] {
			continue
		}
		out = append(out, a)
	}
	return out, nil
}
