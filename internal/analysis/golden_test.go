package analysis_test

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"videoapp/internal/analysis"
)

var update = flag.Bool("update", false, "rewrite the golden.txt files under testdata/src")

// runFixture loads and analyzes one fixture module under testdata/src with
// the full analyzer suite, returning findings formatted relative to the
// fixture root.
func runFixture(t *testing.T, dir string) []string {
	t.Helper()
	abs, err := filepath.Abs(dir)
	if err != nil {
		t.Fatalf("abs %s: %v", dir, err)
	}
	pkgs, err := analysis.Load(analysis.LoadConfig{Dir: abs}, "./...")
	if err != nil {
		t.Fatalf("loading fixture %s: %v", dir, err)
	}
	diags, err := analysis.Run(pkgs, analysis.All())
	if err != nil {
		t.Fatalf("analyzing fixture %s: %v", dir, err)
	}
	lines := make([]string, 0, len(diags))
	for _, d := range diags {
		rel, err := filepath.Rel(abs, d.Pos.Filename)
		if err != nil {
			rel = d.Pos.Filename
		}
		lines = append(lines, fmt.Sprintf("%s:%d:%d: %s: %s",
			filepath.ToSlash(rel), d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message))
	}
	return lines
}

// TestGoldenFixtures runs the full suite over every fixture module and
// compares the findings to the fixture's golden.txt. Every *_bad fixture
// must produce findings; every *_ok fixture must be clean. Regenerate the
// goldens with `go test ./internal/analysis -run TestGoldenFixtures -update`.
func TestGoldenFixtures(t *testing.T) {
	fixtures, err := filepath.Glob(filepath.Join("testdata", "src", "*"))
	if err != nil {
		t.Fatal(err)
	}
	if len(fixtures) == 0 {
		t.Fatal("no fixtures under testdata/src")
	}
	for _, dir := range fixtures {
		name := filepath.Base(dir)
		t.Run(name, func(t *testing.T) {
			got := strings.Join(runFixture(t, dir), "\n")
			if got != "" {
				got += "\n"
			}
			goldenPath := filepath.Join(dir, "golden.txt")
			if *update {
				if err := os.WriteFile(goldenPath, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(goldenPath)
			if err != nil {
				t.Fatalf("reading golden (run with -update to create): %v", err)
			}
			if got != string(want) {
				t.Errorf("findings mismatch\n--- got ---\n%s--- want ---\n%s", got, want)
			}
			switch {
			case strings.HasSuffix(name, "_bad") && got == "":
				t.Errorf("bad fixture %s produced no findings", name)
			case strings.HasSuffix(name, "_ok") && got != "":
				t.Errorf("ok fixture %s produced findings:\n%s", name, got)
			}
		})
	}
}

// TestLockorderFixtureCatchesInversion pins the PR-7 regression: the
// lockorder fixture re-introduces the catalog ABBA deadlock both directly
// and through a helper call, and the analyzer must flag both shapes.
func TestLockorderFixtureCatchesInversion(t *testing.T) {
	lines := runFixture(t, filepath.Join("testdata", "src", "lockorder_bad"))
	var direct, transitive bool
	for _, l := range lines {
		if !strings.Contains(l, "lockorder:") || !strings.Contains(l, "lock-ordering inversion") {
			continue
		}
		if strings.Contains(l, "calls ") {
			transitive = true
		} else {
			direct = true
		}
	}
	if !direct {
		t.Errorf("lockorder missed the direct t.mu→c.mu inversion:\n%s", strings.Join(lines, "\n"))
	}
	if !transitive {
		t.Errorf("lockorder missed the transitive inversion through closeTenantLocked:\n%s", strings.Join(lines, "\n"))
	}
}

// TestWrapeofFixtureCatchesBareEOF pins the PR-6 regression: a bare io EOF
// sentinel returned from internal/store must be flagged.
func TestWrapeofFixtureCatchesBareEOF(t *testing.T) {
	lines := runFixture(t, filepath.Join("testdata", "src", "wrapeof_bad"))
	var returned, compared bool
	for _, l := range lines {
		if !strings.Contains(l, "wrapeof:") {
			continue
		}
		if strings.Contains(l, "returns bare io.ErrUnexpectedEOF") {
			returned = true
		}
		if strings.Contains(l, "compares io.EOF bare") {
			compared = true
		}
	}
	if !returned {
		t.Errorf("wrapeof missed the bare io.ErrUnexpectedEOF return:\n%s", strings.Join(lines, "\n"))
	}
	if !compared {
		t.Errorf("wrapeof missed the bare io.EOF comparison:\n%s", strings.Join(lines, "\n"))
	}
}

// TestSuiteCleanOnRepo runs the full suite over this repository itself: the
// committed tree must analyze clean, so the committed baseline can stay
// empty.
func TestSuiteCleanOnRepo(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := analysis.Load(analysis.LoadConfig{Dir: root}, "./...")
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	diags, err := analysis.Run(pkgs, analysis.All())
	if err != nil {
		t.Fatalf("running suite: %v", err)
	}
	for _, d := range diags {
		t.Errorf("unexpected finding: %s", d)
	}
}
