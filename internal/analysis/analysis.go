// Package analysis is the project-specific static-analysis suite: a small
// go/analysis-style framework (zero dependencies — stdlib go/ast + go/types
// only) plus the analyzers that machine-check this repo's standing
// invariants. Each analyzer is mined from a real past incident or
// convention; DESIGN.md "Enforced invariants" maps every analyzer to the
// bug it guards against. The cmd/vetvideoapp driver runs the suite over
// ./... and is wired into `make lint` and CI.
//
// Findings can be suppressed per site with a justifying comment on the
// finding's line or the line above it:
//
//	err == io.EOF //vetvideoapp:allow wrapeof — io.ReaderAt contract requires bare EOF here
//
// The comment names one or more analyzers (comma-separated) and should
// always carry a justification after the names. Grandfathered findings can
// instead be recorded in a committed baseline file (see cmd/vetvideoapp).
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one invariant checker. Run inspects a single type-checked
// package and reports findings through the pass.
type Analyzer struct {
	// Name identifies the analyzer on the command line, in findings, in
	// baseline entries, and in allow comments.
	Name string
	// Doc is the analyzer's documentation; the first line is the one-line
	// summary shown by `vetvideoapp -list`.
	Doc string
	// Run analyzes one package.
	Run func(*Pass) error
}

// Pass carries one analyzer's view of one package.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	diags *[]Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Diagnostic is one finding.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

// String formats the finding as path:line:col: analyzer: message.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// allowMarker introduces a suppression comment.
const allowMarker = "vetvideoapp:allow"

// allowSet indexes suppression comments: (file, line, analyzer) triples. An
// allow comment suppresses findings of the named analyzers on its own line
// and on the line directly below it, so both trailing and preceding
// comment placements work.
type allowSet map[string]map[int]map[string]bool

// collectAllows scans the files' comments for vetvideoapp:allow markers.
func collectAllows(fset *token.FileSet, files []*ast.File) allowSet {
	allows := allowSet{}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(strings.TrimPrefix(c.Text, "//"), "/*")
				text = strings.TrimSpace(text)
				if !strings.HasPrefix(text, allowMarker) {
					continue
				}
				rest := strings.TrimSpace(strings.TrimPrefix(text, allowMarker))
				// The analyzer list is the first whitespace-delimited
				// field; everything after it is the justification.
				names, _, _ := strings.Cut(rest, " ")
				pos := fset.Position(c.Pos())
				byLine := allows[pos.Filename]
				if byLine == nil {
					byLine = map[int]map[string]bool{}
					allows[pos.Filename] = byLine
				}
				for _, name := range strings.Split(names, ",") {
					name = strings.TrimSpace(name)
					if name == "" {
						continue
					}
					for _, line := range []int{pos.Line, pos.Line + 1} {
						if byLine[line] == nil {
							byLine[line] = map[string]bool{}
						}
						byLine[line][name] = true
					}
				}
			}
		}
	}
	return allows
}

// suppressed reports whether d is covered by an allow comment.
func (a allowSet) suppressed(d Diagnostic) bool {
	byLine := a[d.Pos.Filename]
	if byLine == nil {
		return false
	}
	names := byLine[d.Pos.Line]
	return names != nil && (names[d.Analyzer] || names["all"])
}

// Run applies each analyzer to each package and returns the surviving
// findings sorted by position. Allow comments are honored here, so callers
// only ever see unsuppressed findings.
func Run(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		allows := collectAllows(pkg.Fset, pkg.Files)
		for _, a := range analyzers {
			var raw []Diagnostic
			pass := &Pass{
				Analyzer: a,
				Fset:     pkg.Fset,
				Files:    pkg.Files,
				Pkg:      pkg.Types,
				Info:     pkg.Info,
				diags:    &raw,
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("analysis: %s on %s: %w", a.Name, pkg.ImportPath, err)
			}
			for _, d := range raw {
				if !allows.suppressed(d) {
					diags = append(diags, d)
				}
			}
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags, nil
}

// objIsIOErr reports whether expr resolves to io.EOF or
// io.ErrUnexpectedEOF, returning the sentinel's name.
func objIsIOErr(info *types.Info, expr ast.Expr) (string, bool) {
	var id *ast.Ident
	switch e := ast.Unparen(expr).(type) {
	case *ast.SelectorExpr:
		id = e.Sel
	case *ast.Ident:
		id = e
	default:
		return "", false
	}
	obj := info.Uses[id]
	if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != "io" {
		return "", false
	}
	if obj.Name() == "EOF" || obj.Name() == "ErrUnexpectedEOF" {
		return "io." + obj.Name(), true
	}
	return "", false
}

// staticCallee resolves a call expression to the concrete *types.Func it
// invokes, or nil for dynamic calls (function values, interface methods)
// and conversions.
func staticCallee(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if f, ok := info.Uses[fun].(*types.Func); ok {
			return f
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			if sel.Kind() != types.MethodVal {
				return nil
			}
			f, ok := sel.Obj().(*types.Func)
			if !ok {
				return nil
			}
			if recv := f.Type().(*types.Signature).Recv(); recv != nil {
				if types.IsInterface(recv.Type()) {
					return nil // dynamic dispatch
				}
			}
			return f
		}
		// Package-qualified call (pkg.Fn).
		if f, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return f
		}
	}
	return nil
}
