package analysis

import (
	"bufio"
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
)

// The baseline file records grandfathered findings so the analyzer gate can
// be adopted without a flag day: a finding listed in the baseline is
// reported as suppressed, anything new fails. Entries are keyed by
// (analyzer, file, message) — line numbers are deliberately excluded so
// unrelated edits do not invalidate the file. Lines starting with '#' are
// justification comments and every grandfathered entry should carry one.

// BaselineEntry identifies one grandfathered finding.
type BaselineEntry struct {
	Analyzer string
	File     string
	Message  string
}

func (e BaselineEntry) key() string { return e.Analyzer + "\x00" + e.File + "\x00" + e.Message }

// Baseline is a set of grandfathered findings.
type Baseline struct {
	entries map[string]bool
	seen    map[string]bool
}

// ReadBaseline parses a baseline file. A missing file is an empty baseline.
func ReadBaseline(path string) (*Baseline, error) {
	b := &Baseline{entries: map[string]bool{}, seen: map[string]bool{}}
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return b, nil
	}
	if err != nil {
		return nil, err
	}
	sc := bufio.NewScanner(bytes.NewReader(data))
	for ln := 1; sc.Scan(); ln++ {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		parts := strings.SplitN(line, "\t", 3)
		if len(parts) != 3 {
			return nil, fmt.Errorf("%s:%d: malformed baseline entry (want analyzer<TAB>file<TAB>message)", path, ln)
		}
		b.entries[BaselineEntry{Analyzer: parts[0], File: parts[1], Message: parts[2]}.key()] = true
	}
	return b, sc.Err()
}

// Match reports whether d is grandfathered, recording the hit so Stale can
// report entries that no longer match anything.
func (b *Baseline) Match(d Diagnostic, relTo string) bool {
	k := BaselineEntry{Analyzer: d.Analyzer, File: relPath(relTo, d.Pos.Filename), Message: d.Message}.key()
	if b.entries[k] {
		b.seen[k] = true
		return true
	}
	return false
}

// Stale returns baseline entries that matched no finding in the last run —
// fixed findings whose entries should be deleted.
func (b *Baseline) Stale() []string {
	var stale []string
	for k := range b.entries {
		if !b.seen[k] {
			parts := strings.SplitN(k, "\x00", 3)
			stale = append(stale, strings.Join(parts, "\t"))
		}
	}
	return stale
}

// WriteBaseline renders findings as a baseline file body, one entry per
// finding, with a header documenting the format.
func WriteBaseline(diags []Diagnostic, relTo string) []byte {
	var buf bytes.Buffer
	buf.WriteString("# vetvideoapp baseline — grandfathered findings, one per line:\n")
	buf.WriteString("#   analyzer<TAB>file<TAB>message\n")
	buf.WriteString("# Every entry must carry a '#' comment justifying why it is exempt.\n")
	buf.WriteString("# Regenerate with: vetvideoapp -write-baseline ./...\n")
	for _, d := range diags {
		fmt.Fprintf(&buf, "%s\t%s\t%s\n", d.Analyzer, relPath(relTo, d.Pos.Filename), d.Message)
	}
	return buf.Bytes()
}

// relPath normalizes a finding's filename relative to the module root with
// forward slashes, so baselines are portable across checkouts.
func relPath(relTo, path string) string {
	if relTo != "" {
		if r, err := filepath.Rel(relTo, path); err == nil && !strings.HasPrefix(r, "..") {
			path = r
		}
	}
	return filepath.ToSlash(path)
}
