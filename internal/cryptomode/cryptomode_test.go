package cryptomode

import (
	"bytes"
	"math/rand"
	"testing"

	"videoapp/internal/bitio"
	"videoapp/internal/codec"
	"videoapp/internal/core"
	"videoapp/internal/synth"
)

func testKeyIV(seed int64) (key, iv []byte, rng *rand.Rand) {
	rng = rand.New(rand.NewSource(seed))
	key = make([]byte, 16)
	iv = make([]byte, BlockSize)
	rng.Read(key)
	rng.Read(iv)
	return
}

func TestEncryptDecryptRoundTripAllModes(t *testing.T) {
	key, iv, rng := testKeyIV(1)
	plain := make([]byte, 512)
	rng.Read(plain)
	for _, m := range Modes {
		ct, err := Encrypt(m, key, iv, plain)
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		if bytes.Equal(ct, plain) {
			t.Fatalf("%v: ciphertext equals plaintext", m)
		}
		pt, err := Decrypt(m, key, iv, ct)
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		if !bytes.Equal(pt, plain) {
			t.Fatalf("%v: round trip failed", m)
		}
	}
}

func TestStreamModesArbitraryLength(t *testing.T) {
	key, iv, rng := testKeyIV(2)
	for _, n := range []int{1, 15, 17, 100} {
		plain := make([]byte, n)
		rng.Read(plain)
		for _, m := range []Mode{OFB, CTR} {
			ct, err := Encrypt(m, key, iv, plain)
			if err != nil {
				t.Fatalf("%v len %d: %v", m, n, err)
			}
			pt, _ := Decrypt(m, key, iv, ct)
			if !bytes.Equal(pt, plain) {
				t.Fatalf("%v len %d: round trip", m, n)
			}
		}
	}
}

func TestBlockModesRejectPartialBlocks(t *testing.T) {
	key, iv, _ := testKeyIV(3)
	for _, m := range []Mode{ECB, CBC} {
		if _, err := Encrypt(m, key, iv, make([]byte, 17)); err == nil {
			t.Fatalf("%v must reject partial blocks", m)
		}
	}
}

func TestBadIVRejected(t *testing.T) {
	key, _, _ := testKeyIV(4)
	for _, m := range []Mode{CBC, OFB, CTR} {
		if _, err := Encrypt(m, key, []byte{1, 2}, make([]byte, 32)); err == nil {
			t.Fatalf("%v must reject short IV", m)
		}
	}
}

func TestPadTo16(t *testing.T) {
	if len(PadTo16(make([]byte, 16))) != 16 {
		t.Fatal("aligned input unchanged")
	}
	if len(PadTo16(make([]byte, 17))) != 32 {
		t.Fatal("pad to next block")
	}
}

func TestECBLeaksDuplicates(t *testing.T) {
	// The textbook ECB failure: identical plaintext blocks yield identical
	// ciphertext blocks.
	key, _, _ := testKeyIV(5)
	plain := bytes.Repeat([]byte{0xAB}, 64) // 4 identical blocks
	ct, err := Encrypt(ECB, key, nil, plain)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ct[0:16], ct[16:32]) {
		t.Fatal("ECB must map equal blocks to equal ciphertext")
	}
}

func TestCBCErrorPropagatesOneBlockPlusOneBit(t *testing.T) {
	key, iv, rng := testKeyIV(6)
	plain := make([]byte, 160)
	rng.Read(plain)
	ct, _ := Encrypt(CBC, key, iv, plain)
	bitio.FlipBit(ct, 5) // flip in block 0
	dec, _ := Decrypt(CBC, key, iv, ct)
	// Block 0 garbled, block 1 has exactly one flipped bit, rest intact.
	if bytes.Equal(dec[0:16], plain[0:16]) {
		t.Fatal("block 0 must be garbled")
	}
	diffBits := 0
	for i := 16; i < 32; i++ {
		for x := dec[i] ^ plain[i]; x != 0; x &= x - 1 {
			diffBits++
		}
	}
	if diffBits != 1 {
		t.Fatalf("block 1 has %d damaged bits, want exactly 1", diffBits)
	}
	if !bytes.Equal(dec[32:], plain[32:]) {
		t.Fatal("blocks 2+ must be intact")
	}
}

func TestOFBCTRSingleBitLocality(t *testing.T) {
	// Requirement 3: a ciphertext flip damages exactly that plaintext bit.
	key, iv, rng := testKeyIV(7)
	plain := make([]byte, 256)
	rng.Read(plain)
	for _, m := range []Mode{OFB, CTR} {
		ct, _ := Encrypt(m, key, iv, plain)
		bitio.FlipBit(ct, 777)
		dec, _ := Decrypt(m, key, iv, ct)
		for i := range dec {
			want := plain[i]
			if int64(i) == 777/8 {
				want ^= 1 << (7 - uint(777%8))
			}
			if dec[i] != want {
				t.Fatalf("%v: byte %d damaged beyond the flipped bit", m, i)
			}
		}
	}
}

func TestAssessVerdictsMatchPaper(t *testing.T) {
	// The §5.2 conclusion: ECB fails req 1; CBC fails 2 and 3; OFB and CTR
	// meet all requirements.
	rng := rand.New(rand.NewSource(8))
	verdicts := map[Mode][3]bool{}
	for _, m := range Modes {
		a, err := Assess(m, rng)
		if err != nil {
			t.Fatal(err)
		}
		verdicts[m] = [3]bool{a.ConfidentialityOK, a.ErrorContainmentOK, a.ApproximationOK}
		t.Logf("%v: leak=%.2f dmgBits=%.1f dmgBlocks=%d", m, a.DuplicateLeakRatio, a.AvgDamagedBits, a.MaxDamagedBlocks)
	}
	if v := verdicts[ECB]; v[0] || !v[1] {
		t.Fatalf("ECB verdicts %v: must fail confidentiality only", verdicts[ECB])
	}
	if v := verdicts[CBC]; !v[0] || v[1] || v[2] {
		t.Fatalf("CBC verdicts %v, want confidentiality only", verdicts[CBC])
	}
	for _, m := range []Mode{OFB, CTR} {
		if v := verdicts[m]; !(v[0] && v[1] && v[2]) {
			t.Fatalf("%v verdicts %v, want all OK", m, verdicts[m])
		}
	}
}

func TestDeriveStreamIVDistinct(t *testing.T) {
	master := []byte("master-seed-0001")
	a := DeriveStreamIV(master, "BCH-6")
	b := DeriveStreamIV(master, "BCH-7")
	if bytes.Equal(a, b) {
		t.Fatal("different streams must get different IVs")
	}
	if len(a) != BlockSize {
		t.Fatal("IV length")
	}
	if !bytes.Equal(a, DeriveStreamIV(master, "BCH-6")) {
		t.Fatal("derivation must be deterministic")
	}
}

func buildStreams(t *testing.T) (*codec.Video, *core.StreamSet, []core.FramePartition) {
	t.Helper()
	cfg, _ := synth.PresetByName("crew_like")
	seq := synth.Generate(cfg.ScaleTo(64, 48, 6))
	p := codec.DefaultParams()
	p.GOPSize = 6
	p.SearchRange = 8
	v, err := codec.Encode(seq, p)
	if err != nil {
		t.Fatal(err)
	}
	an := core.Analyze(v, core.DefaultOptions())
	parts := an.Partition(core.PaperAssignment())
	ss, err := core.SplitStreams(v, parts)
	if err != nil {
		t.Fatal(err)
	}
	return v, ss, parts
}

func TestEncryptStreamsRoundTrip(t *testing.T) {
	v, ss, parts := buildStreams(t)
	key, _, _ := testKeyIV(9)
	master := []byte("per-video-master")
	es, err := EncryptStreams(ss, CTR, key, master)
	if err != nil {
		t.Fatal(err)
	}
	back, err := es.Decrypt(key, master, parts)
	if err != nil {
		t.Fatal(err)
	}
	merged, err := back.Merge(v)
	if err != nil {
		t.Fatal(err)
	}
	for f := range v.Frames {
		if !bytes.Equal(v.Frames[f].Payload, merged.Frames[f].Payload) {
			t.Fatalf("frame %d payload differs after encrypt/decrypt/merge", f)
		}
	}
}

func TestEncryptStreamsRejectsBlockModes(t *testing.T) {
	_, ss, _ := buildStreams(t)
	key, _, _ := testKeyIV(10)
	for _, m := range []Mode{ECB, CBC} {
		if _, err := EncryptStreams(ss, m, key, []byte("m")); err == nil {
			t.Fatalf("%v must be rejected for stream encryption", m)
		}
	}
}

func TestApproximateThenDecryptEqualsDecryptThenApproximate(t *testing.T) {
	// Requirement 3 end-to-end: flipping ciphertext bit i and decrypting
	// equals decrypting and flipping plaintext bit i (CTR/OFB).
	_, ss, parts := buildStreams(t)
	key, _, _ := testKeyIV(11)
	master := []byte("m2")
	es, err := EncryptStreams(ss, OFB, key, master)
	if err != nil {
		t.Fatal(err)
	}
	name := ss.SchemeNames()[0]
	// Path A: flip in ciphertext, then decrypt.
	esFlipped := &EncryptedStreams{Mode: es.Mode, Streams: map[string][]byte{}, Bits: es.Bits}
	for n, ct := range es.Streams {
		esFlipped.Streams[n] = append([]byte(nil), ct...)
	}
	bitio.FlipBit(esFlipped.Streams[name], 13)
	a, err := esFlipped.Decrypt(key, master, parts)
	if err != nil {
		t.Fatal(err)
	}
	// Path B: decrypt, then flip the same plaintext bit.
	b, err := es.Decrypt(key, master, parts)
	if err != nil {
		t.Fatal(err)
	}
	bFlipped := append([]byte(nil), b.Streams[name]...)
	bitio.FlipBit(bFlipped, 13)
	if !bytes.Equal(a.Streams[name], bFlipped) {
		t.Fatal("approximation and decryption do not commute")
	}
	for _, n := range ss.SchemeNames() {
		if n != name && !bytes.Equal(a.Streams[n], b.Streams[n]) {
			t.Fatalf("stream %s affected by a flip in %s", n, name)
		}
	}
}

func BenchmarkCTREncryptMB(b *testing.B) {
	b.ReportAllocs()
	key, iv, rng := testKeyIV(12)
	plain := make([]byte, 1<<20)
	rng.Read(plain)
	b.ResetTimer()
	b.SetBytes(1 << 20)
	for i := 0; i < b.N; i++ {
		Encrypt(CTR, key, iv, plain)
	}
}
