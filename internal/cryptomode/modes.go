// Package cryptomode implements the four AES block-cipher modes of operation
// analysed in §5 of the paper (ECB, CBC, OFB, CTR) over the standard AES
// substitution-permutation network, together with the machinery to assess
// each mode against the paper's three requirements for encryption on top of
// approximate storage:
//
//  1. the content is unreadable to non-authorized parties,
//  2. individual bit flips do not propagate through the rest of the video,
//  3. encrypting does not interfere with approximation — a flip in
//     ciphertext damages exactly the corresponding plaintext bit.
//
// ECB fails (1); CBC fails (2) and (3); OFB and CTR meet all three.
package cryptomode

import (
	"crypto/aes"
	"crypto/cipher"
	"fmt"
)

// BlockSize is the AES block size in bytes.
const BlockSize = aes.BlockSize

// Mode identifies a block cipher mode of operation.
type Mode int

// The four modes of Figure 7.
const (
	ECB Mode = iota
	CBC
	OFB
	CTR
)

func (m Mode) String() string {
	switch m {
	case ECB:
		return "ECB"
	case CBC:
		return "CBC"
	case OFB:
		return "OFB"
	case CTR:
		return "CTR"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Modes lists all implemented modes.
var Modes = []Mode{ECB, CBC, OFB, CTR}

// IsStream reports whether the mode operates as a stream cipher (arbitrary
// lengths, bitwise error locality).
func (m Mode) IsStream() bool { return m == OFB || m == CTR }

// Encrypt encrypts plaintext with the given 16/24/32-byte key. ECB and CBC
// require the input to be a multiple of BlockSize; OFB and CTR accept any
// length. iv must be BlockSize bytes for all modes except ECB (ignored).
func Encrypt(m Mode, key, iv, plaintext []byte) ([]byte, error) {
	block, err := aes.NewCipher(key)
	if err != nil {
		return nil, err
	}
	switch m {
	case ECB:
		if len(plaintext)%BlockSize != 0 {
			return nil, fmt.Errorf("cryptomode: ECB needs whole blocks, got %d bytes", len(plaintext))
		}
		out := make([]byte, len(plaintext))
		for i := 0; i < len(plaintext); i += BlockSize {
			block.Encrypt(out[i:i+BlockSize], plaintext[i:i+BlockSize])
		}
		return out, nil
	case CBC:
		if len(plaintext)%BlockSize != 0 {
			return nil, fmt.Errorf("cryptomode: CBC needs whole blocks, got %d bytes", len(plaintext))
		}
		if err := checkIV(iv); err != nil {
			return nil, err
		}
		out := make([]byte, len(plaintext))
		prev := append([]byte(nil), iv...)
		for i := 0; i < len(plaintext); i += BlockSize {
			var x [BlockSize]byte
			for j := 0; j < BlockSize; j++ {
				x[j] = plaintext[i+j] ^ prev[j]
			}
			block.Encrypt(out[i:i+BlockSize], x[:])
			copy(prev, out[i:i+BlockSize])
		}
		return out, nil
	case OFB:
		if err := checkIV(iv); err != nil {
			return nil, err
		}
		out := make([]byte, len(plaintext))
		feedback := append([]byte(nil), iv...)
		for i := 0; i < len(plaintext); i += BlockSize {
			block.Encrypt(feedback, feedback)
			n := min(BlockSize, len(plaintext)-i)
			for j := 0; j < n; j++ {
				out[i+j] = plaintext[i+j] ^ feedback[j]
			}
		}
		return out, nil
	case CTR:
		if err := checkIV(iv); err != nil {
			return nil, err
		}
		out := make([]byte, len(plaintext))
		cipher.NewCTR(block, iv).XORKeyStream(out, plaintext)
		return out, nil
	default:
		return nil, fmt.Errorf("cryptomode: unknown mode %v", m)
	}
}

// Decrypt inverts Encrypt.
func Decrypt(m Mode, key, iv, ciphertext []byte) ([]byte, error) {
	switch m {
	case OFB, CTR:
		// Stream modes are symmetric.
		return Encrypt(m, key, iv, ciphertext)
	case ECB:
		block, err := aes.NewCipher(key)
		if err != nil {
			return nil, err
		}
		if len(ciphertext)%BlockSize != 0 {
			return nil, fmt.Errorf("cryptomode: ECB needs whole blocks")
		}
		out := make([]byte, len(ciphertext))
		for i := 0; i < len(ciphertext); i += BlockSize {
			block.Decrypt(out[i:i+BlockSize], ciphertext[i:i+BlockSize])
		}
		return out, nil
	case CBC:
		block, err := aes.NewCipher(key)
		if err != nil {
			return nil, err
		}
		if len(ciphertext)%BlockSize != 0 {
			return nil, fmt.Errorf("cryptomode: CBC needs whole blocks")
		}
		if err := checkIV(iv); err != nil {
			return nil, err
		}
		out := make([]byte, len(ciphertext))
		prev := append([]byte(nil), iv...)
		var tmp [BlockSize]byte
		for i := 0; i < len(ciphertext); i += BlockSize {
			block.Decrypt(tmp[:], ciphertext[i:i+BlockSize])
			for j := 0; j < BlockSize; j++ {
				out[i+j] = tmp[j] ^ prev[j]
			}
			copy(prev, ciphertext[i:i+BlockSize])
		}
		return out, nil
	default:
		return nil, fmt.Errorf("cryptomode: unknown mode %v", m)
	}
}

func checkIV(iv []byte) error {
	if len(iv) != BlockSize {
		return fmt.Errorf("cryptomode: IV must be %d bytes, got %d", BlockSize, len(iv))
	}
	return nil
}

// PadTo16 zero-pads p to a whole number of AES blocks (for ECB/CBC use with
// bitstreams whose true length is kept in precise metadata).
func PadTo16(p []byte) []byte {
	r := len(p) % BlockSize
	if r == 0 {
		return p
	}
	return append(append([]byte(nil), p...), make([]byte, BlockSize-r)...)
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
