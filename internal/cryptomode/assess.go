package cryptomode

import (
	"crypto/sha256"
	"fmt"
	"math/rand"

	"videoapp/internal/bitio"
	"videoapp/internal/core"
)

// Assessment is the empirical evaluation of a mode against the §5.1
// requirements.
type Assessment struct {
	Mode Mode
	// DuplicateLeakRatio is the fraction of repeated plaintext blocks whose
	// ciphertext blocks also repeat (requirement 1 fails when high: ECB).
	DuplicateLeakRatio float64
	// AvgDamagedBits is the mean number of plaintext bits damaged by one
	// ciphertext bit flip (requirement 3 needs exactly 1).
	AvgDamagedBits float64
	// MaxDamagedBlocks is the largest number of distinct 16-byte plaintext
	// blocks damaged by one flip (requirement 2 needs a small constant).
	MaxDamagedBlocks int
	// Requirement verdicts.
	ConfidentialityOK  bool
	ErrorContainmentOK bool
	ApproximationOK    bool
}

// MeetsAll reports whether the mode satisfies all three requirements and is
// therefore usable for encrypted approximate video storage.
func (a Assessment) MeetsAll() bool {
	return a.ConfidentialityOK && a.ErrorContainmentOK && a.ApproximationOK
}

// Assess measures the mode empirically: it encrypts a plaintext with heavy
// block-level repetition (as video data has), checks ciphertext-block
// uniqueness, then flips ciphertext bits one at a time and measures how far
// the damage spreads after decryption.
func Assess(m Mode, rng *rand.Rand) (Assessment, error) {
	key := make([]byte, 16)
	iv := make([]byte, BlockSize)
	rng.Read(key)
	rng.Read(iv)

	// Plaintext: 256 blocks, only 8 distinct values, many repeats.
	const nBlocks = 256
	plain := make([]byte, nBlocks*BlockSize)
	var patterns [8][BlockSize]byte
	for i := range patterns {
		rng.Read(patterns[i][:])
	}
	for b := 0; b < nBlocks; b++ {
		copy(plain[b*BlockSize:], patterns[b%len(patterns)][:])
	}

	ct, err := Encrypt(m, key, iv, plain)
	if err != nil {
		return Assessment{}, err
	}

	a := Assessment{Mode: m}

	// Requirement 1: do equal plaintext blocks leak as equal ciphertext?
	seen := map[[BlockSize]byte]int{}
	dups := 0
	for b := 0; b < nBlocks; b++ {
		var cb [BlockSize]byte
		copy(cb[:], ct[b*BlockSize:])
		if seen[cb] > 0 {
			dups++
		}
		seen[cb]++
	}
	// nBlocks - len(patterns) plaintext repeats exist; count leaked ones.
	a.DuplicateLeakRatio = float64(dups) / float64(nBlocks-len(patterns))
	a.ConfidentialityOK = a.DuplicateLeakRatio < 0.01

	// Requirements 2 and 3: single-bit flip propagation.
	const trials = 64
	totalDamaged := 0
	for trial := 0; trial < trials; trial++ {
		pos := rng.Int63n(int64(len(ct) * 8))
		flipped := append([]byte(nil), ct...)
		bitio.FlipBit(flipped, pos)
		dec, err := Decrypt(m, key, iv, flipped)
		if err != nil {
			return Assessment{}, err
		}
		damagedBits := 0
		damagedBlocks := map[int]bool{}
		for i := range dec {
			if x := dec[i] ^ plain[i]; x != 0 {
				damagedBlocks[i/BlockSize] = true
				for ; x != 0; x &= x - 1 {
					damagedBits++
				}
			}
		}
		totalDamaged += damagedBits
		if len(damagedBlocks) > a.MaxDamagedBlocks {
			a.MaxDamagedBlocks = len(damagedBlocks)
		}
	}
	a.AvgDamagedBits = float64(totalDamaged) / trials
	// Requirement 2: damage must not propagate beyond the block that
	// carried the error (CBC chains it into the following block and fails).
	a.ErrorContainmentOK = a.MaxDamagedBlocks <= 1
	// Requirement 3: approximation compatibility needs exact 1-bit damage.
	a.ApproximationOK = a.AvgDamagedBits == 1 && a.MaxDamagedBlocks == 1
	return a, nil
}

// DeriveStreamIV derives a per-stream IV from a single master value and the
// stream identifier (§5.3: "derived from a single value for all streams
// pre-appended to each stream's identifier").
func DeriveStreamIV(master []byte, streamID string) []byte {
	h := sha256.Sum256(append(append([]byte(nil), master...), streamID...))
	return h[:BlockSize]
}

// EncryptedStreams is a StreamSet whose per-reliability substreams are each
// encrypted with an approximation-compatible mode.
type EncryptedStreams struct {
	Mode    Mode
	Streams map[string][]byte
	Bits    map[string]int64
}

// EncryptStreams encrypts every substream of ss separately (§5.3) using the
// given mode, key and master IV. Only approximation-compatible stream modes
// are accepted: block modes would break the split/merge bit-exactness and
// the approximation invariant.
func EncryptStreams(ss *core.StreamSet, m Mode, key, master []byte) (*EncryptedStreams, error) {
	if !m.IsStream() {
		return nil, fmt.Errorf("cryptomode: mode %v is not approximation-compatible", m)
	}
	out := &EncryptedStreams{Mode: m, Streams: map[string][]byte{}, Bits: map[string]int64{}}
	for _, name := range ss.SchemeNames() {
		iv := DeriveStreamIV(master, name)
		ct, err := Encrypt(m, key, iv, ss.Streams[name])
		if err != nil {
			return nil, err
		}
		out.Streams[name] = ct
		out.Bits[name] = ss.Bits[name]
	}
	return out, nil
}

// Decrypt reverses EncryptStreams, returning a StreamSet whose payload can
// be merged back into a video. parts must be the partition layout of the
// original split (stored precisely with the headers).
func (es *EncryptedStreams) Decrypt(key, master []byte, parts []core.FramePartition) (*core.StreamSet, error) {
	out := &core.StreamSet{Parts: parts, Streams: map[string][]byte{}, Bits: map[string]int64{}}
	for name, ct := range es.Streams {
		iv := DeriveStreamIV(master, name)
		pt, err := Decrypt(es.Mode, key, iv, ct)
		if err != nil {
			return nil, err
		}
		out.Streams[name] = pt
		out.Bits[name] = es.Bits[name]
	}
	return out, nil
}
