package bitio

import "errors"

// ErrOutOfBits is returned when a read crosses the end of the stream.
//
// The error-resilient video decoder treats it as a desync signal and conceals
// the rest of the frame rather than aborting the whole decode.
var ErrOutOfBits = errors.New("bitio: out of bits")

// Reader consumes bits MSB-first from a byte slice.
type Reader struct {
	buf []byte
	pos int64 // bit position
}

// NewReader returns a Reader over buf. The reader does not copy buf.
func NewReader(buf []byte) *Reader { return &Reader{buf: buf} }

// ReadBit returns the next bit, or ErrOutOfBits past the end.
func (r *Reader) ReadBit() (int, error) {
	if r.pos >= int64(len(r.buf))*8 {
		return 0, ErrOutOfBits
	}
	b := r.buf[r.pos>>3] >> (7 - uint(r.pos&7)) & 1
	r.pos++
	return int(b), nil
}

// ReadBits returns the next n bits as the low bits of a uint64, MSB-first.
// n must be in [0, 64]. When fewer than n bits remain the reader consumes
// them all and returns ErrOutOfBits, exactly as the bit-at-a-time loop did.
// The read proceeds a byte at a time, so wide reads cost n/8 extractions.
func (r *Reader) ReadBits(n uint) (uint64, error) {
	if n == 0 {
		return 0, nil
	}
	if int64(n) > r.Remaining() {
		r.pos = int64(len(r.buf)) * 8
		return 0, ErrOutOfBits
	}
	var v uint64
	pos, left := r.pos, n
	for left > 0 {
		avail := 8 - uint(pos&7)
		take := avail
		if take > left {
			take = left
		}
		chunk := uint64(r.buf[pos>>3]>>(avail-take)) & (1<<take - 1)
		v = v<<take | chunk
		pos += int64(take)
		left -= take
	}
	r.pos = pos
	return v, nil
}

// ReadBool reads one bit and reports whether it is 1.
func (r *Reader) ReadBool() (bool, error) {
	b, err := r.ReadBit()
	return b == 1, err
}

// ReadUE reads an unsigned exponential-Golomb code.
//
// Corrupt streams can contain arbitrarily long runs of zeros; runs longer
// than 32 bits are reported as ErrOutOfBits so that callers treat them as a
// desync rather than an infinite value.
func (r *Reader) ReadUE() (uint32, error) {
	var zeros uint
	for {
		b, err := r.ReadBit()
		if err != nil {
			return 0, err
		}
		if b == 1 {
			break
		}
		zeros++
		if zeros > 32 {
			return 0, ErrOutOfBits
		}
	}
	rest, err := r.ReadBits(zeros)
	if err != nil {
		return 0, err
	}
	v := (uint64(1)<<zeros | rest) - 1
	return uint32(v), nil
}

// ReadSE reads a signed exponential-Golomb code.
func (r *Reader) ReadSE() (int32, error) {
	u, err := r.ReadUE()
	if err != nil {
		return 0, err
	}
	return ueToSE(u), nil
}

// BitPos reports the number of bits consumed so far.
func (r *Reader) BitPos() int64 { return r.pos }

// SeekBit positions the reader at absolute bit offset pos.
func (r *Reader) SeekBit(pos int64) {
	if pos < 0 {
		pos = 0
	}
	r.pos = pos
}

// AlignByte advances to the next byte boundary.
func (r *Reader) AlignByte() {
	if rem := r.pos & 7; rem != 0 {
		r.pos += 8 - rem
	}
}

// Remaining reports the number of unread bits.
func (r *Reader) Remaining() int64 { return int64(len(r.buf))*8 - r.pos }
