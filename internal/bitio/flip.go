package bitio

// FlipBit inverts the bit at absolute bit offset pos (MSB-first) in buf.
// Offsets outside the buffer are ignored.
func FlipBit(buf []byte, pos int64) {
	if pos < 0 || pos >= int64(len(buf))*8 {
		return
	}
	buf[pos>>3] ^= 1 << (7 - uint(pos&7))
}

// GetBit returns the bit at absolute bit offset pos, or 0 outside the buffer.
func GetBit(buf []byte, pos int64) int {
	if pos < 0 || pos >= int64(len(buf))*8 {
		return 0
	}
	return int(buf[pos>>3] >> (7 - uint(pos&7)) & 1)
}

// CopyBits copies n bits starting at bit offset srcPos in src into dst
// starting at bit offset dstPos. Regions must already be allocated; bits
// outside either buffer are skipped.
func CopyBits(dst []byte, dstPos int64, src []byte, srcPos, n int64) {
	for i := int64(0); i < n; i++ {
		sp, dp := srcPos+i, dstPos+i
		if sp < 0 || sp >= int64(len(src))*8 || dp < 0 || dp >= int64(len(dst))*8 {
			continue
		}
		b := src[sp>>3] >> (7 - uint(sp&7)) & 1
		mask := byte(1) << (7 - uint(dp&7))
		if b == 1 {
			dst[dp>>3] |= mask
		} else {
			dst[dp>>3] &^= mask
		}
	}
}
