// Package bitio provides MSB-first bit-level readers and writers used by the
// entropy coders and bitstream (de)serializers, together with the
// exponential-Golomb codes used for header metadata.
//
// All offsets are expressed in bits from the start of the stream so that
// higher layers (the VideoApp partitioner in particular) can attribute every
// single output bit to the macroblock that produced it.
package bitio

// Writer accumulates bits MSB-first into a byte slice.
//
// The zero value is ready to use.
type Writer struct {
	buf  []byte
	cur  byte  // partially filled byte
	nCur uint  // number of bits in cur (0..7)
	pos  int64 // total bits written
}

// NewWriter returns an empty Writer.
func NewWriter() *Writer { return &Writer{} }

// WriteBit appends a single bit (0 or 1).
func (w *Writer) WriteBit(bit int) {
	w.cur = w.cur<<1 | byte(bit&1)
	w.nCur++
	w.pos++
	if w.nCur == 8 {
		w.buf = append(w.buf, w.cur)
		w.cur, w.nCur = 0, 0
	}
}

// WriteBits appends the n least-significant bits of v, most significant
// first. n must be in [0, 64]. The write proceeds a byte at a time once the
// partial byte is filled, so long runs (the arithmetic coder's outstanding
// bits, payload padding) cost n/8 appends rather than n.
func (w *Writer) WriteBits(v uint64, n uint) {
	if n == 0 {
		return
	}
	if n < 64 {
		v &= 1<<n - 1
	}
	w.pos += int64(n)
	if w.nCur != 0 {
		fill := 8 - w.nCur
		if fill > n {
			w.cur = w.cur<<n | byte(v)
			w.nCur += n
			return
		}
		w.cur = w.cur<<fill | byte(v>>(n-fill))
		w.buf = append(w.buf, w.cur)
		w.cur, w.nCur = 0, 0
		n -= fill
	}
	for n >= 8 {
		n -= 8
		w.buf = append(w.buf, byte(v>>n))
	}
	if n > 0 {
		w.cur = byte(v) & (1<<n - 1)
		w.nCur = n
	}
}

// WriteBool appends a single bit: 1 for true, 0 for false.
func (w *Writer) WriteBool(b bool) {
	if b {
		w.WriteBit(1)
	} else {
		w.WriteBit(0)
	}
}

// WriteUE appends v using unsigned exponential-Golomb coding.
func (w *Writer) WriteUE(v uint32) {
	x := uint64(v) + 1
	n := bitLen64(x)
	w.WriteBits(0, n-1) // leading zeros
	w.WriteBits(x, n)
}

// WriteSE appends v using signed exponential-Golomb coding, mapping
// 0, 1, -1, 2, -2, ... to codes 0, 1, 2, 3, 4, ...
func (w *Writer) WriteSE(v int32) {
	w.WriteUE(seToUE(v))
}

// BitPos reports the number of bits written so far.
func (w *Writer) BitPos() int64 { return w.pos }

// AlignByte pads with zero bits to the next byte boundary.
func (w *Writer) AlignByte() {
	for w.nCur != 0 {
		w.WriteBit(0)
	}
}

// Bytes returns the written stream, padding the final partial byte with
// zeros. The writer remains usable; the returned slice must not be modified
// if more bits will be written.
func (w *Writer) Bytes() []byte {
	if w.nCur == 0 {
		return w.buf
	}
	out := make([]byte, len(w.buf), len(w.buf)+1)
	copy(out, w.buf)
	return append(out, w.cur<<(8-w.nCur))
}

// Len reports the length in bytes of the stream returned by Bytes.
func (w *Writer) Len() int {
	n := len(w.buf)
	if w.nCur != 0 {
		n++
	}
	return n
}

// Reset truncates the writer to empty, retaining the allocated buffer.
func (w *Writer) Reset() {
	w.buf = w.buf[:0]
	w.cur, w.nCur, w.pos = 0, 0, 0
}

func bitLen64(x uint64) uint {
	var n uint
	for x != 0 {
		n++
		x >>= 1
	}
	return n
}

func seToUE(v int32) uint32 {
	if v <= 0 {
		return uint32(-2 * int64(v))
	}
	return uint32(2*int64(v) - 1)
}

func ueToSE(u uint32) int32 {
	if u%2 == 0 {
		return int32(-(int64(u) / 2))
	}
	return int32((int64(u) + 1) / 2)
}
