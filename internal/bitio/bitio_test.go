package bitio

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestWriteReadBits(t *testing.T) {
	w := NewWriter()
	w.WriteBits(0b1011, 4)
	w.WriteBits(0xFF, 8)
	w.WriteBit(0)
	w.WriteBit(1)
	r := NewReader(w.Bytes())
	if v, _ := r.ReadBits(4); v != 0b1011 {
		t.Fatalf("got %b", v)
	}
	if v, _ := r.ReadBits(8); v != 0xFF {
		t.Fatalf("got %x", v)
	}
	if b, _ := r.ReadBit(); b != 0 {
		t.Fatal("want 0")
	}
	if b, _ := r.ReadBit(); b != 1 {
		t.Fatal("want 1")
	}
}

func TestBitPosTracking(t *testing.T) {
	w := NewWriter()
	if w.BitPos() != 0 {
		t.Fatal("fresh writer must be at 0")
	}
	w.WriteBits(0, 13)
	if w.BitPos() != 13 {
		t.Fatalf("pos = %d, want 13", w.BitPos())
	}
	w.WriteUE(0) // one bit
	if w.BitPos() != 14 {
		t.Fatalf("pos = %d, want 14", w.BitPos())
	}
}

func TestUERoundTrip(t *testing.T) {
	values := []uint32{0, 1, 2, 3, 7, 8, 100, 1 << 16, 1<<31 - 1}
	w := NewWriter()
	for _, v := range values {
		w.WriteUE(v)
	}
	r := NewReader(w.Bytes())
	for _, want := range values {
		got, err := r.ReadUE()
		if err != nil {
			t.Fatalf("ReadUE: %v", err)
		}
		if got != want {
			t.Fatalf("got %d, want %d", got, want)
		}
	}
}

func TestSERoundTrip(t *testing.T) {
	values := []int32{0, 1, -1, 2, -2, 100, -100, 1 << 20, -(1 << 20)}
	w := NewWriter()
	for _, v := range values {
		w.WriteSE(v)
	}
	r := NewReader(w.Bytes())
	for _, want := range values {
		got, err := r.ReadSE()
		if err != nil {
			t.Fatalf("ReadSE: %v", err)
		}
		if got != want {
			t.Fatalf("got %d, want %d", got, want)
		}
	}
}

func TestUERoundTripProperty(t *testing.T) {
	f := func(v uint32) bool {
		v &= 1<<30 - 1
		w := NewWriter()
		w.WriteUE(v)
		r := NewReader(w.Bytes())
		got, err := r.ReadUE()
		return err == nil && got == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSERoundTripProperty(t *testing.T) {
	f := func(v int32) bool {
		v %= 1 << 28
		w := NewWriter()
		w.WriteSE(v)
		r := NewReader(w.Bytes())
		got, err := r.ReadSE()
		return err == nil && got == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRandomBitSequenceRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	bits := make([]int, 1000)
	w := NewWriter()
	for i := range bits {
		bits[i] = rng.Intn(2)
		w.WriteBit(bits[i])
	}
	r := NewReader(w.Bytes())
	for i, want := range bits {
		got, err := r.ReadBit()
		if err != nil {
			t.Fatalf("bit %d: %v", i, err)
		}
		if got != want {
			t.Fatalf("bit %d: got %d, want %d", i, got, want)
		}
	}
}

func TestOutOfBits(t *testing.T) {
	r := NewReader([]byte{0xAB})
	if _, err := r.ReadBits(8); err != nil {
		t.Fatal(err)
	}
	if _, err := r.ReadBit(); err != ErrOutOfBits {
		t.Fatalf("want ErrOutOfBits, got %v", err)
	}
	if _, err := r.ReadBits(4); err != ErrOutOfBits {
		t.Fatalf("want ErrOutOfBits, got %v", err)
	}
}

func TestReadUECorruptLongZeroRun(t *testing.T) {
	// 40 zero bits: must fail as desync, not loop or return garbage.
	r := NewReader(make([]byte, 5))
	if _, err := r.ReadUE(); err != ErrOutOfBits {
		t.Fatalf("want ErrOutOfBits, got %v", err)
	}
}

func TestAlignByte(t *testing.T) {
	w := NewWriter()
	w.WriteBits(1, 3)
	w.AlignByte()
	if w.BitPos() != 8 {
		t.Fatalf("writer pos = %d, want 8", w.BitPos())
	}
	w.WriteBits(0xAB, 8)
	r := NewReader(w.Bytes())
	r.ReadBits(3)
	r.AlignByte()
	if r.BitPos() != 8 {
		t.Fatalf("reader pos = %d, want 8", r.BitPos())
	}
	if v, _ := r.ReadBits(8); v != 0xAB {
		t.Fatalf("got %x", v)
	}
}

func TestFlipBit(t *testing.T) {
	buf := []byte{0x00, 0xFF}
	FlipBit(buf, 0)
	if buf[0] != 0x80 {
		t.Fatalf("buf[0] = %x", buf[0])
	}
	FlipBit(buf, 15)
	if buf[1] != 0xFE {
		t.Fatalf("buf[1] = %x", buf[1])
	}
	FlipBit(buf, 0)
	FlipBit(buf, 15)
	if buf[0] != 0 || buf[1] != 0xFF {
		t.Fatal("double flip must restore")
	}
	FlipBit(buf, -1) // no-op
	FlipBit(buf, 16) // no-op
	if buf[0] != 0 || buf[1] != 0xFF {
		t.Fatal("out-of-range flips must be no-ops")
	}
}

func TestGetBit(t *testing.T) {
	buf := []byte{0b10100000}
	want := []int{1, 0, 1, 0}
	for i, wb := range want {
		if got := GetBit(buf, int64(i)); got != wb {
			t.Fatalf("bit %d: got %d want %d", i, got, wb)
		}
	}
	if GetBit(buf, 100) != 0 || GetBit(buf, -1) != 0 {
		t.Fatal("out-of-range must be 0")
	}
}

func TestCopyBits(t *testing.T) {
	src := []byte{0xDE, 0xAD, 0xBE, 0xEF}
	dst := make([]byte, 4)
	CopyBits(dst, 3, src, 3, 26)
	for i := int64(3); i < 29; i++ {
		if GetBit(dst, i) != GetBit(src, i) {
			t.Fatalf("bit %d mismatch", i)
		}
	}
	if GetBit(dst, 0) != 0 || GetBit(dst, 31) != 0 {
		t.Fatal("bits outside the copied range must stay 0")
	}
}

func TestWriterReset(t *testing.T) {
	w := NewWriter()
	w.WriteBits(0xFFFF, 16)
	w.Reset()
	if w.BitPos() != 0 || w.Len() != 0 {
		t.Fatal("reset writer must be empty")
	}
	w.WriteBits(0xA, 4)
	if got := w.Bytes(); len(got) != 1 || got[0] != 0xA0 {
		t.Fatalf("got % x", got)
	}
}

func TestWriterLen(t *testing.T) {
	w := NewWriter()
	if w.Len() != 0 {
		t.Fatal("empty")
	}
	w.WriteBit(1)
	if w.Len() != 1 {
		t.Fatal("partial byte counts")
	}
	w.WriteBits(0, 7)
	if w.Len() != 1 {
		t.Fatal("exactly one byte")
	}
	w.WriteBit(0)
	if w.Len() != 2 {
		t.Fatal("second byte")
	}
}

func TestReaderSeek(t *testing.T) {
	r := NewReader([]byte{0x0F})
	r.SeekBit(4)
	if v, _ := r.ReadBits(4); v != 0xF {
		t.Fatalf("got %x", v)
	}
	r.SeekBit(-5)
	if r.BitPos() != 0 {
		t.Fatal("negative seek clamps to 0")
	}
}

func BenchmarkWriteBits(b *testing.B) {
	b.ReportAllocs()
	w := NewWriter()
	for i := 0; i < b.N; i++ {
		if i%1000 == 0 {
			w.Reset()
		}
		w.WriteBits(uint64(i), 17)
	}
}

func BenchmarkReadUE(b *testing.B) {
	b.ReportAllocs()
	w := NewWriter()
	for i := 0; i < 1000; i++ {
		w.WriteUE(uint32(i % 512))
	}
	buf := w.Bytes()
	r := NewReader(buf)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if r.Remaining() < 64 {
			r.SeekBit(0)
		}
		r.ReadUE()
	}
}
