package sim

import (
	"math"
	"math/rand"
	"testing"

	"videoapp/internal/bitio"
)

func TestGeometricEdgeCases(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if Geometric(rng, 1) != 0 {
		t.Fatal("p=1 must return 0")
	}
	if Geometric(rng, 0) != MaxGeometric {
		t.Fatal("p=0 must return the MaxGeometric clamp")
	}
	if Geometric(rng, -0.5) != MaxGeometric {
		t.Fatal("p<0 must return the MaxGeometric clamp")
	}
	// The clamp exists so the idiomatic advance cannot wrap: the historical
	// math.MaxInt64 return made pos + 1 + Geometric(...) overflow negative.
	if g := Geometric(rng, 0); g+1+g < 0 {
		t.Fatal("advance arithmetic on two clamped draws must not overflow")
	}
	// Astronomically small p draws the clamp too (log ratio overflows int64).
	if g := Geometric(rng, 1e-300); g != MaxGeometric {
		t.Fatalf("p=1e-300 should hit the clamp, got %d", g)
	}
}

// TestVisitErrorPositionsMatchesSlice pins the contract that the callback
// form draws the identical RNG sequence and yields the identical positions as
// the slice form for a shared seed, across rate regimes including p=0 and
// rates low enough that most draws terminate immediately.
func TestVisitErrorPositionsMatchesSlice(t *testing.T) {
	for _, p := range []float64{0, 1e-12, 1e-6, 1e-3, 0.05, 0.5, 1} {
		for _, n := range []int64{0, 1, 63, 1000, 1 << 20} {
			rngA := rand.New(rand.NewSource(97))
			rngB := rand.New(rand.NewSource(97))
			var got []int64
			VisitErrorPositions(rngA, n, p, func(pos int64) { got = append(got, pos) })
			// Re-derive the slice form against an independent generator state
			// using the historical direct implementation.
			var want []int64
			pos := Geometric(rngB, p)
			for pos < n {
				want = append(want, pos)
				adv := Geometric(rngB, p)
				if adv >= n-pos-1 {
					break
				}
				pos += 1 + adv
			}
			if len(got) != len(want) {
				t.Fatalf("n=%d p=%g: %d positions vs %d", n, p, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("n=%d p=%g: position %d is %d, want %d", n, p, i, got[i], want[i])
				}
			}
			// Both generators must end in the same state: same draw count.
			if a, b := rngA.Int63(), rngB.Int63(); a != b {
				t.Fatalf("n=%d p=%g: generator states diverged", n, p)
			}
		}
	}
}

func TestGeometricMean(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	const p = 0.1
	var sum float64
	const n = 20000
	for i := 0; i < n; i++ {
		sum += float64(Geometric(rng, p))
	}
	mean := sum / n
	want := (1 - p) / p // 9
	if math.Abs(mean-want) > 0.3 {
		t.Fatalf("geometric mean %.2f, want %.2f", mean, want)
	}
}

func TestErrorPositionsBinomialCount(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	const n, p = 10000, 0.01
	var sum, sum2 float64
	const trials = 2000
	for i := 0; i < trials; i++ {
		c := float64(len(ErrorPositions(rng, n, p)))
		sum += c
		sum2 += c * c
	}
	mean := sum / trials
	variance := sum2/trials - mean*mean
	if math.Abs(mean-n*p) > 1.0 {
		t.Fatalf("mean %.2f, want %.1f", mean, n*p)
	}
	wantVar := n * p * (1 - p)
	if math.Abs(variance-wantVar) > wantVar*0.25 {
		t.Fatalf("variance %.2f, want %.2f", variance, wantVar)
	}
}

func TestErrorPositionsSortedUniqueInRange(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	pos := ErrorPositions(rng, 1000, 0.05)
	for i, p := range pos {
		if p < 0 || p >= 1000 {
			t.Fatalf("position %d out of range", p)
		}
		if i > 0 && p <= pos[i-1] {
			t.Fatal("positions must be strictly increasing")
		}
	}
}

func TestFlipIIDFlipsExactlyReportedBits(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	buf := make([]byte, 1000)
	n := FlipIID(rng, buf, 8000, 0.01)
	ones := 0
	for _, b := range buf {
		for x := b; x != 0; x &= x - 1 {
			ones++
		}
	}
	if ones != n {
		t.Fatalf("reported %d flips, buffer has %d set bits", n, ones)
	}
	if n == 0 {
		t.Fatal("expected some flips at p=0.01 over 8000 bits")
	}
}

func TestFlipIIDRespectsBitBound(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	buf := make([]byte, 4)
	FlipIID(rng, buf, 1000, 0.5) // bits beyond the buffer are clamped
	// No panic is the main assertion; also check byte 4+ doesn't exist.
	FlipIID(rng, buf, 16, 1)
	for i := 2; i < 4; i++ {
		if buf[i] != 0 && false {
			t.Fatal("unreachable")
		}
	}
	// With p=1 and 16 bits, the first two bytes flip entirely.
	if bitio.GetBit(buf, 0) == bitio.GetBit(buf, 17) {
		// position 17 untouched by the second call; weak sanity only
		t.Log("note: distribution check covered elsewhere")
	}
}

func TestAnyErrorProb(t *testing.T) {
	if got := AnyErrorProb(1000, 0); got != 0 {
		t.Fatalf("p=0 gives %v", got)
	}
	got := AnyErrorProb(1000, 1e-6)
	want := 1 - math.Pow(1-1e-6, 1000)
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("got %v, want %v", got, want)
	}
	if p := AnyErrorProb(1_000_000_000, 1e-3); p < 0.999999 {
		t.Fatalf("huge stream must almost surely err, got %v", p)
	}
}

func TestUseForcedFlip(t *testing.T) {
	if !UseForcedFlip(1000, 1e-6) {
		t.Fatal("tiny expected count must use forced flips")
	}
	if UseForcedFlip(1_000_000, 1e-3) {
		t.Fatal("large expected count must use direct sampling")
	}
}

func TestForceOneFlip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 100; i++ {
		ff := ForceOneFlip(rng, 5000, 1e-9)
		if ff.Position < 0 || ff.Position >= 5000 {
			t.Fatalf("position %d", ff.Position)
		}
		if ff.Scale <= 0 || ff.Scale > 1e-5 {
			t.Fatalf("scale %g implausible for p=1e-9 over 5000 bits", ff.Scale)
		}
	}
}

func TestRunnerDeterministic(t *testing.T) {
	r := NewRunner(42)
	trial := func(rng *rand.Rand) float64 { return rng.Float64() }
	a := r.Run(trial)
	b := r.Run(trial)
	if a != b {
		t.Fatal("runner must be deterministic for a fixed seed")
	}
	if a.N != DefaultRuns {
		t.Fatalf("ran %d trials", a.N)
	}
	if a.Min > a.Mean || a.Mean > a.Max {
		t.Fatalf("aggregate ordering: %+v", a)
	}
}

func TestRunnerDistinctSeedsDiffer(t *testing.T) {
	trial := func(rng *rand.Rand) float64 { return rng.Float64() }
	a := NewRunner(1).Run(trial)
	b := NewRunner(2).Run(trial)
	if a.Mean == b.Mean {
		t.Fatal("different seeds should give different draws")
	}
}

func BenchmarkFlipIIDMegabit(b *testing.B) {
	rng := rand.New(rand.NewSource(8))
	buf := make([]byte, 1<<17)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		FlipIID(rng, buf, 1<<20, 1e-4)
	}
}
