// Package sim provides the Monte-Carlo machinery of §6.4: reproducible
// random error placement with exact binomial statistics (via geometric
// skipping), multi-run experiment execution, and the paper's scaling rule
// for very low error rates (guarantee at least one flip, then scale the
// measured loss by the probability that any flip occurs).
package sim

import (
	"math"
	"math/rand"

	"videoapp/internal/bitio"
)

// DefaultRuns is the paper's Monte-Carlo repetition count per video.
const DefaultRuns = 30

// MaxGeometric is the clamp on Geometric's return value: large enough that
// no realistic trial count reaches it (2^62 trials), small enough that the
// idiomatic advance pos + 1 + Geometric(...) cannot wrap negative for any
// position within a real stream. Before the clamp, the p <= 0 path returned
// math.MaxInt64 and the +1 alone overflowed.
const MaxGeometric = math.MaxInt64 >> 1

// Geometric samples the number of failures before the first success of a
// Bernoulli(p) process (support {0, 1, 2, ...}), clamped to MaxGeometric.
// p <= 0 (no success possible) returns MaxGeometric.
func Geometric(rng *rand.Rand, p float64) int64 {
	if p >= 1 {
		return 0
	}
	if p <= 0 {
		return MaxGeometric
	}
	u := rng.Float64()
	for u == 0 {
		u = rng.Float64()
	}
	g := math.Log(u) / math.Log1p(-p)
	if g >= float64(MaxGeometric) {
		// Also guards the float-to-int conversion, whose behaviour on
		// overflow is implementation-specific.
		return MaxGeometric
	}
	return int64(g)
}

// VisitErrorPositions calls visit, in increasing order, with the position of
// every iid Bernoulli(p) error among n Bernoulli trials, using geometric
// jumps. It draws exactly the RNG sequence ErrorPositions draws (one
// Geometric variate per visited position plus the terminating draw), so the
// two forms are interchangeable under a shared seed; the callback form
// performs no allocation. The number of visits is exactly Binomial(n, p)-
// distributed. The advance is overflow-safe for every n.
func VisitErrorPositions(rng *rand.Rand, n int64, p float64, visit func(pos int64)) {
	pos := Geometric(rng, p)
	for pos < n {
		visit(pos)
		// Terminate on the draw itself when the jump would land at or past
		// n: pos + 1 + adv >= n  <=>  adv >= n - pos - 1. The subtraction is
		// non-negative (pos < n), so the comparison cannot wrap even when
		// adv is MaxGeometric.
		adv := Geometric(rng, p)
		if adv >= n-pos-1 {
			return
		}
		pos += 1 + adv
	}
}

// ErrorPositions returns the positions of iid Bernoulli(p) errors among n
// Bernoulli trials, using geometric jumps. The count of returned positions
// is exactly Binomial(n, p)-distributed. Hot paths should prefer
// VisitErrorPositions, which yields the identical sequence without
// allocating.
func ErrorPositions(rng *rand.Rand, n int64, p float64) []int64 {
	var out []int64
	VisitErrorPositions(rng, n, p, func(pos int64) { out = append(out, pos) })
	return out
}

// FlipIID flips each of the first bits bits of buf independently with
// probability p and returns the number of flips.
func FlipIID(rng *rand.Rand, buf []byte, bits int64, p float64) int {
	if bits > int64(len(buf))*8 {
		bits = int64(len(buf)) * 8
	}
	n := 0
	VisitErrorPositions(rng, bits, p, func(pos int64) {
		bitio.FlipBit(buf, pos)
		n++
	})
	return n
}

// ForcedFlip describes the §6.4 low-rate methodology: when p·bits is so
// small that most runs see no error, inject exactly one flip at a uniform
// position and scale the measured quality loss by the probability that at
// least one error occurs in a video of this size.
type ForcedFlip struct {
	// Scale multiplies the measured quality loss.
	Scale float64
	// Position is the injected flip position.
	Position int64
}

// AnyErrorProb returns 1 - (1-p)^bits, the probability that a stream of the
// given size suffers at least one error.
func AnyErrorProb(bits int64, p float64) float64 {
	return -math.Expm1(float64(bits) * math.Log1p(-p))
}

// ForceOneFlip picks a uniform flip position and the §6.4 scale factor.
func ForceOneFlip(rng *rand.Rand, bits int64, p float64) ForcedFlip {
	return ForcedFlip{
		Scale:    AnyErrorProb(bits, p),
		Position: rng.Int63n(maxi64(bits, 1)),
	}
}

// LowRateThreshold is the expected-flip count below which experiments switch
// to the forced-flip methodology.
const LowRateThreshold = 0.5

// UseForcedFlip reports whether the forced-flip path should be used for a
// stream of the given size at rate p.
func UseForcedFlip(bits int64, p float64) bool {
	return float64(bits)*p < LowRateThreshold
}

func maxi64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// Runner executes repeated stochastic trials with derived, reproducible
// seeds and aggregates a scalar result.
type Runner struct {
	Seed int64
	Runs int
}

// NewRunner returns a Runner with the paper's 30-run default.
func NewRunner(seed int64) Runner { return Runner{Seed: seed, Runs: DefaultRuns} }

// Result summarizes the runs.
type Result struct {
	Mean, Min, Max float64
	N              int
}

// Run executes trial once per run with a distinct deterministic RNG and
// aggregates the returned scalars.
func (r Runner) Run(trial func(rng *rand.Rand) float64) Result {
	res := Result{Min: math.Inf(1), Max: math.Inf(-1)}
	for i := 0; i < r.Runs; i++ {
		rng := rand.New(rand.NewSource(r.Seed + int64(i)*1_000_003))
		v := trial(rng)
		res.Mean += v
		if v < res.Min {
			res.Min = v
		}
		if v > res.Max {
			res.Max = v
		}
		res.N++
	}
	if res.N > 0 {
		res.Mean /= float64(res.N)
	}
	return res
}
