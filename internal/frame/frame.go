// Package frame provides YUV 4:2:0 video frames and macroblock addressing,
// the pixel-domain substrate shared by the encoder, decoder, synthetic video
// generator and quality metrics.
package frame

import "fmt"

// MBSize is the macroblock edge length in luma pixels, as in H.264.
const MBSize = 16

// Frame is a YUV 4:2:0 picture. The luma plane Y is W×H; the chroma planes
// Cb and Cr are (W/2)×(H/2). W and H must be multiples of MBSize.
type Frame struct {
	W, H      int
	Y, Cb, Cr []uint8
}

// New allocates a zeroed frame. Width and height must be positive multiples
// of MBSize.
func New(w, h int) (*Frame, error) {
	if w <= 0 || h <= 0 || w%MBSize != 0 || h%MBSize != 0 {
		return nil, fmt.Errorf("frame: dimensions %dx%d must be positive multiples of %d", w, h, MBSize)
	}
	return &Frame{
		W: w, H: h,
		Y:  make([]uint8, w*h),
		Cb: make([]uint8, w*h/4),
		Cr: make([]uint8, w*h/4),
	}, nil
}

// MustNew is New panicking on invalid dimensions.
func MustNew(w, h int) *Frame {
	f, err := New(w, h)
	if err != nil {
		panic(err)
	}
	return f
}

// Clone returns a deep copy of f.
func (f *Frame) Clone() *Frame {
	g := MustNew(f.W, f.H)
	copy(g.Y, f.Y)
	copy(g.Cb, f.Cb)
	copy(g.Cr, f.Cr)
	return g
}

// Fill sets every pixel to the given YUV value.
func (f *Frame) Fill(y, cb, cr uint8) {
	for i := range f.Y {
		f.Y[i] = y
	}
	for i := range f.Cb {
		f.Cb[i] = cb
		f.Cr[i] = cr
	}
}

// MBCols returns the number of macroblock columns.
func (f *Frame) MBCols() int { return f.W / MBSize }

// MBRows returns the number of macroblock rows.
func (f *Frame) MBRows() int { return f.H / MBSize }

// MBCount returns the total number of macroblocks.
func (f *Frame) MBCount() int { return f.MBCols() * f.MBRows() }

// LumaAt returns the luma sample at (x, y) with edge clamping, so motion
// compensation may reference slightly out-of-frame pixels as H.264 does.
func (f *Frame) LumaAt(x, y int) uint8 {
	return f.Y[clamp(y, f.H)*f.W+clamp(x, f.W)]
}

// ChromaAt returns the (Cb, Cr) samples at chroma coordinates (x, y) with
// edge clamping.
func (f *Frame) ChromaAt(x, y int) (uint8, uint8) {
	i := clamp(y, f.H/2)*(f.W/2) + clamp(x, f.W/2)
	return f.Cb[i], f.Cr[i]
}

// SetLuma writes the luma sample at (x, y); out-of-frame writes are ignored.
func (f *Frame) SetLuma(x, y int, v uint8) {
	if x < 0 || y < 0 || x >= f.W || y >= f.H {
		return
	}
	f.Y[y*f.W+x] = v
}

func clamp(v, n int) int {
	if v < 0 {
		return 0
	}
	if v >= n {
		return n - 1
	}
	return v
}

// ClampU8 converts an int to a uint8 pixel with saturation.
func ClampU8(v int) uint8 {
	if v < 0 {
		return 0
	}
	if v > 255 {
		return 255
	}
	return uint8(v)
}

// MB identifies a macroblock by its (column, row) address.
type MB struct{ X, Y int }

// Index returns the raster-scan index of the macroblock within a frame with
// mbCols macroblock columns.
func (m MB) Index(mbCols int) int { return m.Y*mbCols + m.X }

// MBFromIndex converts a raster-scan index back to an address.
func MBFromIndex(idx, mbCols int) MB { return MB{X: idx % mbCols, Y: idx / mbCols} }

// PixelOrigin returns the top-left luma pixel coordinate of the macroblock.
func (m MB) PixelOrigin() (x, y int) { return m.X * MBSize, m.Y * MBSize }

// Sequence is an ordered list of frames at a fixed rate.
type Sequence struct {
	Name   string
	FPS    int
	Frames []*Frame
}

// W returns the luma width of the sequence (0 when empty).
func (s *Sequence) W() int {
	if len(s.Frames) == 0 {
		return 0
	}
	return s.Frames[0].W
}

// H returns the luma height of the sequence (0 when empty).
func (s *Sequence) H() int {
	if len(s.Frames) == 0 {
		return 0
	}
	return s.Frames[0].H
}

// PixelCount returns the total number of luma pixels across all frames.
func (s *Sequence) PixelCount() int64 {
	var n int64
	for _, f := range s.Frames {
		n += int64(f.W) * int64(f.H)
	}
	return n
}
