package frame

import "sync"

// Encoding allocates one full reconstructed frame per coded frame — three
// plane buffers that live exactly as long as the Encode call. Pooling them
// takes the per-frame plane churn out of the GC's hands; pools are keyed by
// frame geometry so mixed-size workloads never hand a frame the wrong
// buffers.

var framePools sync.Map // [2]int{w, h} -> *sync.Pool of *Frame

func poolFor(w, h int) *sync.Pool {
	key := [2]int{w, h}
	if p, ok := framePools.Load(key); ok {
		return p.(*sync.Pool)
	}
	p, _ := framePools.LoadOrStore(key, &sync.Pool{})
	return p.(*sync.Pool)
}

// NewPooled is New drawing from a per-geometry pool when a recycled frame is
// available. The returned frame is zeroed either way, so callers observe
// exactly New's contract.
func NewPooled(w, h int) (*Frame, error) {
	if f, ok := poolFor(w, h).Get().(*Frame); ok {
		clear(f.Y)
		clear(f.Cb)
		clear(f.Cr)
		return f, nil
	}
	return New(w, h)
}

// MustNewPooled is NewPooled panicking on invalid dimensions.
func MustNewPooled(w, h int) *Frame {
	f, err := NewPooled(w, h)
	if err != nil {
		panic(err)
	}
	return f
}

// Recycle returns a frame to its geometry's pool for reuse by NewPooled. The
// caller must not touch the frame afterwards. nil is ignored.
func Recycle(f *Frame) {
	if f == nil {
		return
	}
	poolFor(f.W, f.H).Put(f)
}
