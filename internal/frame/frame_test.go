package frame

import (
	"testing"
	"testing/quick"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(15, 16); err == nil {
		t.Fatal("non-multiple width must fail")
	}
	if _, err := New(16, 0); err == nil {
		t.Fatal("zero height must fail")
	}
	f, err := New(64, 48)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Y) != 64*48 || len(f.Cb) != 64*48/4 || len(f.Cr) != 64*48/4 {
		t.Fatal("plane sizes wrong")
	}
}

func TestMBGeometry(t *testing.T) {
	f := MustNew(64, 48)
	if f.MBCols() != 4 || f.MBRows() != 3 || f.MBCount() != 12 {
		t.Fatalf("geometry %dx%d=%d", f.MBCols(), f.MBRows(), f.MBCount())
	}
	mb := MB{X: 2, Y: 1}
	if mb.Index(4) != 6 {
		t.Fatal("index")
	}
	if got := MBFromIndex(6, 4); got != mb {
		t.Fatalf("round trip: %v", got)
	}
	x, y := mb.PixelOrigin()
	if x != 32 || y != 16 {
		t.Fatalf("origin (%d,%d)", x, y)
	}
}

func TestMBIndexRoundTripProperty(t *testing.T) {
	prop := func(ix, iy uint8) bool {
		cols := int(ix)%20 + 1
		mb := MB{X: int(ix) % cols, Y: int(iy) % 30}
		return MBFromIndex(mb.Index(cols), cols) == mb
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLumaClamping(t *testing.T) {
	f := MustNew(16, 16)
	f.Y[0] = 100
	f.Y[15] = 200
	f.Y[15*16] = 50
	if f.LumaAt(-5, -5) != 100 {
		t.Fatal("top-left clamp")
	}
	if f.LumaAt(100, -1) != 200 {
		t.Fatal("top-right clamp")
	}
	if f.LumaAt(-3, 100) != 50 {
		t.Fatal("bottom-left clamp")
	}
}

func TestSetLumaBounds(t *testing.T) {
	f := MustNew(16, 16)
	f.SetLuma(-1, 0, 9) // ignored
	f.SetLuma(0, 16, 9) // ignored
	f.SetLuma(3, 2, 9)
	if f.Y[2*16+3] != 9 {
		t.Fatal("in-bounds write")
	}
	for i, v := range f.Y {
		if v != 0 && i != 2*16+3 {
			t.Fatal("out-of-bounds writes must be ignored")
		}
	}
}

func TestCloneIndependence(t *testing.T) {
	f := MustNew(16, 16)
	f.Fill(10, 20, 30)
	g := f.Clone()
	g.Y[0] = 99
	g.Cb[0] = 99
	if f.Y[0] != 10 || f.Cb[0] != 20 || f.Cr[0] != 30 {
		t.Fatal("clone must not alias")
	}
}

func TestClampU8(t *testing.T) {
	if ClampU8(-5) != 0 || ClampU8(300) != 255 || ClampU8(128) != 128 {
		t.Fatal("saturation")
	}
}

func TestChromaAt(t *testing.T) {
	f := MustNew(32, 32)
	f.Cb[0] = 7
	f.Cr[17] = 8 // (1,1) in a 16-wide chroma plane
	if cb, _ := f.ChromaAt(0, 0); cb != 7 {
		t.Fatal("cb")
	}
	if _, cr := f.ChromaAt(1, 1); cr != 8 {
		t.Fatal("cr")
	}
	if cb, _ := f.ChromaAt(-10, -10); cb != 7 {
		t.Fatal("chroma clamp")
	}
}

func TestSequenceGeometry(t *testing.T) {
	s := &Sequence{Name: "t", FPS: 30}
	if s.W() != 0 || s.H() != 0 || s.PixelCount() != 0 {
		t.Fatal("empty sequence")
	}
	s.Frames = []*Frame{MustNew(32, 16), MustNew(32, 16)}
	if s.W() != 32 || s.H() != 16 {
		t.Fatal("dims")
	}
	if s.PixelCount() != 1024 {
		t.Fatalf("pixels = %d", s.PixelCount())
	}
}
