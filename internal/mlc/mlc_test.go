package mlc

import (
	"math"
	"testing"
)

func TestDefaultSubstrate(t *testing.T) {
	s := Default()
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if s.BitsPerCell() != 3 {
		t.Fatalf("8 levels = 3 bits/cell, got %v", s.BitsPerCell())
	}
	if s.RawBER != 1e-3 {
		t.Fatalf("raw BER %g", s.RawBER)
	}
}

func TestSLCBaseline(t *testing.T) {
	s := SLC()
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if s.BitsPerCell() != 1 {
		t.Fatal("SLC is 1 bit/cell")
	}
}

func TestValidateRejectsBadConfigs(t *testing.T) {
	bad := []Substrate{
		{LevelsPerCell: 3, RawBER: 1e-3, ScrubIntervalMonths: 3},
		{LevelsPerCell: 0, RawBER: 1e-3, ScrubIntervalMonths: 3},
		{LevelsPerCell: 8, RawBER: 0.9, ScrubIntervalMonths: 3},
		{LevelsPerCell: 8, RawBER: 1e-3, ScrubIntervalMonths: 0},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Fatalf("config %d must be rejected", i)
		}
	}
}

func TestCellsForBits(t *testing.T) {
	s := Default()
	// 512 bits with 11.7% overhead: 512*1.1171875/3 cells.
	got := s.CellsForBits(512, 60.0/512)
	want := 512 * (1 + 60.0/512) / 3
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("cells %v, want %v", got, want)
	}
	if s.CellsForBits(0, 0.5) != 0 {
		t.Fatal("zero bits need zero cells")
	}
}

func TestEffectiveRBERAtReference(t *testing.T) {
	s := Default()
	if got := s.EffectiveRBER(3); math.Abs(got-1e-3) > 1e-12 {
		t.Fatalf("RBER at reference interval %g, want 1e-3", got)
	}
}

func TestEffectiveRBERMonotoneInScrubInterval(t *testing.T) {
	s := Default()
	last := 0.0
	for _, m := range []float64{0.5, 1, 3, 6, 12} {
		cur := s.EffectiveRBER(m)
		if cur <= last {
			t.Fatalf("RBER must grow with scrub interval: %g at %v months", cur, m)
		}
		last = cur
	}
}

func TestEffectiveRBERNeverBelowWriteRead(t *testing.T) {
	s := Default()
	if got := s.EffectiveRBER(0.001); got < s.RawBER/2 {
		t.Fatalf("RBER %g below the write/read floor", got)
	}
}

func TestDensityVsSLC(t *testing.T) {
	s := Default()
	// Perfect ECC with no overhead: 3x density (three bits per cell).
	if got := s.DensityVsSLC(0); math.Abs(got-3) > 1e-9 {
		t.Fatalf("ideal density gain %v, want 3", got)
	}
	// BCH-16 everywhere (31.25%): 3/1.3125 = 2.2857x, the paper's uniform
	// correction baseline ballpark.
	got := s.DensityVsSLC(0.3125)
	if math.Abs(got-3/1.3125) > 1e-9 {
		t.Fatalf("uniform density gain %v", got)
	}
	// Variable correction (~17% effective overhead) must land around the
	// paper's 2.57x.
	if got := s.DensityVsSLC(0.167); got < 2.5 || got > 2.65 {
		t.Fatalf("variable-correction density gain %v not near 2.57", got)
	}
}
