// Package mlc models the dense multi-level-cell PCM storage substrate of the
// paper (from Guo et al., ASPLOS 2016): cells with eight resistance levels
// whose ranges are biased so that write/read circuit errors and resistance
// drift contribute equally at the scrubbing interval, yielding a raw bit
// error rate of 10^-3 at the default three-month scrub — 3× the density of
// reliable SLC at the cost of frequent errors that error correction (or
// approximation) must absorb.
package mlc

import (
	"fmt"
	"math"
)

// Substrate describes one MLC configuration.
type Substrate struct {
	// LevelsPerCell is the number of resistance levels (a power of two).
	LevelsPerCell int
	// RawBER is the raw bit error rate at the reference scrub interval.
	RawBER float64
	// ScrubIntervalMonths is the reference scrubbing (refresh) interval at
	// which the substrate is biased.
	ScrubIntervalMonths float64
}

// Default returns the paper's substrate: 8 levels per cell, RBER 10^-3,
// three-month scrubbing.
func Default() Substrate {
	return Substrate{LevelsPerCell: 8, RawBER: 1e-3, ScrubIntervalMonths: 3}
}

// SLC returns the reliable single-level-cell baseline used for the 2.57×
// density comparison: one bit per cell, negligible raw errors, no ECC.
func SLC() Substrate {
	return Substrate{LevelsPerCell: 2, RawBER: 1e-16, ScrubIntervalMonths: 3}
}

// Validate reports configuration errors.
func (s Substrate) Validate() error {
	if s.LevelsPerCell < 2 || s.LevelsPerCell&(s.LevelsPerCell-1) != 0 {
		return fmt.Errorf("mlc: levels per cell %d must be a power of two >= 2", s.LevelsPerCell)
	}
	if s.RawBER < 0 || s.RawBER > 0.5 {
		return fmt.Errorf("mlc: raw BER %g out of range", s.RawBER)
	}
	if s.ScrubIntervalMonths <= 0 {
		return fmt.Errorf("mlc: scrub interval must be positive")
	}
	return nil
}

// BitsPerCell returns log2(levels).
func (s Substrate) BitsPerCell() float64 {
	return math.Log2(float64(s.LevelsPerCell))
}

// CellsForBits returns the number of cells needed to store n payload bits
// with the given ECC storage overhead (parity bits / payload bits).
func (s Substrate) CellsForBits(n int64, overhead float64) float64 {
	return float64(n) * (1 + overhead) / s.BitsPerCell()
}

// EffectiveRBER models how the raw bit error rate changes with the scrub
// interval. The substrate is biased so write/read errors and drift errors
// each contribute half the error budget at the reference interval; drift
// grows with sqrt(time) (resistance drift widens level distributions over
// time), while the write/read component is time-independent.
func (s Substrate) EffectiveRBER(scrubMonths float64) float64 {
	if scrubMonths <= 0 {
		scrubMonths = s.ScrubIntervalMonths
	}
	half := s.RawBER / 2
	drift := half * math.Sqrt(scrubMonths/s.ScrubIntervalMonths)
	return half + drift
}

// DensityVsSLC returns the density improvement of storing data at the given
// ECC overhead on this substrate relative to unprotected SLC storage.
func (s Substrate) DensityVsSLC(overhead float64) float64 {
	return s.BitsPerCell() / (1 + overhead)
}
