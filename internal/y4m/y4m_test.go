package y4m

import (
	"bytes"
	"io"
	"strings"
	"testing"

	"videoapp/internal/frame"
	"videoapp/internal/synth"
)

func testSequence() *frame.Sequence {
	cfg, _ := synth.PresetByName("crew_like")
	return synth.Generate(cfg.ScaleTo(64, 48, 5))
}

func TestWriteReadRoundTrip(t *testing.T) {
	seq := testSequence()
	var buf bytes.Buffer
	if err := Write(&buf, seq); err != nil {
		t.Fatal(err)
	}
	got, err := ReadAll(&buf, "rt")
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Frames) != 5 || got.W() != 64 || got.H() != 48 {
		t.Fatalf("geometry %dx%d x%d", got.W(), got.H(), len(got.Frames))
	}
	if got.FPS != seq.FPS {
		t.Fatalf("fps %d vs %d", got.FPS, seq.FPS)
	}
	for i := range seq.Frames {
		for j := range seq.Frames[i].Y {
			if seq.Frames[i].Y[j] != got.Frames[i].Y[j] {
				t.Fatalf("frame %d luma %d differs", i, j)
			}
		}
		for j := range seq.Frames[i].Cb {
			if seq.Frames[i].Cb[j] != got.Frames[i].Cb[j] || seq.Frames[i].Cr[j] != got.Frames[i].Cr[j] {
				t.Fatalf("frame %d chroma %d differs", i, j)
			}
		}
	}
}

func TestHeaderParsing(t *testing.T) {
	r, err := NewReader(strings.NewReader("YUV4MPEG2 W64 H48 F30000:1001 Ip A1:1 C420jpeg\nFRAME\n" + string(make([]byte, 64*48*3/2))))
	if err != nil {
		t.Fatal(err)
	}
	if r.W != 64 || r.H != 48 {
		t.Fatal("dims")
	}
	if r.FPS() != 30 { // 29.97 rounds to 30
		t.Fatalf("fps %d", r.FPS())
	}
	f, err := r.Next()
	if err != nil {
		t.Fatal(err)
	}
	if f.W != 64 {
		t.Fatal("frame dims")
	}
	if _, err := r.Next(); err != io.EOF {
		t.Fatalf("want EOF, got %v", err)
	}
}

func TestRejectsBadStreams(t *testing.T) {
	cases := []string{
		"",
		"NOTYUV W64 H48\n",
		"YUV4MPEG2 W64 H48 C444\n",     // unsupported chroma
		"YUV4MPEG2 W63 H48 C420\n",     // not MB aligned
		"YUV4MPEG2 F30:1 C420\n",       // missing dims
		"YUV4MPEG2 W64 H48\nBADMARK\n", // bad frame marker triggers at Next
	}
	for i, c := range cases[:5] {
		if _, err := ReadAll(strings.NewReader(c), "t"); err == nil {
			t.Fatalf("case %d must fail", i)
		}
	}
	r, err := NewReader(strings.NewReader(cases[5]))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Next(); err == nil {
		t.Fatal("bad frame marker must fail")
	}
}

func TestTruncatedFrame(t *testing.T) {
	head := "YUV4MPEG2 W64 H48 C420\nFRAME\n"
	data := head + string(make([]byte, 100)) // far too short
	if _, err := ReadAll(strings.NewReader(data), "t"); err == nil {
		t.Fatal("truncated frame must fail")
	}
}

func TestWriteEmptyFails(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, &frame.Sequence{}); err == nil {
		t.Fatal("empty sequence must fail")
	}
}

func TestWriteInconsistentSizesFails(t *testing.T) {
	var buf bytes.Buffer
	seq := &frame.Sequence{FPS: 30, Frames: []*frame.Frame{frame.MustNew(32, 32), frame.MustNew(64, 48)}}
	if err := Write(&buf, seq); err == nil {
		t.Fatal("inconsistent sizes must fail")
	}
}
