// Package y4m reads and writes the YUV4MPEG2 (.y4m) uncompressed video
// format used to distribute the Xiph.org test sequences the paper evaluates
// on, so the tools can operate on real captures in addition to the synthetic
// suite. Only the 4:2:0 chroma layout used by the codec is supported.
package y4m

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"videoapp/internal/frame"
)

// Reader decodes a Y4M stream.
type Reader struct {
	br         *bufio.Reader
	W, H, FPSN int
	FPSD       int
}

// NewReader parses the stream header. Frames are then read with Next.
func NewReader(r io.Reader) (*Reader, error) {
	br := bufio.NewReader(r)
	line, err := br.ReadString('\n')
	if err != nil {
		return nil, fmt.Errorf("y4m: reading stream header: %w", err)
	}
	fields := strings.Fields(strings.TrimSpace(line))
	if len(fields) == 0 || fields[0] != "YUV4MPEG2" {
		return nil, fmt.Errorf("y4m: missing YUV4MPEG2 magic")
	}
	out := &Reader{br: br, FPSN: 25, FPSD: 1}
	for _, f := range fields[1:] {
		if len(f) < 2 {
			continue
		}
		val := f[1:]
		switch f[0] {
		case 'W':
			out.W, err = strconv.Atoi(val)
		case 'H':
			out.H, err = strconv.Atoi(val)
		case 'F':
			parts := strings.SplitN(val, ":", 2)
			if len(parts) == 2 {
				out.FPSN, _ = strconv.Atoi(parts[0])
				out.FPSD, _ = strconv.Atoi(parts[1])
			}
		case 'C':
			if !strings.HasPrefix(val, "420") {
				return nil, fmt.Errorf("y4m: unsupported chroma layout C%s (only 4:2:0)", val)
			}
		}
		if err != nil {
			return nil, fmt.Errorf("y4m: bad header field %q: %w", f, err)
		}
	}
	if out.W <= 0 || out.H <= 0 {
		return nil, fmt.Errorf("y4m: missing dimensions")
	}
	if out.W%frame.MBSize != 0 || out.H%frame.MBSize != 0 {
		return nil, fmt.Errorf("y4m: %dx%d not a multiple of %d (crop or pad first)", out.W, out.H, frame.MBSize)
	}
	if out.FPSD <= 0 {
		out.FPSD = 1
	}
	return out, nil
}

// FPS returns the integer frame rate (rounded).
func (r *Reader) FPS() int {
	return (r.FPSN + r.FPSD/2) / r.FPSD
}

// Next reads one frame, or io.EOF at end of stream.
func (r *Reader) Next() (*frame.Frame, error) {
	line, err := r.br.ReadString('\n')
	if err != nil {
		if err == io.EOF && line == "" {
			return nil, io.EOF
		}
		return nil, fmt.Errorf("y4m: reading frame header: %w", err)
	}
	if !strings.HasPrefix(line, "FRAME") {
		return nil, fmt.Errorf("y4m: expected FRAME marker, got %q", strings.TrimSpace(line))
	}
	f := frame.MustNew(r.W, r.H)
	for _, plane := range [][]uint8{f.Y, f.Cb, f.Cr} {
		if _, err := io.ReadFull(r.br, plane); err != nil {
			return nil, fmt.Errorf("y4m: truncated frame: %w", err)
		}
	}
	return f, nil
}

// ReadAll decodes the whole stream into a sequence.
func ReadAll(r io.Reader, name string) (*frame.Sequence, error) {
	yr, err := NewReader(r)
	if err != nil {
		return nil, err
	}
	seq := &frame.Sequence{Name: name, FPS: yr.FPS()}
	for {
		f, err := yr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		seq.Frames = append(seq.Frames, f)
	}
	if len(seq.Frames) == 0 {
		return nil, fmt.Errorf("y4m: stream has no frames")
	}
	return seq, nil
}

// Write encodes the sequence as a Y4M stream.
func Write(w io.Writer, seq *frame.Sequence) error {
	if len(seq.Frames) == 0 {
		return fmt.Errorf("y4m: empty sequence")
	}
	bw := bufio.NewWriter(w)
	fps := seq.FPS
	if fps <= 0 {
		fps = 25
	}
	if _, err := fmt.Fprintf(bw, "YUV4MPEG2 W%d H%d F%d:1 Ip A1:1 C420\n", seq.W(), seq.H(), fps); err != nil {
		return err
	}
	for _, f := range seq.Frames {
		if f.W != seq.W() || f.H != seq.H() {
			return fmt.Errorf("y4m: inconsistent frame sizes")
		}
		if _, err := bw.WriteString("FRAME\n"); err != nil {
			return err
		}
		for _, plane := range [][]uint8{f.Y, f.Cb, f.Cr} {
			if _, err := bw.Write(plane); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}
