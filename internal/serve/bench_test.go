package serve

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

// BenchmarkServeChunk measures one GET /v1/chunks/{i} through the full
// handler stack (routing, instrumentation, cache): "hot" serves from the
// decoded-chunk cache, "cold" pays the archive read + decode + y4m render
// on every iteration.
func BenchmarkServeChunk(b *testing.B) {
	a := buildArchive(b, 2)
	s := New(a)
	req := httptest.NewRequest(http.MethodGet, "/v1/chunks/0", nil)

	run := func(b *testing.B, evict bool) {
		b.ReportAllocs()
		// Warm the cache so "hot" never decodes inside the timed loop.
		warm := httptest.NewRecorder()
		s.Handler().ServeHTTP(warm, req)
		if warm.Code != http.StatusOK {
			b.Fatalf("warm-up status %d", warm.Code)
		}
		b.SetBytes(int64(warm.Body.Len()))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if evict {
				b.StopTimer()
				s.cat.evictCached(DefaultArchiveName, 0)
				b.StartTimer()
			}
			rec := httptest.NewRecorder()
			s.Handler().ServeHTTP(rec, req)
			if rec.Code != http.StatusOK {
				b.Fatalf("status %d", rec.Code)
			}
		}
	}
	b.Run("hot", func(b *testing.B) { run(b, false) })
	b.Run("cold", func(b *testing.B) { run(b, true) })
	if cs := s.CacheStats(); cs.Loads < 1 {
		b.Fatalf("cache stats %+v", cs)
	}
}

// drainPrefetch waits for the catalog's readahead queue and in-flight
// loads to go quiet, so a benchmark can evict the cache without racing a
// background insert.
func drainPrefetch(c *Catalog) {
	p := c.prefetch
	if p == nil {
		return
	}
	for len(p.jobs) > 0 || p.inFlight.Load() > 0 {
		time.Sleep(100 * time.Microsecond)
	}
}

// BenchmarkServeSequentialCold is the readahead workload: one client
// reading an 8-chunk archive front to back with ~2 ms of think time
// between chunks (playback pacing), starting each scan with a cold cache.
// One op is the whole scan. With prefetch on, the i+1 decode overlaps the
// client's think time instead of sitting on the next request's critical
// path; with prefetch off, every chunk pays its decode in-line.
func BenchmarkServeSequentialCold(b *testing.B) {
	const chunks = 8
	const think = 2 * time.Millisecond
	run := func(b *testing.B, options ...Option) {
		a := buildArchive(b, chunks)
		s := New(a, options...)
		defer s.Catalog().Close()
		h := s.Handler()
		b.ReportAllocs()
		b.ResetTimer()
		for n := 0; n < b.N; n++ {
			b.StopTimer()
			drainPrefetch(s.cat)
			for i := 0; i < chunks; i++ {
				s.cat.evictCached(DefaultArchiveName, i)
			}
			b.StartTimer()
			for i := 0; i < chunks; i++ {
				rec := httptest.NewRecorder()
				h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, fmt.Sprintf("/v1/chunks/%d", i), nil))
				if rec.Code != http.StatusOK {
					b.Fatalf("chunk %d: status %d", i, rec.Code)
				}
				if i < chunks-1 {
					time.Sleep(think)
				}
			}
		}
	}
	b.Run("prefetch", func(b *testing.B) { run(b) })
	b.Run("noprefetch", func(b *testing.B) { run(b, WithPrefetch(0)) })
}

// BenchmarkArchiveReadChunk measures the raw lock-free archive read that
// the server sits on, without decode or HTTP.
func BenchmarkArchiveReadChunk(b *testing.B) {
	a := buildArchive(b, 2)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := a.ReadChunk(i % a.NumChunks()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkServeChunkParallel drives the hot path from parallel clients,
// the shape of the serving workload the read path is built for.
func BenchmarkServeChunkParallel(b *testing.B) {
	a := buildArchive(b, 2)
	s := New(a)
	warm := httptest.NewRecorder()
	s.Handler().ServeHTTP(warm, httptest.NewRequest(http.MethodGet, "/v1/chunks/0", nil))
	if warm.Code != http.StatusOK {
		b.Fatalf("warm-up status %d", warm.Code)
	}
	b.ReportAllocs()
	b.SetBytes(int64(warm.Body.Len()))
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		req := httptest.NewRequest(http.MethodGet, "/v1/chunks/0", nil)
		for pb.Next() {
			rec := httptest.NewRecorder()
			s.Handler().ServeHTTP(rec, req)
			if rec.Code != http.StatusOK {
				b.Fatalf("status %d", rec.Code)
			}
		}
	})
	if fmt.Sprint(s.CacheStats().Loads) == "0" {
		b.Fatal("no loads recorded")
	}
}
