package serve

import (
	"sync"
	"time"
)

// breaker is the per-archive circuit breaker of the chunk read path. It
// counts consecutive hard read failures — ErrReadFailed, the device
// failing after the policy's retries, never data damage or client errors —
// and once the threshold is reached it opens for one cooldown period,
// during which chunk requests are shed immediately with 503 + Retry-After
// instead of queueing more work on a failing device. After the cooldown
// requests probe the read path again; the first success closes it.
//
// A zero or negative threshold disables the breaker entirely (allow always
// reports true), matching FaultPolicy's "negative disables" convention —
// the resolved default threshold is 8.
type breaker struct {
	threshold int
	cooldown  time.Duration

	mu        sync.Mutex
	fails     int
	openUntil time.Time
}

// enabled reports whether the breaker participates at all.
func (b *breaker) enabled() bool { return b.threshold > 0 }

// allow reports whether a chunk request may proceed. While open it reports
// false until the cooldown elapses; the first request after that is let
// through as a probe (the breaker stays primed: a failure re-opens it
// immediately because the consecutive-failure count is preserved).
func (b *breaker) allow(now time.Time) bool {
	if !b.enabled() {
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return now.After(b.openUntil)
}

// success resets the consecutive-failure count and closes the breaker,
// reporting whether there was any failure state to clear (the caller
// refreshes the open gauge only on that transition).
func (b *breaker) success() bool {
	if !b.enabled() {
		return false
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	cleared := b.fails > 0 || !b.openUntil.IsZero()
	b.fails = 0
	b.openUntil = time.Time{}
	return cleared
}

// failure records one hard read failure and reports whether the breaker is
// now open.
func (b *breaker) failure(now time.Time) bool {
	if !b.enabled() {
		return false
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.fails++
	if b.fails >= b.threshold {
		b.openUntil = now.Add(b.cooldown)
		return true
	}
	return false
}

// retryAfterSeconds is the Retry-After value advertised while shedding:
// the cooldown rounded up to a whole second, at least 1.
func (b *breaker) retryAfterSeconds() int {
	s := int((b.cooldown + time.Second - 1) / time.Second)
	if s < 1 {
		s = 1
	}
	return s
}
