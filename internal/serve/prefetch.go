package serve

import (
	"context"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"videoapp/internal/cache"
	"videoapp/internal/obs"
)

// prefetchQueueCap bounds the job queue; a full queue drops new readahead
// (foreground traffic is outrunning the decoders, so more readahead would
// only add memory pressure).
const prefetchQueueCap = 64

// prefetchTrackCap bounds the issued-chunk tracking table; beyond it the
// oldest records are forgotten and their eventual outcome goes uncounted.
const prefetchTrackCap = 4096

// prefetchState is the lifecycle of one tracked readahead target.
type prefetchState uint8

const (
	// prefetchPending: scheduled, load not yet finished.
	prefetchPending prefetchState = iota
	// prefetchLoaded: the readahead load completed into the cache; the
	// next foreground request decides useful (hit) vs. wasted (evicted).
	prefetchLoaded
)

// prefetchJob is one readahead target: warm chunk index of the named
// tenant, in the cache space the tenant had when the job was scheduled. A
// space mismatch at execution time means the archive was reopened (new
// generation) and the job is stale.
type prefetchJob struct {
	tenant string
	space  string
	index  int
}

// prefetchKey identifies one tracked readahead target. A comparable struct
// rather than a formatted string: building one allocates nothing, which
// matters because claim runs on every foreground request.
type prefetchKey struct {
	space string
	index int
}

// prefetcher warms the chunks a sequential reader is about to ask for: a
// request for chunk i schedules background loads of i+1..i+depth through
// the same singleflight cache namespace the foreground path uses, so a
// steady reader's next request is a hit and the decode never sits on the
// request's critical path.
//
// Readahead is strictly best-effort and bounded: a fixed worker pool, a
// drop-on-full queue, and a cap on tracked outcomes. It never fires
// through an open circuit breaker, never records breaker outcomes itself
// (a background failure must not open the breaker on foreground traffic),
// and re-acquires its tenant by name at execution time, so a Removed
// (retired) archive drops its queued jobs instead of being reopened.
// close() cancels in-flight readahead decodes via the loader contexts.
type prefetcher struct {
	c      *Catalog
	depth  int
	ctx    context.Context
	cancel context.CancelFunc
	jobs   chan prefetchJob
	wg     sync.WaitGroup

	inFlight atomic.Int64
	// tracked mirrors len(state) and is only mutated under mu; claim reads
	// it lock-free so the steady hot path (nothing outstanding) skips the
	// key build and the mutex entirely.
	tracked atomic.Int64
	// schedHint is the last request target scheduled, deduping back-to-back
	// schedule calls for the same (space, chunk): clients re-reading or
	// stampeding one chunk pay the window probes once, not per request. The
	// window re-arms as soon as the reader moves to a different chunk.
	schedHint atomic.Pointer[prefetchKey]

	mu    sync.Mutex
	state map[prefetchKey]prefetchState
	tag   map[prefetchKey]string // key -> tenant name, labels outcome counters
	order []prefetchKey          // FIFO of tracked keys, bounds the table
}

// newPrefetcher starts the worker pool. depth must be >= 1.
func newPrefetcher(c *Catalog, depth int) *prefetcher {
	//vetvideoapp:allow ctxfirst — deliberate detachment: readahead outlives any single request; its lifecycle is the prefetcher's close, not a caller context
	ctx, cancel := context.WithCancel(context.Background())
	p := &prefetcher{
		c:      c,
		depth:  depth,
		ctx:    ctx,
		cancel: cancel,
		jobs:   make(chan prefetchJob, prefetchQueueCap),
		state:  map[prefetchKey]prefetchState{},
		tag:    map[prefetchKey]string{},
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > 4 {
		workers = 4
	}
	if workers < 2 {
		workers = 2
	}
	p.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go p.run()
	}
	return p
}

// close stops the workers and cancels in-flight readahead loads. It does
// not wait for loads that already entered the decoder; their loader
// contexts are cancelled and they unwind on their own.
func (p *prefetcher) close() {
	p.cancel()
	p.wg.Wait()
}

// schedule queues readahead for the chunks after index i, clamped to the
// archive's n chunks — readahead past the end would only enqueue jobs that
// die at the Info probe. Targets already resident, already tracked, or not
// fitting the queue are skipped; the whole call is non-blocking and runs
// on the foreground request path.
func (p *prefetcher) schedule(tenant, space string, i, n int) {
	if last := p.schedHint.Load(); last != nil && last.index == i && last.space == space {
		return // same target as the previous request: window already probed
	}
	sp := cache.In(p.c.cache, space)
	for off := 1; off <= p.depth; off++ {
		j := i + off
		if j >= n {
			break
		}
		if sp.Contains(j) {
			continue
		}
		if !p.track(tenant, space, j) {
			continue // already pending or resident-loaded
		}
		select {
		case p.jobs <- prefetchJob{tenant: tenant, space: space, index: j}:
		default:
			p.untrack(prefetchKey{space, j}) // queue full: drop, uncounted
		}
	}
	p.schedHint.Store(&prefetchKey{space: space, index: i})
}

// track registers (space, index) as a readahead target, returning false
// when it is already pending. A target recorded as loaded but no longer
// resident aged out of the cache unused — that earlier readahead is
// counted wasted and the target re-armed.
func (p *prefetcher) track(tenant, space string, index int) bool {
	key := prefetchKey{space, index}
	wasted := false
	p.mu.Lock()
	if st, ok := p.state[key]; ok {
		if st == prefetchPending {
			p.mu.Unlock()
			return false
		}
		// Loaded, but the caller just saw it absent: evicted unused.
		wasted = true
		p.state[key] = prefetchPending
		p.tag[key] = tenant
	} else {
		if len(p.order) >= prefetchTrackCap {
			old := p.order[0]
			p.order = p.order[1:]
			if _, had := p.state[old]; had {
				delete(p.state, old)
				delete(p.tag, old)
				p.tracked.Add(-1)
			}
		}
		p.state[key] = prefetchPending
		p.tag[key] = tenant
		p.order = append(p.order, key)
		p.tracked.Add(1)
	}
	p.mu.Unlock()
	if wasted {
		p.c.observer.Counter(obs.CtrServePrefetchWasted, tenant, 1)
	}
	return true
}

// untrack forgets a target without counting an outcome.
func (p *prefetcher) untrack(key prefetchKey) {
	p.mu.Lock()
	if _, ok := p.state[key]; ok {
		delete(p.state, key)
		delete(p.tag, key)
		p.tracked.Add(-1)
	}
	p.mu.Unlock()
}

// markLoaded records that a readahead load completed into the cache. If
// the target was already claimed by a foreground request (it coalesced
// onto our flight), there is nothing left to track.
func (p *prefetcher) markLoaded(key prefetchKey) {
	p.mu.Lock()
	if _, ok := p.state[key]; ok {
		p.state[key] = prefetchLoaded
	}
	p.mu.Unlock()
}

// claim settles a tracked target against the foreground request that just
// fetched (space, index): a prefetched chunk served from the cache was
// useful; one that had loaded but was evicted before the client arrived
// was wasted; a target still pending coalesced with the foreground load
// and counts as neither. The target is forgotten either way.
func (p *prefetcher) claim(tenant, space string, index int, hit bool) {
	if p.tracked.Load() == 0 {
		return // nothing outstanding anywhere: the common hot steady state
	}
	key := prefetchKey{space, index}
	p.mu.Lock()
	st, ok := p.state[key]
	if ok {
		delete(p.state, key)
		delete(p.tag, key)
		p.tracked.Add(-1)
	}
	p.mu.Unlock()
	if !ok || st != prefetchLoaded {
		return
	}
	if hit {
		p.c.observer.Counter(obs.CtrServePrefetchUseful, tenant, 1)
	} else {
		p.c.observer.Counter(obs.CtrServePrefetchWasted, tenant, 1)
	}
}

// purgeTenant drops every tracked target of the named tenant (any
// generation), counting completed-but-unclaimed loads as wasted. Remove
// calls it; queued jobs for the tenant die at execution time when the
// re-acquire finds the tenant retired.
func (p *prefetcher) purgeTenant(name string) {
	prefix := name + "#"
	wasted := 0
	p.mu.Lock()
	for key, st := range p.state {
		if strings.HasPrefix(key.space, prefix) {
			if st == prefetchLoaded {
				wasted++
			}
			delete(p.state, key)
			delete(p.tag, key)
			p.tracked.Add(-1)
		}
	}
	p.mu.Unlock()
	if wasted > 0 {
		p.c.observer.Counter(obs.CtrServePrefetchWasted, name, int64(wasted))
	}
}

// run is one worker: execute jobs until the prefetcher closes.
func (p *prefetcher) run() {
	defer p.wg.Done()
	for {
		select {
		case <-p.ctx.Done():
			return
		case job := <-p.jobs:
			p.execute(job)
		}
	}
}

// execute performs one readahead load. The tenant is re-acquired by name,
// so a Removed tenant (acquire fails), a reopened one (space mismatch),
// and an open breaker all drop the job before any archive work. The load
// itself goes through the same Space.GetOrLoad as foreground requests —
// one flight per (space, chunk) no matter who asks first.
func (p *prefetcher) execute(job prefetchJob) {
	key := prefetchKey{job.space, job.index}
	c := p.c
	t, a, space, release, err := c.acquire(job.tenant)
	if err != nil {
		p.untrack(key) // retired or unopenable: not our place to count
		return
	}
	defer release()
	if space != job.space || !t.breaker.allow(time.Now()) {
		p.untrack(key)
		return
	}
	if _, err := a.Info(job.index); err != nil {
		p.untrack(key) // past the last chunk — the common end-of-archive case
		return
	}
	sp := cache.In(c.cache, job.space)
	if sp.Contains(job.index) {
		p.untrack(key) // someone else warmed it; nothing to do or count
		return
	}

	n := p.inFlight.Add(1)
	c.observer.Gauge(obs.GaugeServePrefetchInFlight, "", float64(n))
	_, hit, err := sp.GetOrLoad(p.ctx, job.index, func(ctx context.Context) (chunkPayload, error) {
		// ctx arrives detached (cache semantics); re-tie it to the
		// prefetcher's lifetime so close() aborts in-flight readahead.
		lctx, lcancel := context.WithCancel(ctx)
		defer lcancel()
		stop := context.AfterFunc(p.ctx, lcancel)
		defer stop()
		return c.materialize(lctx, t, a, job.index)
	})
	n = p.inFlight.Add(-1)
	c.observer.Gauge(obs.GaugeServePrefetchInFlight, "", float64(n))

	switch {
	case hit:
		// Became resident between the Contains probe and the lookup; no
		// load of ours ran.
		p.untrack(key)
	case err != nil:
		// The load ran and failed: issued work that helped nobody. The
		// breaker is deliberately not touched — only foreground traffic
		// may open it.
		c.observer.Counter(obs.CtrServePrefetchIssued, t.name, 1)
		c.observer.Counter(obs.CtrServePrefetchWasted, t.name, 1)
		p.untrack(key)
	default:
		c.observer.Counter(obs.CtrServePrefetchIssued, t.name, 1)
		p.markLoaded(key)
	}
}
