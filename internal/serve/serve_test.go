package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"videoapp/internal/codec"
	"videoapp/internal/core"
	"videoapp/internal/store"
	"videoapp/internal/synth"
	"videoapp/internal/y4m"
)

// buildArchiveBytes encodes a small synthetic video and writes it into an
// in-memory VACS archive of single-GOP chunks, returning the container
// bytes.
func buildArchiveBytes(t testing.TB, gops int) []byte {
	t.Helper()
	const gopSize = 4
	cfg, _ := synth.PresetByName("crew_like")
	seq := synth.Generate(cfg.ScaleTo(96, 64, gops*gopSize))
	p := codec.DefaultParams()
	p.GOPSize = gopSize
	p.SearchRange = 8
	v, err := codec.Encode(seq, p)
	if err != nil {
		t.Fatal(err)
	}
	an := core.Analyze(v, core.DefaultOptions())
	parts := an.Partition(core.PaperAssignment())

	var buf bytes.Buffer
	cw, err := store.NewChunkWriter(&buf, store.ArchiveMeta{W: v.W, H: v.H, FPS: v.FPS, GOPSize: gopSize, GOPsPerChunk: 1})
	if err != nil {
		t.Fatal(err)
	}
	for s := 0; s < len(v.Frames); s += gopSize {
		e := min(s+gopSize, len(v.Frames))
		sub := &codec.Video{Params: p, W: v.W, H: v.H, FPS: v.FPS, Frames: append([]*codec.EncodedFrame(nil), v.Frames[s:e]...)}
		sub = sub.Clone()
		sub.ShiftIndices(-s)
		if err := cw.Append(sub, parts[s:e], s); err != nil {
			t.Fatal(err)
		}
	}
	return buf.Bytes()
}

// buildArchive opens an in-memory archive built by buildArchiveBytes.
func buildArchive(t testing.TB, gops int) *store.ChunkArchive {
	t.Helper()
	a, err := store.OpenChunkArchiveAt(bytes.NewReader(buildArchiveBytes(t, gops)))
	if err != nil {
		t.Fatal(err)
	}
	return a
}

// wantChunkBody renders the reference response body for chunk i: the
// serial ReadChunk, decoded and written as y4m.
func wantChunkBody(t testing.TB, a *store.ChunkArchive, i int) []byte {
	t.Helper()
	v, _, err := a.ReadChunk(i)
	if err != nil {
		t.Fatal(err)
	}
	seq, err := codec.Decode(v)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := y4m.Write(&buf, seq); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func get(t testing.TB, client *http.Client, url string) (int, []byte) {
	t.Helper()
	resp, err := client.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, body
}

func TestServeEndpoints(t *testing.T) {
	a := buildArchive(t, 3)
	s := New(a)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	status, body := get(t, ts.Client(), ts.URL+"/healthz")
	if status != http.StatusOK || string(body) != "ok\n" {
		t.Fatalf("healthz: %d %q", status, body)
	}

	status, body = get(t, ts.Client(), ts.URL+"/v1/archive")
	if status != http.StatusOK {
		t.Fatalf("archive: status %d", status)
	}
	var idx archiveIndex
	if err := json.Unmarshal(body, &idx); err != nil {
		t.Fatal(err)
	}
	if idx.Chunks != a.NumChunks() || idx.TotalFrames != a.TotalFrames() || len(idx.Index) != a.NumChunks() {
		t.Fatalf("index %+v does not match archive (%d chunks, %d frames)", idx, a.NumChunks(), a.TotalFrames())
	}
	if idx.Meta != a.Meta() {
		t.Fatalf("meta %+v, want %+v", idx.Meta, a.Meta())
	}

	// Every chunk's body is bit-identical to the serial read path.
	for i := 0; i < a.NumChunks(); i++ {
		status, body := get(t, ts.Client(), fmt.Sprintf("%s/v1/chunks/%d", ts.URL, i))
		if status != http.StatusOK {
			t.Fatalf("chunk %d: status %d", i, status)
		}
		if want := wantChunkBody(t, a, i); !bytes.Equal(body, want) {
			t.Fatalf("chunk %d: %d bytes differ from serial decode (%d bytes)", i, len(body), len(want))
		}
	}

	status, body = get(t, ts.Client(), ts.URL+"/v1/chunks/1/meta")
	if status != http.StatusOK {
		t.Fatalf("chunk meta: status %d", status)
	}
	var info store.ChunkInfo
	if err := json.Unmarshal(body, &info); err != nil {
		t.Fatal(err)
	}
	if want, _ := a.Info(1); info != want {
		t.Fatalf("chunk 1 meta %+v, want %+v", info, want)
	}

	// Unknown chunks and archives answer 404 with a JSON error object.
	for _, tc := range []struct{ path, code string }{
		{"/v1/chunks/99", "chunk_not_found"},
		{"/v1/chunks/-1", "chunk_not_found"},
		{"/v1/chunks/nope", "chunk_not_found"},
		{"/v1/archives/absent", "archive_not_found"},
		{"/v1/archives/absent/chunks/0", "archive_not_found"},
	} {
		resp, err := ts.Client().Get(ts.URL + tc.path)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("%s: status %d, want 404", tc.path, resp.StatusCode)
		}
		if got := resp.Header.Get("Content-Type"); got != "application/json" {
			t.Fatalf("%s: Content-Type %q, want application/json", tc.path, got)
		}
		var eb errorBody
		if err := json.Unmarshal(body, &eb); err != nil {
			t.Fatalf("%s: body %q is not a JSON error object: %v", tc.path, body, err)
		}
		if eb.Code != tc.code || eb.Error == "" {
			t.Fatalf("%s: error body %+v, want code %q and a message", tc.path, eb, tc.code)
		}
	}

	status, body = get(t, ts.Client(), ts.URL+"/metrics")
	if status != http.StatusOK || !bytes.Contains(body, []byte("serve_requests")) {
		t.Fatalf("metrics: %d %q", status, body[:min(len(body), 200)])
	}
	status, body = get(t, ts.Client(), ts.URL+"/metrics?format=json")
	if status != http.StatusOK || !json.Valid(body) {
		t.Fatalf("metrics json: %d, valid=%v", status, json.Valid(body))
	}
}

// TestServeStampedeDecodesOnce pins the acceptance criterion: many
// concurrent clients hammering one cold chunk cause exactly one decode
// (singleflight), and every client receives bytes identical to the serial
// read path.
func TestServeStampedeDecodesOnce(t *testing.T) {
	a := buildArchive(t, 2)
	s := New(a)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	want := wantChunkBody(t, a, 1)

	const clients = 32
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			status, body := get(t, ts.Client(), ts.URL+"/v1/chunks/1")
			if status != http.StatusOK {
				errs <- fmt.Errorf("client %d: status %d", c, status)
				return
			}
			if !bytes.Equal(body, want) {
				errs <- fmt.Errorf("client %d: body differs from serial decode", c)
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if cs := s.CacheStats(); cs.Loads != 1 {
		t.Fatalf("stampede of %d clients ran %d decodes, want exactly 1 (singleflight)", clients, cs.Loads)
	}
	if snap := s.Metrics().Snapshot(); snap.Counter("serve_chunk_decodes", "default") != 1 {
		t.Fatalf("serve_chunk_decodes = %d, want 1", snap.Counter("serve_chunk_decodes", "default"))
	}
}

// TestServeConcurrentRandomChunks drives 32 clients over random chunks and
// checks every response against the serial baseline, while the cache stays
// within its budget.
func TestServeConcurrentRandomChunks(t *testing.T) {
	a := buildArchive(t, 3)
	want := make([][]byte, a.NumChunks())
	for i := range want {
		want[i] = wantChunkBody(t, a, i)
	}
	// Budget of ~1.5 chunks forces eviction churn under concurrency; a
	// single shard keeps the whole budget in one LRU so a chunk still fits.
	s := New(a, WithCacheBytes(int64(len(want[0]))*3/2), WithCacheShards(1))
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	const clients = 32
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for j := 0; j < 6; j++ {
				i := (c + j) % a.NumChunks()
				status, body := get(t, ts.Client(), fmt.Sprintf("%s/v1/chunks/%d", ts.URL, i))
				if status != http.StatusOK {
					errs <- fmt.Errorf("client %d chunk %d: status %d", c, i, status)
					return
				}
				if !bytes.Equal(body, want[i]) {
					errs <- fmt.Errorf("client %d chunk %d: body differs", c, i)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if cost := s.CacheStats().Cost; cost > int64(len(want[0]))*3/2 {
		t.Fatalf("cache cost %d exceeds budget", cost)
	}
}

// TestCacheEvictionRefetches: with a cache that holds one chunk, serving
// A, B, A decodes A twice — eviction is observable through the decode
// counter — yet responses stay correct.
func TestCacheEvictionRefetches(t *testing.T) {
	a := buildArchive(t, 2)
	want0 := wantChunkBody(t, a, 0)
	// One shard so the budget fits exactly one chunk in one LRU; readahead
	// off so the load count is exactly the three foreground requests.
	s := New(a, WithCacheBytes(int64(len(want0))+16), WithCacheShards(1), WithPrefetch(0))
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	for _, i := range []int{0, 1, 0} {
		status, body := get(t, ts.Client(), fmt.Sprintf("%s/v1/chunks/%d", ts.URL, i))
		if status != http.StatusOK {
			t.Fatalf("chunk %d: status %d", i, status)
		}
		if i == 0 && !bytes.Equal(body, want0) {
			t.Fatalf("chunk 0 body differs after eviction round trip")
		}
	}
	cs := s.CacheStats()
	if cs.Loads != 3 {
		t.Fatalf("A,B,A with a one-chunk cache: %d loads, want 3 (A evicted by B)", cs.Loads)
	}
	if cs.Evictions == 0 {
		t.Fatal("expected at least one eviction")
	}
}

func TestServeGracefulShutdown(t *testing.T) {
	a := buildArchive(t, 2)
	s := New(a)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- s.Serve(ctx, l) }()

	url := "http://" + l.Addr().String()
	status, _ := get(t, http.DefaultClient, url+"/v1/chunks/0")
	if status != http.StatusOK {
		t.Fatalf("chunk 0: status %d", status)
	}
	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("graceful shutdown returned %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("server did not drain within 5s")
	}
	// The listener is really gone.
	if _, err := http.Get(url + "/healthz"); err == nil {
		t.Fatal("server still accepting connections after shutdown")
	}
}

// TestErrorMapping pins the typed-error → status + JSON error code
// translation.
func TestErrorMapping(t *testing.T) {
	cases := []struct {
		err      error
		want     int
		wantCode string
	}{
		{fmt.Errorf("x: %w", store.ErrChunkNotFound), http.StatusNotFound, "chunk_not_found"},
		{fmt.Errorf("x: %w", ErrArchiveNotFound), http.StatusNotFound, "archive_not_found"},
		{fmt.Errorf("x: %w", store.ErrArchiveClosed), http.StatusServiceUnavailable, "archive_closed"},
		// Damaged or unreadable data is repairable (scrub, mirror), so it
		// answers 503 + Retry-After rather than a 500 dead end.
		{fmt.Errorf("x: %w", store.ErrCorruptRecord), http.StatusServiceUnavailable, "corrupt_record"},
		{fmt.Errorf("x: %w", store.ErrReadFailed), http.StatusServiceUnavailable, "read_failed"},
		{context.DeadlineExceeded, http.StatusServiceUnavailable, "timeout"},
		{errors.New("opaque"), http.StatusInternalServerError, "internal"},
	}
	for _, tc := range cases {
		rec := httptest.NewRecorder()
		writeError(&statusWriter{ResponseWriter: rec, status: http.StatusOK}, tc.err)
		if rec.Code != tc.want {
			t.Fatalf("%v -> %d, want %d", tc.err, rec.Code, tc.want)
		}
		if got := rec.Header().Get("Content-Type"); got != "application/json" {
			t.Fatalf("%v: Content-Type %q, want application/json", tc.err, got)
		}
		var body errorBody
		if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
			t.Fatalf("%v: body %q is not JSON: %v", tc.err, rec.Body.String(), err)
		}
		if body.Code != tc.wantCode {
			t.Fatalf("%v: code %q, want %q", tc.err, body.Code, tc.wantCode)
		}
		if body.Error == "" {
			t.Fatalf("%v: empty error message", tc.err)
		}
		if (errors.Is(tc.err, store.ErrCorruptRecord) || errors.Is(tc.err, store.ErrReadFailed)) && rec.Header().Get("Retry-After") == "" {
			t.Fatalf("%v must advertise Retry-After", tc.err)
		}
	}
	// A hung-up client produces no write at all.
	rec := httptest.NewRecorder()
	writeError(&statusWriter{ResponseWriter: rec, status: http.StatusOK}, context.Canceled)
	if rec.Body.Len() != 0 {
		t.Fatalf("canceled request must not write a body, got %q", rec.Body.String())
	}
}

// TestClosedArchive503: closing the archive under a live server turns
// chunk requests into 503s rather than panics or hangs.
func TestClosedArchive503(t *testing.T) {
	a := buildArchive(t, 2)
	s := New(a)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	status, _ := get(t, ts.Client(), ts.URL+"/v1/chunks/0")
	if status != http.StatusServiceUnavailable {
		t.Fatalf("closed archive served status %d, want 503", status)
	}
}
