package serve

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"videoapp/internal/cache"
	"videoapp/internal/codec"
	"videoapp/internal/obs"
	"videoapp/internal/store"
	"videoapp/internal/y4m"
)

// DefaultArchiveName is the tenant name a single-archive Server attaches
// its archive under, and the name the legacy /v1/... routes alias when a
// catalog was not told otherwise.
const DefaultArchiveName = "default"

// ArchiveSpec declares one catalog tenant: a name routable under
// /v1/archives/{name}/... and a way to open its storage. The backend is
// opened lazily on the first request and may be closed again after
// Options.IdleTimeout of disuse; Open must therefore be callable any
// number of times and return a fresh backend each time.
type ArchiveSpec struct {
	// Name routes the archive; it must be non-empty and contain no '/'.
	Name string
	// Open produces the archive's storage backend: a file, a memory
	// region, a snapshot, or any of those behind a faultio decorator. The
	// catalog owns the returned backend and closes it on idle-close,
	// Remove, or catalog shutdown.
	Open func() (store.Backend, error)
	// Options are applied when the archive is opened over the backend
	// (WithMirror, WithFaultPolicy, ...).
	Options []store.ArchiveOption
	// FaultPolicy, when non-nil, overrides the catalog-wide policy for
	// this archive's reads and its circuit breaker.
	FaultPolicy *store.FaultPolicy
}

// Catalog serves N named archives to many concurrent clients: the
// multi-tenant storage node. Construct with NewCatalog; all methods are
// safe for concurrent use. Tenants share one decoded-chunk cache (global
// budget, global LRU) and one metrics aggregator; each tenant has its own
// circuit breaker, fault policy, and labeled counters.
type Catalog struct {
	opts      Options
	policySet bool
	cache     *cache.Cache[cache.Keyed[int], chunkPayload]
	prefetch  *prefetcher // nil when readahead is disabled
	metrics   *obs.Metrics
	observer  obs.Observer
	inFlight  atomic.Int64
	mux       *http.ServeMux

	mu          sync.Mutex // lock-order: 0 — catalog membership (outer); never acquired while any tenant lock is held (the PR-7 ABBA deadlock)
	tenants     map[string]*tenant
	defaultName string

	open    atomic.Int64  // archives currently open, mirrored to the gauge
	gaugeMu sync.Mutex    // lock-order: 2 — leaf: keeps open-gauge publishes in delta order; safe to take under t.mu (openDelta from tenant close paths)
	gens    atomic.Uint64 // catalog-global open generation; names cache spaces

	// cacheGaugeTick counts chunk responses to rate-limit cache-gauge
	// refreshes from that path: gauges are point-in-time samples, so
	// refreshing them on every request only adds two global metrics-mutex
	// writes to the hot path. The metrics endpoint still refreshes
	// unconditionally before snapshotting, so /metrics is always exact.
	cacheGaugeTick atomic.Uint64
}

// cacheGaugeEvery is how many chunk responses pass between chunk-path
// refreshes of the cache gauges (a power of two, tested with a mask).
const cacheGaugeEvery = 64

// chunkPayload is one cached chunk response: the rendered y4m bytes plus
// the degradation verdict of the read that produced them, so cache hits
// replay the same X-Videoapp-Degraded header as the original response.
type chunkPayload struct {
	data     []byte
	degraded []string
}

// tenant is one archive slot of the catalog.
type tenant struct {
	name   string
	spec   ArchiveSpec
	polSet bool              // thread pol through read contexts
	pol    store.FaultPolicy // effective policy (spec override or catalog-wide)

	mu      sync.Mutex // lock-order: 1 — tenant state (inner); Catalog.mu (rank 0) must never be acquired while this is held
	archive *store.ChunkArchive
	backend store.Backend // nil for static tenants: the caller owns their archive
	gen     uint64        // catalog-global generation of the current open; names the cache space
	static  bool          // attached pre-opened, never idle-closed
	retired bool          // Removed from the catalog; the last release closes

	refs    atomic.Int64 // requests currently inside this tenant
	lastUse atomic.Int64 // unix nanos of the last acquire/release

	breaker breaker
}

func (t *tenant) touch() { t.lastUse.Store(time.Now().UnixNano()) }

// space names the tenant's current cache namespace. The generation is
// drawn from a catalog-global counter at every open, so no two opens —
// including a Remove/Add recreating the same name over a different backing
// file — ever share a namespace, and entries cached from a previous open
// (or loads that land after a close) can never serve a reopened archive.
func (t *tenant) space() string {
	return t.name + "#" + strconv.FormatUint(t.gen, 10)
}

// NewCatalog returns a catalog over the given archive specs. The first
// spec is the default archive — the one the legacy /v1/archive and
// /v1/chunks/... routes alias. Names must be unique, non-empty, and
// contain no '/'. An empty spec list is allowed; archives can be added
// (and removed) later, which is how the CLI's SIGHUP rescan works.
func NewCatalog(specs []ArchiveSpec, options ...Option) (*Catalog, error) {
	c := newCatalog(options)
	for _, spec := range specs {
		if err := c.Add(spec); err != nil {
			return nil, err
		}
	}
	return c, nil
}

// newCatalog builds an empty catalog with its routes mounted.
func newCatalog(options []Option) *Catalog {
	var cfg config
	for _, o := range options {
		o(&cfg)
	}
	opts := cfg.opts.withDefaults()
	c := &Catalog{
		opts:      opts,
		policySet: cfg.policySet,
		cache: cache.NewShardedHash[cache.Keyed[int], chunkPayload](opts.CacheBytes, opts.CacheShards, func(p chunkPayload) int64 {
			return int64(len(p.data))
		}, cache.KeyedHash[int]()),
		metrics: obs.NewMetrics(),
		tenants: map[string]*tenant{},
	}
	c.observer = obs.Multi(c.metrics, opts.Observer)
	c.observer.Gauge(obs.GaugeCatalogOpenArchives, "", 0)
	c.mux = http.NewServeMux()
	c.mux.HandleFunc("GET /healthz", c.route("healthz", c.handleHealthz))
	c.mux.HandleFunc("GET /metrics", c.route("metrics", c.handleMetrics))
	c.mux.HandleFunc("GET /v1/archives", c.route("archives", c.handleArchives))
	c.mux.HandleFunc("GET /v1/archives/{name}", c.route("archive", c.named(c.handleArchive)))
	c.mux.HandleFunc("GET /v1/archives/{name}/chunks/{index}", c.route("chunk", c.named(c.handleChunk)))
	c.mux.HandleFunc("GET /v1/archives/{name}/chunks/{index}/meta", c.route("chunk_meta", c.named(c.handleChunkMeta)))
	// Legacy single-archive routes alias the default archive.
	c.mux.HandleFunc("GET /v1/archive", c.route("archive", c.asDefault(c.handleArchive)))
	c.mux.HandleFunc("GET /v1/chunks/{index}", c.route("chunk", c.asDefault(c.handleChunk)))
	c.mux.HandleFunc("GET /v1/chunks/{index}/meta", c.route("chunk_meta", c.asDefault(c.handleChunkMeta)))
	if opts.PrefetchDepth > 0 {
		c.prefetch = newPrefetcher(c, opts.PrefetchDepth)
	}
	return c
}

// newTenant resolves a spec into a tenant with its effective policy and
// breaker.
func (c *Catalog) newTenant(spec ArchiveSpec) *tenant {
	t := &tenant{name: spec.Name, spec: spec, polSet: c.policySet, pol: c.opts.FaultPolicy}
	if spec.FaultPolicy != nil {
		t.polSet, t.pol = true, *spec.FaultPolicy
	}
	resolved := t.pol.Resolved()
	t.breaker = breaker{threshold: resolved.BreakerThreshold, cooldown: resolved.BreakerCooldown}
	t.touch()
	return t
}

func validName(name string) error {
	if name == "" || strings.ContainsAny(name, "/#") {
		return fmt.Errorf("serve: invalid archive name %q (must be non-empty, no '/' or '#')", name)
	}
	return nil
}

// Add registers one more archive. When the catalog has no default (nothing
// added yet, or every archive was Removed), the new archive becomes the
// default for the legacy routes. Adding a name that already exists is an
// error; Remove it first to replace its spec.
func (c *Catalog) Add(spec ArchiveSpec) error {
	if err := validName(spec.Name); err != nil {
		return err
	}
	if spec.Open == nil {
		return fmt.Errorf("serve: archive %q has no Open function", spec.Name)
	}
	t := c.newTenant(spec)
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, dup := c.tenants[spec.Name]; dup {
		return fmt.Errorf("serve: archive %q already in catalog", spec.Name)
	}
	c.tenants[spec.Name] = t
	if c.defaultName == "" {
		c.defaultName = spec.Name
	}
	return nil
}

// attach registers a pre-opened archive as a static tenant: the caller
// owns the archive (the catalog never closes it) and it is never
// idle-closed. This is how New builds a single-archive Server.
func (c *Catalog) attach(name string, a *store.ChunkArchive) {
	t := c.newTenant(ArchiveSpec{Name: name})
	t.archive = a
	t.gen = c.gens.Add(1)
	t.static = true
	c.mu.Lock()
	c.tenants[name] = t
	if c.defaultName == "" {
		c.defaultName = name
	}
	c.mu.Unlock()
	c.openDelta(1)
}

// Remove drops an archive from the catalog: new requests answer 404
// immediately, its cached chunks are purged, and the archive — if the
// catalog opened it — closes once the last in-flight request against it
// releases, so requests that already acquired it finish on the archive
// they hold. When the removed archive was the legacy-route default, the
// lexicographically smallest remaining archive takes over the default
// slot (or, if the catalog emptied, the next Add does).
func (c *Catalog) Remove(name string) error {
	c.mu.Lock()
	t, ok := c.tenants[name]
	if ok {
		delete(c.tenants, name)
		if c.defaultName == name {
			c.defaultName = ""
			for other := range c.tenants {
				if c.defaultName == "" || other < c.defaultName {
					c.defaultName = other
				}
			}
		}
	}
	c.mu.Unlock()
	if !ok {
		return fmt.Errorf("serve: %w: %q", ErrArchiveNotFound, name)
	}
	t.mu.Lock()
	t.retired = true
	if t.refs.Load() == 0 {
		c.closeTenantLocked(t)
	}
	t.mu.Unlock()
	// Every generation of the tenant's cache space starts "name#".
	prefix := name + "#"
	c.cache.RemoveIf(func(k cache.Keyed[int]) bool { return strings.HasPrefix(k.Space, prefix) })
	if c.prefetch != nil {
		// Queued readahead jobs for the tenant die at execution time (the
		// re-acquire finds it retired); the tracking table is swept now.
		c.prefetch.purgeTenant(name)
	}
	return nil
}

// Names returns the catalog's archive names, sorted.
func (c *Catalog) Names() []string {
	c.mu.Lock()
	names := make([]string, 0, len(c.tenants))
	for name := range c.tenants {
		names = append(names, name)
	}
	c.mu.Unlock()
	sort.Strings(names)
	return names
}

// DefaultName returns the archive name the legacy /v1 routes alias, ""
// when the catalog is empty.
func (c *Catalog) DefaultName() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.defaultName
}

// openDelta adjusts the open-archive count and republishes the gauge. It
// takes only the gauge's own lock, never c.mu, so tenant-lock holders can
// call it without ordering against the catalog lock — the tenant paths
// (acquire, Remove, CloseIdle, Close) all run open/close bookkeeping while
// holding t.mu, and taking c.mu there would invert handleArchives' c.mu →
// t.mu order and deadlock.
func (c *Catalog) openDelta(d int64) {
	c.gaugeMu.Lock()
	c.observer.Gauge(obs.GaugeCatalogOpenArchives, "", float64(c.open.Add(d)))
	c.gaugeMu.Unlock()
}

// OpenArchives returns the number of archives currently held open.
func (c *Catalog) OpenArchives() int { return int(c.open.Load()) }

// closeTenantLocked closes the tenant's lazily-opened archive and backend,
// reporting whether it closed anything (static tenants and already-closed
// tenants are no-ops). t.mu must be held; c.mu must not be needed — see
// openDelta.
func (c *Catalog) closeTenantLocked(t *tenant) bool {
	if t.archive == nil || t.static {
		return false
	}
	t.archive.Close()
	if t.backend != nil {
		t.backend.Close()
	}
	t.archive, t.backend = nil, nil
	c.openDelta(-1)
	return true
}

// releaseRef drops one request's pin on the tenant. The last release of a
// retired tenant (Removed while requests were in flight) closes its
// archive: Remove defers the close here so in-flight requests finish on
// the archive they hold.
func (c *Catalog) releaseRef(t *tenant) {
	t.touch()
	if t.refs.Add(-1) > 0 {
		return
	}
	t.mu.Lock()
	if t.retired {
		c.closeTenantLocked(t)
	}
	t.mu.Unlock()
}

// acquire pins the named tenant for one request: it lazily opens the
// archive if needed, bumps the refcount (blocking idle-close for the
// duration), and returns the archive, the tenant's current cache space,
// and a release func the caller must run when done.
func (c *Catalog) acquire(name string) (*tenant, *store.ChunkArchive, string, func(), error) {
	c.mu.Lock()
	t, ok := c.tenants[name]
	c.mu.Unlock()
	if !ok {
		return nil, nil, "", nil, fmt.Errorf("serve: %w: %q", ErrArchiveNotFound, name)
	}
	t.refs.Add(1)
	t.touch()
	t.mu.Lock()
	if t.retired {
		// Removed after we looked it up: behave as if the lookup missed.
		t.mu.Unlock()
		c.releaseRef(t)
		return nil, nil, "", nil, fmt.Errorf("serve: %w: %q", ErrArchiveNotFound, name)
	}
	if t.archive == nil {
		b, err := t.spec.Open()
		if err == nil {
			var a *store.ChunkArchive
			a, err = store.OpenArchiveBackend(b, t.spec.Options...)
			if err != nil {
				b.Close()
			} else {
				t.archive, t.backend = a, b
				t.gen = c.gens.Add(1)
				c.openDelta(1)
			}
		} else {
			// The medium is unreachable, not the data damaged: surface as a
			// device failure so clients get 503 + Retry-After, not a 500.
			err = fmt.Errorf("serve: opening archive %q: %w: %w", name, store.ErrReadFailed, err)
		}
		if err != nil {
			t.mu.Unlock()
			c.releaseRef(t)
			return nil, nil, "", nil, err
		}
	}
	a, space := t.archive, t.space()
	t.mu.Unlock()
	release := func() { c.releaseRef(t) }
	return t, a, space, release, nil
}

// CloseIdle closes every lazily-opened archive that has no in-flight
// request and has been unused for at least Options.IdleTimeout as of now,
// returning how many it closed. Serve runs it periodically; tests may call
// it directly. With IdleTimeout <= 0 it is a no-op.
func (c *Catalog) CloseIdle(now time.Time) int {
	if c.opts.IdleTimeout <= 0 {
		return 0
	}
	cutoff := now.Add(-c.opts.IdleTimeout).UnixNano()
	c.mu.Lock()
	tenants := make([]*tenant, 0, len(c.tenants))
	for _, t := range c.tenants {
		tenants = append(tenants, t)
	}
	c.mu.Unlock()

	closed := 0
	for _, t := range tenants {
		if t.static || t.refs.Load() > 0 || t.lastUse.Load() > cutoff {
			continue
		}
		t.mu.Lock()
		// Re-check under the tenant lock: an acquire that raced us either
		// bumped refs before we looked (we skip) or will block on t.mu and
		// reopen a fresh generation after we close.
		if t.refs.Load() == 0 && t.lastUse.Load() <= cutoff && c.closeTenantLocked(t) {
			closed++
		}
		t.mu.Unlock()
	}
	return closed
}

// Close closes every archive the catalog opened (static tenants stay
// untouched — their owners close them) and shuts the readahead prefetcher
// down, cancelling its in-flight loads. The catalog remains usable for
// foreground requests — subsequent requests reopen archives lazily — but
// prefetching does not resume.
func (c *Catalog) Close() error {
	if c.prefetch != nil {
		c.prefetch.close()
	}
	c.mu.Lock()
	tenants := make([]*tenant, 0, len(c.tenants))
	for _, t := range c.tenants {
		tenants = append(tenants, t)
	}
	c.mu.Unlock()
	for _, t := range tenants {
		t.mu.Lock()
		c.closeTenantLocked(t)
		t.mu.Unlock()
	}
	return nil
}

// evictCached drops one chunk of the named archive from the shared cache —
// a test/bench hook for forcing the cold path.
func (c *Catalog) evictCached(name string, i int) bool {
	c.mu.Lock()
	t, ok := c.tenants[name]
	c.mu.Unlock()
	if !ok {
		return false
	}
	t.mu.Lock()
	space := t.space()
	t.mu.Unlock()
	return cache.In(c.cache, space).Remove(i)
}

// Handler returns the catalog's routing handler, for mounting under a
// custom http.Server or httptest.
func (c *Catalog) Handler() http.Handler { return c.mux }

// Metrics returns the catalog's metrics aggregator.
func (c *Catalog) Metrics() *obs.Metrics { return c.metrics }

// CacheStats returns the shared decoded-chunk cache counters across all
// archives; Stats.Loads is the number of actual decode executions.
func (c *Catalog) CacheStats() cache.Stats { return c.cache.Stats() }

// route wraps a handler with the per-request machinery: the in-flight
// gauge, request/error counters, and the request timeout. The request
// context is also cancelled by the client hanging up, which the decode
// path observes at frame boundaries.
func (c *Catalog) route(name string, h func(http.ResponseWriter, *http.Request) error) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		c.observer.Gauge(obs.GaugeServeInFlight, "", float64(c.inFlight.Add(1)))
		defer func() {
			c.observer.Gauge(obs.GaugeServeInFlight, "", float64(c.inFlight.Add(-1)))
		}()
		c.observer.Counter(obs.CtrServeRequests, name, 1)

		ctx, cancel := context.WithTimeout(r.Context(), c.opts.RequestTimeout)
		defer cancel()
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		if err := h(sw, r.WithContext(ctx)); err != nil {
			writeError(sw, err)
		}
		if sw.status >= 400 {
			c.observer.Counter(obs.CtrServeErrors, name, 1)
		}
	}
}

// named adapts a tenant-scoped handler to the /v1/archives/{name}/ routes.
func (c *Catalog) named(h func(http.ResponseWriter, *http.Request, string) error) func(http.ResponseWriter, *http.Request) error {
	return func(w http.ResponseWriter, r *http.Request) error {
		return h(w, r, r.PathValue("name"))
	}
}

// asDefault adapts a tenant-scoped handler to the legacy single-archive
// routes, aliasing the catalog's default archive.
func (c *Catalog) asDefault(h func(http.ResponseWriter, *http.Request, string) error) func(http.ResponseWriter, *http.Request) error {
	return func(w http.ResponseWriter, r *http.Request) error {
		name := c.DefaultName()
		if name == "" {
			return fmt.Errorf("serve: %w: catalog has no default archive", ErrArchiveNotFound)
		}
		return h(w, r, name)
	}
}

func (c *Catalog) handleHealthz(w http.ResponseWriter, r *http.Request) error {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	_, err := fmt.Fprintln(w, "ok")
	return err
}

// archiveEntry is one row of the GET /v1/archives listing.
type archiveEntry struct {
	Name    string `json:"name"`
	Default bool   `json:"default,omitempty"`
	Open    bool   `json:"open"`
}

func (c *Catalog) handleArchives(w http.ResponseWriter, r *http.Request) error {
	// Snapshot membership under c.mu, then read each tenant's open state
	// under its own lock only after c.mu is released: tenant locks are
	// held across slow work (spec.Open on the lazy-open path), and nesting
	// t.mu inside c.mu here would stall every catalog lookup behind it.
	c.mu.Lock()
	def := c.defaultName
	tenants := make([]*tenant, 0, len(c.tenants))
	for _, t := range c.tenants {
		tenants = append(tenants, t)
	}
	c.mu.Unlock()
	entries := make([]archiveEntry, 0, len(tenants))
	for _, t := range tenants {
		t.mu.Lock()
		open := t.archive != nil
		t.mu.Unlock()
		entries = append(entries, archiveEntry{Name: t.name, Default: t.name == def, Open: open})
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].Name < entries[j].Name })
	return writeJSON(w, struct {
		Archives []archiveEntry `json:"archives"`
	}{entries})
}

// archiveIndex is the JSON shape of GET /v1/archives/{name} (and the
// legacy /v1/archive).
type archiveIndex struct {
	Name        string            `json:"name"`
	Meta        store.ArchiveMeta `json:"meta"`
	Chunks      int               `json:"chunks"`
	TotalFrames int               `json:"total_frames"`
	Index       []store.ChunkInfo `json:"index"`
}

func (c *Catalog) handleArchive(w http.ResponseWriter, r *http.Request, name string) error {
	_, a, _, release, err := c.acquire(name)
	if err != nil {
		return err
	}
	defer release()
	idx := archiveIndex{
		Name:        name,
		Meta:        a.Meta(),
		Chunks:      a.NumChunks(),
		TotalFrames: a.TotalFrames(),
	}
	idx.Index = make([]store.ChunkInfo, idx.Chunks)
	for i := range idx.Index {
		info, err := a.Info(i)
		if err != nil {
			return err
		}
		idx.Index[i] = info
	}
	return writeJSON(w, idx)
}

func (c *Catalog) handleChunkMeta(w http.ResponseWriter, r *http.Request, name string) error {
	i, err := chunkIndex(r)
	if err != nil {
		return err
	}
	_, a, _, release, err := c.acquire(name)
	if err != nil {
		return err
	}
	defer release()
	info, err := a.Info(i)
	if err != nil {
		return err
	}
	return writeJSON(w, info)
}

// handleChunk answers with the decoded frames of one chunk as a YUV4MPEG2
// stream, from the shared cache when hot. Cold chunks are materialized
// once per stampede via the cache's singleflight and then shared. The
// tenant's open circuit breaker sheds the request before any archive or
// cache work; a response built from a degraded read (some approximate
// streams zero-filled) carries the X-Videoapp-Degraded header, on cache
// hits too.
func (c *Catalog) handleChunk(w http.ResponseWriter, r *http.Request, name string) error {
	i, err := chunkIndex(r)
	if err != nil {
		return err
	}
	t, a, space, release, err := c.acquire(name)
	if err != nil {
		return err
	}
	defer release()
	if !t.breaker.allow(time.Now()) {
		c.observer.Counter(obs.CtrServeShed, t.name, 1)
		w.Header().Set("Retry-After", strconv.Itoa(t.breaker.retryAfterSeconds()))
		writeJSONError(w, http.StatusServiceUnavailable, "breaker_open",
			fmt.Sprintf("archive %q read path unavailable (circuit breaker open)", t.name))
		return nil
	}
	if _, err := a.Info(i); err != nil {
		return err // 404 before paying a flight for an absent chunk
	}
	sp := cache.In(c.cache, space)
	p, hit, err := sp.GetOrLoad(r.Context(), i, func(ctx context.Context) (chunkPayload, error) {
		return c.materialize(ctx, t, a, i)
	})
	if hit {
		c.observer.Counter(obs.CtrServeCacheHits, t.name, 1)
	} else {
		c.observer.Counter(obs.CtrServeCacheMisses, t.name, 1)
	}
	if err != nil {
		if errors.Is(err, store.ErrReadFailed) && t.breaker.failure(time.Now()) {
			c.observer.Gauge(obs.GaugeServeBreakerOpen, t.name, 1)
		}
		return retryAfterError{err: err, seconds: t.breaker.retryAfterSeconds()}
	}
	if t.breaker.success() {
		// A success (possibly a probe after the cooldown) closes the
		// breaker; refresh the gauge only on the transition.
		c.observer.Gauge(obs.GaugeServeBreakerOpen, t.name, 0)
	}
	if c.prefetch != nil {
		// Settle this chunk's readahead outcome, then warm the chunks a
		// sequential reader asks for next. Both are non-blocking.
		c.prefetch.claim(t.name, space, i, hit)
		c.prefetch.schedule(t.name, space, i, a.NumChunks())
	}
	c.maybePublishCacheGauges()
	w.Header().Set("Content-Type", "video/x-yuv4mpeg")
	w.Header().Set("Content-Length", strconv.Itoa(len(p.data)))
	if hit {
		w.Header().Set("X-Cache", "hit")
	} else {
		w.Header().Set("X-Cache", "miss")
	}
	w.Header().Set("X-Chunk-Index", strconv.Itoa(i))
	w.Header().Set("X-Archive-Name", t.name)
	if len(p.degraded) > 0 {
		w.Header().Set("X-Videoapp-Degraded", strings.Join(p.degraded, ","))
		c.observer.Counter(obs.CtrServeDegraded, t.name, 1)
	}
	_, err = w.Write(p.data)
	return err
}

// materialize is the cold-chunk path: read the chunk's bytes from the
// archive under the tenant's fault policy, decode them, and render the
// frames as y4m. It runs at most once per (archive, chunk) under stampede
// (cache singleflight) and publishes the decode span and the per-archive
// decode counter. A degraded read is a success here — the verdict rides
// the payload into the cache so every response built from it is flagged.
func (c *Catalog) materialize(ctx context.Context, t *tenant, a *store.ChunkArchive, i int) (chunkPayload, error) {
	sp := obs.StartSpan(c.observer, obs.StageServeChunk)
	defer sp.End()
	c.observer.Counter(obs.CtrServeDecodes, t.name, 1)
	ctx = obs.With(ctx, c.observer)
	if t.polSet {
		ctx = store.ContextWithFaultPolicy(ctx, t.pol)
	}
	cr, err := a.ReadChunkContext(ctx, i)
	if err != nil {
		return chunkPayload{}, err
	}
	seq, err := codec.DecodeContext(ctx, cr.Video, codec.DecodeOptions{}, c.opts.Workers)
	if err != nil {
		return chunkPayload{}, err
	}
	var buf bytes.Buffer
	buf.Grow(seqSize(len(seq.Frames), cr.Video.W, cr.Video.H))
	if err := y4m.Write(&buf, seq); err != nil {
		return chunkPayload{}, err
	}
	return chunkPayload{data: buf.Bytes(), degraded: cr.Degraded}, nil
}

func (c *Catalog) handleMetrics(w http.ResponseWriter, r *http.Request) error {
	c.publishCacheGauges()
	snap := c.metrics.Snapshot()
	if r.URL.Query().Get("format") == "json" {
		return writeJSON(w, snap)
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	return snap.WriteText(w)
}

// publishCacheGauges refreshes the cache-derived gauges from the shared
// cache's own counters.
func (c *Catalog) publishCacheGauges() {
	cs := c.cache.Stats()
	c.observer.Gauge(obs.GaugeServeCacheHitRate, "", cs.HitRate())
	c.observer.Gauge(obs.GaugeServeCacheBytes, "", float64(cs.Cost))
}

// maybePublishCacheGauges is the chunk-path variant: one refresh every
// cacheGaugeEvery responses (the first response publishes, so a fresh
// catalog's gauges exist immediately), costing the other responses a
// single atomic increment instead of two metrics-mutex writes.
func (c *Catalog) maybePublishCacheGauges() {
	if c.cacheGaugeTick.Add(1)&(cacheGaugeEvery-1) != 1 {
		return
	}
	c.publishCacheGauges()
}

// Serve accepts connections on l until ctx is cancelled, then shuts down
// gracefully: the listener closes, idle connections drop, and in-flight
// requests get DrainTimeout to finish before the server gives up. While
// serving, idle archives are closed every IdleTimeout/2 (when an idle
// timeout is configured). It returns nil on a clean drained shutdown.
func (c *Catalog) Serve(ctx context.Context, l net.Listener) error {
	srv := &http.Server{
		Handler:           c.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
		BaseContext:       func(net.Listener) context.Context { return context.WithoutCancel(ctx) },
	}
	if c.opts.IdleTimeout > 0 {
		stop := make(chan struct{})
		defer close(stop)
		go func() {
			tick := time.NewTicker(c.opts.IdleTimeout / 2)
			defer tick.Stop()
			for {
				select {
				case <-tick.C:
					c.CloseIdle(time.Now())
				case <-stop:
					return
				case <-ctx.Done():
					return
				}
			}
		}()
	}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(l) }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	//vetvideoapp:allow ctxfirst — deliberate detachment: the drain deadline must outlive the just-cancelled serve context
	drain, cancel := context.WithTimeout(context.Background(), c.opts.DrainTimeout)
	defer cancel()
	err := srv.Shutdown(drain)
	if serr := <-errc; serr != nil && serr != http.ErrServerClosed && err == nil {
		err = serr
	}
	return err
}

// ListenAndServe binds addr and calls Serve. To learn the bound address of
// an ephemeral ":0" listen, bind a net.Listener yourself and call Serve.
func (c *Catalog) ListenAndServe(ctx context.Context, addr string) error {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return c.Serve(ctx, l)
}
